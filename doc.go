// Package geckoftl is the public surface of a Go reproduction of GeckoFTL
// (Dayan, Bonnet, Idreos: "GeckoFTL: Scalable Flash Translation Techniques
// For Very Large Flash Devices", SIGMOD 2016), grown into a concurrent,
// multi-channel flash-simulation engine.
//
// It is the only package external users — and this repository's own cmd/
// binaries and examples — import; everything under internal/ is sealed off.
// The package offers three things:
//
//   - A context-aware block-device API: Open builds a simulated flash device
//     with a sharded FTL engine on top, configured with functional options
//     (geometry, FTL scheme, GC mode and victim policy, cache budget,
//     battery, hot/cold separation, wear-aware allocation). The returned
//     Device serves Read/Write/Trim/Flush/Close plus batch variants
//     (cancellable between operations mid-batch), crashes and recovers with
//     PowerFail/Recover, and reports statistics, latency percentiles and
//     wear (erase-count spread) through Snapshot. Failures are classified by
//     the errors.Is-able taxonomy ErrClosed, ErrPowerFailed, ErrOutOfRange
//     and ErrInvalidConfig.
//
//   - The experiment harness behind the paper's evaluation: the Figure and
//     Table reproductions, the channel/recovery/latency/trim/wear sweeps,
//     and the workload generators that drive them, re-exported for the
//     geckobench, ftlsim and ramcalc commands.
//
//   - The analytical models: integrated-RAM and recovery-time breakdowns at
//     arbitrary device capacities, and Logarithmic Gecko's tuning math.
//
// # Quickstart
//
//	dev, err := geckoftl.Open(
//		geckoftl.WithGeometry(256, 32, 1024),
//		geckoftl.WithChannels(4, 1),
//		geckoftl.WithCacheEntries(1024),
//	)
//	if err != nil { ... }
//	defer dev.Close(ctx)
//
//	err = dev.Write(ctx, 42)      // update one logical page
//	err = dev.Read(ctx, 42)       // read it back
//	err = dev.Trim(ctx, 42, 8)    // discard pages [42, 50)
//	snap := dev.Snapshot()        // WA, RAM, latency percentiles
//
// Trim is the host's way of supplying the garbage collector with invalid
// pages for free: trimmed pages read as zeroes, their mapping entries are
// dropped (durably at the next Flush), and write-amplification falls as the
// trim fraction rises (see the trim sweep in geckobench).
package geckoftl
