package geckoftl

import (
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/stats"
)

// LatencySummary is a stable summary of a simulated service-time
// distribution: the time from an operation's arrival to its last IO
// completing under the device's cost model, queueing behind its die
// included. Deterministic and host-independent.
type LatencySummary struct {
	// Count is the number of operations recorded.
	Count int64
	// Mean is the distribution's mean.
	Mean time.Duration
	// P50, P90, P99 and P999 are the 50th/90th/99th/99.9th percentiles.
	P50, P90, P99, P999 time.Duration
	// Max is the largest recorded service time.
	Max time.Duration
}

func toLatencySummary(s stats.Summary) LatencySummary {
	return LatencySummary{Count: s.Count, Mean: s.Mean, P50: s.P50, P90: s.P90, P99: s.P99, P999: s.P999, Max: s.Max}
}

// OpCounts are the logical operations the device has served.
type OpCounts struct {
	// Writes, Reads and Trims count host operations since Open.
	Writes, Reads, Trims int64
	// TrimmedPages counts physical pages invalidated on behalf of trims.
	TrimmedPages int64
}

// GCStats describe the garbage collector's work since Open.
type GCStats struct {
	// Collections counts victim blocks reclaimed.
	Collections int64
	// Migrations counts valid pages copied out of victims.
	Migrations int64
	// UIPSkips counts victim pages identified as unidentified-invalid just
	// before migration and therefore skipped (Section 4.1 of the paper).
	UIPSkips int64
	// Fallbacks counts writes on which the incremental collector broke its
	// step budget and fell back to an unbounded inline reclaim; a healthy
	// incremental configuration keeps this at zero.
	Fallbacks int64
	// MaxStall is the largest garbage-collection stall any single host
	// operation absorbed since the last ResetStats.
	MaxStall time.Duration
}

// QueueStats describe the asynchronous submission path (Device.SubmitWrite
// and friends) since Open: queue configuration, the fates of submitted
// operations, and the submission-to-completion latency distribution.
type QueueStats struct {
	// Depth is the configured per-shard queue depth (WithQueueDepth).
	Depth int
	// Policy is the configured admission policy's name (WithAdmissionPolicy).
	Policy string
	// Submitted counts operations accepted by Submit*.
	Submitted int64
	// Completed counts operations that executed, successfully or not.
	Completed int64
	// Shed counts operations dropped by the AdmitShed admission policy; their
	// Tickets failed with ErrQueueFull.
	Shed int64
	// Delayed counts operations the AdmitWait policy admitted past the
	// backlog budget.
	Delayed int64
	// Cancelled counts operations whose submission context was observed
	// cancelled before execution.
	Cancelled int64
	// InFlight is the number of submissions currently queued or executing.
	InFlight int64
	// Latency is the submission-to-completion distribution of completed
	// operations on the virtual timeline, queueing included.
	Latency LatencySummary
}

// Snapshot is a stable, self-consistent view of the device's statistics:
// logical operation counts, write-amplification over the current measurement
// window, RAM footprint, and per-operation latency percentiles.
type Snapshot struct {
	// Ops counts the logical operations served since Open.
	Ops OpCounts
	// GC describes the garbage collector's work since Open.
	GC GCStats
	// Checkpoints counts runtime checkpoints taken since Open.
	Checkpoints int64

	// BadBlocks is the number of blocks currently retired as grown bad
	// blocks (failed or worn-out erases): permanently lost capacity. It is a
	// gauge read from the per-block state, so it survives power failures
	// without double-counting.
	BadBlocks int64
	// ProgramRetries counts page programs that failed and were retried on
	// the next frontier page since Open.
	ProgramRetries int64
	// Scrubs counts read-disturb scrubs since Open: blocks relocated because
	// their read count reached the configured scrub threshold.
	Scrubs int64

	// WriteAmplification is the measured write-amplification of the current
	// window (since Open or the last ResetStats): internal page writes plus
	// internal page reads weighted by the write/read latency ratio, per
	// logical write. UserWA, TranslationWA and ValidityWA break it down by
	// component as in the paper's Figure 13 (bottom).
	WriteAmplification                float64
	UserWA, TranslationWA, ValidityWA float64
	// WindowWrites is the number of logical writes in the window the
	// write-amplification figures describe.
	WindowWrites int64

	// MinEraseCount and MaxEraseCount are the smallest and largest per-block
	// erase counts across the device, and EraseSpread is their difference:
	// the wear-evenness figure the endurance experiments track. MeanEraseCount
	// is the average. All four read the device's own wear state, so they are
	// cumulative since Open and survive power failures.
	MinEraseCount, MaxEraseCount int
	EraseSpread                  int
	MeanEraseCount               float64

	// RAMBytes is the FTL's integrated-RAM footprint under the paper's
	// models (mapping cache, GMD, BVC, page-validity store, wear state,
	// heat classifier).
	RAMBytes int64
	// CheckpointBytes is the encoded size of the most recent metadata
	// checkpoint written to the WithCheckpointPath file; zero when
	// checkpointing is disabled or none has been written yet.
	CheckpointBytes int64
	// SimulatedTime is the total device time consumed since Open, summed
	// over dies (the serial single-plane cost).
	SimulatedTime time.Duration

	// WriteLatency, ReadLatency and TrimLatency summarize per-operation
	// service times since Open or the last ResetStats.
	WriteLatency, ReadLatency, TrimLatency LatencySummary
	// GCStalledWrites summarizes the service times of the host operations
	// that performed garbage-collection work.
	GCStalledWrites LatencySummary

	// Queue describes the asynchronous submission path; its counters stay
	// zero on a device that only used the synchronous methods.
	Queue QueueStats
}

// Snapshot captures the device's statistics. It may run concurrently with
// operations; the snapshot is shard-consistent (quiesce the device for an
// exact global instant).
func (d *Device) Snapshot() Snapshot {
	es := d.eng.LatencyStats()
	ops := es.Ops
	counters := d.dev.Counters()
	d.baseMu.Lock()
	window := counters.Sub(d.baseCounters)
	windowWrites := ops.LogicalWrites - d.baseStats.LogicalWrites
	d.baseMu.Unlock()
	delta := d.dev.Config().Latency.WriteReadRatio()
	minErase, maxErase, meanErase := d.dev.BlocksEndurance()
	d.ckptMu.Lock()
	ckptBytes := d.ckptBytes
	d.ckptMu.Unlock()

	return Snapshot{
		Ops: OpCounts{
			Writes:       ops.LogicalWrites,
			Reads:        ops.LogicalReads,
			Trims:        ops.LogicalTrims,
			TrimmedPages: ops.TrimmedPages,
		},
		GC: GCStats{
			Collections: ops.GCOperations,
			Migrations:  ops.GCMigrations,
			UIPSkips:    ops.UIPSkips,
			Fallbacks:   ops.GCFallbacks,
			MaxStall:    es.MaxGCStall,
		},
		Checkpoints:        ops.Checkpoints,
		BadBlocks:          ops.BadBlocks,
		ProgramRetries:     ops.ProgramRetries,
		Scrubs:             ops.ScrubOperations,
		WriteAmplification: window.WriteAmplification(windowWrites, delta),
		UserWA: window.PurposeWriteAmplification(flash.PurposeUserWrite, windowWrites, delta) +
			window.PurposeWriteAmplification(flash.PurposeGCMigration, windowWrites, delta),
		TranslationWA:   window.PurposeWriteAmplification(flash.PurposeTranslation, windowWrites, delta),
		ValidityWA:      window.PurposeWriteAmplification(flash.PurposePageValidity, windowWrites, delta),
		WindowWrites:    windowWrites,
		MinEraseCount:   minErase,
		MaxEraseCount:   maxErase,
		EraseSpread:     maxErase - minErase,
		MeanEraseCount:  meanErase,
		RAMBytes:        d.eng.RAMBytes(),
		CheckpointBytes: ckptBytes,
		SimulatedTime:   d.dev.SimulatedTime(),
		WriteLatency:    toLatencySummary(es.Writes),
		ReadLatency:     toLatencySummary(es.Reads),
		TrimLatency:     toLatencySummary(es.Trims),
		GCStalledWrites: toLatencySummary(es.GCStalledWrites),
		Queue:           d.queueStats(),
	}
}

// ResetStats starts a fresh measurement window: write-amplification and the
// latency distributions are measured from this point on, typically after a
// warm-up phase so steady-state behaviour is reported. Cumulative operation
// counts (Snapshot.Ops, Snapshot.GC counters) are not reset.
func (d *Device) ResetStats() {
	d.baseMu.Lock()
	d.baseCounters = d.dev.Counters()
	d.baseStats = d.eng.Stats()
	d.baseMu.Unlock()
	d.eng.ResetLatencyStats()
}
