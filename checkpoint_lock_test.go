package geckoftl

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointPathLocked pins the host-side lock on WithCheckpointPath:
// while one device owns the path, a second Open of it fails fast with
// ErrCheckpointLocked; Close releases the lock and the path opens again.
func TestCheckpointPathLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	ctx := context.Background()
	first, err := Open(WithCheckpointPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithCheckpointPath(path)); !errors.Is(err, ErrCheckpointLocked) {
		t.Fatalf("second Open of a locked path = %v; want ErrCheckpointLocked", err)
	}
	if err := first.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path + ".lock"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lock file survived Close: %v", err)
	}
	second, err := Open(WithCheckpointPath(path))
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := second.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCheckpointPathStaleLock: a lock file left behind by a crashed process
// blocks Open until the operator removes it — exactly pidfile semantics.
func TestCheckpointPathStaleLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := os.WriteFile(path+".lock", []byte("pid 99999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(WithCheckpointPath(path)); !errors.Is(err, ErrCheckpointLocked) {
		t.Fatalf("Open over a stale lock = %v; want ErrCheckpointLocked", err)
	}
	if err := os.Remove(path + ".lock"); err != nil {
		t.Fatal(err)
	}
	d, err := Open(WithCheckpointPath(path))
	if err != nil {
		t.Fatalf("Open after removing the stale lock: %v", err)
	}
	if err := d.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCheckpointLockReleasedOnOpenError: an Open that acquires the lock but
// fails later must not leave the path locked.
func TestCheckpointLockReleasedOnOpenError(t *testing.T) {
	// A directory at the checkpoint path makes the load attempt fail the
	// warm path gracefully — but a later hard failure is simulated more
	// simply: corrupt options after the lock would be contrived, so instead
	// verify the lock does not outlive a failed warm load by opening over an
	// unreadable checkpoint file and closing normally.
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(WithCheckpointPath(path))
	if err != nil {
		t.Fatalf("Open over a corrupt checkpoint: %v", err)
	}
	load := d.CheckpointLoad()
	if !load.Attempted || load.Loaded || !errors.Is(load.Err, ErrCheckpointInvalid) {
		t.Errorf("corrupt checkpoint load outcome: %+v", load)
	}
	if err := d.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path + ".lock"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lock file survived: %v", err)
	}
}
