package geckoftl_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"geckoftl"
)

// fill writes every logical page `rounds` times over through batches, so the
// device reaches steady-state garbage collection.
func fill(t *testing.T, dev *geckoftl.Device, rounds int) {
	t.Helper()
	ctx := context.Background()
	lp := dev.LogicalPages()
	const batch = 128
	for r := 0; r < rounds; r++ {
		for base := int64(0); base < lp; base += batch {
			var lpns []geckoftl.LPN
			for i := base; i < base+batch && i < lp; i++ {
				lpns = append(lpns, geckoftl.LPN(i))
			}
			if err := dev.WriteBatch(ctx, lpns); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestTrimSurvivesPowerFailMidBatch is the satellite acceptance test: trim a
// range, flush it durable, power-fail in the middle of ongoing write
// batches, recover, and the trimmed pages must stay absent while the device
// passes its consistency audit.
func TestTrimSurvivesPowerFailMidBatch(t *testing.T) {
	ctx := context.Background()
	dev := open(t,
		geckoftl.WithGeometry(512, 16, 512),
		geckoftl.WithChannels(4, 1),
		geckoftl.WithCacheEntries(512),
	)
	lp := dev.LogicalPages()
	fill(t, dev, 2)

	const trimStart, trimCount = 100, 200
	if err := dev.Trim(ctx, trimStart, trimCount); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Keep write batches flowing (outside the trimmed range) from a writer
	// goroutine while the plug is pulled.
	writerDone := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(9))
		for {
			lpns := make([]geckoftl.LPN, 256)
			for i := range lpns {
				for {
					p := geckoftl.LPN(rng.Int63n(lp))
					if p < trimStart || p >= trimStart+trimCount {
						lpns[i] = p
						break
					}
				}
			}
			if err := dev.WriteBatch(ctx, lpns); err != nil {
				writerDone <- err
				return
			}
		}
	}()
	if err := dev.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; !errors.Is(err, geckoftl.ErrPowerFailed) {
		t.Fatalf("writer stopped with %v, want ErrPowerFailed", err)
	}

	report, err := dev.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Shards) != 4 {
		t.Errorf("recovery covered %d shards, want 4", len(report.Shards))
	}
	for lpn := geckoftl.LPN(trimStart); lpn < trimStart+trimCount; lpn++ {
		mapped, err := dev.Mapped(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if mapped {
			t.Fatalf("trimmed page %d resurrected by recovery", lpn)
		}
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatalf("post-recovery consistency audit: %v", err)
	}
	// Normal operation resumes, including rewriting the trimmed range.
	if err := dev.Trim(ctx, trimStart, trimCount); err != nil {
		t.Fatal(err)
	}
	fill(t, dev, 1)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestTrimRecoveryHammer is the -race variant: concurrent writers and
// trimmers in flight when the power fails, recovery afterwards, and the
// durably trimmed range stays absent. Writers stay out of the trimmed
// range; trimmers re-trim inside it (trims of unmapped pages are no-ops),
// so the range must come back unmapped no matter where the crash landed.
func TestTrimRecoveryHammer(t *testing.T) {
	ctx := context.Background()
	dev := open(t,
		geckoftl.WithGeometry(512, 16, 512),
		geckoftl.WithChannels(4, 1),
		geckoftl.WithCacheEntries(512),
	)
	lp := dev.LogicalPages()
	fill(t, dev, 2)

	const trimStart, trimCount = 64, 128
	if err := dev.Trim(ctx, trimStart, trimCount); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				lpns := make([]geckoftl.LPN, 128)
				for i := range lpns {
					for {
						p := geckoftl.LPN(rng.Int63n(lp))
						if p < trimStart || p >= trimStart+trimCount {
							lpns[i] = p
							break
						}
					}
				}
				if err := dev.WriteBatch(ctx, lpns); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + w))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				lpns := make([]geckoftl.LPN, 32)
				for i := range lpns {
					lpns[i] = trimStart + geckoftl.LPN(rng.Int63n(trimCount))
				}
				if err := dev.TrimBatch(ctx, lpns); err != nil {
					errs <- err
					return
				}
			}
		}(int64(200 + w))
	}

	if err := dev.PowerFail(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, geckoftl.ErrPowerFailed) {
			t.Fatalf("hammer goroutine stopped with %v, want ErrPowerFailed", err)
		}
	}

	if _, err := dev.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	for lpn := geckoftl.LPN(trimStart); lpn < trimStart+trimCount; lpn++ {
		mapped, err := dev.Mapped(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if mapped {
			t.Fatalf("durably trimmed page %d resurrected by crash recovery", lpn)
		}
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatalf("post-recovery consistency audit: %v", err)
	}
	fill(t, dev, 1)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
