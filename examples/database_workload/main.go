// Database workload: compare the five FTLs under an OLTP-style page-update
// pattern (a Zipfian-skewed mix of reads and writes, the access pattern the
// paper's introduction motivates with "more and more database systems and
// installations utilizing flash devices").
//
// Run with:
//
//	go run ./examples/database_workload
package main

import (
	"fmt"
	"log"

	"geckoftl/internal/ftl"
	"geckoftl/internal/sim"
	"geckoftl/internal/workload"
)

func main() {
	device := sim.DeviceSpec{Blocks: 256, PagesPerBlock: 32, PageSize: 1024, OverProvision: 0.7}
	logical := int64(device.Config().LogicalPages())
	const cacheEntries = 1024
	const writes = 30000

	configs := []ftl.Options{
		ftl.DFTLOptions(cacheEntries),
		ftl.LazyFTLOptions(cacheEntries),
		ftl.MuFTLOptions(cacheEntries),
		ftl.IBFTLOptions(cacheEntries),
		ftl.GeckoFTLOptions(cacheEntries),
	}

	fmt.Printf("OLTP-style workload: zipfian updates (skew 1.2) with 30%% point reads, %d writes measured\n\n", writes)
	var results []sim.Result
	for _, opts := range configs {
		// Each FTL gets its own generator with the same seed so the access
		// patterns are identical.
		zipf := workload.MustNewZipfian(logical, 1.2, 7)
		mixed := workload.MustNewMixed(zipf, logical, 0.3, 8)
		res, err := sim.Run(sim.RunOptions{
			Device:        device,
			FTLOptions:    opts,
			Workload:      mixed,
			MeasureWrites: writes,
		})
		if err != nil {
			log.Fatalf("%s: %v", opts.Name, err)
		}
		results = append(results, res)
	}
	fmt.Print(sim.FormatTable("write-amplification and RAM per FTL:", results))

	fmt.Println("\ninterpretation:")
	fmt.Println("  - DFTL and LazyFTL avoid page-validity IO entirely but need the 64 MB-class")
	fmt.Println("    RAM-resident PVB at full device scale (see cmd/ramcalc).")
	fmt.Println("  - uFTL pays roughly one extra flash read+write per update for its flash PVB.")
	fmt.Println("  - GeckoFTL keeps page-validity IO close to IB-FTL's log while needing far less")
	fmt.Println("    RAM and recovering much faster after power failure (see the powerfail example).")
}
