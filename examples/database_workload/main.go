// Database workload: compare the five FTLs under an OLTP-style page-update
// pattern (a Zipfian-skewed mix of reads, writes and deletes forwarded as
// trims), driven entirely through the public geckoftl device API.
//
// Run with:
//
//	go run ./examples/database_workload
package main

import (
	"context"
	"fmt"
	"log"

	"geckoftl"
)

func main() {
	const cacheEntries = 1024
	const writes = 30000
	const readRatio = 0.3
	const trimFraction = 0.05 // dropped tables and deleted rows, discarded

	fmt.Printf("OLTP-style workload: zipfian updates (skew 1.2), %.0f%% point reads, %.0f%% trims, %d writes measured\n\n",
		readRatio*100, trimFraction*100, writes)
	fmt.Printf("%-12s %10s %10s %12s %10s %12s %8s %8s\n",
		"ftl", "WA", "user", "translation", "validity", "RAM(bytes)", "GC-ops", "trims")
	for _, name := range []string{"dftl", "lazyftl", "muftl", "ibftl", "geckoftl"} {
		if err := runOne(name, cacheEntries, writes, readRatio, trimFraction); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	fmt.Println("\ninterpretation:")
	fmt.Println("  - DFTL and LazyFTL avoid page-validity IO entirely but need the 64 MB-class")
	fmt.Println("    RAM-resident PVB at full device scale (see cmd/ramcalc).")
	fmt.Println("  - uFTL pays roughly one extra flash read+write per update for its flash PVB.")
	fmt.Println("  - GeckoFTL keeps page-validity IO close to IB-FTL's log while needing far less")
	fmt.Println("    RAM and recovering much faster after power failure (see the powerfail example).")
	fmt.Println("  - trims lower everyone's write-amplification: invalid pages the host identifies")
	fmt.Println("    are pages the garbage collector never migrates.")
}

func runOne(name string, cacheEntries int, writes int64, readRatio, trimFraction float64) error {
	ctx := context.Background()
	dev, err := geckoftl.Open(
		geckoftl.WithGeometry(256, 32, 1024),
		geckoftl.WithFTL(name),
		geckoftl.WithCacheEntries(cacheEntries),
	)
	if err != nil {
		return err
	}
	defer dev.Close(ctx)

	// Each FTL gets its own generators with the same seeds so the access
	// patterns are identical.
	zipf, err := geckoftl.NewZipfian(dev.LogicalPages(), 1.2, 7)
	if err != nil {
		return err
	}
	mixed, err := geckoftl.NewMixed(zipf, dev.LogicalPages(), readRatio, 8)
	if err != nil {
		return err
	}
	gen, err := geckoftl.NewTrimming(mixed, dev.LogicalPages(), trimFraction, 9)
	if err != nil {
		return err
	}

	// Warm up with two full overwrites, then measure.
	if err := drive(ctx, dev, gen, 2*dev.LogicalPages()); err != nil {
		return err
	}
	dev.ResetStats()
	if err := drive(ctx, dev, gen, writes); err != nil {
		return err
	}

	snap := dev.Snapshot()
	fmt.Printf("%-12s %10.3f %10.3f %12.3f %10.3f %12d %8d %8d\n",
		dev.Geometry().FTL, snap.WriteAmplification, snap.UserWA, snap.TranslationWA, snap.ValidityWA,
		snap.RAMBytes, snap.GC.Collections, snap.Ops.Trims)
	return nil
}

// drive pushes operations into the device until n writes have been served.
func drive(ctx context.Context, dev *geckoftl.Device, gen geckoftl.Workload, n int64) error {
	var done int64
	for done < n {
		op := gen.Next()
		switch op.Kind {
		case geckoftl.OpRead:
			if err := dev.Read(ctx, op.Page); err != nil {
				return err
			}
		case geckoftl.OpTrim:
			if err := dev.TrimBatch(ctx, []geckoftl.LPN{op.Page}); err != nil {
				return err
			}
		default:
			if err := dev.Write(ctx, op.Page); err != nil {
				return err
			}
			done++
		}
	}
	return nil
}
