// Tuning: explore Logarithmic Gecko's two tuning knobs -- the size ratio T
// and the entry-partitioning factor S -- through the public geckoftl API,
// the way Sections 3.2, 3.3, 5.1 and 5.2 of the paper analyze them.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"geckoftl"
)

func main() {
	scale := geckoftl.ExperimentScale{
		Device:        geckoftl.DeviceSpec{Blocks: 256, PagesPerBlock: 32, PageSize: 1024, OverProvision: 0.7},
		MeasureWrites: 20000,
		Seed:          3,
	}

	// 1. Analytical view (Table 1): how the amortized costs move with T.
	fmt.Println("analytical per-operation costs (K=2^22, B=128, P=4KB):")
	fmt.Printf("  %-6s %16s %16s %12s\n", "T", "update writes", "GC query reads", "levels")
	for _, t := range []int{2, 4, 8, 16, 32} {
		cfg := geckoftl.DefaultGeckoConfig(1<<22, 128, 4096)
		cfg.SizeRatio = t
		m := cfg.AnalyticalCost()
		fmt.Printf("  %-6d %16.5f %16.1f %12d\n", t, m.UpdateWrites, m.QueryReads, cfg.Levels())
	}
	best := geckoftl.OptimalGeckoSizeRatio(geckoftl.DefaultGeckoConfig(1<<22, 128, 4096), 0.01, 10, 32)
	fmt.Printf("  analytically best T for the paper's workload regime: %d\n\n", best)

	// 2. Simulated view (Figure 9): write-amplification per T against the
	// flash-resident PVB baseline.
	fmt.Println("simulated write-amplification of the page-validity structure (uniform updates):")
	rows, err := geckoftl.Figure9(scale)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s WA=%.4f (reads=%d writes=%d)\n", r.Name, r.WA, r.FlashReads, r.FlashWrites)
	}
	fmt.Println()

	// 3. Entry-partitioning (Figure 10): the effect of S as B grows.
	fmt.Println("entry-partitioning: write-amplification for different block sizes:")
	partRows, err := geckoftl.Figure10(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s %-14s %10s\n", "block size", "partitioning", "WA")
	for _, r := range partRows {
		label := fmt.Sprintf("S=%d", r.PartitionFactor)
		if r.PartitionFactor == -1 {
			label = "recommended"
		}
		fmt.Printf("  %-12d %-14s %10.4f\n", r.BlockSize, label, r.WA)
	}
	fmt.Println("\ntakeaway: T=2 with the recommended S keeps updates cheap and GC queries scalable,")
	fmt.Println("which is exactly the configuration GeckoFTL ships with.")
}
