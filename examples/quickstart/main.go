// Quickstart: open a simulated flash device through the public geckoftl
// API, issue writes, reads and trims, and inspect the statistics snapshot.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"geckoftl"
)

func main() {
	ctx := context.Background()

	// A small simulated device: 256 blocks of 32 pages of 1 KB, the paper's
	// default 70% logical-to-physical ratio, GeckoFTL with a 1024-entry
	// mapping cache.
	dev, err := geckoftl.Open(
		geckoftl.WithGeometry(256, 32, 1024),
		geckoftl.WithCacheEntries(1024),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close(ctx)

	g := dev.Geometry()
	fmt.Printf("device: %d blocks x %d pages x %dB (%s, %d shard), %d logical pages\n",
		g.Blocks, g.PagesPerBlock, g.PageSizeBytes, g.FTL, g.Shards, g.LogicalPages)

	// Write every logical page once, then update random pages for a while so
	// that garbage-collection kicks in.
	for lpn := geckoftl.LPN(0); int64(lpn) < dev.LogicalPages(); lpn++ {
		if err := dev.Write(ctx, lpn); err != nil {
			log.Fatal(err)
		}
	}
	gen, err := geckoftl.NewUniform(dev.LogicalPages(), 42)
	if err != nil {
		log.Fatal(err)
	}
	dev.ResetStats()
	const updates = 20000
	for i := 0; i < updates; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			log.Fatal(err)
		}
	}

	// Read a few pages back, and trim a range the host no longer needs:
	// trimmed pages read as zeroes and their old versions become free
	// invalid space for the garbage collector.
	for lpn := geckoftl.LPN(0); lpn < 10; lpn++ {
		if err := dev.Read(ctx, lpn); err != nil {
			log.Fatal(err)
		}
	}
	if err := dev.Trim(ctx, 100, 64); err != nil {
		log.Fatal(err)
	}
	mapped, err := dev.Mapped(100)
	if err != nil {
		log.Fatal(err)
	}

	snap := dev.Snapshot()
	fmt.Printf("\nafter %d random updates and a 64-page trim:\n", updates)
	fmt.Printf("  write-amplification:        %.3f\n", snap.WriteAmplification)
	fmt.Printf("    user data:                %.3f\n", snap.UserWA)
	fmt.Printf("    translation metadata:     %.3f\n", snap.TranslationWA)
	fmt.Printf("    page-validity metadata:   %.3f\n", snap.ValidityWA)
	fmt.Printf("  trims served:               %d (page 100 mapped: %v)\n", snap.Ops.Trims, mapped)
	fmt.Printf("  integrated RAM:             %d bytes\n", snap.RAMBytes)
	fmt.Printf("  garbage-collections:        %d\n", snap.GC.Collections)
	fmt.Printf("  checkpoints:                %d\n", snap.Checkpoints)
	fmt.Printf("  write latency p50/p99/max:  %s / %s / %s\n",
		snap.WriteLatency.P50, snap.WriteLatency.P99, snap.WriteLatency.Max)
	fmt.Printf("  simulated device time:      %s\n", snap.SimulatedTime.Round(time.Millisecond))
}
