// Quickstart: create a simulated flash device, mount GeckoFTL on it, issue
// reads and writes, and inspect the write-amplification and RAM statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/workload"
)

func main() {
	// A small simulated device: 256 blocks of 32 pages of 1 KB, with the
	// paper's default 70% logical-to-physical ratio and latency model.
	cfg := flash.ScaledConfig(256)
	cfg.PagesPerBlock = 32
	cfg.PageSize = 1024
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Mount GeckoFTL with a 1024-entry mapping cache.
	f, err := ftl.NewGeckoFTL(dev, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s, %d logical pages exposed to the application\n", cfg, f.LogicalPages())

	// Write every logical page once, then update random pages for a while so
	// that garbage-collection kicks in.
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.Write(flash.LPN(lpn)); err != nil {
			log.Fatal(err)
		}
	}
	gen := workload.MustNewUniform(f.LogicalPages(), 42)
	dev.ResetCounters()
	const updates = 20000
	for i := 0; i < updates; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			log.Fatal(err)
		}
	}
	// Read a few pages back.
	for lpn := flash.LPN(0); lpn < 10; lpn++ {
		if err := f.Read(lpn); err != nil {
			log.Fatal(err)
		}
	}

	counters := dev.Counters()
	delta := cfg.Latency.WriteReadRatio()
	fmt.Printf("\nafter %d random updates:\n", updates)
	fmt.Printf("  write-amplification:        %.3f\n", counters.WriteAmplification(updates, delta))
	fmt.Printf("    user data:                %.3f\n",
		counters.PurposeWriteAmplification(flash.PurposeUserWrite, updates, delta)+
			counters.PurposeWriteAmplification(flash.PurposeGCMigration, updates, delta))
	fmt.Printf("    translation metadata:     %.3f\n",
		counters.PurposeWriteAmplification(flash.PurposeTranslation, updates, delta))
	fmt.Printf("    page-validity metadata:   %.3f\n",
		counters.PurposeWriteAmplification(flash.PurposePageValidity, updates, delta))
	fmt.Printf("  integrated RAM:             %d bytes\n", f.RAMBytes())
	fmt.Printf("  garbage-collections:        %d\n", f.Stats().GCOperations)
	fmt.Printf("  checkpoints:                %d\n", f.Stats().Checkpoints)
	fmt.Printf("  simulated device time:      %s\n", dev.SimulatedTime().Round(time.Millisecond))
}
