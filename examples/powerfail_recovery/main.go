// Power-failure recovery walkthrough, in two acts.
//
// Act 1 runs GeckoFTL, LazyFTL and DFTL through the same single-plane
// workload, pulls the plug, and compares what recovery has to do
// (Section 4.3 and Appendix C of the paper).
//
// Act 2 crashes a production-shaped deployment: an 8-channel device under a
// sharded ftl.Engine, power-failed abruptly in the middle of concurrent write
// batches, then recovered with per-shard GeckoRec running in parallel across
// the channels. The report shows the wall-clock win over a single serialized
// recovery scan.
//
// Run with:
//
//	go run ./examples/powerfail_recovery
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/workload"
)

func main() {
	for _, build := range []struct {
		name string
		make func(flash.Plane, int) (*ftl.FTL, error)
	}{
		{"GeckoFTL", ftl.NewGeckoFTL},
		{"LazyFTL", ftl.NewLazyFTL},
		{"DFTL (battery)", ftl.NewDFTL},
	} {
		if err := crashAndRecover(build.name, build.make); err != nil {
			log.Fatalf("%s: %v", build.name, err)
		}
	}
	if err := crashAndRecoverEngine(); err != nil {
		log.Fatalf("engine: %v", err)
	}
}

func crashAndRecover(name string, make func(flash.Plane, int) (*ftl.FTL, error)) error {
	cfg := flash.ScaledConfig(256)
	cfg.PagesPerBlock = 32
	cfg.PageSize = 1024
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		return err
	}
	f, err := make(dev, 2048)
	if err != nil {
		return err
	}

	// Run a random update workload long enough to fill the device and leave
	// plenty of dirty mapping entries in the cache.
	gen := workload.MustNewUniform(f.LogicalPages(), 99)
	const writes = 25000
	for i := 0; i < writes; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d writes issued, %d dirty mapping entries cached, %d checkpoints taken\n",
		name, writes, f.DirtyEntries(), f.Stats().Checkpoints)

	// Pull the plug. All integrated RAM is lost; flash survives.
	if err := f.PowerFail(); err != nil {
		return err
	}
	report, err := f.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("  recovery took %s of simulated device time\n", report.Duration.Round(time.Microsecond))
	fmt.Printf("    spare-area reads: %d, page reads: %d, page writes: %d\n",
		report.SpareReads, report.PageReads, report.PageWrites)
	if report.UsedBattery {
		fmt.Println("    dirty mapping entries were synchronized on battery power before shutdown")
	} else {
		fmt.Printf("    mapping entries recreated by the backwards scan: %d\n", report.RecoveredMappingEntries)
		if report.SynchronizedBeforeResume {
			fmt.Println("    recovered entries were synchronized with the translation table BEFORE resuming")
		} else {
			fmt.Println("    synchronization deferred until after normal operation resumed (GeckoFTL's lazy recovery)")
		}
	}

	// Normal operation continues: a few more updates after recovery.
	for i := 0; i < 1000; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			return err
		}
	}
	fmt.Printf("  post-recovery writes succeeded; device write-amplification stays accounted per purpose\n\n")
	return nil
}

// crashAndRecoverEngine crashes a sharded 8-channel engine in the middle of
// concurrent write batches and recovers every shard in parallel.
func crashAndRecoverEngine() error {
	cfg := flash.ScaledConfig(512)
	cfg.PagesPerBlock = 32
	cfg.PageSize = 1024
	cfg.Channels = 8
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		return err
	}
	eng, err := ftl.NewEngine(dev, ftl.GeckoFTLOptions(512), 0)
	if err != nil {
		return err
	}
	lp := eng.LogicalPages()
	gen := workload.MustNewUniform(lp, 7)
	fmt.Printf("engine: GeckoFTL sharded over %d channels, %d logical pages\n", eng.Shards(), lp)

	// Fill the device past capacity so garbage collection is live, then keep
	// batches flowing from a writer goroutine while the plug is pulled.
	batch := func() []flash.LPN {
		lpns := make([]flash.LPN, 256)
		for i := range lpns {
			lpns[i] = gen.Next().Page
		}
		return lpns
	}
	for done := int64(0); done < 2*lp; done += 256 {
		if err := eng.WriteBatch(batch()); err != nil {
			return err
		}
	}
	writerDone := make(chan error, 1)
	go func() {
		for {
			if err := eng.WriteBatch(batch()); err != nil {
				writerDone <- err
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond) // let batches get in flight
	if err := eng.PowerFail(); err != nil {
		return err
	}
	if err := <-writerDone; !errors.Is(err, flash.ErrPowerFailed) {
		return fmt.Errorf("writer stopped with unexpected error: %w", err)
	}
	fmt.Println("  power failed mid-batch; in-flight writes aborted with flash.ErrPowerFailed")

	report, err := eng.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("  engine recovery wall-clock %s (parallel across %d channels), serial scan would take %s — %.1fx faster\n",
		report.WallClock.Round(time.Microsecond), eng.Shards(),
		report.SerialTime.Round(time.Microsecond), report.Speedup())
	fmt.Printf("  recovery IO: %d spare reads, %d page reads, %d page writes, %d mapping entries recreated\n",
		report.SpareReads, report.PageReads, report.PageWrites, report.RecoveredMappingEntries)
	for _, s := range report.Shards {
		marker := " "
		if s.Shard == report.SlowestShard {
			marker = "*" // critical path
		}
		fmt.Printf("   %s shard %d: %10s, %6d spare reads, %4d entries recreated\n",
			marker, s.Shard, s.Duration.Round(time.Microsecond), s.SpareReads, s.RecoveredMappingEntries)
	}

	if err := eng.CheckConsistency(); err != nil {
		return fmt.Errorf("post-recovery consistency audit: %w", err)
	}
	for i := 0; i < 20; i++ {
		if err := eng.WriteBatch(batch()); err != nil {
			return err
		}
	}
	fmt.Println("  consistency audit passed; batched writes resumed on every channel")
	return nil
}
