// Power-failure recovery walkthrough, in two acts, driven entirely through
// the public geckoftl device API.
//
// Act 1 runs GeckoFTL, LazyFTL and DFTL through the same single-shard
// workload, pulls the plug, and compares what recovery has to do
// (Section 4.3 and Appendix C of the paper).
//
// Act 2 crashes a production-shaped deployment: an 8-channel device,
// power-failed abruptly in the middle of concurrent write batches — with a
// durably trimmed range that must stay absent — then recovered with
// per-shard GeckoRec running in parallel across the channels. The report
// shows the wall-clock win over a single serialized recovery scan.
//
// Run with:
//
//	go run ./examples/powerfail_recovery
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"geckoftl"
)

func main() {
	for _, name := range []string{"geckoftl", "lazyftl", "dftl"} {
		if err := crashAndRecover(name); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if err := crashAndRecoverEngine(); err != nil {
		log.Fatalf("engine: %v", err)
	}
}

func crashAndRecover(name string) error {
	ctx := context.Background()
	dev, err := geckoftl.Open(
		geckoftl.WithGeometry(256, 32, 1024),
		geckoftl.WithFTL(name),
		geckoftl.WithCacheEntries(2048),
	)
	if err != nil {
		return err
	}

	// Run a random update workload long enough to fill the device and leave
	// plenty of dirty mapping entries in the cache.
	gen, err := geckoftl.NewUniform(dev.LogicalPages(), 99)
	if err != nil {
		return err
	}
	const writes = 25000
	for i := 0; i < writes; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			return err
		}
	}
	snap := dev.Snapshot()
	fmt.Printf("%s: %d writes issued, %d checkpoints taken\n",
		dev.Geometry().FTL, snap.Ops.Writes, snap.Checkpoints)

	// Pull the plug. All integrated RAM is lost; flash survives.
	if err := dev.PowerFail(); err != nil {
		return err
	}
	report, err := dev.Recover(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  recovery took %s of simulated device time\n", report.WallClock.Round(time.Microsecond))
	fmt.Printf("    spare-area reads: %d, page reads: %d, page writes: %d\n",
		report.SpareReads, report.PageReads, report.PageWrites)
	if report.UsedBattery {
		fmt.Println("    dirty mapping entries were synchronized on battery power before shutdown")
	} else {
		fmt.Printf("    mapping entries recreated by the backwards scan: %d\n", report.RecoveredMappingEntries)
	}

	// Normal operation continues: a few more updates after recovery.
	for i := 0; i < 1000; i++ {
		if err := dev.Write(ctx, gen.Next().Page); err != nil {
			return err
		}
	}
	fmt.Printf("  post-recovery writes succeeded\n\n")
	return dev.Close(ctx)
}

// crashAndRecoverEngine crashes a sharded 8-channel device in the middle of
// concurrent write batches — after durably trimming a range — and recovers
// every shard in parallel.
func crashAndRecoverEngine() error {
	ctx := context.Background()
	dev, err := geckoftl.Open(
		geckoftl.WithGeometry(512, 32, 1024),
		geckoftl.WithChannels(8, 1),
		geckoftl.WithCacheEntries(4096),
	)
	if err != nil {
		return err
	}
	lp := dev.LogicalPages()
	g := dev.Geometry()
	gen, err := geckoftl.NewUniform(lp, 7)
	if err != nil {
		return err
	}
	fmt.Printf("engine: %s sharded over %d channels, %d logical pages\n", g.FTL, g.Channels, lp)

	// Fill the device past capacity so garbage collection is live.
	batch := func() []geckoftl.LPN {
		lpns := make([]geckoftl.LPN, 256)
		for i := range lpns {
			lpns[i] = gen.Next().Page
		}
		return lpns
	}
	for done := int64(0); done < 2*lp; done += 256 {
		if err := dev.WriteBatch(ctx, batch()); err != nil {
			return err
		}
	}

	// The host discards a range and flushes, making the trim durable: these
	// pages must stay absent across the crash (as long as nothing rewrites
	// them, so the crash-window writer steers around the range).
	const trimStart, trimCount = 1000, 500
	if err := dev.Trim(ctx, trimStart, trimCount); err != nil {
		return err
	}
	if err := dev.Flush(ctx); err != nil {
		return err
	}
	fmt.Printf("  trimmed and flushed pages [%d,%d)\n", trimStart, trimStart+trimCount)
	outsideTrim := func() []geckoftl.LPN {
		lpns := batch()
		for i := range lpns {
			for lpns[i] >= trimStart && lpns[i] < trimStart+trimCount {
				lpns[i] = gen.Next().Page
			}
		}
		return lpns
	}

	// Keep batches flowing from a writer goroutine while the plug is pulled.
	writerDone := make(chan error, 1)
	go func() {
		for {
			if err := dev.WriteBatch(ctx, outsideTrim()); err != nil {
				writerDone <- err
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond) // let batches get in flight
	if err := dev.PowerFail(); err != nil {
		return err
	}
	if err := <-writerDone; !errors.Is(err, geckoftl.ErrPowerFailed) {
		return fmt.Errorf("writer stopped with unexpected error: %w", err)
	}
	fmt.Println("  power failed mid-batch; in-flight writes aborted with geckoftl.ErrPowerFailed")

	report, err := dev.Recover(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  engine recovery wall-clock %s (parallel across %d channels), serial scan would take %s — %.1fx faster\n",
		report.WallClock.Round(time.Microsecond), g.Channels,
		report.SerialTime.Round(time.Microsecond), report.Speedup())
	fmt.Printf("  recovery IO: %d spare reads, %d page reads, %d page writes, %d mapping entries recreated\n",
		report.SpareReads, report.PageReads, report.PageWrites, report.RecoveredMappingEntries)
	for _, s := range report.Shards {
		marker := " "
		if s.Shard == report.SlowestShard {
			marker = "*" // critical path
		}
		fmt.Printf("   %s shard %d: %10s, %6d spare reads, %4d entries recreated\n",
			marker, s.Shard, s.Duration.Round(time.Microsecond), s.SpareReads, s.RecoveredMappingEntries)
	}

	// The durably trimmed range stayed absent.
	for lpn := geckoftl.LPN(trimStart); lpn < trimStart+trimCount; lpn++ {
		mapped, err := dev.Mapped(lpn)
		if err != nil {
			return err
		}
		if mapped {
			return fmt.Errorf("trimmed page %d resurrected by recovery", lpn)
		}
	}
	fmt.Println("  durably trimmed range verified absent after recovery")

	if err := dev.CheckConsistency(); err != nil {
		return fmt.Errorf("post-recovery consistency audit: %w", err)
	}
	for i := 0; i < 20; i++ {
		if err := dev.WriteBatch(ctx, batch()); err != nil {
			return err
		}
	}
	fmt.Println("  consistency audit passed; batched writes resumed on every channel")
	return dev.Close(ctx)
}
