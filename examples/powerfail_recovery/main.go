// Power-failure recovery walkthrough: run GeckoFTL and LazyFTL through the
// same workload, pull the plug, and compare what recovery has to do
// (Section 4.3 and Appendix C of the paper).
//
// Run with:
//
//	go run ./examples/powerfail_recovery
package main

import (
	"fmt"
	"log"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/workload"
)

func main() {
	for _, build := range []struct {
		name string
		make func(flash.Plane, int) (*ftl.FTL, error)
	}{
		{"GeckoFTL", ftl.NewGeckoFTL},
		{"LazyFTL", ftl.NewLazyFTL},
		{"DFTL (battery)", ftl.NewDFTL},
	} {
		if err := crashAndRecover(build.name, build.make); err != nil {
			log.Fatalf("%s: %v", build.name, err)
		}
	}
}

func crashAndRecover(name string, make func(flash.Plane, int) (*ftl.FTL, error)) error {
	cfg := flash.ScaledConfig(256)
	cfg.PagesPerBlock = 32
	cfg.PageSize = 1024
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		return err
	}
	f, err := make(dev, 2048)
	if err != nil {
		return err
	}

	// Run a random update workload long enough to fill the device and leave
	// plenty of dirty mapping entries in the cache.
	gen := workload.NewUniform(f.LogicalPages(), 99)
	const writes = 25000
	for i := 0; i < writes; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d writes issued, %d dirty mapping entries cached, %d checkpoints taken\n",
		name, writes, f.DirtyEntries(), f.Stats().Checkpoints)

	// Pull the plug. All integrated RAM is lost; flash survives.
	if err := f.PowerFail(); err != nil {
		return err
	}
	report, err := f.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("  recovery took %s of simulated device time\n", report.Duration.Round(time.Microsecond))
	fmt.Printf("    spare-area reads: %d, page reads: %d, page writes: %d\n",
		report.SpareReads, report.PageReads, report.PageWrites)
	if report.UsedBattery {
		fmt.Println("    dirty mapping entries were synchronized on battery power before shutdown")
	} else {
		fmt.Printf("    mapping entries recreated by the backwards scan: %d\n", report.RecoveredMappingEntries)
		if report.SynchronizedBeforeResume {
			fmt.Println("    recovered entries were synchronized with the translation table BEFORE resuming")
		} else {
			fmt.Println("    synchronization deferred until after normal operation resumed (GeckoFTL's lazy recovery)")
		}
	}

	// Normal operation continues: a few more updates after recovery.
	for i := 0; i < 1000; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			return err
		}
	}
	fmt.Printf("  post-recovery writes succeeded; device write-amplification stays accounted per purpose\n\n")
	return nil
}
