package geckoftl

import (
	"fmt"

	"geckoftl/internal/flash"
)

// FaultPlan describes how the simulated media misbehaves: per-operation
// probabilistic failure rates plus a scripted schedule, all deterministic
// under Seed. Install one at Open with WithFaultPlan. The FTL is built to
// survive every fault a plan can inject — failed programs are retried on the
// next frontier page, failed (or worn-out) erases retire the block as a grown
// bad block, and read-disturbed blocks are scrubbed when a scrub threshold is
// configured — so a fault plan degrades capacity and performance, never
// correctness.
type FaultPlan = flash.FaultPlan

// FaultEvent schedules one deterministic fault: the Nth device operation of
// the given kind (1-based, counted while the plan is installed) fails.
type FaultEvent = flash.FaultEvent

// FlashOp identifies a device operation kind in a FaultEvent.
type FlashOp = flash.Op

// The operation kinds a FaultEvent can target.
const (
	// OpPageWrite faults fail the page program; the page is consumed
	// unreadable and the FTL retries on the next frontier page.
	OpPageWrite = flash.OpPageWrite
	// OpPageRead faults decay the page payload (read disturb); the read
	// fails with ErrReadDecayed.
	OpPageRead = flash.OpPageRead
	// OpErase faults fail the block erase; the block is retired as a grown
	// bad block and the device's usable capacity shrinks by one block.
	OpErase = flash.OpErase
)

// WithFaultPlan installs a fault-injection plan on the device before any IO
// is issued. The zero plan injects nothing. Invalid plans (rates outside
// [0,1], events for operations that cannot fault) are rejected by Open under
// ErrInvalidConfig.
func WithFaultPlan(plan FaultPlan) Option {
	return func(c *config) error {
		if err := plan.Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
		c.faults = &plan
		return nil
	}
}

// WithScrubReadThreshold enables read-disturb scrubbing: a block that absorbs
// the given number of page reads since its last erase is relocated and erased
// so its payloads are rewritten before they decay. Zero (the default)
// disables scrubbing. To stay ahead of a fault plan whose ReadDisturbLimit is
// T, pick a threshold of at most T minus the device's pages per block (the
// scrub's own migration reads count too). Ignored when WithFTLOptions
// supplies explicit FTL options — set FTLOptions.ScrubReadThreshold instead.
func WithScrubReadThreshold(reads int) Option {
	return func(c *config) error {
		if reads < 0 {
			return fmt.Errorf("%w: scrub read threshold %d must be >= 0", ErrInvalidConfig, reads)
		}
		c.scrubReads = &reads
		return nil
	}
}
