// Package geckoftl's module-level benchmarks regenerate every table and
// figure of the paper's evaluation section (run with
// `go test -bench=. -benchmem`), plus ablation benchmarks for the design
// choices DESIGN.md calls out. Each benchmark reports the figure's key
// numbers as custom metrics so that `bench_output.txt` doubles as the
// reproduced results.
package geckoftl_test

import (
	"fmt"
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/sim"
	"geckoftl/internal/workload"
)

// benchScale sizes the simulations run by the benchmarks. It is larger than
// the unit-test scale but small enough that the full suite finishes in a few
// minutes.
func benchScale() sim.ExperimentScale {
	return sim.ExperimentScale{
		Device:        sim.DeviceSpec{Blocks: 256, PagesPerBlock: 32, PageSize: 1024, OverProvision: 0.7},
		MeasureWrites: 20000,
		CacheEntries:  1024,
		Seed:          1,
	}
}

// BenchmarkFigure1 reproduces Figure 1: LazyFTL's integrated RAM requirement
// and recovery time as device capacity grows (analytical, full scale).
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points := sim.Figure1()
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(float64(p.RAMBytes)/(1<<20), fmt.Sprintf("RAM_MB_at_%dGB", p.CapacityBytes>>30))
				b.ReportMetric(p.Recovery.Seconds(), fmt.Sprintf("recovery_s_at_%dGB", p.CapacityBytes>>30))
			}
		}
	}
}

// BenchmarkTable1 reproduces Table 1: the per-operation IO costs and RAM of
// the three page-validity schemes (analytical, full scale).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := sim.Table1()
		if i == 0 {
			for _, r := range rows {
				name := map[string]string{
					"RAM-resident PVB":   "ramPVB",
					"Flash-resident PVB": "flashPVB",
					"Logarithmic Gecko":  "gecko",
				}[r.Technique]
				b.ReportMetric(r.UpdateWrites, name+"_update_writes")
				b.ReportMetric(r.QueryReads, name+"_query_reads")
				b.ReportMetric(float64(r.RAMBytes)/(1<<20), name+"_RAM_MB")
			}
		}
	}
}

// BenchmarkFigure9 reproduces Figure 9: Logarithmic Gecko under size ratios
// T = 2..32 versus a flash-resident PVB, under uniform random updates.
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure9(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.WA, "WA_"+r.Name)
			}
		}
	}
}

// BenchmarkFigure10 reproduces Figure 10: entry-partitioning makes
// write-amplification independent of the block size B.
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure10(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				label := fmt.Sprintf("WA_B%d_S%d", r.BlockSize, r.PartitionFactor)
				if r.PartitionFactor == -1 {
					label = fmt.Sprintf("WA_B%d_Srec", r.BlockSize)
				}
				b.ReportMetric(r.WA, label)
			}
		}
	}
}

// BenchmarkFigure11 reproduces Figure 11: write-amplification versus the
// number of blocks K for Logarithmic Gecko and the flash PVB.
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure11(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.GeckoWA, fmt.Sprintf("gecko_WA_K%d", r.Blocks))
				b.ReportMetric(r.PVBWA, fmt.Sprintf("pvb_WA_K%d", r.Blocks))
			}
		}
	}
}

// BenchmarkFigure12 reproduces Figure 12: the effect of over-provisioning on
// Logarithmic Gecko's IO.
func BenchmarkFigure12(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure12(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.WA, fmt.Sprintf("WA_R%.0f", r.OverProvision*100))
				b.ReportMetric(float64(r.GCQueries), fmt.Sprintf("gc_queries_R%.0f", r.OverProvision*100))
			}
		}
	}
}

// BenchmarkFigure13RAM reproduces the top part of Figure 13: the integrated
// RAM breakdown of every FTL (analytical, full scale).
func BenchmarkFigure13RAM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := sim.Figure13RAM()
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Total())/(1<<20), fmt.Sprintf("RAM_MB_%s", r.FTL))
			}
		}
	}
}

// BenchmarkFigure13Recovery reproduces the middle part of Figure 13: the
// recovery-time breakdown of every FTL (analytical, full scale).
func BenchmarkFigure13Recovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := sim.Figure13Recovery()
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Total().Seconds(), fmt.Sprintf("recovery_s_%s", r.FTL))
			}
		}
	}
}

// BenchmarkFigure13WA reproduces the bottom part of Figure 13: the simulated
// write-amplification breakdown of every FTL under uniform random writes.
func BenchmarkFigure13WA(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure13WA(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.WA, "WA_"+r.Name)
				b.ReportMetric(r.ValidityWA, "validityWA_"+r.Name)
				b.ReportMetric(r.TranslationWA, "translationWA_"+r.Name)
			}
		}
	}
}

// BenchmarkFigure14 reproduces Figure 14: with an equal RAM budget, the RAM
// freed by dropping the PVB is spent on a larger mapping cache.
func BenchmarkFigure14(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure14(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.WA, "WA_"+r.Name)
				b.ReportMetric(float64(r.CacheEntries), "cache_"+r.Name)
			}
		}
	}
}

// BenchmarkRecoverySimulation complements the analytical Figure 13 middle
// with an executable crash-recovery measurement of every FTL.
func BenchmarkRecoverySimulation(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.MeasureWrites = 10000
	for i := 0; i < b.N; i++ {
		rows, err := sim.RecoverySimulation(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Duration.Seconds()*1000, "recovery_ms_"+r.Name)
			}
		}
	}
}

// BenchmarkHeadlineSummary evaluates the paper's three headline claims.
func BenchmarkHeadlineSummary(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		s, err := sim.Headlines(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*s.RAMReduction, "ram_reduction_pct")
			b.ReportMetric(100*s.RecoveryReduction, "recovery_reduction_pct")
			b.ReportMetric(100*s.ValidityWAReduction, "validity_WA_reduction_pct")
		}
	}
}

// runVariant measures one FTL options variant under uniform writes and
// returns its overall write-amplification.
func runVariant(b *testing.B, opts ftl.Options) sim.Result {
	b.Helper()
	scale := benchScale()
	res, err := sim.Run(sim.RunOptions{
		Device:        scale.Device,
		FTLOptions:    opts,
		Workload:      workload.MustNewUniform(int64(scale.Device.Config().LogicalPages()), scale.Seed),
		MeasureWrites: scale.MeasureWrites,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationGCPolicy compares GeckoFTL's metadata-aware
// victim-selection policy (Section 4.2) against the greedy policy used by
// existing FTLs, holding everything else fixed.
func BenchmarkAblationGCPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aware := ftl.GeckoFTLOptions(benchScale().CacheEntries)
		greedy := aware
		greedy.Name = "GeckoFTL-greedy"
		greedy.VictimPolicy = ftl.VictimGreedy
		ra := runVariant(b, aware)
		rg := runVariant(b, greedy)
		if i == 0 {
			b.ReportMetric(ra.WA, "WA_metadata_aware")
			b.ReportMetric(rg.WA, "WA_greedy")
		}
	}
}

// BenchmarkAblationMultiWayMerge compares two-way against multi-way merging
// (Appendix A) inside GeckoFTL.
func BenchmarkAblationMultiWayMerge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		twoWay := ftl.GeckoFTLOptions(benchScale().CacheEntries)
		multi := twoWay
		multi.Name = "GeckoFTL-multiway"
		multi.GeckoMultiWayMerge = true
		r2 := runVariant(b, twoWay)
		rm := runVariant(b, multi)
		if i == 0 {
			b.ReportMetric(r2.ValidityWA, "validityWA_two_way")
			b.ReportMetric(rm.ValidityWA, "validityWA_multi_way")
		}
	}
}

// BenchmarkAblationCheckpoints measures the write-amplification cost of
// GeckoFTL's runtime checkpoints (Section 4.3): the paper argues it is
// negligible.
func BenchmarkAblationCheckpoints(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		with := ftl.GeckoFTLOptions(benchScale().CacheEntries)
		without := with
		without.Name = "GeckoFTL-nocheckpoint"
		without.Checkpoints = false
		rw := runVariant(b, with)
		ro := runVariant(b, without)
		if i == 0 {
			b.ReportMetric(rw.TranslationWA, "translationWA_checkpoints")
			b.ReportMetric(ro.TranslationWA, "translationWA_no_checkpoints")
		}
	}
}

// BenchmarkAblationPartitioning measures entry-partitioning (Section 3.3)
// inside the full GeckoFTL rather than in isolation. It uses the paper's
// 128-page blocks: with smaller blocks the recommended partitioning factor is
// already 1 and there is nothing to ablate.
func BenchmarkAblationPartitioning(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	scale.Device.PagesPerBlock = 128
	scale.Device.Blocks = 128
	run := func(opts ftl.Options) sim.Result {
		res, err := sim.Run(sim.RunOptions{
			Device:        scale.Device,
			FTLOptions:    opts,
			Workload:      workload.MustNewUniform(int64(scale.Device.Config().LogicalPages()), scale.Seed),
			MeasureWrites: scale.MeasureWrites,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		recommended := ftl.GeckoFTLOptions(scale.CacheEntries)
		unpartitioned := recommended
		unpartitioned.Name = "GeckoFTL-S1"
		unpartitioned.GeckoPartitionFactor = 1
		rr := run(recommended)
		ru := run(unpartitioned)
		if i == 0 {
			b.ReportMetric(rr.ValidityWA, "validityWA_partitioned")
			b.ReportMetric(ru.ValidityWA, "validityWA_unpartitioned")
		}
	}
}

// BenchmarkAblationDirtyBound shows the contention the paper removes: a
// GeckoFTL variant forced to bound its dirty entries (as LazyFTL does) pays
// more translation-metadata write-amplification.
func BenchmarkAblationDirtyBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		unbounded := ftl.GeckoFTLOptions(benchScale().CacheEntries)
		bounded := unbounded
		bounded.Name = "GeckoFTL-bounded"
		bounded.DirtyFraction = 0.1
		ru := runVariant(b, unbounded)
		rb := runVariant(b, bounded)
		if i == 0 {
			b.ReportMetric(ru.TranslationWA, "translationWA_unbounded")
			b.ReportMetric(rb.TranslationWA, "translationWA_bounded")
		}
	}
}

// BenchmarkChannelSweep measures how the sharded engine's write throughput
// scales with the device's channel count (the multi-channel extension beyond
// the paper; see docs/benchmarks.md). It reports simulated logical writes
// per second and the speedup over one channel.
func BenchmarkChannelSweep(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := sim.ChannelSweep(sim.ChannelSweepOptions{Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Throughput, fmt.Sprintf("writes_per_s_C%d", p.Channels))
				b.ReportMetric(p.Speedup, fmt.Sprintf("speedup_C%d", p.Channels))
				b.ReportMetric(p.LoadImbalance, fmt.Sprintf("imbalance_C%d", p.Channels))
			}
		}
	}
}

// BenchmarkRecoverySweep measures engine-wide crash recovery across channel
// counts, checkpoint intervals and device capacities (see docs/benchmarks.md,
// "Recovery experiments"). It reports the recovery wall-clock per channel
// count and the parallel speedup over the serial scan.
func BenchmarkRecoverySweep(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := sim.RecoverySweep(sim.RecoverySweepOptions{Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				if p.Dimension != "channels" {
					continue
				}
				b.ReportMetric(p.WallClock.Seconds()*1000, fmt.Sprintf("recovery_ms_C%d", p.Channels))
				b.ReportMetric(p.Speedup, fmt.Sprintf("recovery_speedup_C%d", p.Channels))
			}
		}
	}
}

// BenchmarkLatencySweep measures per-write tail latency of the sharded
// engine under inline versus incremental garbage-collection scheduling (see
// docs/benchmarks.md, "Latency experiments"). It reports the p99.9 and
// maximum write latency plus the worst GC stall per mode, under zipfian
// skew at both victim policies.
func BenchmarkLatencySweep(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := sim.LatencySweep(sim.LatencySweepOptions{
			Scale:     scale,
			Workloads: []string{"zipfian"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				tag := fmt.Sprintf("%s_%s", p.GCMode, p.Policy)
				b.ReportMetric(p.Write.P999.Seconds()*1000, "p999_ms_"+tag)
				b.ReportMetric(p.Write.Max.Seconds()*1000, "max_ms_"+tag)
				b.ReportMetric(p.MaxGCStall.Seconds()*1000, "max_stall_ms_"+tag)
				b.ReportMetric(p.WA, "WA_"+tag)
			}
		}
	}
}

// BenchmarkWearSweep measures the hot/cold-separation experiment on the
// skewed workloads, reporting write-amplification and erase spread per
// frontier configuration.
func BenchmarkWearSweep(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := sim.WearSweep(sim.WearSweepOptions{
			Scale:     scale,
			Workloads: []string{"zipfian", "hotcold"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				tag := fmt.Sprintf("%s_%s_%s", p.Workload, p.Policy, p.Frontier)
				if p.WearAware {
					tag += "_wear"
				}
				b.ReportMetric(p.WA, "WA_"+tag)
				b.ReportMetric(float64(p.EraseSpread), "erase_spread_"+tag)
			}
		}
	}
}

// BenchmarkQueueSweep measures the async submission engine against the
// synchronous baseline and the queueing model's saturation knee (see
// docs/benchmarks.md, "Queueing experiments"). It reports the closed-loop
// throughput per depth, the overload row's delivered rate against the
// modeled knee, and the p99.9 contrast between bounded admission and the
// unbounded queue.
func BenchmarkQueueSweep(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := sim.QueueSweep(sim.QueueSweepOptions{Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for j, p := range points {
				tag := fmt.Sprintf("%s_%s_d%d", p.Mode, p.Policy, p.Depth)
				if p.Offered > 0 {
					// Open rows repeat the same policy and depth at
					// different offered rates; the row index keeps their
					// metric names distinct.
					tag = fmt.Sprintf("%s_r%d", tag, j)
					b.ReportMetric(p.Offered, "offered_per_s_"+tag)
				}
				b.ReportMetric(p.Throughput, "tput_per_s_"+tag)
				if p.Shed > 0 {
					b.ReportMetric(float64(p.Shed), "shed_"+tag)
				}
				b.ReportMetric(p.Latency.P999.Seconds()*1000, "p999_ms_"+tag)
				b.ReportMetric(p.ModelKnee, "model_knee_per_s_"+tag)
			}
		}
	}
}

// BenchmarkParallelModel documents the parallelism-aware latency model's
// predictions at the paper's full-scale latencies.
func BenchmarkParallelModel(b *testing.B) {
	b.ReportAllocs()
	lat := flash.DefaultLatency()
	for i := 0; i < b.N; i++ {
		for _, c := range []int{1, 8, 16} {
			p := model.ParallelParams{Channels: c, DiesPerChannel: 2}
			tp := p.WriteThroughput(lat, 2.0)
			if tp <= 0 {
				b.Fatal("non-positive modeled throughput")
			}
			if i == 0 {
				b.ReportMetric(tp, fmt.Sprintf("model_writes_per_s_C%d", c))
			}
		}
	}
}

// BenchmarkRAMModel exercises the analytical RAM model across the five FTLs;
// it is cheap and mostly documents the model's outputs in bench_output.txt.
func BenchmarkRAMModel(b *testing.B) {
	b.ReportAllocs()
	p := model.Default()
	for i := 0; i < b.N; i++ {
		for _, k := range model.Kinds() {
			r := model.RAM(k, p)
			if r.Total() <= 0 {
				b.Fatal("non-positive RAM total")
			}
		}
	}
}
