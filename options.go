package geckoftl

import (
	"fmt"

	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
)

// FTLOptions is the full FTL configuration; the paper's five schemes are
// built by GeckoFTLOptions, DFTLOptions, LazyFTLOptions, MuFTLOptions and
// IBFTLOptions, and WithFTLOptions hands a tweaked copy to Open.
type FTLOptions = ftl.Options

// GCMode selects how the garbage collector schedules its work relative to
// host writes; see GCInline and GCIncremental.
type GCMode = ftl.GCMode

// VictimPolicy selects garbage-collection victims; see VictimGreedy and
// VictimMetadataAware.
type VictimPolicy = ftl.VictimPolicy

// The garbage-collection scheduling modes and victim policies.
const (
	// GCInline reclaims whole victims synchronously inside the write that
	// found the free pool at the reserve: throughput-optimal, but one write
	// can absorb an entire victim's relocation cost as a stall.
	GCInline = ftl.GCInline
	// GCIncremental bounds the garbage-collection work charged to any
	// single write, draining victims across consecutive writes.
	GCIncremental = ftl.GCIncremental
	// VictimGreedy always reclaims the block with the fewest valid pages.
	VictimGreedy = ftl.VictimGreedy
	// VictimMetadataAware never migrates translation or metadata blocks
	// (Section 4.2 of the paper); GeckoFTL's policy.
	VictimMetadataAware = ftl.VictimMetadataAware
	// VictimCostBenefit reclaims the user block with the highest age ×
	// invalid-fraction score, sparing young and cold blocks; like
	// VictimMetadataAware it never migrates metadata blocks.
	VictimCostBenefit = ftl.VictimCostBenefit
)

// DefaultGCPagesPerWrite is the incremental garbage collector's default
// per-write step budget.
const DefaultGCPagesPerWrite = ftl.DefaultGCPagesPerWrite

// ParseGCMode maps "inline" or "incremental" to the GCMode; anything else is
// an ErrInvalidConfig error. Command-line tools route their flags through it.
func ParseGCMode(s string) (GCMode, error) {
	m, err := ftl.ParseGCMode(s)
	return m, configErr(err)
}

// ParseVictimPolicy maps "greedy" or "metadata-aware" to the VictimPolicy.
func ParseVictimPolicy(s string) (VictimPolicy, error) {
	p, err := ftl.ParseVictimPolicy(s)
	return p, configErr(err)
}

// GeckoFTLOptions returns the paper's GeckoFTL configuration with the given
// mapping-cache capacity.
func GeckoFTLOptions(cacheEntries int) FTLOptions { return ftl.GeckoFTLOptions(cacheEntries) }

// DFTLOptions returns the DFTL configuration.
func DFTLOptions(cacheEntries int) FTLOptions { return ftl.DFTLOptions(cacheEntries) }

// LazyFTLOptions returns the LazyFTL configuration.
func LazyFTLOptions(cacheEntries int) FTLOptions { return ftl.LazyFTLOptions(cacheEntries) }

// MuFTLOptions returns the µ-FTL configuration.
func MuFTLOptions(cacheEntries int) FTLOptions { return ftl.MuFTLOptions(cacheEntries) }

// IBFTLOptions returns the IB-FTL configuration.
func IBFTLOptions(cacheEntries int) FTLOptions { return ftl.IBFTLOptions(cacheEntries) }

// FTLOptionsByName returns the named scheme's configuration: "geckoftl" (or
// "gecko"), "dftl", "lazyftl" (or "lazy"), "muftl" (or "mu", "uftl"),
// "ibftl" (or "ib").
func FTLOptionsByName(name string, cacheEntries int) (FTLOptions, error) {
	switch name {
	case "", "gecko", "geckoftl":
		return ftl.GeckoFTLOptions(cacheEntries), nil
	case "dftl":
		return ftl.DFTLOptions(cacheEntries), nil
	case "lazy", "lazyftl":
		return ftl.LazyFTLOptions(cacheEntries), nil
	case "mu", "uftl", "muftl", "mu-ftl":
		return ftl.MuFTLOptions(cacheEntries), nil
	case "ib", "ibftl", "ib-ftl":
		return ftl.IBFTLOptions(cacheEntries), nil
	default:
		return FTLOptions{}, fmt.Errorf("%w: unknown FTL %q (want geckoftl, dftl, lazyftl, muftl or ibftl)", ErrInvalidConfig, name)
	}
}

// config collects what the options build before Open turns it into a device
// and an engine.
type config struct {
	blocks, pagesPerBlock, pageSize int
	overProvision                   float64
	channels, diesPerChannel        int
	shards                          int

	ftlName      string
	cacheEntries int

	// explicit, when set by WithFTLOptions, wins over the named knobs.
	explicit    *FTLOptions
	gcMode      *GCMode
	gcPages     *int
	policy      *VictimPolicy
	battery     *bool
	wearLevel   *bool
	checkpoints *bool
	hotCold     *bool
	wearAware   *bool
	scrubReads  *int

	// faults, when set by WithFaultPlan, is installed on the device at Open,
	// before any IO.
	faults *FaultPlan

	// checkpointPath, when set by WithCheckpointPath, is where Close/Flush
	// write the metadata checkpoint and where Open looks for one to load.
	checkpointPath string

	// queueDepth and queueAdmission configure the asynchronous submission
	// path (Device.SubmitWrite and friends).
	queueDepth     int
	queueAdmission AdmissionPolicy
}

// defaultConfig sizes a small device that exercises every subsystem quickly:
// 256 blocks of 32 pages of 1 KB at the paper's 70% logical-to-physical
// ratio, one channel, GeckoFTL with a 1024-entry mapping cache.
func defaultConfig() config {
	return config{
		blocks:         256,
		pagesPerBlock:  32,
		pageSize:       1024,
		overProvision:  flash.DefaultOverProvision,
		cacheEntries:   1024,
		queueDepth:     DefaultQueueDepth,
		queueAdmission: AdmitWait,
	}
}

// An Option configures Open.
type Option func(*config) error

// WithGeometry sets the device geometry: the number of blocks, pages per
// block, and the page size in bytes.
func WithGeometry(blocks, pagesPerBlock, pageSizeBytes int) Option {
	return func(c *config) error {
		if blocks <= 0 || pagesPerBlock <= 0 || pageSizeBytes <= 0 {
			return fmt.Errorf("%w: geometry %dx%dx%d must be positive", ErrInvalidConfig, blocks, pagesPerBlock, pageSizeBytes)
		}
		c.blocks, c.pagesPerBlock, c.pageSize = blocks, pagesPerBlock, pageSizeBytes
		return nil
	}
}

// WithOverProvision sets R, the logical-to-physical capacity ratio in (0,1);
// the paper's default is 0.70.
func WithOverProvision(r float64) Option {
	return func(c *config) error {
		if r <= 0 || r >= 1 {
			return fmt.Errorf("%w: over-provision ratio %g out of range (0,1)", ErrInvalidConfig, r)
		}
		c.overProvision = r
		return nil
	}
}

// WithChannels sets the device topology: channels times diesPerChannel
// independently latching dies. The engine runs one FTL shard per channel by
// default, which is what scales throughput and recovery with the channel
// count.
func WithChannels(channels, diesPerChannel int) Option {
	return func(c *config) error {
		if channels < 1 || diesPerChannel < 1 {
			return fmt.Errorf("%w: topology %dx%d must be at least 1x1", ErrInvalidConfig, channels, diesPerChannel)
		}
		c.channels, c.diesPerChannel = channels, diesPerChannel
		return nil
	}
}

// WithShards overrides the engine's shard count (default: one per channel).
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: shard count %d must be at least 1", ErrInvalidConfig, n)
		}
		c.shards = n
		return nil
	}
}

// WithFTL selects the FTL scheme by name: "geckoftl" (the default), "dftl",
// "lazyftl", "muftl" or "ibftl".
func WithFTL(name string) Option {
	return func(c *config) error {
		if _, err := FTLOptionsByName(name, 1); err != nil {
			return err
		}
		c.ftlName = name
		return nil
	}
}

// WithCacheEntries sets C, the mapping cache's capacity in entries (the
// device's RAM budget knob; 8 bytes per entry under the paper's model). With
// S shards each shard receives C/S entries.
func WithCacheEntries(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: cache capacity %d must be positive", ErrInvalidConfig, n)
		}
		c.cacheEntries = n
		return nil
	}
}

// WithGCMode selects inline or incremental garbage-collection scheduling.
func WithGCMode(mode GCMode) Option {
	return func(c *config) error {
		if mode != GCInline && mode != GCIncremental {
			return fmt.Errorf("%w: unknown GC mode %v", ErrInvalidConfig, mode)
		}
		c.gcMode = &mode
		return nil
	}
}

// WithGCPagesPerWrite sets the incremental garbage collector's per-write
// step budget (0 selects DefaultGCPagesPerWrite; ignored under GCInline).
func WithGCPagesPerWrite(k int) Option {
	return func(c *config) error {
		if k < 0 {
			return fmt.Errorf("%w: GC pages per write %d must be >= 0", ErrInvalidConfig, k)
		}
		c.gcPages = &k
		return nil
	}
}

// WithVictimPolicy selects the garbage-collection victim policy.
func WithVictimPolicy(p VictimPolicy) Option {
	return func(c *config) error {
		if p != VictimGreedy && p != VictimMetadataAware && p != VictimCostBenefit {
			return fmt.Errorf("%w: unknown victim policy %v", ErrInvalidConfig, p)
		}
		c.policy = &p
		return nil
	}
}

// WithHotColdSeparation gives user data two write frontiers: a per-LPN heat
// classifier (exponentially decayed write counts) routes each host write to
// the hot or cold one, so blocks fill with pages of similar lifetimes. On
// skewed workloads this lowers write-amplification — hot blocks are almost
// fully invalid when the garbage collector reaches them, and cold blocks are
// not churned — at the cost of one extra active block and ~4 bytes of RAM
// per logical page for the classifier.
func WithHotColdSeparation(on bool) Option {
	return func(c *config) error { c.hotCold = &on; return nil }
}

// WithWearAwareAllocation makes the block manager hand out the least-erased
// free block (coldest-erase-count first) instead of the most recently freed
// one, narrowing the device's erase-count spread (Snapshot.EraseSpread) and
// so extending its lifetime.
func WithWearAwareAllocation(on bool) Option {
	return func(c *config) error { c.wearAware = &on; return nil }
}

// WithBattery sets whether the device has a battery that flushes dirty
// mapping entries at power failure (the DFTL/µ-FTL assumption). Without one,
// PowerFail is an abrupt rail cut and Recover rebuilds state from flash.
func WithBattery(on bool) Option {
	return func(c *config) error { c.battery = &on; return nil }
}

// WithWearLeveling enables the gradual-scan wear-leveler.
func WithWearLeveling(on bool) Option {
	return func(c *config) error { c.wearLevel = &on; return nil }
}

// WithCheckpoints sets whether runtime checkpoints bound the recovery
// backwards scan (GeckoFTL's Section 4.3 behaviour, on by default for it).
func WithCheckpoints(on bool) Option {
	return func(c *config) error { c.checkpoints = &on; return nil }
}

// WithCheckpointPath enables durable metadata checkpoints at the given host
// file path. Close and Flush write a versioned, checksummed snapshot of all
// FTL metadata there (atomically: temp file + rename), and Open attempts to
// load it for a warm start; Restart uses it to model a clean
// shutdown-and-reboot cycle. A missing, corrupt, version-skewed or stale
// checkpoint is never an error — the device falls back to a cold start (or
// GeckoRec, after a crash) and records the reason, inspectable via
// CheckpointLoad. Only battery-less GeckoFTL devices write checkpoints;
// other schemes silently skip them.
func WithCheckpointPath(path string) Option {
	return func(c *config) error {
		if path == "" {
			return fmt.Errorf("%w: checkpoint path must not be empty", ErrInvalidConfig)
		}
		c.checkpointPath = path
		return nil
	}
}

// DefaultQueueDepth is the asynchronous submission path's default per-shard
// queue depth.
const DefaultQueueDepth = 32

// WithQueueDepth sets the asynchronous submission path's per-shard queue
// depth: both the number of submissions a shard buffers and, times the
// page-program latency, the virtual backlog budget admission control enforces
// (see WithAdmissionPolicy). Deeper queues reach more of the device's
// parallelism and tolerate burstier arrivals; shallower ones bound the
// latency an admitted operation can queue behind.
func WithQueueDepth(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: queue depth %d must be at least 1", ErrInvalidConfig, n)
		}
		c.queueDepth = n
		return nil
	}
}

// WithAdmissionPolicy selects what the asynchronous submission path does with
// an operation whose shard backlog exceeds the queue depth's budget: AdmitShed
// drops it (the Ticket fails with ErrQueueFull, keeping the completed
// operations' tail bounded), AdmitWait — the default — admits it anyway and
// counts the delay.
func WithAdmissionPolicy(p AdmissionPolicy) Option {
	return func(c *config) error {
		if p != AdmitShed && p != AdmitWait {
			return fmt.Errorf("%w: unknown admission policy %v", ErrInvalidConfig, p)
		}
		c.queueAdmission = p
		return nil
	}
}

// WithFTLOptions hands Open a fully explicit FTL configuration, overriding
// WithFTL, WithCacheEntries and the other FTL-level knobs. Use the *Options
// constructors as starting points.
func WithFTLOptions(opts FTLOptions) Option {
	return func(c *config) error { c.explicit = &opts; return nil }
}

// ftlOptions resolves the configured FTL options.
func (c *config) ftlOptions() (FTLOptions, error) {
	if c.explicit != nil {
		return *c.explicit, nil
	}
	opts, err := FTLOptionsByName(c.ftlName, c.cacheEntries)
	if err != nil {
		return FTLOptions{}, err
	}
	if c.gcMode != nil {
		opts.GCMode = *c.gcMode
	}
	if c.gcPages != nil {
		opts.GCPagesPerWrite = *c.gcPages
	}
	if c.policy != nil {
		opts.VictimPolicy = *c.policy
	}
	if c.battery != nil {
		opts.Battery = *c.battery
	}
	if c.wearLevel != nil {
		opts.WearLeveling = *c.wearLevel
	}
	if c.checkpoints != nil {
		opts.Checkpoints = *c.checkpoints
	}
	if c.hotCold != nil {
		opts.HotColdSeparation = *c.hotCold
	}
	if c.wearAware != nil {
		opts.WearAwareAllocation = *c.wearAware
	}
	if c.scrubReads != nil {
		opts.ScrubReadThreshold = *c.scrubReads
	}
	return opts, nil
}

// flashConfig resolves the configured device geometry.
func (c *config) flashConfig() flash.Config {
	cfg := flash.ScaledConfig(c.blocks)
	cfg.PagesPerBlock = c.pagesPerBlock
	cfg.PageSize = c.pageSize
	cfg.OverProvision = c.overProvision
	cfg.Channels = c.channels
	cfg.DiesPerChannel = c.diesPerChannel
	return cfg
}
