package geckoftl

import (
	"context"
	"time"

	"geckoftl/internal/queue"
)

// AdmissionPolicy selects what the asynchronous submission path does with an
// operation that arrives when its shard's backlog already exceeds the queue
// depth's budget; see AdmitShed and AdmitWait.
type AdmissionPolicy = queue.Policy

const (
	// AdmitShed drops the overflowing operation: its Ticket completes with an
	// error matching ErrQueueFull, the drop is counted in
	// Snapshot.Queue.Shed, and the operations that do complete keep a bounded
	// latency tail because nothing ever queues behind more than the budget.
	AdmitShed = queue.AdmitShed
	// AdmitWait admits the overflowing operation anyway: nothing is dropped,
	// the overflow is counted in Snapshot.Queue.Delayed, and its queueing
	// delay is charged from the instant the backlog last fit the budget.
	AdmitWait = queue.AdmitWait
)

// ParseAdmissionPolicy maps "shed" or "wait" to the AdmissionPolicy; anything
// else is an ErrInvalidConfig error. Command-line tools route their flags
// through it.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	p, err := queue.ParsePolicy(s)
	return p, configErr(err)
}

// Ticket is the future of one asynchronous submission: it completes when the
// operation has executed, been shed by admission control, or been cancelled.
// All methods are safe for concurrent use.
type Ticket struct {
	tk *queue.Ticket
}

// Done returns a channel closed when the operation has completed.
func (t *Ticket) Done() <-chan struct{} { return t.tk.Done() }

// Err returns the operation's outcome under the public error taxonomy: nil
// for success, ErrQueueFull for an operation shed by admission control, the
// submission context's error for a cancellation observed before execution,
// and the executed operation's error otherwise. Before completion it returns
// ErrPending.
func (t *Ticket) Err() error { return wrapErr(t.tk.Err()) }

// Wait blocks until the operation completes or ctx is cancelled, returning
// the operation's outcome as Err would (or ctx's error). A nil ctx waits
// indefinitely.
func (t *Ticket) Wait(ctx context.Context) error { return wrapErr(t.tk.Wait(ctx)) }

// CompletedAt returns the operation's completion instant on the simulator's
// virtual timeline (zero for shed or cancelled operations). Valid once Done
// is closed.
func (t *Ticket) CompletedAt() time.Duration { return t.tk.CompletedAt() }

// SubmitWrite enqueues one logical page write on the device's asynchronous
// submission path and returns its Ticket without waiting for execution.
//
// Each engine shard has a submission queue of WithQueueDepth entries drained
// in FIFO order by the shard's worker. The operation's virtual arrival is
// stamped at submission; if the shard's backlog has grown past the depth's
// budget by the time the worker reaches it, the configured WithAdmissionPolicy
// decides its fate — see AdmitShed and AdmitWait. A caller that keeps several
// submissions in flight overlaps them across channels and dies, which is how
// the device's parallelism is reached; see Drain to quiesce.
func (d *Device) SubmitWrite(ctx context.Context, lpn LPN) (*Ticket, error) {
	return d.submit(ctx, queue.OpWrite, lpn)
}

// SubmitRead enqueues one logical page read; semantics as SubmitWrite.
func (d *Device) SubmitRead(ctx context.Context, lpn LPN) (*Ticket, error) {
	return d.submit(ctx, queue.OpRead, lpn)
}

// SubmitTrim enqueues a trim of one logical page; semantics as SubmitWrite.
func (d *Device) SubmitTrim(ctx context.Context, lpn LPN) (*Ticket, error) {
	return d.submit(ctx, queue.OpTrim, lpn)
}

// submit routes one asynchronous operation through the lazily started
// submission engine.
func (d *Device) submit(ctx context.Context, kind queue.OpKind, lpn LPN) (*Ticket, error) {
	if err := d.guard(ctx); err != nil {
		return nil, err
	}
	q, err := d.queueEngine()
	if err != nil {
		return nil, err
	}
	s, err := d.eng.ShardOf(lpn)
	if err != nil {
		return nil, wrapErr(err)
	}
	// The arrival stamp is the shard's current virtual instant: admission
	// control then measures exactly the backlog that accrues between this
	// submission and the worker dequeuing it.
	tk, err := q.Submit(ctx, queue.Request{Kind: kind, LPN: lpn, Arrival: d.eng.ShardClock(s), Timed: true})
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Ticket{tk: tk}, nil
}

// Drain blocks until every operation submitted (via Submit*) before the call
// has completed. Operations submitted concurrently with Drain may or may not
// be covered. A device that never submitted asynchronously drains trivially.
func (d *Device) Drain(ctx context.Context) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	d.qMu.Lock()
	q := d.q
	d.qMu.Unlock()
	if q == nil {
		return nil
	}
	return wrapErr(q.Drain(ctx))
}

// queueEngine returns the device's submission engine, starting it on first
// use — a device that never submits asynchronously runs no queue goroutines.
func (d *Device) queueEngine() (*queue.Engine, error) {
	d.qMu.Lock()
	defer d.qMu.Unlock()
	if d.q != nil {
		return d.q, nil
	}
	q, err := queue.New(queue.Config{
		Shards:  d.eng.Shards(),
		Depth:   d.queueDepth,
		Policy:  d.queueAdmission,
		Quantum: d.dev.Config().Latency.PageWrite,
		ShardOf: d.eng.ShardOf,
		Exec: func(_ int, req queue.Request) error {
			switch req.Kind {
			case queue.OpRead:
				return d.eng.Read(req.LPN)
			case queue.OpTrim:
				return d.eng.Trim(req.LPN)
			default:
				return d.eng.Write(req.LPN)
			}
		},
		Clock:   d.eng.ShardClock,
		Advance: d.eng.ShardAdvanceArrival,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	d.q = q
	return q, nil
}

// stopQueue shuts the submission engine down, letting already queued
// operations execute to completion; Close calls it before the final flush so
// nothing lands after the checkpoint.
func (d *Device) stopQueue() {
	d.qMu.Lock()
	q := d.q
	d.qMu.Unlock()
	if q != nil {
		q.Close()
	}
}

// queueStats reads the submission engine's counters; the zero value when the
// asynchronous path was never used.
func (d *Device) queueStats() QueueStats {
	d.qMu.Lock()
	q := d.q
	d.qMu.Unlock()
	if q == nil {
		return QueueStats{Depth: d.queueDepth, Policy: d.queueAdmission.String()}
	}
	st := q.Stats()
	return QueueStats{
		Depth:     st.Depth,
		Policy:    st.Policy,
		Submitted: st.Submitted,
		Completed: st.Completed,
		Shed:      st.Shed,
		Delayed:   st.Delayed,
		Cancelled: st.Cancelled,
		InFlight:  st.InFlight,
		Latency:   toLatencySummary(st.Latency),
	}
}
