package geckoftl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"geckoftl/internal/checkpoint"
	"geckoftl/internal/flash"
	"geckoftl/internal/ftl"
	"geckoftl/internal/model"
	"geckoftl/internal/queue"
)

// LPN is a logical page number: the host-visible block-device address space
// is the half-open range [0, Device.LogicalPages()).
type LPN = flash.LPN

// Device is a simulated flash block device: a multi-channel NAND device with
// a sharded flash translation layer on top, opened by Open. All methods are
// safe for concurrent use.
//
// The device is a simulator: operations execute synchronously under a
// virtual device-time model (no wall-clock sleeping), and the latencies
// Snapshot reports are simulated service times, deterministic for a given
// request sequence. Contexts are honoured at operation boundaries: an
// operation observed to be cancelled before dispatch returns the context's
// error and performs no IO.
type Device struct {
	eng    *ftl.Engine
	dev    *flash.Device
	closed atomic.Bool

	// base anchors Snapshot's windowed metrics (write-amplification) at Open
	// or the last ResetStats; baseMu makes Snapshot and ResetStats safe to
	// call from any goroutine.
	baseMu       sync.Mutex
	baseCounters flash.Counters
	baseStats    ftl.Stats

	// checkpointPath, when set by WithCheckpointPath, is where Close/Flush
	// persist the metadata checkpoint and where Open/Restart load it from.
	checkpointPath string
	// checkpointLock is the held host-side lock on checkpointPath, released
	// at Close; nil when checkpointing is disabled.
	checkpointLock *checkpoint.Lock

	// qMu guards the lazily started submission engine (async.go);
	// queueDepth and queueAdmission are its configuration, fixed at Open.
	qMu            sync.Mutex
	q              *queue.Engine
	queueDepth     int
	queueAdmission AdmissionPolicy

	// ckptMu guards the checkpoint bookkeeping below.
	ckptMu sync.Mutex
	// ckptLoad is the outcome of the most recent checkpoint load attempt.
	ckptLoad CheckpointLoad
	// ckptBytes is the size of the most recently written checkpoint.
	ckptBytes int64
}

// Open builds a device from functional options: geometry, topology, FTL
// scheme, garbage-collection mode, cache budget, battery. Defaults: a
// 256-block device of 32 pages of 1 KB at 70% over-provisioning, one
// channel, GeckoFTL with a 1024-entry mapping cache, inline GC.
//
// Errors are classified under ErrInvalidConfig.
func Open(opts ...Option) (*Device, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, wrapErr(err)
		}
	}
	ftlOpts, err := cfg.ftlOptions()
	if err != nil {
		return nil, wrapErr(err)
	}
	dev, err := flash.NewDevice(cfg.flashConfig())
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	if cfg.faults != nil {
		if err := dev.SetFaultPlan(*cfg.faults); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
	}
	eng, err := ftl.NewEngine(dev, ftlOpts, cfg.shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	d := &Device{
		eng:            eng,
		dev:            dev,
		checkpointPath: cfg.checkpointPath,
		queueDepth:     cfg.queueDepth,
		queueAdmission: cfg.queueAdmission,
	}
	if d.checkpointPath != "" {
		// Own the path for this device's lifetime: a second Open of the same
		// path fails fast with ErrCheckpointLocked instead of the two devices
		// silently clobbering each other's checkpoints.
		lock, err := checkpoint.Acquire(d.checkpointPath)
		if err != nil {
			return nil, wrapErr(err)
		}
		d.checkpointLock = lock
		if err := d.loadCheckpointAtOpen(); err != nil {
			_ = lock.Release()
			return nil, err
		}
	}
	return d, nil
}

// loadCheckpointAtOpen attempts to start warm from the configured
// checkpoint file. A missing file is an ordinary cold start; a found
// checkpoint that fails any validation — magic, version, checksums, or the
// stale-sequence check against device truth (a freshly opened simulated
// device is blank, so any checkpoint describing written flash is stale) —
// is recorded in CheckpointLoad and the device proceeds cold, never
// half-loaded. Only an internal failure of the fallback itself is an error.
func (d *Device) loadCheckpointAtOpen() error {
	file, bytes, err := checkpoint.ReadFile(d.checkpointPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		d.setCheckpointLoad(CheckpointLoad{Attempted: true, Err: checkpointErr(err)})
		return nil
	}
	// Validate read-only first: a checkpoint that does not match this
	// device falls back cold without any state having been touched.
	if err := d.eng.ValidateCheckpoint(file); err != nil {
		d.setCheckpointLoad(CheckpointLoad{Attempted: true, Bytes: bytes, Err: checkpointErr(err)})
		return nil
	}
	// The checkpoint matches device truth: import it through the restart
	// path (drop RAM state, restore from the file).
	if err := d.eng.PowerFail(); err != nil {
		return wrapErr(err)
	}
	if err := d.eng.RestoreCheckpoint(file); err != nil {
		d.setCheckpointLoad(CheckpointLoad{Attempted: true, Bytes: bytes, Err: checkpointErr(err)})
		if _, rerr := d.eng.Recover(); rerr != nil {
			return wrapErr(rerr)
		}
		return nil
	}
	d.setCheckpointLoad(CheckpointLoad{Attempted: true, Loaded: true, Bytes: bytes})
	return nil
}

// CheckpointLoad describes the outcome of the most recent attempt to load a
// metadata checkpoint, at Open or during Restart.
type CheckpointLoad struct {
	// Attempted reports that a checkpoint was found and considered.
	Attempted bool
	// Loaded reports that the checkpoint passed every validation and the
	// device started warm from it.
	Loaded bool
	// Bytes is the checkpoint's encoded size.
	Bytes int64
	// Err is the reason a considered checkpoint was rejected, classified
	// under ErrCheckpointInvalid; nil when Loaded or when nothing was found.
	Err error
}

// CheckpointLoad returns the outcome of the most recent checkpoint load
// attempt. The zero value means no checkpoint was found or configured.
func (d *Device) CheckpointLoad() CheckpointLoad {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.ckptLoad
}

// setCheckpointLoad records a checkpoint load outcome.
func (d *Device) setCheckpointLoad(l CheckpointLoad) {
	d.ckptMu.Lock()
	d.ckptLoad = l
	d.ckptMu.Unlock()
}

// writeCheckpoint exports and persists the metadata checkpoint; Close and
// Flush call it after a successful flush. Configurations that cannot be
// checkpointed (non-Gecko schemes, battery devices) skip silently, as does
// a power failure racing the export — Close tolerates exactly that race on
// the flush itself.
func (d *Device) writeCheckpoint() error {
	if d.checkpointPath == "" {
		return nil
	}
	file, err := d.eng.ExportCheckpoint()
	switch {
	case err == nil:
	case errors.Is(err, ftl.ErrCheckpointUnsupported), errors.Is(err, flash.ErrPowerFailed):
		return nil
	default:
		return wrapErr(err)
	}
	n, err := checkpoint.WriteFile(d.checkpointPath, file)
	if err != nil {
		return err
	}
	d.ckptMu.Lock()
	d.ckptBytes = n
	d.ckptMu.Unlock()
	return nil
}

// guard rejects operations on closed devices and honours the context.
func (d *Device) guard(ctx context.Context) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// LogicalPages returns the number of logical pages the device exposes.
func (d *Device) LogicalPages() int64 { return d.eng.LogicalPages() }

// Geometry describes an open device: the physical layout and the logical
// capacity derived from it.
type Geometry struct {
	Blocks, PagesPerBlock, PageSizeBytes int
	Channels, DiesPerChannel             int
	OverProvision                        float64
	LogicalPages                         int64
	FTL                                  string
	Shards                               int
}

// Geometry reports the device's resolved configuration.
func (d *Device) Geometry() Geometry {
	cfg := d.dev.Config()
	return Geometry{
		Blocks:         cfg.Blocks,
		PagesPerBlock:  cfg.PagesPerBlock,
		PageSizeBytes:  cfg.PageSize,
		Channels:       cfg.NumChannels(),
		DiesPerChannel: cfg.Dies() / cfg.NumChannels(),
		OverProvision:  cfg.OverProvision,
		LogicalPages:   d.eng.LogicalPages(),
		FTL:            d.eng.Shard(0).Name(),
		Shards:         d.eng.Shards(),
	}
}

// Write updates one logical page.
func (d *Device) Write(ctx context.Context, lpn LPN) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	return wrapErr(d.eng.Write(lpn))
}

// Read reads one logical page. Reading a never-written or trimmed page
// succeeds and returns zeroes without flash IO.
func (d *Device) Read(ctx context.Context, lpn LPN) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	return wrapErr(d.eng.Read(lpn))
}

// Trim discards the logical page range [start, start+count): the host
// declares the pages' contents dead. Trimmed pages read as zeroes and their
// physical before-images become invalid pages the garbage collector reclaims
// for free. Like writes, trims become durable at the next Flush (or natural
// synchronization); a trim followed immediately by PowerFail may come back
// mapped, matching a real device's non-flushed TRIM.
func (d *Device) Trim(ctx context.Context, start LPN, count int) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	if count < 0 || start < 0 || int64(start)+int64(count) > d.eng.LogicalPages() {
		return fmt.Errorf("%w: trim range [%d,%d) of %d logical pages", ErrOutOfRange, start, int64(start)+int64(count), d.eng.LogicalPages())
	}
	lpns := make([]LPN, count)
	for i := range lpns {
		lpns[i] = start + LPN(i)
	}
	return wrapErr(d.eng.TrimBatch(ctx, lpns))
}

// WriteBatch updates every logical page in lpns, fanning the requests out
// across the engine's shards in parallel. Pages of the same shard are
// written in slice order; ordering across shards is unspecified, as on a
// real multi-channel controller.
//
// ctx is honoured throughout the batch, not only at entry: every shard
// re-checks it between operations, so cancelling mid-batch stops each
// shard's remaining sub-batch at an operation boundary. Pages already
// written stay written (and durable per the usual Flush contract); the
// returned error matches ctx.Err() under errors.Is.
func (d *Device) WriteBatch(ctx context.Context, lpns []LPN) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	return wrapErr(d.eng.WriteBatch(ctx, lpns))
}

// ReadBatch reads every logical page in lpns in parallel across shards.
// Cancellation semantics as for WriteBatch.
func (d *Device) ReadBatch(ctx context.Context, lpns []LPN) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	return wrapErr(d.eng.ReadBatch(ctx, lpns))
}

// TrimBatch trims every logical page in lpns in parallel across shards.
// Cancellation semantics as for WriteBatch.
func (d *Device) TrimBatch(ctx context.Context, lpns []LPN) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	return wrapErr(d.eng.TrimBatch(ctx, lpns))
}

// Flush forces all dirty state — mapping entries, page-validity buffers — to
// flash, making every completed write and trim durable against power
// failure. With WithCheckpointPath configured it also persists a fresh
// metadata checkpoint, so a later Open of the same path starts warm.
func (d *Device) Flush(ctx context.Context) error {
	if err := d.guard(ctx); err != nil {
		return err
	}
	if err := d.eng.Flush(); err != nil {
		return wrapErr(err)
	}
	return d.writeCheckpoint()
}

// Mapped reports whether a logical page currently holds host data: false
// for never-written and trimmed pages. It is an inspection helper (no
// simulated IO is charged), useful in tests and audits.
func (d *Device) Mapped(lpn LPN) (bool, error) {
	if d.closed.Load() {
		return false, ErrClosed
	}
	mapped, err := d.eng.Mapped(lpn)
	return mapped, wrapErr(err)
}

// Close flushes dirty state and marks the device closed; subsequent
// operations return ErrClosed. Closing a power-failed device skips the flush
// (there is no power to flush with) and still closes. With
// WithCheckpointPath configured, a clean Close writes the shutdown
// checkpoint after the flush; a power-failed Close writes nothing, so the
// path holds at most the previous (still atomic, still loadable) checkpoint.
func (d *Device) Close(ctx context.Context) error {
	// Honour the context before latching the closed state: a cancelled
	// Close must stay retryable, or the promised final flush could never
	// run.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if d.closed.Swap(true) {
		return ErrClosed
	}
	// Stop the asynchronous submission path first: queued operations execute
	// to completion before the workers exit, so nothing lands after the flush
	// and checkpoint below.
	d.stopQueue()
	err := d.closeFlush()
	if rerr := d.checkpointLock.Release(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// closeFlush is Close's flush-and-checkpoint step.
func (d *Device) closeFlush() error {
	if err := d.eng.Flush(); err != nil {
		if wrapped := wrapErr(err); errors.Is(wrapped, ErrPowerFailed) {
			return nil
		}
		return wrapErr(err)
	}
	return d.writeCheckpoint()
}

// PowerFail simulates a power failure. Without a battery the rail is cut
// abruptly: operations in flight fail with ErrPowerFailed, all RAM state is
// lost, flash survives. With a battery (WithBattery, or the DFTL/µ-FTL
// schemes) dirty state is flushed before the rail drops. A second PowerFail
// before Recover returns ErrPowerFailed.
func (d *Device) PowerFail() error {
	if d.closed.Load() {
		return ErrClosed
	}
	if err := d.eng.PowerFail(); err != nil {
		return fmt.Errorf("%w: %w", ErrPowerFailed, err)
	}
	return nil
}

// ShardRecovery is one engine shard's share of a recovery.
type ShardRecovery struct {
	// Shard is the shard index (the channel index under the default
	// one-shard-per-channel layout).
	Shard int
	// Duration is the shard's simulated recovery time.
	Duration time.Duration
	// SpareReads, PageReads and PageWrites are the shard's recovery IO.
	SpareReads, PageReads, PageWrites int64
	// RecoveredMappingEntries counts the cached mapping entries the shard's
	// backwards scan recreated.
	RecoveredMappingEntries int
}

// RecoveryReport describes a completed Recover: the wall-clock of the
// parallel per-shard recovery, what a serialized scan would have cost, and
// the IO spent.
type RecoveryReport struct {
	// WallClock is the slowest shard's recovery duration: shards recover
	// concurrently on disjoint dies, so the device resumes serving when the
	// last shard finishes.
	WallClock time.Duration
	// SerialTime is the summed per-shard duration: the cost of the same
	// recovery on a single serialized plane.
	SerialTime time.Duration
	// SlowestShard is the index of the shard on the critical path.
	SlowestShard int
	// SpareReads, PageReads and PageWrites total the recovery IO.
	SpareReads, PageReads, PageWrites int64
	// RecoveredMappingEntries totals the mapping entries recreated by the
	// shards' backwards scans.
	RecoveredMappingEntries int
	// UsedBattery reports that dirty entries were synchronized on battery
	// power at failure time instead of being recovered by scanning.
	UsedBattery bool
	// Shards holds the per-shard breakdowns, indexed by shard.
	Shards []ShardRecovery
}

// Speedup returns SerialTime/WallClock: how much faster the parallel
// recovery finished than a single-plane scan of the same flash.
func (r *RecoveryReport) Speedup() float64 {
	if r.WallClock <= 0 {
		return 1
	}
	return float64(r.SerialTime) / float64(r.WallClock)
}

// Recover restores the device after PowerFail, running each shard's recovery
// procedure (GeckoRec for GeckoFTL) concurrently across channels. It returns
// a report of the work done, or an error when no PowerFail preceded it.
// Synchronized (flushed) writes and trims are guaranteed to survive; dirty
// state from the crash window is recovered by the bounded backwards scan
// where possible.
//
// A successful Recover starts a fresh measurement window, exactly as
// ResetStats would: the recovery scan's own IO (reported in the
// RecoveryReport) is orders of magnitude larger than a write's, and charging
// it to the host window would let one post-recovery Snapshot report a
// write-amplification wildly disconnected from the workload — or mix windows
// split by the crash. Cumulative counters (Snapshot.Ops, Snapshot.GC) are
// unaffected.
func (d *Device) Recover(ctx context.Context) (*RecoveryReport, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	rep, err := d.eng.Recover()
	if err != nil {
		return nil, wrapErr(err)
	}
	// Re-base the measurement window (see above): without this, the window
	// inherited from before the crash still counts the recovery IO and the
	// pre-crash writes, and a Snapshot taken after further traffic reports a
	// write-amplification for a window no workload ever produced.
	d.ResetStats()
	out := &RecoveryReport{
		WallClock:               rep.WallClock,
		SerialTime:              rep.SerialTime,
		SlowestShard:            rep.SlowestShard,
		SpareReads:              rep.SpareReads,
		PageReads:               rep.PageReads,
		PageWrites:              rep.PageWrites,
		RecoveredMappingEntries: rep.RecoveredMappingEntries,
		UsedBattery:             rep.UsedBattery,
	}
	for _, s := range rep.Shards {
		out.Shards = append(out.Shards, ShardRecovery{
			Shard:                   s.Shard,
			Duration:                s.Duration,
			SpareReads:              s.SpareReads,
			PageReads:               s.PageReads,
			PageWrites:              s.PageWrites,
			RecoveredMappingEntries: s.RecoveredMappingEntries,
		})
	}
	return out, nil
}

// RestartReport describes a completed Restart: whether the device came back
// warm from its shutdown checkpoint, and what the restart cost.
type RestartReport struct {
	// Warm reports that the restart restored all FTL metadata from the
	// shutdown checkpoint instead of running GeckoRec.
	Warm bool
	// CheckpointBytes is the encoded size of the shutdown checkpoint, zero
	// when checkpointing is unsupported for this configuration.
	CheckpointBytes int64
	// WallClock is the restart's cost: for a warm restart, the modeled host
	// time to read and apply the checkpoint (model.WarmRestart); for a cold
	// fallback, the simulated GeckoRec recovery wall-clock.
	WallClock time.Duration
	// Fallback is the classified reason the warm path was not taken
	// (errors.Is ErrCheckpointInvalid); nil when Warm.
	Fallback error
	// Recovery is the cold fallback's recovery report; nil when Warm.
	Recovery *RecoveryReport
}

// Restart simulates a clean shutdown and reboot on the same device: flush,
// write the shutdown checkpoint, drop all RAM state, and come back up. With
// a valid checkpoint the restart is warm — every piece of FTL metadata is
// restored from the checkpoint at host-read speed, with zero flash IO. If
// the checkpoint cannot be taken (ErrCheckpointUnsupported configurations),
// written, or loaded, Restart falls back to GeckoRec cold recovery and
// reports why in RestartReport.Fallback; a bad checkpoint is never an
// error. Like Recover, a completed Restart starts a fresh measurement
// window. Restarting a power-failed device fails with ErrPowerFailed — use
// Recover for crashes; Restart models the orderly reboot.
func (d *Device) Restart(ctx context.Context) (*RestartReport, error) {
	if err := d.guard(ctx); err != nil {
		return nil, err
	}
	if err := d.eng.Flush(); err != nil {
		return nil, wrapErr(err)
	}
	var (
		file     *checkpoint.File
		bytes    int64
		fallback error
	)
	file, err := d.eng.ExportCheckpoint()
	switch {
	case err == nil:
		bytes = int64(len(checkpoint.Encode(file)))
	case errors.Is(err, ftl.ErrCheckpointUnsupported):
		file, fallback = nil, checkpointErr(err)
	default:
		return nil, wrapErr(err)
	}
	if file != nil && d.checkpointPath != "" {
		// Persist the shutdown checkpoint and reload it through the real
		// file path, so the restart exercises the same bytes a later Open
		// would see.
		if _, err := checkpoint.WriteFile(d.checkpointPath, file); err != nil {
			return nil, err
		}
		d.ckptMu.Lock()
		d.ckptBytes = bytes
		d.ckptMu.Unlock()
		if f, n, err := checkpoint.ReadFile(d.checkpointPath); err != nil {
			file, fallback = nil, checkpointErr(err)
		} else {
			file, bytes = f, n
		}
	}
	// The reboot: the rail drops and every RAM structure is lost.
	if err := d.eng.PowerFail(); err != nil {
		return nil, wrapErr(err)
	}
	if file != nil {
		if err := d.eng.RestoreCheckpoint(file); err != nil {
			file, fallback = nil, checkpointErr(err)
		}
	}
	if file != nil {
		d.setCheckpointLoad(CheckpointLoad{Attempted: true, Loaded: true, Bytes: bytes})
		d.ResetStats()
		return &RestartReport{
			Warm:            true,
			CheckpointBytes: bytes,
			WallClock:       model.WarmRestart(bytes).WallClock,
		}, nil
	}
	rep, err := d.Recover(ctx)
	if err != nil {
		return nil, err
	}
	d.setCheckpointLoad(CheckpointLoad{Attempted: bytes > 0, Bytes: bytes, Err: fallback})
	return &RestartReport{
		CheckpointBytes: bytes,
		WallClock:       rep.WallClock,
		Fallback:        fallback,
		Recovery:        rep,
	}, nil
}

// CheckConsistency audits every shard's translation map against the flash
// contents: every mapped logical page must point at a programmed physical
// page that names it, and no two logical pages may share a physical page.
// The device must be quiesced. Tests and the recovery examples run it after
// crashes.
func (d *Device) CheckConsistency() error {
	if d.closed.Load() {
		return ErrClosed
	}
	return wrapErr(d.eng.CheckConsistency())
}
