package geckoftl

import (
	"geckoftl/internal/gecko"
	"geckoftl/internal/model"
)

// The analytical models of the paper (RAM and recovery-time breakdowns at
// arbitrary device capacities, Logarithmic Gecko's tuning math), re-exported
// for cmd/ramcalc and the tuning example.

// ModelParameters are the analytical models' inputs: device geometry, cache
// budget and latency constants at an arbitrary capacity.
type ModelParameters = model.Parameters

// DefaultModelParameters returns the paper's full-scale 2 TB parameters.
func DefaultModelParameters() ModelParameters { return model.Default() }

// FTLKind names one of the paper's five FTLs in the analytical models.
type FTLKind = model.FTLKind

// The analytical models' FTL kinds.
const (
	ModelDFTL     = model.DFTL
	ModelLazyFTL  = model.LazyFTL
	ModelMuFTL    = model.MuFTL
	ModelIBFTL    = model.IBFTL
	ModelGeckoFTL = model.GeckoFTL
)

// Breakdowns and rows of the analytical figures.
type (
	RAMBreakdown      = model.RAMBreakdown
	RecoveryBreakdown = model.RecoveryBreakdown
	CapacityPoint     = model.CapacityPoint
	Table1Row         = model.Table1Row
)

// RAMAll returns the integrated-RAM breakdown of every FTL at the given
// parameters (Figure 13 top).
func RAMAll(p ModelParameters) []RAMBreakdown { return model.RAMAll(p) }

// RecoveryAll returns the recovery-time breakdown of every FTL (Figure 13
// middle).
func RecoveryAll(p ModelParameters) []RecoveryBreakdown { return model.RecoveryAll(p) }

// RAMReductionVsPVB returns the fractional page-validity RAM reduction of
// the given FTL versus a RAM-resident PVB.
func RAMReductionVsPVB(kind FTLKind, p ModelParameters) float64 {
	return model.RAMReductionVsPVB(kind, p)
}

// RecoveryReductionVsLazyFTL returns the fractional recovery-time reduction
// of the given FTL versus LazyFTL.
func RecoveryReductionVsLazyFTL(kind FTLKind, p ModelParameters) float64 {
	return model.RecoveryReductionVsLazyFTL(kind, p)
}

// GeckoConfig is Logarithmic Gecko's configuration: the size ratio T, the
// entry-partitioning factor S, and the geometry they index. Its methods
// expose the analytical cost model of Sections 3 and 5.
type GeckoConfig = gecko.Config

// GeckoCostModel is the amortized per-operation cost of a page-validity
// scheme (Table 1's columns).
type GeckoCostModel = gecko.CostModel

// DefaultGeckoConfig returns Logarithmic Gecko's default configuration for
// the given geometry.
func DefaultGeckoConfig(blocks, pagesPerBlock, pageSize int) GeckoConfig {
	return gecko.DefaultConfig(blocks, pagesPerBlock, pageSize)
}

// OptimalGeckoSizeRatio searches size ratios 2..maxT for the one minimizing
// Logarithmic Gecko's write-amplification in the given workload regime.
func OptimalGeckoSizeRatio(cfg GeckoConfig, gcPerWrite, delta float64, maxT int) int {
	return gecko.OptimalSizeRatio(cfg, gcPerWrite, delta, maxT)
}
