module geckoftl

go 1.24

// The analyzer framework is vendored under third_party/ (copied from the Go
// distribution's cmd/vendor tree) so the build needs no network; see
// third_party/golang.org/x/tools/README.md for provenance and how to
// upgrade.
replace golang.org/x/tools => ./third_party/golang.org/x/tools

require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
