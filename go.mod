module geckoftl

go 1.24
