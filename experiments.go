package geckoftl

import (
	"geckoftl/internal/sim"
)

// The experiment harness behind the paper's evaluation, re-exported so that
// the cmd/ binaries (and external users) never import internal packages.
// Types are aliases — rows returned here are the same values the internal
// harness produces — and functions are thin forwarding wrappers.

// ExperimentScale controls how much work the simulation experiments do.
type ExperimentScale = sim.ExperimentScale

// DeviceSpec describes the simulated device used by an experiment.
type DeviceSpec = sim.DeviceSpec

// QuickScale is the small test-sized scale.
func QuickScale() ExperimentScale { return sim.QuickScale() }

// FullScale is the default scale of geckobench and the benchmarks.
func FullScale() ExperimentScale { return sim.FullScale() }

// DefaultDeviceSpec is the scaled-down device used by the simulation
// experiments.
func DefaultDeviceSpec() DeviceSpec { return sim.DefaultDeviceSpec() }

// Result is the outcome of running one FTL configuration under a workload.
type Result = sim.Result

// RunOptions controls a single simulation run.
type RunOptions = sim.RunOptions

// Run executes one FTL-under-workload simulation and returns its result.
func Run(opts RunOptions) (Result, error) {
	rows, err := sim.Run(opts)
	return rows, wrapErr(err)
}

// FormatTable renders results as an aligned text table with a header.
func FormatTable(header string, results []Result) string { return sim.FormatTable(header, results) }

// IsolatedResult is the outcome of driving a page-validity scheme in
// isolation from a full FTL (the Section 5.1/5.2 methodology).
type IsolatedResult = sim.IsolatedResult

// Rows of the reproduced figures and tables.
type (
	Figure9Row  = sim.Figure9Row
	Figure10Row = sim.Figure10Row
	Figure11Row = sim.Figure11Row
	Figure12Row = sim.Figure12Row
	Figure14Row = sim.Figure14Row
)

// Figure9 compares Logarithmic Gecko under size ratios T = 2..32 against the
// flash-resident PVB baseline (Section 5.1).
func Figure9(scale ExperimentScale) ([]Figure9Row, error) {
	rows, err := sim.Figure9(scale)
	return rows, wrapErr(err)
}

// Figure10 shows entry-partitioning making write-amplification independent
// of the block size (Section 5.2).
func Figure10(scale ExperimentScale) ([]Figure10Row, error) {
	rows, err := sim.Figure10(scale)
	return rows, wrapErr(err)
}

// Figure11 scales capacity and compares Logarithmic Gecko against the
// flash-resident PVB (Section 5.2, "Capacity").
func Figure11(scale ExperimentScale) ([]Figure11Row, error) {
	rows, err := sim.Figure11(scale)
	return rows, wrapErr(err)
}

// Figure12 varies over-provisioning (Section 5.2, "Over-Provisioning").
func Figure12(scale ExperimentScale) ([]Figure12Row, error) {
	rows, err := sim.Figure12(scale)
	return rows, wrapErr(err)
}

// Figure13WA runs the five FTLs under uniformly random writes and reports
// the write-amplification breakdown of Figure 13 (bottom).
func Figure13WA(scale ExperimentScale) ([]Result, error) {
	rows, err := sim.Figure13WA(scale)
	return rows, wrapErr(err)
}

// Figure13RAM returns the analytical integrated-RAM breakdown (Figure 13
// top) at the paper's full 2 TB scale.
func Figure13RAM() []RAMBreakdown { return sim.Figure13RAM() }

// Figure13Recovery returns the analytical recovery-time breakdown (Figure 13
// middle) at the paper's full 2 TB scale.
func Figure13Recovery() []RecoveryBreakdown { return sim.Figure13Recovery() }

// Figure14 reproduces the equal-RAM-budget experiment of Section 5.4.
func Figure14(scale ExperimentScale) ([]Figure14Row, error) {
	rows, err := sim.Figure14(scale)
	return rows, wrapErr(err)
}

// Figure1 returns the capacity sweep of Figure 1 (LazyFTL RAM requirement
// and recovery time versus device capacity).
func Figure1() []CapacityPoint { return sim.Figure1() }

// Table1 returns the evaluated Table 1 at the paper's full 2 TB scale.
func Table1() []Table1Row { return sim.Table1() }

// RecoveryResult is the measured recovery cost of one FTL.
type RecoveryResult = sim.RecoveryResult

// RecoverySimulation crashes each FTL mid-workload and measures its
// recovery.
func RecoverySimulation(scale ExperimentScale) ([]RecoveryResult, error) {
	rows, err := sim.RecoverySimulation(scale)
	return rows, wrapErr(err)
}

// RecoverySweepOptions parameterizes RecoverySweep; RecoveryPoint is one of
// its rows.
type (
	RecoverySweepOptions = sim.RecoverySweepOptions
	RecoveryPoint        = sim.RecoveryPoint
)

// RecoverySweep crashes the sharded engine across channel counts, checkpoint
// intervals and capacities, and measures parallel recovery wall-clock.
func RecoverySweep(opts RecoverySweepOptions) ([]RecoveryPoint, error) {
	rows, err := sim.RecoverySweep(opts)
	return rows, wrapErr(err)
}

// ChannelSweepOptions parameterizes ChannelSweep; ChannelPoint is one of its
// rows.
type (
	ChannelSweepOptions = sim.ChannelSweepOptions
	ChannelPoint        = sim.ChannelPoint
)

// ChannelSweep measures write throughput of the sharded engine across
// channel counts.
func ChannelSweep(opts ChannelSweepOptions) ([]ChannelPoint, error) {
	rows, err := sim.ChannelSweep(opts)
	return rows, wrapErr(err)
}

// LatencySweepOptions parameterizes LatencySweep; LatencyPoint is one of its
// rows.
type (
	LatencySweepOptions = sim.LatencySweepOptions
	LatencyPoint        = sim.LatencyPoint
)

// LatencySweep measures per-write tail latency across GC modes, victim
// policies and workloads.
func LatencySweep(opts LatencySweepOptions) ([]LatencyPoint, error) {
	rows, err := sim.LatencySweep(opts)
	return rows, wrapErr(err)
}

// TrimSweepOptions parameterizes TrimSweep; TrimPoint is one of its rows.
type (
	TrimSweepOptions = sim.TrimSweepOptions
	TrimPoint        = sim.TrimPoint
)

// TrimSweep measures write-amplification as the host supplies an increasing
// fraction of trims; WA falls monotonically with the trim fraction.
func TrimSweep(opts TrimSweepOptions) ([]TrimPoint, error) {
	rows, err := sim.TrimSweep(opts)
	return rows, wrapErr(err)
}

// WearSweepOptions parameterizes WearSweep; WearPoint is one of its rows.
type (
	WearSweepOptions = sim.WearSweepOptions
	WearPoint        = sim.WearPoint
)

// WearSweep measures write-amplification and erase-count spread across
// frontier configurations (single vs hot/cold, wear-aware vs LIFO
// allocation), victim policies and workloads: the endurance experiment.
func WearSweep(opts WearSweepOptions) ([]WearPoint, error) {
	rows, err := sim.WearSweep(opts)
	return rows, wrapErr(err)
}

// RestartSweepOptions parameterizes RestartSweep; RestartPoint is one of its
// rows.
type (
	RestartSweepOptions = sim.RestartSweepOptions
	RestartPoint        = sim.RestartPoint
)

// RestartSweep compares warm restarts (restore all FTL metadata from the
// shutdown checkpoint) against cold GeckoRec recovery of the identical
// state, across device capacities, in both measurement and the analytic
// model.
func RestartSweep(opts RestartSweepOptions) ([]RestartPoint, error) {
	rows, err := sim.RestartSweep(opts)
	return rows, wrapErr(err)
}

// QueueSweepOptions parameterizes QueueSweep; QueuePoint is one of its rows.
type (
	QueueSweepOptions = sim.QueueSweepOptions
	QueuePoint        = sim.QueuePoint
)

// QueueSweep measures the asynchronous submission/completion engine: closed-
// loop rows pin how throughput scales with queue depth against the
// synchronous ceiling, open-loop rows drive Poisson and bursty arrival
// streams at multiples of the queueing model's saturation knee and pin that
// admission control keeps the latency tail bounded under overload where an
// unbounded queue collapses.
func QueueSweep(opts QueueSweepOptions) ([]QueuePoint, error) {
	rows, err := sim.QueueSweep(opts)
	return rows, wrapErr(err)
}

// EnduranceSweepOptions parameterizes EnduranceSweep; EndurancePoint is one
// of its rows.
type (
	EnduranceSweepOptions = sim.EnduranceSweepOptions
	EndurancePoint        = sim.EndurancePoint
)

// EnduranceSweep drives fault-injected devices with a finite per-block erase
// budget until they die, measuring lifetime in host writes across fault
// rates and allocation policies.
func EnduranceSweep(opts EnduranceSweepOptions) ([]EndurancePoint, error) {
	rows, err := sim.EnduranceSweep(opts)
	return rows, wrapErr(err)
}

// HeadlineSummary evaluates the paper's three headline claims.
type HeadlineSummary = sim.HeadlineSummary

// Headlines computes the headline-claim summary.
func Headlines(scale ExperimentScale) (HeadlineSummary, error) {
	rows, err := sim.Headlines(scale)
	return rows, wrapErr(err)
}
