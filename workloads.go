package geckoftl

import (
	"io"
	"time"

	"geckoftl/internal/workload"
)

// The workload generators that drive the experiments, re-exported for the
// cmd/ binaries and examples.

// Workload produces a stream of logical operations.
type Workload = workload.Generator

// WorkloadOp is one logical operation of a workload; OpKind distinguishes
// writes, reads and trims.
type (
	WorkloadOp = workload.Op
	OpKind     = workload.OpKind
)

// The operation kinds.
const (
	OpWrite = workload.OpWrite
	OpRead  = workload.OpRead
	OpTrim  = workload.OpTrim
)

// WorkloadByName constructs one of the named write workloads: "uniform" (or
// ""), "sequential", "zipfian" (skew 1.2) or "hotcold" (20% of pages take
// 80% of writes).
func WorkloadByName(name string, logicalPages int64, seed int64) (Workload, error) {
	w, err := workload.ByName(name, logicalPages, seed)
	return w, configErr(err)
}

// NewUniform creates a uniformly random update workload.
func NewUniform(logicalPages, seed int64) (Workload, error) {
	w, err := workload.NewUniform(logicalPages, seed)
	return w, configErr(err)
}

// NewSequential creates a wrapping sequential update workload.
func NewSequential(logicalPages int64) (Workload, error) {
	w, err := workload.NewSequential(logicalPages)
	return w, configErr(err)
}

// NewZipfian creates a Zipf-skewed update workload (skew > 1).
func NewZipfian(logicalPages int64, skew float64, seed int64) (Workload, error) {
	w, err := workload.NewZipfian(logicalPages, skew, seed)
	return w, configErr(err)
}

// NewHotCold creates a workload where hotFraction of the pages receive
// hotProbability of the writes.
func NewHotCold(logicalPages int64, hotFraction, hotProbability float64, seed int64) (Workload, error) {
	w, err := workload.NewHotCold(logicalPages, hotFraction, hotProbability, seed)
	return w, configErr(err)
}

// NewMixed wraps a write workload and interleaves uniform point reads at the
// given ratio (0 <= readRatio < 1).
func NewMixed(writes Workload, logicalPages int64, readRatio float64, seed int64) (Workload, error) {
	w, err := workload.NewMixed(writes, logicalPages, readRatio, seed)
	return w, configErr(err)
}

// NewTrimming wraps a write workload and interleaves host trims at the given
// fraction (0 <= trimFraction < 1), drawing trim targets uniformly.
func NewTrimming(writes Workload, logicalPages int64, trimFraction float64, seed int64) (Workload, error) {
	w, err := workload.NewTrimming(writes, logicalPages, trimFraction, seed)
	return w, configErr(err)
}

// ParseTrace reads a trace in the textual "R <page>" / "W <page>" format.
func ParseTrace(name string, r io.Reader) (Workload, error) {
	w, err := workload.ParseTrace(name, r)
	return w, configErr(err)
}

// ArrivalProcess generates the inter-arrival gaps of an open-loop stream;
// see NewPoissonArrivals and NewBurstyArrivals.
type ArrivalProcess = workload.ArrivalProcess

// OpenLoopWorkload pairs a page workload with an arrival process: each drawn
// operation carries the virtual instant it arrives at, independent of when
// earlier operations complete. That independence is what makes overload
// expressible — a closed-loop caller can never offer more load than the
// device absorbs; an open-loop stream keeps arriving on schedule and exposes
// the saturation knee. Deterministic for given seeds.
type OpenLoopWorkload = workload.OpenLoop

// WorkloadArrival is one operation of an open-loop stream with its virtual
// arrival instant.
type WorkloadArrival = workload.Arrival

// NewPoissonArrivals creates a Poisson arrival process at the given rate in
// operations per second: independent exponentially distributed gaps, the
// memoryless baseline of open systems.
func NewPoissonArrivals(rate float64, seed int64) (ArrivalProcess, error) {
	p, err := workload.NewPoisson(rate, seed)
	if err != nil {
		return nil, configErr(err)
	}
	return p, nil
}

// NewBurstyArrivals creates a two-state bursty arrival process: the stream
// alternates between a burst phase at burst x rate and a lull phase at
// rate / burst, with exponentially distributed phase durations of mean dwell.
func NewBurstyArrivals(rate, burst float64, dwell time.Duration, seed int64) (ArrivalProcess, error) {
	b, err := workload.NewBursty(rate, burst, dwell, seed)
	if err != nil {
		return nil, configErr(err)
	}
	return b, nil
}

// NewOpenLoop wraps a page workload's operations with an arrival process's
// instants.
func NewOpenLoop(gen Workload, proc ArrivalProcess) (*OpenLoopWorkload, error) {
	ol, err := workload.NewOpenLoop(gen, proc)
	return ol, configErr(err)
}

// TakeBatch draws the next n operations from a workload.
func TakeBatch(g Workload, n int) []WorkloadOp { return workload.TakeBatch(g, n) }

// SplitBatch partitions a batch into read, write and trim target pages,
// ready to hand to ReadBatch/WriteBatch/TrimBatch.
func SplitBatch(ops []WorkloadOp) (reads, writes, trims []LPN) {
	return workload.SplitBatch(ops)
}
