package geckoftl_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geckoftl"
	"geckoftl/internal/checkpoint"
)

// ckptOpen opens a 2-channel GeckoFTL device persisting its checkpoint at
// path.
func ckptOpen(t *testing.T, path string) *geckoftl.Device {
	t.Helper()
	return open(t,
		geckoftl.WithChannels(2, 1),
		geckoftl.WithCacheEntries(512),
		geckoftl.WithCheckpointPath(path),
	)
}

// fill drives a deterministic over-capacity write workload so the device has
// GC history, a populated cache, and gecko runs worth checkpointing.
func fillRandom(t *testing.T, dev *geckoftl.Device, seed int64) {
	t.Helper()
	ctx := context.Background()
	lp := dev.LogicalPages()
	rng := rand.New(rand.NewSource(seed))
	batch := make([]geckoftl.LPN, 64)
	for done := int64(0); done < 2*lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = geckoftl.LPN(rng.Int63n(lp))
		}
		if err := dev.WriteBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
}

// mappedPages snapshots the device's mapped logical pages.
func mappedPages(t *testing.T, dev *geckoftl.Device) []bool {
	t.Helper()
	out := make([]bool, dev.LogicalPages())
	for lpn := range out {
		m, err := dev.Mapped(geckoftl.LPN(lpn))
		if err != nil {
			t.Fatal(err)
		}
		out[lpn] = m
	}
	return out
}

func TestWithCheckpointPathRejectsEmpty(t *testing.T) {
	if _, err := geckoftl.Open(geckoftl.WithCheckpointPath("")); !errors.Is(err, geckoftl.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
}

// TestRestartWarm pins the tentpole's happy path: a clean Restart comes back
// warm from the checkpoint, preserves the logical state exactly, and records
// the load.
func TestRestartWarm(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	dev := ckptOpen(t, path)
	defer dev.Close(ctx)
	fillRandom(t, dev, 1)
	before := mappedPages(t, dev)

	rep, err := dev.Restart(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Warm {
		t.Fatalf("restart fell back cold: %v", rep.Fallback)
	}
	if rep.Fallback != nil || rep.Recovery != nil {
		t.Fatalf("warm report carries fallback state: %+v", rep)
	}
	if rep.CheckpointBytes <= 0 || rep.WallClock <= 0 {
		t.Fatalf("warm report bytes=%d wall=%v", rep.CheckpointBytes, rep.WallClock)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	after := mappedPages(t, dev)
	for lpn := range before {
		if before[lpn] != after[lpn] {
			t.Fatalf("logical page %d mapped=%v after warm restart, want %v", lpn, after[lpn], before[lpn])
		}
	}
	load := dev.CheckpointLoad()
	if !load.Attempted || !load.Loaded || load.Err != nil || load.Bytes != rep.CheckpointBytes {
		t.Fatalf("CheckpointLoad = %+v", load)
	}
	if snap := dev.Snapshot(); snap.CheckpointBytes != rep.CheckpointBytes {
		t.Fatalf("Snapshot.CheckpointBytes = %d, want %d", snap.CheckpointBytes, rep.CheckpointBytes)
	}
	// The checkpoint file is on disk and decodable.
	if _, _, err := checkpoint.ReadFile(path); err != nil {
		t.Fatalf("shutdown checkpoint unreadable: %v", err)
	}
	// The device keeps working after the warm restart.
	fillRandom(t, dev, 2)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartWithoutPathIsStillWarm pins that Restart does not require a
// checkpoint file: the in-memory checkpoint serves the warm path.
func TestRestartWithoutPathIsStillWarm(t *testing.T) {
	ctx := context.Background()
	dev := open(t, geckoftl.WithChannels(2, 1), geckoftl.WithCacheEntries(512))
	defer dev.Close(ctx)
	fillRandom(t, dev, 3)
	rep, err := dev.Restart(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Warm || rep.CheckpointBytes <= 0 {
		t.Fatalf("pathless restart: %+v (fallback %v)", rep, rep.Fallback)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartFallsBackWhenUnsupported pins the graceful degradation: DFTL
// (a battery scheme) cannot be checkpointed, so Restart runs its recovery
// path cold and says why, instead of erroring.
func TestRestartFallsBackWhenUnsupported(t *testing.T) {
	ctx := context.Background()
	dev := open(t, geckoftl.WithFTL("dftl"), geckoftl.WithCacheEntries(512))
	defer dev.Close(ctx)
	fillRandom(t, dev, 4)
	rep, err := dev.Restart(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warm {
		t.Fatal("unsupported scheme restarted warm")
	}
	if !errors.Is(rep.Fallback, geckoftl.ErrCheckpointInvalid) {
		t.Fatalf("Fallback = %v, want ErrCheckpointInvalid", rep.Fallback)
	}
	if rep.Recovery == nil || rep.CheckpointBytes != 0 {
		t.Fatalf("cold report: %+v", rep)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenWithCorruptCheckpointFallsBack pins the Open-side contract for
// every flavour of damaged file: Open never fails, never loads partially,
// records the classified rejection, and the device is indistinguishable from
// a cold open.
func TestOpenWithCorruptCheckpointFallsBack(t *testing.T) {
	ctx := context.Background()
	// A valid checkpoint of a written device, to mutate.
	dir := t.TempDir()
	source := filepath.Join(dir, "source.ckpt")
	src := ckptOpen(t, source)
	fillRandom(t, src, 5)
	if err := src.Close(ctx); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(source)
	if err != nil {
		t.Fatal(err)
	}

	bounds, err := checkpoint.Boundaries(valid)
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		name string
		data []byte
	}
	variants := []variant{
		{"garbage", []byte("not a checkpoint at all")},
		{"empty", nil},
	}
	for _, cut := range bounds[:len(bounds)-1] {
		variants = append(variants, variant{fmt.Sprintf("truncated@%d", cut), valid[:cut]})
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	variants = append(variants, variant{"bitflip", flipped})
	// A pristine checkpoint of a written device is itself stale against the
	// blank device a fresh Open builds: device truth must reject it.
	variants = append(variants, variant{"stale-vs-fresh-device", valid})

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "dev.ckpt")
			if err := os.WriteFile(path, v.data, 0o644); err != nil {
				t.Fatal(err)
			}
			dev := ckptOpen(t, path)
			defer dev.Close(ctx)
			load := dev.CheckpointLoad()
			if !load.Attempted {
				t.Fatal("load not attempted despite a file being present")
			}
			if load.Loaded {
				t.Fatal("damaged checkpoint loaded")
			}
			if !errors.Is(load.Err, geckoftl.ErrCheckpointInvalid) {
				t.Fatalf("CheckpointLoad.Err = %v, want ErrCheckpointInvalid", load.Err)
			}
			if err := dev.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			// Identical to a cold open: blank logical state, fully writable.
			for _, lpn := range []geckoftl.LPN{0, 1, geckoftl.LPN(dev.LogicalPages() - 1)} {
				if m, err := dev.Mapped(lpn); err != nil || m {
					t.Fatalf("page %d mapped=%v err=%v on fallback open, want blank", lpn, m, err)
				}
			}
			fillRandom(t, dev, 6)
			if err := dev.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenWarmFromBlankCheckpoint pins the one case where an Open-time load
// can succeed against a fresh simulated device: a checkpoint of a device
// that never wrote matches blank device truth exactly.
func TestOpenWarmFromBlankCheckpoint(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	first := ckptOpen(t, path)
	if err := first.Close(ctx); err != nil {
		t.Fatal(err)
	}
	dev := ckptOpen(t, path)
	defer dev.Close(ctx)
	load := dev.CheckpointLoad()
	if !load.Attempted || !load.Loaded || load.Err != nil {
		t.Fatalf("CheckpointLoad = %+v, want a warm load", load)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	fillRandom(t, dev, 7)
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseAfterPowerFailWritesNoCheckpoint pins shutdown semantics around
// crashes: a power-failed Close is a successful no-op that must not write a
// checkpoint, and a second Close reports ErrClosed.
func TestCloseAfterPowerFailWritesNoCheckpoint(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	dev := ckptOpen(t, path)
	fillRandom(t, dev, 8)
	if err := dev.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(ctx); err != nil {
		t.Fatalf("Close after PowerFail: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("power-failed Close wrote a checkpoint (stat err %v)", err)
	}
	if err := dev.Close(ctx); !errors.Is(err, geckoftl.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestCheckpointCrashHammer is the crash-consistency hammer (run with
// -race): concurrent writers and checkpointing flushes race an abrupt power
// failure; afterwards the checkpoint file must be absent or fully decodable
// (never torn), GeckoRec must recover the device, and a subsequent clean
// shutdown must produce a loadable checkpoint.
func TestCheckpointCrashHammer(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	dev := ckptOpen(t, path)
	fillRandom(t, dev, 9)

	const writers = 4
	var wg sync.WaitGroup
	var sawFail atomic.Int64
	start := make(chan struct{})
	lp := dev.LogicalPages()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]geckoftl.LPN, 32)
			<-start
			for {
				for i := range batch {
					batch[i] = geckoftl.LPN(rng.Int63n(lp))
				}
				if err := dev.WriteBatch(ctx, batch); err != nil {
					if !errors.Is(err, geckoftl.ErrPowerFailed) {
						t.Errorf("writer error other than power failure: %v", err)
					}
					sawFail.Add(1)
					return
				}
			}
		}(int64(g + 1))
	}
	// One goroutine keeps checkpointing so the crash can land mid-Flush,
	// between the flush and the export, or mid-file-write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for {
			if err := dev.Flush(ctx); err != nil {
				if !errors.Is(err, geckoftl.ErrPowerFailed) {
					t.Errorf("flush error other than power failure: %v", err)
				}
				return
			}
		}
	}()
	close(start)
	time.Sleep(20 * time.Millisecond)
	if err := dev.PowerFail(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if sawFail.Load() == 0 {
		t.Log("power failure landed between batches; crash window not exercised mid-write")
	}

	// Atomicity: whatever the crash timing, the path holds nothing or a
	// complete, decodable checkpoint.
	if data, err := os.ReadFile(path); err == nil {
		if _, derr := checkpoint.Decode(data); derr != nil {
			t.Fatalf("checkpoint file torn after crash: %v", derr)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}

	// GeckoRec brings the device back.
	if _, err := dev.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// A clean restart now checkpoints and restores warm.
	rep, err := dev.Restart(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Warm {
		t.Fatalf("post-recovery restart fell back: %v", rep.Fallback)
	}
	if err := dev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// And the clean Close leaves a loadable checkpoint on disk.
	if err := dev.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.ReadFile(path); err != nil {
		t.Fatalf("post-shutdown checkpoint unreadable: %v", err)
	}
}
