// Command geckobench regenerates every table and figure of the GeckoFTL
// paper's evaluation section as plain-text rows.
//
// Usage:
//
//	geckobench -experiment all
//	geckobench -experiment fig9 -writes 100000
//	geckobench -experiment channels -sweep 1,2,4,8,16
//	geckobench -experiment summary
//
// Experiments: fig1, table1, fig9, fig10, fig11, fig12, fig13ram, fig13rec,
// fig13wa, fig14, recovery, channels, summary, all.
//
// The channels experiment goes beyond the paper: it sweeps the device's
// channel count and reports how the sharded engine's write throughput scales
// (see docs/benchmarks.md for how to read its output).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"geckoftl/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (fig1, table1, fig9, fig10, fig11, fig12, fig13ram, fig13rec, fig13wa, fig14, recovery, channels, summary, all)")
		writes     = flag.Int64("writes", 0, "measured logical writes per simulation (0 = default)")
		blocks     = flag.Int("blocks", 0, "simulated device blocks (0 = default)")
		quick      = flag.Bool("quick", false, "use the small test-sized scale")
		sweepList  = flag.String("sweep", "1,2,4,8", "channel counts for the channels experiment")
		dies       = flag.Int("dies", 1, "dies per channel for the channels experiment (adds capacity, not engine overlap; see docs/benchmarks.md)")
		sweepWL    = flag.String("sweep-workload", "uniform", "workload for the channels experiment: uniform, sequential, zipfian, hotcold")
	)
	flag.Parse()
	sweep, err := parseSweep(*sweepList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geckobench: %v\n", err)
		os.Exit(1)
	}
	sweepOpts = sim.ChannelSweepOptions{Channels: sweep, Workload: *sweepWL}
	sweepDies = *dies

	scale := sim.FullScale()
	if *quick {
		scale = sim.QuickScale()
	}
	if *writes > 0 {
		scale.MeasureWrites = *writes
	}
	if *blocks > 0 {
		scale.Device.Blocks = *blocks
	}

	if err := run(strings.ToLower(*experiment), scale); err != nil {
		fmt.Fprintf(os.Stderr, "geckobench: %v\n", err)
		os.Exit(1)
	}
}

func run(experiment string, scale sim.ExperimentScale) error {
	all := experiment == "all"
	ran := false
	for _, e := range []struct {
		name string
		fn   func(sim.ExperimentScale) error
	}{
		{"fig1", figure1},
		{"table1", table1},
		{"fig9", figure9},
		{"fig10", figure10},
		{"fig11", figure11},
		{"fig12", figure12},
		{"fig13ram", figure13RAM},
		{"fig13rec", figure13Recovery},
		{"fig13wa", figure13WA},
		{"fig14", figure14},
		{"recovery", recovery},
		{"channels", channelSweep},
		{"summary", summary},
	} {
		if all || experiment == e.name {
			ran = true
			if err := e.fn(scale); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

func figure1(sim.ExperimentScale) error {
	fmt.Println("Figure 1: LazyFTL integrated RAM and recovery time vs device capacity (analytical, full scale)")
	fmt.Printf("%-12s %16s %16s\n", "capacity", "RAM (MB)", "recovery (s)")
	for _, p := range sim.Figure1() {
		fmt.Printf("%-12s %16.1f %16.1f\n",
			formatBytes(p.CapacityBytes), float64(p.RAMBytes)/(1<<20), p.Recovery.Seconds())
	}
	return nil
}

func table1(sim.ExperimentScale) error {
	fmt.Println("Table 1: per-operation IO costs and RAM of page-validity schemes (analytical, full scale)")
	fmt.Printf("%-20s %14s %14s %12s %12s %14s\n", "technique", "update reads", "update writes", "GC reads", "GC writes", "RAM")
	for _, r := range sim.Table1() {
		fmt.Printf("%-20s %14.5f %14.5f %12.3f %12.5f %14s\n",
			r.Technique, r.UpdateReads, r.UpdateWrites, r.QueryReads, r.QueryWrites, formatBytes(r.RAMBytes))
	}
	return nil
}

func figure9(scale sim.ExperimentScale) error {
	fmt.Println("Figure 9: Logarithmic Gecko vs flash-resident PVB under uniform random updates (simulation)")
	rows, err := sim.Figure9(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12s %12s %12s %10s\n", "scheme", "flash reads", "flash writes", "WA", "GC queries")
	for _, r := range rows {
		fmt.Printf("%-16s %12d %12d %12.4f %10d\n", r.Name, r.FlashReads, r.FlashWrites, r.WA, r.GCQueries)
	}
	return nil
}

func figure10(scale sim.ExperimentScale) error {
	fmt.Println("Figure 10: entry-partitioning makes write-amplification independent of block size (simulation)")
	rows, err := sim.Figure10(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %22s %12s\n", "block size", "partitioning", "WA")
	for _, r := range rows {
		label := fmt.Sprintf("S=%d", r.PartitionFactor)
		if r.PartitionFactor == -1 {
			label = "recommended"
		}
		fmt.Printf("%-10d %22s %12.4f\n", r.BlockSize, label, r.WA)
	}
	return nil
}

func figure11(scale sim.ExperimentScale) error {
	fmt.Println("Figure 11: write-amplification vs number of blocks K (simulation)")
	rows, err := sim.Figure11(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %16s %16s\n", "blocks", "gecko WA", "flash-PVB WA")
	for _, r := range rows {
		fmt.Printf("%-10d %16.4f %16.4f\n", r.Blocks, r.GeckoWA, r.PVBWA)
	}
	return nil
}

func figure12(scale sim.ExperimentScale) error {
	fmt.Println("Figure 12: over-provisioning vs Logarithmic Gecko IO (simulation)")
	rows, err := sim.Figure12(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s %12s\n", "R", "WA", "GC queries", "flash reads")
	for _, r := range rows {
		fmt.Printf("%-6.2f %12.4f %12d %12d\n", r.OverProvision, r.WA, r.GCQueries, r.FlashReads)
	}
	return nil
}

func figure13RAM(sim.ExperimentScale) error {
	fmt.Println("Figure 13 (top): integrated RAM breakdown per FTL (analytical, full scale)")
	fmt.Printf("%-10s %12s %12s %12s %12s %14s %12s\n", "ftl", "cache", "GMD", "PVB", "BVC", "page-validity", "total")
	for _, b := range sim.Figure13RAM() {
		fmt.Printf("%-10s %12s %12s %12s %12s %14s %12s\n",
			b.FTL, formatBytes(b.Cache), formatBytes(b.GMD), formatBytes(b.PVB),
			formatBytes(b.BVC), formatBytes(b.PageValidity), formatBytes(b.Total()))
	}
	return nil
}

func figure13Recovery(sim.ExperimentScale) error {
	fmt.Println("Figure 13 (middle): recovery time breakdown per FTL (analytical, full scale)")
	fmt.Printf("%-10s %12s %12s %12s %14s %12s %10s %10s\n", "ftl", "block scan", "GMD", "PVB", "page-validity", "LRU cache", "total", "battery")
	for _, b := range sim.Figure13Recovery() {
		fmt.Printf("%-10s %12s %12s %12s %14s %12s %10s %10v\n",
			b.FTL, fmtDur(b.BlockScan), fmtDur(b.GMD), fmtDur(b.PVB),
			fmtDur(b.PageValidity), fmtDur(b.LRUCache), fmtDur(b.Total()), b.Battery)
	}
	return nil
}

func figure13WA(scale sim.ExperimentScale) error {
	fmt.Println("Figure 13 (bottom): write-amplification breakdown per FTL (simulation)")
	results, err := sim.Figure13WA(scale)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatTable("", results))
	return nil
}

func figure14(scale sim.ExperimentScale) error {
	fmt.Println("Figure 14: equal RAM budget; freed PVB RAM used as extra cache (simulation)")
	rows, err := sim.Figure14(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %10s %10s %12s %10s\n", "ftl", "cache entries", "WA", "user", "translation", "validity")
	for _, r := range rows {
		fmt.Printf("%-10s %14d %10.3f %10.3f %12.3f %10.3f\n",
			r.Name, r.CacheEntries, r.WA, r.UserWA, r.TranslationWA, r.ValidityWA)
	}
	return nil
}

func recovery(scale sim.ExperimentScale) error {
	fmt.Println("Recovery simulation: crash mid-workload, measure recovery IO and time")
	rows, err := sim.RecoverySimulation(scale)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %12s %12s %12s %10s %10s\n", "ftl", "duration", "spare reads", "page reads", "page writes", "entries", "battery")
	for _, r := range rows {
		fmt.Printf("%-10s %14s %12d %12d %12d %10d %10v\n",
			r.Name, fmtDur(r.Duration), r.SpareReads, r.PageReads, r.PageWrites, r.RecoveredMappingEntries, r.UsedBattery)
	}
	return nil
}

func summary(scale sim.ExperimentScale) error {
	fmt.Println("Headline claims")
	s, err := sim.Headlines(scale)
	if err != nil {
		return err
	}
	fmt.Printf("  page-validity RAM reduction vs RAM-resident PVB:   %5.1f%%  (paper: 95%%)\n", 100*s.RAMReduction)
	fmt.Printf("  recovery-time reduction vs LazyFTL:                %5.1f%%  (paper: >= 51%%)\n", 100*s.RecoveryReduction)
	fmt.Printf("  page-validity write-amplification reduction vs\n")
	fmt.Printf("  flash-resident PVB:                                %5.1f%%  (paper: 98%%)\n", 100*s.ValidityWAReduction)
	return nil
}

// sweepOpts and sweepDies carry the channels-experiment flags to its driver.
var (
	sweepOpts sim.ChannelSweepOptions
	sweepDies int
)

// parseSweep parses a comma-separated channel-count list, e.g. "1,2,4,8".
func parseSweep(s string) ([]int, error) {
	var out []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad channel count %q in -sweep", field)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep %q lists no channel counts", s)
	}
	return out, nil
}

func channelSweep(scale sim.ExperimentScale) error {
	opts := sweepOpts
	opts.Scale = scale
	opts.Scale.Device.DiesPerChannel = sweepDies
	wl := opts.Workload
	if wl == "" {
		wl = "uniform"
	}
	fmt.Printf("Channel scaling: sharded GeckoFTL engine write throughput vs channel count (%s workload, %d dies/channel)\n",
		wl, sweepDies)
	points, err := sim.ChannelSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %6s %12s %10s %10s %8s %12s %10s\n",
		"channels", "dies", "writes/s", "speedup", "WA", "wall", "model-w/s", "imbalance")
	for _, p := range points {
		fmt.Printf("%-9d %6d %12.0f %9.2fx %10.3f %8s %12.0f %10.3f\n",
			p.Channels, p.Dies, p.Throughput, p.Speedup, p.WA, fmtDur(p.WallTime), p.ModelThroughput, p.LoadImbalance)
	}
	return nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fmtDur(d time.Duration) string {
	if d >= time.Second {
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
	return d.Round(time.Microsecond).String()
}
