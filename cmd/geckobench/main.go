// Command geckobench regenerates every table and figure of the GeckoFTL
// paper's evaluation section as plain-text rows, plus the engine-scaling
// experiments that go beyond the paper.
//
// Usage:
//
//	geckobench -experiment all
//	geckobench -experiment fig9 -writes 100000
//	geckobench -experiment channels -sweep 1,2,4,8,16
//	geckobench -experiment recovery -quick
//	geckobench -experiment recovery -json
//	geckobench -experiment latency -gc-pages 4 -policy metadata-aware
//	geckobench -experiment trim -trim-fractions 0,0.1,0.2,0.3 -json
//	geckobench -experiment wear -json
//	geckobench -experiment endurance -json
//	geckobench -experiment queue -depth 8 -admission shed -json
//	geckobench -experiment summary
//
// Experiments: fig1, table1, fig9, fig10, fig11, fig12, fig13ram, fig13rec,
// fig13wa, fig14, recovery, recovery-sweep, channels, latency, trim, wear,
// endurance, restart, queue, summary, all.
//
// Eight experiments go beyond the paper: channels sweeps the device's
// channel count and reports how the sharded engine's write throughput
// scales; recovery-sweep (also run by -experiment recovery) crashes the
// sharded engine and measures how recovery wall-clock scales with channel
// count, checkpoint interval and device capacity; latency records
// per-write service-time distributions (p50..p99.9, max) and compares
// inline whole-victim garbage collection against the incremental bounded
// scheduler across victim policies and workloads; trim interleaves
// host trims at increasing fractions and shows write-amplification falling
// monotonically; wear compares the single user write frontier against
// hot/cold-separated frontiers with wear-aware block allocation, reporting
// write-amplification and erase-count spread per victim policy and workload;
// endurance drives fault-injected devices with a finite per-block erase
// budget until capacity exhaustion, reporting lifetime in host writes per
// fault rate and allocation policy; and restart compares warm restarts from
// the shutdown metadata checkpoint against cold GeckoRec recovery of the
// identical state across device capacities; and queue drives the async
// submission path with open-loop arrival processes across queue depths and
// admission policies, locating the saturation knee and showing bounded
// backpressure keeping tail latency finite past it (see docs/benchmarks.md).
//
// With -json, each experiment emits one JSON object per line of the form
// {"experiment": name, "rows": [...], "alloc": {...}}, so benchmark
// trajectories can be recorded by machines instead of scraped from tables.
// The alloc block is the host-side counterpart of the geckolint -hotpath
// gate: total heap allocations and bytes during the experiment, plus
// allocs/op normalized by the scale's measured writes, so an allocation
// regression on the hot path shows up in the artifact diff even when it
// slips past the static gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"geckoftl"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (fig1, table1, fig9, fig10, fig11, fig12, fig13ram, fig13rec, fig13wa, fig14, recovery, recovery-sweep, channels, latency, trim, wear, endurance, restart, queue, summary, all)")
		writes     = flag.Int64("writes", 0, "measured logical writes per simulation (0 = default)")
		blocks     = flag.Int("blocks", 0, "simulated device blocks (0 = default)")
		quick      = flag.Bool("quick", false, "use the small test-sized scale")
		sweepList  = flag.String("sweep", "1,2,4,8", "channel counts for the channels and recovery-sweep experiments")
		dies       = flag.Int("dies", 1, "dies per channel for the channels experiment (adds capacity, not engine overlap; see docs/benchmarks.md)")
		sweepWL    = flag.String("sweep-workload", "uniform", "workload for the channels experiment: uniform, sequential, zipfian, hotcold")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON rows (one {experiment, rows} object per experiment) instead of tables")
		gcModes    = flag.String("gc-mode", "both", "GC scheduling modes for the latency experiment: inline, incremental, or both")
		policies   = flag.String("policy", "both", "victim policies for the latency and wear experiments: greedy, metadata-aware, cost-benefit, or both (wear defaults to metadata-aware + cost-benefit)")
		gcPages    = flag.Int("gc-pages", 0, "incremental GC step budget per write for the latency experiment (0 = default)")
		trimFracs  = flag.String("trim-fractions", "0,0.1,0.2,0.3", "trim fractions for the trim experiment")
		depth      = flag.Int("depth", 0, "per-shard submission queue depth for the queue experiment's open-loop rows (0 = default)")
		depthsList = flag.String("depths", "", "queue depths for the queue experiment's closed-loop ladder, e.g. 1,4,8,16 (empty = default)")
		admission  = flag.String("admission", "", "admission policy for the queue experiment's open-loop rate rows: shed or wait (empty = shed)")
	)
	flag.Parse()
	sweep, err := parseSweep(*sweepList)
	if err != nil {
		usageExit(err)
	}
	// Validate the workload name up front so a typo is a usage error, not a
	// mid-run failure after minutes of simulation.
	if _, err := geckoftl.WorkloadByName(*sweepWL, 1024, 1); err != nil {
		usageExit(err)
	}
	modes, err := parseGCModes(*gcModes)
	if err != nil {
		usageExit(err)
	}
	pols, err := parsePolicies(*policies)
	if err != nil {
		usageExit(err)
	}
	if *gcPages < 0 {
		usageExit(fmt.Errorf("-gc-pages %d must be >= 0", *gcPages))
	}
	fractions, err := parseFractions(*trimFracs)
	if err != nil {
		usageExit(err)
	}
	if *depth < 0 {
		usageExit(fmt.Errorf("-depth %d must be >= 0", *depth))
	}
	depths, err := parseDepths(*depthsList)
	if err != nil {
		usageExit(err)
	}
	if *admission != "" {
		if _, err := geckoftl.ParseAdmissionPolicy(*admission); err != nil {
			usageExit(err)
		}
	}
	sweepOpts = geckoftl.ChannelSweepOptions{Channels: sweep, Workload: *sweepWL}
	sweepDies = *dies
	jsonMode = *jsonOut
	latencyOpts = geckoftl.LatencySweepOptions{Modes: modes, Policies: pols, GCPagesPerWrite: *gcPages}
	trimOpts = geckoftl.TrimSweepOptions{Workload: *sweepWL, TrimFractions: fractions}
	// The wear sweep's own policy default (metadata-aware + cost-benefit)
	// applies unless -policy names one explicitly.
	if *policies != "both" && *policies != "" {
		wearOpts = geckoftl.WearSweepOptions{Policies: pols}
	}
	queueOpts = geckoftl.QueueSweepOptions{Depth: *depth, Depths: depths, Policy: *admission, Workload: *sweepWL}

	scale := geckoftl.FullScale()
	if *quick {
		scale = geckoftl.QuickScale()
	}
	if *writes > 0 {
		scale.MeasureWrites = *writes
	}
	if *blocks > 0 {
		scale.Device.Blocks = *blocks
	}

	name := strings.ToLower(*experiment)
	if !knownExperiment(name) {
		usageExit(fmt.Errorf("unknown experiment %q (valid: %s)", *experiment, strings.Join(experimentNames(), ", ")))
	}
	if err := run(name, scale); err != nil {
		fmt.Fprintf(os.Stderr, "geckobench: %v\n", err)
		os.Exit(1)
	}
}

// knownExperiment reports whether name selects at least one experiment.
func knownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, e := range experiments() {
		if name == e.name || (e.group != "" && name == e.group) {
			return true
		}
	}
	return false
}

// experimentNames lists every selectable experiment name, in declaration
// order, ending with the "all" selector. Group selectors that match an
// experiment name (e.g. "recovery") are not repeated.
func experimentNames() []string {
	var names []string
	seen := make(map[string]bool)
	for _, e := range experiments() {
		for _, n := range []string{e.name, e.group} {
			if n != "" && !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return append(names, "all")
}

// usageExit reports a bad flag value and exits with the conventional
// bad-usage status.
func usageExit(err error) {
	fmt.Fprintf(os.Stderr, "geckobench: %v\n", err)
	flag.Usage()
	os.Exit(2)
}

// experimentSpec is one runnable experiment: a producer of typed rows and a
// text renderer for them. The -json flag bypasses the renderer and encodes
// the rows directly.
type experimentSpec struct {
	name string
	// group optionally names a selector that also runs this experiment
	// (recovery-sweep runs under "recovery").
	group string
	rows  func(geckoftl.ExperimentScale) (any, error)
	print func(any)
}

func experiments() []experimentSpec {
	return []experimentSpec{
		{name: "fig1", rows: figure1Rows, print: printFigure1},
		{name: "table1", rows: table1Rows, print: printTable1},
		{name: "fig9", rows: figure9Rows, print: printFigure9},
		{name: "fig10", rows: figure10Rows, print: printFigure10},
		{name: "fig11", rows: figure11Rows, print: printFigure11},
		{name: "fig12", rows: figure12Rows, print: printFigure12},
		{name: "fig13ram", rows: figure13RAMRows, print: printFigure13RAM},
		{name: "fig13rec", rows: figure13RecoveryRows, print: printFigure13Recovery},
		{name: "fig13wa", rows: figure13WARows, print: printFigure13WA},
		{name: "fig14", rows: figure14Rows, print: printFigure14},
		{name: "recovery", rows: recoveryRows, print: printRecovery},
		{name: "recovery-sweep", group: "recovery", rows: recoverySweepRows, print: printRecoverySweep},
		{name: "channels", rows: channelSweepRows, print: printChannelSweep},
		{name: "latency", rows: latencySweepRows, print: printLatencySweep},
		{name: "trim", rows: trimSweepRows, print: printTrimSweep},
		{name: "wear", rows: wearSweepRows, print: printWearSweep},
		{name: "endurance", rows: enduranceSweepRows, print: printEnduranceSweep},
		{name: "restart", rows: restartSweepRows, print: printRestartSweep},
		{name: "queue", rows: queueSweepRows, print: printQueueSweep},
		{name: "summary", rows: summaryRows, print: printSummary},
	}
}

// allocStats is the host-side allocation profile of one experiment run: the
// measured counterpart of the geckolint -hotpath static gate.
type allocStats struct {
	// Mallocs and AllocBytes are heap allocation deltas over the experiment
	// (all phases: setup, warm-up and measurement).
	Mallocs    uint64 `json:"mallocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// AllocsPerOp normalizes Mallocs by the scale's measured writes — a
	// coarse per-operation figure (setup allocations included) whose drift
	// between runs of the same experiment flags a hot-path regression.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// measureAllocs runs fn and returns its result alongside the heap
// allocation delta, normalized by ops (when positive).
func measureAllocs(fn func() (any, error), ops int64) (any, allocStats, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rows, err := fn()
	runtime.ReadMemStats(&after)
	st := allocStats{
		Mallocs:    after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if ops > 0 {
		st.AllocsPerOp = float64(st.Mallocs) / float64(ops)
	}
	return rows, st, err
}

func run(experiment string, scale geckoftl.ExperimentScale) error {
	all := experiment == "all"
	ran := false
	enc := json.NewEncoder(os.Stdout)
	for _, e := range experiments() {
		if !all && experiment != e.name && (e.group == "" || experiment != e.group) {
			continue
		}
		ran = true
		rows, alloc, err := measureAllocs(func() (any, error) { return e.rows(scale) }, scale.MeasureWrites)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if jsonMode {
			if err := enc.Encode(struct {
				Experiment string     `json:"experiment"`
				Rows       any        `json:"rows"`
				Alloc      allocStats `json:"alloc"`
			}{e.name, rows, alloc}); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			continue
		}
		e.print(rows)
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: %s)", experiment, strings.Join(experimentNames(), ", "))
	}
	return nil
}

func figure1Rows(geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure1(), nil }

func printFigure1(rows any) {
	fmt.Println("Figure 1: LazyFTL integrated RAM and recovery time vs device capacity (analytical, full scale)")
	fmt.Printf("%-12s %16s %16s\n", "capacity", "RAM (MB)", "recovery (s)")
	for _, p := range rows.([]geckoftl.CapacityPoint) {
		fmt.Printf("%-12s %16.1f %16.1f\n",
			formatBytes(p.CapacityBytes), float64(p.RAMBytes)/(1<<20), p.Recovery.Seconds())
	}
}

func table1Rows(geckoftl.ExperimentScale) (any, error) { return geckoftl.Table1(), nil }

func printTable1(rows any) {
	fmt.Println("Table 1: per-operation IO costs and RAM of page-validity schemes (analytical, full scale)")
	fmt.Printf("%-20s %14s %14s %12s %12s %14s\n", "technique", "update reads", "update writes", "GC reads", "GC writes", "RAM")
	for _, r := range rows.([]geckoftl.Table1Row) {
		fmt.Printf("%-20s %14.5f %14.5f %12.3f %12.5f %14s\n",
			r.Technique, r.UpdateReads, r.UpdateWrites, r.QueryReads, r.QueryWrites, formatBytes(r.RAMBytes))
	}
}

func figure9Rows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure9(scale) }

func printFigure9(rows any) {
	fmt.Println("Figure 9: Logarithmic Gecko vs flash-resident PVB under uniform random updates (simulation)")
	fmt.Printf("%-16s %12s %12s %12s %10s\n", "scheme", "flash reads", "flash writes", "WA", "GC queries")
	for _, r := range rows.([]geckoftl.Figure9Row) {
		fmt.Printf("%-16s %12d %12d %12.4f %10d\n", r.Name, r.FlashReads, r.FlashWrites, r.WA, r.GCQueries)
	}
}

func figure10Rows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure10(scale) }

func printFigure10(rows any) {
	fmt.Println("Figure 10: entry-partitioning makes write-amplification independent of block size (simulation)")
	fmt.Printf("%-10s %22s %12s\n", "block size", "partitioning", "WA")
	for _, r := range rows.([]geckoftl.Figure10Row) {
		label := fmt.Sprintf("S=%d", r.PartitionFactor)
		if r.PartitionFactor == -1 {
			label = "recommended"
		}
		fmt.Printf("%-10d %22s %12.4f\n", r.BlockSize, label, r.WA)
	}
}

func figure11Rows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure11(scale) }

func printFigure11(rows any) {
	fmt.Println("Figure 11: write-amplification vs number of blocks K (simulation)")
	fmt.Printf("%-10s %16s %16s\n", "blocks", "gecko WA", "flash-PVB WA")
	for _, r := range rows.([]geckoftl.Figure11Row) {
		fmt.Printf("%-10d %16.4f %16.4f\n", r.Blocks, r.GeckoWA, r.PVBWA)
	}
}

func figure12Rows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure12(scale) }

func printFigure12(rows any) {
	fmt.Println("Figure 12: over-provisioning vs Logarithmic Gecko IO (simulation)")
	fmt.Printf("%-6s %12s %12s %12s\n", "R", "WA", "GC queries", "flash reads")
	for _, r := range rows.([]geckoftl.Figure12Row) {
		fmt.Printf("%-6.2f %12.4f %12d %12d\n", r.OverProvision, r.WA, r.GCQueries, r.FlashReads)
	}
}

func figure13RAMRows(geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure13RAM(), nil }

func printFigure13RAM(rows any) {
	fmt.Println("Figure 13 (top): integrated RAM breakdown per FTL (analytical, full scale)")
	fmt.Printf("%-10s %12s %12s %12s %12s %14s %12s\n", "ftl", "cache", "GMD", "PVB", "BVC", "page-validity", "total")
	for _, b := range rows.([]geckoftl.RAMBreakdown) {
		fmt.Printf("%-10s %12s %12s %12s %12s %14s %12s\n",
			b.FTL, formatBytes(b.Cache), formatBytes(b.GMD), formatBytes(b.PVB),
			formatBytes(b.BVC), formatBytes(b.PageValidity), formatBytes(b.Total()))
	}
}

func figure13RecoveryRows(geckoftl.ExperimentScale) (any, error) {
	return geckoftl.Figure13Recovery(), nil
}

func printFigure13Recovery(rows any) {
	fmt.Println("Figure 13 (middle): recovery time breakdown per FTL (analytical, full scale)")
	fmt.Printf("%-10s %12s %12s %12s %14s %12s %10s %10s\n", "ftl", "block scan", "GMD", "PVB", "page-validity", "LRU cache", "total", "battery")
	for _, b := range rows.([]geckoftl.RecoveryBreakdown) {
		fmt.Printf("%-10s %12s %12s %12s %14s %12s %10s %10v\n",
			b.FTL, fmtDur(b.BlockScan), fmtDur(b.GMD), fmtDur(b.PVB),
			fmtDur(b.PageValidity), fmtDur(b.LRUCache), fmtDur(b.Total()), b.Battery)
	}
}

func figure13WARows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure13WA(scale) }

func printFigure13WA(rows any) {
	fmt.Println("Figure 13 (bottom): write-amplification breakdown per FTL (simulation)")
	fmt.Print(geckoftl.FormatTable("", rows.([]geckoftl.Result)))
}

func figure14Rows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Figure14(scale) }

func printFigure14(rows any) {
	fmt.Println("Figure 14: equal RAM budget; freed PVB RAM used as extra cache (simulation)")
	fmt.Printf("%-10s %14s %10s %10s %12s %10s\n", "ftl", "cache entries", "WA", "user", "translation", "validity")
	for _, r := range rows.([]geckoftl.Figure14Row) {
		fmt.Printf("%-10s %14d %10.3f %10.3f %12.3f %10.3f\n",
			r.Name, r.CacheEntries, r.WA, r.UserWA, r.TranslationWA, r.ValidityWA)
	}
}

func recoveryRows(scale geckoftl.ExperimentScale) (any, error) {
	return geckoftl.RecoverySimulation(scale)
}

func printRecovery(rows any) {
	fmt.Println("Recovery simulation: crash each FTL mid-workload on one plane, measure recovery IO and time")
	fmt.Printf("%-10s %14s %12s %12s %12s %10s %10s\n", "ftl", "duration", "spare reads", "page reads", "page writes", "entries", "battery")
	for _, r := range rows.([]geckoftl.RecoveryResult) {
		fmt.Printf("%-10s %14s %12d %12d %12d %10d %10v\n",
			r.Name, fmtDur(r.Duration), r.SpareReads, r.PageReads, r.PageWrites, r.RecoveredMappingEntries, r.UsedBattery)
	}
}

func recoverySweepRows(scale geckoftl.ExperimentScale) (any, error) {
	return geckoftl.RecoverySweep(geckoftl.RecoverySweepOptions{Scale: scale, Channels: sweepOpts.Channels})
}

func printRecoverySweep(rows any) {
	fmt.Println("Engine recovery sweep: crash the sharded engine, recover all shards in parallel")
	fmt.Printf("%-11s %-12s %8s %7s %7s %10s %10s %8s %11s %8s %10s\n",
		"dimension", "ftl", "channels", "blocks", "cache", "wall", "serial", "speedup", "spare reads", "entries", "model-wall")
	for _, p := range rows.([]geckoftl.RecoveryPoint) {
		fmt.Printf("%-11s %-12s %8d %7d %7d %10s %10s %7.2fx %11d %8d %10s\n",
			p.Dimension, p.FTL, p.Channels, p.Blocks, p.CacheEntries,
			fmtDur(p.WallClock), fmtDur(p.SerialTime), p.Speedup, p.SpareReads, p.RecoveredEntries, fmtDur(p.ModelWall))
	}
}

func summaryRows(scale geckoftl.ExperimentScale) (any, error) { return geckoftl.Headlines(scale) }

func printSummary(rows any) {
	s := rows.(geckoftl.HeadlineSummary)
	fmt.Println("Headline claims")
	fmt.Printf("  page-validity RAM reduction vs RAM-resident PVB:   %5.1f%%  (paper: 95%%)\n", 100*s.RAMReduction)
	fmt.Printf("  recovery-time reduction vs LazyFTL:                %5.1f%%  (paper: >= 51%%)\n", 100*s.RecoveryReduction)
	fmt.Printf("  page-validity write-amplification reduction vs\n")
	fmt.Printf("  flash-resident PVB:                                %5.1f%%  (paper: 98%%)\n", 100*s.ValidityWAReduction)
}

// sweepOpts, sweepDies, latencyOpts, trimOpts, queueOpts and jsonMode carry
// flags to the experiment drivers.
var (
	sweepOpts   geckoftl.ChannelSweepOptions
	sweepDies   int
	latencyOpts geckoftl.LatencySweepOptions
	trimOpts    geckoftl.TrimSweepOptions
	wearOpts    geckoftl.WearSweepOptions
	queueOpts   geckoftl.QueueSweepOptions
	jsonMode    bool
)

// parseFractions parses a comma-separated trim-fraction list, e.g.
// "0,0.1,0.2".
func parseFractions(s string) ([]float64, error) {
	var out []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		f, err := strconv.ParseFloat(field, 64)
		if err != nil || f < 0 || f >= 1 {
			return nil, fmt.Errorf("bad trim fraction %q in -trim-fractions (want [0,1))", field)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-trim-fractions %q lists no fractions", s)
	}
	return out, nil
}

func trimSweepRows(scale geckoftl.ExperimentScale) (any, error) {
	opts := trimOpts
	opts.Scale = scale
	return geckoftl.TrimSweep(opts)
}

func printTrimSweep(rows any) {
	fmt.Println("Trim sweep: write-amplification of the sharded GeckoFTL engine vs host trim fraction")
	fmt.Printf("%-9s %9s %9s %8s %8s %10s %8s %8s %8s %10s %10s\n",
		"workload", "trim-frac", "writes", "trims", "trimmed", "WA", "user", "trans", "valid", "write-p99", "trim-p99")
	for _, p := range rows.([]geckoftl.TrimPoint) {
		fmt.Printf("%-9s %9.2f %9d %8d %8d %10.3f %8.3f %8.3f %8.3f %10s %10s\n",
			p.Workload, p.TrimFraction, p.Writes, p.Trims, p.TrimmedPages,
			p.WA, p.UserWA, p.TranslationWA, p.ValidityWA,
			fmtDur(p.Write.P99), fmtDur(p.Trim.P99))
	}
}

func wearSweepRows(scale geckoftl.ExperimentScale) (any, error) {
	opts := wearOpts
	opts.Scale = scale
	return geckoftl.WearSweep(opts)
}

func printWearSweep(rows any) {
	fmt.Println("Wear sweep: WA and erase-count spread of the sharded GeckoFTL engine, single vs hot/cold frontiers")
	fmt.Printf("%-9s %-15s %-9s %5s %9s %6s %10s %8s %8s %8s %8s %6s %6s %7s %10s %10s\n",
		"workload", "policy", "frontier", "wear", "writes", "hot%", "WA", "user", "trans", "valid", "erases", "min-e", "max-e", "spread", "model-sgl", "model-sep")
	for _, p := range rows.([]geckoftl.WearPoint) {
		hotFrac := 0.0
		if p.Writes > 0 {
			hotFrac = 100 * float64(p.HotWrites) / float64(p.Writes)
		}
		fmt.Printf("%-9s %-15s %-9s %5v %9d %6.1f %10.3f %8.3f %8.3f %8.3f %8d %6d %6d %7d %10.3f %10.3f\n",
			p.Workload, p.Policy, p.Frontier, p.WearAware, p.Writes, hotFrac,
			p.WA, p.UserWA, p.TranslationWA, p.ValidityWA,
			p.Erases, p.MinErase, p.MaxErase, p.EraseSpread,
			p.ModelSingleWA, p.ModelSeparatedWA)
	}
}

func enduranceSweepRows(scale geckoftl.ExperimentScale) (any, error) {
	return geckoftl.EnduranceSweep(geckoftl.EnduranceSweepOptions{Scale: scale})
}

func printEnduranceSweep(rows any) {
	fmt.Println("Endurance sweep: device lifetime in host writes until capacity exhaustion, fault rate x allocation policy")
	fmt.Printf("%-9s %-11s %6s %7s %10s %7s %6s %9s %7s\n",
		"workload", "policy", "fault", "max-e", "lifetime", "capped", "bad", "retries", "spread")
	for _, p := range rows.([]geckoftl.EndurancePoint) {
		fmt.Printf("%-9s %-11s %6.2f %7d %10d %7v %6d %9d %7d\n",
			p.Workload, p.Policy, p.FaultRate, p.MaxEraseCount, p.Lifetime, p.Capped,
			p.BadBlocks, p.ProgramRetries, p.EraseSpread)
	}
}

func restartSweepRows(scale geckoftl.ExperimentScale) (any, error) {
	return geckoftl.RestartSweep(geckoftl.RestartSweepOptions{Scale: scale})
}

func printRestartSweep(rows any) {
	fmt.Println("Restart sweep: warm restart from the shutdown checkpoint vs cold GeckoRec recovery of identical state")
	fmt.Printf("%-9s %7s %7s %7s %10s %10s %10s %8s %11s %11s\n",
		"channels", "shards", "blocks", "cache", "ckpt", "warm", "cold", "speedup", "model-warm", "model-cold")
	for _, p := range rows.([]geckoftl.RestartPoint) {
		fmt.Printf("%-9d %7d %7d %7d %10s %10s %10s %7.2fx %11s %11s\n",
			p.Channels, p.Shards, p.Blocks, p.CacheEntries,
			formatBytes(p.CheckpointBytes), fmtDur(p.WarmWallClock), fmtDur(p.ColdWallClock),
			p.Speedup, fmtDur(p.ModelWarm), fmtDur(p.ModelCold))
	}
}

// parseDepths parses the -depths flag: a comma-separated queue-depth list,
// e.g. "1,4,8,16". Empty keeps the sweep's default ladder.
func parseDepths(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad queue depth %q in -depths", field)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-depths %q lists no depths", s)
	}
	return out, nil
}

func queueSweepRows(scale geckoftl.ExperimentScale) (any, error) {
	opts := queueOpts
	opts.Scale = scale
	return geckoftl.QueueSweep(opts)
}

func printQueueSweep(rows any) {
	fmt.Println("Queue sweep: async submission engine vs the synchronous baseline and the queueing model's saturation knee")
	fmt.Printf("%-7s %-19s %-10s %6s %9s %9s %7s %8s %9s %8s %9s %9s %9s %9s\n",
		"mode", "workload", "policy", "depth", "offered/s", "tput/s", "WA", "knee/s", "shed", "delayed", "p50", "p99", "p99.9", "bound")
	for _, p := range rows.([]geckoftl.QueuePoint) {
		offered := "-"
		if p.Offered > 0 {
			offered = fmt.Sprintf("%.0f", p.Offered)
		}
		bound := "-"
		if p.DelayBound > 0 {
			bound = fmtDur(p.DelayBound)
		}
		fmt.Printf("%-7s %-19s %-10s %6d %9s %9.0f %7.3f %8.0f %9d %8d %9s %9s %9s %9s\n",
			p.Mode, p.Workload, p.Policy, p.Depth, offered, p.Throughput, p.WA, p.ModelKnee,
			p.Shed, p.Delayed, fmtDur(p.Latency.P50), fmtDur(p.Latency.P99), fmtDur(p.Latency.P999), bound)
	}
}

// parseGCModes parses the -gc-mode flag: a single geckoftl.GCMode name or "both".
func parseGCModes(s string) ([]geckoftl.GCMode, error) {
	if s == "" || s == "both" {
		return []geckoftl.GCMode{geckoftl.GCInline, geckoftl.GCIncremental}, nil
	}
	m, err := geckoftl.ParseGCMode(s)
	if err != nil {
		return nil, err
	}
	return []geckoftl.GCMode{m}, nil
}

// parsePolicies parses the -policy flag: a single geckoftl.VictimPolicy name or
// "both".
func parsePolicies(s string) ([]geckoftl.VictimPolicy, error) {
	if s == "" || s == "both" {
		return []geckoftl.VictimPolicy{geckoftl.VictimMetadataAware, geckoftl.VictimGreedy}, nil
	}
	p, err := geckoftl.ParseVictimPolicy(s)
	if err != nil {
		return nil, err
	}
	return []geckoftl.VictimPolicy{p}, nil
}

func latencySweepRows(scale geckoftl.ExperimentScale) (any, error) {
	opts := latencyOpts
	opts.Scale = scale
	return geckoftl.LatencySweep(opts)
}

func printLatencySweep(rows any) {
	fmt.Println("Latency sweep: per-write service time of the sharded GeckoFTL engine, inline vs incremental GC")
	fmt.Printf("%-9s %-15s %-12s %3s %10s %8s %9s %9s %9s %9s %8s %10s %10s %5s\n",
		"workload", "policy", "gc-mode", "k", "WA", "p50", "p90", "p99", "p99.9", "max", "stalled", "max-stall", "bound", "fb")
	for _, p := range rows.([]geckoftl.LatencyPoint) {
		fmt.Printf("%-9s %-15s %-12s %3d %10.3f %8s %9s %9s %9s %9s %8d %10s %10s %5d\n",
			p.Workload, p.Policy, p.GCMode, p.GCPagesPerWrite, p.WA,
			fmtDur(p.Write.P50), fmtDur(p.Write.P90), fmtDur(p.Write.P99), fmtDur(p.Write.P999), fmtDur(p.Write.Max),
			p.GCStalledWrites.Count, fmtDur(p.MaxGCStall), fmtDur(p.ModelStallBound), p.GCFallbacks)
	}
}

// parseSweep parses a comma-separated channel-count list, e.g. "1,2,4,8".
func parseSweep(s string) ([]int, error) {
	var out []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad channel count %q in -sweep", field)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep %q lists no channel counts", s)
	}
	return out, nil
}

func channelSweepRows(scale geckoftl.ExperimentScale) (any, error) {
	opts := sweepOpts
	opts.Scale = scale
	opts.Scale.Device.DiesPerChannel = sweepDies
	return geckoftl.ChannelSweep(opts)
}

func printChannelSweep(rows any) {
	wl := sweepOpts.Workload
	if wl == "" {
		wl = "uniform"
	}
	fmt.Printf("Channel scaling: sharded GeckoFTL engine write throughput vs channel count (%s workload, %d dies/channel)\n",
		wl, sweepDies)
	fmt.Printf("%-9s %6s %12s %10s %10s %8s %12s %10s\n",
		"channels", "dies", "writes/s", "speedup", "WA", "wall", "model-w/s", "imbalance")
	for _, p := range rows.([]geckoftl.ChannelPoint) {
		fmt.Printf("%-9d %6d %12.0f %9.2fx %10.3f %8s %12.0f %10.3f\n",
			p.Channels, p.Dies, p.Throughput, p.Speedup, p.WA, fmtDur(p.WallTime), p.ModelThroughput, p.LoadImbalance)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fmtDur(d time.Duration) string {
	if d >= time.Second {
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
	return d.Round(time.Microsecond).String()
}
