package main

import (
	"testing"

	"geckoftl"
)

// TestGCModeFlagRoundTrip pins that every geckoftl.GCMode's String() is accepted
// verbatim by the -gc-mode flag parser, so option names printed in
// experiment output can be pasted back into the command line.
func TestGCModeFlagRoundTrip(t *testing.T) {
	for _, m := range []geckoftl.GCMode{geckoftl.GCInline, geckoftl.GCIncremental} {
		got, err := parseGCModes(m.String())
		if err != nil {
			t.Fatalf("-gc-mode %q rejected: %v", m.String(), err)
		}
		if len(got) != 1 || got[0] != m {
			t.Fatalf("-gc-mode %q parsed to %v", m.String(), got)
		}
	}
	if both, err := parseGCModes("both"); err != nil || len(both) != 2 {
		t.Fatalf("-gc-mode both parsed to %v, %v", both, err)
	}
	if _, err := parseGCModes("bogus"); err == nil {
		t.Fatal("-gc-mode bogus accepted")
	}
}

// TestVictimPolicyFlagRoundTrip pins the same for -policy and
// geckoftl.VictimPolicy.String().
func TestVictimPolicyFlagRoundTrip(t *testing.T) {
	for _, p := range []geckoftl.VictimPolicy{geckoftl.VictimGreedy, geckoftl.VictimMetadataAware} {
		got, err := parsePolicies(p.String())
		if err != nil {
			t.Fatalf("-policy %q rejected: %v", p.String(), err)
		}
		if len(got) != 1 || got[0] != p {
			t.Fatalf("-policy %q parsed to %v", p.String(), got)
		}
	}
	if both, err := parsePolicies("both"); err != nil || len(both) != 2 {
		t.Fatalf("-policy both parsed to %v, %v", both, err)
	}
	if _, err := parsePolicies("bogus"); err == nil {
		t.Fatal("-policy bogus accepted")
	}
}

// TestKnownExperimentNames pins that every spec registered in experiments()
// is reachable through -experiment, including by its group selector, and
// that the restart experiment is registered.
func TestKnownExperimentNames(t *testing.T) {
	found := false
	for _, e := range experiments() {
		if !knownExperiment(e.name) {
			t.Errorf("experiment %q not selectable by name", e.name)
		}
		if e.group != "" && !knownExperiment(e.group) {
			t.Errorf("group %q of experiment %q not selectable", e.group, e.name)
		}
		if e.name == "restart" {
			found = true
		}
	}
	if !found {
		t.Error("restart experiment not registered")
	}
	if knownExperiment("bogus") {
		t.Error("knownExperiment accepted bogus")
	}
}

// TestAdmissionFlagRoundTrip pins that every geckoftl.AdmissionPolicy's
// String() is accepted verbatim by -admission, so the policy labels printed
// in queue-sweep rows can be pasted back into the command line.
func TestAdmissionFlagRoundTrip(t *testing.T) {
	for _, p := range []geckoftl.AdmissionPolicy{geckoftl.AdmitShed, geckoftl.AdmitWait} {
		got, err := geckoftl.ParseAdmissionPolicy(p.String())
		if err != nil {
			t.Fatalf("-admission %q rejected: %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("-admission %q parsed to %v", p.String(), got)
		}
	}
	if _, err := geckoftl.ParseAdmissionPolicy("bogus"); err == nil {
		t.Fatal("-admission bogus accepted")
	}
}

// TestParseDepths covers the -depths queue-depth ladder parser: empty keeps
// the sweep default, lists parse with whitespace tolerance, and zero or
// malformed depths are rejected.
func TestParseDepths(t *testing.T) {
	if got, err := parseDepths(""); err != nil || got != nil {
		t.Fatalf("parseDepths(\"\") = %v, %v; want nil, nil", got, err)
	}
	got, err := parseDepths("1, 4,16")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseDepths = %v, %v", got, err)
	}
	for _, bad := range []string{"0", "x", "-4", ","} {
		if _, err := parseDepths(bad); err == nil {
			t.Errorf("parseDepths(%q) accepted", bad)
		}
	}
}

// TestExperimentNamesListed pins the usage-error contract: the valid-name
// list offered on an unknown -experiment contains every selectable name
// exactly once, ends with the "all" selector, and includes queue.
func TestExperimentNamesListed(t *testing.T) {
	names := experimentNames()
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("experiment name %q listed twice", n)
		}
		seen[n] = true
		if !knownExperiment(n) {
			t.Errorf("listed name %q is not selectable", n)
		}
	}
	for _, want := range []string{"queue", "recovery", "all"} {
		if !seen[want] {
			t.Errorf("name list %v is missing %q", names, want)
		}
	}
	if names[len(names)-1] != "all" {
		t.Errorf("name list %v does not end with the all selector", names)
	}
}

// TestParseSweep covers the pre-existing channel-list parser alongside the
// new flag parsers.
func TestParseSweep(t *testing.T) {
	got, err := parseSweep("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseSweep = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-1"} {
		if _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q) accepted", bad)
		}
	}
}
