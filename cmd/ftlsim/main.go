// Command ftlsim runs one FTL configuration against one workload on the
// simulated flash device and prints its write-amplification breakdown, RAM
// footprint and, optionally, a crash-recovery measurement.
//
// Usage:
//
//	ftlsim -ftl gecko -workload uniform -writes 50000
//	ftlsim -ftl lazy -workload zipfian -skew 1.3 -crash
//	ftlsim -ftl all -blocks 512
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"geckoftl/internal/ftl"
	"geckoftl/internal/sim"
	"geckoftl/internal/workload"
)

func main() {
	var (
		ftlName   = flag.String("ftl", "gecko", "FTL to simulate: gecko, dftl, lazy, mu, ib, or all")
		wlName    = flag.String("workload", "uniform", "workload: uniform, sequential, zipfian, hotcold, mixed")
		writes    = flag.Int64("writes", 50000, "measured logical writes")
		blocks    = flag.Int("blocks", 256, "device blocks")
		pages     = flag.Int("pages", 32, "pages per block")
		pageSize  = flag.Int("pagesize", 1024, "page size in bytes")
		overProv  = flag.Float64("overprovision", 0.7, "logical/physical capacity ratio R")
		cache     = flag.Int("cache", 1024, "LRU cache capacity in mapping entries")
		skew      = flag.Float64("skew", 1.2, "zipfian skew")
		readRatio = flag.Float64("reads", 0.3, "read fraction for the mixed workload")
		seed      = flag.Int64("seed", 1, "workload seed")
		crash     = flag.Bool("crash", false, "power-fail after the run and measure recovery")
	)
	flag.Parse()

	device := sim.DeviceSpec{Blocks: *blocks, PagesPerBlock: *pages, PageSize: *pageSize, OverProvision: *overProv}
	// Bad flag values (workload name, skew, read ratio, geometry) are usage
	// errors: report them with the flag reference instead of a failure (or,
	// worse, the panic backtrace earlier versions produced) mid-run.
	if _, err := generator(*wlName, int64(device.Config().LogicalPages()), *skew, *readRatio, *seed); err != nil {
		usageExit(err)
	}
	names := []string{*ftlName}
	if *ftlName == "all" {
		names = []string{"gecko", "dftl", "lazy", "mu", "ib"}
	}
	for _, name := range names {
		if _, err := options(name, *cache); err != nil {
			usageExit(err)
		}
	}
	for _, name := range names {
		if err := runOne(name, device, *wlName, *writes, *cache, *skew, *readRatio, *seed, *crash); err != nil {
			fmt.Fprintf(os.Stderr, "ftlsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// usageExit reports a bad flag value and exits with the conventional
// bad-usage status.
func usageExit(err error) {
	fmt.Fprintf(os.Stderr, "ftlsim: %v\n", err)
	flag.Usage()
	os.Exit(2)
}

func options(name string, cache int) (ftl.Options, error) {
	switch strings.ToLower(name) {
	case "gecko", "geckoftl":
		return ftl.GeckoFTLOptions(cache), nil
	case "dftl":
		return ftl.DFTLOptions(cache), nil
	case "lazy", "lazyftl":
		return ftl.LazyFTLOptions(cache), nil
	case "mu", "uftl", "mu-ftl":
		return ftl.MuFTLOptions(cache), nil
	case "ib", "ibftl", "ib-ftl":
		return ftl.IBFTLOptions(cache), nil
	default:
		return ftl.Options{}, fmt.Errorf("unknown FTL %q", name)
	}
}

func generator(name string, logicalPages int64, skew, readRatio float64, seed int64) (workload.Generator, error) {
	switch strings.ToLower(name) {
	case "uniform":
		return workload.NewUniform(logicalPages, seed)
	case "sequential":
		return workload.NewSequential(logicalPages)
	case "zipfian":
		return workload.NewZipfian(logicalPages, skew, seed)
	case "hotcold":
		return workload.NewHotCold(logicalPages, 0.2, 0.8, seed)
	case "mixed":
		writes, err := workload.NewUniform(logicalPages, seed)
		if err != nil {
			return nil, err
		}
		return workload.NewMixed(writes, logicalPages, readRatio, seed+1)
	default:
		return nil, fmt.Errorf("unknown workload %q (want uniform, sequential, zipfian, hotcold or mixed)", name)
	}
}

func runOne(name string, device sim.DeviceSpec, wlName string, writes int64, cache int, skew, readRatio float64, seed int64, crash bool) error {
	opts, err := options(name, cache)
	if err != nil {
		return err
	}
	logical := int64(device.Config().LogicalPages())
	gen, err := generator(wlName, logical, skew, readRatio, seed)
	if err != nil {
		return err
	}
	result, err := sim.Run(sim.RunOptions{
		Device:        device,
		FTLOptions:    opts,
		Workload:      gen,
		MeasureWrites: writes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s workload, %d writes:\n", result.Name, wlName, writes)
	fmt.Printf("  write-amplification: %.3f (user %.3f, translation %.3f, page-validity %.3f)\n",
		result.WA, result.UserWA, result.TranslationWA, result.ValidityWA)
	fmt.Printf("  integrated RAM:      %d bytes\n", result.RAMBytes)
	fmt.Printf("  GC operations:       %d\n", result.GCOperations)
	fmt.Printf("  simulated time:      %s\n", result.SimulatedTime.Round(time.Millisecond))

	if crash {
		if err := runCrash(name, device, wlName, writes, cache, skew, readRatio, seed); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

// runCrash repeats the workload on a fresh device, power-fails mid-stream and
// reports the recovery cost.
func runCrash(name string, device sim.DeviceSpec, wlName string, writes int64, cache int, skew, readRatio float64, seed int64) error {
	opts, err := options(name, cache)
	if err != nil {
		return err
	}
	dev, err := device.NewDevice()
	if err != nil {
		return err
	}
	f, err := ftl.New(dev, opts)
	if err != nil {
		return err
	}
	gen, err := generator(wlName, f.LogicalPages(), skew, readRatio, seed)
	if err != nil {
		return err
	}
	for i := int64(0); i < writes; i++ {
		op := gen.Next()
		if op.Kind == workload.OpRead {
			if err := f.Read(op.Page); err != nil {
				return err
			}
			continue
		}
		if err := f.Write(op.Page); err != nil {
			return err
		}
	}
	if err := f.PowerFail(); err != nil {
		return err
	}
	report, err := f.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("  power-failure recovery: %s (%d spare reads, %d page reads, %d page writes, %d entries recreated, battery=%v)\n",
		report.Duration.Round(time.Microsecond), report.SpareReads, report.PageReads, report.PageWrites,
		report.RecoveredMappingEntries, report.UsedBattery)
	return nil
}
