// Command ftlsim runs one FTL configuration against one workload on the
// simulated flash device and prints its write-amplification breakdown, RAM
// footprint and, optionally, a crash-recovery measurement.
//
// Usage:
//
//	ftlsim -ftl gecko -workload uniform -writes 50000
//	ftlsim -ftl lazy -workload zipfian -skew 1.3 -crash
//	ftlsim -ftl gecko -workload uniform -trims 0.2
//	ftlsim -ftl all -blocks 512
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"geckoftl"
)

func main() {
	var (
		ftlName   = flag.String("ftl", "gecko", "FTL to simulate: gecko, dftl, lazy, mu, ib, or all")
		wlName    = flag.String("workload", "uniform", "workload: uniform, sequential, zipfian, hotcold, mixed")
		writes    = flag.Int64("writes", 50000, "measured logical writes")
		blocks    = flag.Int("blocks", 256, "device blocks")
		pages     = flag.Int("pages", 32, "pages per block")
		pageSize  = flag.Int("pagesize", 1024, "page size in bytes")
		overProv  = flag.Float64("overprovision", 0.7, "logical/physical capacity ratio R")
		cache     = flag.Int("cache", 1024, "LRU cache capacity in mapping entries")
		skew      = flag.Float64("skew", 1.2, "zipfian skew")
		readRatio = flag.Float64("reads", 0.3, "read fraction for the mixed workload")
		trimFrac  = flag.Float64("trims", 0, "host trim fraction interleaved with the workload [0,1)")
		seed      = flag.Int64("seed", 1, "workload seed")
		crash     = flag.Bool("crash", false, "power-fail after the run and measure recovery")
	)
	flag.Parse()

	device := geckoftl.DeviceSpec{Blocks: *blocks, PagesPerBlock: *pages, PageSize: *pageSize, OverProvision: *overProv}
	// Bad flag values (workload name, skew, read ratio, trim fraction,
	// geometry) are usage errors: report them with the flag reference
	// instead of a failure mid-run.
	if _, err := generator(*wlName, 1024, *skew, *readRatio, *trimFrac, *seed); err != nil {
		usageExit(err)
	}
	names := []string{*ftlName}
	if *ftlName == "all" {
		names = []string{"gecko", "dftl", "lazy", "mu", "ib"}
	}
	for _, name := range names {
		if _, err := geckoftl.FTLOptionsByName(strings.ToLower(name), *cache); err != nil {
			usageExit(err)
		}
	}
	for _, name := range names {
		if err := runOne(name, device, *wlName, *writes, *cache, *skew, *readRatio, *trimFrac, *seed, *crash); err != nil {
			fmt.Fprintf(os.Stderr, "ftlsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// usageExit reports a bad flag value and exits with the conventional
// bad-usage status.
func usageExit(err error) {
	fmt.Fprintf(os.Stderr, "ftlsim: %v\n", err)
	flag.Usage()
	os.Exit(2)
}

func generator(name string, logicalPages int64, skew, readRatio, trimFrac float64, seed int64) (geckoftl.Workload, error) {
	var gen geckoftl.Workload
	var err error
	switch strings.ToLower(name) {
	case "uniform":
		gen, err = geckoftl.NewUniform(logicalPages, seed)
	case "sequential":
		gen, err = geckoftl.NewSequential(logicalPages)
	case "zipfian":
		gen, err = geckoftl.NewZipfian(logicalPages, skew, seed)
	case "hotcold":
		gen, err = geckoftl.NewHotCold(logicalPages, 0.2, 0.8, seed)
	case "mixed":
		var writes geckoftl.Workload
		writes, err = geckoftl.NewUniform(logicalPages, seed)
		if err == nil {
			gen, err = geckoftl.NewMixed(writes, logicalPages, readRatio, seed+1)
		}
	default:
		return nil, fmt.Errorf("unknown workload %q (want uniform, sequential, zipfian, hotcold or mixed)", name)
	}
	if err != nil {
		return nil, err
	}
	if trimFrac > 0 {
		return geckoftl.NewTrimming(gen, logicalPages, trimFrac, seed+2)
	}
	if trimFrac < 0 {
		return nil, fmt.Errorf("trim fraction %g must be in [0,1)", trimFrac)
	}
	return gen, nil
}

func runOne(name string, device geckoftl.DeviceSpec, wlName string, writes int64, cache int, skew, readRatio, trimFrac float64, seed int64, crash bool) error {
	opts, err := geckoftl.FTLOptionsByName(strings.ToLower(name), cache)
	if err != nil {
		return err
	}
	ctx := context.Background()
	dev, err := geckoftl.Open(
		geckoftl.WithGeometry(device.Blocks, device.PagesPerBlock, device.PageSize),
		geckoftl.WithOverProvision(device.OverProvision),
		geckoftl.WithFTLOptions(opts),
	)
	if err != nil {
		return err
	}
	gen, err := generator(wlName, dev.LogicalPages(), skew, readRatio, trimFrac, seed)
	if err != nil {
		return err
	}

	// Warm up with two full overwrites so the measured window reflects
	// steady-state garbage collection, then measure.
	if err := drive(ctx, dev, gen, 2*dev.LogicalPages()); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}
	dev.ResetStats()
	if err := drive(ctx, dev, gen, writes); err != nil {
		return fmt.Errorf("measurement: %w", err)
	}

	snap := dev.Snapshot()
	fmt.Printf("%s on %s workload, %d writes:\n", dev.Geometry().FTL, gen.Name(), snap.WindowWrites)
	fmt.Printf("  write-amplification: %.3f (user %.3f, translation %.3f, page-validity %.3f)\n",
		snap.WriteAmplification, snap.UserWA, snap.TranslationWA, snap.ValidityWA)
	if snap.Ops.Trims > 0 {
		fmt.Printf("  trims served:        %d (%d before-images invalidated)\n", snap.Ops.Trims, snap.Ops.TrimmedPages)
	}
	fmt.Printf("  integrated RAM:      %d bytes\n", snap.RAMBytes)
	fmt.Printf("  GC operations:       %d\n", snap.GC.Collections)
	fmt.Printf("  simulated time:      %s\n", snap.SimulatedTime.Round(time.Millisecond))

	if crash {
		if err := dev.PowerFail(); err != nil {
			return err
		}
		report, err := dev.Recover(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("  power-failure recovery: %s (%d spare reads, %d page reads, %d page writes, %d entries recreated, battery=%v)\n",
			report.WallClock.Round(time.Microsecond), report.SpareReads, report.PageReads, report.PageWrites,
			report.RecoveredMappingEntries, report.UsedBattery)
	}
	fmt.Println()
	return dev.Close(ctx)
}

// drive pushes operations from the generator into the device until n writes
// have been served (reads and trims ride along without counting, matching
// the paper's write-only accounting).
func drive(ctx context.Context, dev *geckoftl.Device, gen geckoftl.Workload, n int64) error {
	var done int64
	for done < n {
		op := gen.Next()
		switch op.Kind {
		case geckoftl.OpRead:
			if err := dev.Read(ctx, op.Page); err != nil {
				return err
			}
		case geckoftl.OpTrim:
			if err := dev.TrimBatch(ctx, []geckoftl.LPN{op.Page}); err != nil {
				return err
			}
		default:
			if err := dev.Write(ctx, op.Page); err != nil {
				return err
			}
			done++
		}
	}
	return nil
}
