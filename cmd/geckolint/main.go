// Command geckolint runs the repo's custom analyzer suite: the mechanical
// form of GeckoFTL's correctness invariants (deterministic replay, honest
// batch cancellation, the sealed error taxonomy, lock discipline, seeded
// randomness, the internal/ API boundary). See docs/analysis.md for the
// catalogue of rules and the bugs that motivated them.
//
// It speaks the go vet -vettool protocol, so both forms work:
//
//	geckolint ./...                      # standalone: re-execs go vet
//	go vet -vettool=$(which geckolint) ./...
//
// Standalone invocation accepts the usual package patterns (defaulting to
// ./...) plus -<analyzer>.* flags, which are forwarded to the vet run, and
// two modes of its own:
//
//	geckolint -json ./...   # findings as a flat JSON array for CI annotations
//	geckolint -hotpath      # escape analysis gate over //geckolint:hotpath
//
// The modes combine: -hotpath -json emits the gate's findings as JSON.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	//geckolint:ignore apiboundary the linter command carries its own analyzers
	"geckoftl/internal/analysis"
)

func main() {
	// Under go vet, the tool is probed with -V=full (build caching) and
	// -flags (flag discovery), then invoked on one package at a time with a
	// trailing *.cfg argument. Everything else is a human at a terminal
	// asking for a standalone run.
	if len(os.Args) > 1 {
		last := os.Args[len(os.Args)-1]
		if os.Args[1] == "-V=full" || os.Args[1] == "-flags" || strings.HasSuffix(last, ".cfg") {
			unitchecker.Main(analysis.All()...) // never returns
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// standalone re-execs the suite through go vet so the toolchain handles
// package loading, caching and export data. Exit codes follow go vet: 0
// clean, non-zero on findings or failure.
func standalone(args []string) int {
	var jsonOut, hotpath bool
	rest := make([]string, 0, len(args))
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-hotpath", "--hotpath":
			hotpath = true
		default:
			rest = append(rest, a)
		}
	}
	args = rest
	if hotpath {
		return hotpathMain(jsonOut)
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "geckolint: locating own binary: %v\n", err)
		return 2
	}
	if jsonOut {
		return jsonMain(exe, args)
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe}, args...)
	if !hasPackagePattern(args) {
		vetArgs = append(vetArgs, "./...")
	}
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if exit, ok := err.(*exec.ExitError); ok {
			return exit.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "geckolint: running go vet: %v\n", err)
		return 2
	}
	return 0
}

// hasPackagePattern reports whether args name any package (anything that is
// not a flag).
func hasPackagePattern(args []string) bool {
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			return true
		}
	}
	return false
}
