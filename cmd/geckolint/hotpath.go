package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	//geckolint:ignore apiboundary the linter command carries its own analyzers
	"geckoftl/internal/analysis/hotalloc"
	//geckolint:ignore apiboundary the linter command carries its own analyzers
	"geckoftl/internal/analysis/lintutil"
)

// hotpathMain is the escape analysis gate behind geckolint -hotpath: rebuild
// the module with -gcflags=-m, parse the compiler's escape diagnostics, and
// fail on any heap allocation whose position falls inside a function
// annotated //geckolint:hotpath. The static hotalloc analyzer catches the
// allocations knowable from the AST; this gate catches the rest with the
// compiler's own proof. Exit codes: 0 clean, 1 findings, 2 failure.
func hotpathMain(jsonOut bool) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "geckolint: locating module root: %v\n", err)
		return 2
	}

	fset := token.NewFileSet()
	astFiles := map[string]*ast.File{} // abs path -> parsed file, for waiver lookup
	var funcs []hotalloc.Func
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "third_party" || name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		if fns := hotalloc.FuncsInFile(fset, f); len(fns) > 0 {
			astFiles[path] = f
			funcs = append(funcs, fns...)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "geckolint: scanning for hotpath annotations: %v\n", err)
		return 2
	}
	if len(funcs) == 0 {
		fmt.Fprintln(os.Stderr, "geckolint: -hotpath found no //geckolint:hotpath annotations; the gate guards nothing (run it from the module root)")
		return 2
	}

	// -a defeats the build cache: cached packages replay -m diagnostics
	// inconsistently, and a gate that silently sees nothing passes wrongly.
	cmd := exec.Command("go", "build", "-a", "-gcflags=geckoftl/...=-m", "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "geckolint: go build -gcflags=-m failed: %v\n%s", err, stderr.String())
		return 2
	}

	var diags []Diag
	for _, esc := range hotalloc.ParseEscapes(stderr.String()) {
		path := esc.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, path)
		}
		fn, ok := enclosingHotFunc(funcs, path, esc.Line)
		if !ok {
			continue
		}
		if f := astFiles[path]; f != nil && waived(fset, f, esc.Line, esc.Col) {
			continue
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		diags = append(diags, Diag{
			File: rel, Line: esc.Line, Col: esc.Col, Analyzer: "hotalloc",
			Message: fmt.Sprintf("hotpath function %s allocates: %s", fn.Name, esc.Msg),
		})
	}

	if jsonOut {
		return emitDiags(diags)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s\n", d.File, d.Line, d.Col, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geckolint: %d allocation(s) in hotpath functions (waive with //geckolint:ignore hotalloc <reason>)\n", len(diags))
		return 1
	}
	fmt.Printf("geckolint: hotpath gate clean: %d annotated function(s) allocation-free\n", len(funcs))
	return 0
}

// enclosingHotFunc finds the annotated function whose span contains the
// diagnostic, if any.
func enclosingHotFunc(funcs []hotalloc.Func, path string, line int) (hotalloc.Func, bool) {
	for _, fn := range funcs {
		if fn.File == path && fn.StartLine <= line && line <= fn.EndLine {
			return fn, true
		}
	}
	return hotalloc.Func{}, false
}

// waived reports whether a //geckolint:ignore hotalloc waiver covers the
// diagnostic position, using the same statement-scoped rule as the in-vet
// analyzers.
func waived(fset *token.FileSet, f *ast.File, line, col int) bool {
	tf := fset.File(f.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return false
	}
	pos := tf.LineStart(line) + token.Pos(col-1)
	return lintutil.IgnoredIn(fset, f, pos, "hotalloc")
}

// moduleRoot resolves the directory holding go.mod for the current
// directory's module.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}
