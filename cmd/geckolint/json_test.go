package main

import "testing"

// TestParseVetJSON feeds canned go vet -json output: "#" package comment
// lines interleaved with the nested per-package, per-analyzer objects.
func TestParseVetJSON(t *testing.T) {
	out := `# geckoftl/internal/ftl
{
	"geckoftl/internal/ftl": {
		"ctxcheck": [
			{
				"posn": "/repo/internal/ftl/engine.go:120:2",
				"message": "loop body does not check ctx"
			}
		],
		"maporder": [
			{
				"posn": "/repo/internal/ftl/gc.go:33:7",
				"message": "map iteration order leaks"
			}
		]
	}
}
# geckoftl/internal/queue
{
	"geckoftl/internal/queue": {}
}
`
	diags, err := parseVetJSON(out)
	if err != nil {
		t.Fatalf("parseVetJSON: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	byAnalyzer := map[string]Diag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = d
	}
	cc := byAnalyzer["ctxcheck"]
	if cc.File != "/repo/internal/ftl/engine.go" || cc.Line != 120 || cc.Col != 2 ||
		cc.Message != "loop body does not check ctx" {
		t.Errorf("ctxcheck diag = %+v", cc)
	}
	if mo := byAnalyzer["maporder"]; mo.File != "/repo/internal/ftl/gc.go" || mo.Line != 33 {
		t.Errorf("maporder diag = %+v", mo)
	}
}

// TestParseVetJSONEmpty pins the clean-run shape: comments only, no objects.
func TestParseVetJSONEmpty(t *testing.T) {
	diags, err := parseVetJSON("# geckoftl/internal/stats\n{\n\t\"geckoftl/internal/stats\": {}\n}\n")
	if err != nil {
		t.Fatalf("parseVetJSON: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0", len(diags))
	}
}

// TestSplitPosn covers the position splitter, including a path containing
// colons ahead of the line:col suffix.
func TestSplitPosn(t *testing.T) {
	file, line, col, err := splitPosn("/tmp/x:y/eng.go:12:7")
	if err != nil || file != "/tmp/x:y/eng.go" || line != 12 || col != 7 {
		t.Errorf("splitPosn = %q %d %d %v", file, line, col, err)
	}
	if _, _, _, err := splitPosn("no-position-here"); err == nil {
		t.Error("splitPosn accepted a malformed position")
	}
}
