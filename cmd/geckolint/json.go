package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Diag is one finding in the machine-readable output: the flat shape CI
// turns into GitHub annotations without having to understand vet's nested
// per-package, per-analyzer JSON.
type Diag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonMain runs the suite through go vet -json and re-emits the findings as
// a flat sorted array on stdout. Exit codes: 0 clean, 1 findings, 2 failure.
func jsonMain(exe string, args []string) int {
	vetArgs := append([]string{"vet", "-json", "-vettool=" + exe}, args...)
	if !hasPackagePattern(args) {
		vetArgs = append(vetArgs, "./...")
	}
	cmd := exec.Command("go", vetArgs...)
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	diags, err := parseVetJSON(stderr.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "geckolint: parsing vet output: %v\nraw output:\n%s", err, stderr.String())
		return 2
	}
	if runErr != nil && len(diags) == 0 {
		// vet failed before producing diagnostics (build error, bad flag):
		// its own message is the only useful output.
		fmt.Fprint(os.Stderr, stderr.String())
		return 2
	}
	return emitDiags(diags)
}

// emitDiags prints the findings as a JSON array on stdout and returns the
// process exit code.
func emitDiags(diags []Diag) int {
	sortDiags(diags)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if diags == nil {
		diags = []Diag{}
	}
	if err := enc.Encode(diags); err != nil {
		fmt.Fprintf(os.Stderr, "geckolint: encoding findings: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// parseVetJSON decodes go vet -json output: interleaved "# pkg" comment
// lines and JSON objects of the form
//
//	{"pkgpath": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}
func parseVetJSON(out string) ([]Diag, error) {
	var jsonText strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteString("\n")
	}
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var diags []Diag
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for dec.More() {
		var obj map[string]map[string][]vetDiag
		if err := dec.Decode(&obj); err != nil {
			return nil, err
		}
		for _, byAnalyzer := range obj {
			for analyzer, ds := range byAnalyzer {
				for _, d := range ds {
					file, line, col, err := splitPosn(d.Posn)
					if err != nil {
						return nil, fmt.Errorf("diagnostic %q: %w", d.Posn, err)
					}
					//geckolint:ignore maporder sorted by sortDiags before returning, behind a helper the analyzer cannot see through
					diags = append(diags, Diag{
						File: file, Line: line, Col: col,
						Analyzer: analyzer, Message: d.Message,
					})
				}
			}
		}
	}
	sortDiags(diags)
	return diags, nil
}

// sortDiags orders findings by file, line, col, analyzer, message — the
// iteration above walks maps, so without this the output order would be
// randomized run to run.
func sortDiags(diags []Diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

var posnRe = regexp.MustCompile(`^(.*):(\d+):(\d+)$`)

// splitPosn splits vet's "file:line:col" position string.
func splitPosn(posn string) (file string, line, col int, err error) {
	m := posnRe.FindStringSubmatch(posn)
	if m == nil {
		return "", 0, 0, fmt.Errorf("malformed position")
	}
	line, err1 := strconv.Atoi(m[2])
	col, err2 := strconv.Atoi(m[3])
	if err1 != nil || err2 != nil {
		return "", 0, 0, fmt.Errorf("malformed position")
	}
	return m[1], line, col, nil
}
