// Command ramcalc evaluates the analytical integrated-RAM and recovery-time
// models at arbitrary device capacities, reproducing the numbers behind
// Figure 1 and Figure 13 (top and middle) for any configuration.
//
// Usage:
//
//	ramcalc -capacity 2TB
//	ramcalc -capacity 512GB -cache 1048576 -pagesize 8192
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"geckoftl"
)

func main() {
	var (
		capacity = flag.String("capacity", "2TB", "device capacity (e.g. 128GB, 2TB)")
		pageSize = flag.Int64("pagesize", 4096, "page size in bytes")
		pages    = flag.Int64("pages", 128, "pages per block")
		cacheEnt = flag.Int64("cache", 1<<19, "LRU cache capacity in entries")
		overProv = flag.Float64("overprovision", 0.7, "logical/physical ratio R")
	)
	flag.Parse()

	bytes, err := parseCapacity(*capacity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ramcalc: %v\n", err)
		os.Exit(1)
	}
	p := geckoftl.DefaultModelParameters()
	p.PageSize = *pageSize
	p.PagesPerBlock = *pages
	p.CacheEntries = *cacheEnt
	p.OverProvision = *overProv
	p = p.WithCapacity(bytes)
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ramcalc: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("device: %s (K=%d blocks, B=%d pages/block, P=%d bytes, R=%.2f, C=%d cache entries)\n\n",
		*capacity, p.Blocks, p.PagesPerBlock, p.PageSize, p.OverProvision, p.CacheEntries)

	fmt.Println("integrated RAM requirement:")
	fmt.Printf("  %-10s %12s %12s %12s %12s %14s %12s\n", "ftl", "cache", "GMD", "PVB", "BVC", "page-validity", "total")
	for _, b := range geckoftl.RAMAll(p) {
		fmt.Printf("  %-10s %12s %12s %12s %12s %14s %12s\n",
			b.FTL, mb(b.Cache), mb(b.GMD), mb(b.PVB), mb(b.BVC), mb(b.PageValidity), mb(b.Total()))
	}

	fmt.Println("\nrecovery time after power failure:")
	fmt.Printf("  %-10s %12s %12s %12s %14s %12s %12s %8s\n", "ftl", "block scan", "GMD", "PVB", "page-validity", "LRU cache", "total", "battery")
	for _, b := range geckoftl.RecoveryAll(p) {
		fmt.Printf("  %-10s %12s %12s %12s %14s %12s %12s %8v\n",
			b.FTL, sec(b.BlockScan), sec(b.GMD), sec(b.PVB), sec(b.PageValidity), sec(b.LRUCache), sec(b.Total()), b.Battery)
	}

	fmt.Println("\nheadline reductions for GeckoFTL:")
	fmt.Printf("  page-validity RAM vs RAM-resident PVB: %.1f%%\n", 100*geckoftl.RAMReductionVsPVB(geckoftl.ModelGeckoFTL, p))
	fmt.Printf("  recovery time vs LazyFTL:              %.1f%%\n", 100*geckoftl.RecoveryReductionVsLazyFTL(geckoftl.ModelGeckoFTL, p))
}

func parseCapacity(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "TB"):
		mult = 1 << 40
		s = strings.TrimSuffix(s, "TB")
	case strings.HasSuffix(s, "GB"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MB")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad capacity %q", s)
	}
	return int64(v * float64(mult)), nil
}

func mb(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func sec(d time.Duration) string {
	if d >= time.Second {
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
	return d.Round(time.Millisecond).String()
}
