package model

import "time"

// Warm-restart cost model. A clean shutdown writes a metadata checkpoint to
// the host; the next start reads it back at host bandwidth and rebuilds RAM
// state with zero flash IO, so warm-restart time is a function of the
// checkpoint's size rather than of device capacity — the quantity GeckoRec
// can only bound, a checkpoint eliminates.
const (
	// CheckpointReadBandwidth is the assumed host read bandwidth for the
	// checkpoint file, in bytes per second (1 GiB/s: a modest host flash
	// device or NVMe namespace reserved for controller metadata).
	CheckpointReadBandwidth = int64(1) << 30
	// CheckpointBaseLatency is the fixed cost of a warm restart before the
	// first byte: opening the file, header validation, and the controller
	// queries that confirm the checkpoint matches device truth.
	CheckpointBaseLatency = 100 * time.Microsecond
)

// Per-record encoded sizes of the checkpoint format (mirroring
// internal/ftl's section encoders); the estimate is a close lower bound of
// the real file, which adds per-section framing and the engine header.
const (
	checkpointBlockRecordBytes = 30
	checkpointGMDRecordBytes   = 8
	checkpointCacheRecordBytes = 17
	checkpointHeatRecordBytes  = 12
)

// CheckpointSize estimates the encoded size in bytes of a metadata
// checkpoint for a device with the given parameters: per-block state, the
// GMD, up to C cached mapping entries, and (when hot/cold separation is on,
// which the estimate assumes off) per-LPN heat state.
func CheckpointSize(p Parameters) int64 {
	return p.Blocks*checkpointBlockRecordBytes +
		p.TranslationPages()*checkpointGMDRecordBytes +
		p.CacheEntries*checkpointCacheRecordBytes
}

// CheckpointSizeWithHeat is CheckpointSize plus the heat-classifier state a
// hot/cold-separating FTL checkpoints (12 bytes per logical page).
func CheckpointSizeWithHeat(p Parameters) int64 {
	return CheckpointSize(p) + p.LogicalPages()*checkpointHeatRecordBytes
}

// WarmRestartEstimate is the modeled cost of loading a checkpoint at start.
type WarmRestartEstimate struct {
	// Bytes is the checkpoint size the estimate was computed for.
	Bytes int64
	// WallClock is the modeled time to read and import the checkpoint.
	WallClock time.Duration
}

// WarmRestart models a warm restart from a checkpoint of the given size:
// the fixed validation latency plus the file read at host bandwidth.
func WarmRestart(bytes int64) WarmRestartEstimate {
	return WarmRestartEstimate{
		Bytes:     bytes,
		WallClock: CheckpointBaseLatency + time.Duration(bytes*int64(time.Second)/CheckpointReadBandwidth),
	}
}
