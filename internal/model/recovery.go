package model

import (
	"time"

	"geckoftl/internal/gecko"
)

// RecoveryBreakdown is the modeled recovery time of one FTL after power
// failure, split by the data structure being recovered (Figure 13 middle;
// Figure 1 bottom is LazyFTL's total across capacities). All values are
// durations under the device latency model.
type RecoveryBreakdown struct {
	FTL FTLKind
	// BlockScan is the initial device scan that classifies blocks (one
	// spare-area read per block); the paper notes it as an emerging
	// bottleneck shared by all FTLs.
	BlockScan time.Duration
	// GMD is the time to rebuild the Global Mapping Directory by scanning
	// the spare areas of all translation pages.
	GMD time.Duration
	// PVB is the time to rebuild the RAM-resident PVB by scanning the
	// translation table (zero for FTLs without a RAM-resident PVB, and for
	// DFTL which copies it to flash on battery power).
	PVB time.Duration
	// PageValidity is the time to recover flash-resident page-validity
	// metadata: Logarithmic Gecko's run directories and buffer, or IB-FTL's
	// full log scan.
	PageValidity time.Duration
	// LRUCache is the time to recover (and, for LazyFTL and IB-FTL,
	// synchronize) dirty cached mapping entries. Zero for battery FTLs;
	// bounded by the checkpointed backwards scan for GeckoFTL.
	LRUCache time.Duration
	// Battery reports that the FTL relies on a battery (DFTL, µ-FTL); the
	// paper draws these bars with a "battery" label instead of a time.
	Battery bool
}

// Total returns the total recovery time.
func (b RecoveryBreakdown) Total() time.Duration {
	return b.BlockScan + b.GMD + b.PVB + b.PageValidity + b.LRUCache
}

// Recovery returns the recovery-time breakdown of one FTL under the given
// parameters, following Section 5.3 and Appendix C:
//
//   - every FTL scans one spare area per block to classify blocks;
//   - every FTL scans the spare areas of all O(K*B/P) translation pages to
//     rebuild the GMD;
//   - DFTL and LazyFTL rebuild the PVB by reading all TT/P translation
//     pages, except that DFTL's battery lets it checkpoint the PVB instead;
//   - GeckoFTL scans the spare areas of all Gecko pages to rebuild run
//     directories and reads up to 2V translation pages to rebuild the
//     buffer; µ-FTL's flash-resident PVB needs nothing;
//   - IB-FTL reads its whole page-validity log to rebuild chain heads;
//   - LazyFTL and IB-FTL recreate and synchronize up to DirtyFraction*C
//     dirty entries before resuming (a spare-area scan of up to 2C pages
//     plus min(C_dirty, TT/P) translation-page reads and writes); GeckoFTL
//     only performs the bounded backwards scan and defers synchronization;
//     battery FTLs skip this step entirely.
func Recovery(kind FTLKind, p Parameters) RecoveryBreakdown {
	lat := p.Latency
	spare := func(n int64) time.Duration { return time.Duration(n) * lat.SpareRead }
	read := func(n int64) time.Duration { return time.Duration(n) * lat.PageRead }
	write := func(n int64) time.Duration { return time.Duration(n) * lat.PageWrite }

	out := RecoveryBreakdown{FTL: kind}
	out.BlockScan = spare(p.Blocks)
	out.GMD = spare(p.TranslationPages())

	switch kind {
	case DFTL:
		out.Battery = true
		// The battery copies PVB and dirty entries to flash before power
		// runs out; recovering them is a bounded read charged to PVB.
		out.PVB = read(p.PVBBytes() / p.PageSize)
	case LazyFTL:
		out.PVB = read(p.TranslationPages())
		out.LRUCache = lazyDirtyRecovery(p)
	case MuFTL:
		out.Battery = true
		// The flash-resident PVB persists; nothing to rebuild beyond the
		// directory covered by the block scan.
	case IBFTL:
		logPages := p.PVLLogEntries() * 22 / p.PageSize
		out.PageValidity = read(logPages)
		out.LRUCache = lazyDirtyRecovery(p)
	case GeckoFTL:
		cfg := p.GeckoConfig()
		geckoPages := 2 * cfg.MaxEntries() / int64(cfg.EntriesPerPage())
		out.PageValidity = spare(geckoPages) + read(2*int64(cfg.EntriesPerPage())/int64(cfg.PartitionFactor))
		// Bounded backwards scan of at most 2C spare areas; synchronization
		// is deferred past the end of recovery (Section 4.3).
		out.LRUCache = spare(2 * p.CacheEntries)
	}
	_ = write
	return out
}

// lazyDirtyRecovery models the LazyFTL / IB-FTL cost of recovering and
// synchronizing dirty mapping entries before resuming: a backwards spare-area
// scan to find them plus min(dirty, TT/P) translation-page reads and writes
// to synchronize them.
func lazyDirtyRecovery(p Parameters) time.Duration {
	lat := p.Latency
	dirty := int64(p.DirtyFraction * float64(p.CacheEntries))
	if dirty < 1 {
		dirty = 1
	}
	syncPages := dirty
	if tp := p.TranslationPages(); syncPages > tp {
		syncPages = tp
	}
	scan := time.Duration(2*dirty) * lat.SpareRead
	sync := time.Duration(syncPages) * (lat.PageRead + lat.PageWrite)
	return scan + sync
}

// EngineRecoveryEstimate is the modeled cost of engine-wide parallel
// recovery on a sharded, multi-channel device.
type EngineRecoveryEstimate struct {
	FTL    FTLKind
	Shards int
	// PerShard is the recovery breakdown of one shard: the device's blocks
	// and the mapping cache divided evenly across shards.
	PerShard RecoveryBreakdown
	// WallClock is the slowest-shard critical path. With evenly divided,
	// balanced shards it equals one shard's total, because shards recover
	// concurrently on disjoint channels.
	WallClock time.Duration
	// SerialTime is what the same recovery would cost on the paper's single
	// serialized plane: Shards times the per-shard total.
	SerialTime time.Duration
}

// EngineRecovery models the ftl.Engine's channel-parallel recovery: the
// device is split into shards (one per channel), each shard runs the FTL's
// recovery procedure over its own partition, and all shards proceed
// concurrently. Recovery work is dominated by spare-area scans of each
// shard's own blocks, so the wall-clock is one shard's recovery while the
// serial cost stays that of the whole device.
func EngineRecovery(kind FTLKind, p Parameters, shards int) EngineRecoveryEstimate {
	if shards < 1 {
		shards = 1
	}
	per := p
	per.Blocks = p.Blocks / int64(shards)
	if per.Blocks < 1 {
		per.Blocks = 1
	}
	per.CacheEntries = p.CacheEntries / int64(shards)
	if per.CacheEntries < 1 {
		per.CacheEntries = 1
	}
	breakdown := Recovery(kind, per)
	total := breakdown.Total()
	return EngineRecoveryEstimate{
		FTL:        kind,
		Shards:     shards,
		PerShard:   breakdown,
		WallClock:  total,
		SerialTime: time.Duration(int64(total) * int64(shards)),
	}
}

// RecoveryAll returns the breakdown for every FTL.
func RecoveryAll(p Parameters) []RecoveryBreakdown {
	out := make([]RecoveryBreakdown, 0, len(Kinds()))
	for _, k := range Kinds() {
		out = append(out, Recovery(k, p))
	}
	return out
}

// RecoveryReductionVsLazyFTL returns the fraction by which an FTL's total
// recovery time is below LazyFTL's. The paper's headline claim is at least a
// 51% reduction for GeckoFTL.
func RecoveryReductionVsLazyFTL(kind FTLKind, p Parameters) float64 {
	base := Recovery(LazyFTL, p).Total()
	own := Recovery(kind, p).Total()
	if base <= 0 {
		return 0
	}
	return 1 - float64(own)/float64(base)
}

// CapacityPoint is one x-axis point of Figure 1: a device capacity with the
// resulting RAM requirement and recovery time for LazyFTL (the
// state-of-the-art baseline the introduction uses).
type CapacityPoint struct {
	CapacityBytes int64
	RAMBytes      int64
	Recovery      time.Duration
}

// Figure1 sweeps device capacity and returns LazyFTL's total integrated-RAM
// requirement and recovery time at each point, reproducing Figure 1.
func Figure1(base Parameters, capacities []int64) []CapacityPoint {
	out := make([]CapacityPoint, 0, len(capacities))
	for _, c := range capacities {
		p := base.WithCapacity(c)
		out = append(out, CapacityPoint{
			CapacityBytes: c,
			RAMBytes:      RAM(LazyFTL, p).Total(),
			Recovery:      Recovery(LazyFTL, p).Total(),
		})
	}
	return out
}

// Table1Row is one row of Table 1: the asymptotic per-operation costs of a
// page-validity scheme, evaluated numerically for the given parameters.
type Table1Row struct {
	Technique    string
	UpdateReads  float64
	UpdateWrites float64
	QueryReads   float64
	QueryWrites  float64
	RAMBytes     int64
}

// Table1 evaluates Table 1 for the given parameters using the cost models of
// the gecko package.
func Table1(p Parameters) []Table1Row {
	cfg := p.GeckoConfig()
	ramPVB := gecko.RAMPVBCost(int(p.Blocks), int(p.PagesPerBlock))
	flashPVB := gecko.FlashPVBCost(int(p.Blocks), int(p.PagesPerBlock), int(p.PageSize))
	lg := cfg.AnalyticalCost()
	return []Table1Row{
		{Technique: "RAM-resident PVB", RAMBytes: ramPVB.RAMBytes},
		{
			Technique:    "Flash-resident PVB",
			UpdateReads:  flashPVB.UpdateReads,
			UpdateWrites: flashPVB.UpdateWrites,
			QueryReads:   flashPVB.QueryReads,
			QueryWrites:  flashPVB.QueryWrites,
			RAMBytes:     flashPVB.RAMBytes,
		},
		{
			Technique:    "Logarithmic Gecko",
			UpdateReads:  lg.UpdateReads,
			UpdateWrites: lg.UpdateWrites,
			QueryReads:   lg.QueryReads,
			QueryWrites:  lg.QueryWrites,
			RAMBytes:     lg.RAMBytes,
		},
	}
}
