// Package model implements the analytical cost models of the GeckoFTL paper
// and this repository's extensions of them: the integrated-RAM breakdown of
// each FTL's data structures (Section 2 and Appendix B), the recovery-time
// breakdown (Section 5.3 and Appendix C), and the asymptotic per-operation
// IO costs of Table 1. These models generate Figure 1, the top and middle
// parts of Figure 13, and Table 1 at the paper's full 2 TB scale, where
// simulation would be impractical.
//
// Beyond the paper, the package models the multi-channel engine: the
// parallelism-aware throughput model (ParallelParams), the engine-wide
// recovery prediction (EngineRecovery), and the worst-case
// garbage-collection stall bounds (IncrementalGCStallBound,
// InlineGCStallBound) that the latency sweep validates against measured
// per-write stalls, and the hot/cold separation model (SingleFrontierWA,
// SeparatedFrontierWA) that predicts the write-amplification win of
// per-temperature write frontiers, validated in trend by the wear sweep.
package model
