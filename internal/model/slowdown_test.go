package model

import "testing"

func TestSlowdownFactorFormula(t *testing.T) {
	// With RA = 1 read per application read, equal reads and writes, WA = 2
	// and delta = 10, the denominator is 1*1 + 2*10 = 21.
	got := SlowdownFactor(1, 1, 2, 10)
	want := 1.0 / 21.0
	if got != want {
		t.Errorf("SlowdownFactor = %v, want %v", got, want)
	}
	// delta <= 0 falls back to counting reads and writes equally.
	if got := SlowdownFactor(1, 1, 2, 0); got != 1.0/3.0 {
		t.Errorf("SlowdownFactor with delta=0 = %v, want 1/3", got)
	}
	// Degenerate zero denominator returns 1 (no slowdown).
	if got := SlowdownFactor(0, 0, 0, 10); got != 1 {
		t.Errorf("SlowdownFactor with zero denominator = %v, want 1", got)
	}
}

func TestSlowdownLowerWAIsAlwaysBetter(t *testing.T) {
	// For any read/write mix, an FTL with lower write-amplification has a
	// higher (better) slowdown factor; this is why the paper evaluates on
	// write-only workloads and generalizes with this formula.
	for _, rw := range []float64{0, 0.5, 1, 2, 10} {
		gecko := SlowdownFactor(1, rw, 2.1, 10)
		mu := SlowdownFactor(1, rw, 3.4, 10)
		if gecko <= mu {
			t.Errorf("RW=%v: lower WA did not give a better slowdown factor (%v vs %v)", rw, gecko, mu)
		}
	}
}

func TestSlowdownSweep(t *testing.T) {
	ratios := []float64{0.1, 1, 10}
	points := SlowdownSweep(1, 2, 10, ratios)
	if len(points) != len(ratios) {
		t.Fatalf("sweep returned %d points", len(points))
	}
	// As reads dominate (higher RW), the read-amplification term grows and
	// the slowdown factor decreases.
	for i := 1; i < len(points); i++ {
		if points[i].Slowdown >= points[i-1].Slowdown {
			t.Errorf("slowdown not decreasing with read ratio: %+v", points)
		}
	}
}
