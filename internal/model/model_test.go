package model

import (
	"testing"
	"time"
)

func TestDefaultParametersMatchPaperFigure2(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("default parameters invalid: %v", err)
	}
	if p.PhysicalBytes() != 2<<40 {
		t.Errorf("capacity = %d, want 2 TiB", p.PhysicalBytes())
	}
	// Translation table: ~1.4 GB for the 2 TB device (Section 2).
	tt := p.TranslationTableBytes()
	if tt < 1400<<20 || tt > 1600<<20 {
		t.Errorf("translation table = %d bytes, want about 1.4-1.5 GB", tt)
	}
	// GMD: ~1.4 MB (Section 2).
	gmd := p.GMDBytes()
	if gmd < 1300<<10 || gmd > 1600<<10 {
		t.Errorf("GMD = %d bytes, want about 1.4 MB", gmd)
	}
	// PVB: 64 MB (Section 2, "Scalability of PVB").
	if got := p.PVBBytes(); got != 64<<20 {
		t.Errorf("PVB = %d bytes, want 64 MB", got)
	}
	// LRU cache: 4 MB.
	if got := p.CacheBytes(); got != 4<<20 {
		t.Errorf("cache = %d bytes, want 4 MB", got)
	}
	// The PVB is roughly 45x larger than the GMD (Section 2).
	ratio := float64(p.PVBBytes()) / float64(p.GMDBytes())
	if ratio < 40 || ratio > 50 {
		t.Errorf("PVB/GMD ratio = %.1f, want about 45", ratio)
	}
}

func TestValidateRejectsBadParameters(t *testing.T) {
	cases := []func(*Parameters){
		func(p *Parameters) { p.Blocks = 0 },
		func(p *Parameters) { p.PagesPerBlock = 0 },
		func(p *Parameters) { p.PageSize = 0 },
		func(p *Parameters) { p.OverProvision = 0 },
		func(p *Parameters) { p.OverProvision = 1 },
		func(p *Parameters) { p.CacheEntries = 0 },
		func(p *Parameters) { p.BytesPerCacheEntry = 0 },
		func(p *Parameters) { p.DirtyFraction = -0.1 },
		func(p *Parameters) { p.GeckoSizeRatio = 1 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWithCapacityScalesBlocks(t *testing.T) {
	p := Default().WithCapacity(128 << 30) // 128 GB
	if p.PhysicalBytes() != 128<<30 {
		t.Errorf("capacity = %d, want 128 GB", p.PhysicalBytes())
	}
	if p.PagesPerBlock != Default().PagesPerBlock || p.PageSize != Default().PageSize {
		t.Error("WithCapacity changed geometry other than block count")
	}
}

func TestFTLKindNames(t *testing.T) {
	want := map[FTLKind]string{GeckoFTL: "GeckoFTL", DFTL: "DFTL", LazyFTL: "LazyFTL", MuFTL: "uFTL", IBFTL: "IB-FTL"}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if FTLKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
	if len(Kinds()) != 5 {
		t.Errorf("Kinds() returned %d FTLs", len(Kinds()))
	}
}

func TestRAMBreakdownFigure13Top(t *testing.T) {
	p := Default()
	byKind := map[FTLKind]RAMBreakdown{}
	for _, b := range RAMAll(p) {
		byKind[b.FTL] = b
	}
	// DFTL and LazyFTL carry the 64 MB PVB and therefore have the largest
	// footprints.
	if byKind[DFTL].PVB != p.PVBBytes() || byKind[LazyFTL].PVB != p.PVBBytes() {
		t.Error("PVB not charged to DFTL/LazyFTL")
	}
	for _, k := range []FTLKind{GeckoFTL, MuFTL, IBFTL} {
		if byKind[k].PVB != 0 {
			t.Errorf("%v charged a RAM-resident PVB", k)
		}
		if byKind[k].Total() >= byKind[DFTL].Total() {
			t.Errorf("%v total %d not below DFTL %d", k, byKind[k].Total(), byKind[DFTL].Total())
		}
	}
	// GeckoFTL and µ-FTL achieve the lowest footprints; IB-FTL sits in
	// between because of its chain heads (Section 5.3).
	if byKind[GeckoFTL].Total() >= byKind[IBFTL].Total() {
		t.Errorf("GeckoFTL %d not below IB-FTL %d", byKind[GeckoFTL].Total(), byKind[IBFTL].Total())
	}
	if byKind[MuFTL].Total() > byKind[GeckoFTL].Total() {
		t.Errorf("uFTL %d above GeckoFTL %d; the paper has uFTL slightly lower", byKind[MuFTL].Total(), byKind[GeckoFTL].Total())
	}
}

func TestHeadlineRAMReduction(t *testing.T) {
	// "a 95% reduction in space requirements" for page-validity metadata.
	p := Default()
	got := RAMReductionVsPVB(GeckoFTL, p)
	if got < 0.95 {
		t.Errorf("GeckoFTL page-validity RAM reduction vs PVB = %.3f, want >= 0.95", got)
	}
	// The whole-FTL reduction (excluding the cache, whose size is a free
	// parameter) is bounded by the BVC but still substantial.
	dftl := RAM(DFTL, p).Total() - p.CacheBytes()
	geckoFTL := RAM(GeckoFTL, p).Total() - p.CacheBytes()
	if whole := 1 - float64(geckoFTL)/float64(dftl); whole < 0.75 {
		t.Errorf("GeckoFTL whole-metadata RAM reduction = %.3f, want >= 0.75", whole)
	}
}

func TestRecoveryBreakdownFigure13Middle(t *testing.T) {
	p := Default()
	byKind := map[FTLKind]RecoveryBreakdown{}
	for _, b := range RecoveryAll(p) {
		byKind[b.FTL] = b
	}
	// Battery flags.
	if !byKind[DFTL].Battery || !byKind[MuFTL].Battery {
		t.Error("DFTL / uFTL not marked as battery-backed")
	}
	if byKind[GeckoFTL].Battery || byKind[LazyFTL].Battery || byKind[IBFTL].Battery {
		t.Error("battery flag set on a battery-less FTL")
	}
	// LazyFTL and IB-FTL pay the dirty-entry synchronization bottleneck;
	// GeckoFTL does not.
	if byKind[GeckoFTL].LRUCache >= byKind[LazyFTL].LRUCache {
		t.Errorf("GeckoFTL cache recovery %v not below LazyFTL %v", byKind[GeckoFTL].LRUCache, byKind[LazyFTL].LRUCache)
	}
	// LazyFTL also pays the PVB rebuild; GeckoFTL and µ-FTL do not.
	if byKind[LazyFTL].PVB == 0 {
		t.Error("LazyFTL PVB rebuild not charged")
	}
	if byKind[GeckoFTL].PVB != 0 || byKind[MuFTL].PVB != 0 {
		t.Error("PVB rebuild charged to a flash-resident-PVB FTL")
	}
	// Every battery-less FTL's recovery is dominated by structure scans and
	// stays positive.
	for _, k := range Kinds() {
		if byKind[k].Total() <= 0 {
			t.Errorf("%v total recovery time is zero", k)
		}
		if byKind[k].BlockScan <= 0 || byKind[k].GMD <= 0 {
			t.Errorf("%v missing the shared scan costs", k)
		}
	}
}

func TestHeadlineRecoveryReduction(t *testing.T) {
	// "at least a 51% reduction in recovery time" vs the LazyFTL baseline.
	p := Default()
	got := RecoveryReductionVsLazyFTL(GeckoFTL, p)
	if got < 0.51 {
		t.Errorf("GeckoFTL recovery reduction vs LazyFTL = %.3f, want >= 0.51", got)
	}
}

func TestFigure1TrendsWithCapacity(t *testing.T) {
	base := Default()
	capacities := []int64{64 << 30, 256 << 30, 1 << 40, 2 << 40, 4 << 40}
	points := Figure1(base, capacities)
	if len(points) != len(capacities) {
		t.Fatalf("Figure1 returned %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].RAMBytes <= points[i-1].RAMBytes {
			t.Errorf("RAM requirement not increasing with capacity: %v", points)
		}
		if points[i].Recovery <= points[i-1].Recovery {
			t.Errorf("recovery time not increasing with capacity: %v", points)
		}
	}
	// The introduction's calibration points: at 128 GB the RAM requirement
	// reaches ~4 MB (excluding the cache the introduction holds fixed); at
	// 2 TB recovery takes tens of seconds.
	p128 := base.WithCapacity(128 << 30)
	ramNoCache := RAM(LazyFTL, p128).Total() - p128.CacheBytes()
	if ramNoCache < 3<<20 || ramNoCache > 6<<20 {
		t.Errorf("128 GB metadata RAM = %d bytes, want about 4 MB", ramNoCache)
	}
	p2tb := base.WithCapacity(2 << 40)
	rec := Recovery(LazyFTL, p2tb).Total()
	if rec < 10*time.Second || rec > 120*time.Second {
		t.Errorf("2 TB LazyFTL recovery = %v, want tens of seconds", rec)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(Default())
	if len(rows) != 3 {
		t.Fatalf("Table1 returned %d rows", len(rows))
	}
	ram, fpvb, lg := rows[0], rows[1], rows[2]
	if ram.UpdateReads != 0 || ram.UpdateWrites != 0 || ram.QueryReads != 0 {
		t.Error("RAM-resident PVB should have zero IO costs")
	}
	if fpvb.UpdateReads != 1 || fpvb.UpdateWrites != 1 || fpvb.QueryReads != 1 {
		t.Errorf("flash-resident PVB costs = %+v, want 1/1/1", fpvb)
	}
	if !(lg.UpdateWrites < fpvb.UpdateWrites) {
		t.Error("Logarithmic Gecko updates not cheaper than flash PVB")
	}
	if !(lg.QueryReads > fpvb.QueryReads) {
		t.Error("Logarithmic Gecko queries not more expensive than flash PVB (the trade-off)")
	}
	if !(ram.RAMBytes > 20*lg.RAMBytes) {
		t.Errorf("RAM PVB %d not far above Logarithmic Gecko %d", ram.RAMBytes, lg.RAMBytes)
	}
}

func TestRecoveryScalesWithCache(t *testing.T) {
	// LazyFTL's recovery bottleneck grows with the cache (dirty bound),
	// GeckoFTL's grows only through the cheap spare-area scan.
	small := Default()
	big := Default()
	big.CacheEntries *= 8
	lazyGrowth := Recovery(LazyFTL, big).LRUCache - Recovery(LazyFTL, small).LRUCache
	geckoGrowth := Recovery(GeckoFTL, big).LRUCache - Recovery(GeckoFTL, small).LRUCache
	if geckoGrowth >= lazyGrowth {
		t.Errorf("GeckoFTL cache-recovery growth %v not below LazyFTL %v", geckoGrowth, lazyGrowth)
	}
}

func TestEngineRecoveryScalesWithShards(t *testing.T) {
	p := Default()
	serial := Recovery(GeckoFTL, p).Total()
	one := EngineRecovery(GeckoFTL, p, 1)
	if one.WallClock != serial || one.SerialTime != serial {
		t.Errorf("1-shard engine recovery (%v wall, %v serial) != single-plane %v",
			one.WallClock, one.SerialTime, serial)
	}
	prev := one
	for _, shards := range []int{2, 4, 8, 16} {
		est := EngineRecovery(GeckoFTL, p, shards)
		if est.WallClock >= prev.WallClock {
			t.Errorf("%d shards: wall-clock %v not below %d shards' %v",
				shards, est.WallClock, prev.Shards, prev.WallClock)
		}
		// Dividing the device across shards never reduces total scan work by
		// more than the per-shard fixed costs; the serial time stays within a
		// factor of the single-plane total.
		if est.SerialTime > 2*serial || 2*est.SerialTime < serial {
			t.Errorf("%d shards: serial %v implausible vs single-plane %v", shards, est.SerialTime, serial)
		}
		if est.WallClock != est.PerShard.Total() {
			t.Errorf("%d shards: wall-clock %v != per-shard total %v", shards, est.WallClock, est.PerShard.Total())
		}
		prev = est
	}
	// The paper's ordering survives sharding: LazyFTL's synchronize-before-
	// resume recovery stays more expensive than GeckoFTL's bounded scan at
	// the same shard count.
	if g, l := EngineRecovery(GeckoFTL, p, 8), EngineRecovery(LazyFTL, p, 8); g.WallClock >= l.WallClock {
		t.Errorf("8-shard GeckoFTL recovery %v not below LazyFTL %v", g.WallClock, l.WallClock)
	}
}
