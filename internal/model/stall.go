package model

import (
	"time"

	"geckoftl/internal/flash"
)

// Worst-case garbage-collection stall predictions. A "step" is the unit the
// incremental scheduler budgets: relocating one page out of a victim (a
// spare-area read to identify it, a page read and a page program to move it)
// or erasing one block. The latency sweep (sim.LatencySweep) validates these
// bounds against the measured per-write GC stalls.

// GCStallStep returns the largest simulated device time one bounded
// garbage-collection step can take under the given latency model: a page
// relocation or a block erase, whichever is costlier.
func GCStallStep(lat flash.Latency) time.Duration {
	relocate := lat.SpareRead + lat.PageRead + lat.PageWrite
	if lat.Erase > relocate {
		return lat.Erase
	}
	return relocate
}

// IncrementalGCStallBound predicts the worst-case GC stall a single
// application write can absorb under ftl.GCIncremental with the given
// per-write step budget: every one of the k steps at the costliest step
// price. It is a hard bound as long as the incremental collector never falls
// back to inline reclaim (ftl.Stats.GCFallbacks stays zero).
func IncrementalGCStallBound(lat flash.Latency, pagesPerWrite int) time.Duration {
	if pagesPerWrite < 1 {
		pagesPerWrite = 1
	}
	return time.Duration(pagesPerWrite) * GCStallStep(lat)
}

// InlineGCStallBound predicts the per-victim stall of inline whole-victim
// collection: in the worst case every page of the victim is relocated
// (pages-per-victim times the relocation cost) and the victim is erased.
// Unlike the incremental bound this is per victim, not per write — an inline
// write whose collection consumes enough free blocks to stay at the reserve
// reclaims several victims back to back, and metadata-aware configurations
// additionally erase every fully-invalid metadata block in the same write —
// so measured inline stalls can exceed it. That gap is exactly what the
// incremental scheduler removes.
func InlineGCStallBound(lat flash.Latency, pagesPerBlock int) time.Duration {
	if pagesPerBlock < 1 {
		pagesPerBlock = 1
	}
	return time.Duration(pagesPerBlock)*(lat.SpareRead+lat.PageRead+lat.PageWrite) + lat.Erase
}
