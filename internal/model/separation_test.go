package model

import (
	"math"
	"testing"
)

func TestClassWAMatchesUniformFixedPoint(t *testing.T) {
	// The single-class fixed point must satisfy its own defining equation.
	for _, r := range []float64{0.5, 0.7, 0.9} {
		wa := classWA(r)
		if wa < 1 {
			t.Fatalf("classWA(%g) = %g < 1", r, wa)
		}
		rhs := 1 / (1 - math.Exp(-1/(r*wa)))
		if math.Abs(wa-rhs) > 1e-6 {
			t.Errorf("classWA(%g) = %g does not satisfy its fixed point (rhs %g)", r, wa, rhs)
		}
	}
	// More over-provisioning (smaller r) must mean less write-amplification.
	if classWA(0.5) >= classWA(0.7) || classWA(0.7) >= classWA(0.9) {
		t.Errorf("classWA not increasing in r: %g %g %g", classWA(0.5), classWA(0.7), classWA(0.9))
	}
}

func TestSeparationGainSkewed(t *testing.T) {
	cases := []struct {
		name string
		p    SeparationParams
	}{
		{"hotcold-80-20", SeparationParams{OverProvision: 0.7, HotPageFraction: 0.2, HotWriteShare: 0.8}},
		{"zipfian-approx", SeparationParams{OverProvision: 0.7, HotPageFraction: 0.2, HotWriteShare: 0.9}},
	}
	for _, tc := range cases {
		single, err := SingleFrontierWA(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		sep, err := SeparatedFrontierWA(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		gain, err := SeparationWAGain(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !(sep < single) {
			t.Errorf("%s: separated WA %.3f not below single-frontier WA %.3f", tc.name, sep, single)
		}
		if gain <= 1.01 {
			t.Errorf("%s: separation gain %.3f, want comfortably above 1", tc.name, gain)
		}
		if sep < 1 || single < 1 {
			t.Errorf("%s: WA below 1 (single %.3f, separated %.3f)", tc.name, single, sep)
		}
	}
}

func TestSeparationGainVanishesWithoutSkew(t *testing.T) {
	// With HotWriteShare == HotPageFraction both classes update at the same
	// per-page rate: splitting them buys (essentially) nothing.
	p := SeparationParams{OverProvision: 0.7, HotPageFraction: 0.3, HotWriteShare: 0.3}
	gain, err := SeparationWAGain(p)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0.99 || gain > 1.02 {
		t.Errorf("no-skew separation gain = %.4f, want ~1", gain)
	}
}

func TestSeparationGainMonotonicInSkew(t *testing.T) {
	prev := 0.0
	for i, share := range []float64{0.3, 0.5, 0.7, 0.9} {
		gain, err := SeparationWAGain(SeparationParams{OverProvision: 0.7, HotPageFraction: 0.3, HotWriteShare: share})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && gain < prev-1e-6 {
			t.Errorf("gain not monotonic in skew: share %.1f gain %.4f < previous %.4f", share, gain, prev)
		}
		prev = gain
	}
}

func TestSeparationParamsValidate(t *testing.T) {
	bad := []SeparationParams{
		{OverProvision: 0, HotPageFraction: 0.2, HotWriteShare: 0.8},
		{OverProvision: 1, HotPageFraction: 0.2, HotWriteShare: 0.8},
		{OverProvision: 0.7, HotPageFraction: 0, HotWriteShare: 0.8},
		{OverProvision: 0.7, HotPageFraction: 0.2, HotWriteShare: 1},
	}
	for _, p := range bad {
		if _, err := SingleFrontierWA(p); err == nil {
			t.Errorf("SingleFrontierWA(%+v) accepted invalid params", p)
		}
		if _, err := SeparatedFrontierWA(p); err == nil {
			t.Errorf("SeparatedFrontierWA(%+v) accepted invalid params", p)
		}
	}
}
