package model

import (
	"testing"
	"time"

	"geckoftl/internal/flash"
)

func queueingFixture(depth int) (QueueingParams, flash.Latency) {
	lat := flash.Latency{PageRead: 100 * time.Microsecond, PageWrite: time.Millisecond}
	return QueueingParams{
		Parallel: ParallelParams{Channels: 4, DiesPerChannel: 2},
		Depth:    depth,
	}, lat
}

func TestSaturationKneeMatchesParallelCeiling(t *testing.T) {
	q, lat := queueingFixture(8)
	// 8 dies at 1ms per page write and WA 2: 8 / (2 * 1ms) = 4000 writes/s.
	if got, want := q.SaturationKnee(lat, 2), 4000.0; !close20(got, want, 1e-9) {
		t.Errorf("knee = %.0f; want %.0f", got, want)
	}
	// The knee is the open-queue view of the closed-loop ceiling: the two
	// must agree exactly.
	if knee, ceiling := q.SaturationKnee(lat, 3.5), q.Parallel.WriteThroughput(lat, 3.5); knee != ceiling {
		t.Errorf("knee %.0f != parallel ceiling %.0f", knee, ceiling)
	}
}

func TestDeliveredThroughputPlateaus(t *testing.T) {
	q, lat := queueingFixture(8)
	knee := q.SaturationKnee(lat, 2)
	if got := q.DeliveredThroughput(0.5*knee, lat, 2); got != 0.5*knee {
		t.Errorf("below the knee delivered %.0f; want the offered %.0f", got, 0.5*knee)
	}
	if got := q.DeliveredThroughput(2*knee, lat, 2); got != knee {
		t.Errorf("above the knee delivered %.0f; want the knee %.0f", got, knee)
	}
}

func TestUtilizationAndShedFraction(t *testing.T) {
	q, lat := queueingFixture(8)
	knee := q.SaturationKnee(lat, 2)
	if rho := q.Utilization(0.25*knee, lat, 2); !close20(rho, 0.25, 1e-9) {
		t.Errorf("rho at quarter load = %g; want 0.25", rho)
	}
	if f := q.ShedFraction(0.5*knee, lat, 2); f != 0 {
		t.Errorf("shed fraction below the knee = %g; want 0", f)
	}
	// At 2x overload half the offered stream must be shed.
	if f := q.ShedFraction(2*knee, lat, 2); !close20(f, 0.5, 1e-9) {
		t.Errorf("shed fraction at 2x = %g; want 0.5", f)
	}
}

func TestDelayBound(t *testing.T) {
	q, lat := queueingFixture(8)
	if got, want := q.DelayBound(lat, 3), 24*time.Millisecond; got != want {
		t.Errorf("delay bound = %v; want %v (8 quanta of 3 page writes)", got, want)
	}
	// WA below 1 and depth below 1 clamp rather than shrinking the budget
	// to nothing.
	q.Depth = 0
	if got, want := q.DelayBound(lat, 0.5), time.Millisecond; got != want {
		t.Errorf("clamped delay bound = %v; want %v", got, want)
	}
}

// close20 reports whether got is within tol of want (absolute on the ratio).
func close20(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	r := got/want - 1
	if r < 0 {
		r = -r
	}
	return r <= tol
}
