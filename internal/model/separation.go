package model

import (
	"fmt"
	"math"
)

// SeparationParams describes a two-class (hot/cold) update workload over a
// user-data region, in the terms the hot/cold-separation model needs.
type SeparationParams struct {
	// OverProvision is r, the logical-to-physical ratio of the user region.
	OverProvision float64
	// HotPageFraction is the fraction of logical pages in the hot class.
	HotPageFraction float64
	// HotWriteShare is the fraction of application writes that hit the hot
	// class. HotWriteShare == HotPageFraction means no skew.
	HotWriteShare float64
}

// Validate checks the parameters.
func (p SeparationParams) Validate() error {
	switch {
	case p.OverProvision <= 0 || p.OverProvision >= 1:
		return fmt.Errorf("model: over-provision %g out of range (0,1)", p.OverProvision)
	case p.HotPageFraction <= 0 || p.HotPageFraction >= 1:
		return fmt.Errorf("model: hot page fraction %g out of range (0,1)", p.HotPageFraction)
	case p.HotWriteShare <= 0 || p.HotWriteShare >= 1:
		return fmt.Errorf("model: hot write share %g out of range (0,1)", p.HotWriteShare)
	}
	return nil
}

// The hot/cold separation model predicts the user-data write-amplification
// of a single mixed write frontier versus per-temperature frontiers, under
// the classic rotation approximation (Desnoyers-style mean-field analysis):
//
//   - The frontier writes blocks in sequence and reclaims them one full
//     rotation of the region later, so a page written now is examined for
//     migration after T = P/WA application writes (P physical pages, WA
//     frontier pages written per application write).
//   - A class-c page is overwritten as a Poisson process with rate
//     λ_c = share_c / pages_c per application write, so it is still valid at
//     reclaim with probability exp(-λ_c·T) and is then migrated, re-entering
//     the frontier.
//
// Balancing the per-class flows (fresh writes plus re-circulated migrations)
// against reclaim gives the fixed point solved by mixedWA below:
//
//	WA = Σ_c w_c / (1 - exp(-λ_c · P/WA))
//
// Mixing is what the model charges for: cold pages ride the hot pages'
// short rotation, survive it almost surely, and are re-copied every lap.
// Separated frontiers give each class its own region and therefore its own
// rotation period; the optimal static split of the physical space (found
// numerically) is the model's stand-in for the self-balancing split a greedy
// victim selector converges to. The model covers user data only — the
// translation and page-validity components of measured write-amplification
// ride on top — and its absolute figures lean on the rotation approximation,
// so experiments compare its *trends* (single versus separated on the same
// workload), not its absolute values.

// classWA is the single-class fixed point: WA = 1/(1 - exp(-1/(r·WA))),
// the mixedWA formula with one class of over-provision ratio r.
func classWA(r float64) float64 {
	return mixedWA([]float64{1}, []float64{1 / r})
}

// mixedWA solves WA = Σ_c w_c/(1 - exp(-λ_c·T)), T = P/WA, by fixed-point
// iteration. shares are the per-class write shares (summing to 1) and
// lambdaP the per-class overwrite rates scaled by the physical size of the
// region (λ_c·P), which is how the callers' ratios naturally arrive.
func mixedWA(shares, lambdaP []float64) float64 {
	wa := 1.0
	for iter := 0; iter < 5000; iter++ {
		next := 0.0
		for c := range shares {
			x := lambdaP[c] / wa // λ_c · T
			d := 1 - math.Exp(-x)
			if d < 1e-12 {
				d = 1e-12
			}
			next += shares[c] / d
		}
		// next-wa is the true fixed-point residual; damp the step because
		// the raw iteration oscillates near r -> 1.
		if math.Abs(next-wa) < 1e-9 {
			return next
		}
		wa = (wa + next) / 2
	}
	return wa
}

// SingleFrontierWA predicts the user write-amplification of one mixed write
// frontier serving both classes.
func SingleFrontierWA(p SeparationParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	r := p.OverProvision
	// Normalize the region to P = 1 physical page; N = r logical pages.
	lambdaHot := p.HotWriteShare / (p.HotPageFraction * r)
	lambdaCold := (1 - p.HotWriteShare) / ((1 - p.HotPageFraction) * r)
	return mixedWA(
		[]float64{p.HotWriteShare, 1 - p.HotWriteShare},
		[]float64{lambdaHot, lambdaCold},
	), nil
}

// SeparatedFrontierWA predicts the user write-amplification of
// per-temperature write frontiers: each class runs in its own region and the
// physical space is split between the regions to minimize the write-share
// weighted total, which is the split a global greedy victim selector
// converges toward.
func SeparatedFrontierWA(p SeparationParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	r := p.OverProvision
	nHot := p.HotPageFraction * r // logical pages per physical page of the whole region
	nCold := (1 - p.HotPageFraction) * r
	best := math.Inf(1)
	const steps = 400
	for i := 1; i < steps; i++ {
		pHot := nHot + (1-r)*float64(i)/steps // hot region: its pages plus a share of the OP
		pCold := 1 - pHot
		if pCold <= nCold {
			continue
		}
		wa := p.HotWriteShare*classWA(nHot/pHot) + (1-p.HotWriteShare)*classWA(nCold/pCold)
		if wa < best {
			best = wa
		}
	}
	return best, nil
}

// SeparationWAGain predicts the multiplicative write-amplification reduction
// of hot/cold separation: SingleFrontierWA / SeparatedFrontierWA. It exceeds
// 1 exactly when the workload is skewed (HotWriteShare > HotPageFraction)
// and approaches 1 as the skew vanishes.
func SeparationWAGain(p SeparationParams) (float64, error) {
	single, err := SingleFrontierWA(p)
	if err != nil {
		return 0, err
	}
	sep, err := SeparatedFrontierWA(p)
	if err != nil {
		return 0, err
	}
	if sep <= 0 {
		return 0, fmt.Errorf("model: separated WA %g must be positive", sep)
	}
	return single / sep, nil
}
