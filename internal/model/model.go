package model

import (
	"fmt"

	"geckoftl/internal/flash"
	"geckoftl/internal/gecko"
)

// FTLKind identifies one of the five FTLs the paper compares.
type FTLKind int

const (
	// GeckoFTL is the paper's contribution.
	GeckoFTL FTLKind = iota
	// DFTL keeps the PVB in RAM and relies on a battery.
	DFTL
	// LazyFTL keeps the PVB in RAM and bounds dirty cached entries.
	LazyFTL
	// MuFTL stores the PVB in flash and relies on a battery.
	MuFTL
	// IBFTL logs invalidated addresses in flash with per-block chains.
	IBFTL
)

var kindNames = [...]string{
	GeckoFTL: "GeckoFTL",
	DFTL:     "DFTL",
	LazyFTL:  "LazyFTL",
	MuFTL:    "uFTL",
	IBFTL:    "IB-FTL",
}

// String names the FTL.
func (k FTLKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("ftl(%d)", int(k))
}

// Kinds returns all modeled FTLs in the order the paper presents them.
func Kinds() []FTLKind { return []FTLKind{DFTL, LazyFTL, MuFTL, IBFTL, GeckoFTL} }

// Parameters describes a device and FTL configuration in the paper's terms
// (Figure 2).
type Parameters struct {
	// Blocks is K.
	Blocks int64
	// PagesPerBlock is B.
	PagesPerBlock int64
	// PageSize is P in bytes.
	PageSize int64
	// OverProvision is R, the logical-to-physical capacity ratio.
	OverProvision float64
	// CacheEntries is C, the LRU cache capacity in mapping entries.
	CacheEntries int64
	// BytesPerCacheEntry is the RAM cost of one cached entry (8 in the
	// paper's evaluation).
	BytesPerCacheEntry int64
	// DirtyFraction is the fraction of C that LazyFTL and IB-FTL allow to
	// be dirty (0.1 in the evaluation).
	DirtyFraction float64
	// Latency is the device cost model used to convert IO counts into
	// recovery time.
	Latency flash.Latency
	// GeckoSizeRatio is Logarithmic Gecko's T.
	GeckoSizeRatio int
}

// Default returns the paper's default configuration (Section 5): a 2 TB
// device with 4 KB pages, 128 pages per block, R = 0.7, a 4 MB LRU cache at
// 8 bytes per entry, and the Grupp et al. latency numbers.
func Default() Parameters {
	return Parameters{
		Blocks:             1 << 22,
		PagesPerBlock:      1 << 7,
		PageSize:           1 << 12,
		OverProvision:      0.7,
		CacheEntries:       1 << 19,
		BytesPerCacheEntry: 8,
		DirtyFraction:      0.1,
		Latency:            flash.DefaultLatency(),
		GeckoSizeRatio:     gecko.DefaultSizeRatio,
	}
}

// WithCapacity returns a copy of p scaled to the given physical capacity in
// bytes, keeping the page size, block size and ratios fixed. Figure 1 sweeps
// capacity this way.
func (p Parameters) WithCapacity(bytes int64) Parameters {
	out := p
	out.Blocks = bytes / (p.PagesPerBlock * p.PageSize)
	return out
}

// Validate checks the parameters.
func (p Parameters) Validate() error {
	switch {
	case p.Blocks <= 0 || p.PagesPerBlock <= 0 || p.PageSize <= 0:
		return fmt.Errorf("model: geometry %dx%dx%d must be positive", p.Blocks, p.PagesPerBlock, p.PageSize)
	case p.OverProvision <= 0 || p.OverProvision >= 1:
		return fmt.Errorf("model: over-provision %f out of range (0,1)", p.OverProvision)
	case p.CacheEntries <= 0 || p.BytesPerCacheEntry <= 0:
		return fmt.Errorf("model: cache %d entries x %d bytes must be positive", p.CacheEntries, p.BytesPerCacheEntry)
	case p.DirtyFraction < 0 || p.DirtyFraction > 1:
		return fmt.Errorf("model: dirty fraction %f out of range [0,1]", p.DirtyFraction)
	case p.GeckoSizeRatio < 2:
		return fmt.Errorf("model: gecko size ratio %d must be at least 2", p.GeckoSizeRatio)
	}
	return nil
}

// PhysicalPages returns K*B.
func (p Parameters) PhysicalPages() int64 { return p.Blocks * p.PagesPerBlock }

// LogicalPages returns R*K*B.
func (p Parameters) LogicalPages() int64 {
	return int64(p.OverProvision * float64(p.PhysicalPages()))
}

// PhysicalBytes returns the device capacity in bytes.
func (p Parameters) PhysicalBytes() int64 { return p.PhysicalPages() * p.PageSize }

// TranslationTableBytes returns TT = 4*K*B*R, the size of the translation
// table in flash (Section 2).
func (p Parameters) TranslationTableBytes() int64 { return 4 * p.LogicalPages() }

// TranslationPages returns TT/P, the number of translation pages.
func (p Parameters) TranslationPages() int64 {
	return (p.TranslationTableBytes() + p.PageSize - 1) / p.PageSize
}

// GMDBytes returns the size of the Global Mapping Directory: 4 bytes per
// translation page (Section 2 gives (4*TT)/P).
func (p Parameters) GMDBytes() int64 { return 4 * p.TranslationPages() }

// PVBBytes returns B*K/8, the size of the Page Validity Bitmap.
func (p Parameters) PVBBytes() int64 { return p.PhysicalPages() / 8 }

// BVCBytes returns 2*K, the size of the Blocks Validity Counter
// (Appendix B: an I2 integer per block).
func (p Parameters) BVCBytes() int64 { return 2 * p.Blocks }

// CacheBytes returns the RAM consumed by the LRU cache.
func (p Parameters) CacheBytes() int64 { return p.CacheEntries * p.BytesPerCacheEntry }

// GeckoConfig returns the Logarithmic Gecko configuration implied by the
// parameters.
func (p Parameters) GeckoConfig() gecko.Config {
	cfg := gecko.DefaultConfig(int(p.Blocks), int(p.PagesPerBlock), int(p.PageSize))
	cfg.SizeRatio = p.GeckoSizeRatio
	return cfg
}

// GeckoRunDirectoryBytes returns the Appendix B estimate of Logarithmic
// Gecko's run directories: 8 bytes for each of the at most 2*K*S/V Gecko
// pages.
func (p Parameters) GeckoRunDirectoryBytes() int64 {
	cfg := p.GeckoConfig()
	pages := 2 * cfg.MaxEntries() / int64(cfg.EntriesPerPage())
	return 8 * pages
}

// GeckoBufferBytes returns the RAM consumed by Logarithmic Gecko's buffers:
// one flash page for the insert buffer (the multi-way merge variant would
// need 2+L pages; the default two-way merge needs 2).
func (p Parameters) GeckoBufferBytes() int64 { return 2 * p.PageSize }

// PVLLogBytes returns the flash size of the IB-FTL page validity log at its
// Appendix E bound of twice the over-provisioned space, in entries of 22
// bytes (block ID, offset, timestamp, chain pointer).
func (p Parameters) PVLLogEntries() int64 {
	d := p.PhysicalPages() - p.LogicalPages()
	return 2 * d
}

// PVLHeadBytes returns the RAM consumed by IB-FTL's per-block chain heads and
// erase timestamps: a 4-byte log pointer plus the 4-byte erase timestamp the
// Appendix E cleaning mechanism adds, per block.
func (p Parameters) PVLHeadBytes() int64 { return 8 * p.Blocks }
