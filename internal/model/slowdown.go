package model

// SlowdownFactor evaluates the mixed-workload slowdown expression of
// Section 5 ("Metrics"): given the read-amplification RA caused by fetching
// mapping entries from translation pages, the ratio RW of application reads
// to application writes, the overall write-amplification WA, and the
// write/read latency ratio delta, it returns the factor by which application
// read throughput slows down relative to a device that performed no internal
// IO at all:
//
//	slowdown = 1 / (RA*RW + WA*delta)
//
// The value is a fraction in (0, 1]; higher is better. It lets the write-only
// experimental results be generalized to mixed workloads without re-running
// the simulations.
func SlowdownFactor(readAmplification, readWriteRatio, writeAmplification, delta float64) float64 {
	if delta <= 0 {
		delta = 1
	}
	denom := readAmplification*readWriteRatio + writeAmplification*delta
	if denom <= 0 {
		return 1
	}
	return 1 / denom
}

// MixedWorkloadPoint pairs a read fraction with the resulting slowdown
// factors of two FTLs; the comparison tables in the tuning example use it.
type MixedWorkloadPoint struct {
	ReadWriteRatio float64
	Slowdown       float64
}

// SlowdownSweep evaluates the slowdown factor across a range of
// read-to-write ratios for a fixed RA and WA.
func SlowdownSweep(readAmplification, writeAmplification, delta float64, ratios []float64) []MixedWorkloadPoint {
	out := make([]MixedWorkloadPoint, 0, len(ratios))
	for _, rw := range ratios {
		out = append(out, MixedWorkloadPoint{
			ReadWriteRatio: rw,
			Slowdown:       SlowdownFactor(readAmplification, rw, writeAmplification, delta),
		})
	}
	return out
}
