package model

import (
	"time"

	"geckoftl/internal/flash"
)

// QueueingParams extends ParallelParams with the open-queue view of the
// device: operations arrive at rate lambda from an arrival process rather
// than from callers that wait, and the device serves them at the aggregate
// rate the topology and the FTL's write-amplification allow. The fluid-limit
// predictions below are what sim.QueueSweep validates: delivered throughput
// tracks the offered rate up to the saturation knee and plateaus there, and
// past the knee a depth-bounded admission policy sheds the excess instead of
// letting queueing delay grow without bound.
type QueueingParams struct {
	// Parallel is the device topology.
	Parallel ParallelParams
	// Depth is the per-shard submission queue depth.
	Depth int
}

// SaturationKnee predicts the arrival rate (logical writes per second) at
// which the device saturates: the aggregate service rate of the topology
// under write-amplification wa. Below the knee the queues are stable and
// delivered throughput equals the offered rate; above it the device delivers
// the knee and the rest queues or sheds.
func (q QueueingParams) SaturationKnee(lat flash.Latency, wa float64) float64 {
	return q.Parallel.WriteThroughput(lat, wa)
}

// Utilization returns rho, the offered load as a fraction of the knee.
func (q QueueingParams) Utilization(lambda float64, lat flash.Latency, wa float64) float64 {
	knee := q.SaturationKnee(lat, wa)
	if knee <= 0 {
		return 0
	}
	return lambda / knee
}

// DeliveredThroughput predicts the completed-operation rate at offered rate
// lambda: min(lambda, knee) in the fluid limit. Finite-depth stochastic
// effects round the corner near rho = 1, which is why the sweep's acceptance
// band is ~20% rather than exact.
func (q QueueingParams) DeliveredThroughput(lambda float64, lat flash.Latency, wa float64) float64 {
	knee := q.SaturationKnee(lat, wa)
	if lambda < knee {
		return lambda
	}
	return knee
}

// ShedFraction predicts the fraction of offered operations a shedding
// admission policy drops at offered rate lambda: max(0, 1 - 1/rho). Below
// the knee nothing is shed; at 2x overload half the stream is.
func (q QueueingParams) ShedFraction(lambda float64, lat flash.Latency, wa float64) float64 {
	rho := q.Utilization(lambda, lat, wa)
	if rho <= 1 {
		return 0
	}
	return 1 - 1/rho
}

// DelayBound returns the admission budget: the largest virtual backlog an
// admitted operation can find ahead of it under a depth-bounded policy,
// Depth service quanta of wa page writes each. An admitted operation's
// latency is bounded by this plus its own service time (and any GC stall),
// which is the "p99.9 stays bounded under overload" guarantee the sweep
// pins — in contrast to an unbounded queue, whose delay grows linearly for
// as long as the overload lasts.
func (q QueueingParams) DelayBound(lat flash.Latency, wa float64) time.Duration {
	if wa < 1 {
		wa = 1
	}
	d := q.Depth
	if d < 1 {
		d = 1
	}
	return time.Duration(float64(d) * wa * float64(lat.PageWrite))
}
