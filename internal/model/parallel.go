package model

import (
	"time"

	"geckoftl/internal/flash"
)

// ParallelParams describes a channel/die topology for the parallelism-aware
// latency model. The paper's cost models assume a single serialized flash
// plane; this extension predicts how throughput scales when the same IO
// stream is spread over Channels x DiesPerChannel independently latching
// dies, as the sharded ftl.Engine does.
type ParallelParams struct {
	// Channels is the number of independent channels (0 means 1).
	Channels int
	// DiesPerChannel is the number of dies ganged per channel (0 means 1).
	DiesPerChannel int
	// SerialFraction is the fraction of device time that cannot be
	// overlapped across dies (controller dispatch, shared-bus transfers).
	// Zero models the simulator's idealized controller, which overlaps
	// independent dies perfectly.
	SerialFraction float64
}

// Dies returns the total number of independently operating dies.
func (p ParallelParams) Dies() int {
	c, d := p.Channels, p.DiesPerChannel
	if c <= 0 {
		c = 1
	}
	if d <= 0 {
		d = 1
	}
	return c * d
}

// Speedup returns the Amdahl-style throughput multiple over a single die:
// with serial fraction s and n dies, 1 / (s + (1-s)/n). A perfectly balanced
// workload on an ideal controller (s = 0) scales linearly in the die count.
func (p ParallelParams) Speedup() float64 {
	n := float64(p.Dies())
	s := p.SerialFraction
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return 1 / (s + (1-s)/n)
}

// WriteThroughput predicts sustained logical writes per second for a device
// with the given latency model and topology, running an FTL whose measured
// (or modeled) write-amplification is wa. Each logical write costs wa page
// writes' worth of device time (the paper's WA metric already folds reads in
// at 1/delta weight), spread over the dies:
//
//	throughput = Speedup() / (wa * PageWrite)
//
// The channel-sweep experiments print this next to the simulated throughput;
// the gap between the two is the load imbalance the model does not capture.
func (p ParallelParams) WriteThroughput(lat flash.Latency, wa float64) float64 {
	if wa < 1 {
		wa = 1
	}
	perWrite := wa * lat.PageWrite.Seconds()
	if perWrite <= 0 {
		return 0
	}
	return p.Speedup() / perWrite
}

// ServiceTime predicts the wall-clock needed to serve n logical writes at
// the modeled throughput.
func (p ParallelParams) ServiceTime(lat flash.Latency, wa float64, n int64) time.Duration {
	tp := p.WriteThroughput(lat, wa)
	if tp <= 0 {
		return 0
	}
	return time.Duration(float64(n) / tp * float64(time.Second))
}
