package model

// RAMBreakdown is the integrated-RAM footprint of one FTL, split by data
// structure as in the top part of Figure 13. All values are bytes.
type RAMBreakdown struct {
	FTL FTLKind
	// Cache is the LRU mapping-entry cache.
	Cache int64
	// GMD is the Global Mapping Directory (or the B-tree root bookkeeping
	// for the FTLs that structure the translation table as a B-tree; the
	// paper notes this is slightly smaller, which the model reflects by
	// charging a single page).
	GMD int64
	// PVB is the RAM-resident Page Validity Bitmap (zero for FTLs that
	// store page-validity metadata in flash).
	PVB int64
	// BVC is the Blocks Validity Counter (zero for FTLs that keep the full
	// PVB in RAM, which subsumes it).
	BVC int64
	// PageValidity is the RAM overhead of the flash-resident page-validity
	// structure: Logarithmic Gecko's run directories and buffers, or
	// IB-FTL's chain heads. Zero for PVB-based FTLs.
	PageValidity int64
	// WearLeveling is the wear-leveling bookkeeping (Appendix D: a few
	// dozen bytes of global statistics for GeckoFTL; per-block statistics
	// for FTLs that keep them in RAM are folded into BVC-like state and
	// charged the same way for all, so this stays small for everyone).
	WearLeveling int64
}

// Total returns the total integrated-RAM requirement.
func (b RAMBreakdown) Total() int64 {
	return b.Cache + b.GMD + b.PVB + b.BVC + b.PageValidity + b.WearLeveling
}

// wearLevelingBytes is the Appendix D figure for GeckoFTL's global
// wear-leveling statistics; the same constant is charged to every FTL since
// the paper treats wear-leveling as orthogonal.
const wearLevelingBytes = 40

// RAM returns the integrated-RAM breakdown of one FTL under the given
// parameters (Figure 13 top; Figure 1 top is LazyFTL's total across
// capacities).
func RAM(kind FTLKind, p Parameters) RAMBreakdown {
	out := RAMBreakdown{
		FTL:          kind,
		Cache:        p.CacheBytes(),
		GMD:          p.GMDBytes(),
		WearLeveling: wearLevelingBytes,
	}
	switch kind {
	case DFTL, LazyFTL:
		// RAM-resident PVB; it subsumes per-block valid counts.
		out.PVB = p.PVBBytes()
	case MuFTL:
		// µ-FTL structures its translation table as a B-tree whose root and
		// hot internal nodes live in RAM; the paper credits it with a
		// slightly smaller directory than a full GMD.
		out.GMD = p.PageSize
		out.BVC = p.BVCBytes()
	case IBFTL:
		out.BVC = p.BVCBytes()
		out.PageValidity = p.PVLHeadBytes()
	case GeckoFTL:
		out.BVC = p.BVCBytes()
		out.PageValidity = p.GeckoRunDirectoryBytes() + p.GeckoBufferBytes()
	}
	return out
}

// RAMAll returns the breakdown for every FTL.
func RAMAll(p Parameters) []RAMBreakdown {
	out := make([]RAMBreakdown, 0, len(Kinds()))
	for _, k := range Kinds() {
		out = append(out, RAM(k, p))
	}
	return out
}

// RAMReductionVsPVB returns the fraction by which an FTL's RAM devoted to
// page-validity metadata is below the RAM-resident PVB of DFTL/LazyFTL. PVB
// accounts for 95% of all RAM-resident metadata (Section 1), so replacing it
// with Logarithmic Gecko's run directories and buffers is the paper's
// headline "95% reduction in space requirements".
func RAMReductionVsPVB(kind FTLKind, p Parameters) float64 {
	base := RAM(DFTL, p).PVB
	own := RAM(kind, p)
	validity := own.PVB + own.PageValidity
	if base <= 0 {
		return 0
	}
	return 1 - float64(validity)/float64(base)
}
