package model

import (
	"testing"
	"time"

	"geckoftl/internal/flash"
)

func TestGCStallStep(t *testing.T) {
	lat := flash.DefaultLatency()
	// At the paper's defaults the erase (2ms) dominates a relocation
	// (3us + 100us + 1ms).
	if got := GCStallStep(lat); got != lat.Erase {
		t.Fatalf("GCStallStep = %v, want erase latency %v", got, lat.Erase)
	}
	// With a cheap erase the relocation dominates.
	lat.Erase = time.Microsecond
	want := lat.SpareRead + lat.PageRead + lat.PageWrite
	if got := GCStallStep(lat); got != want {
		t.Fatalf("GCStallStep = %v, want relocation cost %v", got, want)
	}
}

func TestStallBoundsScale(t *testing.T) {
	lat := flash.DefaultLatency()
	if b1, b4 := IncrementalGCStallBound(lat, 1), IncrementalGCStallBound(lat, 4); b4 != 4*b1 {
		t.Fatalf("incremental bound not linear in the budget: %v vs %v", b1, b4)
	}
	if IncrementalGCStallBound(lat, 0) != IncrementalGCStallBound(lat, 1) {
		t.Fatal("non-positive budget should clamp to one step")
	}
	// The incremental bound at the default budget must undercut the inline
	// per-victim bound for any realistic block size, otherwise the scheduler
	// buys nothing.
	inline := InlineGCStallBound(lat, 32)
	incremental := IncrementalGCStallBound(lat, 4)
	if incremental >= inline {
		t.Fatalf("incremental bound %v not below inline per-victim bound %v", incremental, inline)
	}
}
