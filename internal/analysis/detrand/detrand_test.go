package detrand_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	atest.Run(t, "testdata", detrand.Analyzer, "detrand")
}
