// Fixture for the detrand analyzer: global math/rand draws are banned in
// non-test code; seeded *rand.Rand generators are the only sanctioned source.
package detrand

import (
	"math/rand"
	v2 "math/rand/v2"
)

// BadGlobalIntn draws from the shared unseeded source.
func BadGlobalIntn(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn draws from the shared unseeded source`
}

// BadGlobalShuffle is the fault-plan shape: an unseeded shuffle cannot be
// replayed from a seed.
func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle draws from the shared unseeded source`
}

// BadV2 is the same break through math/rand/v2, which removed Seed entirely.
func BadV2(n int64) int64 {
	return v2.Int64N(n) // want `global math/rand/v2.Int64N draws from the shared unseeded source`
}

// GoodSeeded threads a caller-seeded generator.
func GoodSeeded(r *rand.Rand, n int) int {
	return r.Intn(n)
}

// GoodConstructor builds a seeded generator; constructors are how one is made.
func GoodConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// GoodV2Constructor builds a seeded v2 generator.
func GoodV2Constructor(a, b uint64) *v2.Rand {
	return v2.New(v2.NewPCG(a, b))
}

// GoodWaived documents a deliberate unseeded draw.
func GoodWaived() int {
	//geckolint:ignore detrand jitter only, never replayed
	return rand.Int()
}

// GoodWaivedMultiline regression-tests statement-scoped waivers: gofmt keeps
// the comment above the statement, but the diagnostic lands two lines below,
// on the inner rand.Int argument of the wrapped call. A per-line scanner
// would miss the waiver; the statement-scoped one must not.
func GoodWaivedMultiline(xs []int) int {
	//geckolint:ignore detrand jitter only, never replayed
	return pick(
		xs,
		rand.Int(),
	)
}

func pick(xs []int, i int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[i%len(xs)]
}
