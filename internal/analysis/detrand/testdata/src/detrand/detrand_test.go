// Test files are exempt: tests may use the global source for throwaway
// shuffling that never needs replaying.
package detrand

import "math/rand"

func helperForTests(n int) int {
	return rand.Intn(n)
}
