// Package detrand defines an analyzer banning the global math/rand
// generators in production code.
//
// Everything stochastic in this repo — workload generators, fault plans,
// the endurance sweep — must flow through a seeded *rand.Rand handed in by
// the caller, because determinism is a feature: the same seed must replay
// the same operation stream, fault-hammer schedules must shrink to minimal
// reproducers, and the sweep tests pin exact expected numbers. The global
// math/rand functions draw from a shared, seed-uncontrolled source (and
// math/rand/v2 removed Seed entirely), so one call quietly breaks
// replayability for the whole process.
package detrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `ban global math/rand draws in non-test code; randomness must flow through a seeded *rand.Rand

Calls to the package-level draw functions of math/rand and math/rand/v2
(Intn, Float64, Shuffle, Perm, ...) are flagged outside _test.go files.
Constructors (New, NewSource, NewZipf, NewPCG) are allowed — they are how a
seeded generator is made. Methods on a *rand.Rand are always allowed.`

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "detrand",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// allowed are the package-level functions that construct or compose seeded
// generators rather than drawing from the global one.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if lintutil.IsTestFile(pass, call.Pos()) {
			return
		}
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on a *rand.Rand / rand.Source: seeded, fine
		}
		if allowed[fn.Name()] {
			return
		}
		lintutil.Report(pass, "detrand", call,
			"global %s.%s draws from the shared unseeded source, breaking seed-replayability; thread a seeded *rand.Rand instead",
			path, fn.Name())
	})
	return nil, nil
}
