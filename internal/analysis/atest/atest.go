// Package atest is a minimal analysistest-style harness for the geckolint
// analyzers.
//
// The upstream golang.org/x/tools/go/analysis/analysistest package is not
// part of the subset vendored under third_party/ (it drags in go/packages
// and the txtar loader), so this package reimplements the slice of it the
// suite needs: load a fixture package from testdata/src/<path>, type-check
// it, run an analyzer and its Requires, and compare the diagnostics against
// `// want` comments.
//
// Fixture convention (same as analysistest):
//
//	testdata/src/<importpath>/*.go
//
// where a line expecting diagnostics carries a trailing comment of one or
// more backquoted regular expressions:
//
//	rand.Intn(6) // want `global math/rand`
//
// Each regexp must match a diagnostic reported on that line, and every
// diagnostic must be matched by some regexp. Imports between fixture
// packages resolve inside testdata/src; standard-library imports resolve
// from source; anything else resolves to an empty placeholder package so
// fixtures can import paths that only need to exist as strings (the
// apiboundary fixtures).
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run checks the analyzer against each fixture package path under
// testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatalf("invalid analyzer %s: %v", a.Name, err)
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	ld := &loader{
		fset:     token.NewFileSet(),
		srcRoot:  filepath.Join(testdata, "src"),
		packages: map[string]*fixturePkg{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	pkg, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}

	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	if err := runAnalyzer(a, ld.fset, pkg, results, &diags); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	checkDiagnostics(t, ld.fset, pkg.files, diags)
}

// runAnalyzer runs a (and, first, its Requires transitively), collecting
// diagnostics only for the root analyzer.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, pkg *fixturePkg, results map[*analysis.Analyzer]interface{}, diags *[]analysis.Diagnostic) error {
	if _, done := results[a]; done {
		return nil
	}
	for _, req := range a.Requires {
		if err := runAnalyzer(req, fset, pkg, results, nil); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pkg.files,
		Pkg:        pkg.types,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		ReadFile:   os.ReadFile,
		Report: func(d analysis.Diagnostic) {
			if diags != nil {
				*diags = append(*diags, d)
			}
		},
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return nil
}

// fixturePkg is one loaded and type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture imports: testdata/src first, the standard library
// second, an empty placeholder package last.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	std      types.Importer
	packages map[string]*fixturePkg
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.packages[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:                 importerFunc(ld.importPkg),
		DisableUnusedImportCheck: true,
		Error:                    func(error) {}, // lenient: placeholder imports produce benign errors
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil && tpkg == nil {
		return nil, err
	}
	pkg := &fixturePkg{files: files, types: tpkg, info: info}
	ld.packages[path] = pkg
	return pkg, nil
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	// Fixture-local packages shadow everything else.
	if _, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	if pkg, err := ld.std.Import(path); err == nil {
		return pkg, nil
	}
	// Placeholder: enough for `import _ "..."` fixtures whose path is the
	// only thing under test.
	name := path[strings.LastIndex(path, "/")+1:]
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one backquoted regexp from a want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`")

// checkDiagnostics matches reported diagnostics against want comments.
func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (no backquoted regexp): %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
