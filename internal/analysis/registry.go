// Package analysis assembles geckolint: the repo-specific analyzer suite
// that turns this project's hard-won invariants — deterministic replay,
// honest cancellation, a sealed error taxonomy, copy-safe locking — into
// build breaks. Each analyzer is grounded in a bug class a past PR actually
// shipped; docs/analysis.md catalogues the mapping.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"geckoftl/internal/analysis/apiboundary"
	"geckoftl/internal/analysis/ctxcheck"
	"geckoftl/internal/analysis/detrand"
	"geckoftl/internal/analysis/errwrap"
	"geckoftl/internal/analysis/lockdiscipline"
	"geckoftl/internal/analysis/maporder"
)

// All returns the full geckolint suite in a stable order.
func All() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		apiboundary.Analyzer,
		ctxcheck.Analyzer,
		detrand.Analyzer,
		errwrap.Analyzer,
		lockdiscipline.Analyzer,
		maporder.Analyzer,
	}
}
