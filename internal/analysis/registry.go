// Package analysis assembles geckolint: the repo-specific analyzer suite
// that turns this project's hard-won invariants — deterministic replay,
// honest cancellation, a sealed error taxonomy, copy-safe locking — into
// build breaks. Each analyzer is grounded in a bug class a past PR actually
// shipped; docs/analysis.md catalogues the mapping.
package analysis

import (
	"fmt"

	goanalysis "golang.org/x/tools/go/analysis"

	"geckoftl/internal/analysis/apiboundary"
	"geckoftl/internal/analysis/atomicmix"
	"geckoftl/internal/analysis/ctxcheck"
	"geckoftl/internal/analysis/detrand"
	"geckoftl/internal/analysis/errwrap"
	"geckoftl/internal/analysis/hotalloc"
	"geckoftl/internal/analysis/lockdiscipline"
	"geckoftl/internal/analysis/lockorder"
	"geckoftl/internal/analysis/maporder"
	"geckoftl/internal/analysis/ticketcomplete"
)

// All returns the full geckolint suite in a stable (alphabetical) order.
// It panics on an invalid suite; Assemble is the checked variant.
func All() []*goanalysis.Analyzer {
	all, err := Assemble()
	if err != nil {
		panic(err)
	}
	return all
}

// Assemble builds and validates the suite: analyzer names must be unique
// (go vet keys diagnostics and -flag namespaces by name, so a collision
// silently merges two rules) and listed in alphabetical order, keeping
// diagnostics grouped consistently in CI logs across refactors.
func Assemble() ([]*goanalysis.Analyzer, error) {
	all := []*goanalysis.Analyzer{
		apiboundary.Analyzer,
		atomicmix.Analyzer,
		ctxcheck.Analyzer,
		detrand.Analyzer,
		errwrap.Analyzer,
		hotalloc.Analyzer,
		lockdiscipline.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		ticketcomplete.Analyzer,
	}
	if err := Check(all); err != nil {
		return nil, err
	}
	return all, nil
}

// Check enforces the registry invariants on a candidate suite: unique
// analyzer names and alphabetical order.
func Check(all []*goanalysis.Analyzer) error {
	seen := map[string]bool{}
	for i, a := range all {
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if i > 0 && all[i-1].Name >= a.Name {
			return fmt.Errorf("analysis: registry out of order: %q before %q", all[i-1].Name, a.Name)
		}
	}
	return nil
}
