package analysis_test

import (
	"testing"

	goanalysis "golang.org/x/tools/go/analysis"

	"geckoftl/internal/analysis"
)

// TestSuiteValid checks the suite against the framework's own validator:
// names, docs, and the Requires graph must satisfy the go vet contract.
func TestSuiteValid(t *testing.T) {
	all := analysis.All()
	if len(all) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(all))
	}
	if err := goanalysis.Validate(all); err != nil {
		t.Fatalf("invalid suite: %v", err)
	}
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"ctxcheck", "maporder", "errwrap", "lockdiscipline", "detrand", "apiboundary"} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
}

// TestStableOrder pins the registration order: go vet caches on the tool's
// -V fingerprint plus flags, and a stable order keeps diagnostics grouped
// consistently in CI logs.
func TestStableOrder(t *testing.T) {
	var got []string
	for _, a := range analysis.All() {
		got = append(got, a.Name)
	}
	want := []string{"apiboundary", "ctxcheck", "detrand", "errwrap", "lockdiscipline", "maporder"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("analyzer order = %v, want %v", got, want)
		}
	}
}
