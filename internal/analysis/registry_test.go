package analysis_test

import (
	"strings"
	"testing"

	goanalysis "golang.org/x/tools/go/analysis"

	"geckoftl/internal/analysis"
)

// TestSuiteValid checks the suite against the framework's own validator:
// names, docs, and the Requires graph must satisfy the go vet contract.
func TestSuiteValid(t *testing.T) {
	all := analysis.All()
	if len(all) != 10 {
		t.Fatalf("suite has %d analyzers, want 10", len(all))
	}
	if err := goanalysis.Validate(all); err != nil {
		t.Fatalf("invalid suite: %v", err)
	}
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{
		"ctxcheck", "maporder", "errwrap", "lockdiscipline", "detrand", "apiboundary",
		"atomicmix", "hotalloc", "lockorder", "ticketcomplete",
	} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
}

// TestStableOrder pins the registration order: go vet caches on the tool's
// -V fingerprint plus flags, and a stable order keeps diagnostics grouped
// consistently in CI logs.
func TestStableOrder(t *testing.T) {
	var got []string
	for _, a := range analysis.All() {
		got = append(got, a.Name)
	}
	want := []string{
		"apiboundary", "atomicmix", "ctxcheck", "detrand", "errwrap",
		"hotalloc", "lockdiscipline", "lockorder", "maporder", "ticketcomplete",
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("analyzer order = %v, want %v", got, want)
		}
	}
}

// TestAssembleMatchesAll pins that the panicking accessor and the checked
// constructor return the same suite.
func TestAssembleMatchesAll(t *testing.T) {
	checked, err := analysis.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	all := analysis.All()
	if len(checked) != len(all) {
		t.Fatalf("Assemble returned %d analyzers, All returned %d", len(checked), len(all))
	}
	for i := range all {
		if checked[i] != all[i] {
			t.Errorf("analyzer %d differs: %q vs %q", i, checked[i].Name, all[i].Name)
		}
	}
}

// TestCheckRejectsDuplicates covers the invariant go vet cannot enforce for
// us: two analyzers sharing a name would silently merge their flag
// namespaces and diagnostic attribution.
func TestCheckRejectsDuplicates(t *testing.T) {
	a := &goanalysis.Analyzer{Name: "aaa", Doc: "x", Run: nil}
	b := &goanalysis.Analyzer{Name: "aaa", Doc: "y", Run: nil}
	err := analysis.Check([]*goanalysis.Analyzer{a, b})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Check(dup) = %v, want duplicate-name error", err)
	}
}

// TestCheckRejectsDisorder pins the alphabetical requirement — the property
// TestStableOrder relies on, enforced at assembly time rather than by a
// test that must be hand-updated.
func TestCheckRejectsDisorder(t *testing.T) {
	a := &goanalysis.Analyzer{Name: "bbb", Doc: "x", Run: nil}
	b := &goanalysis.Analyzer{Name: "aaa", Doc: "y", Run: nil}
	err := analysis.Check([]*goanalysis.Analyzer{a, b})
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("Check(disorder) = %v, want out-of-order error", err)
	}
}
