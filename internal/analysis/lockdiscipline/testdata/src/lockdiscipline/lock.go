// Fixture for the lockdiscipline analyzer: copied locks, self-locking
// ...Locked methods, and unpaired Lock calls.
package lockdiscipline

import "sync"

type shard struct {
	mu    sync.Mutex
	pages int
}

// BadValueReceiver copies the shard (and its mutex) on every call.
func BadValueReceiver(s shard) int { // want `parameter of BadValueReceiver passes lockdiscipline.shard by value, copying its sync.Mutex`
	return s.pages
}

type table struct {
	rw   sync.RWMutex
	rows map[int]int
}

func (t *table) countLocked() int { return len(t.rows) }

// BadSelfLock promises the caller holds the lock (the Locked suffix) and
// then takes it again: Go mutexes are not reentrant.
func (t *table) sizeLocked() int {
	t.rw.Lock() // want `sizeLocked is documented as called-with-lock-held \(the Locked suffix\) but Locks its own receiver's mutex`
	defer t.rw.Unlock()
	return len(t.rows)
}

// BadForgottenUnlock locks and returns without any unlock in the function.
func (t *table) BadForgottenUnlock() int {
	t.rw.Lock() // want `t\.rw\.Lock\(\) has no matching t\.rw\.Unlock\(\) in this function`
	return len(t.rows)
}

// BadRangeCopy copies each shard (and its mutex) into the loop variable.
func BadRangeCopy(shards []shard) int {
	total := 0
	for _, s := range shards { // want `range copies lockdiscipline.shard by value, copying its sync.Mutex`
		total += s.pages
	}
	return total
}

// GoodPointerReceiver locks and unlocks through a pointer.
func (t *table) GoodPointerReceiver() int {
	t.rw.Lock()
	defer t.rw.Unlock()
	return len(t.rows)
}

// GoodRLockPair pairs RLock with a deferred RUnlock.
func (t *table) GoodRLockPair() int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.countLocked()
}

// GoodLockedCaller takes the lock, then calls the Locked helper.
func (t *table) GoodLockedCaller() int {
	t.rw.Lock()
	defer t.rw.Unlock()
	return t.countLocked()
}

// GoodIndexRange ranges over indices; no copy.
func GoodIndexRange(shards []shard) int {
	total := 0
	for i := range shards {
		total += shards[i].pages
	}
	return total
}

// GoodWaivedHandoff documents a deliberate lock handoff to the caller.
func (t *table) GoodWaivedHandoff() {
	//geckolint:ignore lockdiscipline caller releases via ReleaseTable
	t.rw.Lock()
}
