package lockdiscipline_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/lockdiscipline"
)

func TestLockdiscipline(t *testing.T) {
	atest.Run(t, "testdata", lockdiscipline.Analyzer, "lockdiscipline")
}
