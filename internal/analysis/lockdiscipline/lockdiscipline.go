// Package lockdiscipline defines an analyzer for the repo's mutex
// conventions, which the sharded engine and the flash device lean on:
//
//   - sync primitives (Mutex, RWMutex, WaitGroup, Once, Cond) must never be
//     copied — a copied lock guards nothing;
//   - a method named ...Locked documents "caller holds the lock"; locking
//     the receiver's own mutex inside one is a self-deadlock (Go mutexes
//     are not reentrant);
//   - a function that calls X.Lock() must also unlock X (directly or via
//     defer). Lock handoffs across functions are rare enough here that they
//     must be annotated with //geckolint:ignore lockdiscipline <reason>.
package lockdiscipline

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `check mutex discipline: no copied locks, no self-locking ...Locked methods, paired Lock/Unlock

Flags sync primitives passed or received by value (a copied mutex guards a
different lock than its original), ...Locked-suffixed methods that lock their
own receiver's mutex (self-deadlock: the suffix promises the caller already
holds it), and functions that lock a mutex on some path without any matching
unlock of the same expression.`

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockdiscipline",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		checkSignatureCopies(pass, fn)
		if fn.Body == nil {
			return
		}
		checkLockedSuffix(pass, fn)
		checkPairing(pass, fn)
	})
	insp.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		checkRangeCopy(pass, n.(*ast.RangeStmt))
	})
	return nil, nil
}

// checkSignatureCopies flags by-value receivers, parameters and results
// whose types contain a sync primitive.
func checkSignatureCopies(pass *analysis.Pass, fn *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, ok := t.Underlying().(*types.Pointer); ok {
				continue
			}
			if prim := lockPrimitive(t, nil); prim != "" {
				lintutil.Report(pass, "lockdiscipline", field,
					"%s of %s passes %s by value, copying its %s; use a pointer",
					what, fn.Name.Name, typeLabel(t), prim)
			}
		}
	}
	check(fn.Recv, "receiver")
	check(fn.Type.Params, "parameter")
	check(fn.Type.Results, "result")
}

// checkRangeCopy flags `for _, x := range xs` where the element type
// contains a sync primitive and is not a pointer: each iteration copies the
// lock into x.
func checkRangeCopy(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	if id, ok := rng.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := pass.TypesInfo.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return
	}
	if prim := lockPrimitive(t, nil); prim != "" {
		lintutil.Report(pass, "lockdiscipline", rng.Value,
			"range copies %s by value, copying its %s; range over indices or pointers",
			typeLabel(t), prim)
	}
}

// checkLockedSuffix flags recv.mu.Lock()/RLock() inside a ...Locked method.
func checkLockedSuffix(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	name := fn.Name.Name
	if len(name) <= len("Locked") || name[len(name)-len("Locked"):] != "Locked" {
		return
	}
	recv := pass.TypesInfo.ObjectOf(fn.Recv.List[0].Names[0])
	if recv == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := lockCallKind(pass, call)
		if kind != "Lock" && kind != "RLock" {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr) // lockCallKind guarantees the shape
		if !lintutil.UsesObject(pass.TypesInfo, sel.X, recv) {
			return true
		}
		lintutil.Report(pass, "lockdiscipline", call,
			"%s is documented as called-with-lock-held (the Locked suffix) but %ss its own receiver's mutex: self-deadlock",
			name, kind)
		return true
	})
}

// checkPairing flags Lock/RLock calls in a function with no matching
// Unlock/RUnlock of the same expression anywhere in the function (deferred
// or direct). This is a per-function heuristic, not a path-sensitive proof:
// it catches the forgotten-unlock shape without chasing interprocedural
// handoffs.
func checkPairing(pass *analysis.Pass, fn *ast.FuncDecl) {
	locks := map[string]*ast.CallExpr{}  // expr text -> first Lock call
	unlocks := map[string]bool{}         // expr text -> has Unlock
	rlocks := map[string]*ast.CallExpr{} // expr text -> first RLock call
	runlocks := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := lockCallKind(pass, call)
		if kind == "" {
			return true
		}
		key := exprText(pass.Fset, call.Fun.(*ast.SelectorExpr).X)
		switch kind {
		case "Lock":
			if locks[key] == nil {
				locks[key] = call
			}
		case "Unlock":
			unlocks[key] = true
		case "RLock":
			if rlocks[key] == nil {
				rlocks[key] = call
			}
		case "RUnlock":
			runlocks[key] = true
		}
		return true
	})
	for key, call := range locks {
		if !unlocks[key] {
			lintutil.Report(pass, "lockdiscipline", call,
				"%s.Lock() has no matching %s.Unlock() in this function; unlock on every path (defer), or annotate a deliberate handoff",
				key, key)
		}
	}
	for key, call := range rlocks {
		if !runlocks[key] {
			lintutil.Report(pass, "lockdiscipline", call,
				"%s.RLock() has no matching %s.RUnlock() in this function; unlock on every path (defer), or annotate a deliberate handoff",
				key, key)
		}
	}
}

// lockCallKind classifies a call as Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, or "" otherwise.
func lockCallKind(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return fn.Name()
	}
	return ""
}

// lockPrimitive returns the name of the first sync primitive found inside t
// (struct fields included, recursively), or "".
func lockPrimitive(t types.Type, seen map[types.Type]bool) string {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if prim := lockPrimitive(st.Field(i).Type(), seen); prim != "" {
			return prim
		}
	}
	return ""
}

func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func exprText(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, expr)
	return buf.String()
}
