// Package ticketcomplete defines an analyzer that verifies every
// queue.Ticket created in a function is completed or handed off on all
// return paths.
//
// A Ticket is a future: the submitter blocks on Done/Wait until the worker
// closes the done channel. A ticket that is created and then dropped on an
// early-return path leaves that submitter blocked forever — the leak shape
// PR 9's drain hammer only finds probabilistically, because it needs the
// shedding/cancellation path to actually be taken under the race detector.
// This analyzer finds it structurally.
//
// A "ticket type" is any named struct type called Ticket with a field of
// type chan struct{} (the done channel). For each function, the analyzer
// tracks every ticket-typed composite literal bound to a local variable and
// walks the function's control flow path-sensitively. On every path from
// creation to a return statement (or to the end of the function body), one
// of the following must happen before the return:
//
//   - the ticket is completed: its channel field is closed, or one of its
//     fields is assigned (the worker-side finish shape);
//   - the ticket is handed off: passed to a function call, stored into a
//     struct, map, slice or channel, captured by a function literal,
//     aliased, or returned. From that point the receiving code owns
//     completion, and intraprocedural tracking honestly ends.
//
// Branches are merged pessimistically (a ticket must be dealt with on every
// branch), loop bodies optimistically (dealing with it inside the loop
// counts), and break/continue/goto paths are left to the returns they reach.
package ticketcomplete

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `check that every queue.Ticket created in a function is completed or handed off on all return paths

A created ticket someone may wait on must, on every path to every return,
either be completed (done channel closed, outcome field assigned) or handed
off (passed to a call, stored, sent, captured, or returned). A path that
drops it leaves the waiter blocked forever.`

// Analyzer is the ticketcomplete analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "ticketcomplete",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		w := &walker{pass: pass, leaks: map[types.Object]token.Pos{}}
		live := map[types.Object]token.Pos{}
		terminated := w.stmts(body.List, live)
		if !terminated {
			w.leak(live)
		}
		w.report()
	})
	return nil, nil
}

// isTicketType reports whether t (pointers dereferenced) is a named struct
// type called Ticket carrying a chan struct{} field.
func isTicketType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Ticket" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if ch, ok := st.Field(i).Type().Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}

// walker carries the per-function analysis state.
type walker struct {
	pass  *analysis.Pass
	leaks map[types.Object]token.Pos // ticket var -> creation site, first leak only
}

// leak records every still-live ticket as leaked at its creation site.
func (w *walker) leak(live map[types.Object]token.Pos) {
	for obj, pos := range live {
		if _, dup := w.leaks[obj]; !dup {
			w.leaks[obj] = pos
		}
	}
}

// report files the collected leaks in deterministic position order.
func (w *walker) report() {
	type finding struct {
		obj types.Object
		pos token.Pos
	}
	fs := make([]finding, 0, len(w.leaks))
	for obj, pos := range w.leaks {
		fs = append(fs, finding{obj, pos})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].pos < fs[j].pos })
	for _, f := range fs {
		lintutil.Report(w.pass, "ticketcomplete", posRange(f.pos),
			"ticket %s is neither completed (close/field assignment) nor handed off on every return path: a waiter on it blocks forever",
			f.obj.Name())
	}
}

// stmts walks a statement list, mutating live, and reports tickets still
// live at each return. The returned flag says whether every path through the
// list terminates (return, panic, or branch away) before reaching its end.
func (w *walker) stmts(list []ast.Stmt, live map[types.Object]token.Pos) bool {
	for _, s := range list {
		if w.stmt(s, live) {
			return true
		}
	}
	return false
}

// stmt walks one statement; the return value is "this path terminates here".
func (w *walker) stmt(s ast.Stmt, live map[types.Object]token.Pos) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		w.handleIn(st, live)
		w.leak(live)
		return true
	case *ast.BranchStmt:
		// break/continue/goto: the path leaves this region. Conservatively
		// stop tracking rather than inventing leaks at constructs we do not
		// model.
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isPanic(w.pass.TypesInfo, call) {
			w.handleIn(st, live)
			return true
		}
		w.handleIn(st, live)
	case *ast.AssignStmt:
		w.assign(st, live)
	case *ast.DeclStmt:
		w.decl(st, live)
	case *ast.IfStmt:
		w.handleIn(st.Init, live)
		w.handleIn(st.Cond, live)
		thenLive := copyLive(live)
		thenTerm := w.stmts(st.Body.List, thenLive)
		elseLive := copyLive(live)
		elseTerm := false
		if st.Else != nil {
			elseTerm = w.stmt(st.Else, elseLive)
		}
		merge(live, thenLive, thenTerm, elseLive, elseTerm)
		return thenTerm && elseTerm && st.Else != nil
	case *ast.BlockStmt:
		return w.stmts(st.List, live)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, live)
	case *ast.ForStmt:
		w.handleIn(st.Init, live)
		w.handleIn(st.Cond, live)
		w.handleIn(st.Post, live)
		w.stmts(st.Body.List, live) // optimistic: one pass, handling inside counts
	case *ast.RangeStmt:
		w.handleIn(st.X, live)
		w.stmts(st.Body.List, live)
	case *ast.SwitchStmt:
		w.handleIn(st.Init, live)
		w.handleIn(st.Tag, live)
		w.clauses(st.Body, live, hasDefault(st.Body))
	case *ast.TypeSwitchStmt:
		w.handleIn(st.Init, live)
		w.handleIn(st.Assign, live)
		w.clauses(st.Body, live, hasDefault(st.Body))
	case *ast.SelectStmt:
		// A select always executes exactly one of its cases.
		return w.clauses(st.Body, live, true)
	default:
		// SendStmt, GoStmt, DeferStmt, IncDecStmt, EmptyStmt...
		w.handleIn(s, live)
	}
	return false
}

// clauses walks each case/comm clause of body on a copy of live and merges
// the survivors. exhaustive says the clause list covers every path (a
// default case, or a select). It returns whether all paths terminate.
func (w *walker) clauses(body *ast.BlockStmt, live map[types.Object]token.Pos, exhaustive bool) bool {
	allTerm := len(body.List) > 0
	merged := map[types.Object]token.Pos{}
	if !exhaustive {
		for obj, pos := range live {
			merged[obj] = pos
		}
	}
	for _, c := range body.List {
		clauseLive := copyLive(live)
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.handleInExpr(e, clauseLive)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				w.handleIn(cc.Comm, clauseLive)
			}
			stmts = cc.Body
		}
		if w.stmts(stmts, clauseLive) {
			continue
		}
		allTerm = false
		for obj, pos := range clauseLive {
			merged[obj] = pos
		}
	}
	clearAndCopy(live, merged)
	return exhaustive && allTerm
}

// assign processes creations (ticket composite literal bound to a local
// variable) and handling events in an assignment.
func (w *walker) assign(st *ast.AssignStmt, live map[types.Object]token.Pos) {
	// A single-value assignment of a fresh ticket literal to a plain local
	// identifier starts tracking. Everything else is a handling event for
	// any tickets it mentions.
	if len(st.Lhs) == len(st.Rhs) {
		for i, rhs := range st.Rhs {
			if !isTicketLiteral(w.pass.TypesInfo, rhs) {
				continue
			}
			id, ok := st.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := w.pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			// The literal's own element expressions may mention other
			// tickets (nesting hands them off); scan them first.
			w.handleInExpr(rhs, live)
			live[obj] = rhs.Pos()
		}
	}
	for i, rhs := range st.Rhs {
		if len(st.Lhs) == len(st.Rhs) && isTicketLiteral(w.pass.TypesInfo, rhs) {
			if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				continue // the creation handled above
			}
		}
		w.handleInExpr(rhs, live)
	}
	for _, lhs := range st.Lhs {
		// Writing a ticket's field (tk.err = ...) completes it; writing
		// through any other selector/index may store into it — scan the
		// whole lvalue.
		w.handleInExpr(lhs, live)
	}
}

// decl processes var declarations inside a function body.
func (w *walker) decl(st *ast.DeclStmt, live map[types.Object]token.Pos) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			if isTicketLiteral(w.pass.TypesInfo, v) && i < len(vs.Names) {
				if obj := w.pass.TypesInfo.ObjectOf(vs.Names[i]); obj != nil {
					w.handleInExpr(v, live)
					live[obj] = v.Pos()
					continue
				}
			}
			w.handleInExpr(v, live)
		}
	}
}

// handleIn scans a statement (or nil) for handling events and removes the
// handled tickets from live.
func (w *walker) handleIn(n ast.Node, live map[types.Object]token.Pos) {
	if n == nil || len(live) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			w.callEvent(e, live)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				w.mentions(el, live)
			}
		case *ast.SendStmt:
			w.mentions(e.Value, live)
		case *ast.AssignStmt:
			for _, r := range e.Rhs {
				w.mentions(r, live)
			}
			for _, l := range e.Lhs {
				w.fieldWrite(l, live)
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				w.mentions(r, live)
			}
		case *ast.FuncLit:
			w.mentions(e.Body, live)
			return false
		}
		return true
	})
}

// handleInExpr is handleIn for expressions.
func (w *walker) handleInExpr(e ast.Expr, live map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	w.handleIn(e, live)
}

// callEvent processes one call: close(tk.done) completes the named ticket;
// a ticket passed in an argument is handed off.
func (w *walker) callEvent(call *ast.CallExpr, live map[types.Object]token.Pos) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if b, ok := w.pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if obj := lintutil.ObjectOf(w.pass.TypesInfo, sel.X); obj != nil {
					delete(live, obj)
					return
				}
			}
		}
	}
	for _, arg := range call.Args {
		w.mentions(arg, live)
	}
}

// fieldWrite treats an assignment through a ticket selector (tk.err = ...)
// as completing the ticket, and any other non-identifier lvalue mentioning
// the ticket (*p = ..., arr[tk.idx] = ...) as a handoff. A plain identifier
// lvalue overwrites the variable and is no event at all — in particular the
// fresh creation's own left-hand side must not count as handling.
func (w *walker) fieldWrite(lhs ast.Expr, live map[types.Object]token.Pos) {
	lhs = ast.Unparen(lhs)
	if _, ok := lhs.(*ast.Ident); ok {
		return
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if obj := lintutil.ObjectOf(w.pass.TypesInfo, sel.X); obj != nil {
			delete(live, obj)
			return
		}
	}
	w.mentions(lhs, live)
}

// mentions removes from live every ticket referenced anywhere under n: the
// reference escapes this function's bookkeeping (argument, store, capture,
// alias), so the receiver owns completion now.
func (w *walker) mentions(n ast.Node, live map[types.Object]token.Pos) {
	if n == nil || len(live) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil {
				delete(live, obj)
			}
		}
		return true
	})
}

// isTicketLiteral reports whether e is Ticket{...} or &Ticket{...}.
func isTicketLiteral(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	t := info.TypeOf(cl)
	return t != nil && isTicketType(t)
}

// hasDefault reports whether a switch body contains a default clause —
// without one, the fall-through path skips every case and its handling.
func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "panic"
}

func copyLive(live map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(live))
	for k, v := range live {
		out[k] = v
	}
	return out
}

// merge replaces live with the union of the surviving branch states:
// a ticket is still live after the construct if any non-terminated branch
// left it live.
func merge(live map[types.Object]token.Pos, a map[types.Object]token.Pos, aTerm bool, b map[types.Object]token.Pos, bTerm bool) {
	merged := map[types.Object]token.Pos{}
	if !aTerm {
		for k, v := range a {
			merged[k] = v
		}
	}
	if !bTerm {
		for k, v := range b {
			merged[k] = v
		}
	}
	clearAndCopy(live, merged)
}

func clearAndCopy(dst, src map[types.Object]token.Pos) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// posRange adapts a single position to analysis.Range.
type posRange token.Pos

func (p posRange) Pos() token.Pos { return token.Pos(p) }
func (p posRange) End() token.Pos { return token.Pos(p) }
