package ticketcomplete_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/ticketcomplete"
)

func TestTicketcomplete(t *testing.T) {
	atest.Run(t, "testdata", ticketcomplete.Analyzer, "ticketcomplete")
}
