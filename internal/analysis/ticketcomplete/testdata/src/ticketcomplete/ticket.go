// Fixture for the ticketcomplete analyzer: tickets leaked on early-return
// and missing-branch paths, against the full set of legitimate endings —
// handoff into a struct, close on every path, deferred close, channel send,
// closure capture, and return.
package ticketcomplete

import "errors"

// Ticket mirrors the queue package's future: a done channel a waiter blocks
// on, and an outcome field the finisher sets first.
type Ticket struct {
	done chan struct{}
	err  error
}

type item struct {
	tk *Ticket
}

type Queue struct {
	items []*item
}

func (q *Queue) push(it *item) { q.items = append(q.items, it) }

var errShed = errors.New("shed")

// LeakOnEarlyReturn drops the ticket on the shed path: the caller that got
// nothing can cope, but anyone already waiting on tk blocks forever.
func LeakOnEarlyReturn(q *Queue, shed bool) *Ticket {
	tk := &Ticket{done: make(chan struct{})} // want `ticket tk is neither completed \(close/field assignment\) nor handed off on every return path: a waiter on it blocks forever`
	if shed {
		return nil
	}
	q.push(&item{tk: tk})
	return tk
}

// LeakOnMissingBranch hands the ticket off only when ok: the fall-through
// path reaches the end of the function with tk still live.
func LeakOnMissingBranch(q *Queue, ok bool) {
	tk := &Ticket{done: make(chan struct{})} // want `ticket tk is neither completed \(close/field assignment\) nor handed off on every return path: a waiter on it blocks forever`
	if ok {
		q.push(&item{tk: tk})
	}
}

// LeakInSwitch handles every named case but has no default: an unknown kind
// falls through with the ticket still live.
func LeakInSwitch(q *Queue, kind int) {
	tk := &Ticket{done: make(chan struct{})} // want `ticket tk is neither completed \(close/field assignment\) nor handed off on every return path: a waiter on it blocks forever`
	switch kind {
	case 1:
		q.push(&item{tk: tk})
	case 2:
		close(tk.done)
	}
}

// --- non-firing shapes ---

// SubmitHandoff is the queue.Submit shape: the ticket escapes into the item
// immediately, so the worker owns completion from then on.
func SubmitHandoff(q *Queue) *Ticket {
	tk := &Ticket{done: make(chan struct{})}
	it := &item{tk: tk}
	q.push(it)
	return tk
}

// CompleteAllPaths closes on both the error and the success path, setting
// the outcome field first on the error one — the worker-side finish shape.
func CompleteAllPaths(fail bool) {
	tk := &Ticket{done: make(chan struct{})}
	if fail {
		tk.err = errShed
		close(tk.done)
		return
	}
	close(tk.done)
}

// DeferredClose completes via defer, covering every return path at once.
func DeferredClose(work func()) {
	tk := &Ticket{done: make(chan struct{})}
	defer close(tk.done)
	work()
}

// SendOff hands the ticket to whoever drains the channel.
func SendOff(ch chan *Ticket) {
	tk := &Ticket{done: make(chan struct{})}
	ch <- tk
}

// Captured hands the ticket to a closure; the scheduler that runs it owns
// completion now.
func Captured(schedule func(func())) {
	tk := &Ticket{done: make(chan struct{})}
	schedule(func() { close(tk.done) })
}

// SelectAllArms completes or hands off in every arm of the select; a select
// always runs exactly one arm, so the set is exhaustive.
func SelectAllArms(ch chan *Ticket, cancel chan struct{}) {
	tk := &Ticket{done: make(chan struct{})}
	select {
	case ch <- tk:
	case <-cancel:
		tk.err = errShed
		close(tk.done)
	}
}

// WaivedLeak is LeakOnEarlyReturn with a written waiver: the shed-path
// caller here polls the queue instead of waiting, so the leak is deliberate.
func WaivedLeak(q *Queue, shed bool) *Ticket {
	//geckolint:ignore ticketcomplete fixture: shed-path callers poll rather than wait, dropping the ticket is deliberate
	tk := &Ticket{done: make(chan struct{})}
	if shed {
		return nil
	}
	q.push(&item{tk: tk})
	return tk
}
