// Package ctxcheck defines an analyzer that enforces the engine's batch
// cancellation contract: a function that accepts a context.Context and then
// performs fallible per-item work in a loop must consult the context inside
// that loop.
//
// The rule is the mechanical form of the PR 5 batch-cancellation bug: the
// engine's fan-out drained each shard's sub-batch to completion even after
// the caller's ctx was cancelled, because ctx was checked once at entry and
// never again. Checking at entry only is exactly the pattern this analyzer
// rejects — cancellation must stop a batch at an operation boundary, not
// after the batch.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `check that loops doing fallible per-item work consult their context

A function taking a context.Context that iterates and calls error-returning
operations per item must reference the context inside the loop body — via
ctx.Err(), a select on ctx.Done(), or by passing ctx to the per-item call.
A context checked only at function entry cannot cancel a long batch
mid-flight (the PR 5 Engine batch bug). Loops that only shuffle data (no
error-returning calls) are exempt. Suppress a deliberate drain-to-completion
loop with //geckolint:ignore ctxcheck <reason>.`

// Analyzer is the ctxcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxcheck",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		}
		if body == nil {
			return
		}
		ctxObj := contextParam(pass, ftype)
		if ctxObj == nil {
			return
		}
		checkBody(pass, body, ctxObj)
	})
	return nil, nil
}

// contextParam returns the object of the function's context.Context
// parameter, or nil if the function takes none (or discards it as _).
func contextParam(pass *analysis.Pass, ftype *ast.FuncType) types.Object {
	if ftype == nil || ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// checkBody flags each loop in body that makes fallible calls without
// consulting ctx. Function literals that declare their own context
// parameter are skipped (the inspector analyzes them as their own nodes
// against that parameter); literals that merely capture ctx — the engine's
// per-shard goroutines, where the PR 5 bug actually lived — are traversed
// against the captured object.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctx types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.FuncLit:
			return contextParam(pass, loop.Type) == nil
		case *ast.ForStmt:
			checkLoop(pass, loop, loop.Body, ctx)
		case *ast.RangeStmt:
			checkLoop(pass, loop, loop.Body, ctx)
		}
		return true
	})
}

func checkLoop(pass *analysis.Pass, loop analysis.Range, body *ast.BlockStmt, ctx types.Object) {
	if body == nil {
		return
	}
	if lintutil.UsesObject(pass.TypesInfo, body, ctx) {
		return
	}
	if !hasFallibleCall(pass, body) {
		return
	}
	lintutil.Report(pass, "ctxcheck", loop,
		"loop performs fallible per-item work but never consults %s; check %s.Err() (or pass %s) each iteration so cancellation stops the batch at an operation boundary",
		ctx.Name(), ctx.Name(), ctx.Name())
}

// hasFallibleCall reports whether the loop body contains a call whose result
// (or last tuple element) is an error — the per-item work a cancelled batch
// must not keep doing. Function literals declared inside the body count too:
// work deferred into a closure is still work.
func hasFallibleCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(call)
		switch t := t.(type) {
		case *types.Tuple:
			if t.Len() > 0 && lintutil.IsErrorType(t.At(t.Len()-1).Type()) {
				found = true
			}
		default:
			if lintutil.IsErrorType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
