// Fixture for the ctxcheck analyzer: the async submission engine's
// completion-callback shape. A worker draining a queue resolves each item's
// ticket via a callback; the per-item work is fallible through the callback
// even when the loop body itself returns nothing, so the drain must still
// consult the submission context at every operation boundary — queued items
// whose submitter has gone away get failed fast, not executed.
package ctxcheck

import "context"

type ticket struct{ done chan error }

func (t *ticket) complete(err error) { t.done <- err }

type item struct {
	ctx context.Context
	lpn int64
	tk  *ticket
}

// BadCompletionDrain resolves every queued ticket without ever consulting
// the item's context: cancelled submissions still execute.
func BadCompletionDrain(ctx context.Context, d *device, items []item) {
	_ = ctx.Err()
	for _, it := range items { // want `never consults ctx`
		it.tk.complete(d.op(it.lpn))
	}
}

// GoodCompletionDrain is the engine's worker shape: each dequeued item's
// context is checked first, and a dead submitter's ticket is completed with
// the cancellation error instead of the operation running.
func GoodCompletionDrain(ctx context.Context, d *device, items []item) {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			it.tk.complete(err)
			continue
		}
		it.tk.complete(d.op(it.lpn))
	}
}

// GoodPerItemContext consults each item's own submission context — the
// queue carries a context per submission, and checking that context is
// consulting cancellation state just as checking the worker's own would be.
func GoodPerItemContext(d *device, items []item) {
	for _, it := range items {
		if err := it.ctx.Err(); err != nil {
			it.tk.complete(err)
			continue
		}
		it.tk.complete(d.op(it.lpn))
	}
}
