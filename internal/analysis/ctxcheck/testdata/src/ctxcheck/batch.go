// Fixture for the ctxcheck analyzer. BadBatch reproduces the PR 5 engine
// bug verbatim in miniature: ctx consulted once at entry, then a per-item
// loop that drains to completion no matter what the caller cancelled.
package ctxcheck

import "context"

type device struct{}

func (d *device) op(lpn int64) error                         { return nil }
func (d *device) opCtx(ctx context.Context, lpn int64) error { return ctx.Err() }

// BadBatch checks ctx at entry only: the loop cannot be cancelled.
func BadBatch(ctx context.Context, d *device, lpns []int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, lpn := range lpns { // want `never consults ctx`
		if err := d.op(lpn); err != nil {
			return err
		}
	}
	return nil
}

// BadClassicFor is the same bug with a classic for loop.
func BadClassicFor(ctx context.Context, d *device, n int64) error {
	for i := int64(0); i < n; i++ { // want `never consults ctx`
		if err := d.op(i); err != nil {
			return err
		}
	}
	return nil
}

// BadClosure is the shape the PR 5 bug actually shipped in: the per-shard
// goroutine captures ctx but its drain loop never looks at it. Both loops
// are flagged — the outer one dispatches uncancellable work per bucket, the
// inner one drains uncancellably per item.
func BadClosure(ctx context.Context, d *device, buckets [][]int64) {
	_ = ctx.Err()
	for i := range buckets { // want `never consults ctx`
		go func(bucket []int64) {
			for _, lpn := range bucket { // want `never consults ctx`
				if err := d.op(lpn); err != nil {
					return
				}
			}
		}(buckets[i])
	}
}

// GoodPerItemCheck re-checks ctx at every operation boundary.
func GoodPerItemCheck(ctx context.Context, d *device, lpns []int64) error {
	for _, lpn := range lpns {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := d.op(lpn); err != nil {
			return err
		}
	}
	return nil
}

// GoodPassThrough hands ctx to the per-item operation instead.
func GoodPassThrough(ctx context.Context, d *device, lpns []int64) error {
	for _, lpn := range lpns {
		if err := d.opCtx(ctx, lpn); err != nil {
			return err
		}
	}
	return nil
}

// GoodSelect drains a channel under a select on ctx.Done().
func GoodSelect(ctx context.Context, d *device, lpns <-chan int64) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case lpn, ok := <-lpns:
			if !ok {
				return nil
			}
			if err := d.op(lpn); err != nil {
				return err
			}
		}
	}
}

// GoodShuffleOnly loops without fallible work: building the fan-out buckets
// is not cancellable per-item work.
func GoodShuffleOnly(ctx context.Context, lpns []int64) [][]int64 {
	_ = ctx
	buckets := make([][]int64, 4)
	for _, lpn := range lpns {
		buckets[lpn%4] = append(buckets[lpn%4], lpn)
	}
	return buckets
}

// GoodNoCtx takes no context; nothing to consult.
func GoodNoCtx(d *device, lpns []int64) error {
	for _, lpn := range lpns {
		if err := d.op(lpn); err != nil {
			return err
		}
	}
	return nil
}

// GoodWaived documents a deliberate drain-to-completion loop.
func GoodWaived(ctx context.Context, d *device, lpns []int64) error {
	_ = ctx.Err()
	//geckolint:ignore ctxcheck flush must complete once started
	for _, lpn := range lpns {
		if err := d.op(lpn); err != nil {
			return err
		}
	}
	return nil
}
