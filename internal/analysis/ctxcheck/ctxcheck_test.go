package ctxcheck_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/ctxcheck"
)

func TestCtxcheck(t *testing.T) {
	atest.Run(t, "testdata", ctxcheck.Analyzer, "ctxcheck")
}
