// Package apiboundary defines an analyzer that seals geckoftl/internal:
// only the root geckoftl package (which is the public facade over the
// internals) and the internal packages themselves may import
// geckoftl/internal/...; cmd/ tools, examples/ and any future public
// subpackage must go through the public API.
//
// PR 4 introduced this boundary and enforced it with a grep over cmd/ and
// examples/ in CI; this analyzer is the typed replacement — it sees the
// real import graph, not file text, and runs under go vet everywhere.
package apiboundary

import (
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `restrict geckoftl/internal imports to the root package and internal/ itself

The Go toolchain already stops other modules from importing internal
packages; inside this module, cmd/ and examples/ could still reach in. They
must not: everything outside internal/ exercises the public surface, which
is what keeps the examples honest documentation and the tools portable to a
real device backend.`

// Analyzer is the apiboundary analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "apiboundary",
	Doc:  doc,
	Run:  run,
}

// module is the module path whose internal tree is sealed. A variable so
// the fixture tests can run under a synthetic module name.
var module = "geckoftl"

func run(pass *analysis.Pass) (interface{}, error) {
	internalPrefix := module + "/internal"
	path := pass.Pkg.Path()
	// The in-module test binary variants report paths like
	// "geckoftl_test [geckoftl.test]"; strip the binary qualifier.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	switch {
	case path == module, path == module+"_test":
		return nil, nil // the public facade wraps the internals by design
	case path == internalPrefix, strings.HasPrefix(path, internalPrefix+"/"):
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p != internalPrefix && !strings.HasPrefix(p, internalPrefix+"/") {
				continue
			}
			lintutil.Report(pass, "apiboundary", imp,
				"%s imports %s across the API boundary; packages outside internal/ must use the public %s package",
				path, p, module)
		}
	}
	return nil, nil
}
