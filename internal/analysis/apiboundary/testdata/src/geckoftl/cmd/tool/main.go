// Fixture stand-in for a cmd/ binary: tools live outside the boundary and
// must reach the internals through the public geckoftl package only.
package main

import (
	"geckoftl"
	"geckoftl/internal/ftl" // want `geckoftl/cmd/tool imports geckoftl/internal/ftl across the API boundary`

	//geckolint:ignore apiboundary transitional: migrating to the public API
	_ "geckoftl/internal/flash"
)

func main() {
	_ = geckoftl.Pages
	_ = ftl.Pages
}
