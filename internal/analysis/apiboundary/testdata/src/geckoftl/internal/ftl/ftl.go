// Fixture stand-in for an internal package. Internal packages may import
// each other freely; the boundary only seals them off from the outside.
package ftl

import _ "geckoftl/internal/flash"

// Pages is an arbitrary internal symbol for the other fixtures to use.
const Pages = 256
