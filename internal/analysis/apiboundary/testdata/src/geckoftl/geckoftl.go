// Fixture stand-in for the module root: the public facade is the one
// package outside internal/ allowed to import the internals.
package geckoftl

import "geckoftl/internal/ftl"

// Pages re-exports an internal constant: the facade wrapping by design.
const Pages = ftl.Pages
