package apiboundary_test

import (
	"testing"

	"geckoftl/internal/analysis/apiboundary"
	"geckoftl/internal/analysis/atest"
)

func TestApiboundary(t *testing.T) {
	// cmd/tool violates the boundary; the root facade and internal packages
	// are allowed importers.
	atest.Run(t, "testdata", apiboundary.Analyzer,
		"geckoftl/cmd/tool", "geckoftl", "geckoftl/internal/ftl")
}
