package errwrap_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	// "errwrap" exercises rule 1 (%w verbs); the fixture named after the real
	// module root exercises rule 2 (the sealed public boundary).
	atest.Run(t, "testdata", errwrap.Analyzer, "errwrap", "geckoftl")
}
