// Fixture for errwrap rule 1: fmt.Errorf must format error operands with %w
// so errors.Is/As keep seeing the chain.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// BadVerbV severs the chain: errors.Is(err, errSentinel) is false.
func BadVerbV(err error) error {
	return fmt.Errorf("write failed: %v", err) // want `error formatted with %v loses its chain`
}

// BadVerbS is the same break through %s.
func BadVerbS(err error) error {
	return fmt.Errorf("read failed: %s", err) // want `error formatted with %s loses its chain`
}

// BadSecondOperand: the verb positions are tracked, not just the first.
func BadSecondOperand(block int, err error) error {
	return fmt.Errorf("block %d: %v", block, err) // want `error formatted with %v loses its chain`
}

// GoodWrap keeps the chain.
func GoodWrap(err error) error {
	return fmt.Errorf("write failed: %w", err)
}

// GoodNonError formats plain values; nothing to preserve.
func GoodNonError(block, page int) error {
	return fmt.Errorf("block %d page %d out of range", block, page)
}

// GoodStringized formats the message only; deliberate detachment reads as
// err.Error(), which is a string, not an error.
func GoodStringized(err error) error {
	return fmt.Errorf("context only: %s", err.Error())
}

// GoodWaived documents a deliberate chain cut.
func GoodWaived(err error) error {
	//geckolint:ignore errwrap the cause must not be matchable downstream
	return fmt.Errorf("redacted: %v", err)
}
