// Fixture for errwrap rule 2: this package's path is the real module's root
// ("geckoftl"), so its exported functions form the public API surface and
// must classify errors from geckoftl/internal calls before returning them.
package geckoftl

import (
	"fmt"

	"geckoftl/internal/engine"
)

// BadPassThrough returns the internal error raw: internal sentinels leak
// across the public boundary unclassified.
func BadPassThrough(n int) error {
	return engine.Do(n) // want `Do's error crosses the public API unwrapped`
}

// BadTuplePassThrough leaks the error half of a tuple the same way.
func BadTuplePassThrough(n int) (int, error) {
	return engine.Count(n) // want `Count's error crosses the public API unwrapped`
}

// GoodWrapped classifies through an explicit %w wrap.
func GoodWrapped(n int) error {
	if err := engine.Do(n); err != nil {
		return fmt.Errorf("engine rejected %d: %w", n, err)
	}
	return nil
}

// GoodClassified routes through the package's classification helper.
func GoodClassified(n int) error {
	return wrapErr(engine.Do(n))
}

// unexported helpers are inside the boundary; raw internals are fine here.
func passRaw(n int) error {
	return engine.Do(n)
}

func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("geckoftl: %w", err)
}
