// Fixture stand-in for a geckoftl/internal package whose errors must not
// cross the public boundary raw.
package engine

import "errors"

var errBusy = errors.New("engine: busy")

// Do fails for odd n.
func Do(n int) error {
	if n%2 == 1 {
		return errBusy
	}
	return nil
}

// Count fails for negative n.
func Count(n int) (int, error) {
	if n < 0 {
		return 0, errBusy
	}
	return n, nil
}
