// Package errwrap defines an analyzer that guards the public error
// taxonomy.
//
// Rule 1 applies everywhere: an error value formatted into fmt.Errorf with
// %v or %s instead of %w is severed from errors.Is/As — callers can no
// longer classify it. PR 4 built the geckoftl taxonomy on exactly that
// classification, so a %v-wrapped sentinel is a silent contract break.
//
// Rule 2 applies to the public geckoftl package only: an error produced by
// a geckoftl/internal call must not be returned as-is from an exported
// function. It has to pass through a classification point (wrapErr or a %w
// wrap) so internal sentinels never leak raw across the API boundary.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"unicode/utf8"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `check that errors are wrapped with %w and classified at the API boundary

fmt.Errorf must format error operands with %w, not %v or %s, so errors.Is
and errors.As keep seeing the chain. In the root geckoftl package, exported
functions must not return errors from geckoftl/internal calls unwrapped —
route them through wrapErr (or an explicit %w wrap) to classify them under
the public taxonomy.`

// Analyzer is the errwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// publicPkg is the import path of the package whose exported surface rule 2
// seals. Kept a variable for the fixture tests.
var publicPkg = "geckoftl"

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		checkErrorf(pass, n.(*ast.CallExpr))
	})

	if pass.Pkg.Path() == publicPkg {
		insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
			fn := n.(*ast.FuncDecl)
			if fn.Body == nil || !fn.Name.IsExported() || lintutil.IsTestFile(pass, fn.Pos()) {
				return
			}
			checkBoundary(pass, fn)
		})
	}
	return nil, nil
}

// checkErrorf verifies that every error operand of a fmt.Errorf call with a
// constant format string is matched to a %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format: out of scope
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		t := pass.TypesInfo.TypeOf(args[i])
		if t == nil || !lintutil.IsErrorType(t) {
			continue
		}
		lintutil.Report(pass, "errwrap", args[i],
			"error formatted with %%%c loses its chain for errors.Is/As; use %%w (the PR 4 taxonomy bug class)", verb)
	}
}

// checkBoundary flags return statements in exported root-package functions
// whose error results come straight from a geckoftl/internal call.
func checkBoundary(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := lintutil.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				continue
			}
			if !strings.HasPrefix(callee.Pkg().Path(), publicPkg+"/internal") {
				continue
			}
			if !returnsError(pass, call) {
				continue
			}
			lintutil.Report(pass, "errwrap", res,
				"%s's error crosses the public API unwrapped; classify it under the taxonomy first (wrapErr or fmt.Errorf with %%w)",
				callee.Name())
		}
		return true
	})
}

// returnsError reports whether the call produces an error: a single error
// result or a tuple whose last element is one.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypesInfo.TypeOf(call).(type) {
	case *types.Tuple:
		return t.Len() > 0 && lintutil.IsErrorType(t.At(t.Len()-1).Type())
	default:
		return lintutil.IsErrorType(t)
	}
}

func constantString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the verb letter consuming each successive operand of a
// Printf-style format. It reports !ok for formats using explicit argument
// indexes, which this analyzer does not model.
func parseVerbs(format string) ([]rune, bool) {
	var verbs []rune
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags, width, precision. A '*' consumes an operand of its own.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		r, size := utf8.DecodeRuneInString(format[i:])
		verbs = append(verbs, r)
		i += size
	}
	return verbs, true
}
