// Fixture for the lockorder analyzer: inverted acquisition orders between
// two lock classes, nested same-class acquisitions, and the shapes that
// must stay quiet — consistent orders, sequential (non-nested) sections,
// and goroutine bodies that start with nothing held.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// lockAB establishes the canonical order: A.mu before B.mu.
func lockAB(a *A, b *B) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	return a.n + b.n
}

// lockBA inverts it: B.mu before A.mu. Together with lockAB this deadlocks
// under the right interleaving. The report lands on the second acquisition
// of the later-sorted inversion site.
func lockBA(a *A, b *B) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `A\.mu acquired while holding B\.mu, but B\.mu is acquired while holding A\.mu at .*: inconsistent lock order`
	defer a.mu.Unlock()
	return a.n + b.n
}

type Shard struct {
	mu    sync.Mutex
	pages int
}

// moveBetween locks two instances of the same class with no instance-order
// rule: two goroutines moving in opposite directions deadlock.
func moveBetween(src, dst *Shard) {
	src.mu.Lock()
	defer src.mu.Unlock()
	dst.mu.Lock() // want `Shard\.mu acquired while another Shard\.mu is already held \(acquired at .*\): nested same-class locking deadlocks unless instance order is fixed`
	defer dst.mu.Unlock()
	dst.pages += src.pages
	src.pages = 0
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// lockCD and lockDC invert each other too, but the inversion site carries a
// waiver naming the analyzer, so the pair stays quiet.
func lockCD(c *C, d *D) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	return c.n + d.n
}

func lockDC(c *C, d *D) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	//geckolint:ignore lockorder canonical order is D before C in fixtures; C-before-D in lockCD is the outlier
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n + d.n
}

// --- non-firing shapes ---

// consistent repeats lockAB's order: same direction, no inversion.
func consistent(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// sequential releases A.mu before taking B.mu: the sections never nest, so
// even a reversed twin elsewhere would be fine — no edge is recorded.
func sequential(a *A, b *B) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// spawned hands the second lock to a goroutine: the literal's body runs on
// its own stack with nothing held by this frame, so no B-before-A edge
// appears even though lexically B.mu.Lock is "inside" the A.mu section.
func spawned(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		a.mu.Lock()
		a.n++
		a.mu.Unlock()
	}()
}
