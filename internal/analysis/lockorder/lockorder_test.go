package lockorder_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	atest.Run(t, "testdata", lockorder.Analyzer, "lockorder")
}
