// Package lockorder defines an analyzer that builds a lock acquisition
// graph over a package's mutexes and reports inconsistent acquisition
// orders — the deadlock shape AST-level pairing checks cannot see.
//
// Every mutex expression is mapped to a type-driven lock class: the struct
// field that holds it (qualified by its owning named type, e.g.
// "Engine.powerMu" or "shardQueue.mu") or the package-level variable. Two
// instances of the same field share a class, so the per-shard mutexes of a
// sharded engine form one class. Within each function the analyzer replays
// Lock/RLock/Unlock/RUnlock events in source order, tracking the held set
// (deferred unlocks hold to function end), and records an edge A→B whenever
// B is acquired while A is held. Function literals are separate scopes: a
// goroutine body starts with nothing held.
//
// After the whole package is scanned, two findings are reported:
//
//   - an order inversion: both A→B and B→A edges exist. Whichever order is
//     struck second in a deadlock is hit first in production; the analyzer
//     reports the edge at the lexicographically later class pair and names
//     the opposing site, so one waiver (with the declared canonical order as
//     its reason) settles the pair.
//   - a self-edge: a second acquisition of the same lock class while one
//     instance is already held. With Go's non-reentrant mutexes this is
//     either a self-deadlock (same instance) or an unordered instance pair
//     (two shards locked in arbitrary order), both worth a look.
//
// The replay is intraprocedural and source-ordered — it does not chase
// calls, and a conditional unlock is treated as releasing. Those are the
// same honest approximations lockdiscipline makes; the waiver escape hatch
// covers the deliberate exceptions.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `check lock acquisition order consistency across the package

Builds a lock acquisition graph keyed by type-driven lock classes (struct
field or package-level variable holding the mutex) and reports pairs of
classes acquired in both orders, plus nested acquisitions of the same class.
Either shape is a latent deadlock under the right interleaving.`

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// edge is the first-seen site of an acquisition of to while from was held.
type edge struct {
	pos   token.Pos
	other token.Pos // where from was acquired
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := map[string]map[string]edge{}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		scanScope(pass, fn.Body, g)
	})
	report(pass, g)
	return nil, nil
}

// event is one lock-affecting call, replayed in source order.
type event struct {
	pos    token.Pos
	class  string
	kind   string // Lock, RLock, Unlock, RUnlock
	defer_ bool
}

// scanScope replays the lock events of one function scope and records
// acquisition edges into g. Nested function literals are scanned as fresh
// scopes (their bodies run with nothing held by this frame — if they run at
// all, it is on another goroutine or after a handoff).
func scanScope(pass *analysis.Pass, body ast.Node, g map[string]map[string]edge) {
	var events []event
	var nested []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, lit.Body)
			return false
		}
		deferred := false
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				call, deferred = d.Call, true
			} else {
				return true
			}
		}
		kind := lockCallKind(pass, call)
		if kind == "" {
			return true
		}
		class := classOf(pass.TypesInfo, call.Fun.(*ast.SelectorExpr).X)
		if class == "" {
			return true
		}
		events = append(events, event{pos: call.Pos(), class: class, kind: kind, defer_: deferred})
		return !deferred // a defer's call arguments cannot lock
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]token.Pos{} // class -> acquisition site
	deferredHold := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case "Lock", "RLock":
			if ev.defer_ {
				continue // defer x.Lock() is almost certainly a bug, but not an ordering event
			}
			for from, fromPos := range held {
				addEdge(g, from, ev.class, ev.pos, fromPos)
			}
			if _, already := held[ev.class]; !already {
				held[ev.class] = ev.pos
			}
		case "Unlock", "RUnlock":
			if ev.defer_ {
				deferredHold[ev.class] = true
				continue
			}
			if !deferredHold[ev.class] {
				delete(held, ev.class)
			}
		}
	}
	for _, b := range nested {
		scanScope(pass, b, g)
	}
}

// addEdge records the first occurrence of acquiring to while from is held.
// A self-edge (from == to) is kept too: it is reported directly.
func addEdge(g map[string]map[string]edge, from, to string, pos, fromPos token.Pos) {
	m := g[from]
	if m == nil {
		m = map[string]edge{}
		g[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = edge{pos: pos, other: fromPos}
	}
}

// report walks the completed graph deterministically and files diagnostics
// for self-edges and inverted pairs.
func report(pass *analysis.Pass, g map[string]map[string]edge) {
	froms := make([]string, 0, len(g))
	for from := range g {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(g[from]))
		for to := range g[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			e := g[from][to]
			if from == to {
				lintutil.Report(pass, "lockorder", posRange(e.pos),
					"%s acquired while another %s is already held (acquired at %s): nested same-class locking deadlocks unless instance order is fixed",
					from, from, pass.Fset.Position(e.other))
				continue
			}
			back, inverted := g[to][from]
			if !inverted || from > to {
				continue // report each pair once, at the lexicographically smaller from
			}
			lintutil.Report(pass, "lockorder", posRange(back.pos),
				"%s acquired while holding %s, but %s is acquired while holding %s at %s: inconsistent lock order",
				from, to, to, from, pass.Fset.Position(e.pos))
		}
	}
}

// posRange adapts a single position to analysis.Range.
type posRange token.Pos

func (p posRange) Pos() token.Pos { return token.Pos(p) }
func (p posRange) End() token.Pos { return token.Pos(p) }

// lockCallKind classifies a call as Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, or "" otherwise.
func lockCallKind(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return fn.Name()
	}
	return ""
}

// classOf maps a mutex-valued expression to its lock class: "Type.field" for
// a struct field (however the instance was reached), "pkg.var" for a
// package-level variable, or "" when the expression is not classifiable
// (locals, map values, interface calls).
func classOf(info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if owner := namedOwner(sel.Recv()); owner != "" {
				return owner + "." + sel.Obj().Name()
			}
			return ""
		}
		// pkg.Var through a package selector.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && isPackageLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.IndexExpr:
		// locks[i].Lock() on a slice/array of a named element type.
		t := info.TypeOf(e)
		if t != nil {
			if owner := namedOwner(t); owner != "" {
				return owner + "[i]"
			}
		}
	}
	return ""
}

// namedOwner returns the name of the named type behind t (pointers
// dereferenced), or "" for anonymous types.
func namedOwner(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
