// Fixture for the hotalloc analyzer's static half: certain allocations
// (fmt, errors.New, go statements) inside //geckolint:hotpath functions,
// against clean annotated functions, unannotated functions free to
// allocate, and a written waiver.
package hotalloc

import (
	"errors"
	"fmt"
)

type engine struct {
	pages   uint64
	written uint64
}

//geckolint:hotpath
func (e *engine) badFmt(lpn uint64) error {
	if lpn >= e.pages {
		return fmt.Errorf("page %d out of range", lpn) // want `badFmt is a hot path: fmt\.Errorf boxes its arguments into interfaces and allocates; move formatting to a cold helper`
	}
	e.written++
	return nil
}

//geckolint:hotpath
func (e *engine) badErrorsNew(lpn uint64) error {
	if lpn >= e.pages {
		return errors.New("out of range") // want `badErrorsNew is a hot path: errors\.New allocates; declare the error as a package-level sentinel`
	}
	e.written++
	return nil
}

//geckolint:hotpath
func (e *engine) badSpawn() {
	go func() { // want `badSpawn is a hot path: starting a goroutine allocates; hand work to a pre-spawned worker instead`
		e.written++
	}()
}

// --- non-firing shapes ---

var errOutOfRange = errors.New("out of range")

// goodHot is the shape the firing cases should be rewritten into: sentinel
// errors, no formatting, no spawning.
//
//geckolint:hotpath
func (e *engine) goodHot(lpn uint64) error {
	if lpn >= e.pages {
		return errOutOfRange
	}
	e.written++
	return nil
}

// coldPath is unannotated: it may allocate freely.
func (e *engine) coldPath(lpn uint64) error {
	return fmt.Errorf("page %d out of range of %d", lpn, e.pages)
}

// waivedHot keeps one fmt call under a written waiver: the call sits on a
// path that only runs once at startup.
//
//geckolint:hotpath
func (e *engine) waivedHot(init bool) error {
	if init {
		//geckolint:ignore hotalloc runs once at startup before the hot loop begins
		return fmt.Errorf("init with %d pages", e.pages)
	}
	e.written++
	return nil
}
