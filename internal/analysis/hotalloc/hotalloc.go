// Package hotalloc enforces the //geckolint:hotpath annotation: a function
// so marked must not allocate on the heap.
//
// The enforcement has two halves. The authoritative half is the escape
// analysis gate (cmd/geckolint -hotpath), which rebuilds the module with
// -gcflags=-m, parses the compiler's own escape diagnostics, and fails on
// any "escapes to heap" / "moved to heap" line inside an annotated
// function's span — the ground truth, because only the compiler knows what
// its escape analysis proved. ParseEscapes and FuncsInFile below are that
// gate's building blocks and are unit-tested against canned -m output.
//
// The second half is this analyzer, which runs inside the normal vet pass
// and catches the allocations that are certain before the compiler ever
// runs: calls into fmt (interface args always escape), errors.New and
// fmt.Errorf (a fresh error value is the point), and go statements (a
// goroutine allocates its own stack and outlives the frame). These fire in
// the editor loop, seconds instead of the gate's full rebuild, and their
// diagnostics explain the idiomatic fix: move the formatting into a cold
// helper that the annotated function calls only on the error path.
//
// The analyzer also validates annotation placement — a //geckolint:hotpath
// comment that is not the doc comment of a function declaration silently
// guards nothing, so it is itself a finding.
package hotalloc

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

// Marker is the annotation comment, written as the first line of a function's
// doc comment (or anywhere within it).
const Marker = "//geckolint:hotpath"

const doc = `check //geckolint:hotpath functions for certain allocations

Functions annotated //geckolint:hotpath must stay allocation-free. This
analyzer flags the allocations knowable without the compiler — fmt calls,
errors.New, go statements — and misplaced annotations. The full escape
analysis gate is cmd/geckolint -hotpath.`

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Misplaced annotations: every Marker comment must be (part of) a
	// FuncDecl's doc comment.
	for _, f := range pass.Files {
		docs := map[*ast.CommentGroup]bool{}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			if docs[cg] {
				continue
			}
			for _, c := range cg.List {
				if isMarker(c.Text) {
					lintutil.Report(pass, "hotalloc", c,
						"//geckolint:hotpath must be the doc comment of a function declaration; here it guards nothing")
				}
			}
		}
	}

	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !hasMarker(fn.Doc) {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				lintutil.Report(pass, "hotalloc", e,
					"%s is a hot path: starting a goroutine allocates; hand work to a pre-spawned worker instead", fn.Name.Name)
				return false
			case *ast.CallExpr:
				callee := lintutil.CalleeFunc(pass.TypesInfo, e)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch callee.Pkg().Path() {
				case "fmt":
					lintutil.Report(pass, "hotalloc", e,
						"%s is a hot path: fmt.%s boxes its arguments into interfaces and allocates; move formatting to a cold helper", fn.Name.Name, callee.Name())
				case "errors":
					if callee.Name() == "New" {
						lintutil.Report(pass, "hotalloc", e,
							"%s is a hot path: errors.New allocates; declare the error as a package-level sentinel", fn.Name.Name)
					}
				}
			}
			return true
		})
	})
	return nil, nil
}

func isMarker(text string) bool {
	return text == Marker || strings.HasPrefix(text, Marker+" ")
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isMarker(c.Text) {
			return true
		}
	}
	return false
}

// Func is one annotated function, located by file and line span so compiler
// diagnostics (which carry only positions) can be matched against it.
type Func struct {
	Name      string // receiver-qualified, e.g. "(*Engine).Write"
	File      string // as recorded in the FileSet (relative or absolute)
	StartLine int
	EndLine   int
	Pos       token.Pos // of the declaration, for waiver lookup
}

// FuncsInFile returns the //geckolint:hotpath functions declared in f.
func FuncsInFile(fset *token.FileSet, f *ast.File) []Func {
	var out []Func
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasMarker(fd.Doc) {
			continue
		}
		start := fset.Position(fd.Pos())
		end := fset.Position(fd.Body.End())
		out = append(out, Func{
			Name:      funcName(fd),
			File:      start.Filename,
			StartLine: start.Line,
			EndLine:   end.Line,
			Pos:       fd.Pos(),
		})
	}
	return out
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	writeRecv(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecv(b *strings.Builder, t ast.Expr) {
	switch e := t.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeRecv(b, e.X)
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.IndexExpr: // generic receiver
		writeRecv(b, e.X)
	default:
		b.WriteString("?")
	}
}

// Escape is one heap-allocation diagnostic from go build -gcflags=-m.
type Escape struct {
	File string
	Line int
	Col  int
	Msg  string
}

// escapeLine matches "path/file.go:line:col: message". The path may contain
// further colons on Windows-style inputs; the repo only builds on unix paths
// so a simple left-anchored split is enough.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ParseEscapes extracts the heap-allocation diagnostics from -gcflags=-m
// output. Inlining chatter, "does not escape" proofs and "leaking param"
// notes (the callee's report about its parameter, duplicated at the caller
// as its own escape line when it matters) are dropped; what remains —
// "escapes to heap", "moved to heap" — is exactly the set of allocation
// sites the gate must prove empty inside annotated spans.
func ParseEscapes(output string) []Escape {
	var out []Escape
	for _, line := range strings.Split(output, "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		ln, err1 := strconv.Atoi(m[2])
		col, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, Escape{File: m[1], Line: ln, Col: col, Msg: msg})
	}
	return out
}
