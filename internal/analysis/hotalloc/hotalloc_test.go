package hotalloc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	atest.Run(t, "testdata", hotalloc.Analyzer, "hotalloc")
}

// runOnSource runs the analyzer on a single untyped source string and
// returns the diagnostic messages. Type information is left empty, which is
// fine for the placement check — it is purely syntactic.
func runOnSource(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	files := []*ast.File{f}
	var msgs []string
	pass := &analysis.Pass{
		Analyzer:  hotalloc.Analyzer,
		Fset:      fset,
		Files:     files,
		TypesInfo: &types.Info{Uses: map[*ast.Ident]types.Object{}, Selections: map[*ast.SelectorExpr]*types.Selection{}},
		ResultOf:  map[*analysis.Analyzer]interface{}{inspect.Analyzer: inspector.New(files)},
		ReadFile:  os.ReadFile,
		Report:    func(d analysis.Diagnostic) { msgs = append(msgs, d.Message) },
	}
	if _, err := hotalloc.Analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	return msgs
}

// TestMisplacedMarker pins the placement rule: a hotpath annotation that is
// not a function's doc comment guards nothing and must be a finding. (This
// lives outside the atest fixture because the diagnostic lands on the
// comment's own line, where a want comment cannot sit.)
func TestMisplacedMarker(t *testing.T) {
	msgs := runOnSource(t, `package p

//geckolint:hotpath
var counter int

func f() {
	//geckolint:hotpath
	counter++
}
`)
	if len(msgs) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (var doc + in-body): %v", len(msgs), msgs)
	}
	for _, m := range msgs {
		if !strings.Contains(m, "must be the doc comment of a function declaration") {
			t.Errorf("unexpected message: %s", m)
		}
	}
}

// TestWellPlacedMarker is the non-firing twin: a marker on a function's doc
// comment — even below descriptive lines — is valid placement.
func TestWellPlacedMarker(t *testing.T) {
	msgs := runOnSource(t, `package p

// f is very fast.
//
//geckolint:hotpath
func f() {}
`)
	if len(msgs) != 0 {
		t.Fatalf("got unexpected diagnostics: %v", msgs)
	}
}

// TestFuncsInFile checks the span extraction the -hotpath gate matches
// compiler diagnostics against.
func TestFuncsInFile(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "eng.go", `package p

//geckolint:hotpath
func Plain(x int) int {
	return x + 1
}

type E struct{}

// Write writes.
//
//geckolint:hotpath
func (e *E) Write() {
}

func cold() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fns := hotalloc.FuncsInFile(fset, f)
	if len(fns) != 2 {
		t.Fatalf("got %d annotated funcs, want 2: %+v", len(fns), fns)
	}
	if fns[0].Name != "Plain" || fns[0].StartLine != 4 || fns[0].EndLine != 6 {
		t.Errorf("Plain span = %+v, want lines 4-6", fns[0])
	}
	if fns[1].Name != "(*E).Write" || fns[1].StartLine != 13 || fns[1].EndLine != 14 {
		t.Errorf("(*E).Write span = %+v, want lines 13-14", fns[1])
	}
	if fns[0].File != "eng.go" {
		t.Errorf("File = %q, want eng.go", fns[0].File)
	}
}

// TestParseEscapes feeds canned -gcflags=-m output: only genuine heap
// allocations survive the filter — inlining chatter, non-escape proofs and
// leaking-param notes do not.
func TestParseEscapes(t *testing.T) {
	out := `# geckoftl/internal/ftl
internal/ftl/engine.go:170:10: can inline (*Engine).shardOf
internal/ftl/engine.go:172:27: lpn escapes to heap
internal/ftl/engine.go:172:45: e.logicalPages escapes to heap
internal/ftl/engine.go:212:7: leaking param: e
internal/ftl/engine.go:214:3: moved to heap: buf
internal/ftl/engine.go:220:13: make([]byte, 0) does not escape
internal/ftl/engine.go:225:9: inlining call to (*Histogram).Record
garbage line without position
`
	got := hotalloc.ParseEscapes(out)
	want := []hotalloc.Escape{
		{File: "internal/ftl/engine.go", Line: 172, Col: 27, Msg: "lpn escapes to heap"},
		{File: "internal/ftl/engine.go", Line: 172, Col: 45, Msg: "e.logicalPages escapes to heap"},
		{File: "internal/ftl/engine.go", Line: 214, Col: 3, Msg: "moved to heap: buf"},
	}
	if len(got) != len(want) {
		t.Fatalf("ParseEscapes returned %d escapes, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("escape %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
