// Package lintutil holds the small helpers the geckolint analyzers share:
// suppression comments, test-file detection and type predicates.
package lintutil

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IsTestFile reports whether pos lies in a _test.go file. The analyzers skip
// test files for rules that only guard production invariants (detrand) and
// keep them for rules whose bug class bites tests too.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Ignored reports whether the line holding pos, or the line directly above
// it, carries a suppression comment of the form
//
//	//geckolint:ignore <name>[,<name>...] <reason>
//
// naming the given analyzer. Suppressions are per-line and per-analyzer so a
// waiver cannot silently widen.
func Ignored(pass *analysis.Pass, pos token.Pos, name string) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) != tf {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//geckolint:ignore")
				if !ok {
					continue
				}
				cline := tf.Line(c.Pos())
				if cline != line && cline != line-1 {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				for _, n := range strings.Split(fields[0], ",") {
					if n == name {
						return true
					}
				}
			}
		}
	}
	return false
}

// Report files a diagnostic unless a //geckolint:ignore comment waives it.
func Report(pass *analysis.Pass, name string, rng analysis.Range, format string, args ...interface{}) {
	if Ignored(pass, rng.Pos(), name) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     rng.Pos(),
		End:     rng.End(),
		Message: fmt.Sprintf(format, args...),
	})
}

// IsErrorType reports whether t implements the built-in error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// CalleeFunc resolves the called *types.Func of a call expression, or nil
// for calls through function-typed variables, built-ins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ObjectOf returns the object an identifier expression resolves to, seeing
// through parentheses. It returns nil for non-identifier expressions.
func ObjectOf(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// UsesObject reports whether any identifier under root resolves to obj.
func UsesObject(info *types.Info, root ast.Node, obj types.Object) bool {
	if obj == nil || root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
