// Package lintutil holds the small helpers the geckolint analyzers share:
// suppression comments, test-file detection and type predicates.
package lintutil

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IsTestFile reports whether pos lies in a _test.go file. The analyzers skip
// test files for rules that only guard production invariants (detrand) and
// keep them for rules whose bug class bites tests too.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Ignored reports whether a suppression comment of the form
//
//	//geckolint:ignore <name>[,<name>...] <reason>
//
// naming the given analyzer waives a diagnostic at pos. See IgnoredIn for
// where the comment may sit.
func Ignored(pass *analysis.Pass, pos token.Pos, name string) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) == tf {
			return IgnoredIn(pass.Fset, f, pos, name)
		}
	}
	return false
}

// IgnoredIn is Ignored for callers that hold the file directly (the hotpath
// gate parses files outside any analysis.Pass). A waiver attaches to the
// innermost statement enclosing pos, not to the literal diagnostic line: the
// comment may sit on the diagnostic's line, the line directly above it,
// anywhere within the enclosing statement's span, or on the line directly
// above that statement. gofmt re-attaching a comment within a multi-line
// statement therefore cannot silently drop a waiver. Suppressions stay
// per-analyzer so a waiver cannot widen to other rules.
func IgnoredIn(fset *token.FileSet, f *ast.File, pos token.Pos, name string) bool {
	tf := fset.File(pos)
	if tf == nil || fset.File(f.Pos()) != tf {
		return false
	}
	line := tf.Line(pos)
	lo, hi := line-1, line
	if start, end, ok := enclosingStmtSpan(f, pos); ok {
		if s := tf.Line(start) - 1; s < lo {
			lo = s
		}
		if e := tf.Line(end); e > hi {
			hi = e
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//geckolint:ignore")
			if !ok {
				continue
			}
			cline := tf.Line(c.Pos())
			if cline < lo || cline > hi {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			for _, n := range strings.Split(fields[0], ",") {
				if n == name {
					return true
				}
			}
		}
	}
	return false
}

// enclosingStmtSpan returns the source span a waiver for pos may occupy: the
// innermost non-block statement containing pos. Compound statements (if, for,
// range, switch, select) span only their header — a waiver inside the body
// attaches to the body's own statements, not to the whole construct.
func enclosingStmtSpan(f *ast.File, pos token.Pos) (start, end token.Pos, ok bool) {
	var best ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			// Structural containers, not waiver anchors.
		default:
			// Deeper statements are visited later and overwrite shallower
			// ones, so best ends up innermost.
			if s, isStmt := n.(ast.Stmt); isStmt {
				best = s
			}
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	end = best.End()
	switch s := best.(type) {
	case *ast.IfStmt:
		end = s.Body.Pos()
	case *ast.ForStmt:
		end = s.Body.Pos()
	case *ast.RangeStmt:
		end = s.Body.Pos()
	case *ast.SwitchStmt:
		end = s.Body.Pos()
	case *ast.TypeSwitchStmt:
		end = s.Body.Pos()
	case *ast.SelectStmt:
		end = s.Body.Pos()
	}
	return best.Pos(), end, true
}

// Report files a diagnostic unless a //geckolint:ignore comment waives it.
func Report(pass *analysis.Pass, name string, rng analysis.Range, format string, args ...interface{}) {
	if Ignored(pass, rng.Pos(), name) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     rng.Pos(),
		End:     rng.End(),
		Message: fmt.Sprintf(format, args...),
	})
}

// IsErrorType reports whether t implements the built-in error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// CalleeFunc resolves the called *types.Func of a call expression, or nil
// for calls through function-typed variables, built-ins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ObjectOf returns the object an identifier expression resolves to, seeing
// through parentheses. It returns nil for non-identifier expressions.
func ObjectOf(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// UsesObject reports whether any identifier under root resolves to obj.
func UsesObject(info *types.Info, root ast.Node, obj types.Object) bool {
	if obj == nil || root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
