package lintutil_test

import (
	"go/parser"
	"go/token"
	"testing"

	"geckoftl/internal/analysis/lintutil"
)

// posOnLine returns a position on the given 1-based line of the file.
func posOnLine(fset *token.FileSet, line int) token.Pos {
	var p token.Pos
	fset.Iterate(func(f *token.File) bool {
		p = f.LineStart(line)
		return false
	})
	return p
}

const multilineSrc = `package p

func f(xs []int) int {
	//geckolint:ignore detrand jitter only
	return pick(
		xs,
		g(),
	)
}

func h() int {
	x := g()
	return x
}
`

// TestIgnoredInStatementScope pins the gofmt-proof waiver rule: a comment
// above a multi-line statement waives a diagnostic on any of its lines —
// here line 7, three lines below the comment, where the old per-line rule
// (diagnostic line or the line above) could not see it.
func TestIgnoredInStatementScope(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", multilineSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !lintutil.IgnoredIn(fset, f, posOnLine(fset, 7), "detrand") {
		t.Error("waiver above the statement should cover a diagnostic on its third line")
	}
	if !lintutil.IgnoredIn(fset, f, posOnLine(fset, 5), "detrand") {
		t.Error("waiver should cover the statement's first line too")
	}
	if lintutil.IgnoredIn(fset, f, posOnLine(fset, 7), "maporder") {
		t.Error("waiver names detrand only; it must not widen to other analyzers")
	}
	if lintutil.IgnoredIn(fset, f, posOnLine(fset, 12), "detrand") {
		t.Error("waiver must not leak into a different function's statements")
	}
}
