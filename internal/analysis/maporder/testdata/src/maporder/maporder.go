// Fixture for the maporder analyzer. BadVictim reproduces the PR 5
// victim-selection bug in miniature: a greedy argmin over a map of
// candidates whose winner flips between runs whenever valid-page counts tie.
package maporder

import (
	"fmt"
	"sort"
)

// BadVictim is the PR 5 bug class: argmin over map iteration, ties resolved
// by whichever key the runtime yields first.
func BadVictim(validPages map[int]int) int {
	victim, best := -1, int(^uint(0)>>1)
	for block, valid := range validPages {
		if valid < best { // want `min/max selection of victim over map iteration is nondeterministic`
			victim, best = block, valid
		}
	}
	return victim
}

// BadCollect appends in map-iteration order and returns the slice unsorted.
func BadCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys is appended to in map-iteration order and never sorted`
	}
	return keys
}

// BadPrint emits one line per entry in randomized order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside a map range emits output in randomized map order`
	}
}

// GoodSortedAfter collects then pins a total order before returning.
func GoodSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodValueMax assigns exactly the compared value: ties assign equal values,
// so the result is order-independent.
func GoodValueMax(counts map[string]int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// GoodCounting aggregates order-independently.
func GoodCounting(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// GoodLoopLocal appends to a loop-local scratch slice whose order dies with
// the iteration.
func GoodLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		total += len(evens)
	}
	return total
}

// GoodWaived documents a deliberately unordered collection.
func GoodWaived(m map[string]int) []string {
	var keys []string
	for k := range m {
		//geckolint:ignore maporder consumer treats this as a set
		keys = append(keys, k)
	}
	return keys
}
