// Package maporder defines an analyzer that flags order-dependent results
// built by ranging over a map.
//
// Go randomizes map iteration order on purpose, so any output assembled in
// iteration order — a slice that is never sorted, a min/max "victim" picked
// with a comparison, text printed per key — differs from run to run. In this
// repo that is not a style nit: recovery must replay identically, victim
// selection feeds garbage collection (the PR 5 nondeterministic victim bug),
// and the simulation sweeps pin exact expected numbers in tests.
// Order-independent uses — building another map, counting, summing,
// deleting — pass untouched.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `flag nondeterministic results assembled by ranging over a map

Three order-dependent shapes are reported: appending to a slice declared
outside the loop with no subsequent sort of that slice in the same function;
selecting a min/max into an outer variable with a comparison (victim
picking); and printing per-element output. Iterate sorted keys, sort the
result, or pin a total tie-break instead. Deliberately unordered collection
can be waived with //geckolint:ignore maporder <reason>.`

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// Walk with stacks so each map-range loop knows its enclosing function
	// body (needed to look for a sort after the loop).
	insp.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		checkMapRange(pass, rng, enclosingFuncBody(stack))
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			checkAppend(pass, rng, fnBody, n)
		case *ast.IfStmt:
			checkMinMax(pass, rng, n)
		case *ast.CallExpr:
			checkPrint(pass, rng, n)
		}
		return true
	})
}

// checkAppend flags `s = append(s, ...)` inside a map range when s is
// declared outside the loop and never sorted later in the same function:
// the slice's element order is the map's random iteration order.
func checkAppend(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
			continue
		}
		obj := lintutil.ObjectOf(pass.TypesInfo, assign.Lhs[i])
		if obj == nil || obj.Pos() == token.NoPos {
			continue
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			continue // loop-local scratch: its order dies with the iteration
		}
		if sortedAfter(pass, fnBody, rng, obj) {
			continue
		}
		lintutil.Report(pass, "maporder", assign,
			"%s is appended to in map-iteration order and never sorted in this function; map order is randomized, so the result is nondeterministic — sort %s (or iterate sorted keys)",
			obj.Name(), obj.Name())
	}
}

// checkMinMax flags comparison-guarded assignments to outer state — the
// victim-selection shape `if cand.score > best.score { best = cand }` —
// whose winner depends on iteration order whenever scores tie.
//
// Pure value aggregation is exempt: `if c > max { max = c }` assigns exactly
// the compared expression, so a tie assigns an equal value and the result is
// order-independent. The order-dependent shape is argmax — remembering the
// key, or a composite the comparison only partially orders.
func checkMinMax(pass *analysis.Pass, rng *ast.RangeStmt, ifStmt *ast.IfStmt) {
	if !hasOrderingComparison(ifStmt.Cond) {
		return
	}
	compared := comparedOperands(pass.Fset, ifStmt.Cond)
	for _, stmt := range ifStmt.Body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
			continue
		}
		for i, lhs := range assign.Lhs {
			obj := lintutil.ObjectOf(pass.TypesInfo, lhs)
			if obj == nil || obj.Pos() == token.NoPos {
				continue
			}
			if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				continue
			}
			if compared[exprText(pass.Fset, assign.Rhs[i])] && !usesRangeKey(pass, rng, assign.Rhs[i]) {
				continue // value-max: ties assign equal values
			}
			lintutil.Report(pass, "maporder", ifStmt,
				"min/max selection of %s over map iteration is nondeterministic on ties; iterate sorted keys or pin a total tie-break (the PR 5 victim-selection bug class)",
				obj.Name())
			return
		}
	}
}

// comparedOperands returns the source text of every operand of an ordering
// comparison in cond.
func comparedOperands(fset *token.FileSet, cond ast.Expr) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			out[exprText(fset, bin.X)] = true
			out[exprText(fset, bin.Y)] = true
		}
		return true
	})
	return out
}

// usesRangeKey reports whether expr mentions the range statement's key
// variable — remembering which key won is argmax, always order-dependent.
func usesRangeKey(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	return lintutil.UsesObject(pass.TypesInfo, expr, pass.TypesInfo.ObjectOf(key))
}

// checkPrint flags per-element output emitted in map-iteration order.
func checkPrint(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	switch fn.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		lintutil.Report(pass, "maporder", call,
			"fmt.%s inside a map range emits output in randomized map order; iterate sorted keys", fn.Name())
	}
}

func exprText(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, expr)
	return buf.String()
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// hasOrderingComparison reports whether the condition contains an ordering
// operator (<, >, <=, >=). Pure equality tests are not min/max selection.
func hasOrderingComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok {
			switch bin.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether obj is passed (anywhere in the argument tree)
// to a sort.* or slices.Sort* call after the loop ends, in the same function.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if lintutil.UsesObject(pass.TypesInfo, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
