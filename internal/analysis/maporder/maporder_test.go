package maporder_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	atest.Run(t, "testdata", maporder.Analyzer, "maporder")
}
