// Package atomicmix defines an analyzer that flags variables accessed both
// through sync/atomic free functions and through plain loads and stores —
// the half-atomic discipline that the race detector only catches when the
// racing pair actually interleaves under test.
//
// The bug class is PR 9's busyUntil CAS-ratchet shape: a field advanced
// with atomic.CompareAndSwapInt64 in one function and read with a plain
// load in another compiles fine, usually works, and is still a data race —
// the plain load can observe a torn or stale value and the compiler may
// cache it across the CAS loop. The fix is always to pick one discipline:
// either every access goes through sync/atomic (best: the typed
// atomic.Int64 wrappers, which make plain access impossible), or every
// access is under the mutex.
//
// The analyzer resolves each &x passed to a sync/atomic free function to
// its types.Object — a struct field (any instance) or a package-level
// variable — and then reports every plain read or write of the same object
// elsewhere in the package. Typed atomics (atomic.Int64, atomic.Bool, ...)
// need no checking: their internals are unexported, so the compiler already
// enforces the discipline. That is also why this repo's own code should
// prefer them; the analyzer exists for the free-function style that slips
// in with ported code.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"geckoftl/internal/analysis/lintutil"
)

const doc = `check for variables accessed both via sync/atomic and via plain loads/stores

A field passed to atomic.Load/Store/Add/Swap/CompareAndSwap in one place and
read or written directly in another is a data race the compiler cannot see
and the race detector only finds when the interleaving happens. Pick one
discipline — a typed atomic (atomic.Int64), all free-function atomics, or
the mutex.`

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find every object whose address is taken by a sync/atomic free
	// function, remembering one representative site per object and the exact
	// operand expressions (to exclude them from the plain-access scan).
	atomicSite := map[types.Object]ast.Expr{}
	inAtomicCall := map[ast.Expr]bool{}
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods on the typed atomics are always safe
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			operand := ast.Unparen(u.X)
			obj := accessedObject(pass.TypesInfo, operand)
			if obj == nil {
				continue
			}
			inAtomicCall[operand] = true
			if _, seen := atomicSite[obj]; !seen {
				atomicSite[obj] = operand
			}
		}
	})
	if len(atomicSite) == 0 {
		return nil, nil
	}

	// Pass 2: report every plain access of those objects. Taking the address
	// for another atomic call was excluded above; any other appearance is a
	// plain load, store, or escape of the address into code this analyzer
	// cannot follow — all of them break the discipline.
	insp.Preorder([]ast.Node{(*ast.SelectorExpr)(nil), (*ast.Ident)(nil)}, func(n ast.Node) {
		var obj types.Object
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if inAtomicCall[e] {
				return
			}
			sel, ok := pass.TypesInfo.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return
			}
			obj = sel.Obj()
		case *ast.Ident:
			if inAtomicCall[e] {
				return
			}
			v, ok := pass.TypesInfo.Uses[e].(*types.Var)
			if !ok || !isPackageLevel(v) {
				return
			}
			obj = v
		}
		site, mixed := atomicSite[obj]
		if !mixed {
			return
		}
		lintutil.Report(pass, "atomicmix", n.(analysis.Range),
			"%s is accessed atomically at %s but with a plain load/store here: pick one discipline (typed atomic, all sync/atomic, or the mutex)",
			obj.Name(), pass.Fset.Position(site.Pos()))
	})
	return nil, nil
}

// accessedObject resolves the operand of &x in an atomic call to the object
// the analyzer tracks: a struct field (via selection) or a package-level
// variable. Locals are skipped — a local cannot be concurrently accessed
// without also escaping, at which point the shared copy is a field anyway.
func accessedObject(info *types.Info, operand ast.Expr) types.Object {
	switch e := operand.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && isPackageLevel(v) {
			return v
		}
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
