// Fixture for the atomicmix analyzer: fields and package variables accessed
// both through sync/atomic free functions and through plain loads/stores,
// against the disciplines that stay quiet — typed atomics, all-atomic
// access, and plainly-accessed fields that never meet sync/atomic.
package atomicmix

import "sync/atomic"

type engine struct {
	busyUntil int64        // accessed via free functions — must be everywhere
	inflight  atomic.Int64 // typed atomic: the compiler enforces discipline
	epoch     int64        // never touched atomically: plain access is fine
}

// ratchet is the PR 9 CAS-ratchet shape: busyUntil is advanced atomically.
func (e *engine) ratchet(until int64) {
	for {
		cur := atomic.LoadInt64(&e.busyUntil)
		if cur >= until || atomic.CompareAndSwapInt64(&e.busyUntil, cur, until) {
			return
		}
	}
}

// busy reads the same field with a plain load: a data race with ratchet,
// and the compiler may cache the value across the loop.
func (e *engine) busy(now int64) bool {
	return e.busyUntil > now // want `busyUntil is accessed atomically at .* but with a plain load/store here: pick one discipline \(typed atomic, all sync/atomic, or the mutex\)`
}

// reset writes it plainly — same race, store side.
func (e *engine) reset() {
	e.busyUntil = 0 // want `busyUntil is accessed atomically at .* but with a plain load/store here: pick one discipline \(typed atomic, all sync/atomic, or the mutex\)`
}

var ops int64

func countOp() {
	atomic.AddInt64(&ops, 1)
}

func opsSnapshot() int64 {
	return ops // want `ops is accessed atomically at .* but with a plain load/store here: pick one discipline \(typed atomic, all sync/atomic, or the mutex\)`
}

// --- non-firing shapes ---

// allAtomic keeps every access of busyUntil through sync/atomic.
func (e *engine) allAtomic() int64 {
	atomic.StoreInt64(&e.busyUntil, 0)
	return atomic.LoadInt64(&e.busyUntil)
}

// typedAtomic uses the atomic.Int64 wrapper: plain access is impossible, so
// the analyzer has nothing to say.
func (e *engine) typedAtomic() int64 {
	e.inflight.Add(1)
	return e.inflight.Load()
}

// plainOnly never meets sync/atomic: plain access to epoch is fine.
func (e *engine) plainOnly() int64 {
	e.epoch++
	return e.epoch
}

// waived reads busyUntil plainly under a written waiver — the caller holds
// the engine stopped, so no concurrent ratchet can run.
func (e *engine) waived() int64 {
	//geckolint:ignore atomicmix engine is stopped here, no concurrent ratchet exists
	return e.busyUntil
}
