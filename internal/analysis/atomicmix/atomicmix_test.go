package atomicmix_test

import (
	"testing"

	"geckoftl/internal/analysis/atest"
	"geckoftl/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	atest.Run(t, "testdata", atomicmix.Analyzer, "atomicmix")
}
