package gecko

import (
	"math/rand"
	"testing"
	"testing/quick"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// testHarness bundles a small device, a block store over its last blocks, and
// a Logarithmic Gecko indexing its first blocks.
type testHarness struct {
	dev   *flash.Device
	store *metastore.BlockStore
	g     *Gecko
	cfg   Config
}

// newHarness builds a harness indexing the given number of user blocks.
// metaBlocks blocks at the top of the device hold the Gecko runs.
func newHarness(t *testing.T, userBlocks, pagesPerBlock, pageSize, metaBlocks int, mutate func(*Config)) *testHarness {
	t.Helper()
	devCfg := flash.ScaledConfig(userBlocks + metaBlocks)
	devCfg.PagesPerBlock = pagesPerBlock
	devCfg.PageSize = pageSize
	dev, err := flash.NewDevice(devCfg)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []flash.BlockID
	for i := userBlocks; i < userBlocks+metaBlocks; i++ {
		blocks = append(blocks, flash.BlockID(i))
	}
	store, err := metastore.NewBlockStore(dev, blocks, flash.BlockGecko, flash.PurposePageValidity)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(userBlocks, pagesPerBlock, pageSize)
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	return &testHarness{dev: dev, store: store, g: g, cfg: cfg}
}

// model is a reference implementation: a full in-RAM PVB per block.
type model struct {
	pagesPerBlock int
	invalid       map[flash.BlockID]*bitmap.Bitmap
}

func newModel(pagesPerBlock int) *model {
	return &model{pagesPerBlock: pagesPerBlock, invalid: make(map[flash.BlockID]*bitmap.Bitmap)}
}

func (m *model) update(addr flash.Addr) {
	bm, ok := m.invalid[addr.Block]
	if !ok {
		bm = bitmap.New(m.pagesPerBlock)
		m.invalid[addr.Block] = bm
	}
	bm.Set(addr.Offset)
}

func (m *model) erase(block flash.BlockID) {
	m.invalid[block] = bitmap.New(m.pagesPerBlock)
}

func (m *model) query(block flash.BlockID) *bitmap.Bitmap {
	if bm, ok := m.invalid[block]; ok {
		return bm.Clone()
	}
	return bitmap.New(m.pagesPerBlock)
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig(16, 128, 4096)
	if _, err := New(cfg, nil); err == nil {
		t.Error("nil store accepted")
	}
	cfg.SizeRatio = 1
	h := newHarness(t, 16, 128, 4096, 4, nil)
	if _, err := New(cfg, h.store); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestUpdateAndQuerySmall(t *testing.T) {
	h := newHarness(t, 64, 16, 512, 8, nil)
	// Invalidate three pages of block 5 and one of block 9.
	for _, a := range []flash.Addr{{Block: 5, Offset: 0}, {Block: 5, Offset: 7}, {Block: 5, Offset: 15}, {Block: 9, Offset: 3}} {
		if err := h.g.Update(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := h.g.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.PopCount() != 3 || !got.Get(0) || !got.Get(7) || !got.Get(15) {
		t.Errorf("query(5) = %v", got.SetBits())
	}
	got, err = h.g.Query(9)
	if err != nil {
		t.Fatal(err)
	}
	if got.PopCount() != 1 || !got.Get(3) {
		t.Errorf("query(9) = %v", got.SetBits())
	}
	// A block never touched is fully valid.
	got, err = h.g.Query(33)
	if err != nil {
		t.Fatal(err)
	}
	if got.Any() {
		t.Errorf("query(33) = %v, want empty", got.SetBits())
	}
}

func TestUpdateValidation(t *testing.T) {
	h := newHarness(t, 8, 16, 512, 2, nil)
	if err := h.g.Update(flash.Addr{Block: 8, Offset: 0}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := h.g.Update(flash.Addr{Block: 0, Offset: 16}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if err := h.g.RecordErase(9); err == nil {
		t.Error("out-of-range erase accepted")
	}
	if _, err := h.g.Query(-1); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func TestEraseFlagStopsQueries(t *testing.T) {
	h := newHarness(t, 64, 16, 256, 16, nil)
	// Fill enough updates to force several flushes so block 3's old
	// invalidations end up in flash runs.
	for off := 0; off < 16; off++ {
		if err := h.g.Update(flash.Addr{Block: 3, Offset: off}); err != nil {
			t.Fatal(err)
		}
	}
	for b := 10; b < 40; b++ {
		for off := 0; off < 8; off++ {
			if err := h.g.Update(flash.Addr{Block: flash.BlockID(b), Offset: off}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if h.g.RunCount() == 0 {
		t.Fatal("test setup: expected at least one flush")
	}
	// Erase block 3: all earlier invalidations become obsolete.
	if err := h.g.RecordErase(3); err != nil {
		t.Fatal(err)
	}
	got, err := h.g.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Any() {
		t.Errorf("query after erase = %v, want empty", got.SetBits())
	}
	// New invalidations after the erase are visible again.
	if err := h.g.Update(flash.Addr{Block: 3, Offset: 5}); err != nil {
		t.Fatal(err)
	}
	got, _ = h.g.Query(3)
	if got.PopCount() != 1 || !got.Get(5) {
		t.Errorf("query after re-invalidate = %v", got.SetBits())
	}
}

func TestBufferFlushHappensAtV(t *testing.T) {
	h := newHarness(t, 256, 16, 256, 16, func(c *Config) { c.PartitionFactor = 1 })
	v := h.cfg.EntriesPerPage()
	// V-1 distinct blocks: no flush yet.
	for b := 0; b < v-1; b++ {
		if err := h.g.Update(flash.Addr{Block: flash.BlockID(b), Offset: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if h.g.Stats().Flushes != 0 {
		t.Fatalf("premature flush after %d distinct entries (V=%d)", v-1, v)
	}
	if h.g.BufferLen() != v-1 {
		t.Fatalf("buffer len = %d, want %d", h.g.BufferLen(), v-1)
	}
	// The V-th distinct block triggers the flush.
	if err := h.g.Update(flash.Addr{Block: flash.BlockID(v - 1), Offset: 0}); err != nil {
		t.Fatal(err)
	}
	if h.g.Stats().Flushes != 1 {
		t.Errorf("flushes = %d, want 1", h.g.Stats().Flushes)
	}
	if h.g.BufferLen() != 0 {
		t.Errorf("buffer not drained after flush: %d", h.g.BufferLen())
	}
	// Exactly one page-validity flash write for V updates.
	c := h.dev.Counters()
	if got := c.Count(flash.OpPageWrite, flash.PurposePageValidity); got != 1 {
		t.Errorf("flash writes for first flush = %d, want 1", got)
	}
}

func TestUpdatesToSameBlockAreAbsorbed(t *testing.T) {
	h := newHarness(t, 256, 16, 256, 16, func(c *Config) { c.PartitionFactor = 1 })
	// Many updates to the same block create only one buffered entry.
	for off := 0; off < 16; off++ {
		if err := h.g.Update(flash.Addr{Block: 7, Offset: off}); err != nil {
			t.Fatal(err)
		}
	}
	if h.g.BufferLen() != 1 {
		t.Errorf("buffer len = %d, want 1 (absorption)", h.g.BufferLen())
	}
	if h.g.Stats().Flushes != 0 {
		t.Errorf("flushes = %d, want 0", h.g.Stats().Flushes)
	}
}

func TestPartitionedUpdatesCreateSubEntries(t *testing.T) {
	h := newHarness(t, 256, 128, 4096, 16, nil) // S = 4, 32-bit chunks
	// Two updates in different quarters of the block create two sub-entries.
	h.g.Update(flash.Addr{Block: 1, Offset: 0})
	h.g.Update(flash.Addr{Block: 1, Offset: 100})
	if h.g.BufferLen() != 2 {
		t.Errorf("buffer len = %d, want 2 sub-entries", h.g.BufferLen())
	}
	// Two updates in the same quarter are absorbed into one sub-entry.
	h.g.Update(flash.Addr{Block: 2, Offset: 10})
	h.g.Update(flash.Addr{Block: 2, Offset: 20})
	if h.g.BufferLen() != 3 {
		t.Errorf("buffer len = %d, want 3", h.g.BufferLen())
	}
	got, err := h.g.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Get(0) || !got.Get(100) || got.PopCount() != 2 {
		t.Errorf("query(1) = %v", got.SetBits())
	}
}

func TestMergeMaintainsOneRunPerLevel(t *testing.T) {
	h := newHarness(t, 512, 16, 256, 64, func(c *Config) { c.PartitionFactor = 1 })
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		addr := flash.Addr{Block: flash.BlockID(rng.Intn(512)), Offset: rng.Intn(16)}
		if err := h.g.Update(addr); err != nil {
			t.Fatal(err)
		}
	}
	// After every operation completes, no level may hold two runs.
	for level, runs := range h.g.levels {
		if len(runs) > 1 {
			t.Errorf("level %d holds %d runs", level, len(runs))
		}
	}
	if h.g.Stats().Merges == 0 {
		t.Error("expected at least one merge")
	}
}

func TestGCQueryReadsAtMostOnePagePerRunPlusStraddles(t *testing.T) {
	h := newHarness(t, 512, 16, 256, 64, func(c *Config) { c.PartitionFactor = 1 })
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		h.g.Update(flash.Addr{Block: flash.BlockID(rng.Intn(512)), Offset: rng.Intn(16)})
	}
	runs := h.g.RunCount()
	before := h.g.Stats().QueryPageReads
	if _, err := h.g.Query(100); err != nil {
		t.Fatal(err)
	}
	reads := h.g.Stats().QueryPageReads - before
	// Without partitioning a block's entries never straddle pages, so the
	// query reads at most one page per run.
	if reads > int64(runs) {
		t.Errorf("query read %d pages with only %d runs", reads, runs)
	}
}

func TestAgainstModelUniformRandom(t *testing.T) {
	h := newHarness(t, 256, 16, 256, 64, nil)
	m := newModel(16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		switch rng.Intn(10) {
		case 0:
			block := flash.BlockID(rng.Intn(256))
			if err := h.g.RecordErase(block); err != nil {
				t.Fatal(err)
			}
			m.erase(block)
		default:
			addr := flash.Addr{Block: flash.BlockID(rng.Intn(256)), Offset: rng.Intn(16)}
			if err := h.g.Update(addr); err != nil {
				t.Fatal(err)
			}
			m.update(addr)
		}
	}
	for b := 0; b < 256; b++ {
		got, err := h.g.Query(flash.BlockID(b))
		if err != nil {
			t.Fatal(err)
		}
		want := m.query(flash.BlockID(b))
		if !got.Equal(want) {
			t.Fatalf("block %d: gecko=%v model=%v", b, got.SetBits(), want.SetBits())
		}
	}
}

func TestAgainstModelWithUnpartitionedEntries(t *testing.T) {
	h := newHarness(t, 128, 32, 512, 32, func(c *Config) { c.PartitionFactor = 1 })
	m := newModel(32)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		if rng.Intn(12) == 0 {
			block := flash.BlockID(rng.Intn(128))
			if err := h.g.RecordErase(block); err != nil {
				t.Fatal(err)
			}
			m.erase(block)
			continue
		}
		addr := flash.Addr{Block: flash.BlockID(rng.Intn(128)), Offset: rng.Intn(32)}
		if err := h.g.Update(addr); err != nil {
			t.Fatal(err)
		}
		m.update(addr)
	}
	for b := 0; b < 128; b++ {
		got, _ := h.g.Query(flash.BlockID(b))
		want := m.query(flash.BlockID(b))
		if !got.Equal(want) {
			t.Fatalf("block %d mismatch: gecko=%v model=%v", b, got.SetBits(), want.SetBits())
		}
	}
}

func TestMultiWayMergeProducesSameAnswers(t *testing.T) {
	twoWay := newHarness(t, 128, 16, 256, 32, func(c *Config) { c.MultiWayMerge = false })
	multi := newHarness(t, 128, 16, 256, 32, func(c *Config) { c.MultiWayMerge = true })
	m := newModel(16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8000; i++ {
		if rng.Intn(15) == 0 {
			block := flash.BlockID(rng.Intn(128))
			twoWay.g.RecordErase(block)
			multi.g.RecordErase(block)
			m.erase(block)
			continue
		}
		addr := flash.Addr{Block: flash.BlockID(rng.Intn(128)), Offset: rng.Intn(16)}
		if err := twoWay.g.Update(addr); err != nil {
			t.Fatal(err)
		}
		if err := multi.g.Update(addr); err != nil {
			t.Fatal(err)
		}
		m.update(addr)
	}
	for b := 0; b < 128; b++ {
		w1, _ := twoWay.g.Query(flash.BlockID(b))
		w2, _ := multi.g.Query(flash.BlockID(b))
		want := m.query(flash.BlockID(b))
		if !w1.Equal(want) || !w2.Equal(want) {
			t.Fatalf("block %d: two-way=%v multi=%v model=%v", b, w1.SetBits(), w2.SetBits(), want.SetBits())
		}
	}
	// The multi-way policy must not do more page writes than the two-way
	// policy under the same workload (that is its entire purpose).
	c1 := twoWay.dev.Counters()
	c2 := multi.dev.Counters()
	if c2.Count(flash.OpPageWrite, flash.PurposePageValidity) > c1.Count(flash.OpPageWrite, flash.PurposePageValidity) {
		t.Errorf("multi-way merging wrote more pages (%d) than two-way (%d)",
			c2.Count(flash.OpPageWrite, flash.PurposePageValidity),
			c1.Count(flash.OpPageWrite, flash.PurposePageValidity))
	}
}

func TestSpaceAmplificationStaysBounded(t *testing.T) {
	h := newHarness(t, 256, 16, 256, 128, func(c *Config) { c.PartitionFactor = 1 })
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		h.g.Update(flash.Addr{Block: flash.BlockID(rng.Intn(256)), Offset: rng.Intn(16)})
	}
	// Live flash pages must stay within ~2x the fully-merged size plus the
	// current unmerged tail (one page per level as slack).
	largest := h.cfg.LargestRunPages()
	bound := 2*largest + h.cfg.Levels()
	if got := h.g.FlashPages(); got > bound {
		t.Errorf("gecko occupies %d pages, bound %d", got, bound)
	}
}

func TestEraseFlagAvoidsFlashIOPerErase(t *testing.T) {
	// Handling an erase must cost one buffer insertion, not O(L) flash IO.
	h := newHarness(t, 256, 16, 256, 32, nil)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.g.Update(flash.Addr{Block: flash.BlockID(rng.Intn(256)), Offset: rng.Intn(16)})
	}
	before := h.dev.Counters()
	if err := h.g.RecordErase(10); err != nil {
		t.Fatal(err)
	}
	delta := h.dev.Counters().Sub(before)
	// The only IO permitted is a buffer flush if the insert happened to
	// fill the buffer; with a fresh buffer slot that is at most one write.
	if delta.TotalOp(flash.OpPageRead) > 0 && h.g.Stats().Merges == 0 {
		t.Errorf("erase performed %d reads without a merge", delta.TotalOp(flash.OpPageRead))
	}
}

func TestFlushForcesBufferOut(t *testing.T) {
	h := newHarness(t, 64, 16, 512, 8, nil)
	if err := h.g.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.g.Stats().Flushes != 0 {
		t.Error("flushing an empty buffer should be a no-op")
	}
	h.g.Update(flash.Addr{Block: 1, Offset: 1})
	if err := h.g.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.g.Stats().Flushes != 1 || h.g.BufferLen() != 0 {
		t.Errorf("flush did not drain the buffer: %+v", h.g.Stats())
	}
	got, _ := h.g.Query(1)
	if !got.Get(1) {
		t.Error("flushed entry not found by query")
	}
}

func TestBufferLimitForcesEarlyFlush(t *testing.T) {
	h := newHarness(t, 256, 16, 4096, 16, func(c *Config) { c.BufferLimit = 10 })
	for i := 0; i < 10; i++ {
		// All updates hit the same block, so only 1 distinct entry exists;
		// the limit still forces a flush after 10 absorbed inserts.
		if err := h.g.Update(flash.Addr{Block: 3, Offset: i % 16}); err != nil {
			t.Fatal(err)
		}
	}
	if h.g.Stats().Flushes != 1 {
		t.Errorf("flushes = %d, want 1 (buffer limit)", h.g.Stats().Flushes)
	}
}

func TestRAMBytesAccounting(t *testing.T) {
	h := newHarness(t, 256, 16, 256, 64, nil)
	base := h.g.RAMBytes()
	if base < int64(h.cfg.PageSize) {
		t.Errorf("RAMBytes = %d, want at least one page for the buffer", base)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		h.g.Update(flash.Addr{Block: flash.BlockID(rng.Intn(256)), Offset: rng.Intn(16)})
	}
	if h.g.RAMBytes() <= base {
		t.Error("run directories did not grow RAM usage")
	}
	multi := newHarness(t, 256, 16, 256, 64, func(c *Config) { c.MultiWayMerge = true })
	if multi.g.RAMBytes() <= base {
		t.Error("multi-way merge buffers not charged to RAM")
	}
}

func TestStatsProgression(t *testing.T) {
	h := newHarness(t, 64, 16, 512, 8, nil)
	h.g.Update(flash.Addr{Block: 1, Offset: 1})
	h.g.RecordErase(2)
	h.g.Query(1)
	st := h.g.Stats()
	if st.Updates != 1 || st.Erases != 1 || st.Queries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// Property: for random workloads, a query never reports a page invalid that
// the model says is valid (no false invalidations -- the property that
// protects live data), and never misses an invalid page (the property that
// protects against migrating stale data).
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		devCfg := flash.ScaledConfig(64 + 32)
		devCfg.PagesPerBlock = 8
		devCfg.PageSize = 128
		dev, err := flash.NewDevice(devCfg)
		if err != nil {
			return false
		}
		var blocks []flash.BlockID
		for i := 64; i < 96; i++ {
			blocks = append(blocks, flash.BlockID(i))
		}
		store, err := metastore.NewBlockStore(dev, blocks, flash.BlockGecko, flash.PurposePageValidity)
		if err != nil {
			return false
		}
		cfg := DefaultConfig(64, 8, 128)
		g, err := New(cfg, store)
		if err != nil {
			return false
		}
		m := newModel(8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			if rng.Intn(8) == 0 {
				b := flash.BlockID(rng.Intn(64))
				if err := g.RecordErase(b); err != nil {
					return false
				}
				m.erase(b)
				continue
			}
			a := flash.Addr{Block: flash.BlockID(rng.Intn(64)), Offset: rng.Intn(8)}
			if err := g.Update(a); err != nil {
				return false
			}
			m.update(a)
		}
		for b := 0; b < 64; b++ {
			got, err := g.Query(flash.BlockID(b))
			if err != nil {
				return false
			}
			if !got.Equal(m.query(flash.BlockID(b))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
