package gecko

import (
	"fmt"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
)

// WholeBlock is the sub-key of an entry whose erase flag covers the entire
// block, regardless of partitioning. Erase entries always use it so that one
// buffer insertion suffices to obsolete all older metadata for the block
// (Section 3, "Erase Flag"). It sorts before every real sub-key.
const WholeBlock = -1

// Entry is a Gecko entry (Figure 3 of the paper): a block ID key, a bitmap of
// page-validity bits, and an erase flag. With entry-partitioning
// (Section 3.3) an entry carries only a chunk of the block's bitmap and a
// sub-key identifying which chunk.
type Entry struct {
	// Block is the key: the flash block the entry describes.
	Block flash.BlockID
	// SubKey identifies the bitmap chunk [SubKey*BitsPerEntry,
	// (SubKey+1)*BitsPerEntry) when entry-partitioning is enabled, or
	// WholeBlock for erase entries.
	SubKey int
	// Bits holds one validity bit per page in the chunk; a set bit means the
	// page is invalid. Erase entries carry a nil or empty bitmap.
	Bits *bitmap.Bitmap
	// EraseFlag records that the block was erased after every older entry
	// for the block was created; GC queries stop when they meet it and
	// merges discard older colliding entries (Algorithms 2 and 3).
	EraseFlag bool
}

// key is the composite sort key of an entry within a run.
type key struct {
	block  flash.BlockID
	subKey int
}

func (e Entry) key() key { return key{e.Block, e.SubKey} }

// less orders keys by block, then sub-key; WholeBlock (-1) naturally sorts
// before every real sub-key, so an erase entry precedes the block's chunks.
func (a key) less(b key) bool {
	if a.block != b.block {
		return a.block < b.block
	}
	return a.subKey < b.subKey
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	out := e
	if e.Bits != nil {
		out.Bits = e.Bits.Clone()
	}
	return out
}

// String renders the entry compactly for debugging and test failure output.
func (e Entry) String() string {
	erase := ""
	if e.EraseFlag {
		erase = " erase"
	}
	bits := "-"
	if e.Bits != nil {
		bits = fmt.Sprintf("%d set", e.Bits.PopCount())
	}
	return fmt.Sprintf("entry(block=%d sub=%d %s%s)", e.Block, e.SubKey, bits, erase)
}

// mergeCollision resolves a collision between an entry from a newer run and
// one from an older run with the same key, per Algorithm 3: if the newer
// entry's erase flag is set the older entry is discarded; otherwise the
// bitmaps are merged with OR and the older entry's erase flag is preserved.
func mergeCollision(newer, older Entry) Entry {
	if newer.EraseFlag {
		return newer.Clone()
	}
	out := newer.Clone()
	if older.Bits != nil {
		if out.Bits == nil {
			out.Bits = older.Bits.Clone()
		} else {
			out.Bits.Or(older.Bits)
		}
	}
	out.EraseFlag = older.EraseFlag
	return out
}
