package gecko

import (
	"fmt"
	"sort"

	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// CrashRAM simulates the loss of integrated RAM at power failure: the buffer
// contents and the run directories disappear. The flash-resident runs (their
// pages and spare areas) survive on the device; RecoverDirectories rebuilds
// the RAM state from them.
func (g *Gecko) CrashRAM() {
	g.buf.clear()
	g.levels = make([][]*run, g.cfg.Levels()+1)
}

// OldestPendingCreateSeq returns the creation sequence number of the most
// recently created run, or zero if no run exists. The FTL's buffer-recovery
// procedure (Appendix C.2) uses it as the cut-off: anything erased or
// invalidated after the last buffer flush must be re-inserted into the
// buffer.
func (g *Gecko) OldestPendingCreateSeq() uint64 {
	newest := uint64(0)
	for _, r := range g.runsNewestFirst() {
		if r.createSeq > newest {
			newest = r.createSeq
		}
	}
	return newest
}

// NewestRunWriteSeq returns the device write-sequence number of the first
// page of the most recently created run, or zero when no runs exist. The
// FTL's recovery uses it to find blocks erased since the last buffer flush.
func (g *Gecko) NewestRunWriteSeq() (uint64, error) {
	runs := g.runsNewestFirst()
	if len(runs) == 0 {
		return 0, nil
	}
	r := runs[0]
	if len(r.pages) == 0 {
		return 0, nil
	}
	spare, ok, err := g.store.ReadSpare(r.pages[0].ppn)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("gecko: newest run %d has an unwritten first page", r.id)
	}
	return spare.WriteSeq, nil
}

// RecoverDirectories rebuilds the run directories after a power failure
// (Appendix C.1 of the paper).
//
// It scans the spare area of every page in the store's blocks (one cheap
// spare-area read per page, the same asymptotic cost as the paper's scan of
// all Gecko pages), groups pages into runs by the run ID recorded in their
// spare areas, and discards runs that are incomplete (some of their pages
// were never written before power failed) or obsolete. Obsolete runs are
// detected with the recency invariant of the merge policy: among live runs,
// creation time strictly decreases as the level grows, so any recovered run
// that is older than a recovered run at a higher level must have been merged
// already and is dropped.
//
// The store must implement metastore.BlockLister so the scan knows which
// blocks to visit. The rebuilt directories replace the current RAM state.
func (g *Gecko) RecoverDirectories() error {
	lister, ok := g.store.(metastore.BlockLister)
	if !ok {
		return fmt.Errorf("gecko: store of type %T cannot enumerate blocks for recovery", g.store)
	}

	// Step 1: spare-area scan of every page in every Gecko block.
	pagesByRun := make(map[uint64][]runPageMeta)
	for _, block := range lister.Blocks() {
		for offset := 0; offset < g.cfg.PagesPerBlock; offset++ {
			ppn := flash.PPNOf(block, offset, g.cfg.PagesPerBlock)
			spare, written, err := g.store.ReadSpare(ppn)
			if err != nil {
				return fmt.Errorf("gecko: recovery scan of %v: %w", ppn, err)
			}
			if !written {
				continue
			}
			meta := decodeRunPageSpare(spare, ppn)
			pagesByRun[meta.runID] = append(pagesByRun[meta.runID], meta)
		}
	}

	// Step 2: keep only complete runs (all totalPages present exactly once).
	type candidate struct {
		id        uint64
		createSeq uint64
		pages     []runPageMeta
	}
	var candidates []candidate
	for id, metas := range pagesByRun {
		if len(metas) == 0 {
			continue
		}
		total := metas[0].totalPages
		if len(metas) != total {
			continue
		}
		sort.Slice(metas, func(i, j int) bool { return metas[i].pageIndex < metas[j].pageIndex })
		complete := true
		for i, m := range metas {
			if m.pageIndex != i || m.totalPages != total {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		candidates = append(candidates, candidate{id: id, createSeq: metas[0].writeSeq, pages: metas})
	}
	// candidates was assembled in map-iteration order; pin a total order so
	// step 3's strict > comparison resolves createSeq ties to the lowest run
	// ID on every recovery, not to whichever run the map yielded first.
	// Recovery must replay identically or post-crash GC diverges between
	// runs of the same crash image.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].id < candidates[j].id })

	// Step 3: newest complete run per level.
	newestPerLevel := make(map[int]candidate)
	for _, c := range candidates {
		level := g.cfg.LevelOfRunPages(len(c.pages))
		cur, ok := newestPerLevel[level]
		if !ok || c.createSeq > cur.createSeq {
			newestPerLevel[level] = c
		}
	}

	// Step 4: enforce the recency invariant from the largest level down.
	levels := make([]int, 0, len(newestPerLevel))
	for level := range newestPerLevel {
		levels = append(levels, level)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	var live []candidate
	liveLevels := make([]int, 0, len(levels))
	minSeqOfLarger := uint64(0)
	for _, level := range levels {
		c := newestPerLevel[level]
		if c.createSeq <= minSeqOfLarger {
			continue // older than a live run at a higher level: obsolete
		}
		minSeqOfLarger = c.createSeq
		live = append(live, c)
		liveLevels = append(liveLevels, level)
	}

	// Step 5: rebuild the in-RAM run structures. The entry content of live
	// pages is the flash content written by writeRun; it is looked up by
	// physical address from the surviving flash image.
	content := g.flashImage()
	g.levels = make([][]*run, g.cfg.Levels()+1)
	for i, c := range live {
		r := &run{id: c.id, createSeq: c.createSeq, level: liveLevels[i]}
		for _, m := range c.pages {
			page, ok := content[m.ppn]
			if !ok {
				return fmt.Errorf("gecko: recovered run %d references page %d with no content", c.id, m.ppn)
			}
			r.pages = append(r.pages, runPage{
				ppn:     m.ppn,
				minKey:  m.minKey,
				maxKey:  m.maxKey,
				entries: page,
			})
		}
		// Keep logical sequencing consistent for future runs and merges.
		if c.createSeq > g.seq {
			g.seq = c.createSeq
		}
		if c.id >= g.nextRunID {
			g.nextRunID = c.id + 1
		}
		g.placeRun(r)
	}
	return nil
}

// flashImage returns the surviving flash content of live run pages keyed by
// physical address. It is rebuilt from the run structures that existed before
// the crash because the simulator does not store payload bytes in the device;
// only directory state (locations, key ranges, levels) is actually lost and
// re-derived by RecoverDirectories.
func (g *Gecko) flashImage() map[flash.PPN][]Entry {
	out := make(map[flash.PPN][]Entry)
	for ppn, entries := range g.pageContent {
		out[ppn] = entries
	}
	return out
}
