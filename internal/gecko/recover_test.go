package gecko

import (
	"math/rand"
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// populate drives a random update/erase workload through the harness and a
// reference model so that post-recovery answers can be checked.
func populate(t *testing.T, h *testHarness, m *model, ops int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	blocks := h.cfg.Blocks
	for i := 0; i < ops; i++ {
		if rng.Intn(12) == 0 {
			b := flash.BlockID(rng.Intn(blocks))
			if err := h.g.RecordErase(b); err != nil {
				t.Fatal(err)
			}
			if m != nil {
				m.erase(b)
			}
			continue
		}
		a := flash.Addr{Block: flash.BlockID(rng.Intn(blocks)), Offset: rng.Intn(h.cfg.PagesPerBlock)}
		if err := h.g.Update(a); err != nil {
			t.Fatal(err)
		}
		if m != nil {
			m.update(a)
		}
	}
}

func TestRecoverDirectoriesRestoresQueries(t *testing.T) {
	h := newHarness(t, 128, 16, 256, 64, nil)
	m := newModel(16)
	populate(t, h, m, 10000, 11)

	// The buffer content is legitimately lost at power failure; flush it so
	// the reference model and the flash state agree (the FTL-level recovery
	// of buffered entries is exercised in the ftl package tests).
	if err := h.g.Flush(); err != nil {
		t.Fatal(err)
	}
	runsBefore := h.g.RunCount()
	pagesBefore := h.g.FlashPages()

	// Power failure: RAM state is lost, flash survives.
	h.dev.PowerFail()
	h.g.CrashRAM()
	if h.g.RunCount() != 0 {
		t.Fatal("CrashRAM did not drop run directories")
	}
	h.dev.PowerOn()

	if err := h.g.RecoverDirectories(); err != nil {
		t.Fatal(err)
	}
	if got := h.g.RunCount(); got != runsBefore {
		t.Errorf("recovered %d runs, want %d", got, runsBefore)
	}
	if got := h.g.FlashPages(); got != pagesBefore {
		t.Errorf("recovered %d flash pages, want %d", got, pagesBefore)
	}

	for b := 0; b < 128; b++ {
		got, err := h.g.Query(flash.BlockID(b))
		if err != nil {
			t.Fatal(err)
		}
		want := m.query(flash.BlockID(b))
		if !got.Equal(want) {
			t.Fatalf("block %d after recovery: got %v want %v", b, got.SetBits(), want.SetBits())
		}
	}
}

func TestRecoverDirectoriesIgnoresObsoleteRuns(t *testing.T) {
	// Use a store with plenty of spare blocks so that obsolete (merged-away)
	// runs linger on flash instead of being erased, then check recovery does
	// not resurrect them.
	h := newHarness(t, 64, 16, 256, 128, func(c *Config) { c.PartitionFactor = 1 })
	m := newModel(16)
	populate(t, h, m, 8000, 12)
	if err := h.g.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.g.Stats().Merges == 0 {
		t.Fatal("test setup: expected merges to have produced obsolete runs")
	}

	h.g.CrashRAM()
	if err := h.g.RecoverDirectories(); err != nil {
		t.Fatal(err)
	}
	// Each level holds at most one run after recovery.
	for level, runs := range h.g.levels {
		if len(runs) > 1 {
			t.Errorf("level %d holds %d runs after recovery", level, len(runs))
		}
	}
	for b := 0; b < 64; b++ {
		got, _ := h.g.Query(flash.BlockID(b))
		if !got.Equal(m.query(flash.BlockID(b))) {
			t.Fatalf("block %d answer changed after recovery", b)
		}
	}
}

func TestRecoverDirectoriesAccountsSpareReads(t *testing.T) {
	h := newHarness(t, 64, 16, 256, 32, nil)
	populate(t, h, nil, 3000, 13)
	h.g.Flush()
	before := h.dev.Counters()
	h.g.CrashRAM()
	if err := h.g.RecoverDirectories(); err != nil {
		t.Fatal(err)
	}
	delta := h.dev.Counters().Sub(before)
	spareReads := delta.Count(flash.OpSpareRead, flash.PurposePageValidity)
	wantScan := int64(32 * 16) // one spare read per page of every Gecko block
	if spareReads != wantScan {
		t.Errorf("recovery spare reads = %d, want %d", spareReads, wantScan)
	}
	// Directory recovery must not read or write full pages.
	if delta.TotalOp(flash.OpPageWrite) != 0 {
		t.Errorf("recovery performed %d page writes", delta.TotalOp(flash.OpPageWrite))
	}
	if delta.TotalOp(flash.OpPageRead) != 0 {
		t.Errorf("recovery performed %d page reads", delta.TotalOp(flash.OpPageRead))
	}
}

func TestRecoverAfterRecoveryContinuesOperating(t *testing.T) {
	h := newHarness(t, 64, 16, 256, 64, nil)
	m := newModel(16)
	populate(t, h, m, 4000, 14)
	h.g.Flush()
	h.g.CrashRAM()
	if err := h.g.RecoverDirectories(); err != nil {
		t.Fatal(err)
	}
	// The structure must keep absorbing updates, flushing and merging
	// correctly after recovery (run IDs and sequence numbers must not
	// collide with pre-crash runs).
	populate(t, h, m, 4000, 15)
	for b := 0; b < 64; b++ {
		got, _ := h.g.Query(flash.BlockID(b))
		if !got.Equal(m.query(flash.BlockID(b))) {
			t.Fatalf("block %d diverged after post-recovery workload", b)
		}
	}
}

func TestNewestRunWriteSeq(t *testing.T) {
	h := newHarness(t, 64, 16, 512, 8, nil)
	seq, err := h.g.NewestRunWriteSeq()
	if err != nil || seq != 0 {
		t.Errorf("empty structure NewestRunWriteSeq = %d, %v; want 0, nil", seq, err)
	}
	populate(t, h, nil, 2000, 16)
	h.g.Flush()
	seq, err = h.g.NewestRunWriteSeq()
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Error("NewestRunWriteSeq = 0 after flushes")
	}
	if seq > h.dev.GlobalWriteSeq() {
		t.Errorf("NewestRunWriteSeq %d exceeds device write seq %d", seq, h.dev.GlobalWriteSeq())
	}
}

func TestRecoverDirectoriesRequiresBlockLister(t *testing.T) {
	// A store that is not a BlockLister cannot support recovery.
	h := newHarness(t, 16, 16, 512, 4, nil)
	g, err := New(h.cfg, nonListingStore{h.store})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RecoverDirectories(); err == nil {
		t.Error("recovery without a BlockLister store did not fail")
	}
}

// nonListingStore hides the BlockLister implementation of the wrapped store.
type nonListingStore struct {
	inner *metastore.BlockStore
}

func (s nonListingStore) Append(spare flash.SpareArea) (flash.PPN, error) {
	return s.inner.Append(spare)
}
func (s nonListingStore) Read(ppn flash.PPN) error { return s.inner.Read(ppn) }
func (s nonListingStore) ReadSpare(ppn flash.PPN) (flash.SpareArea, bool, error) {
	return s.inner.ReadSpare(ppn)
}
func (s nonListingStore) Invalidate(ppn flash.PPN) error { return s.inner.Invalidate(ppn) }
