package gecko

import (
	"testing"

	"geckoftl/internal/flash"
)

func TestScanValidityMatchesPerBlockQueries(t *testing.T) {
	h := newHarness(t, 128, 16, 256, 64, nil)
	m := newModel(16)
	populate(t, h, m, 12000, 51)

	scan, err := h.g.ScanValidity()
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 128; b++ {
		want := m.query(flash.BlockID(b))
		got, ok := scan[flash.BlockID(b)]
		if !ok {
			if want.Any() {
				t.Fatalf("block %d missing from scan, model has %v", b, want.SetBits())
			}
			continue
		}
		if !got.Equal(want) {
			t.Fatalf("block %d: scan=%v model=%v", b, got.SetBits(), want.SetBits())
		}
	}
}

func TestScanValidityReadsEachLivePageOnce(t *testing.T) {
	h := newHarness(t, 128, 16, 256, 64, nil)
	populate(t, h, nil, 8000, 52)
	h.g.Flush()
	live := h.g.FlashPages()
	before := h.dev.Counters()
	if _, err := h.g.ScanValidity(); err != nil {
		t.Fatal(err)
	}
	delta := h.dev.Counters().Sub(before)
	if got := delta.Count(flash.OpPageRead, flash.PurposePageValidity); got != int64(live) {
		t.Errorf("scan read %d pages, want one per live page (%d)", got, live)
	}
	if delta.TotalOp(flash.OpPageWrite) != 0 {
		t.Error("scan performed writes")
	}
}

func TestScanValidityIncludesBufferedEntries(t *testing.T) {
	h := newHarness(t, 32, 16, 512, 8, nil)
	// Only buffered updates, no flush yet.
	h.g.Update(flash.Addr{Block: 3, Offset: 5})
	h.g.Update(flash.Addr{Block: 3, Offset: 9})
	scan, err := h.g.ScanValidity()
	if err != nil {
		t.Fatal(err)
	}
	got := scan[3]
	if got == nil || got.PopCount() != 2 || !got.Get(5) || !got.Get(9) {
		t.Fatalf("scan of buffered-only state = %v", got)
	}
}

func TestScanValidityHonorsEraseFlags(t *testing.T) {
	h := newHarness(t, 64, 16, 256, 32, nil)
	m := newModel(16)
	populate(t, h, m, 5000, 53)
	// Erase a block with flash-resident history, then add one fresh update.
	if err := h.g.RecordErase(7); err != nil {
		t.Fatal(err)
	}
	m.erase(7)
	if err := h.g.Update(flash.Addr{Block: 7, Offset: 2}); err != nil {
		t.Fatal(err)
	}
	m.update(flash.Addr{Block: 7, Offset: 2})
	scan, err := h.g.ScanValidity()
	if err != nil {
		t.Fatal(err)
	}
	got := scan[7]
	if got == nil || !got.Equal(m.query(7)) {
		t.Fatalf("block 7 after erase: scan=%v model=%v", got, m.query(7).SetBits())
	}
}
