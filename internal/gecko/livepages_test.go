package gecko

import (
	"testing"

	"geckoftl/internal/flash"
)

func TestLivePagesMatchFlashPages(t *testing.T) {
	h := newHarness(t, 64, 16, 256, 32, nil)
	populate(t, h, nil, 6000, 71)
	pages := h.g.LivePages()
	if len(pages) != h.g.FlashPages() {
		t.Errorf("LivePages = %d entries, FlashPages = %d", len(pages), h.g.FlashPages())
	}
	seen := map[flash.PPN]bool{}
	for _, ppn := range pages {
		if seen[ppn] {
			t.Fatalf("page %d listed twice", ppn)
		}
		seen[ppn] = true
		if !h.g.IsLive(ppn) {
			t.Fatalf("LivePages entry %d not reported live by IsLive", ppn)
		}
	}
}

func TestRelocatePreservesQueries(t *testing.T) {
	h := newHarness(t, 64, 16, 256, 64, nil)
	m := newModel(16)
	populate(t, h, m, 6000, 72)
	if err := h.g.Flush(); err != nil {
		t.Fatal(err)
	}
	pages := h.g.LivePages()
	if len(pages) == 0 {
		t.Fatal("no live pages to relocate")
	}

	// Simulate a greedy garbage-collector moving a live Gecko page: write a
	// copy elsewhere in the store and tell the structure about it.
	old := pages[0]
	spare, ok, err := h.store.ReadSpare(old)
	if err != nil || !ok {
		t.Fatal(err)
	}
	newPPN, err := h.store.Append(spare)
	if err != nil {
		t.Fatal(err)
	}
	if !h.g.Relocate(old, newPPN) {
		t.Fatal("Relocate reported the live page as unknown")
	}
	if h.g.IsLive(old) || !h.g.IsLive(newPPN) {
		t.Error("liveness not transferred by Relocate")
	}
	// Relocating an unknown page is a no-op.
	if h.g.Relocate(old, newPPN) {
		t.Error("Relocate of a stale page succeeded")
	}

	// Every query still answers correctly after the relocation.
	for b := 0; b < 64; b++ {
		got, err := h.g.Query(flash.BlockID(b))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m.query(flash.BlockID(b))) {
			t.Fatalf("block %d diverged after relocation", b)
		}
	}
}
