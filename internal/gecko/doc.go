// Package gecko implements Logarithmic Gecko, the write-optimized
// flash-resident index of page-validity metadata that is the central
// contribution of the GeckoFTL paper (Section 3).
//
// Logarithmic Gecko replaces the Page Validity Bitmap (PVB). It supports two
// operations: updates, issued whenever a flash page becomes invalid, and
// garbage-collection (GC) queries, issued by the garbage-collector to learn
// which pages of a victim block are invalid. Updates are buffered in
// integrated RAM and flushed to flash as sorted runs that are merged in the
// background, LSM-tree style, so that a GC query costs one flash read per
// level while an update costs only a small fraction of a flash write.
//
// # Mapping to the paper
//
//   - Gecko.Update and Gecko.RecordErase are the paper's update paths
//     (Algorithms 1 and 2): buffered in RAM, flushed as sorted runs.
//   - Gecko.Query serves GC queries by merging the buffer and one run per
//     level (Section 3.2).
//   - Entry partitioning (Config.PartitionFactor, Section 3.3) splits each
//     block's validity bitmap into S sub-entries so that write-amplification
//     becomes independent of the block size B (Figure 10).
//   - The merge machinery implements the two-way leveling merge of
//     Section 3.2 and the multi-way variant of Appendix A.
//   - Gecko.RecoverDirectories rebuilds the RAM-resident run directories and the
//     buffer's protected state after power failure (Appendix C.2).
//
// Within an FTL, one Gecko instance serves as the validity store of a single
// flash plane or engine shard; its state is guarded by the owning shard's
// lock.
package gecko
