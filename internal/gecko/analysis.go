package gecko

import "math"

// CostModel holds the analytical per-operation IO costs of Table 1 of the
// paper for a page-validity scheme. Costs are expressed in flash reads and
// flash writes per operation; fractional values arise from amortization.
type CostModel struct {
	// UpdateReads and UpdateWrites are the amortized flash reads and writes
	// caused by one update (one page invalidation report).
	UpdateReads, UpdateWrites float64
	// QueryReads and QueryWrites are the flash reads and writes caused by
	// one garbage-collection operation (the GC query plus, for Logarithmic
	// Gecko, the erase-flag insertion it performs).
	QueryReads, QueryWrites float64
	// RAMBytes is the integrated RAM the scheme needs.
	RAMBytes int64
}

// WriteAmplification returns the scheme's contribution to write-amplification
// for a workload in which every logical write produces one page-validity
// update and gcPerWrite garbage-collection operations, with delta the
// write/read latency ratio.
func (m CostModel) WriteAmplification(gcPerWrite, delta float64) float64 {
	if delta <= 0 {
		delta = 1
	}
	perUpdate := m.UpdateWrites + m.UpdateReads/delta
	perGC := m.QueryWrites + m.QueryReads/delta
	return perUpdate + gcPerWrite*perGC
}

// AnalyticalCost returns the Table 1 cost model of this Logarithmic Gecko
// configuration.
//
// An update is amortized over the merges the entry participates in: each
// merge copies V entries per flash write, each entry participates in O(T)
// merges per level, and it crosses L = log_T(K*S/V) levels, so the amortized
// update cost is (T/V)*L reads and writes. A GC query reads one page per
// level and inserts one erase entry, whose cost equals an update's.
func (c Config) AnalyticalCost() CostModel {
	t := float64(c.SizeRatio)
	v := float64(c.EntriesPerPage())
	l := float64(c.Levels())
	perEntry := t / v * l
	return CostModel{
		UpdateReads:  perEntry,
		UpdateWrites: perEntry,
		QueryReads:   l,
		QueryWrites:  perEntry,
		RAMBytes:     c.AnalyticalRAMBytes(),
	}
}

// AnalyticalRAMBytes returns the Appendix B estimate of the integrated RAM
// needed by Logarithmic Gecko: the run directories (two 4-byte integers per
// Gecko page, and at most 2*K*S/V Gecko pages exist) plus the flush buffer
// (one flash page), plus the additional merge buffers when multi-way merging
// is enabled.
func (c Config) AnalyticalRAMBytes() int64 {
	geckoPages := 2 * float64(c.MaxEntries()) / float64(c.EntriesPerPage())
	directories := int64(math.Ceil(geckoPages)) * 8
	buffers := int64(c.PageSize) * 1
	if c.MultiWayMerge {
		buffers = int64(c.PageSize) * int64(2+c.Levels())
	}
	return directories + buffers
}

// FlashPVBCost returns the Table 1 cost model of the baseline that stores the
// Page Validity Bitmap in flash (the µ-FTL approach): every update reads and
// rewrites one PVB page, every GC query reads one PVB page, and the only
// integrated RAM needed is a directory of PVB page locations.
func FlashPVBCost(blocks, pagesPerBlock, pageSize int) CostModel {
	pvbBytes := int64(blocks) * int64(pagesPerBlock) / 8
	pvbPages := float64(pvbBytes) / float64(pageSize)
	return CostModel{
		UpdateReads:  1,
		UpdateWrites: 1,
		QueryReads:   1,
		QueryWrites:  0,
		RAMBytes:     int64(math.Ceil(pvbPages)) * 8,
	}
}

// RAMPVBCost returns the Table 1 cost model of the baseline that keeps the
// Page Validity Bitmap in integrated RAM (the DFTL / LazyFTL approach): no
// IO at all, but B*K/8 bytes of integrated RAM.
func RAMPVBCost(blocks, pagesPerBlock int) CostModel {
	return CostModel{
		RAMBytes: int64(blocks) * int64(pagesPerBlock) / 8,
	}
}

// SpaceAmplificationBound returns the worst-case ratio between the flash
// space Logarithmic Gecko occupies and the space of a single fully-merged
// run. Because the largest run holds one entry per (block, sub-key) and the
// smaller levels sum to at most the same size, the bound is 2 for any T
// (Section 3.2, "Space-Amplification").
func (c Config) SpaceAmplificationBound() float64 { return 2 }

// OptimalSizeRatio returns the size ratio minimizing the analytical
// write-amplification for the given GC-query-to-update ratio and write/read
// cost asymmetry. The paper's Section 5.1 finds T = 2 for its default
// configuration; this helper lets the tuning example explore other regimes.
func OptimalSizeRatio(cfg Config, gcPerWrite, delta float64, maxT int) int {
	bestT, bestWA := 2, math.Inf(1)
	for t := 2; t <= maxT; t++ {
		c := cfg
		c.SizeRatio = t
		wa := c.AnalyticalCost().WriteAmplification(gcPerWrite, delta)
		if wa < bestWA {
			bestT, bestWA = t, wa
		}
	}
	return bestT
}
