package gecko

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(1<<16, 128, 4096)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.SizeRatio != 2 {
		t.Errorf("default T = %d, want 2", cfg.SizeRatio)
	}
	// With B = 128 and 4-byte keys the recommended partition factor is
	// 128/32 = 4, as in the paper's Section 3.3 example.
	if cfg.PartitionFactor != 4 {
		t.Errorf("default S = %d, want 4", cfg.PartitionFactor)
	}
	if cfg.String() == "" {
		t.Error("empty String")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig(1024, 128, 4096)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero blocks", func(c *Config) { c.Blocks = 0 }},
		{"zero pages per block", func(c *Config) { c.PagesPerBlock = 0 }},
		{"zero page size", func(c *Config) { c.PageSize = 0 }},
		{"size ratio 1", func(c *Config) { c.SizeRatio = 1 }},
		{"zero key bytes", func(c *Config) { c.KeyBytes = 0 }},
		{"zero partition factor", func(c *Config) { c.PartitionFactor = 0 }},
		{"partition factor above B", func(c *Config) { c.PartitionFactor = c.PagesPerBlock + 1 }},
		{"negative buffer limit", func(c *Config) { c.BufferLimit = -1 }},
		{"page too small for an entry", func(c *Config) { c.PageSize = 1; c.PartitionFactor = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestEntrySizing(t *testing.T) {
	// Without partitioning: key 4 bytes + 3 header + B/8 bitmap bytes.
	cfg := DefaultConfig(1024, 128, 4096)
	cfg.PartitionFactor = 1
	if got, want := cfg.BitsPerEntry(), 128; got != want {
		t.Errorf("BitsPerEntry = %d, want %d", got, want)
	}
	if got, want := cfg.EntryBytes(), 4+3+16; got != want {
		t.Errorf("EntryBytes = %d, want %d", got, want)
	}
	if got, want := cfg.EntriesPerPage(), 4096/23; got != want {
		t.Errorf("EntriesPerPage = %d, want %d", got, want)
	}

	// With the recommended partitioning (S=4): chunks of 32 bits.
	cfg.PartitionFactor = 4
	if got, want := cfg.BitsPerEntry(), 32; got != want {
		t.Errorf("partitioned BitsPerEntry = %d, want %d", got, want)
	}
	if got, want := cfg.EntryBytes(), 4+3+4; got != want {
		t.Errorf("partitioned EntryBytes = %d, want %d", got, want)
	}
	// Partitioning increases V substantially.
	if cfg.EntriesPerPage() <= 4096/23 {
		t.Error("partitioning did not increase entries per page")
	}
}

func TestPartitioningMakesEntrySizeIndependentOfB(t *testing.T) {
	// The whole point of Section 3.3: with recommended S, the entry size
	// (and therefore V and the update cost) does not grow with B.
	sizes := map[int]bool{}
	for _, b := range []int{64, 128, 256, 512} {
		cfg := DefaultConfig(1024, b, 4096)
		sizes[cfg.EntryBytes()] = true
	}
	if len(sizes) != 1 {
		t.Errorf("entry sizes vary with B under recommended partitioning: %v", sizes)
	}
}

func TestLevels(t *testing.T) {
	cfg := DefaultConfig(1<<16, 128, 4096)
	cfg.PartitionFactor = 1
	v := cfg.EntriesPerPage()
	l := cfg.Levels()
	// L = ceil(log_T(K/V)); check the bound T^(L-1) < K/V <= T^L.
	ratio := float64(cfg.Blocks) / float64(v)
	lower, upper := 1.0, 1.0
	for i := 0; i < l-1; i++ {
		lower *= float64(cfg.SizeRatio)
	}
	for i := 0; i < l; i++ {
		upper *= float64(cfg.SizeRatio)
	}
	if !(lower < ratio && ratio <= upper) {
		t.Errorf("Levels = %d does not bracket K/V = %.1f (T^%d=%.0f, T^%d=%.0f)", l, ratio, l-1, lower, l, upper)
	}
	// A tiny device fits in a single level.
	small := DefaultConfig(4, 128, 4096)
	if small.Levels() != 1 {
		t.Errorf("tiny device Levels = %d, want 1", small.Levels())
	}
}

func TestLevelOfRunPages(t *testing.T) {
	cfg := DefaultConfig(1024, 128, 4096)
	cfg.SizeRatio = 2
	cases := []struct{ pages, level int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1024, 10},
	}
	for _, c := range cases {
		if got := cfg.LevelOfRunPages(c.pages); got != c.level {
			t.Errorf("LevelOfRunPages(%d) = %d, want %d", c.pages, got, c.level)
		}
	}
	cfg.SizeRatio = 4
	if got := cfg.LevelOfRunPages(15); got != 1 {
		t.Errorf("T=4 LevelOfRunPages(15) = %d, want 1", got)
	}
	if got := cfg.LevelOfRunPages(16); got != 2 {
		t.Errorf("T=4 LevelOfRunPages(16) = %d, want 2", got)
	}
}

func TestLargestRunPages(t *testing.T) {
	cfg := DefaultConfig(1<<12, 128, 4096)
	want := (int(cfg.MaxEntries()) + cfg.EntriesPerPage() - 1) / cfg.EntriesPerPage()
	if got := cfg.LargestRunPages(); got != want {
		t.Errorf("LargestRunPages = %d, want %d", got, want)
	}
}

// Property: LevelOfRunPages is consistent with the level bounds
// T^i <= pages < T^(i+1).
func TestQuickLevelBounds(t *testing.T) {
	f := func(pagesRaw uint16, tRaw uint8) bool {
		pages := int(pagesRaw)%4096 + 1
		ratio := int(tRaw)%8 + 2
		cfg := DefaultConfig(1024, 128, 4096)
		cfg.SizeRatio = ratio
		level := cfg.LevelOfRunPages(pages)
		lower := 1
		for i := 0; i < level; i++ {
			lower *= ratio
		}
		return pages >= lower && pages < lower*ratio
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyticalCostModel(t *testing.T) {
	cfg := DefaultConfig(1<<20, 128, 4096)
	m := cfg.AnalyticalCost()
	// Updates must be sub-constant: far cheaper than one flash write.
	if m.UpdateWrites >= 1 || m.UpdateWrites <= 0 {
		t.Errorf("amortized update writes = %v, want in (0,1)", m.UpdateWrites)
	}
	// Queries cost one read per level.
	if m.QueryReads != float64(cfg.Levels()) {
		t.Errorf("query reads = %v, want %d", m.QueryReads, cfg.Levels())
	}
	// Logarithmic Gecko must beat the flash PVB baseline on
	// write-amplification for the paper's default workload parameters
	// (GC queries ~100x rarer than updates, delta = 10).
	pvb := FlashPVBCost(1<<20, 128, 4096)
	gcPerWrite, delta := 0.01, 10.0
	if gWA, pWA := m.WriteAmplification(gcPerWrite, delta), pvb.WriteAmplification(gcPerWrite, delta); gWA >= pWA {
		t.Errorf("gecko WA %v not below flash-PVB WA %v", gWA, pWA)
	}
	// And the RAM-resident PVB needs orders of magnitude more RAM.
	ram := RAMPVBCost(1<<20, 128)
	if ram.RAMBytes <= 20*m.RAMBytes {
		t.Errorf("RAM PVB %d bytes not >> gecko %d bytes", ram.RAMBytes, m.RAMBytes)
	}
}

func TestWriteAmplificationDefaultsDelta(t *testing.T) {
	m := CostModel{UpdateReads: 1, UpdateWrites: 1}
	if got := m.WriteAmplification(0, 0); got != 2 {
		t.Errorf("WA with delta<=0 = %v, want reads counted at full cost (2)", got)
	}
}

func TestOptimalSizeRatioPrefersSmallTForWriteHeavyWorkloads(t *testing.T) {
	cfg := DefaultConfig(1<<22, 128, 4096)
	// The paper's regime: updates dominate GC queries, writes cost 10x
	// reads. The update cost T*log_T(N) is analytically minimized near
	// T = e, so the optimum must be 2 or 3, and write-amplification must
	// grow monotonically for the larger ratios Figure 9 sweeps.
	got := OptimalSizeRatio(cfg, 0.01, 10, 32)
	if got != 2 && got != 3 {
		t.Errorf("optimal T = %d, want 2 or 3", got)
	}
	was := make(map[int]float64)
	for _, ratio := range []int{2, 8, 32} {
		c := cfg
		c.SizeRatio = ratio
		was[ratio] = c.AnalyticalCost().WriteAmplification(0.01, 10)
	}
	if !(was[2] < was[8] && was[8] < was[32]) {
		t.Errorf("write-amplification not increasing in T: %v", was)
	}
	// In a hypothetical regime where GC queries vastly dominate, larger T
	// (fewer levels) must win.
	if got := OptimalSizeRatio(cfg, 100, 10, 32); got <= 3 {
		t.Errorf("optimal T for query-heavy regime = %d, want > 3", got)
	}
}

func TestSpaceAmplificationBound(t *testing.T) {
	if got := DefaultConfig(1024, 128, 4096).SpaceAmplificationBound(); got != 2 {
		t.Errorf("space amplification bound = %v, want 2", got)
	}
}

func TestAnalyticalRAMIsTinyComparedToPVB(t *testing.T) {
	// The headline claim: a 95% reduction in integrated RAM.
	blocks, b, p := 1<<22, 128, 4096
	gecko := DefaultConfig(blocks, b, p).AnalyticalRAMBytes()
	pvb := RAMPVBCost(blocks, b).RAMBytes
	reduction := 1 - float64(gecko)/float64(pvb)
	if reduction < 0.95 {
		t.Errorf("RAM reduction vs RAM-resident PVB = %.3f, want >= 0.95", reduction)
	}
}
