package gecko

import (
	"fmt"

	"geckoftl/internal/flash"
)

// RunPageExport is the serializable directory entry for one run page: its
// physical location and packed key range. The page's entry content is not
// exported — it is flash-resident and survives on the device; import
// relinks it by physical address exactly as crash recovery does.
type RunPageExport struct {
	PPN    int64
	MinKey uint32
	MaxKey uint32
}

// RunExport is the serializable form of one run's RAM directory.
type RunExport struct {
	ID        uint64
	CreateSeq uint64
	Level     int
	Pages     []RunPageExport
}

// ExportDirectories snapshots the run directories for a checkpoint, in
// deterministic order: levels ascending, runs in placement order within a
// level. Only directory state is exported; the buffer must have been
// flushed first (Flush), which is the checkpoint writer's responsibility.
func (g *Gecko) ExportDirectories() []RunExport {
	var out []RunExport
	for _, level := range g.levels {
		for _, r := range level {
			re := RunExport{
				ID:        r.id,
				CreateSeq: r.createSeq,
				Level:     r.level,
				Pages:     make([]RunPageExport, 0, len(r.pages)),
			}
			for i := range r.pages {
				p := &r.pages[i]
				re.Pages = append(re.Pages, RunPageExport{
					PPN:    int64(p.ppn),
					MinKey: packKey(p.minKey),
					MaxKey: packKey(p.maxKey),
				})
			}
			out = append(out, re)
		}
	}
	return out
}

// ValidateDirectories checks an exported run set against this instance
// without mutating anything: every run must be well-formed and every page
// must have surviving flash content to relink. A checkpoint that passes
// validation is importable; one that fails must fall back to
// RecoverDirectories.
func (g *Gecko) ValidateDirectories(runs []RunExport) error {
	content := g.flashImage()
	seenID := make(map[uint64]bool, len(runs))
	for _, re := range runs {
		if seenID[re.ID] {
			return fmt.Errorf("gecko: checkpoint repeats run %d", re.ID)
		}
		seenID[re.ID] = true
		if re.Level < 0 || re.Level > g.cfg.Levels() {
			return fmt.Errorf("gecko: checkpoint run %d at level %d of %d", re.ID, re.Level, g.cfg.Levels())
		}
		if len(re.Pages) == 0 {
			return fmt.Errorf("gecko: checkpoint run %d has no pages", re.ID)
		}
		if sizeLevel := g.cfg.LevelOfRunPages(len(re.Pages)); sizeLevel > re.Level {
			return fmt.Errorf("gecko: checkpoint run %d of %d pages cannot sit at level %d", re.ID, len(re.Pages), re.Level)
		}
		for _, p := range re.Pages {
			if _, ok := content[flash.PPN(p.PPN)]; !ok {
				return fmt.Errorf("gecko: checkpoint run %d references page %d with no content", re.ID, p.PPN)
			}
		}
	}
	return nil
}

// ImportDirectories replaces the RAM run directories with an exported set,
// relinking page content from the surviving flash image and ratcheting the
// run-ID and creation-sequence counters, exactly as RecoverDirectories
// does — but without the spare-area scan. The set is validated first; on
// error nothing has been mutated.
func (g *Gecko) ImportDirectories(runs []RunExport) error {
	if err := g.ValidateDirectories(runs); err != nil {
		return err
	}
	content := g.flashImage()
	g.levels = make([][]*run, g.cfg.Levels()+1)
	for _, re := range runs {
		r := &run{id: re.ID, createSeq: re.CreateSeq, level: re.Level}
		for _, p := range re.Pages {
			ppn := flash.PPN(p.PPN)
			r.pages = append(r.pages, runPage{
				ppn:     ppn,
				minKey:  unpackKey(p.MinKey),
				maxKey:  unpackKey(p.MaxKey),
				entries: content[ppn],
			})
		}
		if re.CreateSeq > g.seq {
			g.seq = re.CreateSeq
		}
		if re.ID >= g.nextRunID {
			g.nextRunID = re.ID + 1
		}
		g.placeRun(r)
	}
	return nil
}
