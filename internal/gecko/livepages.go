package gecko

import "geckoftl/internal/flash"

// LivePages returns the physical addresses of every flash page currently
// occupied by a live run. The FTL's recovery procedure uses it to rebuild the
// Blocks Validity Counter entries of metadata blocks, and the examples use it
// to report space usage.
func (g *Gecko) LivePages() []flash.PPN {
	var out []flash.PPN
	for _, lvl := range g.levels {
		for _, r := range lvl {
			for i := range r.pages {
				out = append(out, r.pages[i].ppn)
			}
		}
	}
	return out
}

// IsLive reports whether the given flash page belongs to a live run.
// GeckoFTL's metadata-aware garbage-collector never needs this (it never
// targets metadata blocks), but the greedy-policy ablation does: a greedy
// collector that picks a Gecko block must know which of its pages to migrate.
func (g *Gecko) IsLive(ppn flash.PPN) bool {
	_, ok := g.pageContent[ppn]
	return ok
}

// Relocate informs the structure that the garbage-collector moved one of its
// live run pages to a new location, updating the run directory and the flash
// image. It reports whether the old location was live.
func (g *Gecko) Relocate(old, new flash.PPN) bool {
	content, ok := g.pageContent[old]
	if !ok {
		return false
	}
	for _, lvl := range g.levels {
		for _, r := range lvl {
			for i := range r.pages {
				if r.pages[i].ppn == old {
					r.pages[i].ppn = new
					delete(g.pageContent, old)
					g.pageContent[new] = content
					return true
				}
			}
		}
	}
	return false
}
