package gecko

import (
	"fmt"

	"geckoftl/internal/flash"
)

// runPage is one flash page of a run: up to V entries sorted by key, plus the
// key range used by the run directory to route GC queries to the single page
// that may contain a given block.
type runPage struct {
	ppn     flash.PPN
	minKey  key
	maxKey  key
	entries []Entry
}

// run is a sorted run of Gecko entries stored in flash, together with its
// RAM-resident run directory (the per-page key ranges and physical
// locations). The entries slices model the flash content of the run's pages;
// the directory fields are what is lost at power failure and recovered by
// Appendix C.1.
type run struct {
	id        uint64
	level     int
	createSeq uint64
	pages     []runPage
}

// entryCount returns the total number of entries in the run.
func (r *run) entryCount() int {
	n := 0
	for i := range r.pages {
		n += len(r.pages[i].entries)
	}
	return n
}

// packKey encodes a composite (block, sub-key) into 32 bits for storage in a
// spare area: block in the high bits, sub-key+1 in the low 8 bits so that
// WholeBlock (-1) encodes as 0.
func packKey(k key) uint32 {
	return uint32(k.block)<<8 | uint32(k.subKey+1)&0xff
}

// unpackKey reverses packKey.
func unpackKey(v uint32) key {
	return key{block: flash.BlockID(v >> 8), subKey: int(v&0xff) - 1}
}

// runPageMeta is the decoded form of a run page's spare area.
type runPageMeta struct {
	runID      uint64
	pageIndex  int
	totalPages int
	minKey     key
	maxKey     key
	writeSeq   uint64
	ppn        flash.PPN
}

// encodeRunPageSpare packs run-page metadata into a spare area. It carries
// everything Appendix C.1 needs to rebuild run directories from a spare-area
// scan: the run ID, the page's index and the run's total page count (to
// detect partially written runs), and the page's key range. The run's level
// is not stored; recovery derives it from the total page count via
// Config.LevelOfRunPages. The layout uses the two free-form 64-bit fields of
// the simulated spare area:
//
//	Tag = runID (32 bits) | pageIndex (16 bits) | totalPages (16 bits)
//	Aux = packed minKey (32 bits) | packed maxKey (32 bits)
func encodeRunPageSpare(runID uint64, pageIndex, totalPages int, minKey, maxKey key) flash.SpareArea {
	return flash.SpareArea{
		Logical:   flash.InvalidLPN,
		BlockType: flash.BlockGecko,
		Tag:       (runID&0xffffffff)<<32 | uint64(pageIndex&0xffff)<<16 | uint64(totalPages&0xffff),
		Aux:       uint64(packKey(minKey))<<32 | uint64(packKey(maxKey)),
	}
}

// decodeRunPageSpare reverses encodeRunPageSpare.
func decodeRunPageSpare(spare flash.SpareArea, ppn flash.PPN) runPageMeta {
	return runPageMeta{
		runID:      spare.Tag >> 32,
		pageIndex:  int(spare.Tag >> 16 & 0xffff),
		totalPages: int(spare.Tag & 0xffff),
		minKey:     unpackKey(uint32(spare.Aux >> 32)),
		maxKey:     unpackKey(uint32(spare.Aux)),
		writeSeq:   spare.WriteSeq,
		ppn:        ppn,
	}
}

// splitIntoPages partitions sorted entries into consecutive groups of at most
// V entries, computing each group's key range.
func splitIntoPages(entries []Entry, v int) []runPage {
	if len(entries) == 0 {
		return nil
	}
	pages := make([]runPage, 0, (len(entries)+v-1)/v)
	for start := 0; start < len(entries); start += v {
		end := start + v
		if end > len(entries) {
			end = len(entries)
		}
		group := entries[start:end]
		pages = append(pages, runPage{
			minKey:  group[0].key(),
			maxKey:  group[len(group)-1].key(),
			entries: group,
		})
	}
	return pages
}

// directoryLookup returns the index of the page of r whose key range may
// contain entries for the given block, or -1 when no page overlaps it. Run
// directories let a GC query read at most one page per run.
func (r *run) directoryLookup(block flash.BlockID) int {
	lo := key{block, WholeBlock}
	hi := key{block, int(^uint(0) >> 1)}
	for i := range r.pages {
		p := &r.pages[i]
		if p.maxKey.less(lo) {
			continue
		}
		if hi.less(p.minKey) {
			return -1
		}
		return i
	}
	return -1
}

// directoryLookupAll returns the indices of every page of r whose key range
// overlaps the block. With entry-partitioning a block's sub-entries can
// straddle a page boundary, in which case a GC query must read both pages.
func (r *run) directoryLookupAll(block flash.BlockID) []int {
	lo := key{block, WholeBlock}
	hi := key{block, int(^uint(0) >> 1)}
	var out []int
	for i := range r.pages {
		p := &r.pages[i]
		if p.maxKey.less(lo) {
			continue
		}
		if hi.less(p.minKey) {
			break
		}
		out = append(out, i)
	}
	return out
}

// entriesForBlock returns the entries of a single run page that belong to the
// block, and whether one of them carries the erase flag.
func (p *runPage) entriesForBlock(block flash.BlockID) (chunks []Entry, erased bool) {
	for i := range p.entries {
		e := &p.entries[i]
		if e.Block != block {
			continue
		}
		if e.EraseFlag {
			erased = true
		}
		if e.SubKey != WholeBlock {
			chunks = append(chunks, e.Clone())
		}
	}
	return chunks, erased
}

// ramBytes returns the integrated-RAM footprint of the run's directory: one
// (key range, physical address) record per page, 2*4 bytes of key bounds plus
// 8 bytes of address, matching the Appendix B accounting of two I4 integers
// per directory entry (the paper charges 8 bytes; we charge the full 16 to be
// conservative about the packed key bounds).
func (r *run) ramBytes() int64 {
	return int64(len(r.pages)) * 16
}

func (r *run) String() string {
	return fmt.Sprintf("run(id=%d level=%d pages=%d entries=%d)", r.id, r.level, len(r.pages), r.entryCount())
}
