package gecko

import (
	"fmt"
	"sort"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// Stats counts Logarithmic Gecko's logical operations. Flash IO is accounted
// by the device counters under flash.PurposePageValidity; these counters
// describe the data structure's own activity.
type Stats struct {
	// Updates is the number of invalid-page reports (Algorithm 1 calls).
	Updates int64
	// Erases is the number of block-erase reports (Algorithm 2 calls).
	Erases int64
	// Queries is the number of GC queries served.
	Queries int64
	// Flushes is the number of buffer flushes to level 0.
	Flushes int64
	// Merges is the number of merge operations performed.
	Merges int64
	// MergedRuns is the total number of input runs consumed by merges.
	MergedRuns int64
	// QueryPageReads is the number of run pages read by GC queries.
	QueryPageReads int64
}

// Gecko is a Logarithmic Gecko instance: a RAM-resident buffer and run
// directories, plus leveled sorted runs of Gecko entries stored in flash
// through a metastore.Storage.
//
// Gecko is not safe for concurrent use; the FTL serializes access to it.
type Gecko struct {
	cfg   Config
	store metastore.Storage

	buf    *buffer
	levels [][]*run // levels[i] holds the runs currently at level i (usually 0 or 1)

	// pageContent models the flash content of live run pages, keyed by
	// physical address. The device simulator does not store payload bytes,
	// so this map is the "flash image" that survives power failures and is
	// consulted when recovery rebuilds the run directories.
	pageContent map[flash.PPN][]Entry

	nextRunID uint64
	seq       uint64 // logical creation sequence for runs
	stats     Stats
}

// New creates a Logarithmic Gecko over the given flash-backed store.
func New(cfg Config, store metastore.Storage) (*Gecko, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("gecko: nil store")
	}
	return &Gecko{
		cfg:         cfg,
		store:       store,
		buf:         newBuffer(cfg),
		levels:      make([][]*run, cfg.Levels()+1),
		pageContent: make(map[flash.PPN][]Entry),
		nextRunID:   1,
	}, nil
}

// Config returns the configuration.
func (g *Gecko) Config() Config { return g.cfg }

// Stats returns a copy of the operation counters.
func (g *Gecko) Stats() Stats { return g.stats }

// BufferLen returns the number of distinct entries currently buffered.
func (g *Gecko) BufferLen() int { return g.buf.len() }

// RunCount returns the number of live runs across all levels.
func (g *Gecko) RunCount() int {
	n := 0
	for _, lvl := range g.levels {
		n += len(lvl)
	}
	return n
}

// FlashPages returns the number of flash pages currently occupied by live
// runs. Space-amplification tests use it.
func (g *Gecko) FlashPages() int {
	n := 0
	for _, lvl := range g.levels {
		for _, r := range lvl {
			n += len(r.pages)
		}
	}
	return n
}

// RAMBytes returns the integrated-RAM footprint of the structure: the
// one-page buffer plus the run directories (Appendix B).
func (g *Gecko) RAMBytes() int64 {
	total := int64(g.cfg.PageSize)
	if g.cfg.MultiWayMerge {
		// Multi-way merging needs up to L input buffers plus one output
		// buffer (Appendix A / Appendix B, "Logarithmic Gecko's Buffers").
		total = int64(g.cfg.PageSize) * int64(2+g.cfg.Levels())
	}
	for _, lvl := range g.levels {
		for _, r := range lvl {
			total += r.ramBytes()
		}
	}
	return total
}

// Update reports that the physical page at the given address has become
// invalid (Algorithm 1). It may trigger a buffer flush and merges.
func (g *Gecko) Update(addr flash.Addr) error {
	if addr.Block < 0 || int(addr.Block) >= g.cfg.Blocks {
		return fmt.Errorf("gecko: block %d out of range [0,%d)", addr.Block, g.cfg.Blocks)
	}
	if addr.Offset < 0 || addr.Offset >= g.cfg.PagesPerBlock {
		return fmt.Errorf("gecko: page offset %d out of range [0,%d)", addr.Offset, g.cfg.PagesPerBlock)
	}
	g.stats.Updates++
	g.buf.recordInvalid(addr.Block, addr.Offset)
	return g.maybeFlush()
}

// RecordErase reports that a block has been erased (Algorithm 2), so that all
// older page-validity metadata for it becomes obsolete.
func (g *Gecko) RecordErase(block flash.BlockID) error {
	if block < 0 || int(block) >= g.cfg.Blocks {
		return fmt.Errorf("gecko: block %d out of range [0,%d)", block, g.cfg.Blocks)
	}
	g.stats.Erases++
	g.buf.recordErase(block)
	return g.maybeFlush()
}

// Query answers a GC query: it returns a bitmap with one bit per page of the
// block, where a set bit means the page is invalid. It traverses the buffer
// and then the runs from most recently created to least recently created,
// reading at most one page per run (two when a block's partitioned
// sub-entries straddle a page boundary), and stops early when it encounters
// an erase entry for the block.
func (g *Gecko) Query(block flash.BlockID) (*bitmap.Bitmap, error) {
	if block < 0 || int(block) >= g.cfg.Blocks {
		return nil, fmt.Errorf("gecko: block %d out of range [0,%d)", block, g.cfg.Blocks)
	}
	g.stats.Queries++
	result := bitmap.New(g.cfg.PagesPerBlock)

	chunks, erased := g.buf.query(block)
	g.fold(result, chunks)
	if erased {
		return result, nil
	}

	for _, r := range g.runsNewestFirst() {
		pageIdxs := r.directoryLookupAll(block)
		stop := false
		for _, pi := range pageIdxs {
			page := &r.pages[pi]
			if err := g.store.Read(page.ppn); err != nil {
				return nil, fmt.Errorf("gecko: reading run %d page %d: %w", r.id, pi, err)
			}
			g.stats.QueryPageReads++
			chunks, erased := page.entriesForBlock(block)
			g.fold(result, chunks)
			if erased {
				stop = true
			}
		}
		if stop {
			break
		}
	}
	return result, nil
}

// fold ORs partitioned chunk entries into a full-block bitmap.
func (g *Gecko) fold(result *bitmap.Bitmap, chunks []Entry) {
	bits := g.cfg.BitsPerEntry()
	for _, c := range chunks {
		if c.Bits == nil {
			continue
		}
		offset := 0
		if g.cfg.PartitionFactor > 1 {
			offset = c.SubKey * bits
		}
		// The last chunk of a block may extend past B when S does not
		// divide B; clamp it.
		width := c.Bits.Len()
		if offset+width > result.Len() {
			width = result.Len() - offset
		}
		if width <= 0 {
			continue
		}
		result.OrRange(offset, c.Bits.Slice(0, width))
	}
}

// runsNewestFirst returns all live runs ordered from most recently created to
// least recently created.
func (g *Gecko) runsNewestFirst() []*run {
	var runs []*run
	for _, lvl := range g.levels {
		runs = append(runs, lvl...)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].createSeq > runs[j].createSeq })
	return runs
}

// Flush forces the buffer to flash even if it is not full. The FTL calls it
// before a clean shutdown; tests use it to make state deterministic.
func (g *Gecko) Flush() error {
	if g.buf.len() == 0 {
		return nil
	}
	return g.flushBuffer()
}

// maybeFlush flushes the buffer when it has filled up.
func (g *Gecko) maybeFlush() error {
	if !g.buf.full() {
		return nil
	}
	return g.flushBuffer()
}

// flushBuffer writes the buffer as a new run into level 0 and triggers
// merging.
func (g *Gecko) flushBuffer() error {
	entries := g.buf.drain()
	if len(entries) == 0 {
		return nil
	}
	g.stats.Flushes++
	r, err := g.writeRun(entries)
	if err != nil {
		return err
	}
	g.placeRun(r)
	return g.mergeIfNeeded()
}

// writeRun persists a sorted slice of entries as a new run and returns it.
func (g *Gecko) writeRun(entries []Entry) (*run, error) {
	pages := splitIntoPages(entries, g.cfg.EntriesPerPage())
	g.seq++
	r := &run{
		id:        g.nextRunID,
		createSeq: g.seq,
		level:     g.cfg.LevelOfRunPages(len(pages)),
		pages:     pages,
	}
	g.nextRunID++
	for i := range r.pages {
		p := &r.pages[i]
		spare := encodeRunPageSpare(r.id, i, len(r.pages), p.minKey, p.maxKey)
		ppn, err := g.store.Append(spare)
		if err != nil {
			return nil, fmt.Errorf("gecko: writing run %d page %d: %w", r.id, i, err)
		}
		p.ppn = ppn
		g.pageContent[ppn] = p.entries
	}
	return r, nil
}

// placeRun inserts a run into the level its size dictates (but never below
// r.level, which merges set to the largest input level so that merge outputs
// are only ever promoted, keeping the newer-runs-at-smaller-levels invariant
// that directory recovery relies on), growing the level table if necessary.
func (g *Gecko) placeRun(r *run) {
	if sizeLevel := g.cfg.LevelOfRunPages(len(r.pages)); sizeLevel > r.level {
		r.level = sizeLevel
	}
	for r.level >= len(g.levels) {
		g.levels = append(g.levels, nil)
	}
	g.levels[r.level] = append(g.levels[r.level], r)
}

// mergeIfNeeded merges runs until no level holds more than one run.
// With MultiWayMerge enabled, a cascade that would touch several levels is
// collapsed into a single multi-way merge (Appendix A).
func (g *Gecko) mergeIfNeeded() error {
	for {
		level := -1
		for i := range g.levels {
			if len(g.levels[i]) >= 2 {
				level = i
				break
			}
		}
		if level < 0 {
			return nil
		}
		inputs := g.takeMergeInputs(level)
		merged, err := g.mergeRuns(inputs)
		if err != nil {
			return err
		}
		if merged != nil {
			// A merge output never drops below the largest level it consumed.
			floor := 0
			for _, in := range inputs {
				if in.level > floor {
					floor = in.level
				}
			}
			merged.level = floor
			g.placeRun(merged)
		}
	}
}

// takeMergeInputs removes and returns the runs that will participate in the
// next merge, starting from the given level. The two-way policy takes just
// the runs of that level; the multi-way policy (Appendix A) also pulls in the
// single run of each higher level that the result would cascade into.
func (g *Gecko) takeMergeInputs(level int) []*run {
	inputs := g.levels[level]
	g.levels[level] = nil
	if !g.cfg.MultiWayMerge {
		return inputs
	}
	// Foresee the cascade: if the merged run would be promoted into a level
	// that already holds a run, include that run in the same merge.
	pages := 0
	for _, r := range inputs {
		pages += len(r.pages)
	}
	for next := level + 1; next < len(g.levels); next++ {
		if len(g.levels[next]) == 0 {
			break
		}
		if g.cfg.LevelOfRunPages(pages) < next {
			break
		}
		inputs = append(inputs, g.levels[next]...)
		for _, r := range g.levels[next] {
			pages += len(r.pages)
		}
		g.levels[next] = nil
	}
	return inputs
}

// mergeRuns merges the given runs (any number >= 1) into a single new run.
// Every input page is read, the entries are sort-merged with the collision
// rules of Algorithm 3 (generalized to whole-block erase entries), the result
// is written as a new run, and the input pages are invalidated.
func (g *Gecko) mergeRuns(inputs []*run) (*run, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	g.stats.Merges++
	g.stats.MergedRuns += int64(len(inputs))

	// Read every input page (the IO cost of the merge).
	for _, r := range inputs {
		for i := range r.pages {
			if err := g.store.Read(r.pages[i].ppn); err != nil {
				return nil, fmt.Errorf("gecko: merge read of run %d: %w", r.id, err)
			}
		}
	}

	merged := mergeEntryStreams(inputs)

	// Discard the input runs: their pages are now obsolete.
	for _, r := range inputs {
		for i := range r.pages {
			if err := g.store.Invalidate(r.pages[i].ppn); err != nil {
				return nil, fmt.Errorf("gecko: invalidating run %d: %w", r.id, err)
			}
			delete(g.pageContent, r.pages[i].ppn)
		}
	}

	if len(merged) == 0 {
		return nil, nil
	}
	return g.writeRun(merged)
}

// mergeEntryStreams performs the k-way sort-merge of the input runs' entries.
// Inputs must be ordered by recency is NOT required; recency is taken from
// each run's createSeq. For every block, the newest erase entry (if any)
// discards all entries from strictly older runs; colliding chunk entries from
// surviving runs are OR-merged (Algorithm 3).
func mergeEntryStreams(inputs []*run) []Entry {
	// Order inputs newest first so that "first occurrence wins" rules are
	// easy to express.
	ordered := append([]*run(nil), inputs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].createSeq > ordered[j].createSeq })

	// cursor walks one run's entries in key order.
	type cursor struct {
		entries []Entry
		pos     int
		recency int // 0 = newest
	}
	cursors := make([]*cursor, 0, len(ordered))
	for rank, r := range ordered {
		var all []Entry
		for i := range r.pages {
			all = append(all, r.pages[i].entries...)
		}
		if len(all) > 0 {
			cursors = append(cursors, &cursor{entries: all, recency: rank})
		}
	}

	var out []Entry
	// eraseCut maps a block to the recency rank of the newest run holding an
	// erase entry for it; entries from runs older than the cut are dropped.
	// Because WholeBlock sorts before all real sub-keys, the erase entry for
	// a block is always processed before the block's chunk entries.
	eraseCut := make(map[flash.BlockID]int)

	for {
		// Find the smallest key among the cursors.
		best := -1
		var bestKey key
		for i, c := range cursors {
			if c.pos >= len(c.entries) {
				continue
			}
			k := c.entries[c.pos].key()
			if best < 0 || k.less(bestKey) {
				best = i
				bestKey = k
			}
		}
		if best < 0 {
			break
		}

		// Collect every entry with that key, newest run first.
		var colliding []*cursor
		for _, c := range cursors {
			if c.pos < len(c.entries) && c.entries[c.pos].key() == bestKey {
				colliding = append(colliding, c)
			}
		}
		sort.Slice(colliding, func(i, j int) bool { return colliding[i].recency < colliding[j].recency })

		cut, hasCut := eraseCut[bestKey.block]

		var result *Entry
		for _, c := range colliding {
			e := c.entries[c.pos]
			c.pos++
			if hasCut && c.recency > cut {
				// Entry predates the newest erase of this block.
				continue
			}
			if e.EraseFlag && e.SubKey == WholeBlock {
				if !hasCut || c.recency < cut {
					cut, hasCut = c.recency, true
					eraseCut[bestKey.block] = cut
				}
			}
			if result == nil {
				cloned := e.Clone()
				result = &cloned
				continue
			}
			merged := mergeCollision(*result, e)
			result = &merged
		}
		if result != nil {
			out = append(out, *result)
		}
	}
	return out
}
