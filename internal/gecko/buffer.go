package gecko

import (
	"sort"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
)

// buffer is the RAM-resident buffer of Logarithmic Gecko. Its capacity is one
// flash page: V entries. Updates are absorbed here and flushed to a level-0
// run when V distinct (block, sub-key) entries have accumulated.
type buffer struct {
	cfg     Config
	entries map[key]*Entry
	// inserts counts insertions (including ones absorbed by an existing
	// entry) since the last flush; it implements the optional BufferLimit
	// bound of Appendix C.2.
	inserts int
}

func newBuffer(cfg Config) *buffer {
	return &buffer{cfg: cfg, entries: make(map[key]*Entry, cfg.EntriesPerPage())}
}

// len returns the number of distinct entries currently buffered.
func (b *buffer) len() int { return len(b.entries) }

// full reports whether the buffer must be flushed: either V distinct entries
// exist (one flash page worth) or the configured absorption limit is hit.
func (b *buffer) full() bool {
	if len(b.entries) >= b.cfg.EntriesPerPage() {
		return true
	}
	return b.cfg.BufferLimit > 0 && b.inserts >= b.cfg.BufferLimit
}

// recordInvalid implements Algorithm 1: mark one page of a block invalid.
func (b *buffer) recordInvalid(block flash.BlockID, pageOffset int) {
	b.inserts++
	bits := b.cfg.BitsPerEntry()
	sub := 0
	chunkOffset := pageOffset
	if b.cfg.PartitionFactor > 1 {
		sub = pageOffset / bits
		chunkOffset = pageOffset % bits
	}
	k := key{block, sub}
	e, ok := b.entries[k]
	if !ok {
		e = &Entry{Block: block, SubKey: sub, Bits: bitmap.New(bits)}
		b.entries[k] = e
	}
	e.Bits.Set(chunkOffset)
}

// recordErase implements Algorithm 2: note that a block was erased. All
// buffered invalidations for the block predate the erase and are dropped, and
// a whole-block erase entry is inserted so that older flash-resident entries
// are ignored by subsequent GC queries and discarded by merges.
func (b *buffer) recordErase(block flash.BlockID) {
	b.inserts++
	for sub := 0; sub < b.cfg.PartitionFactor; sub++ {
		delete(b.entries, key{block, sub})
	}
	b.entries[key{block, WholeBlock}] = &Entry{Block: block, SubKey: WholeBlock, EraseFlag: true}
}

// query returns the buffered entries for a block, and whether one of them is
// an erase entry (in which case the GC query stops at the buffer).
func (b *buffer) query(block flash.BlockID) (chunks []Entry, erased bool) {
	if e, ok := b.entries[key{block, WholeBlock}]; ok && e.EraseFlag {
		erased = true
	}
	for sub := 0; sub < b.cfg.PartitionFactor; sub++ {
		if e, ok := b.entries[key{block, sub}]; ok {
			chunks = append(chunks, e.Clone())
		}
	}
	return chunks, erased
}

// drain removes and returns all buffered entries sorted by key, resetting the
// absorption counter. The result is the content of a new level-0 run.
func (b *buffer) drain() []Entry {
	out := make([]Entry, 0, len(b.entries))
	for _, e := range b.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key().less(out[j].key()) })
	b.entries = make(map[key]*Entry, b.cfg.EntriesPerPage())
	b.inserts = 0
	return out
}

// snapshot returns a copy of the buffered entries without draining them.
func (b *buffer) snapshot() []Entry {
	out := make([]Entry, 0, len(b.entries))
	for _, e := range b.entries {
		out = append(out, e.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key().less(out[j].key()) })
	return out
}

// clear drops the buffer contents; power failure does this.
func (b *buffer) clear() {
	b.entries = make(map[key]*Entry, b.cfg.EntriesPerPage())
	b.inserts = 0
}
