package gecko

import (
	"fmt"
	"math"
)

// DefaultSizeRatio is T, the size ratio between adjacent levels. The paper's
// evaluation (Figure 9) finds T = 2 minimizes write-amplification.
const DefaultSizeRatio = 2

// DefaultKeyBytes is the size of a Gecko entry key (a block ID), 4 bytes as
// in Figure 3 of the paper.
const DefaultKeyBytes = 4

// entryHeaderBytes is the per-entry overhead besides the key and the bitmap
// chunk: a sub-key (2 bytes) and a flags byte holding the erase flag.
const entryHeaderBytes = 3

// Config describes a Logarithmic Gecko instance.
type Config struct {
	// Blocks is K, the number of flash blocks indexed.
	Blocks int
	// PagesPerBlock is B, the number of page-validity bits per block.
	PagesPerBlock int
	// PageSize is P, the flash page size in bytes; it determines V, the
	// number of Gecko entries per flash page and per buffer.
	PageSize int
	// SizeRatio is T, the size ratio between runs at adjacent levels
	// (minimum 2).
	SizeRatio int
	// PartitionFactor is S, the entry-partitioning factor of Section 3.3.
	// S = 1 disables partitioning; S = B/(8*KeyBytes) is the paper's
	// recommended balance (see RecommendedPartitionFactor).
	PartitionFactor int
	// KeyBytes is the size of a block ID key in bytes.
	KeyBytes int
	// MultiWayMerge enables the multi-way merge optimization of Appendix A:
	// a merge that would cascade through several levels is performed as a
	// single multi-way sort-merge, at the cost of L input buffers in RAM.
	MultiWayMerge bool
	// BufferLimit, if non-zero, caps the number of entries the buffer may
	// absorb before flushing even when fewer than V distinct entries exist.
	// Appendix C.2 uses this to bound buffer-recovery time. Zero means the
	// buffer flushes only when V distinct entries accumulate.
	BufferLimit int
}

// DefaultConfig returns a Logarithmic Gecko configuration for a device with
// the given geometry, using the paper's defaults: T = 2, entry-partitioning
// at the recommended factor.
func DefaultConfig(blocks, pagesPerBlock, pageSize int) Config {
	cfg := Config{
		Blocks:          blocks,
		PagesPerBlock:   pagesPerBlock,
		PageSize:        pageSize,
		SizeRatio:       DefaultSizeRatio,
		KeyBytes:        DefaultKeyBytes,
		PartitionFactor: 1,
	}
	cfg.PartitionFactor = cfg.RecommendedPartitionFactor()
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("gecko: blocks %d must be positive", c.Blocks)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("gecko: pages per block %d must be positive", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("gecko: page size %d must be positive", c.PageSize)
	case c.SizeRatio < 2:
		return fmt.Errorf("gecko: size ratio %d must be at least 2", c.SizeRatio)
	case c.KeyBytes <= 0:
		return fmt.Errorf("gecko: key bytes %d must be positive", c.KeyBytes)
	case c.PartitionFactor < 1 || c.PartitionFactor > c.PagesPerBlock:
		return fmt.Errorf("gecko: partition factor %d out of range [1,%d]", c.PartitionFactor, c.PagesPerBlock)
	case c.BufferLimit < 0:
		return fmt.Errorf("gecko: buffer limit %d must be >= 0", c.BufferLimit)
	case c.EntriesPerPage() < 1:
		return fmt.Errorf("gecko: page size %d too small for even one entry", c.PageSize)
	}
	return nil
}

// RecommendedPartitionFactor returns S = B/(8*KeyBytes), the partitioning
// factor the paper recommends (Section 3.3): each sub-entry then carries a
// bitmap chunk the same size as its key, which removes the dependence of the
// update cost on B while keeping space-amplification bounded.
func (c Config) RecommendedPartitionFactor() int {
	keyBits := c.KeyBytes * 8
	s := c.PagesPerBlock / keyBits
	if s < 1 {
		return 1
	}
	return s
}

// BitsPerEntry returns the number of page-validity bits in one (sub-)entry:
// B with no partitioning, B/S with partitioning. The last sub-entry of a
// block may notionally cover fewer pages when S does not divide B; the
// implementation rounds the chunk size up so that every page is covered.
func (c Config) BitsPerEntry() int {
	return (c.PagesPerBlock + c.PartitionFactor - 1) / c.PartitionFactor
}

// EntryBytes returns the serialized size of one Gecko (sub-)entry: key,
// sub-key + flags header, and the bitmap chunk.
func (c Config) EntryBytes() int {
	bitmapBytes := (c.BitsPerEntry() + 7) / 8
	return c.KeyBytes + entryHeaderBytes + bitmapBytes
}

// EntriesPerPage returns V, the number of Gecko entries that fit into one
// flash page (and therefore into the RAM-resident buffer, whose size is one
// flash page).
func (c Config) EntriesPerPage() int {
	return c.PageSize / c.EntryBytes()
}

// MaxEntries returns the number of distinct (block, sub-key) entries that can
// exist: K*S.
func (c Config) MaxEntries() int64 {
	return int64(c.Blocks) * int64(c.PartitionFactor)
}

// LargestRunPages returns the number of flash pages in the largest possible
// run, which contains one entry for every (block, sub-key) pair.
func (c Config) LargestRunPages() int {
	v := int64(c.EntriesPerPage())
	return int((c.MaxEntries() + v - 1) / v)
}

// Levels returns L, the number of levels: ceil(log_T(K*S/V)), at least 1.
func (c Config) Levels() int {
	ratio := float64(c.MaxEntries()) / float64(c.EntriesPerPage())
	if ratio <= 1 {
		return 1
	}
	l := int(math.Ceil(math.Log(ratio) / math.Log(float64(c.SizeRatio))))
	if l < 1 {
		l = 1
	}
	return l
}

// LevelOfRunPages returns the level a run of the given number of pages
// belongs to: level i holds runs of T^i to T^(i+1)-1 pages.
func (c Config) LevelOfRunPages(pages int) int {
	if pages < 1 {
		return 0
	}
	level := 0
	bound := 1
	for pages >= bound*c.SizeRatio {
		bound *= c.SizeRatio
		level++
	}
	return level
}

// String summarizes the configuration.
func (c Config) String() string {
	return fmt.Sprintf("gecko(K=%d B=%d P=%d T=%d S=%d V=%d L=%d)",
		c.Blocks, c.PagesPerBlock, c.PageSize, c.SizeRatio, c.PartitionFactor, c.EntriesPerPage(), c.Levels())
}
