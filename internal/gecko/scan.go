package gecko

import (
	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
)

// ScanValidity reads every live run page once (newest run to oldest) and
// returns the reconstructed page-validity bitmap of every block that has at
// least one invalid page. A set bit means the page is invalid.
//
// This is the bulk counterpart of Query used by GeckoRec step 5 (Appendix C):
// rebuilding the Blocks Validity Counter needs the validity of every block,
// and scanning the O(K*B/P) Gecko pages once is far cheaper than issuing K
// separate GC queries. The IO charged is one page read per live run page.
func (g *Gecko) ScanValidity() (map[flash.BlockID]*bitmap.Bitmap, error) {
	result := make(map[flash.BlockID]*bitmap.Bitmap)
	// skip holds blocks whose erase entry has been seen in a newer source;
	// entries for them in older sources are obsolete.
	skip := make(map[flash.BlockID]bool)

	fold := func(entries []Entry) []flash.BlockID {
		var erased []flash.BlockID
		for _, e := range entries {
			if skip[e.Block] {
				continue
			}
			if e.EraseFlag && e.SubKey == WholeBlock {
				erased = append(erased, e.Block)
				continue
			}
			if e.Bits == nil {
				continue
			}
			bm, ok := result[e.Block]
			if !ok {
				bm = bitmap.New(g.cfg.PagesPerBlock)
				result[e.Block] = bm
			}
			offset := 0
			if g.cfg.PartitionFactor > 1 && e.SubKey > 0 {
				offset = e.SubKey * g.cfg.BitsPerEntry()
			}
			width := e.Bits.Len()
			if offset+width > bm.Len() {
				width = bm.Len() - offset
			}
			if width > 0 {
				bm.OrRange(offset, e.Bits.Slice(0, width))
			}
		}
		return erased
	}

	// The buffer is the newest source.
	for _, block := range fold(g.buf.snapshot()) {
		skip[block] = true
	}
	for _, r := range g.runsNewestFirst() {
		var erasedInRun []flash.BlockID
		for i := range r.pages {
			if err := g.store.Read(r.pages[i].ppn); err != nil {
				return nil, err
			}
			erasedInRun = append(erasedInRun, fold(r.pages[i].entries)...)
		}
		// Entries within the same run as an erase entry postdate the erase,
		// so the block is only skipped for older runs.
		for _, block := range erasedInRun {
			skip[block] = true
		}
	}
	return result, nil
}
