// Package pvl implements the Page Validity Log of IB-FTL (Huang et al.,
// cited as [18] in the GeckoFTL paper), extended with the cleaning mechanism
// described in Appendix E of the paper so that it can be compared fairly
// against Logarithmic Gecko.
//
// IB-FTL logs the addresses of invalidated flash pages in flash. For every
// flash block, the log entries describing its invalid pages form a linked
// list: each log entry points to the previous log entry for the same block,
// and the head of each chain is kept in integrated RAM. A GC query follows
// the chain, reading one log page per link that resides in a distinct flash
// page. The cleaning mechanism bounds the log's size by recycling its oldest
// page: entries that predate their block's last erase are discarded, the
// rest are reinserted at the tail.
//
// In the paper's taxonomy the PVL trades the PVB's fixed RAM cost for
// chain-head pointers plus per-query chain walks; Table 1 and Figure 13
// place it between the two PVB variants on RAM while paying the highest
// GC-query cost, which is the comparison this package reproduces.
package pvl
