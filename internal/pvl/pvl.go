package pvl

import (
	"fmt"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// logEntry is one record of the page validity log: "page Offset of block
// Block became invalid at sequence Seq". Prev points to the log slot of the
// previous entry for the same block, or -1 when this entry starts the chain.
type logEntry struct {
	block  flash.BlockID
	offset int
	seq    uint64
	prev   int64
}

// Config describes a page validity log.
type Config struct {
	// Blocks is K, the number of flash blocks covered.
	Blocks int
	// PagesPerBlock is B.
	PagesPerBlock int
	// PageSize is P; it determines how many log entries fit into one log
	// page.
	PageSize int
	// MaxEntries bounds the log size. Appendix E recommends twice the
	// number of over-provisioned pages (2*D). Zero selects that default
	// using an over-provisioning ratio of 0.7.
	MaxEntries int
}

// EntryBytes is the serialized size of a log entry: a 4-byte block ID, a
// 2-byte page offset, an 8-byte timestamp and an 8-byte previous-pointer.
const EntryBytes = 22

// EntriesPerPage returns how many log entries fit into one flash page.
func (c Config) EntriesPerPage() int { return c.PageSize / EntryBytes }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Blocks <= 0:
		return fmt.Errorf("pvl: blocks %d must be positive", c.Blocks)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("pvl: pages per block %d must be positive", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("pvl: page size %d must be positive", c.PageSize)
	case c.EntriesPerPage() < 1:
		return fmt.Errorf("pvl: page size %d too small for a log entry", c.PageSize)
	case c.MaxEntries < 0:
		return fmt.Errorf("pvl: max entries %d must be >= 0", c.MaxEntries)
	}
	return nil
}

// defaultMaxEntries returns 2*D where D is the number of over-provisioned
// pages at the paper's default over-provisioning ratio of 0.7.
func (c Config) defaultMaxEntries() int {
	physical := c.Blocks * c.PagesPerBlock
	d := physical - int(0.7*float64(physical))
	return 2 * d
}

// Stats counts the log's logical operations.
type Stats struct {
	Updates    int64
	Erases     int64
	Queries    int64
	Flushes    int64
	Cleanings  int64
	Reinserted int64
	Discarded  int64
}

// Log is the page validity log with RAM-resident chain heads.
type Log struct {
	cfg   Config
	store metastore.Storage
	max   int

	// buffer accumulates log entries before they are flushed as a log page.
	buffer []logEntry

	// slots is the flash-resident log content indexed by a monotonically
	// increasing slot number (entry position in the log). Slots are grouped
	// into log pages of EntriesPerPage entries.
	slots     map[int64]logEntry
	firstSlot int64 // oldest live slot
	nextSlot  int64 // next slot to be assigned

	// pageOf maps a log page index (slot / entriesPerPage) to the flash page
	// storing it.
	pageOf map[int64]flash.PPN

	// head is the RAM-resident head of each block's chain: the slot of the
	// newest log entry for the block, or -1.
	head []int64
	// eraseSeq records, per block, the logical sequence of the block's last
	// erase; log entries older than it are obsolete (Appendix E keeps these
	// timestamps in integrated RAM).
	eraseSeq []uint64

	seq   uint64
	stats Stats
}

// New creates a page validity log over the given store.
func New(cfg Config, store metastore.Storage) (*Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("pvl: nil store")
	}
	max := cfg.MaxEntries
	if max == 0 {
		max = cfg.defaultMaxEntries()
	}
	l := &Log{
		cfg:      cfg,
		store:    store,
		max:      max,
		slots:    make(map[int64]logEntry),
		pageOf:   make(map[int64]flash.PPN),
		head:     make([]int64, cfg.Blocks),
		eraseSeq: make([]uint64, cfg.Blocks),
	}
	for i := range l.head {
		l.head[i] = -1
	}
	return l, nil
}

// Config returns the configuration.
func (l *Log) Config() Config { return l.cfg }

// Stats returns the operation counters.
func (l *Log) Stats() Stats { return l.stats }

// Entries returns the number of live flash-resident log entries.
func (l *Log) Entries() int { return len(l.slots) }

func (l *Log) checkBlock(block flash.BlockID) error {
	if block < 0 || int(block) >= l.cfg.Blocks {
		return fmt.Errorf("pvl: block %d out of range [0,%d)", block, l.cfg.Blocks)
	}
	return nil
}

// Update logs the invalidation of one page: it is appended to the RAM buffer
// and the block's chain head is updated. When the buffer holds a full page's
// worth of entries it is flushed to flash with a single page write.
func (l *Log) Update(addr flash.Addr) error {
	if err := l.checkBlock(addr.Block); err != nil {
		return err
	}
	if addr.Offset < 0 || addr.Offset >= l.cfg.PagesPerBlock {
		return fmt.Errorf("pvl: offset %d out of range [0,%d)", addr.Offset, l.cfg.PagesPerBlock)
	}
	l.stats.Updates++
	l.seq++
	l.appendEntry(logEntry{block: addr.Block, offset: addr.Offset, seq: l.seq, prev: l.head[addr.Block]})
	return l.maybeFlush()
}

// appendEntry assigns the next slot to the entry and updates the chain head.
func (l *Log) appendEntry(e logEntry) {
	slot := l.nextSlot
	l.nextSlot++
	l.buffer = append(l.buffer, e)
	l.slots[slot] = e
	l.head[e.block] = slot
}

// RecordErase notes that a block was erased. The log itself is not touched
// (that is the point of the timestamp-based cleaning); the block's chain head
// is reset and its erase timestamp recorded so that older entries are ignored
// and eventually discarded by cleaning.
func (l *Log) RecordErase(block flash.BlockID) error {
	if err := l.checkBlock(block); err != nil {
		return err
	}
	l.stats.Erases++
	l.seq++
	l.eraseSeq[block] = l.seq
	l.head[block] = -1
	return nil
}

// maybeFlush writes the buffered entries to flash when a full page's worth
// has accumulated, then cleans the log if it grew beyond its bound.
func (l *Log) maybeFlush() error {
	per := l.cfg.EntriesPerPage()
	if len(l.buffer) < per {
		return nil
	}
	return l.flush()
}

// flush writes the buffered entries out as one log page and then runs the
// cleaning pass if the log grew beyond its bound.
func (l *Log) flush() error {
	if err := l.writeBuffer(); err != nil {
		return err
	}
	return l.clean()
}

// writeBuffer persists the buffered entries as one log page without entering
// the cleaning pass (the cleaning pass itself uses it when reinsertions fill
// the buffer again).
func (l *Log) writeBuffer() error {
	if len(l.buffer) == 0 {
		return nil
	}
	l.stats.Flushes++
	pageIdx := (l.nextSlot - 1) / int64(l.cfg.EntriesPerPage())
	ppn, err := l.store.Append(flash.SpareArea{Logical: flash.InvalidLPN, Tag: uint64(pageIdx), BlockType: flash.BlockGecko})
	if err != nil {
		return err
	}
	l.pageOf[pageIdx] = ppn
	l.buffer = l.buffer[:0]
	return nil
}

// Flush forces buffered entries to flash.
func (l *Log) Flush() error { return l.flush() }

// clean implements the Appendix E cleaning mechanism: while the log exceeds
// its bound, the oldest log page is read, entries newer than their block's
// last erase are reinserted at the tail and the rest are discarded, and the
// old page is invalidated. A pass that cannot discard anything stops so that
// an undersized bound degrades to a larger log instead of an endless loop
// (Appendix E sizes the bound at twice the over-provisioned space precisely
// so that at least half of each reclaimed page is discardable on average).
func (l *Log) clean() error {
	per := int64(l.cfg.EntriesPerPage())
	for len(l.slots) > l.max {
		oldPage := l.firstSlot / per
		ppn, ok := l.pageOf[oldPage]
		if !ok {
			// The oldest entries are still in the RAM buffer; nothing to
			// clean from flash.
			return nil
		}
		l.stats.Cleanings++
		if err := l.store.Read(ppn); err != nil {
			return err
		}
		end := (oldPage + 1) * per
		var reinsert []logEntry
		discardedThisPass := int64(0)
		for slot := l.firstSlot; slot < end; slot++ {
			e, ok := l.slots[slot]
			if !ok {
				continue
			}
			delete(l.slots, slot)
			if e.seq > l.eraseSeq[e.block] {
				reinsert = append(reinsert, e)
			} else {
				l.stats.Discarded++
				discardedThisPass++
			}
		}
		l.firstSlot = end
		if err := l.store.Invalidate(ppn); err != nil {
			return err
		}
		delete(l.pageOf, oldPage)
		// Reinsert surviving entries at the tail. Each reinserted entry is
		// linked in front of the block's current chain head: the bitmap a GC
		// query assembles is an OR over the chain, so the chain order does
		// not need to follow invalidation order, it only needs to reach
		// every live entry.
		for _, e := range reinsert {
			l.stats.Reinserted++
			e.prev = l.head[e.block]
			l.appendEntry(e)
			if len(l.buffer) >= l.cfg.EntriesPerPage() {
				if err := l.writeBuffer(); err != nil {
					return err
				}
			}
		}
		if discardedThisPass == 0 {
			return nil
		}
	}
	return nil
}

// Query answers a GC query by walking the block's chain from its RAM-resident
// head, reading each distinct flash-resident log page the chain visits, and
// OR-ing the invalidations newer than the block's last erase.
func (l *Log) Query(block flash.BlockID) (*bitmap.Bitmap, error) {
	if err := l.checkBlock(block); err != nil {
		return nil, err
	}
	l.stats.Queries++
	result := bitmap.New(l.cfg.PagesPerBlock)
	per := int64(l.cfg.EntriesPerPage())
	visited := make(map[int64]bool)
	for slot := l.head[block]; slot >= 0; {
		e, ok := l.slots[slot]
		if !ok {
			break
		}
		pageIdx := slot / per
		if ppn, inFlash := l.pageOf[pageIdx]; inFlash && !visited[pageIdx] {
			if err := l.store.Read(ppn); err != nil {
				return nil, err
			}
			visited[pageIdx] = true
		}
		if e.seq > l.eraseSeq[block] {
			result.Set(e.offset)
		}
		slot = e.prev
	}
	return result, nil
}

// RAMBytes returns the integrated-RAM footprint: an 8-byte chain head and an
// 8-byte erase timestamp per block, plus the one-page flush buffer and the
// log-page directory.
func (l *Log) RAMBytes() int64 {
	heads := int64(l.cfg.Blocks) * 16
	directory := int64(len(l.pageOf)) * 8
	return heads + directory + int64(l.cfg.PageSize)
}

// MaxEntriesBound returns the configured log bound.
func (l *Log) MaxEntriesBound() int { return l.max }
