package pvl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

func newHarness(t *testing.T, blocks, pagesPerBlock, pageSize, metaBlocks, maxEntries int) (*flash.Device, *Log) {
	t.Helper()
	devCfg := flash.ScaledConfig(blocks + metaBlocks)
	devCfg.PagesPerBlock = pagesPerBlock
	devCfg.PageSize = pageSize
	dev, err := flash.NewDevice(devCfg)
	if err != nil {
		t.Fatal(err)
	}
	var metaIDs []flash.BlockID
	for i := blocks; i < blocks+metaBlocks; i++ {
		metaIDs = append(metaIDs, flash.BlockID(i))
	}
	store, err := metastore.NewBlockStore(dev, metaIDs, flash.BlockGecko, flash.PurposePageValidity)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Config{Blocks: blocks, PagesPerBlock: pagesPerBlock, PageSize: pageSize, MaxEntries: maxEntries}, store)
	if err != nil {
		t.Fatal(err)
	}
	return dev, l
}

func TestConfigValidation(t *testing.T) {
	good := Config{Blocks: 16, PagesPerBlock: 8, PageSize: 512}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Blocks: 0, PagesPerBlock: 8, PageSize: 512},
		{Blocks: 16, PagesPerBlock: 0, PageSize: 512},
		{Blocks: 16, PagesPerBlock: 8, PageSize: 0},
		{Blocks: 16, PagesPerBlock: 8, PageSize: 4},
		{Blocks: 16, PagesPerBlock: 8, PageSize: 512, MaxEntries: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestDefaultBoundIsTwiceOverProvisionedSpace(t *testing.T) {
	_, l := newHarness(t, 100, 10, 512, 16, 0)
	physical := 100 * 10
	d := physical - int(0.7*float64(physical))
	if got := l.MaxEntriesBound(); got != 2*d {
		t.Errorf("default bound = %d, want %d", got, 2*d)
	}
}

func TestUpdateAndQuery(t *testing.T) {
	_, l := newHarness(t, 32, 8, 512, 16, 0)
	for _, a := range []flash.Addr{{Block: 2, Offset: 0}, {Block: 2, Offset: 7}, {Block: 5, Offset: 3}} {
		if err := l.Update(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.PopCount() != 2 || !got.Get(0) || !got.Get(7) {
		t.Errorf("query(2) = %v", got.SetBits())
	}
	got, _ = l.Query(5)
	if got.PopCount() != 1 || !got.Get(3) {
		t.Errorf("query(5) = %v", got.SetBits())
	}
	got, _ = l.Query(9)
	if got.Any() {
		t.Errorf("untouched block = %v", got.SetBits())
	}
}

func TestOutOfRange(t *testing.T) {
	_, l := newHarness(t, 8, 8, 512, 4, 0)
	if err := l.Update(flash.Addr{Block: 8, Offset: 0}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := l.Update(flash.Addr{Block: 0, Offset: 8}); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if err := l.RecordErase(-1); err == nil {
		t.Error("negative erase accepted")
	}
	if _, err := l.Query(8); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func TestEraseHidesOlderEntries(t *testing.T) {
	_, l := newHarness(t, 32, 8, 512, 16, 0)
	l.Update(flash.Addr{Block: 4, Offset: 1})
	l.Update(flash.Addr{Block: 4, Offset: 2})
	if err := l.RecordErase(4); err != nil {
		t.Fatal(err)
	}
	got, _ := l.Query(4)
	if got.Any() {
		t.Errorf("query after erase = %v", got.SetBits())
	}
	// New invalidations after the erase are visible.
	l.Update(flash.Addr{Block: 4, Offset: 6})
	got, _ = l.Query(4)
	if got.PopCount() != 1 || !got.Get(6) {
		t.Errorf("query after re-update = %v", got.SetBits())
	}
}

func TestBufferedUpdatesFlushAsOnePageWrite(t *testing.T) {
	dev, l := newHarness(t, 64, 8, 512, 16, 0)
	per := l.Config().EntriesPerPage()
	for i := 0; i < per-1; i++ {
		if err := l.Update(flash.Addr{Block: flash.BlockID(i % 64), Offset: i % 8}); err != nil {
			t.Fatal(err)
		}
	}
	c := dev.Counters()
	if c.TotalOp(flash.OpPageWrite) != 0 {
		t.Fatalf("premature flush: %d writes", c.TotalOp(flash.OpPageWrite))
	}
	if err := l.Update(flash.Addr{Block: 63, Offset: 7}); err != nil {
		t.Fatal(err)
	}
	c = dev.Counters()
	if c.Count(flash.OpPageWrite, flash.PurposePageValidity) != 1 {
		t.Errorf("writes after %d updates = %d, want 1", per, c.TotalOp(flash.OpPageWrite))
	}
	if l.Stats().Flushes != 1 {
		t.Errorf("flushes = %d, want 1", l.Stats().Flushes)
	}
}

func TestCleaningBoundsLogSize(t *testing.T) {
	// Default bound: twice the over-provisioned space (2*D).
	_, l := newHarness(t, 32, 8, 256, 64, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		if rng.Intn(6) == 0 {
			if err := l.RecordErase(flash.BlockID(rng.Intn(32))); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := l.Update(flash.Addr{Block: flash.BlockID(rng.Intn(32)), Offset: rng.Intn(8)}); err != nil {
			t.Fatal(err)
		}
	}
	// The cleaning keeps the live entry count near the bound; reinsertion
	// and undiscardable pages can exceed it only by a modest factor.
	if got := l.Entries(); got > 2*l.MaxEntriesBound() {
		t.Errorf("log holds %d entries, bound %d", got, l.MaxEntriesBound())
	}
	if l.Stats().Cleanings == 0 {
		t.Error("expected cleanings to have run")
	}
	if l.Stats().Discarded == 0 {
		t.Error("expected obsolete entries to be discarded")
	}
}

func TestCleaningPreservesAnswers(t *testing.T) {
	_, l := newHarness(t, 16, 8, 256, 64, 30)
	reference := make(map[flash.BlockID]*bitmap.Bitmap)
	query := func(b flash.BlockID) *bitmap.Bitmap {
		if bm, ok := reference[b]; ok {
			return bm
		}
		bm := bitmap.New(8)
		reference[b] = bm
		return bm
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		if rng.Intn(5) == 0 {
			b := flash.BlockID(rng.Intn(16))
			if err := l.RecordErase(b); err != nil {
				t.Fatal(err)
			}
			query(b).Reset()
			continue
		}
		a := flash.Addr{Block: flash.BlockID(rng.Intn(16)), Offset: rng.Intn(8)}
		if err := l.Update(a); err != nil {
			t.Fatal(err)
		}
		query(a.Block).Set(a.Offset)
	}
	for b := 0; b < 16; b++ {
		got, err := l.Query(flash.BlockID(b))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(query(flash.BlockID(b))) {
			t.Fatalf("block %d: log=%v reference=%v", b, got.SetBits(), query(flash.BlockID(b)).SetBits())
		}
	}
}

func TestRAMBytesGrowsWithBlocks(t *testing.T) {
	_, small := newHarness(t, 16, 8, 512, 8, 0)
	_, large := newHarness(t, 256, 8, 512, 8, 0)
	if small.RAMBytes() >= large.RAMBytes() {
		t.Errorf("RAM footprint does not grow with block count: %d vs %d", small.RAMBytes(), large.RAMBytes())
	}
}

func TestFlushForcesBufferedEntriesOut(t *testing.T) {
	dev, l := newHarness(t, 16, 8, 512, 8, 0)
	l.Update(flash.Addr{Block: 1, Offset: 1})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	c := dev.Counters()
	if c.TotalOp(flash.OpPageWrite) != 1 {
		t.Errorf("writes after explicit flush = %d, want 1", c.TotalOp(flash.OpPageWrite))
	}
	// Flushing an empty buffer is a no-op.
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	c = dev.Counters()
	if c.TotalOp(flash.OpPageWrite) != 1 {
		t.Error("empty flush wrote a page")
	}
}

// Property: the log agrees with a straightforward in-RAM reference under
// random workloads, including cleanings.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64, boundRaw uint8) bool {
		bound := int(boundRaw)%64 + 16
		devCfg := flash.ScaledConfig(16 + 64)
		devCfg.PagesPerBlock = 8
		devCfg.PageSize = 256
		dev, err := flash.NewDevice(devCfg)
		if err != nil {
			return false
		}
		var metaIDs []flash.BlockID
		for i := 16; i < 80; i++ {
			metaIDs = append(metaIDs, flash.BlockID(i))
		}
		store, err := metastore.NewBlockStore(dev, metaIDs, flash.BlockGecko, flash.PurposePageValidity)
		if err != nil {
			return false
		}
		l, err := New(Config{Blocks: 16, PagesPerBlock: 8, PageSize: 256, MaxEntries: bound}, store)
		if err != nil {
			return false
		}
		ref := make([]*bitmap.Bitmap, 16)
		for i := range ref {
			ref[i] = bitmap.New(8)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			if rng.Intn(6) == 0 {
				b := rng.Intn(16)
				if l.RecordErase(flash.BlockID(b)) != nil {
					return false
				}
				ref[b].Reset()
				continue
			}
			blk, off := rng.Intn(16), rng.Intn(8)
			if l.Update(flash.Addr{Block: flash.BlockID(blk), Offset: off}) != nil {
				return false
			}
			ref[blk].Set(off)
		}
		for b := 0; b < 16; b++ {
			got, err := l.Query(flash.BlockID(b))
			if err != nil || !got.Equal(ref[b]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
