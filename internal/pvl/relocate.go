package pvl

import (
	"sort"

	"geckoftl/internal/flash"
)

// IsLive reports whether the given flash page currently holds one of the
// log's live pages. The FTL's garbage-collector uses it when a greedy
// victim-selection policy (IB-FTL's) picks a metadata block for collection.
func (l *Log) IsLive(ppn flash.PPN) bool {
	for _, loc := range l.pageOf {
		if loc == ppn {
			return true
		}
	}
	return false
}

// Relocate informs the log that the garbage-collector moved one of its live
// pages to a new location. It reports whether the old location was live.
func (l *Log) Relocate(old, new flash.PPN) bool {
	for idx, loc := range l.pageOf {
		if loc == old {
			l.pageOf[idx] = new
			return true
		}
	}
	return false
}

// LivePages returns the physical addresses of every live log page in
// ascending order. Recovery uses it to rebuild per-block valid-page counts;
// the pinned order keeps the rebuild's IO schedule identical across
// recoveries of the same crash image.
func (l *Log) LivePages() []flash.PPN {
	out := make([]flash.PPN, 0, len(l.pageOf))
	for _, loc := range l.pageOf {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
