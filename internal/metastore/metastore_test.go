package metastore

import (
	"errors"
	"testing"

	"geckoftl/internal/flash"
)

func smallDevice(t *testing.T, blocks, pagesPerBlock int) *flash.Device {
	t.Helper()
	cfg := flash.ScaledConfig(blocks)
	cfg.PagesPerBlock = pagesPerBlock
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestNewBlockStoreValidation(t *testing.T) {
	dev := smallDevice(t, 4, 8)
	if _, err := NewBlockStore(dev, nil, flash.BlockGecko, flash.PurposePageValidity); err == nil {
		t.Error("empty block list accepted")
	}
	if _, err := NewBlockStore(dev, []flash.BlockID{1, 1}, flash.BlockGecko, flash.PurposePageValidity); err == nil {
		t.Error("duplicate block accepted")
	}
}

func TestAppendFillsBlocksSequentially(t *testing.T) {
	dev := smallDevice(t, 4, 4)
	s, err := NewBlockStore(dev, []flash.BlockID{1, 2}, flash.BlockGecko, flash.PurposePageValidity)
	if err != nil {
		t.Fatal(err)
	}
	var ppns []flash.PPN
	for i := 0; i < 8; i++ {
		ppn, err := s.Append(flash.SpareArea{Tag: uint64(i)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		ppns = append(ppns, ppn)
	}
	// First 4 pages in block 1, next 4 in block 2.
	for i, ppn := range ppns {
		wantBlock := flash.BlockID(1 + i/4)
		if got := flash.BlockOf(ppn, 4); got != wantBlock {
			t.Errorf("append %d landed on block %d, want %d", i, got, wantBlock)
		}
	}
	// Store is now full.
	if _, err := s.Append(flash.SpareArea{}); !errors.Is(err, ErrNoSpace) {
		t.Errorf("append on full store err = %v, want ErrNoSpace", err)
	}
	if s.FreePages() != 0 {
		t.Errorf("FreePages = %d, want 0", s.FreePages())
	}
}

func TestBlockTypeStampedOnFirstPage(t *testing.T) {
	dev := smallDevice(t, 2, 4)
	s, _ := NewBlockStore(dev, []flash.BlockID{0}, flash.BlockTranslation, flash.PurposeTranslation)
	ppn, err := s.Append(flash.SpareArea{})
	if err != nil {
		t.Fatal(err)
	}
	spare, ok, err := s.ReadSpare(ppn)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if spare.BlockType != flash.BlockTranslation {
		t.Errorf("first page block type = %v, want translation", spare.BlockType)
	}
}

func TestReclaimFullyInvalidBlock(t *testing.T) {
	dev := smallDevice(t, 2, 4)
	s, _ := NewBlockStore(dev, []flash.BlockID{0}, flash.BlockGecko, flash.PurposePageValidity)
	var ppns []flash.PPN
	for i := 0; i < 4; i++ {
		ppn, err := s.Append(flash.SpareArea{})
		if err != nil {
			t.Fatal(err)
		}
		ppns = append(ppns, ppn)
	}
	// Invalidate only three pages: the block must not be reclaimed.
	for _, ppn := range ppns[:3] {
		if err := s.Invalidate(ppn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Append(flash.SpareArea{}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append with live page remaining err = %v, want ErrNoSpace", err)
	}
	// Invalidate the last page: the next append erases and reuses the block.
	if err := s.Invalidate(ppns[3]); err != nil {
		t.Fatal(err)
	}
	ppn, err := s.Append(flash.SpareArea{})
	if err != nil {
		t.Fatalf("append after full invalidation: %v", err)
	}
	if flash.BlockOf(ppn, 4) != 0 || flash.OffsetOf(ppn, 4) != 0 {
		t.Errorf("reclaimed append landed at %v, want block 0 offset 0", ppn)
	}
	if s.Erases() != 1 {
		t.Errorf("erases = %d, want 1", s.Erases())
	}
}

func TestInvalidateErrors(t *testing.T) {
	dev := smallDevice(t, 4, 4)
	s, _ := NewBlockStore(dev, []flash.BlockID{1}, flash.BlockGecko, flash.PurposePageValidity)
	// Page outside the store's blocks.
	if err := s.Invalidate(flash.PPNOf(3, 0, 4)); err == nil {
		t.Error("invalidate of foreign page accepted")
	}
	ppn, _ := s.Append(flash.SpareArea{})
	for i := 0; i < 4; i++ {
		s.Invalidate(ppn)
	}
	if err := s.Invalidate(ppn); err == nil {
		t.Error("over-invalidation not detected")
	}
}

func TestIOAccountingPurpose(t *testing.T) {
	dev := smallDevice(t, 2, 4)
	s, _ := NewBlockStore(dev, []flash.BlockID{0}, flash.BlockGecko, flash.PurposePageValidity)
	ppn, _ := s.Append(flash.SpareArea{})
	s.Read(ppn)
	s.ReadSpare(ppn)
	c := dev.Counters()
	if c.Count(flash.OpPageWrite, flash.PurposePageValidity) != 1 {
		t.Error("append not accounted as page-validity write")
	}
	if c.Count(flash.OpPageRead, flash.PurposePageValidity) != 1 {
		t.Error("read not accounted as page-validity read")
	}
	if c.Count(flash.OpSpareRead, flash.PurposePageValidity) != 1 {
		t.Error("spare read not accounted")
	}
}

func TestUtilization(t *testing.T) {
	dev := smallDevice(t, 2, 4)
	s, _ := NewBlockStore(dev, []flash.BlockID{0, 1}, flash.BlockGecko, flash.PurposePageValidity)
	if got := s.Utilization(); got != 0 {
		t.Errorf("empty utilization = %v", got)
	}
	ppn, _ := s.Append(flash.SpareArea{})
	s.Append(flash.SpareArea{})
	if got := s.Utilization(); got != 0.25 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	s.Invalidate(ppn)
	if got := s.Utilization(); got != 0.125 {
		t.Errorf("utilization = %v, want 0.125", got)
	}
}

func TestBlocksAccessorCopies(t *testing.T) {
	dev := smallDevice(t, 4, 4)
	s, _ := NewBlockStore(dev, []flash.BlockID{1, 2}, flash.BlockGecko, flash.PurposePageValidity)
	bs := s.Blocks()
	bs[0] = 99
	if s.Blocks()[0] == 99 {
		t.Error("Blocks exposes internal slice")
	}
}
