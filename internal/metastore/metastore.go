package metastore

import (
	"errors"
	"fmt"

	"geckoftl/internal/flash"
)

// ErrNoSpace is returned when the store has no free metadata page left.
var ErrNoSpace = errors.New("metastore: out of free metadata pages")

// Storage is the interface flash-resident metadata structures write through.
//
// Append programs the next free metadata page and returns its physical
// address. Read accounts a full page read. ReadSpare accounts a spare-area
// read and returns the stored spare. Invalidate marks a previously appended
// page as obsolete so that its block can eventually be erased; it performs no
// IO by itself.
type Storage interface {
	Append(spare flash.SpareArea) (flash.PPN, error)
	Read(ppn flash.PPN) error
	ReadSpare(ppn flash.PPN) (flash.SpareArea, bool, error)
	Invalidate(ppn flash.PPN) error
}

// BlockLister is implemented by stores that can enumerate the blocks they
// own; recovery procedures use it to scan spare areas.
type BlockLister interface {
	Blocks() []flash.BlockID
}

// BlockStore is a Storage over a dedicated set of blocks of a device.
//
// Pages are written append-only into an active block. When the active block
// fills up, the store moves on to the next block with free space. A block is
// erased only once every page in it has been invalidated, which is exactly
// GeckoFTL's garbage-collection policy for metadata blocks (Section 4.2): hot
// metadata is never migrated, the store just waits for blocks to become fully
// invalid.
type BlockStore struct {
	dev     *flash.Device
	purpose flash.Purpose
	btype   flash.BlockType

	blocks  []flash.BlockID
	active  int // index into blocks of the block currently written
	invalid []int
	written []int

	erases int64
}

// NewBlockStore creates a store that owns the given blocks of the device and
// accounts all of its IO under the given purpose. The blocks must be erased
// (or never written); the store assumes exclusive ownership.
func NewBlockStore(dev *flash.Device, blocks []flash.BlockID, btype flash.BlockType, purpose flash.Purpose) (*BlockStore, error) {
	if len(blocks) == 0 {
		return nil, errors.New("metastore: need at least one block")
	}
	seen := make(map[flash.BlockID]bool, len(blocks))
	for _, b := range blocks {
		if seen[b] {
			return nil, fmt.Errorf("metastore: block %d listed twice", b)
		}
		seen[b] = true
	}
	return &BlockStore{
		dev:     dev,
		purpose: purpose,
		btype:   btype,
		blocks:  append([]flash.BlockID(nil), blocks...),
		invalid: make([]int, len(blocks)),
		written: make([]int, len(blocks)),
	}, nil
}

// Blocks returns the blocks owned by the store.
func (s *BlockStore) Blocks() []flash.BlockID {
	return append([]flash.BlockID(nil), s.blocks...)
}

// Erases returns how many block erases the store has performed.
func (s *BlockStore) Erases() int64 { return s.erases }

// FreePages returns the number of pages that can still be appended before the
// store runs out of space (not counting pages that would be reclaimed by
// erasing fully-invalid blocks).
func (s *BlockStore) FreePages() int {
	b := s.dev.Config().PagesPerBlock
	free := 0
	for i := range s.blocks {
		free += b - s.written[i]
	}
	return free
}

// Append programs the next free page among the store's blocks.
func (s *BlockStore) Append(spare flash.SpareArea) (flash.PPN, error) {
	cfg := s.dev.Config()
	for tries := 0; tries < len(s.blocks); tries++ {
		idx := (s.active + tries) % len(s.blocks)
		if s.written[idx] >= cfg.PagesPerBlock {
			// Block is full; reclaim it if every page is invalid.
			if s.invalid[idx] >= cfg.PagesPerBlock {
				if err := s.dev.EraseBlock(s.blocks[idx], s.purpose); err != nil {
					return flash.InvalidPPN, err
				}
				s.erases++
				s.written[idx] = 0
				s.invalid[idx] = 0
			} else {
				continue
			}
		}
		s.active = idx
		offset := s.written[idx]
		if offset == 0 {
			spare.BlockType = s.btype
		}
		ppn := flash.PPNOf(s.blocks[idx], offset, cfg.PagesPerBlock)
		if _, err := s.dev.WritePage(ppn, spare, s.purpose); err != nil {
			return flash.InvalidPPN, err
		}
		s.written[idx]++
		return ppn, nil
	}
	return flash.InvalidPPN, ErrNoSpace
}

// Read accounts a full page read of a previously appended page.
func (s *BlockStore) Read(ppn flash.PPN) error {
	return s.dev.ReadPage(ppn, s.purpose)
}

// ReadSpare accounts a spare-area read of a page in the store.
func (s *BlockStore) ReadSpare(ppn flash.PPN) (flash.SpareArea, bool, error) {
	return s.dev.ReadSpare(ppn, s.purpose)
}

// Invalidate marks a previously appended page obsolete. When the last live
// page of a full block is invalidated the block becomes reclaimable; the
// erase itself is deferred until Append needs the space.
func (s *BlockStore) Invalidate(ppn flash.PPN) error {
	cfg := s.dev.Config()
	block := flash.BlockOf(ppn, cfg.PagesPerBlock)
	for i, b := range s.blocks {
		if b == block {
			s.invalid[i]++
			if s.invalid[i] > cfg.PagesPerBlock {
				return fmt.Errorf("metastore: block %d over-invalidated", block)
			}
			return nil
		}
	}
	return fmt.Errorf("metastore: page %d is not in this store", ppn)
}

// Utilization returns the fraction of owned pages currently holding live
// (written and not invalidated) data.
func (s *BlockStore) Utilization() float64 {
	cfg := s.dev.Config()
	total := len(s.blocks) * cfg.PagesPerBlock
	if total == 0 {
		return 0
	}
	live := 0
	for i := range s.blocks {
		live += s.written[i] - s.invalid[i]
	}
	return float64(live) / float64(total)
}
