// Package metastore provides the flash-backed page store that flash-resident
// metadata structures write into.
//
// Logarithmic Gecko runs, the flash-resident PVB and the IB-FTL page validity
// log all need the same service from the FTL: "give me the next free metadata
// page, account the IO, and let me invalidate pages I no longer need". Inside
// a full FTL that service is provided by the block manager's Gecko block
// group; for the isolated experiments of Sections 5.1 and 5.2 of the paper
// (Logarithmic Gecko vs a flash-resident PVB, without a surrounding FTL) the
// BlockStore in this package provides it directly on top of a raw device.
package metastore
