// Package bitmap provides the fixed-size bitmaps that page-validity metadata
// is built from.
//
// A Gecko entry's value is "a bitmap of size B, where the bit at offset i
// indicates if the physical page at offset i in the block is invalid"
// (Section 3 of the GeckoFTL paper). GC queries and merge operations combine
// such bitmaps with bitwise OR, and the Blocks Validity Counter needs their
// population counts, so those are the operations this package optimizes.
package bitmap
