package bitmap

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitmap is a fixed-size bit array. The zero value is an empty bitmap of size
// zero; use New to create one with a given number of bits.
//
// Bitmap is not safe for concurrent use.
type Bitmap struct {
	bits  int
	words []uint64
}

// New returns a bitmap of the given number of bits, all cleared.
// It panics if bits is negative.
func New(bits int) *Bitmap {
	if bits < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", bits))
	}
	return &Bitmap{
		bits:  bits,
		words: make([]uint64, (bits+wordBits-1)/wordBits),
	}
}

// FromWords builds a bitmap of the given size backed by a copy of the given
// words. Bits beyond the size are cleared. It is used when decoding bitmaps
// that were serialized into Gecko entries.
func FromWords(bits int, words []uint64) *Bitmap {
	b := New(bits)
	copy(b.words, words)
	b.clearTail()
	return b
}

// clearTail zeroes any bits in the last word beyond the bitmap size so that
// PopCount, Equal and Words stay consistent.
func (b *Bitmap) clearTail() {
	if b.bits%wordBits == 0 || len(b.words) == 0 {
		return
	}
	last := len(b.words) - 1
	mask := (uint64(1) << uint(b.bits%wordBits)) - 1
	b.words[last] &= mask
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.bits }

// Words returns a copy of the underlying words. The last word has any bits
// beyond Len cleared.
func (b *Bitmap) Words() []uint64 {
	out := make([]uint64, len(b.words))
	copy(out, b.words)
	return out
}

// SizeBytes returns the in-memory footprint of the bit storage in bytes,
// rounded up to whole words. It is what the RAM models charge for a
// RAM-resident PVB.
func (b *Bitmap) SizeBytes() int { return len(b.words) * 8 }

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.bits {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.bits))
	}
}

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// PopCount returns the number of set bits.
func (b *Bitmap) PopCount() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bits are set.
func (b *Bitmap) None() bool { return !b.Any() }

// Or merges other into b with bitwise OR. This is the merge operator used by
// GC queries and run merges (Algorithm 3). It panics if the sizes differ.
func (b *Bitmap) Or(other *Bitmap) {
	if b.bits != other.bits {
		panic(fmt.Sprintf("bitmap: OR of mismatched sizes %d and %d", b.bits, other.bits))
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// OrRange merges a sub-bitmap into bits [offset, offset+other.Len()).
// Entry-partitioning (Section 3.3) stores B/S-bit chunks that must be folded
// back into a full B-bit bitmap at query time.
func (b *Bitmap) OrRange(offset int, other *Bitmap) {
	if offset < 0 || offset+other.bits > b.bits {
		panic(fmt.Sprintf("bitmap: OrRange [%d,%d) out of range [0,%d)", offset, offset+other.bits, b.bits))
	}
	for i := 0; i < other.bits; i++ {
		if other.Get(i) {
			b.Set(offset + i)
		}
	}
}

// Slice returns a copy of bits [offset, offset+length) as a new bitmap.
func (b *Bitmap) Slice(offset, length int) *Bitmap {
	if offset < 0 || length < 0 || offset+length > b.bits {
		panic(fmt.Sprintf("bitmap: Slice [%d,%d) out of range [0,%d)", offset, offset+length, b.bits))
	}
	out := New(length)
	for i := 0; i < length; i++ {
		if b.Get(offset + i) {
			out.Set(i)
		}
	}
	return out
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := New(b.bits)
	copy(out.words, b.words)
	return out
}

// Equal reports whether two bitmaps have the same size and contents.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.bits != other.bits {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// ForEachSet calls fn for every set bit in ascending order. It stops early if
// fn returns false.
func (b *Bitmap) ForEachSet(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			i := wi*wordBits + tz
			if i >= b.bits {
				return
			}
			if !fn(i) {
				return
			}
			w &^= 1 << uint(tz)
		}
	}
}

// SetBits returns the indices of all set bits in ascending order.
func (b *Bitmap) SetBits() []int {
	out := make([]int, 0, b.PopCount())
	b.ForEachSet(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the bitmap as a string of '0' and '1' characters, bit 0
// first, e.g. "01000010". Large bitmaps are abbreviated.
func (b *Bitmap) String() string {
	const maxRender = 256
	n := b.bits
	truncated := false
	if n > maxRender {
		n = maxRender
		truncated = true
	}
	var sb strings.Builder
	sb.Grow(n + 16)
	for i := 0; i < n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if truncated {
		fmt.Fprintf(&sb, "...(%d bits)", b.bits)
	}
	return sb.String()
}
