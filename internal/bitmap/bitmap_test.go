package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSizes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 1000} {
		b := New(n)
		if b.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, b.Len())
		}
		if b.PopCount() != 0 {
			t.Errorf("New(%d) has %d set bits, want 0", n, b.PopCount())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := b.PopCount(); got != 8 {
		t.Errorf("PopCount = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := b.PopCount(); got != 7 {
		t.Errorf("PopCount = %d, want 7", got)
	}
}

func TestSetIsIdempotent(t *testing.T) {
	b := New(10)
	b.Set(3)
	b.Set(3)
	if got := b.PopCount(); got != 1 {
		t.Errorf("PopCount after double Set = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestSetAllResetAnyNone(t *testing.T) {
	b := New(70)
	if b.Any() {
		t.Error("fresh bitmap reports Any")
	}
	if !b.None() {
		t.Error("fresh bitmap does not report None")
	}
	b.SetAll()
	if got := b.PopCount(); got != 70 {
		t.Errorf("PopCount after SetAll = %d, want 70", got)
	}
	if !b.Any() || b.None() {
		t.Error("SetAll bitmap should report Any and not None")
	}
	b.Reset()
	if b.Any() {
		t.Error("Reset bitmap reports Any")
	}
}

func TestSetAllClearsTailBits(t *testing.T) {
	// A 65-bit bitmap uses two words; SetAll must not count the 63 unused
	// bits of the second word.
	b := New(65)
	b.SetAll()
	if got := b.PopCount(); got != 65 {
		t.Errorf("PopCount = %d, want 65", got)
	}
}

func TestOr(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(1)
	a.Set(100)
	b.Set(2)
	b.Set(100)
	a.Or(b)
	want := []int{1, 2, 100}
	got := a.SetBits()
	if len(got) != len(want) {
		t.Fatalf("SetBits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetBits = %v, want %v", got, want)
		}
	}
	// OR must not modify the argument.
	if b.PopCount() != 2 {
		t.Errorf("argument modified by Or: %v", b.SetBits())
	}
}

func TestOrMismatchedSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched sizes did not panic")
		}
	}()
	New(8).Or(New(16))
}

func TestOrRangeAndSlice(t *testing.T) {
	full := New(128)
	part := New(32)
	part.Set(0)
	part.Set(31)
	full.OrRange(64, part)
	if !full.Get(64) || !full.Get(95) {
		t.Errorf("OrRange did not set expected bits: %v", full.SetBits())
	}
	if full.PopCount() != 2 {
		t.Errorf("PopCount = %d, want 2", full.PopCount())
	}
	back := full.Slice(64, 32)
	if !back.Equal(part) {
		t.Errorf("Slice round-trip mismatch: %v vs %v", back.SetBits(), part.SetBits())
	}
}

func TestCloneAndEqual(t *testing.T) {
	a := New(100)
	a.Set(7)
	a.Set(99)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set(50)
	if a.Equal(b) {
		t.Fatal("modifying clone affected equality")
	}
	if a.Get(50) {
		t.Fatal("modifying clone affected original")
	}
	if a.Equal(New(101)) {
		t.Fatal("bitmaps of different sizes reported equal")
	}
}

func TestForEachSetEarlyStop(t *testing.T) {
	b := New(256)
	for i := 0; i < 256; i += 16 {
		b.Set(i)
	}
	var visited []int
	b.ForEachSet(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 3
	})
	if len(visited) != 3 {
		t.Fatalf("visited %d bits, want 3", len(visited))
	}
	for i, v := range visited {
		if v != i*16 {
			t.Errorf("visited[%d] = %d, want %d", i, v, i*16)
		}
	}
}

func TestFromWordsClearsTail(t *testing.T) {
	words := []uint64{^uint64(0), ^uint64(0)}
	b := FromWords(70, words)
	if got := b.PopCount(); got != 70 {
		t.Errorf("PopCount = %d, want 70", got)
	}
	if b.Len() != 70 {
		t.Errorf("Len = %d, want 70", b.Len())
	}
}

func TestWordsRoundTrip(t *testing.T) {
	b := New(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	c := FromWords(130, b.Words())
	if !b.Equal(c) {
		t.Fatalf("Words/FromWords round trip mismatch")
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct{ bits, want int }{
		{0, 0}, {1, 8}, {64, 8}, {65, 16}, {128, 16}, {129, 24},
	}
	for _, c := range cases {
		if got := New(c.bits).SizeBytes(); got != c.want {
			t.Errorf("New(%d).SizeBytes() = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	b := New(8)
	b.Set(1)
	b.Set(6)
	if got := b.String(); got != "01000010" {
		t.Errorf("String = %q, want %q", got, "01000010")
	}
	big := New(1024)
	if len(big.String()) >= 1024 {
		t.Error("String of large bitmap not abbreviated")
	}
}

// Property: PopCount equals the number of distinct indices set.
func TestQuickPopCountMatchesDistinctSets(t *testing.T) {
	f := func(indices []uint16) bool {
		b := New(1 << 16)
		distinct := map[int]bool{}
		for _, idx := range indices {
			b.Set(int(idx))
			distinct[int(idx)] = true
		}
		return b.PopCount() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: OR is commutative on the set of set-bits.
func TestQuickOrCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a1, b1 := New(256), New(256)
		for _, x := range xs {
			a1.Set(int(x))
		}
		for _, y := range ys {
			b1.Set(int(y))
		}
		a2, b2 := a1.Clone(), b1.Clone()
		a1.Or(b1) // a1 = a OR b
		b2.Or(a2) // b2 = b OR a
		return a1.Equal(b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Get after Set reflects exactly the inserted set, for random
// operations.
func TestQuickSetClearModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%500 + 1
		b := New(size)
		model := make(map[int]bool)
		for i := 0; i < 200; i++ {
			idx := rng.Intn(size)
			if rng.Intn(2) == 0 {
				b.Set(idx)
				model[idx] = true
			} else {
				b.Clear(idx)
				delete(model, idx)
			}
		}
		for i := 0; i < size; i++ {
			if b.Get(i) != model[i] {
				return false
			}
		}
		return b.PopCount() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: OrRange(off, b.Slice(off, len)) is idempotent with respect to the
// bits of the slice.
func TestQuickSliceOrRangeRoundTrip(t *testing.T) {
	f := func(xs []uint8, offRaw uint8) bool {
		full := New(512)
		for _, x := range xs {
			full.Set(int(x) * 2)
		}
		off := int(offRaw) % 384
		part := full.Slice(off, 128)
		rebuilt := New(512)
		rebuilt.OrRange(off, part)
		// Every bit in rebuilt must be set in full and lie in the window.
		ok := true
		rebuilt.ForEachSet(func(i int) bool {
			if i < off || i >= off+128 || !full.Get(i) {
				ok = false
				return false
			}
			return true
		})
		// Every bit of full inside the window must be in rebuilt.
		full.ForEachSet(func(i int) bool {
			if i >= off && i < off+128 && !rebuilt.Get(i) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	bm := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(i & (1<<16 - 1))
	}
}

func BenchmarkOr(b *testing.B) {
	x := New(1 << 16)
	y := New(1 << 16)
	for i := 0; i < 1<<16; i += 3 {
		y.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkPopCount(b *testing.B) {
	x := New(1 << 16)
	for i := 0; i < 1<<16; i += 2 {
		x.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.PopCount() != 1<<15 {
			b.Fatal("bad popcount")
		}
	}
}
