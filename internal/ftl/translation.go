package ftl

import (
	"fmt"
	"sort"

	"geckoftl/internal/flash"
)

// mappingEntryBytes is the size of one mapping entry in a translation page:
// a 4-byte physical address, as in Section 2 of the paper.
const mappingEntryBytes = 4

// translationTable is the flash-resident page-associative translation table
// of DFTL-style FTLs, together with its RAM-resident Global Mapping Directory
// (GMD).
//
// The table maps every logical page to the physical page that holds its
// current flash-resident version. Mapping entries are grouped into
// translation pages of entriesPerPage consecutive logical pages; the GMD
// records where the newest version of each translation page lives. The table
// also keeps, per logical page, the mapping value as stored in flash (the
// simulator does not store payloads in the device, so this mirror is the
// translation pages' content); cached, possibly newer values live in the
// FTL's LRU cache and reach the table only through synchronization
// operations.
// prevVersion preserves the location and content of a translation page as it
// was before the first update since the last Gecko buffer flush; buffer
// recovery (Appendix C.2.2) diffs against it.
type prevVersion struct {
	location flash.PPN
	content  []flash.PPN
}

type translationTable struct {
	bm            *blockManager
	logicalPages  int64
	entriesPerTP  int
	pages         int
	gmd           []flash.PPN // current location of each translation page
	flashMapping  []flash.PPN // flash-resident mapping value per logical page
	prevVersions  map[int]prevVersion
	protectBlocks map[flash.BlockID]bool
	syncOps       int64
	aborted       int64
}

// newTranslationTable creates the table for the given number of logical
// pages. Every mapping starts out unmapped (InvalidPPN) and no translation
// page exists in flash until the first synchronization touches it.
func newTranslationTable(bm *blockManager, logicalPages int64, pageSize int) *translationTable {
	entriesPerTP := pageSize / mappingEntryBytes
	pages := int((logicalPages + int64(entriesPerTP) - 1) / int64(entriesPerTP))
	t := &translationTable{
		bm:            bm,
		logicalPages:  logicalPages,
		entriesPerTP:  entriesPerTP,
		pages:         pages,
		gmd:           make([]flash.PPN, pages),
		flashMapping:  make([]flash.PPN, logicalPages),
		prevVersions:  make(map[int]prevVersion),
		protectBlocks: make(map[flash.BlockID]bool),
	}
	for i := range t.gmd {
		t.gmd[i] = flash.InvalidPPN
	}
	for i := range t.flashMapping {
		t.flashMapping[i] = flash.InvalidPPN
	}
	return t
}

// EntriesPerPage returns the number of mapping entries per translation page.
func (t *translationTable) EntriesPerPage() int { return t.entriesPerTP }

// Pages returns the number of translation pages.
func (t *translationTable) Pages() int { return t.pages }

// SyncOps returns the number of synchronization operations performed.
func (t *translationTable) SyncOps() int64 { return t.syncOps }

// AbortedSyncOps returns the number of synchronization operations aborted
// because every participating entry turned out to be clean (Appendix C.3.1).
func (t *translationTable) AbortedSyncOps() int64 { return t.aborted }

// pageOf returns the translation page index covering a logical page.
func (t *translationTable) pageOf(lpn flash.LPN) int {
	return int(int64(lpn) / int64(t.entriesPerTP))
}

// FlashEntry returns the mapping for lpn as currently recorded in flash.
func (t *translationTable) FlashEntry(lpn flash.LPN) flash.PPN {
	return t.flashMapping[lpn]
}

// ReadEntry performs the flash read of the translation page covering lpn (a
// cache miss path) and returns the flash-resident mapping. If the translation
// page has never been written, no IO happens and the mapping is unmapped.
func (t *translationTable) ReadEntry(lpn flash.LPN, p flash.Purpose) (flash.PPN, error) {
	tp := t.pageOf(lpn)
	if loc := t.gmd[tp]; loc != flash.InvalidPPN {
		if err := t.bm.dev.ReadPage(loc, p); err != nil {
			return flash.InvalidPPN, err
		}
	}
	return t.flashMapping[lpn], nil
}

// dirtyUpdate is one cached mapping entry participating in a synchronization
// operation.
type dirtyUpdate struct {
	Logical  flash.LPN
	Physical flash.PPN
}

// Synchronize performs a synchronization operation on one translation page
// (Section 4, "Synchronization Operations"): it reads the current version of
// the translation page, applies the dirty cached mapping entries that belong
// to it, writes the updated page out-of-place into the translation block
// group, updates the GMD and invalidates the old version.
//
// It returns the physical pages that held the previous versions of the
// updated logical pages (the before-images): the caller reports them to the
// page-validity store, which is how invalid user pages are identified lazily
// (Section 4.1).
//
// If updates is empty the operation is aborted at no cost beyond the read
// that discovered it (Appendix C.3.1 relies on this).
func (t *translationTable) Synchronize(tp int, updates []dirtyUpdate) (beforeImages []flash.PPN, err error) {
	if tp < 0 || tp >= t.pages {
		return nil, fmt.Errorf("ftl: translation page %d out of range [0,%d)", tp, t.pages)
	}
	old := t.gmd[tp]
	if old != flash.InvalidPPN {
		if err := t.bm.dev.ReadPage(old, flash.PurposeTranslation); err != nil {
			return nil, err
		}
	}
	if len(updates) == 0 {
		t.aborted++
		return nil, nil
	}
	t.syncOps++

	// Preserve the previous content of this translation page so that the
	// recovery procedure can rebuild Logarithmic Gecko's buffer by diffing
	// translation-page versions (Appendix C.2.2). The snapshot is dropped
	// when the Gecko buffer flushes (ClearProtected).
	if _, ok := t.prevVersions[tp]; !ok {
		t.prevVersions[tp] = prevVersion{location: old, content: t.snapshot(tp)}
		if old != flash.InvalidPPN {
			t.protectBlocks[flash.BlockOf(old, t.bm.cfg.PagesPerBlock)] = true
		}
	}

	for _, u := range updates {
		if t.pageOf(u.Logical) != tp {
			return nil, fmt.Errorf("ftl: update for logical page %d does not belong to translation page %d", u.Logical, tp)
		}
		prev := t.flashMapping[u.Logical]
		if prev != flash.InvalidPPN && prev != u.Physical {
			beforeImages = append(beforeImages, prev)
		}
		t.flashMapping[u.Logical] = u.Physical
	}

	// Aux carries the content sequence: the newest write sequence the
	// mapping content of this version reflects. Synchronize includes every
	// dirty cached entry of the translation page, so the content is current
	// up to this instant. Garbage-collection copies of the page refresh its
	// WriteSeq but preserve Aux, which is what lets recovery date the
	// durable mapping state (see recoverDirtyEntries).
	spare := flash.SpareArea{Logical: flash.InvalidLPN, Tag: uint64(tp), Aux: t.bm.LastWriteSeq()}
	loc, err := t.bm.AllocatePage(GroupTranslation, spare, flash.PurposeTranslation)
	if err != nil {
		return nil, err
	}
	if old != flash.InvalidPPN {
		if err := t.bm.InvalidatePage(old); err != nil {
			return nil, err
		}
	}
	t.gmd[tp] = loc
	return beforeImages, nil
}

// snapshot copies the current flash-resident mapping values of a translation
// page.
func (t *translationTable) snapshot(tp int) []flash.PPN {
	start := int64(tp) * int64(t.entriesPerTP)
	end := start + int64(t.entriesPerTP)
	if end > t.logicalPages {
		end = t.logicalPages
	}
	out := make([]flash.PPN, end-start)
	copy(out, t.flashMapping[start:end])
	return out
}

// PreviousVersion returns the preserved pre-update version of a translation
// page, if one is protected, together with the first logical page it covers.
func (t *translationTable) PreviousVersion(tp int) (start flash.LPN, prev prevVersion, ok bool) {
	prev, ok = t.prevVersions[tp]
	return flash.LPN(int64(tp) * int64(t.entriesPerTP)), prev, ok
}

// UpdatedSinceProtection returns the translation pages with a protected
// previous version, i.e. those updated since the last Gecko buffer flush.
// The result is sorted: recovery replays invalidations in this order into
// Logarithmic Gecko's buffer, and a map-ordered replay could flush different
// buffer contents on different runs of the same seeded simulation (the
// buffer drains whenever it fills mid-replay), breaking reproducibility.
func (t *translationTable) UpdatedSinceProtection() []int {
	out := make([]int, 0, len(t.prevVersions))
	for tp := range t.prevVersions {
		out = append(out, tp)
	}
	sort.Ints(out)
	return out
}

// ProtectedBlocks returns the blocks that must not be erased because they
// hold previous translation-page versions needed for buffer recovery.
func (t *translationTable) ProtectedBlocks() map[flash.BlockID]bool { return t.protectBlocks }

// ClearProtected drops the protected previous versions; the FTL calls it
// whenever Logarithmic Gecko's buffer is flushed.
func (t *translationTable) ClearProtected() {
	t.prevVersions = make(map[int]prevVersion)
	t.protectBlocks = make(map[flash.BlockID]bool)
}

// GMDLocation returns the current flash location of a translation page.
func (t *translationTable) GMDLocation(tp int) flash.PPN { return t.gmd[tp] }

// SetGMDLocation restores a GMD entry; recovery uses it.
func (t *translationTable) SetGMDLocation(tp int, ppn flash.PPN) { t.gmd[tp] = ppn }

// RAMBytes returns the integrated-RAM footprint of the GMD: 4 bytes per
// translation page, as in Section 2 of the paper.
func (t *translationTable) RAMBytes() int64 { return int64(t.pages) * 4 }

// CrashRAM models the loss of the GMD at power failure. The flash-resident
// mapping content survives (it is flash), as do the protected previous
// versions (they are flash pages that were deliberately not erased).
func (t *translationTable) CrashRAM() {
	for i := range t.gmd {
		t.gmd[i] = flash.InvalidPPN
	}
}
