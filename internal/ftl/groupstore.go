package ftl

import (
	"geckoftl/internal/flash"
	"geckoftl/internal/metastore"
)

// groupStore adapts the block manager's metadata block group to the
// metastore.Storage interface that Logarithmic Gecko, the flash-resident PVB
// and the page validity log write through. Appends allocate pages from the
// metadata group (growing it from the free pool on demand), and invalidations
// feed the Blocks Validity Counter so that fully-invalid metadata blocks can
// be erased without migrations (Section 4.2).
type groupStore struct {
	bm *blockManager
}

var _ metastore.Storage = (*groupStore)(nil)
var _ metastore.BlockLister = (*groupStore)(nil)

// Append programs the next free metadata page.
func (s *groupStore) Append(spare flash.SpareArea) (flash.PPN, error) {
	return s.bm.AllocatePage(GroupMeta, spare, flash.PurposePageValidity)
}

// Read accounts a full page read of a metadata page.
func (s *groupStore) Read(ppn flash.PPN) error {
	return s.bm.dev.ReadPage(ppn, flash.PurposePageValidity)
}

// ReadSpare accounts a spare-area read of a metadata page.
func (s *groupStore) ReadSpare(ppn flash.PPN) (flash.SpareArea, bool, error) {
	return s.bm.dev.ReadSpare(ppn, flash.PurposePageValidity)
}

// Invalidate marks a metadata page obsolete in the BVC.
func (s *groupStore) Invalidate(ppn flash.PPN) error {
	return s.bm.InvalidatePage(ppn)
}

// Blocks returns the blocks currently allocated to the metadata group, which
// is what Logarithmic Gecko's directory recovery scans.
func (s *groupStore) Blocks() []flash.BlockID {
	return s.bm.BlocksInGroup(GroupMeta)
}
