package ftl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"geckoftl/internal/flash"
)

// hammerDevice builds a single-channel device for fault campaigns.
// maxErase > 0 bounds every block's erase budget.
func hammerDevice(t *testing.T, blocks, maxErase int, plan flash.FaultPlan) *flash.Device {
	t.Helper()
	cfg := flash.ScaledConfig(blocks)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.MaxEraseCount = maxErase
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	return dev
}

// auditFaultInvariants checks every consistency and wear invariant the FTL
// promises to hold no matter what faults the device injected, returning an
// error (rather than failing t) so campaigns can shrink a failure to its
// smallest reproducing prefix.
func auditFaultInvariants(f *FTL) error {
	bm := f.bm
	// Conservation: every successful erase returns exactly one block to the
	// free pool; retirement touches neither counter.
	if bm.Erases() != bm.Frees() {
		return fmt.Errorf("erases %d != blocks freed %d", bm.Erases(), bm.Frees())
	}
	freeSet := make(map[flash.BlockID]bool, len(bm.free))
	for _, b := range bm.free {
		freeSet[b] = true
	}
	for i := range bm.blocks {
		info := &bm.blocks[i]
		block := flash.BlockID(i)
		if info.valid < 0 {
			return fmt.Errorf("block %d: negative BVC %d", i, info.valid)
		}
		if info.valid > info.writePointer {
			return fmt.Errorf("block %d: BVC %d exceeds write pointer %d", i, info.valid, info.writePointer)
		}
		if info.writePointer > f.cfg.PagesPerBlock {
			return fmt.Errorf("block %d: write pointer %d exceeds block size", i, info.writePointer)
		}
		ec, err := f.dev.EraseCount(block)
		if err != nil {
			return err
		}
		if info.eraseCount != ec {
			return fmt.Errorf("block %d: RAM erase-count mirror %d != device %d", i, info.eraseCount, ec)
		}
		bad, err := f.dev.BadBlock(block)
		if err != nil {
			return err
		}
		if bad != info.retired {
			return fmt.Errorf("block %d: device bad-block=%v but manager retired=%v", i, bad, info.retired)
		}
		if info.retired {
			if info.allocated {
				return fmt.Errorf("block %d: retired but still allocated", i)
			}
			if freeSet[block] {
				return fmt.Errorf("block %d: retired but in the free pool", i)
			}
		}
		if freeSet[block] && info.allocated {
			return fmt.Errorf("block %d: in the free pool but allocated", i)
		}
	}
	if got := int64(bm.BadBlocks()); got != f.Stats().BadBlocks {
		return fmt.Errorf("Stats().BadBlocks = %d, manager counts %d", f.Stats().BadBlocks, got)
	}
	// Mapping round-trips: every mapped logical page points at a programmed
	// page whose spare names it, with no double-mapping.
	return f.CheckConsistency()
}

// faultCampaign is one randomized fault-injection run: a device fault plan, an
// FTL configuration, and a seeded workload mix.
type faultCampaign struct {
	name     string
	plan     flash.FaultPlan
	maxErase int
	opts     Options
	seed     int64
	ops      int
}

// deviceDead reports errors that mean the device ran out of usable space —
// the legitimate end of life under heavy fault injection, not a bug.
func deviceDead(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "no free blocks") ||
		strings.Contains(err.Error(), "garbage collection stalled") ||
		strings.Contains(err.Error(), "found no victim"))
}

// runCampaign replays a campaign for at most maxOps operations, auditing
// every auditEvery operations and at the end. It returns the final statistics
// and the first audit (or unexpected operation) error together with the
// operation count at which it surfaced.
func runCampaign(t *testing.T, c faultCampaign, maxOps, auditEvery int) (Stats, int, error) {
	t.Helper()
	dev := hammerDevice(t, 64, c.maxErase, c.plan)
	f, err := New(dev, c.opts)
	if err != nil {
		t.Fatal(err)
	}
	lp := f.LogicalPages()
	rng := rand.New(rand.NewSource(c.seed))
	for op := 1; op <= maxOps; op++ {
		var lpn flash.LPN
		if rng.Intn(4) == 0 {
			// Skewed quarter of the traffic: hammer a small hot set so some
			// blocks absorb disproportionate reads and erases.
			lpn = flash.LPN(rng.Int63n(lp / 8))
		} else {
			lpn = flash.LPN(rng.Int63n(lp))
		}
		switch rng.Intn(10) {
		case 0, 1, 2:
			err = f.Read(lpn)
		case 3:
			err = f.Trim(lpn)
		default:
			err = f.Write(lpn)
		}
		if deviceDead(err) {
			break // capacity exhausted by retirement: a legitimate end
		}
		if err != nil {
			return f.Stats(), op, fmt.Errorf("op %d: %w", op, err)
		}
		if op%auditEvery == 0 {
			if err := auditFaultInvariants(f); err != nil {
				return f.Stats(), op, err
			}
		}
	}
	if err := auditFaultInvariants(f); err != nil {
		return f.Stats(), maxOps, err
	}
	return f.Stats(), maxOps, nil
}

// shrinkCampaign bisects the smallest operation-count prefix of a failing
// campaign that still fails, so the test log carries a minimal, replayable
// schedule instead of a 4000-operation haystack.
func shrinkCampaign(t *testing.T, c faultCampaign, failedAt int, auditEvery int) int {
	t.Helper()
	lo, hi := 1, failedAt
	for lo < hi {
		mid := lo + (hi-lo)/2
		if _, _, err := runCampaign(t, c, mid, auditEvery); err != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// TestFaultHammer runs randomized fault campaigns — fault mixes crossed with
// FTL policies, each at several seeds — and audits every consistency and
// wear invariant between bursts. A failure shrinks to the smallest failing
// prefix and logs a replay line (plan + seed + op count) that reproduces it
// deterministically. Run it under -race: the flash device below is the same
// concurrent code the engine hammers.
func TestFaultHammer(t *testing.T) {
	gecko := GeckoFTLOptions(192)
	gecko.WearAwareAllocation = true
	geckoScrub := gecko
	geckoScrub.ScrubReadThreshold = 48
	dftl := DFTLOptions(192)
	lazy := LazyFTLOptions(192)

	plans := []struct {
		name     string
		plan     flash.FaultPlan
		maxErase int
	}{
		{"program-faults", flash.FaultPlan{ProgramFailRate: 0.02}, 0},
		{"erase-faults", flash.FaultPlan{EraseFailRate: 0.01}, 0},
		{"wearout", flash.FaultPlan{}, 24},
		{"mixed", flash.FaultPlan{ProgramFailRate: 0.01, EraseFailRate: 0.005}, 48},
		{"scripted", flash.FaultPlan{Schedule: []flash.FaultEvent{
			{Op: flash.OpPageWrite, AtCount: 1},
			{Op: flash.OpPageWrite, AtCount: 97},
			{Op: flash.OpErase, AtCount: 2},
			{Op: flash.OpErase, AtCount: 11},
		}}, 0},
	}
	policies := []struct {
		name string
		opts Options
	}{
		{"geckoftl-wear-aware", gecko},
		{"geckoftl-scrub", geckoScrub},
		{"dftl-greedy", dftl},
		{"lazyftl", lazy},
	}

	const ops, auditEvery = 3000, 500
	for _, pl := range plans {
		for _, po := range policies {
			pl, po := pl, po
			t.Run(pl.name+"/"+po.name, func(t *testing.T) {
				for _, seed := range []int64{1, 2, 3} {
					c := faultCampaign{
						name:     pl.name + "/" + po.name,
						plan:     pl.plan,
						maxErase: pl.maxErase,
						opts:     po.opts,
						seed:     seed,
						ops:      ops,
					}
					c.plan.Seed = seed
					st, failedAt, err := runCampaign(t, c, ops, auditEvery)
					if err != nil {
						minOps := shrinkCampaign(t, c, failedAt, auditEvery)
						t.Fatalf("campaign failed: %v\nreplay: plan=%+v maxErase=%d ftl=%s seed=%d ops=%d (shrunk from %d)",
							err, c.plan, c.maxErase, c.opts.Name, seed, minOps, failedAt)
					}
					// The hammer must actually hammer: campaigns whose fault
					// plan makes failures statistically certain have to show
					// fault activity, or the injection layer silently rotted.
					if c.plan.ProgramFailRate >= 0.02 && st.ProgramRetries == 0 {
						t.Fatalf("seed %d: no program retries at %.0f%% fault rate", seed, c.plan.ProgramFailRate*100)
					}
					if len(c.plan.Schedule) > 0 && (st.ProgramRetries < 2 || st.BadBlocks < 2) {
						t.Fatalf("seed %d: scripted schedule underfired: retries=%d bad=%d", seed, st.ProgramRetries, st.BadBlocks)
					}
				}
			})
		}
	}
}

// TestFaultHammerConcurrentEngine hammers a sharded engine with concurrent
// batches while the device injects program and erase faults, then quiesces
// and audits every shard. Under -race this exercises the fault paths'
// concurrency (per-die fault decisions, shared bad-block state).
func TestFaultHammerConcurrentEngine(t *testing.T) {
	cfg := flash.ScaledConfig(128)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.Channels = 2
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetFaultPlan(flash.FaultPlan{Seed: 7, ProgramFailRate: 0.01, EraseFailRate: 0.002}); err != nil {
		t.Fatal(err)
	}
	opts := GeckoFTLOptions(256)
	opts.WearAwareAllocation = true
	e, err := NewEngine(dev, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	lp := e.LogicalPages()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			batch := make([]flash.LPN, 32)
			for round := 0; round < 40; round++ {
				for i := range batch {
					batch[i] = flash.LPN(rng.Int63n(lp))
				}
				var err error
				if g%2 == 0 {
					err = e.WriteBatch(context.Background(), batch)
				} else {
					if err = e.WriteBatch(context.Background(), batch); err == nil {
						err = e.ReadBatch(context.Background(), batch)
					}
				}
				if err != nil && !deviceDead(err) {
					t.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for s := 0; s < e.Shards(); s++ {
		if err := auditFaultInvariants(e.Shard(s)); err != nil {
			t.Errorf("shard %d: %v", s, err)
		}
	}
	if e.Stats().ProgramRetries == 0 {
		t.Error("hammer with 1% program fault rate recorded no retries")
	}
}

// TestWornOutBlockRetired is the regression test for the garbage-collection
// wedge: before bad-block retirement, blockManager.Erase propagated
// ErrWornOut, the drained victim stayed allocated with zero valid pages, and
// the next write re-picked it as victim forever. The FTL must instead retire
// the block and keep serving until capacity genuinely runs out.
func TestWornOutBlockRetired(t *testing.T) {
	dev := hammerDevice(t, 48, 6, flash.FaultPlan{})
	opts := GeckoFTLOptions(128)
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	lp := f.LogicalPages()
	rng := rand.New(rand.NewSource(11))
	var last error
	for op := 0; op < 60000; op++ {
		if err := f.Write(flash.LPN(rng.Int63n(lp))); err != nil {
			last = err
			break
		}
	}
	// Worn-out erases must never surface to the host: blocks are retired and
	// the device keeps serving until it truly runs out of space.
	if errors.Is(last, flash.ErrWornOut) {
		t.Fatalf("Write surfaced ErrWornOut instead of retiring the block: %v", last)
	}
	if last != nil && !deviceDead(last) {
		t.Fatalf("Write failed with %v, want device-capacity exhaustion or success", last)
	}
	if f.Stats().BadBlocks == 0 {
		t.Fatal("no blocks retired despite a 6-erase budget; wear-out never hit")
	}
	if err := auditFaultInvariants(f); err != nil {
		t.Fatalf("invariants after wear-out campaign: %v", err)
	}
}

// TestBlockManagerEraseRetiresOnFailure unit-tests the two retirement paths
// of blockManager.Erase: a worn-out budget check and an injected erase
// fault. Both must swallow the error, retire the block, and leave the
// erase/free conservation counters untouched.
func TestBlockManagerEraseRetiresOnFailure(t *testing.T) {
	for _, tc := range []struct {
		name     string
		maxErase int
		plan     flash.FaultPlan
	}{
		{"worn out", 1, flash.FaultPlan{}},
		{"erase fault", 0, flash.FaultPlan{Schedule: []flash.FaultEvent{{Op: flash.OpErase, AtCount: 1}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dev := hammerDevice(t, 8, tc.maxErase, tc.plan)
			bm := newBlockManager(dev, 2, false, false)
			// Allocate a block and roll the frontier off it so it is erasable.
			ppn, err := bm.AllocatePage(GroupUser, flash.SpareArea{Logical: 1}, flash.PurposeUserWrite)
			if err != nil {
				t.Fatal(err)
			}
			block := flash.BlockOf(ppn, dev.Config().PagesPerBlock)
			bm.active[frontierFor(GroupUser, TempCold)] = flash.InvalidBlock
			if tc.maxErase == 1 {
				// Burn the budget: one successful erase brings the block to
				// its limit, so the next attempt hits the worn-out check.
				if err := bm.Erase(block, flash.PurposeGCErase); err != nil {
					t.Fatal(err)
				}
				if _, err := bm.AllocatePage(GroupUser, flash.SpareArea{Logical: 1}, flash.PurposeUserWrite); err != nil {
					t.Fatal(err)
				}
				bm.active[frontierFor(GroupUser, TempCold)] = flash.InvalidBlock
			}
			erases, frees := bm.Erases(), bm.Frees()
			if err := bm.Erase(block, flash.PurposeGCErase); err != nil {
				t.Fatalf("Erase returned %v, want nil (retired)", err)
			}
			if !bm.Retired(block) {
				t.Error("block not retired")
			}
			if g, _ := bm.GroupOf(block); g == GroupUser && bm.blocks[block].allocated {
				t.Error("retired block still allocated")
			}
			if bm.Erases() != erases || bm.Frees() != frees {
				t.Errorf("conservation counters moved: erases %d->%d, frees %d->%d", erases, bm.Erases(), frees, bm.Frees())
			}
			for _, fb := range bm.free {
				if fb == block {
					t.Error("retired block re-entered the free pool")
				}
			}
			if bad, _ := dev.BadBlock(block); !bad {
				t.Error("device does not report the block bad")
			}
		})
	}
}
