// Package ftl implements the flash translation layers studied in the
// GeckoFTL paper: GeckoFTL itself (the paper's contribution) and the four
// state-of-the-art page-associative FTLs it is compared against (DFTL,
// LazyFTL, µ-FTL and IB-FTL).
//
// All five share the same skeleton -- a flash-resident page-associative
// translation table with a Global Mapping Directory and an LRU cache of
// mapping entries, a block manager that separates user, translation and
// metadata blocks, and a garbage collector driven by a Blocks Validity
// Counter -- and differ in how they store page-validity metadata, how they
// bound dirty cached mapping entries, how they pick garbage-collection
// victims and how they recover from power failure. The Options type selects
// those policies; NewGeckoFTL, NewDFTL, NewLazyFTL, NewMuFTL and NewIBFTL
// build the paper's five configurations.
//
// # Mapping to the paper
//
//   - FTL.Write / FTL.Read: "Serving Application Writes/Reads" (Section 4),
//     including GeckoFTL's lazy identification of invalid pages through the
//     UIP flag (Section 4.1).
//   - blockManager: the user/translation/metadata block groups of Figure 8
//     and the Blocks Validity Counter (Appendix B); its victim policies are
//     the greedy baseline, GeckoFTL's metadata-aware policy that never
//     migrates metadata blocks (Section 4.2), and a cost-benefit policy
//     (age times invalid fraction) that extends the paper. Victim selection
//     is deterministic: ties always resolve to the lowest block ID.
//   - translationTable: the flash-resident page-associative mapping with its
//     Global Mapping Directory and synchronization operations.
//   - FTL.Recover: the power-failure recovery protocols, including
//     GeckoFTL's runtime checkpoints that bound the backwards scan
//     (Section 4.3, Appendix C).
//   - The validity store behind the Scheme option is the axis of the
//     paper's comparison: Logarithmic Gecko (package gecko), the RAM- or
//     flash-resident PVB (package pvb), or IB-FTL's page validity log
//     (package pvl).
//
// # Beyond the paper: hot/cold separation and wear
//
// Options.HotColdSeparation splits the user group into two write frontiers.
// A per-LPN heat classifier (heat.go) with exponentially-decayed write
// counts routes each application write to the hot or cold frontier, and
// garbage-collection migrations always land on the cold one, so blocks fill
// with pages of similar lifetimes — the data-placement lever that lowers
// write-amplification on skewed workloads. Options.WearAwareAllocation
// makes the block manager hand out the least-erased free block first,
// narrowing the device's erase-count spread (its lifetime); the per-block
// erase counters are RAM mirrors of the device's truth, re-based during
// recovery.
//
// # Beyond the paper: the sharded Engine
//
// The paper's algorithms are single-threaded. Engine scales them to
// multi-channel devices (see the flash package's topology support): it
// partitions the device into one contiguous block range per channel, runs an
// independent FTL per partition, stripes logical pages across the shards,
// and serves batched IO (ReadBatch/WriteBatch) by fanning requests out to
// the shards in parallel. Because every shard owns its translation map,
// block manager and validity store outright, the only shared state is the
// device itself, which latches per die; the whole engine is safe for
// concurrent use and -race clean.
//
// The engine also crashes and recovers as a unit: Engine.PowerFail drops the
// shared power rail abruptly (mid-batch operations fail with
// flash.ErrPowerFailed; battery configurations flush first), and
// Engine.Recover runs every shard's recovery procedure concurrently — each
// shard is its own flash power domain and scans only its own partition — so
// recovery wall-clock shrinks with the channel count. The aggregated
// EngineRecoveryReport breaks the work down per shard and reports the
// slowest-shard critical path next to the single-plane serial cost.
package ftl
