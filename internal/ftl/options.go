package ftl

import (
	"fmt"

	"geckoftl/internal/flash"
	"geckoftl/internal/gecko"
)

// Scheme selects how an FTL stores page-validity metadata, which is the first
// of the two axes along which the paper's five FTLs differ (Section 5.3).
type Scheme int

const (
	// SchemeGecko stores page-validity metadata in flash with Logarithmic
	// Gecko (GeckoFTL).
	SchemeGecko Scheme = iota
	// SchemeRAMPVB keeps the Page Validity Bitmap in integrated RAM (DFTL,
	// LazyFTL).
	SchemeRAMPVB
	// SchemeFlashPVB stores the Page Validity Bitmap in flash (µ-FTL).
	SchemeFlashPVB
	// SchemePVL logs invalidated page addresses in flash with per-block
	// chains (IB-FTL).
	SchemePVL
)

var schemeNames = [...]string{
	SchemeGecko:    "logarithmic-gecko",
	SchemeRAMPVB:   "ram-pvb",
	SchemeFlashPVB: "flash-pvb",
	SchemePVL:      "pvl",
}

// String names the scheme.
func (s Scheme) String() string {
	if s >= 0 && int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// GCMode selects how the garbage collector schedules its work relative to
// application writes, the second axis (besides the victim policy) along
// which GC behaviour can be varied for latency experiments.
type GCMode int

const (
	// GCInline reclaims whole victims synchronously inside the application
	// write that found the free pool at the reserve — the paper's implicit
	// scheduling. Throughput-optimal, but a single write can absorb an
	// entire victim's relocation cost as a stall.
	GCInline GCMode = iota
	// GCIncremental bounds the garbage-collection work charged to any single
	// application write to Options.GCPagesPerWrite relocation/erase steps,
	// draining a victim across consecutive writes. Foreground writes then
	// observe a bounded worst-case stall (model.IncrementalGCStallBound) at
	// the cost of garbage collection starting earlier.
	GCIncremental
)

var gcModeNames = [...]string{
	GCInline:      "inline",
	GCIncremental: "incremental",
}

// String names the mode; ParseGCMode accepts exactly these names.
func (m GCMode) String() string {
	if m >= 0 && int(m) < len(gcModeNames) {
		return gcModeNames[m]
	}
	return fmt.Sprintf("gc-mode(%d)", int(m))
}

// ParseGCMode maps a GC-mode name (as produced by GCMode.String) back to the
// mode. Command-line tools route their -gc-mode flags through it so that a
// typo is a usage error rather than a silently ignored setting.
func ParseGCMode(s string) (GCMode, error) {
	for m, name := range gcModeNames {
		if s == name {
			return GCMode(m), nil
		}
	}
	return 0, fmt.Errorf("ftl: unknown GC mode %q (want inline or incremental)", s)
}

// ParseVictimPolicy maps a victim-policy name (as produced by
// VictimPolicy.String) back to the policy.
func ParseVictimPolicy(s string) (VictimPolicy, error) {
	switch s {
	case VictimGreedy.String():
		return VictimGreedy, nil
	case VictimMetadataAware.String():
		return VictimMetadataAware, nil
	case VictimCostBenefit.String():
		return VictimCostBenefit, nil
	}
	return 0, fmt.Errorf("ftl: unknown victim policy %q (want greedy, metadata-aware or cost-benefit)", s)
}

// DefaultGCPagesPerWrite is the default per-write step budget of the
// incremental garbage collector. It is sized so that, at the paper's
// over-provisioning (victims roughly half valid in the worst case, each step
// reclaiming about one page of net space), reclaim stays ahead of the two to
// four pages a logical write consumes across user data and metadata.
const DefaultGCPagesPerWrite = 4

// Options configures an FTL instance. The New* constructors fill it in for
// the paper's five FTLs; tests and ablation benchmarks tweak individual
// fields.
type Options struct {
	// Name labels the FTL in experiment output.
	Name string
	// Scheme selects the page-validity store.
	Scheme Scheme
	// CacheEntries is C, the capacity of the LRU mapping cache.
	CacheEntries int
	// DirtyFraction bounds the fraction of the cache that may hold dirty
	// mapping entries (LazyFTL and IB-FTL use 0.1); zero means unbounded.
	DirtyFraction float64
	// Battery marks FTLs that rely on a battery to synchronize dirty
	// mapping entries at power failure (DFTL, µ-FTL).
	Battery bool
	// Checkpoints enables GeckoFTL's runtime checkpoints (Section 4.3).
	Checkpoints bool
	// VictimPolicy selects the garbage-collection victim policy.
	VictimPolicy VictimPolicy
	// GCMode selects inline (whole victim per write) or incremental (bounded
	// steps per write) garbage-collection scheduling.
	GCMode GCMode
	// GCPagesPerWrite is the incremental garbage collector's step budget: the
	// maximum number of page relocations or block erases charged to a single
	// application write under GCIncremental. Zero selects
	// DefaultGCPagesPerWrite; the field is ignored under GCInline.
	GCPagesPerWrite int
	// GCFreeBlockReserve is the number of free blocks below which
	// garbage-collection runs. Zero selects a default of 4.
	GCFreeBlockReserve int
	// GeckoSizeRatio overrides Logarithmic Gecko's size ratio T (default 2).
	GeckoSizeRatio int
	// GeckoPartitionFactor overrides the entry-partitioning factor S
	// (default: the recommended factor). Set to 1 to disable partitioning.
	GeckoPartitionFactor int
	// GeckoMultiWayMerge enables the multi-way merge of Appendix A.
	GeckoMultiWayMerge bool
	// PVLMaxEntries bounds the IB-FTL page validity log (0 = the Appendix E
	// default of twice the over-provisioned space).
	PVLMaxEntries int
	// WearLeveling enables the Appendix D gradual-scan wear-leveler: one
	// spare-area read per application write and recycling of exceptionally
	// unworn static blocks.
	WearLeveling bool
	// WearThreshold is the erase-count discrepancy above which a static
	// block is recycled (0 selects the default of 8).
	WearThreshold int
	// HotColdSeparation gives user data two write frontiers, with an
	// exponentially-decayed per-LPN heat classifier routing each
	// application write to the hot or cold one. Blocks then fill with
	// pages of similar lifetimes, which lowers write-amplification on
	// skewed workloads (hot blocks die nearly whole, cold blocks are not
	// churned).
	HotColdSeparation bool
	// HeatHalfLife is the heat classifier's decay half-life in logical
	// writes (0 selects logicalPages/2). Ignored without HotColdSeparation.
	HeatHalfLife int
	// HeatThreshold is the decayed write count at which a page counts as
	// hot (0 selects 2.0). Ignored without HotColdSeparation.
	HeatThreshold float64
	// WearAwareAllocation makes the block manager hand out the
	// least-erased free block (coldest-erase-count first) instead of the
	// most recently freed one, narrowing the device's erase-count spread.
	WearAwareAllocation bool
	// ScrubReadThreshold enables read-disturb scrubbing: after a user read,
	// a block whose read count since its last erase reaches the threshold is
	// relocated (same machinery as a garbage-collection reclaim) so its
	// payloads are rewritten before they decay. Zero disables scrubbing.
	// To stay ahead of a device that decays payloads after T reads, the
	// threshold must be at most T minus the reads a single scrub can add.
	ScrubReadThreshold int
}

// validate normalizes and checks the options against a device configuration.
func (o *Options) validate(cfg flash.Config) error {
	if o.CacheEntries <= 0 {
		return fmt.Errorf("ftl: cache capacity %d must be positive", o.CacheEntries)
	}
	if o.DirtyFraction < 0 || o.DirtyFraction > 1 {
		return fmt.Errorf("ftl: dirty fraction %f out of range [0,1]", o.DirtyFraction)
	}
	if o.GCFreeBlockReserve == 0 {
		o.GCFreeBlockReserve = 4
	}
	if o.GCFreeBlockReserve < 2 {
		return fmt.Errorf("ftl: GC reserve %d must be at least 2", o.GCFreeBlockReserve)
	}
	if o.GCFreeBlockReserve >= cfg.Blocks/2 {
		return fmt.Errorf("ftl: GC reserve %d too large for %d blocks", o.GCFreeBlockReserve, cfg.Blocks)
	}
	if o.GCMode != GCInline && o.GCMode != GCIncremental {
		return fmt.Errorf("ftl: unknown GC mode %v", o.GCMode)
	}
	if o.GCPagesPerWrite < 0 {
		return fmt.Errorf("ftl: GC pages per write %d must be >= 0", o.GCPagesPerWrite)
	}
	if o.GCPagesPerWrite == 0 {
		o.GCPagesPerWrite = DefaultGCPagesPerWrite
	}
	if o.GeckoSizeRatio == 0 {
		o.GeckoSizeRatio = gecko.DefaultSizeRatio
	}
	if o.GeckoSizeRatio < 2 {
		return fmt.Errorf("ftl: gecko size ratio %d must be at least 2", o.GeckoSizeRatio)
	}
	if o.WearThreshold < 0 {
		return fmt.Errorf("ftl: wear threshold %d must be >= 0", o.WearThreshold)
	}
	if o.VictimPolicy != VictimGreedy && o.VictimPolicy != VictimMetadataAware && o.VictimPolicy != VictimCostBenefit {
		return fmt.Errorf("ftl: unknown victim policy %v", o.VictimPolicy)
	}
	if o.HeatHalfLife < 0 {
		return fmt.Errorf("ftl: heat half-life %d must be >= 0", o.HeatHalfLife)
	}
	if o.HeatThreshold < 0 {
		return fmt.Errorf("ftl: heat threshold %g must be >= 0", o.HeatThreshold)
	}
	if o.ScrubReadThreshold < 0 {
		return fmt.Errorf("ftl: scrub read threshold %d must be >= 0", o.ScrubReadThreshold)
	}
	if o.Name == "" {
		o.Name = o.Scheme.String()
	}
	return nil
}

// DefaultCacheEntries is the paper's default LRU cache capacity: a 4 MB cache
// at 8 bytes per entry holds 2^19 entries (Section 5). Simulations on scaled
// devices use proportionally smaller caches.
const DefaultCacheEntries = 1 << 19

// GeckoFTLOptions returns the paper's GeckoFTL configuration: Logarithmic
// Gecko for page validity, no battery, runtime checkpoints, metadata-aware
// garbage-collection and an unbounded dirty fraction.
func GeckoFTLOptions(cacheEntries int) Options {
	return Options{
		Name:         "GeckoFTL",
		Scheme:       SchemeGecko,
		CacheEntries: cacheEntries,
		Checkpoints:  true,
		VictimPolicy: VictimMetadataAware,
	}
}

// DFTLOptions returns the DFTL configuration: RAM-resident PVB, battery
// recovery, greedy garbage-collection.
func DFTLOptions(cacheEntries int) Options {
	return Options{
		Name:         "DFTL",
		Scheme:       SchemeRAMPVB,
		CacheEntries: cacheEntries,
		Battery:      true,
		VictimPolicy: VictimGreedy,
	}
}

// LazyFTLOptions returns the LazyFTL configuration: RAM-resident PVB, no
// battery, dirty entries bounded to 10% of the cache, greedy GC.
func LazyFTLOptions(cacheEntries int) Options {
	return Options{
		Name:          "LazyFTL",
		Scheme:        SchemeRAMPVB,
		CacheEntries:  cacheEntries,
		DirtyFraction: 0.1,
		VictimPolicy:  VictimGreedy,
	}
}

// MuFTLOptions returns the µ-FTL configuration: flash-resident PVB, battery
// recovery, greedy GC.
func MuFTLOptions(cacheEntries int) Options {
	return Options{
		Name:         "uFTL",
		Scheme:       SchemeFlashPVB,
		CacheEntries: cacheEntries,
		Battery:      true,
		VictimPolicy: VictimGreedy,
	}
}

// IBFTLOptions returns the IB-FTL configuration: page validity log, no
// battery, dirty entries bounded to 10% of the cache, greedy GC.
func IBFTLOptions(cacheEntries int) Options {
	return Options{
		Name:          "IB-FTL",
		Scheme:        SchemePVL,
		CacheEntries:  cacheEntries,
		DirtyFraction: 0.1,
		VictimPolicy:  VictimGreedy,
	}
}
