package ftl

import (
	"fmt"
	"sort"
	"time"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/gecko"
	"geckoftl/internal/mapcache"
	"geckoftl/internal/pvb"
	"geckoftl/internal/pvl"
)

// validityStore is the page-validity metadata abstraction every FTL variant
// plugs into the engine: Logarithmic Gecko, the RAM- or flash-resident PVB,
// or the IB-FTL page validity log.
type validityStore interface {
	Update(addr flash.Addr) error
	RecordErase(block flash.BlockID) error
	Query(block flash.BlockID) (*bitmap.Bitmap, error)
	RAMBytes() int64
}

// Stats counts the FTL's logical activity. IO counts live in the device
// counters, broken down by flash.Purpose.
type Stats struct {
	// LogicalWrites and LogicalReads count application operations served.
	LogicalWrites, LogicalReads int64
	// LogicalTrims counts host trim (discard) commands served, one per
	// logical page trimmed.
	LogicalTrims int64
	// TrimmedPages counts physical pages whose invalidation was attributed
	// to a host trim: eagerly at trim time when the before-image is known,
	// or at the later synchronization / garbage-collection step that
	// identifies it under GeckoFTL's lazy scheme. Trims of unmapped pages
	// invalidate nothing and are not counted here.
	TrimmedPages int64
	// GCOperations counts garbage-collection victim reclaims.
	GCOperations int64
	// GCMigrations counts valid pages migrated out of victims.
	GCMigrations int64
	// UIPSkips counts victim pages identified as unidentified-invalid just
	// before migration (Section 4.1) and therefore not migrated.
	UIPSkips int64
	// SyncOperations counts translation-page synchronizations.
	SyncOperations int64
	// Checkpoints counts runtime checkpoints taken (Section 4.3).
	Checkpoints int64
	// MetadataBlockErases counts translation/metadata blocks erased because
	// they became fully invalid (the Section 4.2 policy).
	MetadataBlockErases int64
	// ForcedSyncs counts synchronizations forced by the dirty-entry bound of
	// LazyFTL and IB-FTL.
	ForcedSyncs int64
	// GCFallbacks counts writes on which the incremental garbage collector
	// hit the free-block floor and fell back to an unbounded inline reclaim.
	// A healthy incremental configuration keeps this at zero.
	GCFallbacks int64
	// HotWrites and ColdWrites count how the heat classifier routed
	// application writes between the user write frontiers. Both stay zero
	// without Options.HotColdSeparation; their ratio is the observable
	// behind the wear sweep's separation results.
	HotWrites, ColdWrites int64
	// ProgramRetries counts page programs retried on the next frontier page
	// after the device reported a failed program pulse.
	ProgramRetries int64
	// BadBlocks is the number of blocks currently retired from allocation:
	// grown bad blocks (failed erases) plus worn-out blocks. A gauge rather
	// than a counter — recovery recomputes it from the device's bad-block
	// table, so it never double-counts across a crash.
	BadBlocks int64
	// ScrubOperations counts read-disturb scrubs: blocks relocated because
	// their read count since the last erase reached
	// Options.ScrubReadThreshold.
	ScrubOperations int64
}

// FTL is a page-associative flash translation layer instance. Use one of the
// New* constructors to build the paper's five configurations, or New with
// explicit Options for ablations.
//
// FTL is not safe for concurrent use.
type FTL struct {
	opts  Options
	dev   flash.Plane
	cfg   flash.Config
	bm    *blockManager
	table *translationTable
	cache *mapcache.Cache

	validity validityStore
	// lg is the Logarithmic Gecko instance when Scheme == SchemeGecko, for
	// the operations that go beyond the validityStore interface (flush
	// coordination and recovery).
	lg   *gecko.Gecko
	wear *wearLeveler
	// heat routes user writes to the hot or cold frontier when
	// Options.HotColdSeparation is on.
	heat *heatClassifier

	// onVictim, when set (OnVictim), observes every garbage-collection
	// victim at selection time; determinism tests record the sequence.
	onVictim func(flash.BlockID)

	logicalPages int64
	dirtyCount   int
	stats        Stats

	// gc is the incremental garbage-collection scheduler's RAM state (the
	// victim currently being drained); see gc.go. A power failure drops it
	// like every other RAM structure.
	gc gcState
	// opGCTime and opGCSteps account the garbage-collection work (migrations
	// and erases, by the device latency model) charged to the current or most
	// recent Write: the write's GC stall. The engine's latency
	// instrumentation reads them through LastWriteGCStall.
	opGCTime  time.Duration
	opGCSteps int
}

// New creates an FTL over the device with the given options.
func New(dev flash.Plane, opts Options) (*FTL, error) {
	cfg := dev.Config()
	if err := opts.validate(cfg); err != nil {
		return nil, err
	}
	bm := newBlockManager(dev, opts.GCFreeBlockReserve, opts.HotColdSeparation, opts.WearAwareAllocation)
	logicalPages := int64(cfg.LogicalPages())
	table := newTranslationTable(bm, logicalPages, cfg.PageSize)
	cache := mapcache.New(opts.CacheEntries, table.EntriesPerPage())

	f := &FTL{
		opts:         opts,
		dev:          dev,
		cfg:          cfg,
		bm:           bm,
		table:        table,
		cache:        cache,
		wear:         newWearLeveler(opts.WearLeveling, opts.WearThreshold),
		heat:         newHeatClassifier(opts.HotColdSeparation, logicalPages, opts.HeatHalfLife, opts.HeatThreshold),
		logicalPages: logicalPages,
		gc:           gcState{victim: flash.InvalidBlock},
	}

	store := &groupStore{bm: bm}
	switch opts.Scheme {
	case SchemeGecko:
		gcfg := gecko.DefaultConfig(cfg.Blocks, cfg.PagesPerBlock, cfg.PageSize)
		gcfg.SizeRatio = opts.GeckoSizeRatio
		if opts.GeckoPartitionFactor > 0 {
			gcfg.PartitionFactor = opts.GeckoPartitionFactor
		}
		gcfg.MultiWayMerge = opts.GeckoMultiWayMerge
		lg, err := gecko.New(gcfg, store)
		if err != nil {
			return nil, err
		}
		f.lg = lg
		f.validity = lg
	case SchemeRAMPVB:
		p, err := pvb.NewRAMPVB(cfg.Blocks, cfg.PagesPerBlock)
		if err != nil {
			return nil, err
		}
		f.validity = p
	case SchemeFlashPVB:
		p, err := pvb.NewFlashPVB(cfg.Blocks, cfg.PagesPerBlock, cfg.PageSize, store)
		if err != nil {
			return nil, err
		}
		f.validity = p
	case SchemePVL:
		l, err := pvl.New(pvl.Config{
			Blocks:        cfg.Blocks,
			PagesPerBlock: cfg.PagesPerBlock,
			PageSize:      cfg.PageSize,
			MaxEntries:    opts.PVLMaxEntries,
		}, store)
		if err != nil {
			return nil, err
		}
		f.validity = l
	default:
		return nil, fmt.Errorf("ftl: unknown scheme %v", opts.Scheme)
	}
	return f, nil
}

// NewGeckoFTL builds GeckoFTL with the given cache capacity.
func NewGeckoFTL(dev flash.Plane, cacheEntries int) (*FTL, error) {
	return New(dev, GeckoFTLOptions(cacheEntries))
}

// NewDFTL builds DFTL with the given cache capacity.
func NewDFTL(dev flash.Plane, cacheEntries int) (*FTL, error) {
	return New(dev, DFTLOptions(cacheEntries))
}

// NewLazyFTL builds LazyFTL with the given cache capacity.
func NewLazyFTL(dev flash.Plane, cacheEntries int) (*FTL, error) {
	return New(dev, LazyFTLOptions(cacheEntries))
}

// NewMuFTL builds µ-FTL with the given cache capacity.
func NewMuFTL(dev flash.Plane, cacheEntries int) (*FTL, error) {
	return New(dev, MuFTLOptions(cacheEntries))
}

// NewIBFTL builds IB-FTL with the given cache capacity.
func NewIBFTL(dev flash.Plane, cacheEntries int) (*FTL, error) {
	return New(dev, IBFTLOptions(cacheEntries))
}

// Name returns the FTL's display name.
func (f *FTL) Name() string { return f.opts.Name }

// Options returns the FTL's configuration.
func (f *FTL) Options() Options { return f.opts }

// Device returns the flash plane the FTL programs against: the whole device,
// or one partition of it when the FTL is a shard of an Engine.
func (f *FTL) Device() flash.Plane { return f.dev }

// Stats returns the FTL's logical operation counters. The fault-tolerance
// fields live in the block manager (which owns retirement and retry) and are
// overlaid here.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.ProgramRetries = f.bm.ProgramRetries()
	s.BadBlocks = int64(f.bm.BadBlocks())
	return s
}

// LogicalPages returns the number of logical pages exposed to applications.
func (f *FTL) LogicalPages() int64 { return f.logicalPages }

// DirtyEntries returns the number of dirty mapping entries currently cached.
func (f *FTL) DirtyEntries() int { return f.dirtyCount }

// RAMBytes returns the integrated-RAM footprint of the FTL's data
// structures: the LRU cache (8 bytes per entry as in Section 5), the GMD, the
// BVC and block-manager state, the page-validity store, the wear-leveler's
// global statistics, and the heat classifier's per-page state.
func (f *FTL) RAMBytes() int64 {
	return f.cache.RAMBytes(8) + f.table.RAMBytes() + f.bm.RAMBytes() + f.validity.RAMBytes() +
		f.wear.RAMBytes() + f.heat.RAMBytes()
}

// OnVictim registers fn to observe every garbage-collection victim the FTL
// selects, in selection order. Tests use it to pin victim-sequence
// determinism; a nil fn removes the observer.
func (f *FTL) OnVictim(fn func(flash.BlockID)) { f.onVictim = fn }

// noteVictim reports a selected victim to the observer.
func (f *FTL) noteVictim(victim flash.BlockID) {
	if f.onVictim != nil {
		f.onVictim(victim)
	}
}

// Write serves an application update of a logical page (Section 4, "Serving
// Application Writes").
func (f *FTL) Write(lpn flash.LPN) error {
	if lpn < 0 || int64(lpn) >= f.logicalPages {
		return fmt.Errorf("ftl: logical page %d out of range [0,%d): %w", lpn, f.logicalPages, flash.ErrOutOfRange)
	}
	// Fail fast after a power loss: RAM state left by an interrupted
	// operation is stale until PowerFail/Recover reset it, so no decision
	// (notably garbage-collection victim picking) may be based on it.
	if !f.dev.Powered() {
		return flash.ErrPowerFailed
	}
	f.stats.LogicalWrites++
	f.opGCTime, f.opGCSteps = 0, 0

	// Make room before writing so garbage-collection never runs out of
	// destination pages mid-operation. Under GCIncremental this performs at
	// most GCPagesPerWrite bounded steps; under GCInline it reclaims whole
	// victims until the free pool is above the reserve.
	if err := f.garbageCollect(); err != nil {
		return err
	}

	cached, isCached := f.cache.Peek(lpn)

	// FTLs without lazy invalid-page identification must know the page's
	// previous location before overwriting it, which costs a translation
	// page read on a write miss (the DFTL demand-paging behaviour).
	var flashPrev flash.PPN = flash.InvalidPPN
	if !isCached && f.opts.Scheme != SchemeGecko {
		prev, err := f.table.ReadEntry(lpn, flash.PurposeTranslation)
		if err != nil {
			return err
		}
		flashPrev = prev
	}

	// Write the new version of the page on the frontier its temperature
	// selects (the single user frontier without hot/cold separation).
	temp := f.heat.classify(int64(lpn))
	if f.heat.enabled {
		if temp == TempHot {
			f.stats.HotWrites++
		} else {
			f.stats.ColdWrites++
		}
	}
	newPPN, err := f.bm.AllocateUserPage(temp, flash.SpareArea{Logical: lpn}, flash.PurposeUserWrite)
	if err != nil {
		return err
	}

	entry := mapcache.Entry{Logical: lpn, Physical: newPPN, Dirty: true}
	switch {
	case isCached:
		// The before-image is known from the cache: report it invalid
		// immediately (Section 4.1, "Application Writes").
		entry.UIP = cached.UIP
		entry.Uncertain = cached.Uncertain
		entry.Trimmed = cached.Trimmed
		if cached.Physical != flash.InvalidPPN && cached.Physical != newPPN {
			if err := f.reportInvalid(cached.Physical); err != nil {
				return err
			}
			f.dropIdentifiedUIP(cached, &entry)
		}
		if !cached.Dirty {
			f.dirtyCount++
		}
	case f.opts.Scheme == SchemeGecko:
		// GeckoFTL defers identifying the flash-resident before-image: the
		// UIP flag records that an unidentified invalid page exists
		// (Section 4.1).
		entry.UIP = true
		f.dirtyCount++
	default:
		// The before-image was fetched from the translation table above.
		if flashPrev != flash.InvalidPPN {
			if err := f.reportInvalid(flashPrev); err != nil {
				return err
			}
		}
		f.dirtyCount++
	}

	if err := f.putCacheEntry(entry); err != nil {
		return err
	}
	if err := f.maybeCheckpoint(); err != nil {
		return err
	}
	if err := f.enforceDirtyBound(); err != nil {
		return err
	}
	return f.wearLevelIfNeeded()
}

// Read serves an application read of a logical page (Section 4, "Serving
// Application Reads").
func (f *FTL) Read(lpn flash.LPN) error {
	if lpn < 0 || int64(lpn) >= f.logicalPages {
		return fmt.Errorf("ftl: logical page %d out of range [0,%d): %w", lpn, f.logicalPages, flash.ErrOutOfRange)
	}
	if !f.dev.Powered() {
		return flash.ErrPowerFailed
	}
	f.stats.LogicalReads++

	entry, ok := f.cache.Lookup(lpn)
	if !ok {
		ppn, err := f.table.ReadEntry(lpn, flash.PurposeTranslation)
		if err != nil {
			return err
		}
		entry = mapcache.Entry{Logical: lpn, Physical: ppn}
		if err := f.putCacheEntry(entry); err != nil {
			return err
		}
	}
	if entry.Physical == flash.InvalidPPN {
		// Reading a never-written logical page returns zeroes without IO.
		return nil
	}
	if err := f.dev.ReadPage(entry.Physical, flash.PurposeUserRead); err != nil {
		return err
	}
	return f.maybeScrub(entry.Physical)
}

// maybeScrub relocates the block the page just read lives on when the block
// has absorbed ScrubReadThreshold page reads since its last erase, so that
// read-disturbed payloads are rewritten before they decay. The relocation is
// an ordinary collection (live pages migrate, the block is erased and
// re-enters the free pool), so validity bookkeeping and wear accounting need
// no special casing.
func (f *FTL) maybeScrub(ppn flash.PPN) error {
	if f.opts.ScrubReadThreshold <= 0 {
		return nil
	}
	block := flash.Decompose(ppn, f.cfg.PagesPerBlock).Block
	reads, err := f.dev.ReadCount(block)
	if err != nil {
		return err
	}
	if reads < f.opts.ScrubReadThreshold {
		return nil
	}
	// The same re-validation as wear recycling (wearLevelIfNeeded): only a
	// full, allocated, non-active user block that is neither protected nor
	// the incremental collector's in-flight victim may be collected out of
	// band. Active frontiers shed their read count when they fill, go
	// static, and a later read trips the threshold again.
	info := &f.bm.blocks[block]
	if !info.allocated || info.group != GroupUser ||
		info.writePointer < f.cfg.PagesPerBlock || f.bm.isActive(block) ||
		f.table.ProtectedBlocks()[block] || block == f.gc.victim {
		return nil
	}
	// Like a wear recycle, a scrub is this subsystem's own cost, not
	// garbage-collection scheduling: exclude its charges from the per-write
	// GC-stall metric (the read's overall latency still includes them).
	gcTimeBefore := f.opGCTime
	if err := f.collectBlock(block); err != nil {
		return err
	}
	f.opGCTime = gcTimeBefore
	f.stats.ScrubOperations++
	return nil
}

// dropIdentifiedUIP clears the UIP (and Trimmed) flag carried from cached
// into the successor entry when the before-image just reported — the cached
// physical location — is also the flash-resident translation entry. A
// carried UIP flag means a second, flash-resident before-image still awaits
// identification; for entries recreated by the recovery backwards scan the
// two coincide (the scan recovers the durably-mapped version), so the
// identification is already done: carrying UIP forward would report the same
// page again at the next synchronization and underflow the BVC (the C.3.2
// spare check cannot object — the page keeps naming this LPN until its
// block is erased). During normal operation a UIP entry always has
// Physical != FlashEntry (the table lags the cache until the entry syncs,
// which clears UIP), so this never fires there. The write and trim overwrite
// paths both call it right after reporting cached.Physical.
func (f *FTL) dropIdentifiedUIP(cached mapcache.Entry, entry *mapcache.Entry) {
	if cached.UIP && cached.Physical == f.table.FlashEntry(cached.Logical) {
		entry.UIP = false
		entry.Trimmed = false
	}
}

// reportInvalid tells the page-validity store that a physical page holds
// stale data and updates the BVC.
func (f *FTL) reportInvalid(ppn flash.PPN) error {
	addr := flash.Decompose(ppn, f.cfg.PagesPerBlock)
	if err := f.validity.Update(addr); err != nil {
		return err
	}
	if err := f.bm.InvalidatePage(ppn); err != nil {
		return err
	}
	if f.lg != nil && f.lg.BufferLen() == 0 {
		// The Gecko buffer just flushed: the protected previous versions of
		// translation pages are no longer needed for buffer recovery.
		f.table.ClearProtected()
	}
	return nil
}

// putCacheEntry inserts a mapping entry, running a synchronization operation
// when a dirty entry is evicted.
func (f *FTL) putCacheEntry(e mapcache.Entry) error {
	evicted := f.cache.Put(e)
	if !evicted.Valid || !evicted.Entry.Dirty {
		return nil
	}
	// The evicted entry leaves the cache, so it no longer counts against the
	// dirty bound; the synchronization below writes it back.
	f.dirtyCount--
	return f.synchronize(evicted.Entry)
}

// synchronize runs a synchronization operation for the translation page of
// the given (evicted or checkpoint-selected) dirty entry: all dirty cached
// entries on the same translation page are written back together, and their
// before-images are reported to the page-validity store (Section 4.1).
func (f *FTL) synchronize(seed mapcache.Entry) error {
	tp := f.cache.TranslationPageOf(seed.Logical)
	dirty := f.cache.DirtyEntriesOnTranslationPage(tp)

	// The seed entry may already have been evicted from the cache; include
	// it explicitly.
	all := append([]mapcache.Entry{seed}, dirty...)
	sort.Slice(all, func(i, j int) bool { return all[i].Logical < all[j].Logical })

	var updates []dirtyUpdate
	seen := make(map[flash.LPN]bool, len(all))
	var uncertainChecked []flash.LPN
	for _, e := range all {
		if seen[e.Logical] {
			continue
		}
		seen[e.Logical] = true
		flashPPN := f.table.FlashEntry(e.Logical)
		if e.Uncertain {
			uncertainChecked = append(uncertainChecked, e.Logical)
			if flashPPN == e.Physical {
				// The entry was wrongly assumed dirty after recovery
				// (Appendix C.3.1): clear its flags and omit it.
				f.clearFlags(e.Logical)
				continue
			}
		}
		updates = append(updates, dirtyUpdate{Logical: e.Logical, Physical: e.Physical})
		// Lazy invalid-page identification (Section 4.1): if the entry's UIP
		// flag is set, its flash-resident before-image has not been reported
		// invalid yet; the synchronization is the moment to do so.
		needsReport := e.UIP && flashPPN != flash.InvalidPPN && flashPPN != e.Physical
		if needsReport && e.Uncertain {
			// Appendix C.3.2: after recovery the before-image may already
			// have been reported and even reused; verify via its spare area
			// that it still holds this logical page before reporting it.
			spare, written, err := f.dev.ReadSpare(flashPPN, flash.PurposeTranslation)
			if err != nil {
				return err
			}
			needsReport = written && spare.Logical == e.Logical
		}
		if needsReport {
			if e.Trimmed {
				// The pending identification was caused by a host trim
				// (GeckoFTL's lazy trim path): attribute it to the trim
				// counters on top of the regular report.
				if err := f.reportTrimmed(flashPPN); err != nil {
					return err
				}
			} else if err := f.reportInvalid(flashPPN); err != nil {
				return err
			}
		}
	}

	oldTPLocation := f.table.GMDLocation(tp)
	before, err := f.table.Synchronize(tp, updates)
	if err != nil {
		return err
	}
	_ = before // before-images were handled through the UIP flags above
	if len(updates) > 0 {
		f.stats.SyncOperations++
		// FTLs whose garbage-collector may target translation blocks (the
		// greedy policy of DFTL, LazyFTL, µ-FTL and IB-FTL) track the
		// validity of translation pages in their page-validity store, so the
		// superseded version must be reported invalid. The non-greedy
		// policies never garbage-collect metadata blocks and rely on the BVC
		// alone.
		if f.opts.VictimPolicy.MigratesMetadata() && oldTPLocation != flash.InvalidPPN {
			if err := f.validity.Update(flash.Decompose(oldTPLocation, f.cfg.PagesPerBlock)); err != nil {
				return err
			}
		}
	}

	// Mark the synchronized entries clean.
	for _, u := range updates {
		f.clearFlags(u.Logical)
	}
	for _, lpn := range uncertainChecked {
		f.cache.Update(lpn, func(en *mapcache.Entry) { en.Uncertain = false })
	}
	return nil
}

// clearFlags marks a cached entry clean (dirty, UIP and uncertainty cleared)
// and maintains the dirty counter.
func (f *FTL) clearFlags(lpn flash.LPN) {
	f.cache.Update(lpn, func(en *mapcache.Entry) {
		if en.Dirty {
			f.dirtyCount--
		}
		en.Dirty = false
		en.UIP = false
		en.Uncertain = false
		en.Trimmed = false
	})
}

// maybeCheckpoint takes a runtime checkpoint when due (Section 4.3):
// every C cache operations, dirty entries that have lingered since the
// previous checkpoint are synchronized so that the recovery backwards scan
// never has to look further back than 2*C page writes.
func (f *FTL) maybeCheckpoint() error {
	if !f.opts.Checkpoints || !f.cache.CheckpointDue() {
		return nil
	}
	f.stats.Checkpoints++
	stale := f.cache.Checkpoint()
	// Group the lingering dirty entries by translation page and synchronize
	// each group once.
	byTP := make(map[int][]mapcache.Entry)
	for _, e := range stale {
		tp := f.cache.TranslationPageOf(e.Logical)
		byTP[tp] = append(byTP[tp], e)
	}
	tps := make([]int, 0, len(byTP))
	for tp := range byTP {
		tps = append(tps, tp)
	}
	sort.Ints(tps)
	for _, tp := range tps {
		entries := byTP[tp]
		// Re-check dirtiness: an earlier synchronization in this loop may
		// have cleaned entries sharing the translation page.
		if cur, ok := f.cache.Peek(entries[0].Logical); !ok || !cur.Dirty {
			continue
		}
		if err := f.synchronize(entries[0]); err != nil {
			return err
		}
	}
	return nil
}

// enforceDirtyBound restricts the number of dirty cached entries for FTLs
// that bound it (LazyFTL, IB-FTL): while over the bound, the least recently
// used dirty entry's translation page is synchronized.
func (f *FTL) enforceDirtyBound() error {
	if f.opts.DirtyFraction <= 0 {
		return nil
	}
	limit := int(f.opts.DirtyFraction * float64(f.opts.CacheEntries))
	if limit < 1 {
		limit = 1
	}
	for f.dirtyCount > limit {
		victim, ok := f.oldestDirty()
		if !ok {
			return nil
		}
		f.stats.ForcedSyncs++
		if err := f.synchronize(victim); err != nil {
			return err
		}
	}
	return nil
}

// oldestDirty finds the least-recently-used dirty entry.
func (f *FTL) oldestDirty() (mapcache.Entry, bool) {
	var found mapcache.Entry
	ok := false
	f.cache.ForEach(func(e mapcache.Entry) bool {
		if e.Dirty {
			found = e
			ok = true
		}
		return true
	})
	return found, ok
}

// garbageCollectIfNeeded reclaims blocks until the free pool is above the
// reserve. Under the non-greedy policies, fully-invalid translation and
// metadata blocks are erased first (they cost nothing but the erase, which is
// the whole point of Section 4.2); user blocks are reclaimed by migrating
// their live pages. Under the greedy policy a fully-invalid block is simply
// the best possible victim, so no separate pass is needed.
func (f *FTL) garbageCollectIfNeeded() error {
	iterations := 0
	for f.bm.NeedsGC() {
		// Live-lock guard: on a device too small (or too full of metadata)
		// for its over-provisioning, every victim is nearly fully valid and
		// collecting it frees no space. A healthy call reclaims within a few
		// iterations; 4K reclaims without reaching the reserve means churn
		// that will never converge, so fail instead of spinning forever.
		if iterations++; iterations > 4*f.cfg.Blocks {
			return fmt.Errorf("ftl: garbage collection stalled after %d reclaims with %d free blocks (device or shard too small for its live data and metadata)",
				iterations-1, f.bm.FreeBlocks())
		}
		if !f.opts.VictimPolicy.MigratesMetadata() {
			reclaimed, err := f.reclaimFullyInvalidMetadata()
			if err != nil {
				return err
			}
			if reclaimed && !f.bm.NeedsGC() {
				return nil
			}
		}
		victim, ok := f.bm.PickVictim(f.opts.VictimPolicy, f.table.ProtectedBlocks())
		if !ok {
			return fmt.Errorf("ftl: garbage-collection found no victim with %d free blocks", f.bm.FreeBlocks())
		}
		if err := f.collectBlock(victim); err != nil {
			return err
		}
	}
	return nil
}

// reclaimFullyInvalidMetadata erases translation and metadata blocks whose
// pages are all invalid (the Section 4.2 policy: hot metadata blocks are
// never migrated, the FTL waits for them to die of natural causes).
func (f *FTL) reclaimFullyInvalidMetadata() (bool, error) {
	reclaimed := false
	protected := f.table.ProtectedBlocks()
	for _, g := range []Group{GroupTranslation, GroupMeta} {
		for _, block := range f.bm.FullyInvalidBlocks(g) {
			if protected[block] {
				continue
			}
			if err := f.eraseDeadMetadataBlock(block); err != nil {
				return reclaimed, err
			}
			reclaimed = true
		}
	}
	return reclaimed, nil
}

// eraseDeadMetadataBlock erases one fully-invalid translation or metadata
// block and does the shared bookkeeping. Both the inline reclaim above and
// the incremental scheduler's bounded variant (gc.go) go through it, so the
// two GC modes account these erases identically.
func (f *FTL) eraseDeadMetadataBlock(block flash.BlockID) error {
	if err := f.bm.Erase(block, flash.PurposeGCErase); err != nil {
		return err
	}
	f.chargeGC(f.cfg.Latency.Erase)
	if err := f.validity.RecordErase(block); err != nil {
		return err
	}
	f.stats.MetadataBlockErases++
	return nil
}

// collectBlock garbage-collects one victim block: it queries the
// page-validity store for the victim's invalid pages, migrates the remaining
// valid pages (skipping unidentified invalid pages per Section 4.1), then
// erases the victim. Metadata blocks (reachable only under the greedy
// policy) are collected through the liveness information of their owning
// structure instead of the page-validity store.
func (f *FTL) collectBlock(victim flash.BlockID) error {
	f.stats.GCOperations++
	f.noteVictim(victim)
	group, allocated := f.bm.GroupOf(victim)
	if !allocated {
		return fmt.Errorf("ftl: victim block %d is not allocated", victim)
	}
	if group == GroupMeta {
		return f.collectMetaBlock(victim)
	}

	invalid, err := f.validity.Query(victim)
	if err != nil {
		return err
	}

	written := f.bm.WritePointer(victim)
	for offset := 0; offset < written; offset++ {
		if invalid.Get(offset) {
			continue
		}
		ppn := flash.PPNOf(victim, offset, f.cfg.PagesPerBlock)
		migrated, err := f.migrateValidPage(ppn, group)
		if err != nil {
			return err
		}
		if migrated {
			f.stats.GCMigrations++
		} else {
			f.stats.UIPSkips++
		}
	}

	if err := f.bm.Erase(victim, flash.PurposeGCErase); err != nil {
		return err
	}
	f.chargeGC(f.cfg.Latency.Erase)
	return f.validity.RecordErase(victim)
}

// metaRelocator is implemented by flash-resident page-validity stores whose
// pages can be moved by the garbage-collector (the flash-resident PVB and the
// page validity log). Logarithmic Gecko deliberately does not implement it:
// GeckoFTL never garbage-collects metadata blocks.
type metaRelocator interface {
	IsLive(ppn flash.PPN) bool
	Relocate(old, new flash.PPN) bool
}

// collectMetaBlock garbage-collects a metadata block under the greedy
// policy: live metadata pages (as reported by the owning structure) are
// copied to a fresh metadata page and the structure's directory is updated.
func (f *FTL) collectMetaBlock(victim flash.BlockID) error {
	written := f.bm.WritePointer(victim)
	for offset := 0; offset < written; offset++ {
		if _, err := f.migrateMetaPage(victim, offset); err != nil {
			return err
		}
	}
	if err := f.bm.Erase(victim, flash.PurposeGCErase); err != nil {
		return err
	}
	f.chargeGC(f.cfg.Latency.Erase)
	return f.validity.RecordErase(victim)
}

// migrateMetaPage relocates the metadata page at the given offset of a victim
// if its owning structure reports it live, reporting whether any IO was
// issued. Both the inline and the incremental collector drain metadata
// victims through it.
func (f *FTL) migrateMetaPage(victim flash.BlockID, offset int) (bool, error) {
	relocator, _ := f.validity.(metaRelocator)
	ppn := flash.PPNOf(victim, offset, f.cfg.PagesPerBlock)
	if relocator == nil || !relocator.IsLive(ppn) {
		return false, nil
	}
	if err := f.dev.ReadPage(ppn, flash.PurposeGCMigration); err != nil {
		return true, err
	}
	spare, _, err := f.dev.ReadSpare(ppn, flash.PurposeGCMigration)
	if err != nil {
		return true, err
	}
	newPPN, err := f.bm.AllocatePage(GroupMeta, spare, flash.PurposeGCMigration)
	if err != nil {
		return true, err
	}
	relocator.Relocate(ppn, newPPN)
	f.stats.GCMigrations++
	f.chargeGC(f.cfg.Latency.PageRead + f.cfg.Latency.SpareRead + f.cfg.Latency.PageWrite)
	return true, nil
}

// migrateValidPage migrates one supposedly-valid page out of a victim block.
// It returns false when the page turned out to be an unidentified invalid
// page and was skipped (Section 4.1, "Garbage-Collection").
func (f *FTL) migrateValidPage(ppn flash.PPN, group Group) (bool, error) {
	spare, written, err := f.dev.ReadSpare(ppn, flash.PurposeGCMigration)
	if err != nil {
		return false, err
	}
	f.chargeGC(f.cfg.Latency.SpareRead)
	if !written {
		return false, nil
	}

	if group != GroupUser {
		// Migrating a translation or metadata page would require updating
		// the structures that point at it. Under the greedy policy the paper
		// ascribes to existing FTLs, such migrations are charged as a read
		// plus a write of the page and the directory entry is moved.
		return true, f.migrateMetadataPage(ppn, spare, group)
	}

	lpn := spare.Logical
	if lpn == flash.InvalidLPN {
		return false, nil
	}

	// Section 4.1: the page may be an unidentified invalid page. If the
	// cache maps this logical page elsewhere, page ppn is a stale
	// before-image and is not migrated — the cache is authoritative for the
	// newest location, which matters under incremental GC where application
	// writes interleave with the victim drain and outdate the invalid-page
	// snapshot taken at victim selection. When the stale entry carried the
	// UIP flag, the before-image is hereby identified and the flag cleared:
	// the page disappears with the victim's erase, so reporting it later
	// would wrongly invalidate whatever page is written at that address after
	// the block is reused.
	if cached, ok := f.cache.Peek(lpn); ok && cached.Physical != ppn {
		if cached.UIP {
			if cached.Trimmed {
				// The before-image a trim left unidentified is identified
				// here, at no cost beyond the spare read already charged: it
				// vanishes with the victim's erase.
				if err := f.dev.NoteTrim(ppn, flash.PurposeTrim); err != nil {
					return false, err
				}
				f.stats.TrimmedPages++
			}
			f.cache.Update(lpn, func(en *mapcache.Entry) { en.UIP = false; en.Trimmed = false })
		}
		return false, nil
	}
	// The flash-resident mapping may also already point elsewhere (the
	// invalidation was identified and reported, but BVC bookkeeping lags for
	// entries reported through a synchronization after this GC query).
	if f.table.FlashEntry(lpn) != ppn {
		if _, ok := f.cache.Peek(lpn); !ok {
			return false, nil
		}
	}

	if err := f.dev.ReadPage(ppn, flash.PurposeGCMigration); err != nil {
		return false, err
	}
	// Migrations always land on the cold frontier: a page that stayed valid
	// long enough to be migrated is cold by observation, and keeping
	// survivors out of hot blocks is half of what hot/cold separation buys.
	newPPN, err := f.bm.AllocatePage(GroupUser, flash.SpareArea{Logical: lpn}, flash.PurposeGCMigration)
	if err != nil {
		return false, err
	}
	f.chargeGC(f.cfg.Latency.PageRead + f.cfg.Latency.PageWrite)
	// Garbage-collection migrations are treated like application writes: a
	// dirty cached mapping entry is created for every migrated page.
	entry := mapcache.Entry{Logical: lpn, Physical: newPPN, Dirty: true}
	if cached, ok := f.cache.Peek(lpn); ok {
		entry.UIP = cached.UIP
		entry.Uncertain = cached.Uncertain
		entry.Trimmed = cached.Trimmed
		if !cached.Dirty {
			f.dirtyCount++
		}
	} else {
		f.dirtyCount++
	}
	if err := f.putCacheEntry(entry); err != nil {
		return false, err
	}
	return true, nil
}

// migrateMetadataPage relocates a live translation page during a greedy
// garbage-collection of a translation block. (Metadata pages of the
// page-validity store are never live under the stores' own management, so
// only translation pages reach this path.)
func (f *FTL) migrateMetadataPage(ppn flash.PPN, spare flash.SpareArea, group Group) error {
	if err := f.dev.ReadPage(ppn, flash.PurposeGCMigration); err != nil {
		return err
	}
	newPPN, err := f.bm.AllocatePage(group, spare, flash.PurposeGCMigration)
	if err != nil {
		return err
	}
	f.chargeGC(f.cfg.Latency.PageRead + f.cfg.Latency.PageWrite)
	if group == GroupTranslation {
		tp := int(spare.Tag)
		if tp >= 0 && tp < f.table.Pages() && f.table.GMDLocation(tp) == ppn {
			f.table.SetGMDLocation(tp, newPPN)
		}
	}
	return nil
}

// Flush forces all dirty state to flash: every dirty mapping entry is
// synchronized and, for GeckoFTL, the Gecko buffer is flushed. It is used by
// examples and tests that want a clean shutdown rather than a crash.
func (f *FTL) Flush() error {
	for {
		victim, ok := f.oldestDirty()
		if !ok {
			break
		}
		if err := f.synchronize(victim); err != nil {
			return err
		}
	}
	if f.lg != nil {
		if err := f.lg.Flush(); err != nil {
			return err
		}
		f.table.ClearProtected()
	}
	return nil
}
