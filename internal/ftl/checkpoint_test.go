package ftl

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"geckoftl/internal/checkpoint"
	"geckoftl/internal/flash"
)

// checkpointTestEngine builds a filled, flushed multi-shard GeckoFTL engine:
// the state a clean shutdown would checkpoint.
func checkpointTestEngine(t *testing.T, blocks, channels int) *Engine {
	t.Helper()
	dev := engineTestDevice(t, blocks, channels)
	e, err := NewEngine(dev, GeckoFTLOptions(128*channels), channels)
	if err != nil {
		t.Fatal(err)
	}
	lp := e.LogicalPages()
	rng := rand.New(rand.NewSource(99))
	batch := make([]flash.LPN, 32)
	for done := int64(0); done < 2*lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = flash.LPN(rng.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e
}

// mappedSet snapshots which logical pages hold host data.
func mappedSet(t *testing.T, e *Engine) []bool {
	t.Helper()
	out := make([]bool, e.LogicalPages())
	for lpn := range out {
		m, err := e.Mapped(flash.LPN(lpn))
		if err != nil {
			t.Fatal(err)
		}
		out[lpn] = m
	}
	return out
}

func sameMapped(t *testing.T, want, got []bool, context string) {
	t.Helper()
	for lpn := range want {
		if want[lpn] != got[lpn] {
			t.Fatalf("%s: logical page %d mapped=%v, want %v", context, lpn, got[lpn], want[lpn])
		}
	}
}

// TestEngineCheckpointRoundTrip is the core warm-restart property: export,
// power-fail, restore, and the engine serves the identical logical state
// with a consistent translation map, then keeps working.
func TestEngineCheckpointRoundTrip(t *testing.T) {
	e := checkpointTestEngine(t, 128, 2)
	before := mappedSet(t, e)
	file, err := e.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The exported file survives the byte format losslessly.
	decoded, err := checkpoint.Decode(checkpoint.Encode(file))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreCheckpoint(decoded); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatalf("restored engine inconsistent: %v", err)
	}
	sameMapped(t, before, mappedSet(t, e), "after warm restore")
	// The restored engine is fully operational, including GC pressure.
	lp := e.LogicalPages()
	rng := rand.New(rand.NewSource(7))
	batch := make([]flash.LPN, 32)
	for done := int64(0); done < lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = flash.LPN(rng.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatalf("write after warm restore: %v", err)
		}
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatalf("post-restore workload left engine inconsistent: %v", err)
	}
}

// TestEngineCheckpointUnsupportedSchemes pins the gate: only battery-less
// GeckoFTL checkpoints; every battery scheme refuses with
// ErrCheckpointUnsupported.
func TestEngineCheckpointUnsupportedSchemes(t *testing.T) {
	dev := engineTestDevice(t, 64, 1)
	e, err := NewEngine(dev, DFTLOptions(128), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExportCheckpoint(); !errors.Is(err, ErrCheckpointUnsupported) {
		t.Fatalf("DFTL ExportCheckpoint = %v, want ErrCheckpointUnsupported", err)
	}
	opts := GeckoFTLOptions(128)
	opts.Battery = true
	dev2 := engineTestDevice(t, 64, 1)
	e2, err := NewEngine(dev2, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ExportCheckpoint(); !errors.Is(err, ErrCheckpointUnsupported) {
		t.Fatalf("battery GeckoFTL ExportCheckpoint = %v, want ErrCheckpointUnsupported", err)
	}
}

// TestEngineCheckpointCorruptionMatrix is the torn-write and corruption
// matrix: the encoded checkpoint is truncated at (and one byte past) every
// section boundary and bit-flipped once inside every section, and every
// variant must be rejected — by the decoder, by read-only validation, or by
// the import — after which GeckoRec recovery restores the identical flushed
// state with a consistent translation map.
func TestEngineCheckpointCorruptionMatrix(t *testing.T) {
	e := checkpointTestEngine(t, 128, 2)
	want := mappedSet(t, e)

	type variant struct {
		name string
		data []byte
	}
	makeVariants := func(data []byte) []variant {
		bounds, err := checkpoint.Boundaries(data)
		if err != nil {
			t.Fatal(err)
		}
		var out []variant
		for _, cut := range bounds[:len(bounds)-1] {
			out = append(out, variant{name: "truncate", data: data[:cut]})
			out = append(out, variant{name: "truncate+1", data: data[:cut+1]})
		}
		// One flip inside each region delimited by consecutive boundaries:
		// the header, then every section.
		for i := 1; i < len(bounds); i++ {
			mid := (bounds[i-1] + bounds[i]) / 2
			flipped := append([]byte(nil), data...)
			flipped[mid] ^= 0x20
			out = append(out, variant{name: "bitflip", data: flipped})
		}
		return out
	}

	data := checkpoint.Encode(mustExport(t, e))
	variants := makeVariants(data)
	if len(variants) < 20 {
		t.Fatalf("only %d corruption variants; matrix too small", len(variants))
	}
	for i, v := range variants {
		// Re-export each round: a cold recovery writes flash (synchronize),
		// so the previous round's checkpoint is stale by design.
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		fresh := checkpoint.Encode(mustExport(t, e))
		fv := makeVariants(fresh)
		if i >= len(fv) {
			break
		}
		v = fv[i]

		decoded, derr := checkpoint.Decode(v.data)
		if derr == nil {
			// Structurally valid (a clean boundary cut): the consumer-level
			// checks must reject it, first read-only on the live engine...
			if err := e.ValidateCheckpoint(decoded); err == nil {
				t.Fatalf("variant %d (%s, %d bytes): live validation accepted a damaged checkpoint", i, v.name, len(v.data))
			}
			// ...then through the real restore path.
			if err := e.PowerFail(); err != nil {
				t.Fatal(err)
			}
			if err := e.RestoreCheckpoint(decoded); err == nil {
				t.Fatalf("variant %d (%s, %d bytes): restore accepted a damaged checkpoint", i, v.name, len(v.data))
			}
			if _, err := e.Recover(); err != nil {
				t.Fatalf("variant %d (%s): GeckoRec fallback failed: %v", i, v.name, err)
			}
		} else if !errors.Is(derr, checkpoint.ErrInvalid) {
			t.Fatalf("variant %d (%s): decode error %v does not wrap ErrInvalid", i, v.name, derr)
		}
		if err := e.CheckConsistency(); err != nil {
			t.Fatalf("variant %d (%s): engine inconsistent after fallback: %v", i, v.name, err)
		}
		sameMapped(t, want, mappedSet(t, e), "after fallback")
	}
}

func mustExport(t *testing.T, e *Engine) *checkpoint.File {
	t.Helper()
	file, err := e.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	return file
}

// TestEngineCheckpointStaleSequenceRejected pins the device-truth check: a
// checkpoint from an earlier point in the device's life — even a perfectly
// well-formed one — must be rejected once further writes have moved the
// global write sequence, and the rejection must be detectable read-only.
func TestEngineCheckpointStaleSequenceRejected(t *testing.T) {
	e := checkpointTestEngine(t, 128, 2)
	stale := mustExport(t, e)
	// Move the device past the checkpoint.
	lp := e.LogicalPages()
	for lpn := int64(0); lpn < 64; lpn++ {
		if err := e.Write(flash.LPN(lpn % lp)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.ValidateCheckpoint(stale); err == nil {
		t.Fatal("live validation accepted a stale checkpoint")
	}
	want := mappedSet(t, e)
	if err := e.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreCheckpoint(stale); err == nil {
		t.Fatal("restore accepted a stale checkpoint")
	}
	if _, err := e.Recover(); err != nil {
		t.Fatalf("GeckoRec fallback: %v", err)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	sameMapped(t, want, mappedSet(t, e), "after stale-checkpoint fallback")
}

// TestEngineRestoreRequiresPowerFail pins the precondition: restoring into a
// live engine is a programming error, not a silent state swap.
func TestEngineRestoreRequiresPowerFail(t *testing.T) {
	e := checkpointTestEngine(t, 64, 1)
	file := mustExport(t, e)
	if err := e.RestoreCheckpoint(file); err == nil {
		t.Fatal("RestoreCheckpoint succeeded on a live engine")
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatalf("rejected restore disturbed the live engine: %v", err)
	}
}
