package ftl

import (
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/workload"
)

// newWearFTL builds a GeckoFTL with wear-leveling enabled on a small device.
func newWearFTL(t *testing.T, threshold int) *FTL {
	t.Helper()
	dev := newTestDevice(t, 64, 16, 512)
	opts := GeckoFTLOptions(256)
	opts.WearLeveling = true
	opts.WearThreshold = threshold
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWearOptionsValidation(t *testing.T) {
	dev := newTestDevice(t, 32, 16, 512)
	opts := GeckoFTLOptions(64)
	opts.WearLeveling = true
	opts.WearThreshold = -1
	if _, err := New(dev, opts); err == nil {
		t.Error("negative wear threshold accepted")
	}
	// Default threshold applies when zero.
	w := newWearLeveler(true, 0)
	if w.threshold != 8 {
		t.Errorf("default threshold = %d, want 8", w.threshold)
	}
}

func TestWearLevelerDisabledCostsNothing(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128) // wear-leveling off by default
	gen := workload.MustNewUniform(f.LogicalPages(), 61)
	runWorkload(t, f, gen, 1000)
	c := f.dev.Counters()
	if got := c.Count(flash.OpSpareRead, flash.PurposeWearLeveling); got != 0 {
		t.Errorf("disabled wear-leveler read %d spare areas", got)
	}
	if f.wear.RAMBytes() != 0 {
		t.Error("disabled wear-leveler charges RAM")
	}
	if f.WearStats().ScansCompleted != 0 {
		t.Error("disabled wear-leveler completed scans")
	}
}

func TestWearScanCostsOneSpareReadPerWrite(t *testing.T) {
	f := newWearFTL(t, 1000) // huge threshold: scan but never migrate
	gen := workload.MustNewUniform(f.LogicalPages(), 62)
	const writes = 2000
	runWorkload(t, f, gen, writes)
	c := f.dev.Counters()
	if got := c.Count(flash.OpSpareRead, flash.PurposeWearLeveling); got != writes {
		t.Errorf("wear-leveling spare reads = %d, want %d (one per write)", got, writes)
	}
	st := f.WearStats()
	wantScans := int64(writes / 64)
	if st.ScansCompleted != wantScans {
		t.Errorf("completed scans = %d, want %d", st.ScansCompleted, wantScans)
	}
	if st.Migrations != 0 {
		t.Errorf("migrations = %d despite huge threshold", st.Migrations)
	}
	if f.wear.RAMBytes() != 40 {
		t.Errorf("wear-leveler RAM = %d, want 40 bytes of global statistics", f.wear.RAMBytes())
	}
}

func TestWearLevelingRecyclesStaticBlocks(t *testing.T) {
	// A workload with a large static region: most pages are written once and
	// never updated, so their blocks never get erased unless the
	// wear-leveler recycles them.
	f := newWearFTL(t, 2)
	logical := f.LogicalPages()
	for lpn := int64(0); lpn < logical; lpn++ {
		if err := f.Write(flash.LPN(lpn)); err != nil {
			t.Fatal(err)
		}
	}
	// Update only the first 10% of pages, repeatedly.
	hot := workload.MustNewUniform(logical/10, 63)
	runWorkload(t, f, hot, 15000)

	st := f.WearStats()
	if st.Migrations == 0 {
		t.Fatal("wear-leveler never recycled a static block under a skewed workload")
	}
	// Consistency must be preserved despite wear migrations.
	checkConsistency(t, f, true)

	// Without wear-leveling, the blocks holding the static 90% of the data
	// are never erased again and stay essentially unworn; with wear-leveling
	// those blocks are recycled, so far fewer blocks end the run with at
	// most one erase.
	g := testFTL(t, NewGeckoFTL, 64, 256)
	for lpn := int64(0); lpn < g.LogicalPages(); lpn++ {
		if err := g.Write(flash.LPN(lpn)); err != nil {
			t.Fatal(err)
		}
	}
	hot2 := workload.MustNewUniform(g.LogicalPages()/10, 63)
	runWorkload(t, g, hot2, 15000)
	unworn := func(f *FTL) int {
		n := 0
		for b := 0; b < f.cfg.Blocks; b++ {
			ec, err := f.dev.EraseCount(flash.BlockID(b))
			if err != nil {
				t.Fatal(err)
			}
			if ec <= 1 {
				n++
			}
		}
		return n
	}
	unwornWith, unwornWithout := unworn(f), unworn(g)
	if unwornWith >= unwornWithout {
		t.Errorf("wear-leveling left %d essentially-unworn blocks, plain GeckoFTL left %d", unwornWith, unwornWithout)
	}
}

func TestWearStatsReflectDeviceEndurance(t *testing.T) {
	f := newWearFTL(t, 4)
	gen := workload.MustNewUniform(f.LogicalPages(), 64)
	runWorkload(t, f, gen, 8000)
	st := f.WearStats()
	min, max, mean := f.dev.BlocksEndurance()
	if st.MinErase != min || st.MaxErase != max || st.MeanErase != mean {
		t.Errorf("WearStats endurance %+v does not match device (%d,%d,%f)", st, min, max, mean)
	}
	if st.MaxErase == 0 {
		t.Error("no erases recorded despite sustained workload")
	}
}
