package ftl

import (
	"fmt"
	"sort"

	"geckoftl/internal/flash"
)

// Group identifies the three block groups of Figure 8 of the paper.
type Group int

const (
	// GroupUser holds application data pages.
	GroupUser Group = iota
	// GroupTranslation holds translation pages.
	GroupTranslation
	// GroupMeta holds page-validity metadata: Logarithmic Gecko runs, the
	// flash-resident PVB or the page validity log.
	GroupMeta
	numGroups
)

var groupNames = [...]string{
	GroupUser:        "user",
	GroupTranslation: "translation",
	GroupMeta:        "meta",
}

// String returns the group name.
func (g Group) String() string {
	if g >= 0 && int(g) < len(groupNames) {
		return groupNames[g]
	}
	return fmt.Sprintf("group(%d)", int(g))
}

// blockType maps a group to the block type recorded in spare areas.
func (g Group) blockType() flash.BlockType {
	switch g {
	case GroupUser:
		return flash.BlockUser
	case GroupTranslation:
		return flash.BlockTranslation
	default:
		return flash.BlockGecko
	}
}

// purpose maps a group to the IO accounting purpose of its appends.
func (g Group) purpose() flash.Purpose {
	switch g {
	case GroupUser:
		return flash.PurposeUserWrite
	case GroupTranslation:
		return flash.PurposeTranslation
	default:
		return flash.PurposePageValidity
	}
}

// blockInfo is the per-block RAM state of the block manager.
type blockInfo struct {
	group Group
	// allocated reports whether the block currently belongs to a group (it
	// is not in the free pool).
	allocated bool
	// writePointer is the next free page offset within the block.
	writePointer int
	// valid is the Blocks Validity Counter entry: the number of pages in
	// the block holding live data.
	valid int
	// firstWriteSeq is the device write sequence of the block's first page
	// since its last erase; recovery uses it to order blocks by age.
	firstWriteSeq uint64
}

// blockManager owns the physical layout of GeckoFTL-style FTLs: it separates
// blocks into user / translation / metadata groups, each with an active block
// written append-only, keeps the Blocks Validity Counter, and hands out
// garbage-collection victims.
type blockManager struct {
	dev    flash.Plane
	cfg    flash.Config
	blocks []blockInfo
	free   []flash.BlockID
	active [numGroups]flash.BlockID

	// gcReserve is the number of free blocks below which garbage-collection
	// must run before further allocations.
	gcReserve int

	// lastSeq is the device write sequence of the most recent page this
	// manager programmed (bumped opportunistically during recovery scans).
	// Synchronization operations stamp it into translation-page spares as
	// the content sequence: the instant up to which the page's mapping
	// content is known current. Unlike the page's own WriteSeq it survives
	// garbage-collection copies, which refresh WriteSeq but not content.
	lastSeq uint64

	erases int64
}

// newBlockManager creates a block manager with every block free.
func newBlockManager(dev flash.Plane, gcReserve int) *blockManager {
	cfg := dev.Config()
	bm := &blockManager{
		dev:       dev,
		cfg:       cfg,
		blocks:    make([]blockInfo, cfg.Blocks),
		gcReserve: gcReserve,
	}
	for i := cfg.Blocks - 1; i >= 0; i-- {
		bm.free = append(bm.free, flash.BlockID(i))
	}
	for g := range bm.active {
		bm.active[g] = flash.InvalidBlock
	}
	return bm
}

// FreeBlocks returns the number of blocks in the free pool.
func (bm *blockManager) FreeBlocks() int { return len(bm.free) }

// NeedsGC reports whether the free pool has dropped to the reserve.
func (bm *blockManager) NeedsGC() bool { return len(bm.free) <= bm.gcReserve }

// Erases returns the number of block erases issued by the manager.
func (bm *blockManager) Erases() int64 { return bm.erases }

// GroupOf returns the group a block currently belongs to and whether it is
// allocated at all.
func (bm *blockManager) GroupOf(block flash.BlockID) (Group, bool) {
	info := &bm.blocks[block]
	return info.group, info.allocated
}

// ValidCount returns the BVC entry of a block.
func (bm *blockManager) ValidCount(block flash.BlockID) int { return bm.blocks[block].valid }

// WritePointer returns the block's write pointer as known to the FTL.
func (bm *blockManager) WritePointer(block flash.BlockID) int { return bm.blocks[block].writePointer }

// BlocksInGroup returns the blocks currently allocated to a group, including
// its active block.
func (bm *blockManager) BlocksInGroup(g Group) []flash.BlockID {
	var out []flash.BlockID
	for i := range bm.blocks {
		if bm.blocks[i].allocated && bm.blocks[i].group == g {
			out = append(out, flash.BlockID(i))
		}
	}
	return out
}

// takeFreeBlock pops a block from the free pool.
func (bm *blockManager) takeFreeBlock(g Group) (flash.BlockID, error) {
	if len(bm.free) == 0 {
		return flash.InvalidBlock, fmt.Errorf("ftl: no free blocks left for group %v", g)
	}
	id := bm.free[len(bm.free)-1]
	bm.free = bm.free[:len(bm.free)-1]
	info := &bm.blocks[id]
	info.group = g
	info.allocated = true
	info.writePointer = 0
	info.valid = 0
	info.firstWriteSeq = 0
	return id, nil
}

// AllocatePage programs the next free page of the group's active block
// (allocating a new active block from the free pool when needed) and returns
// its address. The page is counted as valid in the BVC. The caller supplies
// the spare area; the block type of the first page is stamped automatically.
func (bm *blockManager) AllocatePage(g Group, spare flash.SpareArea, p flash.Purpose) (flash.PPN, error) {
	active := bm.active[g]
	if active == flash.InvalidBlock || bm.blocks[active].writePointer >= bm.cfg.PagesPerBlock {
		id, err := bm.takeFreeBlock(g)
		if err != nil {
			return flash.InvalidPPN, err
		}
		bm.active[g] = id
		active = id
	}
	info := &bm.blocks[active]
	if info.writePointer == 0 {
		spare.BlockType = g.blockType()
	}
	ppn := flash.PPNOf(active, info.writePointer, bm.cfg.PagesPerBlock)
	seq, err := bm.dev.WritePage(ppn, spare, p)
	if err != nil {
		return flash.InvalidPPN, err
	}
	bm.NoteWriteSeq(seq)
	if info.writePointer == 0 {
		info.firstWriteSeq = seq
	}
	info.writePointer++
	info.valid++
	return ppn, nil
}

// LastWriteSeq returns the newest device write sequence the manager has
// observed (see lastSeq).
func (bm *blockManager) LastWriteSeq() uint64 { return bm.lastSeq }

// NoteWriteSeq ratchets lastSeq forward; recovery calls it with the sequence
// numbers of the spares it scans so post-recovery synchronizations stamp
// content sequences no older than the flash they recovered from.
func (bm *blockManager) NoteWriteSeq(seq uint64) {
	if seq > bm.lastSeq {
		bm.lastSeq = seq
	}
}

// InvalidatePage decrements the BVC entry of the page's block.
func (bm *blockManager) InvalidatePage(ppn flash.PPN) error {
	block := flash.BlockOf(ppn, bm.cfg.PagesPerBlock)
	info := &bm.blocks[block]
	if !info.allocated {
		return fmt.Errorf("ftl: invalidating page %d of unallocated block %d", ppn, block)
	}
	if info.valid <= 0 {
		return fmt.Errorf("ftl: BVC underflow on block %d", block)
	}
	info.valid--
	return nil
}

// Erase erases a block, returns it to the free pool and resets its BVC entry.
// The group's active block cannot be erased.
func (bm *blockManager) Erase(block flash.BlockID, p flash.Purpose) error {
	info := &bm.blocks[block]
	if !info.allocated {
		return fmt.Errorf("ftl: erasing unallocated block %d", block)
	}
	for g := range bm.active {
		if bm.active[g] == block {
			return fmt.Errorf("ftl: erasing active %v block %d", Group(g), block)
		}
	}
	if err := bm.dev.EraseBlock(block, p); err != nil {
		return err
	}
	bm.erases++
	info.allocated = false
	info.valid = 0
	info.writePointer = 0
	info.firstWriteSeq = 0
	bm.free = append(bm.free, block)
	return nil
}

// VictimPolicy selects garbage-collection victims.
type VictimPolicy int

const (
	// VictimGreedy always picks the allocated, full, non-active block with
	// the fewest valid pages, regardless of what it stores. This is the
	// policy of existing page-associative FTLs.
	VictimGreedy VictimPolicy = iota
	// VictimMetadataAware never targets translation or metadata blocks: it
	// picks the best user block and relies on metadata blocks becoming
	// fully invalid on their own, at which point they are erased for free
	// (Section 4.2 of the paper).
	VictimMetadataAware
)

// String names the policy.
func (p VictimPolicy) String() string {
	if p == VictimMetadataAware {
		return "metadata-aware"
	}
	return "greedy"
}

// PickVictim returns the next garbage-collection victim under the policy, or
// false when no block is eligible. Only full, non-active, allocated blocks
// are eligible: partially written active blocks still absorb writes. Blocks
// in the excluded set (e.g. those protected because they hold previous
// translation-page versions needed for buffer recovery, Appendix C.2.2) are
// skipped.
func (bm *blockManager) PickVictim(policy VictimPolicy, excluded map[flash.BlockID]bool) (flash.BlockID, bool) {
	best := flash.InvalidBlock
	bestValid := -1
	for i := range bm.blocks {
		info := &bm.blocks[i]
		if !info.allocated || info.writePointer < bm.cfg.PagesPerBlock {
			continue
		}
		id := flash.BlockID(i)
		if bm.isActive(id) || excluded[id] {
			continue
		}
		if policy == VictimMetadataAware && info.group != GroupUser {
			continue
		}
		if best == flash.InvalidBlock || info.valid < bestValid {
			best = id
			bestValid = info.valid
		}
	}
	return best, best != flash.InvalidBlock
}

// FullyInvalidBlocks returns allocated, full, non-active blocks of the given
// group with zero valid pages. Under the metadata-aware policy these are the
// only metadata blocks the FTL erases.
func (bm *blockManager) FullyInvalidBlocks(g Group) []flash.BlockID {
	var out []flash.BlockID
	for i := range bm.blocks {
		info := &bm.blocks[i]
		if info.allocated && info.group == g && info.valid == 0 &&
			info.writePointer >= bm.cfg.PagesPerBlock && !bm.isActive(flash.BlockID(i)) {
			out = append(out, flash.BlockID(i))
		}
	}
	return out
}

func (bm *blockManager) isActive(block flash.BlockID) bool {
	for g := range bm.active {
		if bm.active[g] == block {
			return true
		}
	}
	return false
}

// RAMBytes returns the integrated-RAM footprint of the block manager's
// per-block state as charged by the paper's models: 2 bytes per block for the
// BVC (Appendix B). The group tags and write pointers are charged one
// additional byte per block.
func (bm *blockManager) RAMBytes() int64 {
	return int64(len(bm.blocks)) * 3
}

// CrashRAM drops all RAM state, as a power failure would. The device contents
// are untouched.
func (bm *blockManager) CrashRAM() {
	for i := range bm.blocks {
		bm.blocks[i] = blockInfo{}
	}
	bm.free = bm.free[:0]
	for g := range bm.active {
		bm.active[g] = flash.InvalidBlock
	}
	// The write-sequence high-water mark is RAM too; recovery re-learns it
	// from the spares it scans (NoteWriteSeq).
	bm.lastSeq = 0
}

// userBlocksByRecency returns the allocated user blocks ordered from most
// recently first-written to least recently, which is the order the recovery
// backwards scan visits them (Section 4.3).
func (bm *blockManager) userBlocksByRecency() []flash.BlockID {
	blocks := bm.BlocksInGroup(GroupUser)
	sort.Slice(blocks, func(i, j int) bool {
		return bm.blocks[blocks[i]].firstWriteSeq > bm.blocks[blocks[j]].firstWriteSeq
	})
	return blocks
}
