package ftl

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"geckoftl/internal/flash"
)

// Group identifies the three block groups of Figure 8 of the paper.
type Group int

const (
	// GroupUser holds application data pages.
	GroupUser Group = iota
	// GroupTranslation holds translation pages.
	GroupTranslation
	// GroupMeta holds page-validity metadata: Logarithmic Gecko runs, the
	// flash-resident PVB or the page validity log.
	GroupMeta
	numGroups
)

var groupNames = [...]string{
	GroupUser:        "user",
	GroupTranslation: "translation",
	GroupMeta:        "meta",
}

// String returns the group name.
func (g Group) String() string {
	if g >= 0 && int(g) < len(groupNames) {
		return groupNames[g]
	}
	return fmt.Sprintf("group(%d)", int(g))
}

// blockType maps a group to the block type recorded in spare areas.
func (g Group) blockType() flash.BlockType {
	switch g {
	case GroupUser:
		return flash.BlockUser
	case GroupTranslation:
		return flash.BlockTranslation
	default:
		return flash.BlockGecko
	}
}

// purpose maps a group to the IO accounting purpose of its appends.
func (g Group) purpose() flash.Purpose {
	switch g {
	case GroupUser:
		return flash.PurposeUserWrite
	case GroupTranslation:
		return flash.PurposeTranslation
	default:
		return flash.PurposePageValidity
	}
}

// Temperature classifies user data by update frequency. With hot/cold
// separation enabled the block manager keeps one user write frontier per
// temperature, so blocks fill with pages of similar lifetimes: hot blocks
// invalidate almost entirely before the garbage collector reaches them, and
// cold blocks are never mixed with churn. Translation and metadata groups are
// unaffected (the paper already separates them from user data).
type Temperature int

const (
	// TempCold is the default temperature: user writes the heat classifier
	// does not recognize as hot, and garbage-collection migrations (a page
	// that survived long enough to be migrated is cold by definition).
	TempCold Temperature = iota
	// TempHot marks frequently updated logical pages.
	TempHot
	numTemps
)

// String returns "cold" or "hot".
func (t Temperature) String() string {
	if t == TempHot {
		return "hot"
	}
	return "cold"
}

// The block manager keeps one append-only write frontier per group, plus one
// extra user frontier for hot data when hot/cold separation is on. Frontier
// indices below numGroups coincide with the group (user frontier = cold).
const (
	frontierUserHot = int(numGroups)
	numFrontiers    = int(numGroups) + 1
)

// frontierFor maps a group and temperature to the frontier index.
func frontierFor(g Group, temp Temperature) int {
	if g == GroupUser && temp == TempHot {
		return frontierUserHot
	}
	return int(g)
}

// blockInfo is the per-block RAM state of the block manager.
type blockInfo struct {
	group Group
	// allocated reports whether the block currently belongs to a group (it
	// is not in the free pool).
	allocated bool
	// writePointer is the next free page offset within the block.
	writePointer int
	// valid is the Blocks Validity Counter entry: the number of pages in
	// the block holding live data.
	valid int
	// firstWriteSeq is the device write sequence of the block's first page
	// since its last erase; recovery uses it to order blocks by age.
	firstWriteSeq uint64
	// lastWriteSeq is the device write sequence of the block's most recent
	// page; the cost-benefit victim policy uses it as the block's age
	// anchor. Recovery approximates it with firstWriteSeq (the spare scan
	// reads only first pages), which only makes recovered blocks look
	// older, i.e. better victims.
	lastWriteSeq uint64
	// eraseCount mirrors the device's per-block erase counter in RAM so
	// that wear-aware allocation never costs IO on the write path. It is
	// lost at power failure and re-based from the device during recovery.
	eraseCount int
	// retired marks a grown bad block: its erase failed (or it was caught
	// worn out), so it holds no live data and never re-enters the free pool
	// or the wear heap. Like all blockInfo state it is lost at power
	// failure; recovery re-marks it from the device's bad-block table.
	retired bool
}

// blockManager owns the physical layout of GeckoFTL-style FTLs: it separates
// blocks into user / translation / metadata groups, each with an active block
// written append-only (two user frontiers when hot/cold separation is on),
// keeps the Blocks Validity Counter and per-block wear state, and hands out
// garbage-collection victims.
type blockManager struct {
	dev    flash.Plane
	cfg    flash.Config
	blocks []blockInfo
	free   []flash.BlockID
	active [numFrontiers]flash.BlockID

	// hotCold enables the second (hot) user write frontier.
	hotCold bool
	// wearAware makes takeFreeBlock pick the least-erased free block
	// instead of the most recently freed one.
	wearAware bool

	// gcReserve is the number of free blocks below which garbage-collection
	// must run before further allocations.
	gcReserve int

	// lastSeq is the device write sequence of the most recent page this
	// manager programmed (bumped opportunistically during recovery scans).
	// Synchronization operations stamp it into translation-page spares as
	// the content sequence: the instant up to which the page's mapping
	// content is known current. Unlike the page's own WriteSeq it survives
	// garbage-collection copies, which refresh WriteSeq but not content.
	lastSeq uint64

	erases int64
	// frees counts blocks returned to the free pool; the wear-conservation
	// invariant (every erase frees exactly one block) ties it to erases.
	// Retiring a bad block increments neither counter, so the invariant
	// survives fault injection.
	frees int64
	// programRetries counts page programs that failed and were retried on
	// the next frontier page.
	programRetries int64
}

// newBlockManager creates a block manager with every block free.
func newBlockManager(dev flash.Plane, gcReserve int, hotCold, wearAware bool) *blockManager {
	cfg := dev.Config()
	bm := &blockManager{
		dev:       dev,
		cfg:       cfg,
		blocks:    make([]blockInfo, cfg.Blocks),
		hotCold:   hotCold,
		wearAware: wearAware,
		gcReserve: gcReserve,
	}
	for i := cfg.Blocks - 1; i >= 0; i-- {
		bm.free = append(bm.free, flash.BlockID(i))
	}
	bm.restoreFreeOrder()
	for g := range bm.active {
		bm.active[g] = flash.InvalidBlock
	}
	return bm
}

// restoreFreeOrder re-establishes the free pool's ordering invariant after a
// bulk rebuild (construction, recovery): a heap under wear-aware allocation,
// anything under LIFO.
func (bm *blockManager) restoreFreeOrder() {
	if bm.wearAware {
		heap.Init(freeHeap{bm})
	}
}

// FreeBlocks returns the number of blocks in the free pool.
func (bm *blockManager) FreeBlocks() int { return len(bm.free) }

// NeedsGC reports whether the free pool has dropped to the reserve.
func (bm *blockManager) NeedsGC() bool { return len(bm.free) <= bm.gcReserve }

// Erases returns the number of block erases issued by the manager.
func (bm *blockManager) Erases() int64 { return bm.erases }

// Frees returns the number of blocks the manager has returned to the free
// pool. Outside of recovery re-basing it always equals Erases.
func (bm *blockManager) Frees() int64 { return bm.frees }

// ProgramRetries returns the number of failed page programs the manager
// stepped over by retrying on the next frontier page.
func (bm *blockManager) ProgramRetries() int64 { return bm.programRetries }

// BadBlocks returns the number of retired (grown bad) blocks. Computed from
// the per-block state rather than counted, so it always matches the set of
// blocks Retired reports — including after a crash and recovery re-marks
// them from the device's bad-block table.
func (bm *blockManager) BadBlocks() int {
	n := 0
	for i := range bm.blocks {
		if bm.blocks[i].retired {
			n++
		}
	}
	return n
}

// Retired reports whether a block has been retired as a grown bad block.
func (bm *blockManager) Retired(block flash.BlockID) bool { return bm.blocks[block].retired }

// EraseCount returns the manager's RAM mirror of a block's erase count.
func (bm *blockManager) EraseCount(block flash.BlockID) int { return bm.blocks[block].eraseCount }

// GroupOf returns the group a block currently belongs to and whether it is
// allocated at all.
func (bm *blockManager) GroupOf(block flash.BlockID) (Group, bool) {
	info := &bm.blocks[block]
	return info.group, info.allocated
}

// ValidCount returns the BVC entry of a block.
func (bm *blockManager) ValidCount(block flash.BlockID) int { return bm.blocks[block].valid }

// WritePointer returns the block's write pointer as known to the FTL.
func (bm *blockManager) WritePointer(block flash.BlockID) int { return bm.blocks[block].writePointer }

// BlocksInGroup returns the blocks currently allocated to a group, including
// its active block(s).
func (bm *blockManager) BlocksInGroup(g Group) []flash.BlockID {
	var out []flash.BlockID
	for i := range bm.blocks {
		if bm.blocks[i].allocated && bm.blocks[i].group == g {
			out = append(out, flash.BlockID(i))
		}
	}
	return out
}

// freeHeap orders the manager's free list as a min-heap keyed by
// (eraseCount, blockID), so wear-aware allocation pops the least-erased free
// block — ties to the lowest block ID — in O(log n) instead of scanning the
// pool. Erase counts of pooled blocks never change (only allocated blocks
// are erased), so the heap invariant holds between operations. The struct
// holds the manager pointer; heap.Interface's value receivers mutate the
// slice through it.
type freeHeap struct{ bm *blockManager }

func (h freeHeap) Len() int { return len(h.bm.free) }
func (h freeHeap) Less(i, j int) bool {
	a, b := h.bm.free[i], h.bm.free[j]
	if ea, eb := h.bm.blocks[a].eraseCount, h.bm.blocks[b].eraseCount; ea != eb {
		return ea < eb
	}
	return a < b
}
func (h freeHeap) Swap(i, j int) { h.bm.free[i], h.bm.free[j] = h.bm.free[j], h.bm.free[i] }
func (h freeHeap) Push(x any)    { h.bm.free = append(h.bm.free, x.(flash.BlockID)) }
func (h freeHeap) Pop() any {
	last := len(h.bm.free) - 1
	id := h.bm.free[last]
	h.bm.free = h.bm.free[:last]
	return id
}

// takeFreeBlock removes a block from the free pool and assigns it to a group.
// Without wear-aware allocation the most recently freed block is reused (the
// historical LIFO behaviour); with it, the least-erased free block is taken —
// coldest-erase-count first, ties broken by lowest block ID — so blocks that
// sat out rejoin the write path before churned ones wear further.
func (bm *blockManager) takeFreeBlock(g Group) (flash.BlockID, error) {
	if len(bm.free) == 0 {
		return flash.InvalidBlock, fmt.Errorf("ftl: no free blocks left for group %v", g)
	}
	var id flash.BlockID
	if bm.wearAware {
		id = heap.Pop(freeHeap{bm}).(flash.BlockID)
	} else {
		id = bm.free[len(bm.free)-1]
		bm.free = bm.free[:len(bm.free)-1]
	}
	info := &bm.blocks[id]
	info.group = g
	info.allocated = true
	info.writePointer = 0
	info.valid = 0
	info.firstWriteSeq = 0
	info.lastWriteSeq = 0
	return id, nil
}

// AllocatePage programs the next free page of the group's cold frontier
// (allocating a new active block from the free pool when needed) and returns
// its address. The page is counted as valid in the BVC. The caller supplies
// the spare area; the block type of the first page is stamped automatically.
func (bm *blockManager) AllocatePage(g Group, spare flash.SpareArea, p flash.Purpose) (flash.PPN, error) {
	return bm.allocateOnFrontier(g, frontierFor(g, TempCold), spare, p)
}

// AllocateUserPage programs the next free page of the user group's frontier
// for the given temperature. Without hot/cold separation every temperature
// maps to the single user frontier.
func (bm *blockManager) AllocateUserPage(temp Temperature, spare flash.SpareArea, p flash.Purpose) (flash.PPN, error) {
	if !bm.hotCold {
		temp = TempCold
	}
	return bm.allocateOnFrontier(GroupUser, frontierFor(GroupUser, temp), spare, p)
}

func (bm *blockManager) allocateOnFrontier(g Group, frontier int, spare flash.SpareArea, p flash.Purpose) (flash.PPN, error) {
	for {
		active := bm.active[frontier]
		if active == flash.InvalidBlock || bm.blocks[active].writePointer >= bm.cfg.PagesPerBlock {
			id, err := bm.takeFreeBlock(g)
			if err != nil {
				return flash.InvalidPPN, err
			}
			bm.active[frontier] = id
			active = id
		}
		info := &bm.blocks[active]
		if info.firstWriteSeq == 0 {
			// Stamp the block type on every attempt until the block's first
			// program succeeds: with program faults the first page(s) can be
			// consumed unreadable, and recovery classifies the block from its
			// first readable spare.
			spare.BlockType = g.blockType()
		}
		ppn := flash.PPNOf(active, info.writePointer, bm.cfg.PagesPerBlock)
		seq, err := bm.dev.WritePage(ppn, spare, p)
		if errors.Is(err, flash.ErrProgramFailed) {
			// The device consumed the failed page (its write pointer moved
			// past it); step over it and retry on the next frontier page —
			// in a fresh block once this one runs out.
			bm.programRetries++
			info.writePointer++
			continue
		}
		if err != nil {
			return flash.InvalidPPN, err
		}
		bm.NoteWriteSeq(seq)
		if info.firstWriteSeq == 0 {
			info.firstWriteSeq = seq
		}
		info.lastWriteSeq = seq
		info.writePointer++
		info.valid++
		return ppn, nil
	}
}

// LastWriteSeq returns the newest device write sequence the manager has
// observed (see lastSeq).
func (bm *blockManager) LastWriteSeq() uint64 { return bm.lastSeq }

// NoteWriteSeq ratchets lastSeq forward; recovery calls it with the sequence
// numbers of the spares it scans so post-recovery synchronizations stamp
// content sequences no older than the flash they recovered from.
func (bm *blockManager) NoteWriteSeq(seq uint64) {
	if seq > bm.lastSeq {
		bm.lastSeq = seq
	}
}

// InvalidatePage decrements the BVC entry of the page's block.
func (bm *blockManager) InvalidatePage(ppn flash.PPN) error {
	block := flash.BlockOf(ppn, bm.cfg.PagesPerBlock)
	info := &bm.blocks[block]
	if !info.allocated {
		return fmt.Errorf("ftl: invalidating page %d of unallocated block %d", ppn, block)
	}
	if info.valid <= 0 {
		return fmt.Errorf("ftl: BVC underflow on block %d", block)
	}
	info.valid--
	return nil
}

// Erase erases a block, returns it to the free pool and resets its BVC entry.
// No frontier's active block can be erased.
func (bm *blockManager) Erase(block flash.BlockID, p flash.Purpose) error {
	info := &bm.blocks[block]
	if !info.allocated {
		return fmt.Errorf("ftl: erasing unallocated block %d", block)
	}
	for fr := range bm.active {
		if bm.active[fr] == block {
			return fmt.Errorf("ftl: erasing active %v block %d", info.group, block)
		}
	}
	if err := bm.dev.EraseBlock(block, p); err != nil {
		if errors.Is(err, flash.ErrWornOut) || errors.Is(err, flash.ErrEraseFailed) {
			// The block's contents are dead (callers only erase drained
			// blocks) but the block itself is gone as a resource: retire it.
			// It leaves the group, never re-enters the free pool or the wear
			// heap, and the device's usable capacity shrinks by one block.
			// Neither erases nor frees is incremented — no erase happened and
			// no block was freed — so erase/free conservation holds. The
			// erase that was due still happened logically: the caller
			// proceeds exactly as after a successful reclaim.
			info.allocated = false
			info.retired = true
			info.valid = 0
			return nil
		}
		return err
	}
	bm.erases++
	info.allocated = false
	info.valid = 0
	info.writePointer = 0
	info.firstWriteSeq = 0
	info.lastWriteSeq = 0
	info.eraseCount++
	if bm.wearAware {
		heap.Push(freeHeap{bm}, block)
	} else {
		bm.free = append(bm.free, block)
	}
	bm.frees++
	return nil
}

// VictimPolicy selects garbage-collection victims.
type VictimPolicy int

const (
	// VictimGreedy always picks the allocated, full, non-active block with
	// the fewest valid pages, regardless of what it stores. This is the
	// policy of existing page-associative FTLs.
	VictimGreedy VictimPolicy = iota
	// VictimMetadataAware never targets translation or metadata blocks: it
	// picks the best user block and relies on metadata blocks becoming
	// fully invalid on their own, at which point they are erased for free
	// (Section 4.2 of the paper).
	VictimMetadataAware
	// VictimCostBenefit scores user blocks by age times invalid fraction
	// and reclaims the highest scorer: a nearly-empty young block and a
	// half-empty old block are both good victims, while the cold,
	// mostly-valid blocks that greedy policies churn on skewed workloads
	// are left alone until they age. Like VictimMetadataAware it never
	// migrates translation or metadata blocks.
	VictimCostBenefit
)

// String names the policy.
func (p VictimPolicy) String() string {
	switch p {
	case VictimMetadataAware:
		return "metadata-aware"
	case VictimCostBenefit:
		return "cost-benefit"
	default:
		return "greedy"
	}
}

// MigratesMetadata reports whether the policy may pick translation or
// metadata blocks as victims (and therefore migrate their live pages).
// Non-greedy policies rely on fully-invalid metadata blocks dying of natural
// causes instead, so their FTLs need not track translation-page validity in
// the page-validity store.
func (p VictimPolicy) MigratesMetadata() bool { return p == VictimGreedy }

// PickVictim returns the next garbage-collection victim under the policy, or
// false when no block is eligible. Only full, non-active, allocated blocks
// are eligible: partially written active blocks still absorb writes. Blocks
// in the excluded set (e.g. those protected because they hold previous
// translation-page versions needed for buffer recovery, Appendix C.2.2) are
// skipped.
//
// Selection is deterministic: candidates are scanned in block-ID order and
// every comparison is strict, so equal-scoring candidates resolve to the
// lowest block ID. This matters most under VictimCostBenefit, whose
// floating-point scores tie easily (all-invalid blocks of the same age); a
// tie broken by anything but the ID would make identically-seeded
// simulations diverge.
func (bm *blockManager) PickVictim(policy VictimPolicy, excluded map[flash.BlockID]bool) (flash.BlockID, bool) {
	best := flash.InvalidBlock
	bestValid := -1
	bestScore := -1.0
	for i := range bm.blocks {
		info := &bm.blocks[i]
		if !info.allocated || info.writePointer < bm.cfg.PagesPerBlock {
			continue
		}
		id := flash.BlockID(i)
		if bm.isActive(id) || excluded[id] {
			continue
		}
		if !policy.MigratesMetadata() && info.group != GroupUser {
			continue
		}
		switch policy {
		case VictimCostBenefit:
			score := bm.costBenefitScore(info)
			if best == flash.InvalidBlock || score > bestScore {
				best = id
				bestScore = score
			}
		default:
			if best == flash.InvalidBlock || info.valid < bestValid {
				best = id
				bestValid = info.valid
			}
		}
	}
	return best, best != flash.InvalidBlock
}

// costBenefitScore is the block's age (device write sequences since its last
// program) times its invalid fraction. Age uses lastWriteSeq so a block still
// absorbing GC migrations does not look old, and the score of a fully valid
// block is zero regardless of age.
func (bm *blockManager) costBenefitScore(info *blockInfo) float64 {
	written := info.writePointer
	if written <= 0 {
		return 0
	}
	invalidFrac := float64(written-info.valid) / float64(written)
	age := float64(bm.lastSeq - info.lastWriteSeq)
	return age * invalidFrac
}

// FullyInvalidBlocks returns allocated, full, non-active blocks of the given
// group with zero valid pages. Under the non-greedy policies these are the
// only metadata blocks the FTL erases.
func (bm *blockManager) FullyInvalidBlocks(g Group) []flash.BlockID {
	var out []flash.BlockID
	for i := range bm.blocks {
		info := &bm.blocks[i]
		if info.allocated && info.group == g && info.valid == 0 &&
			info.writePointer >= bm.cfg.PagesPerBlock && !bm.isActive(flash.BlockID(i)) {
			out = append(out, flash.BlockID(i))
		}
	}
	return out
}

func (bm *blockManager) isActive(block flash.BlockID) bool {
	for fr := range bm.active {
		if bm.active[fr] == block {
			return true
		}
	}
	return false
}

// RAMBytes returns the integrated-RAM footprint of the block manager's
// per-block state as charged by the paper's models: 2 bytes per block for the
// BVC (Appendix B). The group tags and write pointers are charged one
// additional byte per block, and wear-aware allocation charges 2 more for
// the per-block erase counters it keeps in RAM.
func (bm *blockManager) RAMBytes() int64 {
	perBlock := int64(3)
	if bm.wearAware {
		perBlock += 2
	}
	return int64(len(bm.blocks)) * perBlock
}

// CrashRAM drops all RAM state, as a power failure would. The device contents
// are untouched.
func (bm *blockManager) CrashRAM() {
	for i := range bm.blocks {
		bm.blocks[i] = blockInfo{}
	}
	bm.free = bm.free[:0]
	for fr := range bm.active {
		bm.active[fr] = flash.InvalidBlock
	}
	// The write-sequence high-water mark is RAM too; recovery re-learns it
	// from the spares it scans (NoteWriteSeq).
	bm.lastSeq = 0
}

// userBlocksByRecency returns the allocated user blocks ordered from most
// recently first-written to least recently, which is the order the recovery
// backwards scan visits them (Section 4.3).
func (bm *blockManager) userBlocksByRecency() []flash.BlockID {
	blocks := bm.BlocksInGroup(GroupUser)
	sort.Slice(blocks, func(i, j int) bool {
		return bm.blocks[blocks[i]].firstWriteSeq > bm.blocks[blocks[j]].firstWriteSeq
	})
	return blocks
}
