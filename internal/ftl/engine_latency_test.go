package ftl

import (
	"context"
	"testing"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/workload"
)

// newLatencyTestEngine builds a 4-channel engine for instrumentation tests.
func newLatencyTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	cfg := flash.ScaledConfig(128)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.Channels = 4
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(dev, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineLatencyStats exercises the tentpole instrumentation end to end:
// batched writes and reads record one service-time observation each, the
// merged distributions behave sanely, queueing behind the die is visible in
// the tail, and resetting empties the histograms.
func TestEngineLatencyStats(t *testing.T) {
	eng := newLatencyTestEngine(t, GeckoFTLOptions(64))
	gen := workload.MustNewUniform(eng.LogicalPages(), 1)
	cfg := eng.Device().Config()

	batch := 4 * cfg.Dies()
	var writes int64
	for writes < 2*eng.LogicalPages() {
		_, targets, _ := workload.SplitBatch(workload.TakeBatch(gen, batch))
		if err := eng.WriteBatch(context.Background(), targets); err != nil {
			t.Fatal(err)
		}
		writes += int64(len(targets))
	}
	reads := make([]flash.LPN, 64)
	for i := range reads {
		reads[i] = gen.Next().Page
	}
	if err := eng.ReadBatch(context.Background(), reads); err != nil {
		t.Fatal(err)
	}

	es := eng.LatencyStats()
	if es.Writes.Count != writes {
		t.Fatalf("recorded %d write latencies for %d writes", es.Writes.Count, writes)
	}
	if es.Reads.Count != int64(len(reads)) {
		t.Fatalf("recorded %d read latencies for %d reads", es.Reads.Count, len(reads))
	}
	if es.Ops.LogicalWrites != writes {
		t.Fatalf("merged op counters report %d writes, want %d", es.Ops.LogicalWrites, writes)
	}
	// A write costs at least one page program; with 4 writes per shard per
	// batch, the p99 must show queueing above a single program.
	if es.Writes.P50 < cfg.Latency.PageWrite {
		t.Fatalf("p50 write latency %v below a single page program %v", es.Writes.P50, cfg.Latency.PageWrite)
	}
	if es.Writes.P99 < 2*cfg.Latency.PageWrite {
		t.Fatalf("p99 write latency %v shows no queueing behind the die", es.Writes.P99)
	}
	if !(es.Writes.P50 <= es.Writes.P99 && es.Writes.P99 <= es.Writes.Max) {
		t.Fatalf("write percentiles not monotonic: %v", es.Writes)
	}
	// Two full overwrites force steady-state GC, so stalled writes exist,
	// are a subset of all writes, and sit in the slow part of the
	// distribution.
	if es.GCStalledWrites.Count == 0 || es.GCStalledWrites.Count >= es.Writes.Count {
		t.Fatalf("GC-stalled write count %d out of range (0, %d)", es.GCStalledWrites.Count, es.Writes.Count)
	}
	if es.MaxGCStall <= 0 {
		t.Fatal("no GC stall recorded despite steady-state GC")
	}
	if es.GCStalledWrites.Max > es.Writes.Max {
		t.Fatalf("stalled-write max %v exceeds overall max %v", es.GCStalledWrites.Max, es.Writes.Max)
	}

	eng.ResetLatencyStats()
	es = eng.LatencyStats()
	if es.Writes.Count != 0 || es.Reads.Count != 0 || es.MaxGCStall != 0 {
		t.Fatalf("reset left observations behind: %+v", es)
	}
}

// TestEngineSingleOpLatencyMultiDie guards the single-page path on
// multi-die shards: a write landing on an idle die must not start before
// the shard's arrival stamp, so no successful write can record less than
// one page program. (Regression: without the partition arrival floor,
// alternate writes on a 2-die shard recorded zero latency.)
func TestEngineSingleOpLatencyMultiDie(t *testing.T) {
	cfg := flash.ScaledConfig(128)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.Channels = 1
	cfg.DiesPerChannel = 2
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(dev, GeckoFTLOptions(64), 1)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.MustNewUniform(eng.LogicalPages(), 2)
	for i := int64(0); i < 2*eng.LogicalPages(); i++ {
		if err := eng.Write(gen.Next().Page); err != nil {
			t.Fatal(err)
		}
	}
	es := eng.LatencyStats()
	if es.Writes.Count == 0 {
		t.Fatal("no write latencies recorded")
	}
	// Every write issues at least one page program after its arrival stamp,
	// so even the median cannot undercut a single program (with the
	// regression, roughly half the writes recorded zero and dragged the
	// median to zero).
	if es.Writes.P50 < cfg.Latency.PageWrite {
		t.Fatalf("p50 single-op write latency %v below one page program %v (zero-latency regression)",
			es.Writes.P50, cfg.Latency.PageWrite)
	}
}

// TestEngineLatencyDeterministic pins that recorded latencies are derived
// from the simulated clock, not the host: two identical runs produce
// identical distributions even though goroutine interleavings differ.
func TestEngineLatencyDeterministic(t *testing.T) {
	run := func() (s struct {
		w, g struct{ p50, p999, max time.Duration }
	}) {
		eng := newLatencyTestEngine(t, GeckoFTLOptions(64))
		gen := workload.MustNewUniform(eng.LogicalPages(), 9)
		batch := 4 * eng.Device().Config().Dies()
		var writes int64
		for writes < 2*eng.LogicalPages() {
			_, targets, _ := workload.SplitBatch(workload.TakeBatch(gen, batch))
			if err := eng.WriteBatch(context.Background(), targets); err != nil {
				t.Fatal(err)
			}
			writes += int64(len(targets))
		}
		es := eng.LatencyStats()
		s.w.p50, s.w.p999, s.w.max = es.Writes.P50, es.Writes.P999, es.Writes.Max
		s.g.p50, s.g.p999, s.g.max = es.GCStalledWrites.P50, es.GCStalledWrites.P999, es.GCStalledWrites.Max
		return s
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("latency distributions not deterministic:\n%+v\n%+v", a, b)
	}
}
