package ftl

import (
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/model"
	"geckoftl/internal/workload"
)

// newIncrementalGecko builds a GeckoFTL with the incremental GC scheduler.
func newIncrementalGecko(t *testing.T, dev flash.Plane, cacheEntries, pagesPerWrite int) *FTL {
	t.Helper()
	opts := GeckoFTLOptions(cacheEntries)
	opts.GCMode = GCIncremental
	opts.GCPagesPerWrite = pagesPerWrite
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestGCModeStrings pins the GC-mode and victim-policy names and their parse
// round-trips; geckobench routes its flags through the Parse functions.
func TestGCModeStrings(t *testing.T) {
	for _, m := range []GCMode{GCInline, GCIncremental} {
		got, err := ParseGCMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseGCMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseGCMode("bogus"); err == nil {
		t.Error("ParseGCMode accepted a bogus name")
	}
	for _, p := range []VictimPolicy{VictimGreedy, VictimMetadataAware} {
		got, err := ParseVictimPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseVictimPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseVictimPolicy("bogus"); err == nil {
		t.Error("ParseVictimPolicy accepted a bogus name")
	}
}

// TestOptionsValidateGC covers the new options' validation and defaulting.
func TestOptionsValidateGC(t *testing.T) {
	dev := newTestDevice(t, 96, 16, 512)
	opts := GeckoFTLOptions(64)
	opts.GCMode = GCIncremental
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Options().GCPagesPerWrite; got != DefaultGCPagesPerWrite {
		t.Fatalf("zero GCPagesPerWrite defaulted to %d, want %d", got, DefaultGCPagesPerWrite)
	}
	opts.GCPagesPerWrite = -1
	if _, err := New(newTestDevice(t, 96, 16, 512), opts); err == nil {
		t.Fatal("negative GCPagesPerWrite accepted")
	}
	opts.GCPagesPerWrite = 0
	opts.GCMode = GCMode(99)
	if _, err := New(newTestDevice(t, 96, 16, 512), opts); err == nil {
		t.Fatal("unknown GC mode accepted")
	}
}

// TestIncrementalGCStallBounded drives a standalone incremental-GC FTL to
// steady state and asserts, write by write, that the per-write GC stall
// respects the step budget and the analytic bound, without ever falling back
// to inline reclaim — and that the translation state stays consistent.
func TestIncrementalGCStallBounded(t *testing.T) {
	dev := newTestDevice(t, 96, 16, 512)
	k := 4
	f := newIncrementalGecko(t, dev, 128, k)
	bound := model.IncrementalGCStallBound(dev.Config().Latency, k)
	gen := workload.MustNewUniform(f.LogicalPages(), 7)

	writes := int(3 * f.LogicalPages())
	for i := 0; i < writes; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		stall, steps := f.LastWriteGCStall()
		if steps > k {
			t.Fatalf("write %d took %d GC steps, budget %d", i, steps, k)
		}
		if stall > bound {
			t.Fatalf("write %d stalled %v, bound %v", i, stall, bound)
		}
	}
	st := f.Stats()
	if st.GCFallbacks != 0 {
		t.Fatalf("incremental GC fell back to inline %d times", st.GCFallbacks)
	}
	if st.GCOperations == 0 || st.GCMigrations == 0 {
		t.Fatalf("steady state reached without garbage collection: %+v", st)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// strictStale=false: a mid-drain victim may hold stale pages whose UIP
	// flag was already cleared in anticipation of the victim's erase.
	checkConsistency(t, f, false)
}

// TestIncrementalGCMatchesInlineState runs the same workload under both GC
// modes and checks that they agree on the logical outcome (consistent
// translation state) and do comparable amounts of reclaim work.
func TestIncrementalGCMatchesInlineState(t *testing.T) {
	run := func(mode GCMode) (*FTL, Stats) {
		dev := newTestDevice(t, 96, 16, 512)
		opts := GeckoFTLOptions(128)
		opts.GCMode = mode
		f, err := New(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.MustNewUniform(f.LogicalPages(), 3)
		runWorkload(t, f, gen, int(3*f.LogicalPages()))
		if err := f.Flush(); err != nil {
			t.Fatal(err)
		}
		checkConsistency(t, f, mode == GCInline)
		return f, f.Stats()
	}
	_, inline := run(GCInline)
	_, incremental := run(GCIncremental)
	if incremental.LogicalWrites != inline.LogicalWrites {
		t.Fatalf("write counts diverged: %d vs %d", incremental.LogicalWrites, inline.LogicalWrites)
	}
	// Same device, same workload: reclaim volume should be in the same
	// ballpark (scheduling changes timing, not the amount of garbage).
	lo, hi := inline.GCMigrations*8/10, inline.GCMigrations*13/10
	if incremental.GCMigrations < lo || incremental.GCMigrations > hi {
		t.Fatalf("incremental migrations %d outside [%d,%d] of inline %d",
			incremental.GCMigrations, lo, hi, inline.GCMigrations)
	}
}

// TestIncrementalGCSurvivesCrash power-fails an incremental-GC FTL mid-drain
// and verifies recovery resets the scheduler state and normal operation
// (including further bounded GC) resumes cleanly.
func TestIncrementalGCSurvivesCrash(t *testing.T) {
	dev := newTestDevice(t, 96, 16, 512)
	f := newIncrementalGecko(t, dev, 128, 2)
	gen := workload.MustNewUniform(f.LogicalPages(), 11)
	runWorkload(t, f, gen, int(2*f.LogicalPages()))

	if err := f.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if f.gc.active() {
		t.Fatal("incremental GC state survived the power failure")
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	runWorkload(t, f, gen, int(f.LogicalPages()))
	if f.Stats().GCFallbacks != 0 {
		t.Fatalf("incremental GC fell back %d times after recovery", f.Stats().GCFallbacks)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, f, false)
}

// TestIncrementalGCWithWearLeveling guards the interaction between the
// wear-leveler and the incremental collector: a wear-leveling recycle must
// never target the in-flight GC victim (it would be erased under the
// drain's feet and the drain would erase its successor a second time).
func TestIncrementalGCWithWearLeveling(t *testing.T) {
	dev := newTestDevice(t, 96, 16, 512)
	opts := GeckoFTLOptions(128)
	opts.GCMode = GCIncremental
	opts.WearLeveling = true
	opts.WearThreshold = 1
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.MustNewHotCold(f.LogicalPages(), 0.2, 0.9, 13)
	runWorkload(t, f, gen, int(8*f.LogicalPages()))
	if f.WearStats().Migrations == 0 {
		t.Fatal("workload never triggered a wear-leveling recycle; the guard went unexercised")
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, f, false)
}

// TestIncrementalGCAllSchemes smoke-tests the incremental scheduler under
// every page-validity scheme and both victim policies: the drain logic must
// be correct for user, translation and metadata victims alike.
func TestIncrementalGCAllSchemes(t *testing.T) {
	for name, build := range allFTLBuilders() {
		t.Run(name, func(t *testing.T) {
			dev := newTestDevice(t, 96, 16, 512)
			base, err := build(dev, 128)
			if err != nil {
				t.Fatal(err)
			}
			opts := base.Options()
			opts.GCMode = GCIncremental
			f, err := New(newTestDevice(t, 96, 16, 512), opts)
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.MustNewUniform(f.LogicalPages(), 5)
			runWorkload(t, f, gen, int(3*f.LogicalPages()))
			if err := f.Flush(); err != nil {
				t.Fatal(err)
			}
			checkConsistency(t, f, false)
		})
	}
}
