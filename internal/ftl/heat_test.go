package ftl

import (
	"testing"

	"geckoftl/internal/flash"
)

func TestHeatClassifierDisabled(t *testing.T) {
	h := newHeatClassifier(false, 1024, 0, 0)
	for lpn := int64(0); lpn < 10; lpn++ {
		if temp := h.classify(lpn); temp != TempCold {
			t.Fatalf("disabled classifier returned %v", temp)
		}
	}
	if h.RAMBytes() != 0 {
		t.Errorf("disabled classifier charges %d RAM bytes", h.RAMBytes())
	}
}

func TestHeatClassifierSeparatesHotFromCold(t *testing.T) {
	const pages = 1024
	h := newHeatClassifier(true, pages, 0, 0)
	// Interleave a hot page (rewritten every 8 writes) with a cold sweep
	// that touches each page once: the hot page must cross the threshold,
	// the sweep must not.
	hotAsHot, coldAsHot := 0, 0
	cold := int64(1)
	for i := 0; i < 4096; i++ {
		if i%8 == 0 {
			if h.classify(0) == TempHot {
				hotAsHot++
			}
			continue
		}
		if h.classify(cold) == TempHot {
			coldAsHot++
		}
		cold = 1 + (cold % (pages - 1))
	}
	if hotAsHot < 256 {
		t.Errorf("hot page classified hot only %d times", hotAsHot)
	}
	if coldAsHot > 100 {
		t.Errorf("cold sweep classified hot %d times", coldAsHot)
	}
	if h.RAMBytes() != pages*4 {
		t.Errorf("classifier RAM = %d, want %d", h.RAMBytes(), pages*4)
	}
	h.CrashRAM()
	if h.classify(0) == TempHot {
		t.Error("heat survived CrashRAM")
	}
}

func TestHotColdFrontiersFillDistinctBlocks(t *testing.T) {
	cfg := flash.ScaledConfig(16)
	cfg.PagesPerBlock = 4
	cfg.PageSize = 512
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm := newBlockManager(dev, 2, true, false)
	hot, err := bm.AllocateUserPage(TempHot, flash.SpareArea{Logical: 1}, flash.PurposeUserWrite)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := bm.AllocateUserPage(TempCold, flash.SpareArea{Logical: 2}, flash.PurposeUserWrite)
	if err != nil {
		t.Fatal(err)
	}
	if flash.BlockOf(hot, cfg.PagesPerBlock) == flash.BlockOf(cold, cfg.PagesPerBlock) {
		t.Fatalf("hot page %d and cold page %d share a block despite separation", hot, cold)
	}
	// Both frontiers are active: neither block may be erased or picked.
	if bm.isActive(flash.BlockOf(hot, cfg.PagesPerBlock)) != true {
		t.Error("hot frontier block not active")
	}
	if _, ok := bm.PickVictim(VictimGreedy, nil); ok {
		t.Error("active frontier blocks offered as victims")
	}

	// Without separation, every temperature lands on the one user frontier.
	dev2, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bmOff := newBlockManager(dev2, 2, false, false)
	h2, err := bmOff.AllocateUserPage(TempHot, flash.SpareArea{Logical: 3}, flash.PurposeUserWrite)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := bmOff.AllocateUserPage(TempCold, flash.SpareArea{Logical: 4}, flash.PurposeUserWrite)
	if err != nil {
		t.Fatal(err)
	}
	if flash.BlockOf(h2, cfg.PagesPerBlock) != flash.BlockOf(c2, cfg.PagesPerBlock) {
		t.Error("separation disabled but temperatures landed on different blocks")
	}
}

func TestWearAwareTakesColdestFreeBlock(t *testing.T) {
	cfg := flash.ScaledConfig(8)
	cfg.PagesPerBlock = 2
	cfg.PageSize = 512
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm := newBlockManager(dev, 2, false, true)
	// Cycle a few blocks through allocate/erase to wear them, then free
	// everything and check the allocator prefers the unworn ones.
	worn := map[flash.BlockID]bool{}
	for i := 0; i < 3; i++ {
		id, err := bm.takeFreeBlock(GroupUser)
		if err != nil {
			t.Fatal(err)
		}
		worn[id] = true
		if _, err := dev.WritePage(flash.PPNOf(id, 0, cfg.PagesPerBlock), flash.SpareArea{}, flash.PurposeUserWrite); err != nil {
			t.Fatal(err)
		}
		bm.blocks[id].writePointer = cfg.PagesPerBlock // full, victim-eligible
		if err := bm.Erase(id, flash.PurposeGCErase); err != nil {
			t.Fatal(err)
		}
	}
	// The three just-erased blocks are back in the pool with erase count 1;
	// the allocator must now avoid them while unworn blocks remain.
	for i := 0; i < cfg.Blocks-len(worn); i++ {
		id, err := bm.takeFreeBlock(GroupUser)
		if err != nil {
			t.Fatal(err)
		}
		if worn[id] {
			t.Fatalf("allocation %d picked worn block %d while unworn blocks were free", i, id)
		}
	}
}

func TestCostBenefitPrefersOldInvalidBlocks(t *testing.T) {
	cfg := flash.ScaledConfig(16)
	cfg.PagesPerBlock = 4
	cfg.PageSize = 512
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm := newBlockManager(dev, 2, false, false)
	fill := func() flash.BlockID {
		var block flash.BlockID
		for p := 0; p < cfg.PagesPerBlock; p++ {
			ppn, err := bm.AllocatePage(GroupUser, flash.SpareArea{Logical: flash.LPN(p)}, flash.PurposeUserWrite)
			if err != nil {
				t.Fatal(err)
			}
			block = flash.BlockOf(ppn, cfg.PagesPerBlock)
		}
		return block
	}
	old := fill()
	young := fill()
	fill() // active block, shields the others

	// Same invalid fraction (half the pages), different ages: cost-benefit
	// must prefer the older block, greedy is indifferent (ties to lowest ID,
	// which here coincides with the older block too).
	for _, b := range []flash.BlockID{old, young} {
		for p := 0; p < cfg.PagesPerBlock/2; p++ {
			if err := bm.InvalidatePage(flash.PPNOf(b, p, cfg.PagesPerBlock)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, ok := bm.PickVictim(VictimCostBenefit, nil)
	if !ok || got != old {
		t.Fatalf("cost-benefit picked block %v (ok=%v), want older block %v", got, ok, old)
	}

	// Make the young block clearly emptier: greedy switches to it, while
	// cost-benefit weighs age against the invalid fraction.
	if err := bm.InvalidatePage(flash.PPNOf(young, cfg.PagesPerBlock/2, cfg.PagesPerBlock)); err != nil {
		t.Fatal(err)
	}
	if got, _ := bm.PickVictim(VictimGreedy, nil); got != young {
		t.Fatalf("greedy picked %v, want emptier block %v", got, young)
	}
}
