package ftl

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"geckoftl/internal/flash"
)

// wearSnapshot reads every block's erase count from the device (the ground
// truth the FTL's RAM mirrors and statistics must agree with).
func wearSnapshot(t *testing.T, f *FTL) []int {
	t.Helper()
	out := make([]int, f.cfg.Blocks)
	for b := 0; b < f.cfg.Blocks; b++ {
		ec, err := f.dev.EraseCount(flash.BlockID(b))
		if err != nil {
			t.Fatal(err)
		}
		out[b] = ec
	}
	return out
}

// checkWearInvariants asserts the shard-level conservation laws: every erase
// returns exactly one block to the free pool (erases == frees), the
// device-truth erase counts sum to the manager's erase counter, and the RAM
// mirror used by wear-aware allocation agrees with the device per block.
func checkWearInvariants(t *testing.T, f *FTL, shard int) {
	t.Helper()
	if f.bm.Erases() != f.bm.Frees() {
		t.Errorf("shard %d: erases %d != blocks freed %d", shard, f.bm.Erases(), f.bm.Frees())
	}
	var deviceTotal int64
	for b, ec := range wearSnapshot(t, f) {
		deviceTotal += int64(ec)
		if mirror := f.bm.EraseCount(flash.BlockID(b)); mirror != ec {
			t.Errorf("shard %d block %d: RAM erase-count mirror %d != device %d", shard, b, mirror, ec)
		}
	}
	if deviceTotal != f.bm.Erases() {
		t.Errorf("shard %d: device erase counts sum to %d, block manager counted %d", shard, deviceTotal, f.bm.Erases())
	}
}

// TestWearInvariantsUnderHammer drives a sharded engine with concurrent
// batches (run it under -race) across the hot/cold + wear-aware
// configuration and checks, between rounds and at the end, that erase
// accounting is conserved and every block's erase count is monotonically
// non-decreasing.
func TestWearInvariantsUnderHammer(t *testing.T) {
	dev := engineTestDevice(t, 256, 4)
	opts := GeckoFTLOptions(256)
	opts.HotColdSeparation = true
	opts.WearAwareAllocation = true
	opts.VictimPolicy = VictimCostBenefit
	e, err := NewEngine(dev, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	lp := e.LogicalPages()

	warm := rand.New(rand.NewSource(3))
	batch := make([]flash.LPN, 64)
	for done := int64(0); done < 2*lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = flash.LPN(warm.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}

	prev := make([][]int, e.Shards())
	for s := 0; s < e.Shards(); s++ {
		prev[s] = wearSnapshot(t, e.Shard(s))
	}
	const rounds = 4
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				lpns := make([]flash.LPN, 48)
				for r := 0; r < 8; r++ {
					for i := range lpns {
						lpns[i] = flash.LPN(rng.Int63n(lp))
					}
					if err := e.WriteBatch(context.Background(), lpns); err != nil {
						t.Error(err)
						return
					}
				}
			}(int64(round*100 + g))
		}
		wg.Wait()
		// Quiesced between rounds: check conservation and monotonicity.
		for s := 0; s < e.Shards(); s++ {
			f := e.Shard(s)
			checkWearInvariants(t, f, s)
			now := wearSnapshot(t, f)
			for b := range now {
				if now[b] < prev[s][b] {
					t.Errorf("round %d shard %d block %d: erase count went backwards (%d -> %d)",
						round, s, b, prev[s][b], now[b])
				}
			}
			prev[s] = now
		}
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestEraseCountsRebasedAfterRecovery pins the recovery re-base of the block
// manager's wear state: the RAM erase-count mirror is lost at power failure
// and must come back equal to the device's per-block truth, so post-recovery
// wear-aware allocation decisions do not start from zeroed counters.
func TestEraseCountsRebasedAfterRecovery(t *testing.T) {
	cfg := flash.ScaledConfig(128)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := GeckoFTLOptions(256)
	opts.WearAwareAllocation = true
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := int64(0); i < 3*f.LogicalPages(); i++ {
		if err := f.Write(flash.LPN(rng.Int63n(f.LogicalPages()))); err != nil {
			t.Fatal(err)
		}
	}
	if f.bm.Erases() == 0 {
		t.Fatal("workload produced no erases; the test is vacuous")
	}
	if err := f.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < f.cfg.Blocks; b++ {
		ec, err := f.dev.EraseCount(flash.BlockID(b))
		if err != nil {
			t.Fatal(err)
		}
		if mirror := f.bm.EraseCount(flash.BlockID(b)); mirror != ec {
			t.Fatalf("block %d: post-recovery mirror %d != device %d", b, mirror, ec)
		}
	}
}
