package ftl

import (
	"testing"

	"geckoftl/internal/flash"
)

func newTestTable(t *testing.T) (*blockManager, *translationTable, *flash.Device) {
	t.Helper()
	dev := newTestDevice(t, 16, 8, 512)
	bm := newBlockManager(dev, 2, false, false)
	table := newTranslationTable(bm, int64(dev.Config().LogicalPages()), dev.Config().PageSize)
	return bm, table, dev
}

func TestTranslationTableGeometry(t *testing.T) {
	_, table, dev := newTestTable(t)
	if got, want := table.EntriesPerPage(), dev.Config().PageSize/4; got != want {
		t.Errorf("EntriesPerPage = %d, want %d", got, want)
	}
	logical := int64(dev.Config().LogicalPages())
	wantPages := int((logical + int64(table.EntriesPerPage()) - 1) / int64(table.EntriesPerPage()))
	if table.Pages() != wantPages {
		t.Errorf("Pages = %d, want %d", table.Pages(), wantPages)
	}
	if table.RAMBytes() != int64(wantPages)*4 {
		t.Errorf("RAMBytes = %d, want %d", table.RAMBytes(), wantPages*4)
	}
}

func TestTranslationTableUnmappedReadsAreFree(t *testing.T) {
	_, table, dev := newTestTable(t)
	ppn, err := table.ReadEntry(5, flash.PurposeTranslation)
	if err != nil {
		t.Fatal(err)
	}
	if ppn != flash.InvalidPPN {
		t.Errorf("unmapped entry = %d, want InvalidPPN", ppn)
	}
	c := dev.Counters()
	if c.TotalOp(flash.OpPageRead) != 0 {
		t.Error("reading an entry of a never-written translation page cost IO")
	}
}

func TestTranslationTableSynchronizeRoundTrip(t *testing.T) {
	bm, table, dev := newTestTable(t)
	updates := []dirtyUpdate{{Logical: 1, Physical: 100}, {Logical: 2, Physical: 200}}
	before, err := table.Synchronize(0, updates)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 0 {
		t.Errorf("first synchronization returned before-images %v", before)
	}
	if table.FlashEntry(1) != 100 || table.FlashEntry(2) != 200 {
		t.Error("flash mapping not updated")
	}
	loc := table.GMDLocation(0)
	if loc == flash.InvalidPPN {
		t.Fatal("GMD not updated")
	}
	if g, ok := bm.GroupOf(flash.BlockOf(loc, dev.Config().PagesPerBlock)); !ok || g != GroupTranslation {
		t.Error("translation page not written into the translation block group")
	}

	// A second synchronization that changes page 1 returns its before-image
	// and invalidates the old translation page in the BVC.
	oldLoc := loc
	before, err = table.Synchronize(0, []dirtyUpdate{{Logical: 1, Physical: 111}})
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0] != 100 {
		t.Errorf("before-images = %v, want [100]", before)
	}
	if table.GMDLocation(0) == oldLoc {
		t.Error("GMD still points at the old translation page")
	}
	if bm.ValidCount(flash.BlockOf(oldLoc, dev.Config().PagesPerBlock)) != 1 {
		t.Errorf("old translation page not invalidated in BVC")
	}
	if table.SyncOps() != 2 {
		t.Errorf("SyncOps = %d, want 2", table.SyncOps())
	}
}

func TestTranslationTableAbortsEmptySynchronization(t *testing.T) {
	_, table, dev := newTestTable(t)
	if _, err := table.Synchronize(0, []dirtyUpdate{{Logical: 3, Physical: 30}}); err != nil {
		t.Fatal(err)
	}
	writesBefore := dev.Counters()
	if _, err := table.Synchronize(0, nil); err != nil {
		t.Fatal(err)
	}
	delta := dev.Counters().Sub(writesBefore)
	if delta.TotalOp(flash.OpPageWrite) != 0 {
		t.Error("aborted synchronization wrote a page")
	}
	if table.AbortedSyncOps() != 1 {
		t.Errorf("AbortedSyncOps = %d, want 1", table.AbortedSyncOps())
	}
}

func TestTranslationTableRejectsForeignUpdates(t *testing.T) {
	_, table, _ := newTestTable(t)
	if _, err := table.Synchronize(-1, nil); err == nil {
		t.Error("negative translation page accepted")
	}
	if _, err := table.Synchronize(table.Pages(), nil); err == nil {
		t.Error("out-of-range translation page accepted")
	}
	// An update whose logical page belongs to another translation page.
	foreign := flash.LPN(int64(table.EntriesPerPage()))
	if int(foreign) < int(table.logicalPages) {
		if _, err := table.Synchronize(0, []dirtyUpdate{{Logical: foreign, Physical: 9}}); err == nil {
			t.Error("update for a foreign translation page accepted")
		}
	}
}

func TestTranslationTableProtectsPreviousVersions(t *testing.T) {
	_, table, dev := newTestTable(t)
	if _, err := table.Synchronize(0, []dirtyUpdate{{Logical: 1, Physical: 10}}); err != nil {
		t.Fatal(err)
	}
	firstLoc := table.GMDLocation(0)
	// A Gecko buffer flush clears the protection window; the next update to
	// the translation page starts a new one whose snapshot is the state as
	// of that flush.
	table.ClearProtected()
	if _, err := table.Synchronize(0, []dirtyUpdate{{Logical: 1, Physical: 20}}); err != nil {
		t.Fatal(err)
	}
	tps := table.UpdatedSinceProtection()
	if len(tps) != 1 || tps[0] != 0 {
		t.Fatalf("UpdatedSinceProtection = %v", tps)
	}
	start, prev, ok := table.PreviousVersion(0)
	if !ok || start != 0 {
		t.Fatalf("PreviousVersion missing: start=%d ok=%v", start, ok)
	}
	if prev.content[1] != 10 {
		t.Errorf("previous content of logical 1 = %d, want 10", prev.content[1])
	}
	if prev.location != firstLoc {
		t.Errorf("previous location = %d, want %d", prev.location, firstLoc)
	}
	if !table.ProtectedBlocks()[flash.BlockOf(firstLoc, dev.Config().PagesPerBlock)] {
		t.Error("block of the previous version not protected")
	}
	table.ClearProtected()
	if len(table.UpdatedSinceProtection()) != 0 || len(table.ProtectedBlocks()) != 0 {
		t.Error("ClearProtected left state behind")
	}
}

func TestTranslationTableCrashDropsGMDOnly(t *testing.T) {
	_, table, _ := newTestTable(t)
	if _, err := table.Synchronize(0, []dirtyUpdate{{Logical: 1, Physical: 10}}); err != nil {
		t.Fatal(err)
	}
	table.CrashRAM()
	if table.GMDLocation(0) != flash.InvalidPPN {
		t.Error("GMD survived CrashRAM")
	}
	// The flash-resident mapping content survives (it models flash).
	if table.FlashEntry(1) != 10 {
		t.Error("flash mapping lost at CrashRAM")
	}
}

func TestGroupStoreRoundTrip(t *testing.T) {
	bm, _, dev := newTestTable(t)
	store := &groupStore{bm: bm}
	ppn, err := store.Append(flash.SpareArea{Tag: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Read(ppn); err != nil {
		t.Fatal(err)
	}
	spare, ok, err := store.ReadSpare(ppn)
	if err != nil || !ok || spare.Tag != 7 {
		t.Fatalf("spare = %+v ok=%v err=%v", spare, ok, err)
	}
	if err := store.Invalidate(ppn); err != nil {
		t.Fatal(err)
	}
	blocks := store.Blocks()
	if len(blocks) != 1 || blocks[0] != flash.BlockOf(ppn, dev.Config().PagesPerBlock) {
		t.Errorf("Blocks = %v", blocks)
	}
	if g, ok := bm.GroupOf(blocks[0]); !ok || g != GroupMeta {
		t.Error("group store did not allocate from the metadata group")
	}
	c := dev.Counters()
	if c.Count(flash.OpPageWrite, flash.PurposePageValidity) != 1 {
		t.Error("group store write not attributed to page-validity")
	}
}
