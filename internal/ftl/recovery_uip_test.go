package ftl

import (
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/workload"
)

// TestNoDoubleInvalidationAfterRecovery is the regression test for a latent
// crash-recovery bug: the backwards scan recreates cached mapping entries
// with UIP = true, but the flash-resident before-image that flag identifies
// can already be durably recorded invalid (reported before the crash and
// flushed into a Logarithmic Gecko run, or re-derived by the Appendix C.2.2
// buffer replay) — and for entries recovered at their durably-mapped
// location, the overwrite fast path reports the before-image immediately
// while still carrying UIP forward. Either way the next synchronization
// reported the same page a second time (the C.3.2 spare check cannot object
// while the block remains unerased) and underflowed the rebuilt Blocks
// Validity Counter. Under a skewed workload with checkpoints this fired
// within ~50 post-recovery writes.
func TestNoDoubleInvalidationAfterRecovery(t *testing.T) {
	for _, hotCold := range []bool{false, true} {
		cfg := flash.ScaledConfig(128)
		cfg.PagesPerBlock = 16
		cfg.PageSize = 512
		cfg.OverProvision = 0.7
		dev, err := flash.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := GeckoFTLOptions(256)
		opts.HotColdSeparation = hotCold
		f, err := New(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.MustNewZipfian(f.LogicalPages(), 1.2, 7)
		trims := workload.MustNewTrimming(gen, f.LogicalPages(), 0.05, 11)
		for cycle := 0; cycle < 3; cycle++ {
			for i := 0; i < 4000; i++ {
				op := trims.Next()
				var err error
				if op.Kind == workload.OpTrim {
					err = f.Trim(op.Page)
				} else {
					err = f.Write(op.Page)
				}
				if err != nil {
					t.Fatalf("hotCold=%v cycle %d op %d: %v", hotCold, cycle, i, err)
				}
			}
			if err := f.PowerFail(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Recover(); err != nil {
				t.Fatalf("hotCold=%v cycle %d: recover: %v", hotCold, cycle, err)
			}
		}
		if err := f.CheckConsistency(); err != nil {
			t.Fatalf("hotCold=%v: post-recovery consistency: %v", hotCold, err)
		}
	}
}
