package ftl

import (
	"math"
)

// Default heat-classifier tuning. The half-life is expressed as a fraction
// of the logical address space: with halfLife = logicalPages/2 a page
// rewritten once per full-device overwrite decays to ~1.33 steady-state heat
// and stays cold, while a page rewritten four times as often (the hot set of
// an 80/20 workload) reaches ~3.4 and crosses the threshold.
const (
	defaultHeatHalfLifeDivisor = 2
	defaultHeatThreshold       = 2.0
)

// heatClassifier routes user writes to the hot or cold write frontier. It
// keeps an exponentially-decayed write count per logical page: on every write
// the page's heat decays by 2^(-Δ/halfLife) — Δ being the logical writes
// since the page was last written — and gains one. Pages whose heat reaches
// the threshold are rewritten faster than the decay horizon and classified
// hot.
//
// The decay is computed lazily at touch time from a per-page last-write
// clock, so the classifier costs O(1) per write and no background sweeps. A
// hardware FTL would store the heat in a few bits of fixed-point per entry;
// the RAM model charges 4 bytes per logical page (16-bit heat, 16-bit
// truncated clock).
type heatClassifier struct {
	enabled   bool
	halfLife  float64
	threshold float64

	// clock counts user writes; heat and last hold per-LPN state indexed by
	// shard-local logical page number.
	clock int64
	heat  []float32
	last  []int64
}

// newHeatClassifier sizes a classifier for logicalPages pages. halfLife and
// threshold of zero select the defaults.
func newHeatClassifier(enabled bool, logicalPages int64, halfLife int, threshold float64) *heatClassifier {
	h := &heatClassifier{enabled: enabled}
	if !enabled {
		return h
	}
	h.halfLife = float64(halfLife)
	if halfLife <= 0 {
		h.halfLife = math.Max(1, float64(logicalPages)/defaultHeatHalfLifeDivisor)
	}
	h.threshold = threshold
	if threshold <= 0 {
		h.threshold = defaultHeatThreshold
	}
	h.heat = make([]float32, logicalPages)
	h.last = make([]int64, logicalPages)
	return h
}

// classify records a write to the logical page and returns its temperature.
//
//geckolint:hotpath
func (h *heatClassifier) classify(lpn int64) Temperature {
	if !h.enabled {
		return TempCold
	}
	h.clock++
	decayed := float64(h.heat[lpn]) * math.Exp2(-float64(h.clock-h.last[lpn])/h.halfLife)
	next := decayed + 1
	h.heat[lpn] = float32(next)
	h.last[lpn] = h.clock
	if next >= h.threshold {
		return TempHot
	}
	return TempCold
}

// RAMBytes is the integrated-RAM footprint charged for the classifier: 4
// bytes per logical page when enabled (see the type comment).
func (h *heatClassifier) RAMBytes() int64 {
	if !h.enabled {
		return 0
	}
	return int64(len(h.heat)) * 4
}

// CrashRAM drops the classifier's state, as a power failure would. Heat is
// advisory: losing it only means post-recovery writes start cold and re-warm.
func (h *heatClassifier) CrashRAM() {
	if !h.enabled {
		return
	}
	h.clock = 0
	for i := range h.heat {
		h.heat[i] = 0
		h.last[i] = 0
	}
}
