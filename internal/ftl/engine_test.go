package ftl

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"geckoftl/internal/flash"
)

// engineTestDevice builds a multi-channel device small enough for tests but
// large enough that garbage collection runs in every shard.
func engineTestDevice(t *testing.T, blocks, channels int) *flash.Device {
	t.Helper()
	cfg := flash.ScaledConfig(blocks)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.Channels = channels
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestEngineRouting(t *testing.T) {
	dev := engineTestDevice(t, 128, 4)
	e, err := NewEngine(dev, GeckoFTLOptions(128), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4 (one per channel)", e.Shards())
	}
	wantLP := 4 * e.Shard(0).LogicalPages()
	if e.LogicalPages() != wantLP {
		t.Fatalf("LogicalPages() = %d, want %d", e.LogicalPages(), wantLP)
	}
	// Consecutive LPNs stripe across shards.
	for lpn := flash.LPN(0); lpn < 8; lpn++ {
		s, local, err := e.shardOf(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if s != int(lpn)%4 || local != lpn/4 {
			t.Fatalf("shardOf(%d) = (%d,%d), want (%d,%d)", lpn, s, local, int(lpn)%4, lpn/4)
		}
	}
	if err := e.Write(flash.LPN(e.LogicalPages())); err == nil {
		t.Fatal("expected out-of-range write to fail")
	}
	if err := e.WriteBatch(context.Background(), []flash.LPN{0, -1}); err == nil {
		t.Fatal("expected out-of-range batch to fail")
	}
	if err := e.WriteBatch(context.Background(), []flash.LPN{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.ReadBatch(context.Background(), []flash.LPN{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().LogicalWrites; got != 4 {
		t.Fatalf("aggregated LogicalWrites = %d, want 4", got)
	}
	if got := e.Stats().LogicalReads; got != 4 {
		t.Fatalf("aggregated LogicalReads = %d, want 4", got)
	}
}

// TestEngineSingleShardMatchesFTL pins the engine's sharding to be a pure
// routing layer: with one shard it must behave exactly like a plain FTL over
// the same device, operation for operation.
func TestEngineSingleShardMatchesFTL(t *testing.T) {
	const writes = 3000
	run := func(drive func(lpn flash.LPN) error, logicalPages int64) {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < writes; i++ {
			if err := drive(flash.LPN(rng.Int63n(logicalPages))); err != nil {
				t.Fatal(err)
			}
		}
	}

	engDev := engineTestDevice(t, 128, 1)
	e, err := NewEngine(engDev, GeckoFTLOptions(128), 1)
	if err != nil {
		t.Fatal(err)
	}
	run(e.Write, e.LogicalPages())

	ftlDev := engineTestDevice(t, 128, 1)
	f, err := NewGeckoFTL(ftlDev, 128)
	if err != nil {
		t.Fatal(err)
	}
	run(f.Write, f.LogicalPages())

	if e.Stats() != f.Stats() {
		t.Errorf("engine stats %+v != ftl stats %+v", e.Stats(), f.Stats())
	}
	if got, want := engDev.SimulatedTime(), ftlDev.SimulatedTime(); got != want {
		t.Errorf("engine device time %v != ftl device time %v", got, want)
	}
}

// TestEngineBatchHammer is the concurrency test the engine exists for:
// multiple goroutines issue overlapping ReadBatch/WriteBatch calls (enough
// writes that every shard's garbage collector runs repeatedly), and after
// quiescing, every shard's translation map must still be consistent with the
// flash contents. Run with -race.
func TestEngineBatchHammer(t *testing.T) {
	for _, scheme := range []struct {
		name string
		opts Options
	}{
		{"gecko", GeckoFTLOptions(256)},
		{"dftl", DFTLOptions(256)},
	} {
		t.Run(scheme.name, func(t *testing.T) {
			dev := engineTestDevice(t, 256, 4)
			e, err := NewEngine(dev, scheme.opts, 4)
			if err != nil {
				t.Fatal(err)
			}
			lp := e.LogicalPages()

			// Fill the device past capacity single-threaded so that the
			// hammer phase below runs against steady-state GC.
			warm := rand.New(rand.NewSource(7))
			batch := make([]flash.LPN, 64)
			var warmWrites int64
			for done := int64(0); done < 2*lp; done += int64(len(batch)) {
				warmWrites += int64(len(batch))
				for i := range batch {
					batch[i] = flash.LPN(warm.Int63n(lp))
				}
				if err := e.WriteBatch(context.Background(), batch); err != nil {
					t.Fatal(err)
				}
			}

			const (
				goroutines = 8
				rounds     = 24
				batchSize  = 48
			)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					lpns := make([]flash.LPN, batchSize)
					for r := 0; r < rounds; r++ {
						for i := range lpns {
							lpns[i] = flash.LPN(rng.Int63n(lp))
						}
						if r%3 == 2 {
							if err := e.ReadBatch(context.Background(), lpns); err != nil {
								t.Error(err)
								return
							}
							continue
						}
						if err := e.WriteBatch(context.Background(), lpns); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(g + 1))
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			stats := e.Stats()
			wantWrites := warmWrites + int64(goroutines*rounds/3*2*batchSize)
			if stats.LogicalWrites != wantWrites {
				t.Errorf("LogicalWrites = %d, want %d", stats.LogicalWrites, wantWrites)
			}
			if stats.GCOperations == 0 {
				t.Error("expected garbage collection to run during the hammer")
			}

			// Quiesced: the translation maps must agree with flash.
			if err := e.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			// And stay consistent after flushing all dirty state.
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := e.CheckConsistency(); err != nil {
				t.Fatalf("after flush: %v", err)
			}
			// Every page remains readable.
			all := make([]flash.LPN, lp)
			for i := range all {
				all[i] = flash.LPN(i)
			}
			if err := e.ReadBatch(context.Background(), all); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEngineParallelTimeScales verifies the performance property the
// topology exists for: the same workload on 8 channels finishes in well
// under half the wall-clock (busiest-die) time of a single channel.
func TestEngineParallelTimeScales(t *testing.T) {
	wallTime := func(channels int) (wall, serial float64) {
		dev := engineTestDevice(t, 256, channels)
		e, err := NewEngine(dev, GeckoFTLOptions(256), 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		lp := e.LogicalPages()
		batch := make([]flash.LPN, 128)
		for done := int64(0); done < 3*lp; done += int64(len(batch)) {
			for i := range batch {
				batch[i] = flash.LPN(rng.Int63n(lp))
			}
			if err := e.WriteBatch(context.Background(), batch); err != nil {
				t.Fatal(err)
			}
		}
		return dev.ParallelSimulatedTime().Seconds(), dev.SimulatedTime().Seconds()
	}
	wall1, serial1 := wallTime(1)
	wall8, _ := wallTime(8)
	if wall1 != serial1 {
		t.Errorf("1-channel wall %v != serial %v", wall1, serial1)
	}
	if speedup := wall1 / wall8; speedup < 2 {
		t.Errorf("8-channel speedup %.2fx, want >= 2x", speedup)
	}
}
