package ftl

import (
	"errors"
	"math/rand"
	"testing"

	"geckoftl/internal/flash"
)

// TestFaultRecovery crashes a device mid-way through a fault campaign and
// asserts that recovery rediscovers every piece of fault state from device
// truth alone: the retired bad-block set, the free pool without retired
// blocks, and a consistent mapping — then keeps serving writes.
func TestFaultRecovery(t *testing.T) {
	for _, po := range []struct {
		name string
		opts Options
	}{
		{"geckoftl", GeckoFTLOptions(192)},
		{"dftl", DFTLOptions(192)},
	} {
		t.Run(po.name, func(t *testing.T) {
			plan := flash.FaultPlan{Seed: 5, ProgramFailRate: 0.02, EraseFailRate: 0.05}
			dev := hammerDevice(t, 64, 0, plan)
			f, err := New(dev, po.opts)
			if err != nil {
				t.Fatal(err)
			}
			lp := f.LogicalPages()
			rng := rand.New(rand.NewSource(17))
			for op := 0; op < 2500; op++ {
				lpn := flash.LPN(rng.Int63n(lp))
				if op%5 == 4 {
					err = f.Read(lpn)
				} else {
					err = f.Write(lpn)
				}
				if err != nil && !deviceDead(err) {
					t.Fatalf("op %d: %v", op, err)
				}
			}
			preBad := f.Stats().BadBlocks
			preRetries := f.Stats().ProgramRetries
			if preBad == 0 || preRetries == 0 {
				t.Fatalf("campaign produced no fault state to recover (bad=%d retries=%d)", preBad, preRetries)
			}

			f.PowerFail()
			if _, err := f.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}

			// The retired set is device truth: recovery must rediscover it
			// exactly, not approximately. auditFaultInvariants checks
			// bad-block agreement per block, free-pool exclusion, erase-count
			// mirrors and mapping consistency.
			if got := f.Stats().BadBlocks; got != preBad {
				t.Errorf("recovered BadBlocks = %d, lost from pre-crash %d", got, preBad)
			}
			if err := auditFaultInvariants(f); err != nil {
				t.Fatalf("invariants after recovery: %v", err)
			}

			// The device must keep serving — including through fresh faults.
			for op := 0; op < 500; op++ {
				if err := f.Write(flash.LPN(rng.Int63n(lp))); err != nil {
					if deviceDead(err) {
						break
					}
					t.Fatalf("post-recovery write %d: %v", op, err)
				}
			}
			if err := auditFaultInvariants(f); err != nil {
				t.Fatalf("invariants after post-recovery writes: %v", err)
			}
		})
	}
}

// TestFaultRecoveryBadFirstPage pins the hardest classification case: a block
// whose very first page failed to program carries no spare to classify it
// by. Recovery must forward-probe past the bad page instead of
// misclassifying or crashing.
func TestFaultRecoveryBadFirstPage(t *testing.T) {
	plan := flash.FaultPlan{Schedule: []flash.FaultEvent{{Op: flash.OpPageWrite, AtCount: 1}}}
	dev := hammerDevice(t, 32, 0, plan)
	f, err := New(dev, GeckoFTLOptions(128))
	if err != nil {
		t.Fatal(err)
	}
	// The very first program — whichever block the FTL aims it at — fails
	// and is retried on the next page, leaving offset 0 bad.
	for lpn := flash.LPN(0); lpn < 40; lpn++ {
		if err := f.Write(lpn); err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	if f.Stats().ProgramRetries == 0 {
		t.Fatal("scripted first-program fault never fired")
	}

	f.PowerFail()
	if _, err := f.Recover(); err != nil {
		t.Fatalf("Recover with bad first page: %v", err)
	}
	if err := auditFaultInvariants(f); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	for lpn := flash.LPN(0); lpn < 40; lpn++ {
		if err := f.Read(lpn); err != nil {
			t.Fatalf("read %d after recovery: %v", lpn, err)
		}
	}
}

// TestScrubPreventsReadDecay pins the scrub-or-lose contract: with read
// disturb injected, a scrubbing FTL relocates hot blocks before their
// payload decays, while an FTL with scrubbing disabled eventually surfaces
// ErrReadDecayed on a read.
func TestScrubPreventsReadDecay(t *testing.T) {
	run := func(threshold int) (scrubs int64, err error) {
		plan := flash.FaultPlan{Seed: 9, ReadDisturbLimit: 64}
		dev := hammerDevice(t, 64, 0, plan)
		opts := GeckoFTLOptions(192)
		opts.ScrubReadThreshold = threshold
		f, ferr := New(dev, opts)
		if ferr != nil {
			return 0, ferr
		}
		lp := f.LogicalPages()
		rng := rand.New(rand.NewSource(21))
		// Fill a few blocks so the hot set lives in full (scrubbable)
		// blocks, then hammer reads with a trickle of writes keeping the
		// frontier moving so relocated pages end up in full blocks too.
		for lpn := flash.LPN(0); lpn < 64; lpn++ {
			if err := f.Write(lpn); err != nil {
				return 0, err
			}
		}
		for op := 0; op < 6000; op++ {
			if op%8 == 7 {
				err = f.Write(flash.LPN(64 + rng.Int63n(lp-64)))
			} else {
				err = f.Read(flash.LPN(rng.Int63n(32)))
			}
			if err != nil {
				return f.Stats().ScrubOperations, err
			}
		}
		return f.Stats().ScrubOperations, nil
	}

	scrubs, err := run(32)
	if err != nil {
		t.Fatalf("scrubbing FTL failed: %v", err)
	}
	if scrubs == 0 {
		t.Fatal("read hammer at half the disturb limit triggered no scrubs")
	}

	if _, err := run(0); !errors.Is(err, flash.ErrReadDecayed) {
		t.Fatalf("without scrubbing, err = %v, want ErrReadDecayed", err)
	}
}
