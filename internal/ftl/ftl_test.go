package ftl

import (
	"math/rand"
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/workload"
)

// testDeviceConfig is a small but realistic geometry: 96 blocks of 16 pages
// of 512 bytes, 70% over-provisioning, strict sequential writes.
func testFTL(t *testing.T, build func(flash.Plane, int) (*FTL, error), blocks, cacheEntries int) *FTL {
	t.Helper()
	dev := newTestDevice(t, blocks, 16, 512)
	f, err := build(dev, cacheEntries)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// allFTLBuilders returns the five FTL constructors keyed by display name.
func allFTLBuilders() map[string]func(flash.Plane, int) (*FTL, error) {
	return map[string]func(flash.Plane, int) (*FTL, error){
		"GeckoFTL": NewGeckoFTL,
		"DFTL":     NewDFTL,
		"LazyFTL":  NewLazyFTL,
		"uFTL":     NewMuFTL,
		"IB-FTL":   NewIBFTL,
	}
}

// runWorkload drives writes (and optionally reads) through the FTL.
func runWorkload(t *testing.T, f *FTL, gen workload.Generator, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		op := gen.Next()
		var err error
		if op.Kind == workload.OpRead {
			err = f.Read(op.Page)
		} else {
			err = f.Write(op.Page)
		}
		if err != nil {
			t.Fatalf("%s op %d (%v %d): %v", f.Name(), i, op.Kind, op.Page, err)
		}
	}
}

// checkConsistency verifies the FTL's end-state invariants after a Flush:
//
//  1. every logical page's flash-resident mapping points to a written page
//     whose spare area names that logical page;
//  2. no two logical pages map to the same physical page;
//  3. for every written page of every user block, the page-validity store
//     marks it invalid exactly when the translation table does not reference
//     it (no false invalidations of live data, no missed invalidations of
//     stale data).
//
// strictStale controls the missed-invalidation half of (3). Invalidations
// that were buffered in Logarithmic Gecko's RAM buffer when power failed and
// that were reported outside synchronization operations cannot all be
// reconstructed (Appendix C.2 recovers the synchronization-reported ones);
// the affected pages are benign space leakage that the UIP check prevents
// from ever being migrated, so post-recovery checks pass strictStale=false.
func checkConsistency(t *testing.T, f *FTL, strictStale bool) {
	t.Helper()
	if err := f.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	referenced := make(map[flash.PPN]flash.LPN)
	for lpn := flash.LPN(0); int64(lpn) < f.logicalPages; lpn++ {
		ppn := f.table.FlashEntry(lpn)
		if ppn == flash.InvalidPPN {
			continue
		}
		if prev, dup := referenced[ppn]; dup {
			t.Fatalf("physical page %d mapped by both %d and %d", ppn, prev, lpn)
		}
		referenced[ppn] = lpn
		spare, written, err := f.dev.ReadSpare(ppn, flash.PurposeRecovery)
		if err != nil || !written {
			t.Fatalf("mapping of %d points at unwritten page %d (err=%v)", lpn, ppn, err)
		}
		if spare.Logical != lpn {
			t.Fatalf("mapping of %d points at page %d holding logical %d", lpn, ppn, spare.Logical)
		}
	}

	for _, block := range f.bm.BlocksInGroup(GroupUser) {
		invalid, err := f.validity.Query(block)
		if err != nil {
			t.Fatal(err)
		}
		written := f.bm.WritePointer(block)
		for offset := 0; offset < written; offset++ {
			ppn := flash.PPNOf(block, offset, f.cfg.PagesPerBlock)
			_, isLive := referenced[ppn]
			if isLive && invalid.Get(offset) {
				t.Fatalf("%s: live page %d (block %d offset %d) marked invalid", f.Name(), ppn, block, offset)
			}
			if strictStale && !isLive && !invalid.Get(offset) {
				t.Fatalf("%s: stale page %d (block %d offset %d) not marked invalid", f.Name(), ppn, block, offset)
			}
		}
	}
}

func TestNewValidatesOptions(t *testing.T) {
	dev := newTestDevice(t, 32, 16, 512)
	if _, err := New(dev, Options{Scheme: SchemeGecko, CacheEntries: 0}); err == nil {
		t.Error("zero cache capacity accepted")
	}
	if _, err := New(dev, Options{Scheme: SchemeGecko, CacheEntries: 64, DirtyFraction: 1.5}); err == nil {
		t.Error("dirty fraction > 1 accepted")
	}
	if _, err := New(dev, Options{Scheme: SchemeGecko, CacheEntries: 64, GCFreeBlockReserve: 1}); err == nil {
		t.Error("tiny GC reserve accepted")
	}
	if _, err := New(dev, Options{Scheme: SchemeGecko, CacheEntries: 64, GCFreeBlockReserve: 31}); err == nil {
		t.Error("oversized GC reserve accepted")
	}
	if _, err := New(dev, Options{Scheme: SchemeGecko, CacheEntries: 64, GeckoSizeRatio: 1}); err == nil {
		t.Error("gecko size ratio 1 accepted")
	}
	if _, err := New(dev, Options{Scheme: Scheme(99), CacheEntries: 64}); err == nil {
		t.Error("unknown scheme accepted")
	}
	f, err := New(dev, Options{Scheme: SchemeGecko, CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != SchemeGecko.String() {
		t.Errorf("default name = %q", f.Name())
	}
	if f.Options().GCFreeBlockReserve != 4 {
		t.Errorf("default GC reserve = %d, want 4", f.Options().GCFreeBlockReserve)
	}
}

func TestSchemeAndConstructorNames(t *testing.T) {
	for name, build := range allFTLBuilders() {
		f := testFTL(t, build, 64, 128)
		if f.Name() != name {
			t.Errorf("constructor for %s produced name %q", name, f.Name())
		}
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme has empty name")
	}
}

func TestWriteReadRejectOutOfRange(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	if err := f.Write(-1); err == nil {
		t.Error("negative LPN write accepted")
	}
	if err := f.Write(flash.LPN(f.LogicalPages())); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := f.Read(-1); err == nil {
		t.Error("negative LPN read accepted")
	}
	if err := f.Read(flash.LPN(f.LogicalPages())); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestReadOfNeverWrittenPageIsCheap(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	before := f.dev.Counters()
	if err := f.Read(10); err != nil {
		t.Fatal(err)
	}
	delta := f.dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposeUserRead) != 0 {
		t.Error("reading a never-written logical page read a user page")
	}
}

func TestWriteThenReadHitsNewVersion(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	if err := f.Write(42); err != nil {
		t.Fatal(err)
	}
	entry, ok := f.cache.Peek(42)
	if !ok || !entry.Dirty || entry.Physical == flash.InvalidPPN {
		t.Fatalf("cache entry after write = %+v, %v", entry, ok)
	}
	spare, written, err := f.dev.ReadSpare(entry.Physical, flash.PurposeRecovery)
	if err != nil || !written || spare.Logical != 42 {
		t.Fatalf("written page spare = %+v", spare)
	}
	before := f.dev.Counters()
	if err := f.Read(42); err != nil {
		t.Fatal(err)
	}
	delta := f.dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposeUserRead) != 1 {
		t.Errorf("read IO = %v, want one user-read", delta)
	}
	if delta.Count(flash.OpPageRead, flash.PurposeTranslation) != 0 {
		t.Error("cached read still read a translation page")
	}
	if f.Stats().LogicalWrites != 1 || f.Stats().LogicalReads != 1 {
		t.Errorf("stats = %+v", f.Stats())
	}
}

func TestReadMissFetchesTranslationPage(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 4) // tiny cache to force misses
	// Write several pages so their entries evict each other and are
	// synchronized to flash.
	for lpn := flash.LPN(0); lpn < 32; lpn++ {
		if err := f.Write(lpn); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read a page that is certainly not cached anymore.
	target := flash.LPN(0)
	if f.cache.Contains(target) {
		f.cache.Remove(target)
	}
	before := f.dev.Counters()
	if err := f.Read(target); err != nil {
		t.Fatal(err)
	}
	delta := f.dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposeTranslation) != 1 {
		t.Errorf("read miss translation reads = %d, want 1", delta.Count(flash.OpPageRead, flash.PurposeTranslation))
	}
}

func TestUIPLazyIdentification(t *testing.T) {
	// GeckoFTL: a write miss must not read the translation table; the
	// before-image is identified lazily at synchronization time.
	f := testFTL(t, NewGeckoFTL, 96, 256)
	// Establish a flash-resident mapping for page 7, then drop it from the
	// cache so the next write is a miss.
	if err := f.Write(7); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	oldPPN := f.table.FlashEntry(7)
	if oldPPN == flash.InvalidPPN {
		t.Fatal("setup: page 7 has no flash mapping")
	}
	f.cache.Remove(7)

	before := f.dev.Counters()
	if err := f.Write(7); err != nil {
		t.Fatal(err)
	}
	delta := f.dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposeTranslation) != 0 {
		t.Error("GeckoFTL write miss read the translation table")
	}
	entry, _ := f.cache.Peek(7)
	if !entry.UIP || !entry.Dirty {
		t.Errorf("entry after write miss = %+v, want dirty+UIP", entry)
	}
	// The old physical page is not yet known to the validity store.
	invalid, err := f.validity.Query(flash.BlockOf(oldPPN, f.cfg.PagesPerBlock))
	if err != nil {
		t.Fatal(err)
	}
	if invalid.Get(flash.OffsetOf(oldPPN, f.cfg.PagesPerBlock)) {
		t.Error("before-image reported before synchronization")
	}
	// After a flush (which synchronizes), the before-image must be known.
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	invalid, err = f.validity.Query(flash.BlockOf(oldPPN, f.cfg.PagesPerBlock))
	if err != nil {
		t.Fatal(err)
	}
	if !invalid.Get(flash.OffsetOf(oldPPN, f.cfg.PagesPerBlock)) {
		t.Error("before-image not reported invalid after synchronization")
	}
	entry, _ = f.cache.Peek(7)
	if entry.UIP || entry.Dirty {
		t.Errorf("entry after flush = %+v, want clean", entry)
	}
}

func TestDFTLWriteMissReadsTranslationPage(t *testing.T) {
	f := testFTL(t, NewDFTL, 96, 256)
	if err := f.Write(7); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f.cache.Remove(7)
	before := f.dev.Counters()
	if err := f.Write(7); err != nil {
		t.Fatal(err)
	}
	delta := f.dev.Counters().Sub(before)
	if delta.Count(flash.OpPageRead, flash.PurposeTranslation) != 1 {
		t.Errorf("DFTL write miss translation reads = %d, want 1",
			delta.Count(flash.OpPageRead, flash.PurposeTranslation))
	}
}

func TestSustainedWorkloadAllFTLs(t *testing.T) {
	// Enough writes to trigger garbage-collection several times over on a
	// 96-block device, for every FTL, with full end-state verification.
	for name, build := range allFTLBuilders() {
		t.Run(name, func(t *testing.T) {
			f := testFTL(t, build, 96, 256)
			gen := workload.MustNewUniform(f.LogicalPages(), 1)
			runWorkload(t, f, gen, 8000)
			if f.Stats().GCOperations == 0 {
				t.Error("no garbage-collection despite sustained writes")
			}
			checkConsistency(t, f, true)
		})
	}
}

func TestSequentialAndSkewedWorkloads(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 256)
	runWorkload(t, f, workload.MustNewSequential(f.LogicalPages()), 5000)
	checkConsistency(t, f, true)

	f2 := testFTL(t, NewGeckoFTL, 96, 256)
	runWorkload(t, f2, workload.MustNewHotCold(f2.LogicalPages(), 0.2, 0.8, 7), 5000)
	checkConsistency(t, f2, true)

	f3 := testFTL(t, NewGeckoFTL, 96, 256)
	runWorkload(t, f3, workload.MustNewMixed(workload.MustNewUniform(f3.LogicalPages(), 3), f3.LogicalPages(), 0.3, 4), 5000)
	checkConsistency(t, f3, true)
}

func TestGCReclaimsSpace(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	gen := workload.MustNewUniform(f.LogicalPages(), 2)
	runWorkload(t, f, gen, 6000)
	if f.bm.FreeBlocks() == 0 {
		t.Error("device ran out of free blocks")
	}
	st := f.Stats()
	if st.GCOperations == 0 || st.GCMigrations == 0 {
		t.Errorf("GC stats = %+v", st)
	}
	// The metadata-aware policy must never have migrated metadata, only
	// reclaimed fully-invalid metadata blocks.
	if st.MetadataBlockErases == 0 {
		t.Error("no metadata blocks reclaimed despite sustained writes")
	}
}

func TestDirtyBoundEnforced(t *testing.T) {
	f := testFTL(t, NewLazyFTL, 96, 200)
	limit := int(0.1 * 200)
	gen := workload.MustNewUniform(f.LogicalPages(), 3)
	for i := 0; i < 3000; i++ {
		if err := f.Write(gen.Next().Page); err != nil {
			t.Fatal(err)
		}
		if f.DirtyEntries() > limit {
			t.Fatalf("dirty entries %d exceed bound %d after write %d", f.DirtyEntries(), limit, i)
		}
	}
	if f.Stats().ForcedSyncs == 0 {
		t.Error("dirty bound never forced a synchronization")
	}
	// GeckoFTL has no such bound: its dirty count is allowed to grow to the
	// cache size.
	g := testFTL(t, NewGeckoFTL, 96, 200)
	for i := 0; i < 3000; i++ {
		if err := g.Write(gen.Next().Page); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().ForcedSyncs != 0 {
		t.Error("GeckoFTL forced synchronizations despite unbounded dirty fraction")
	}
}

func TestCheckpointsHappenEveryCOperations(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 64)
	gen := workload.MustNewUniform(f.LogicalPages(), 5)
	runWorkload(t, f, gen, 1000)
	st := f.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	// Roughly one checkpoint per C cache operations (GC migrations add
	// operations, so allow slack upward).
	if st.Checkpoints < 1000/64/2 {
		t.Errorf("checkpoints = %d, expected at least %d", st.Checkpoints, 1000/64/2)
	}
	// DFTL takes none.
	d := testFTL(t, NewDFTL, 96, 64)
	runWorkload(t, d, gen, 1000)
	if d.Stats().Checkpoints != 0 {
		t.Error("DFTL took checkpoints")
	}
}

func TestMetadataAwareGCNeverTargetsMetadata(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	gen := workload.MustNewUniform(f.LogicalPages(), 6)
	runWorkload(t, f, gen, 6000)
	// All GC migrations must have come from user blocks: with the
	// metadata-aware policy, translation and metadata pages are never
	// migrated, so the only writes with purpose gc-migration target the user
	// group... which cannot be distinguished by purpose alone. Instead check
	// that no metadata or translation block was ever picked as a victim by
	// verifying the stats: every GC operation's victim was a user block iff
	// UIPSkips+GCMigrations only ever touched user pages. The simplest
	// observable guarantee: fully-invalid metadata reclaims happened, and the
	// number of erases equals GC operations plus metadata reclaims.
	st := f.Stats()
	if got := f.bm.Erases(); got != st.GCOperations+st.MetadataBlockErases {
		t.Errorf("erases = %d, GC ops %d + metadata reclaims %d", got, st.GCOperations, st.MetadataBlockErases)
	}
}

func TestWriteAmplificationOrdering(t *testing.T) {
	// The core claim of the paper's evaluation: GeckoFTL's page-validity
	// write-amplification is far below the flash-resident PVB's (µ-FTL), and
	// its overall write-amplification is lower as well. The RAM-resident PVB
	// (DFTL) pays nothing for page validity.
	const ops = 10000
	results := map[string]struct {
		total, validity float64
	}{}
	for name, build := range map[string]func(flash.Plane, int) (*FTL, error){
		"GeckoFTL": NewGeckoFTL, "DFTL": NewDFTL, "uFTL": NewMuFTL,
	} {
		f := testFTL(t, build, 128, 256)
		gen := workload.MustNewUniform(f.LogicalPages(), 9)
		// Warm up so that steady-state GC is included.
		runWorkloadB(f, gen, ops/2)
		f.dev.ResetCounters()
		runWorkloadB(f, gen, ops)
		c := f.dev.Counters()
		delta := f.cfg.Latency.WriteReadRatio()
		results[name] = struct{ total, validity float64 }{
			total:    c.WriteAmplification(ops, delta),
			validity: c.PurposeWriteAmplification(flash.PurposePageValidity, ops, delta),
		}
	}
	if !(results["GeckoFTL"].validity < results["uFTL"].validity/5) {
		t.Errorf("GeckoFTL page-validity WA %v not well below uFTL %v",
			results["GeckoFTL"].validity, results["uFTL"].validity)
	}
	if !(results["GeckoFTL"].total < results["uFTL"].total) {
		t.Errorf("GeckoFTL total WA %v not below uFTL %v", results["GeckoFTL"].total, results["uFTL"].total)
	}
	if results["DFTL"].validity != 0 {
		t.Errorf("DFTL page-validity WA = %v, want 0 (RAM-resident PVB)", results["DFTL"].validity)
	}
}

// runWorkloadB is runWorkload without a *testing.T, for benchmarks and loops
// where failures should surface as panics.
func runWorkloadB(f *FTL, gen workload.Generator, ops int) {
	for i := 0; i < ops; i++ {
		op := gen.Next()
		var err error
		if op.Kind == workload.OpRead {
			err = f.Read(op.Page)
		} else {
			err = f.Write(op.Page)
		}
		if err != nil {
			panic(err)
		}
	}
}

func TestRAMFootprintOrdering(t *testing.T) {
	// DFTL and LazyFTL keep the PVB in RAM and must therefore need much
	// more integrated RAM than GeckoFTL and µ-FTL (Figure 13 top). Use the
	// paper's block size so the PVB dominates the Gecko buffer.
	ftls := map[string]*FTL{}
	for name, build := range allFTLBuilders() {
		dev := newTestDevice(t, 2048, 128, 4096)
		f, err := build(dev, 128)
		if err != nil {
			t.Fatal(err)
		}
		ftls[name] = f
	}
	if !(ftls["GeckoFTL"].RAMBytes() < ftls["DFTL"].RAMBytes()) {
		t.Errorf("GeckoFTL RAM %d not below DFTL %d", ftls["GeckoFTL"].RAMBytes(), ftls["DFTL"].RAMBytes())
	}
	if !(ftls["uFTL"].RAMBytes() < ftls["LazyFTL"].RAMBytes()) {
		t.Errorf("uFTL RAM %d not below LazyFTL %d", ftls["uFTL"].RAMBytes(), ftls["LazyFTL"].RAMBytes())
	}
}

func TestFlushLeavesNothingDirty(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	gen := workload.MustNewUniform(f.LogicalPages(), 11)
	runWorkload(t, f, gen, 2000)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.DirtyEntries() != 0 {
		t.Errorf("dirty entries after flush = %d", f.DirtyEntries())
	}
	if f.cache.DirtyCount() != 0 {
		t.Errorf("cache reports %d dirty entries after flush", f.cache.DirtyCount())
	}
}

func TestStressRandomOperationsAcrossSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for name, build := range allFTLBuilders() {
		t.Run(name, func(t *testing.T) {
			f := testFTL(t, build, 96, 128)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 12000; i++ {
				lpn := flash.LPN(rng.Int63n(f.LogicalPages()))
				var err error
				if rng.Intn(4) == 0 {
					err = f.Read(lpn)
				} else {
					err = f.Write(lpn)
				}
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			checkConsistency(t, f, true)
		})
	}
}
