package ftl

import (
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/workload"
)

// deterministicRun drives one seeded FTL through writes and crash/recover
// cycles and returns everything an identical twin must reproduce: the victim
// sequence, the logical counters and the device's simulated time.
func deterministicRun(t *testing.T, opts Options) ([]flash.BlockID, Stats, int64) {
	t.Helper()
	cfg := flash.ScaledConfig(128)
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.OverProvision = 0.7
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var victims []flash.BlockID
	f.OnVictim(func(b flash.BlockID) { victims = append(victims, b) })
	gen := workload.MustNewZipfian(f.LogicalPages(), 1.2, 7)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4000; i++ {
			if err := f.Write(gen.Next().Page); err != nil {
				t.Fatal(err)
			}
		}
		// Crash/recover between rounds: recovery replays invalidations into
		// the page-validity structures, historically in map-iteration order
		// (UpdatedSinceProtection), which could flush different Gecko buffer
		// contents on different runs of the same seed.
		if !opts.Battery {
			if err := f.PowerFail(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Recover(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return victims, f.Stats(), int64(dev.SimulatedTime())
}

// TestVictimSequenceDeterministic pins simulation reproducibility: two
// identically-seeded devices must select the same garbage-collection victims
// in the same order and end with identical counters, for every victim policy
// and for the hot/cold + wear-aware configuration. Cost-benefit selection
// scores tie easily (any two fully-invalid blocks of equal age), so this
// also locks in the lowest-block-ID tie-break.
func TestVictimSequenceDeterministic(t *testing.T) {
	configs := map[string]Options{}
	for _, policy := range []VictimPolicy{VictimGreedy, VictimMetadataAware, VictimCostBenefit} {
		opts := GeckoFTLOptions(256)
		opts.VictimPolicy = policy
		configs["policy-"+policy.String()] = opts
	}
	sep := GeckoFTLOptions(256)
	sep.VictimPolicy = VictimCostBenefit
	sep.HotColdSeparation = true
	sep.WearAwareAllocation = true
	configs["hotcold-wear"] = sep
	incr := GeckoFTLOptions(256)
	incr.GCMode = GCIncremental
	configs["incremental"] = incr

	for name, opts := range configs {
		t.Run(name, func(t *testing.T) {
			v1, s1, t1 := deterministicRun(t, opts)
			v2, s2, t2 := deterministicRun(t, opts)
			if len(v1) == 0 {
				t.Fatal("workload never triggered garbage collection; the test is vacuous")
			}
			if len(v1) != len(v2) {
				t.Fatalf("victim sequence lengths differ: %d vs %d", len(v1), len(v2))
			}
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("victim sequences diverge at pick %d: block %d vs %d", i, v1[i], v2[i])
				}
			}
			if s1 != s2 {
				t.Errorf("stats differ across identically-seeded runs:\n%+v\n%+v", s1, s2)
			}
			if t1 != t2 {
				t.Errorf("simulated time differs across identically-seeded runs: %d vs %d", t1, t2)
			}
		})
	}
}

// TestPickVictimTieBreaksByLowestBlockID pins the explicit tie-break rule on
// a hand-built tie: two equally good victims must resolve to the lower block
// ID under every policy, regardless of allocation order.
func TestPickVictimTieBreaksByLowestBlockID(t *testing.T) {
	cfg := flash.ScaledConfig(16)
	cfg.PagesPerBlock = 4
	cfg.PageSize = 512
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm := newBlockManager(dev, 2, false, false)
	// Fill three user blocks; invalidate every page of the second and third
	// so they tie perfectly (same valid count, same score); then open a
	// fresh active block so none of the candidates is a frontier.
	var blocks []flash.BlockID
	for b := 0; b < 3; b++ {
		for p := 0; p < cfg.PagesPerBlock; p++ {
			ppn, err := bm.AllocatePage(GroupUser, flash.SpareArea{Logical: flash.LPN(b*cfg.PagesPerBlock + p)}, flash.PurposeUserWrite)
			if err != nil {
				t.Fatal(err)
			}
			if p == 0 {
				blocks = append(blocks, flash.BlockOf(ppn, cfg.PagesPerBlock))
			}
		}
	}
	if _, err := bm.AllocatePage(GroupUser, flash.SpareArea{Logical: 99}, flash.PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks[1:] {
		for p := 0; p < cfg.PagesPerBlock; p++ {
			if err := bm.InvalidatePage(flash.PPNOf(b, p, cfg.PagesPerBlock)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Equalize the age anchors so the cost-benefit scores tie exactly.
	bm.blocks[blocks[1]].lastWriteSeq = bm.blocks[blocks[2]].lastWriteSeq
	want := blocks[1]
	if blocks[2] < want {
		want = blocks[2]
	}
	for _, policy := range []VictimPolicy{VictimGreedy, VictimMetadataAware, VictimCostBenefit} {
		got, ok := bm.PickVictim(policy, nil)
		if !ok {
			t.Fatalf("%v: no victim found", policy)
		}
		if got != want {
			t.Errorf("%v: tie resolved to block %d, want lowest ID %d", policy, got, want)
		}
	}
}
