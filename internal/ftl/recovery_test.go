package ftl

import (
	"testing"
	"time"

	"geckoftl/internal/mapcache"
	"geckoftl/internal/workload"
)

// crashAndRecover drives a workload, power-fails the device mid-stream, and
// runs recovery, returning the report.
func crashAndRecover(t *testing.T, f *FTL, ops int, seed int64) *RecoveryReport {
	t.Helper()
	gen := workload.MustNewUniform(f.LogicalPages(), seed)
	runWorkload(t, f, gen, ops)
	if err := f.PowerFail(); err != nil {
		t.Fatal(err)
	}
	report, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func TestRecoverRequiresPowerFail(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	if _, err := f.Recover(); err == nil {
		t.Error("Recover without PowerFail accepted")
	}
}

func TestPowerFailDropsRAMState(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	gen := workload.MustNewUniform(f.LogicalPages(), 21)
	runWorkload(t, f, gen, 2000)
	if err := f.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if f.cache.Len() != 0 {
		t.Error("cache survived power failure")
	}
	if f.DirtyEntries() != 0 {
		t.Error("dirty counter survived power failure")
	}
	if f.dev.Powered() {
		t.Error("device still powered")
	}
	// Operations must fail until recovery.
	if err := f.Write(1); err == nil {
		t.Error("write succeeded while powered off")
	}
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestGeckoFTLRecoveryRestoresConsistency(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	report := crashAndRecover(t, f, 6000, 22)
	if report.UsedBattery {
		t.Error("GeckoFTL reported battery use")
	}
	if report.SynchronizedBeforeResume {
		t.Error("GeckoFTL synchronized recovered entries before resuming")
	}
	if report.RecoveredMappingEntries == 0 {
		t.Error("no mapping entries recovered")
	}
	if report.Duration <= 0 {
		t.Error("recovery consumed no simulated time")
	}
	// Normal operation must continue correctly after recovery: run more
	// writes, then verify the end-state invariants.
	gen := workload.MustNewUniform(f.LogicalPages(), 23)
	runWorkload(t, f, gen, 4000)
	checkConsistency(t, f, false)
}

func TestAllFTLsSurvivePowerFailure(t *testing.T) {
	for name, build := range allFTLBuilders() {
		t.Run(name, func(t *testing.T) {
			f := testFTL(t, build, 96, 128)
			crashAndRecover(t, f, 4000, 24)
			gen := workload.MustNewUniform(f.LogicalPages(), 25)
			runWorkload(t, f, gen, 3000)
			checkConsistency(t, f, false)
		})
	}
}

func TestRepeatedCrashes(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	for round := 0; round < 3; round++ {
		crashAndRecover(t, f, 2500, int64(30+round))
	}
	gen := workload.MustNewUniform(f.LogicalPages(), 40)
	runWorkload(t, f, gen, 2000)
	checkConsistency(t, f, false)
}

func TestBatteryFTLsSkipDirtyEntryRecovery(t *testing.T) {
	f := testFTL(t, NewDFTL, 96, 128)
	report := crashAndRecover(t, f, 3000, 26)
	if !report.UsedBattery {
		t.Error("DFTL did not report battery use")
	}
	if report.RecoveredMappingEntries != 0 {
		t.Errorf("battery FTL recovered %d entries via scanning", report.RecoveredMappingEntries)
	}
}

func TestBoundedDirtyFTLsSynchronizeBeforeResume(t *testing.T) {
	f := testFTL(t, NewLazyFTL, 96, 128)
	report := crashAndRecover(t, f, 3000, 27)
	if report.UsedBattery {
		t.Error("LazyFTL reported battery use")
	}
	if !report.SynchronizedBeforeResume {
		t.Error("LazyFTL did not synchronize recovered entries before resuming")
	}
}

func TestRecoveryBackwardsScanIsBounded(t *testing.T) {
	// The checkpointed backwards scan must stay within 2*C spare reads of
	// user blocks plus the per-block and translation/metadata scans.
	cacheEntries := 64
	f := testFTL(t, NewGeckoFTL, 96, cacheEntries)
	gen := workload.MustNewUniform(f.LogicalPages(), 28)
	runWorkload(t, f, gen, 5000)
	if err := f.PowerFail(); err != nil {
		t.Fatal(err)
	}
	report, err := f.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Upper bound on spare reads: one per block (step 1) + one per written
	// translation/metadata page (steps 2-3) + 2C (step 6) + V (buffer
	// recovery checks). Use a generous envelope and verify we stay inside.
	cfg := f.cfg
	metaPages := 0
	for _, g := range []Group{GroupTranslation, GroupMeta} {
		for _, b := range f.bm.BlocksInGroup(g) {
			metaPages += f.bm.WritePointer(b)
		}
	}
	bound := int64(cfg.Blocks + metaPages + 2*cacheEntries + 4096)
	if report.SpareReads > bound {
		t.Errorf("recovery spare reads %d exceed bound %d", report.SpareReads, bound)
	}
	if report.RecoveredMappingEntries > cacheEntries {
		t.Errorf("recovered %d entries with cache capacity %d", report.RecoveredMappingEntries, cacheEntries)
	}
}

func TestGeckoFTLRecoveryCheaperThanBoundedDirtyFTLs(t *testing.T) {
	// The headline recovery claim, in simulation: GeckoFTL's recovery does
	// not pay the synchronize-before-resume page writes that LazyFTL and
	// IB-FTL pay.
	gecko := testFTL(t, NewGeckoFTL, 96, 256)
	geckoReport := crashAndRecover(t, gecko, 6000, 29)
	lazy := testFTL(t, NewLazyFTL, 96, 256)
	lazyReport := crashAndRecover(t, lazy, 6000, 29)
	if geckoReport.PageWrites > lazyReport.PageWrites {
		t.Errorf("GeckoFTL recovery wrote %d pages, LazyFTL %d", geckoReport.PageWrites, lazyReport.PageWrites)
	}
}

func TestUncertainEntriesAreCorrectedLazily(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	crashAndRecover(t, f, 4000, 31)
	// Immediately after recovery some cached entries are marked uncertain.
	uncertain := 0
	f.cache.ForEach(func(e mapcache.Entry) bool {
		if e.Uncertain {
			uncertain++
		}
		return true
	})
	if uncertain == 0 {
		t.Fatal("no uncertain entries after recovery")
	}
	// After a full flush (which synchronizes everything), none remain and
	// the state is consistent.
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	remaining := 0
	f.cache.ForEach(func(e mapcache.Entry) bool {
		if e.Uncertain {
			remaining++
		}
		return true
	})
	if remaining != 0 {
		t.Errorf("%d uncertain entries remain after flush", remaining)
	}
	checkConsistency(t, f, false)
}

func TestRecoveryReportIOBreakdown(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	report := crashAndRecover(t, f, 3000, 32)
	if report.SpareReads == 0 {
		t.Error("recovery issued no spare reads")
	}
	if report.Duration < f.cfg.Latency.SpareRead*time.Duration(report.SpareReads) {
		t.Error("recovery duration below the cost of its spare reads")
	}
}
