package ftl

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"geckoftl/internal/flash"
)

// TestFTLShardsRecoverInEitherOrder is the regression test for the
// shared-power-state bug: before partitions became independent power
// domains, the first shard's Recover powered the whole device back on, which
// made every other shard's Recover fail its Powered() precondition.
func TestFTLShardsRecoverInEitherOrder(t *testing.T) {
	for _, order := range [][2]int{{0, 1}, {1, 0}} {
		dev := engineTestDevice(t, 128, 2)
		shards := make([]*FTL, 2)
		for i := range shards {
			part, err := dev.Partition(flash.BlockID(i*64), 64)
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewGeckoFTL(part, 128)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(50 + i)))
			for w := 0; w < 3000; w++ {
				if err := f.Write(flash.LPN(rng.Int63n(f.LogicalPages()))); err != nil {
					t.Fatal(err)
				}
			}
			shards[i] = f
		}
		for _, f := range shards {
			if err := f.PowerFail(); err != nil {
				t.Fatal(err)
			}
		}
		for _, i := range order {
			if _, err := shards[i].Recover(); err != nil {
				t.Fatalf("recover order %v: shard %d: %v", order, i, err)
			}
		}
		for i, f := range shards {
			if err := f.CheckConsistency(); err != nil {
				t.Fatalf("recover order %v: shard %d inconsistent: %v", order, i, err)
			}
		}
	}
}

// TestEnginePowerFailMidBatchRecovers is the engine-wide crash-consistency
// hammer: concurrent goroutines batter the engine with batches, the power
// fails abruptly mid-WriteBatch (in-flight operations observe
// flash.ErrPowerFailed), and after Recover every shard's translation map
// must be consistent with flash and normal operation must continue. Run with
// -race.
func TestEnginePowerFailMidBatchRecovers(t *testing.T) {
	dev := engineTestDevice(t, 256, 4)
	e, err := NewEngine(dev, GeckoFTLOptions(256), 4)
	if err != nil {
		t.Fatal(err)
	}
	lp := e.LogicalPages()

	// Fill past capacity so the crash interrupts steady-state GC, not a
	// fresh device.
	warm := rand.New(rand.NewSource(17))
	batch := make([]flash.LPN, 64)
	for done := int64(0); done < 2*lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = flash.LPN(warm.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 6
	var sawPowerFail atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lpns := make([]flash.LPN, 48)
			<-start
			for {
				for i := range lpns {
					lpns[i] = flash.LPN(rng.Int63n(lp))
				}
				if err := e.WriteBatch(context.Background(), lpns); err != nil {
					if !errors.Is(err, flash.ErrPowerFailed) {
						t.Errorf("mid-batch error other than power failure: %v", err)
					}
					sawPowerFail.Add(1)
					return
				}
			}
		}(int64(g + 1))
	}
	close(start)
	// Let the hammer run briefly, then pull the plug mid-flight.
	spin := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		_ = e.Read(flash.LPN(spin.Int63n(lp)))
	}
	if err := e.PowerFail(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if sawPowerFail.Load() == 0 {
		t.Fatal("no goroutine observed the power failure")
	}

	report, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Shards) != e.Shards() {
		t.Fatalf("report covers %d shards, engine has %d", len(report.Shards), e.Shards())
	}
	if report.SpareReads == 0 {
		t.Error("engine recovery issued no spare reads")
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatalf("engine inconsistent after crash recovery: %v", err)
	}

	// Normal operation resumes: more concurrent batches, then a final audit.
	post := rand.New(rand.NewSource(23))
	for r := 0; r < 20; r++ {
		for i := range batch {
			batch[i] = flash.LPN(post.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatalf("engine inconsistent after post-recovery writes: %v", err)
	}
}

func TestEngineRecoverWithoutPowerFailRejected(t *testing.T) {
	dev := engineTestDevice(t, 128, 2)
	e, err := NewEngine(dev, GeckoFTLOptions(128), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(); err == nil {
		t.Fatal("Recover without PowerFail accepted")
	}
	if err := e.PowerFail(); err != nil {
		t.Fatal(err)
	}
	if err := e.PowerFail(); err == nil {
		t.Fatal("second PowerFail accepted while already failed")
	}
	if _, err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(); err == nil {
		t.Fatal("double Recover accepted")
	}
}

// TestEngineRecoveryScalesWithChannels pins the acceptance criterion: on an
// 8-channel device the engine recovers all shards in parallel, so the
// reported wall-clock is measurably below the summed serial per-shard time,
// and the report identifies the critical-path shard.
func TestEngineRecoveryScalesWithChannels(t *testing.T) {
	dev := engineTestDevice(t, 256, 8)
	e, err := NewEngine(dev, GeckoFTLOptions(256), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", e.Shards())
	}
	lp := e.LogicalPages()
	rng := rand.New(rand.NewSource(5))
	batch := make([]flash.LPN, 128)
	for done := int64(0); done < 2*lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = flash.LPN(rng.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PowerFail(); err != nil {
		t.Fatal(err)
	}
	report, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if report.WallClock <= 0 || report.SerialTime <= 0 {
		t.Fatalf("degenerate recovery times: wall %v serial %v", report.WallClock, report.SerialTime)
	}
	// 8 equally-sized shards recover concurrently; even with imbalance the
	// critical path must be well under half the serial scan.
	if 2*report.WallClock >= report.SerialTime {
		t.Errorf("wall-clock %v not measurably below serial %v (speedup %.2fx)",
			report.WallClock, report.SerialTime, report.Speedup())
	}
	if got := report.Shards[report.SlowestShard].Duration; got != report.WallClock {
		t.Errorf("slowest shard %d took %v, wall-clock says %v", report.SlowestShard, got, report.WallClock)
	}
	var spare int64
	for _, s := range report.Shards {
		spare += s.SpareReads
	}
	if spare != report.SpareReads {
		t.Errorf("per-shard spare reads sum to %d, total says %d", spare, report.SpareReads)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineBatteryPowerFailFlushesBeforeRail verifies the battery path:
// DFTL shards synchronize dirty entries before the rail drops, so recovery
// recreates nothing by scanning.
func TestEngineBatteryPowerFailFlushesBeforeRail(t *testing.T) {
	dev := engineTestDevice(t, 128, 2)
	e, err := NewEngine(dev, DFTLOptions(128), 2)
	if err != nil {
		t.Fatal(err)
	}
	lp := e.LogicalPages()
	rng := rand.New(rand.NewSource(9))
	batch := make([]flash.LPN, 64)
	for done := int64(0); done < 2*lp; done += int64(len(batch)) {
		for i := range batch {
			batch[i] = flash.LPN(rng.Int63n(lp))
		}
		if err := e.WriteBatch(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PowerFail(); err != nil {
		t.Fatal(err)
	}
	report, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !report.UsedBattery {
		t.Error("DFTL engine did not report battery use")
	}
	if report.RecoveredMappingEntries != 0 {
		t.Errorf("battery engine recovered %d entries via scanning", report.RecoveredMappingEntries)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineShardsDieAligned pins the alignment rule that keeps per-shard
// recovery accounting exact: when the block count divides evenly over dies,
// no two shards may share a die, even for shard counts that do not divide
// the device evenly (the engine rounds each shard down to whole dies).
func TestEngineShardsDieAligned(t *testing.T) {
	cfg := flash.ScaledConfig(256) // 8 dies x 32 blocks
	cfg.PagesPerBlock = 16
	cfg.PageSize = 512
	cfg.Channels = 8
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(dev, GeckoFTLOptions(192), 3)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[int]int{} // die -> shard
	for i := 0; i < e.Shards(); i++ {
		part := e.Shard(i).Device().(*flash.Partition)
		lo := cfg.DieOfBlock(part.Base())
		hi := cfg.DieOfBlock(part.Base() + flash.BlockID(part.Config().Blocks) - 1)
		for die := lo; die <= hi; die++ {
			if prev, taken := owner[die]; taken {
				t.Fatalf("die %d shared by shards %d and %d", die, prev, i)
			}
			owner[die] = i
		}
	}
}
