package ftl

import (
	"testing"

	"geckoftl/internal/flash"
)

func newTestDevice(t *testing.T, blocks, pagesPerBlock, pageSize int) *flash.Device {
	t.Helper()
	cfg := flash.ScaledConfig(blocks)
	cfg.PagesPerBlock = pagesPerBlock
	cfg.PageSize = pageSize
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestGroupNamesAndTypes(t *testing.T) {
	if GroupUser.String() != "user" || GroupTranslation.String() != "translation" || GroupMeta.String() != "meta" {
		t.Error("group names wrong")
	}
	if Group(9).String() == "" {
		t.Error("unknown group has empty name")
	}
	if GroupUser.blockType() != flash.BlockUser || GroupTranslation.blockType() != flash.BlockTranslation || GroupMeta.blockType() != flash.BlockGecko {
		t.Error("group block types wrong")
	}
	if GroupUser.purpose() != flash.PurposeUserWrite || GroupTranslation.purpose() != flash.PurposeTranslation || GroupMeta.purpose() != flash.PurposePageValidity {
		t.Error("group purposes wrong")
	}
	if VictimGreedy.String() != "greedy" || VictimMetadataAware.String() != "metadata-aware" {
		t.Error("victim policy names wrong")
	}
}

func TestBlockManagerAllocation(t *testing.T) {
	dev := newTestDevice(t, 8, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	if bm.FreeBlocks() != 8 {
		t.Fatalf("FreeBlocks = %d, want 8", bm.FreeBlocks())
	}
	// Allocate five user pages: they fill one block and start a second.
	var ppns []flash.PPN
	for i := 0; i < 5; i++ {
		ppn, err := bm.AllocatePage(GroupUser, flash.SpareArea{Logical: flash.LPN(i)}, flash.PurposeUserWrite)
		if err != nil {
			t.Fatal(err)
		}
		ppns = append(ppns, ppn)
	}
	firstBlock := flash.BlockOf(ppns[0], 4)
	secondBlock := flash.BlockOf(ppns[4], 4)
	if firstBlock == secondBlock {
		t.Error("five pages with 4 pages/block stayed in one block")
	}
	if g, ok := bm.GroupOf(firstBlock); !ok || g != GroupUser {
		t.Errorf("first block group = %v, %v", g, ok)
	}
	if bm.ValidCount(firstBlock) != 4 {
		t.Errorf("BVC of full block = %d, want 4", bm.ValidCount(firstBlock))
	}
	if bm.FreeBlocks() != 6 {
		t.Errorf("FreeBlocks = %d, want 6", bm.FreeBlocks())
	}
	// The block type is stamped on the first page of each block.
	spare, ok, err := dev.ReadSpare(ppns[0], flash.PurposeRecovery)
	if err != nil || !ok || spare.BlockType != flash.BlockUser {
		t.Errorf("first page spare = %+v", spare)
	}
}

func TestBlockManagerGroupsAreSeparate(t *testing.T) {
	dev := newTestDevice(t, 8, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	up, _ := bm.AllocatePage(GroupUser, flash.SpareArea{}, flash.PurposeUserWrite)
	tp, _ := bm.AllocatePage(GroupTranslation, flash.SpareArea{}, flash.PurposeTranslation)
	mp, _ := bm.AllocatePage(GroupMeta, flash.SpareArea{}, flash.PurposePageValidity)
	blocks := map[flash.BlockID]bool{}
	for _, ppn := range []flash.PPN{up, tp, mp} {
		blocks[flash.BlockOf(ppn, 4)] = true
	}
	if len(blocks) != 3 {
		t.Errorf("groups share blocks: %v", blocks)
	}
	if got := bm.BlocksInGroup(GroupUser); len(got) != 1 {
		t.Errorf("user group blocks = %v", got)
	}
}

func TestBlockManagerInvalidateAndErase(t *testing.T) {
	dev := newTestDevice(t, 8, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	var ppns []flash.PPN
	for i := 0; i < 8; i++ { // two full user blocks
		ppn, err := bm.AllocatePage(GroupUser, flash.SpareArea{}, flash.PurposeUserWrite)
		if err != nil {
			t.Fatal(err)
		}
		ppns = append(ppns, ppn)
	}
	block := flash.BlockOf(ppns[0], 4)
	for _, ppn := range ppns[:4] {
		if err := bm.InvalidatePage(ppn); err != nil {
			t.Fatal(err)
		}
	}
	if bm.ValidCount(block) != 0 {
		t.Errorf("BVC = %d, want 0", bm.ValidCount(block))
	}
	if err := bm.InvalidatePage(ppns[0]); err == nil {
		t.Error("BVC underflow not detected")
	}
	fully := bm.FullyInvalidBlocks(GroupUser)
	if len(fully) != 1 || fully[0] != block {
		t.Errorf("FullyInvalidBlocks = %v, want [%d]", fully, block)
	}
	if err := bm.Erase(block, flash.PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if bm.FreeBlocks() != 6+1 {
		t.Errorf("FreeBlocks after erase = %d", bm.FreeBlocks())
	}
	if _, allocated := bm.GroupOf(block); allocated {
		t.Error("erased block still allocated")
	}
	if bm.Erases() != 1 {
		t.Errorf("Erases = %d, want 1", bm.Erases())
	}
}

func TestBlockManagerEraseGuards(t *testing.T) {
	dev := newTestDevice(t, 8, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	if err := bm.Erase(3, flash.PurposeGCErase); err == nil {
		t.Error("erasing an unallocated block accepted")
	}
	ppn, _ := bm.AllocatePage(GroupUser, flash.SpareArea{}, flash.PurposeUserWrite)
	active := flash.BlockOf(ppn, 4)
	if err := bm.Erase(active, flash.PurposeGCErase); err == nil {
		t.Error("erasing the active block accepted")
	}
	if err := bm.InvalidatePage(flash.PPNOf(5, 0, 4)); err == nil {
		t.Error("invalidating a page of an unallocated block accepted")
	}
}

func TestVictimPolicies(t *testing.T) {
	dev := newTestDevice(t, 8, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	// Fill one user block (4 pages, 1 invalid), one translation block
	// (4 pages, all invalid) and leave actives partially filled.
	var userPPNs, transPPNs []flash.PPN
	for i := 0; i < 5; i++ {
		ppn, _ := bm.AllocatePage(GroupUser, flash.SpareArea{}, flash.PurposeUserWrite)
		userPPNs = append(userPPNs, ppn)
	}
	for i := 0; i < 5; i++ {
		ppn, _ := bm.AllocatePage(GroupTranslation, flash.SpareArea{}, flash.PurposeTranslation)
		transPPNs = append(transPPNs, ppn)
	}
	bm.InvalidatePage(userPPNs[0])
	for _, ppn := range transPPNs[:4] {
		bm.InvalidatePage(ppn)
	}
	userBlock := flash.BlockOf(userPPNs[0], 4)
	transBlock := flash.BlockOf(transPPNs[0], 4)

	// Greedy picks the emptiest block regardless of group: the translation
	// block with 0 valid pages.
	victim, ok := bm.PickVictim(VictimGreedy, nil)
	if !ok || victim != transBlock {
		t.Errorf("greedy victim = %d, %v; want translation block %d", victim, ok, transBlock)
	}
	// Metadata-aware only ever picks user blocks.
	victim, ok = bm.PickVictim(VictimMetadataAware, nil)
	if !ok || victim != userBlock {
		t.Errorf("metadata-aware victim = %d, %v; want user block %d", victim, ok, userBlock)
	}
	// Exclusions are honored.
	if _, ok := bm.PickVictim(VictimMetadataAware, map[flash.BlockID]bool{userBlock: true}); ok {
		t.Error("excluded block still picked")
	}
}

func TestBlockManagerCrashAndRecencyOrder(t *testing.T) {
	dev := newTestDevice(t, 8, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	for i := 0; i < 9; i++ {
		if _, err := bm.AllocatePage(GroupUser, flash.SpareArea{}, flash.PurposeUserWrite); err != nil {
			t.Fatal(err)
		}
	}
	recency := bm.userBlocksByRecency()
	if len(recency) != 3 {
		t.Fatalf("user blocks = %d, want 3", len(recency))
	}
	for i := 1; i < len(recency); i++ {
		if bm.blocks[recency[i-1]].firstWriteSeq < bm.blocks[recency[i]].firstWriteSeq {
			t.Error("recency order not newest-first")
		}
	}
	bm.CrashRAM()
	if bm.FreeBlocks() != 0 {
		t.Error("CrashRAM should drop the free list (it is RAM state)")
	}
	if _, allocated := bm.GroupOf(0); allocated {
		t.Error("CrashRAM left allocation state")
	}
}

func TestBlockManagerRAMBytes(t *testing.T) {
	dev := newTestDevice(t, 128, 4, 512)
	bm := newBlockManager(dev, 2, false, false)
	if got := bm.RAMBytes(); got != 128*3 {
		t.Errorf("RAMBytes = %d, want %d", got, 128*3)
	}
}
