package ftl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"geckoftl/internal/flash"
	"geckoftl/internal/stats"
)

// Engine is a concurrency-safe, sharded FTL frontend for multi-channel
// devices. It partitions the device's blocks into one contiguous range per
// shard (aligned with the channel/die layout when the block count divides
// evenly) and runs an independent FTL instance on each partition. Logical
// pages are striped across shards (shard = lpn mod shards), so each shard
// owns its own translation map, block manager, garbage collector and
// page-validity store — there is no shared mutable FTL state between shards,
// only the device underneath, which latches per die.
//
// Single-page Read/Write and the batched ReadBatch/WriteBatch are safe for
// concurrent use from any number of goroutines. Batches fan out across
// shards in parallel, which is what exploits the device's channel
// parallelism: with S shards on S channels, the busiest die sees roughly 1/S
// of the IO.
type Engine struct {
	dev           *flash.Device
	opts          Options
	shards        []*engineShard
	perShardPages int64
	logicalPages  int64

	// powerMu guards failed: the engine-wide crashed/recovered state
	// transitions of PowerFail and Recover.
	powerMu sync.Mutex
	failed  bool
}

// engineShard pairs one FTL instance with the lock that serializes it. The
// FTL itself (like the paper's algorithms) is single-threaded; the shard
// lock is the concurrency boundary.
type engineShard struct {
	mu  sync.Mutex
	ftl *FTL

	// Per-shard latency histograms, guarded by mu like the FTL itself.
	// Recording locally and merging on demand (LatencyStats) keeps the hot
	// path free of cross-shard contention.
	readLat  *stats.Histogram
	writeLat *stats.Histogram
	trimLat  *stats.Histogram
	// stallLat records the full service time of host operations (writes or
	// trims) that performed any garbage-collection work; maxStall tracks the
	// largest GC-only stall component (FTL.LastWriteGCStall) any single
	// operation absorbed.
	stallLat *stats.Histogram
	maxStall time.Duration
}

// opKind distinguishes the host operations the engine instruments.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opTrim
)

// observe records the service time of the operation that just completed on
// the shard: the completion instant of the shard's dies minus the round's
// arrival instant, which includes queueing behind earlier operations of the
// same round on the same dies. Callers hold the shard lock.
//
//geckolint:hotpath
func (sh *engineShard) observe(arrival time.Duration, kind opKind) {
	latency := sh.ftl.Device().BusyUntil() - arrival
	if latency < 0 {
		latency = 0
	}
	if kind == opRead {
		sh.readLat.Record(latency)
		return
	}
	if kind == opTrim {
		sh.trimLat.Record(latency)
	} else {
		sh.writeLat.Record(latency)
	}
	// Writes and trims both run the garbage-collection scheduler, so both
	// can absorb a GC stall.
	if stall, _ := sh.ftl.LastWriteGCStall(); stall > 0 {
		sh.stallLat.Record(latency)
		if stall > sh.maxStall {
			sh.maxStall = stall
		}
	}
}

// NewEngine creates an engine with the given number of shards over the
// device. shards <= 0 selects one shard per channel. Each shard receives
// Blocks/shards blocks, rounded down to a whole number of dies when the
// geometry allows it; trailing remainder blocks are left unused so that
// every shard exposes the same number of logical pages (required for LPN
// striping). Die alignment matters beyond load balance: shards sharing a die
// would serialize on its latch and pollute each other's die-scoped IO
// accounting (see flash.Partition), notably the per-shard recovery timings.
func NewEngine(dev *flash.Device, opts Options, shards int) (*Engine, error) {
	cfg := dev.Config()
	if shards <= 0 {
		shards = cfg.NumChannels()
	}
	blocksPerShard := cfg.Blocks / shards
	if cfg.Blocks%cfg.Dies() == 0 {
		if perDie := cfg.Blocks / cfg.Dies(); blocksPerShard > perDie {
			blocksPerShard -= blocksPerShard % perDie
		}
	}
	if blocksPerShard < 1 {
		return nil, fmt.Errorf("ftl: %d shards over %d blocks leaves empty shards", shards, cfg.Blocks)
	}
	e := &Engine{dev: dev, opts: opts}
	for i := 0; i < shards; i++ {
		part, err := dev.Partition(flash.BlockID(i*blocksPerShard), blocksPerShard)
		if err != nil {
			return nil, err
		}
		f, err := New(part, opts)
		if err != nil {
			return nil, fmt.Errorf("ftl: shard %d: %w", i, err)
		}
		e.shards = append(e.shards, &engineShard{
			ftl:      f,
			readLat:  stats.NewHistogram(),
			writeLat: stats.NewHistogram(),
			trimLat:  stats.NewHistogram(),
			stallLat: stats.NewHistogram(),
		})
	}
	e.perShardPages = e.shards[0].ftl.LogicalPages()
	e.logicalPages = e.perShardPages * int64(shards)
	return e, nil
}

// Name returns the display name of the sharded configuration.
func (e *Engine) Name() string {
	if len(e.shards) == 1 {
		return e.opts.Name
	}
	return fmt.Sprintf("%s/%d", e.opts.Name, len(e.shards))
}

// Device returns the shared device under all shards.
func (e *Engine) Device() *flash.Device { return e.dev }

// Shards returns the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns the FTL instance of shard i, for inspection by tests and
// experiments. Callers must not drive it while batches are in flight.
func (e *Engine) Shard(i int) *FTL { return e.shards[i].ftl }

// LogicalPages returns the number of logical pages the engine exposes: the
// sum over shards (slightly below the whole-device figure when the block
// count does not divide evenly by the shard count).
func (e *Engine) LogicalPages() int64 { return e.logicalPages }

// shardOf routes a logical page to its shard: LPNs are striped so that
// consecutive pages land on different shards (and therefore different
// channels), which spreads both sequential and uniform workloads.
//
//geckolint:hotpath
func (e *Engine) shardOf(lpn flash.LPN) (int, flash.LPN, error) {
	if lpn < 0 || int64(lpn) >= e.logicalPages {
		return 0, 0, outOfRangeErr(lpn, e.logicalPages)
	}
	n := int64(len(e.shards))
	return int(int64(lpn) % n), flash.LPN(int64(lpn) / n), nil
}

// outOfRangeErr formats the range error off the hot path: fmt.Errorf boxes
// its arguments into interfaces, which would otherwise charge every in-range
// routing call two heap escapes. noinline keeps it cold — inlined back into
// shardOf, the boxing would reattach to the annotated function.
//
//go:noinline
func outOfRangeErr(lpn flash.LPN, logicalPages int64) error {
	return fmt.Errorf("ftl: logical page %d out of range [0,%d): %w", lpn, logicalPages, flash.ErrOutOfRange)
}

// ShardOf routes a logical page to its shard index without issuing IO; the
// async submission queue uses it to pick a per-shard queue. The error matches
// flash.ErrOutOfRange for pages outside [0, LogicalPages()).
func (e *Engine) ShardOf(lpn flash.LPN) (int, error) {
	s, _, err := e.shardOf(lpn)
	return s, err
}

// ShardClock returns shard s's current virtual completion instant: the
// busy-until of the shard's own plane. It reads the die clocks without taking
// the shard lock, so concurrent operations on other shards never contend; a
// reading that races an in-flight operation on the same shard is merely a
// lower bound, which is all the queue's admission control needs.
func (e *Engine) ShardClock(s int) time.Duration {
	return e.shards[s].ftl.Device().BusyUntil()
}

// ShardAdvanceArrival ratchets shard s's arrival clock forward to at least t,
// so the shard's next operation starts no earlier than t even on idle dies.
// Open-loop drivers stamp each operation's generated arrival instant with it
// before executing the op; closed-loop drivers stamp the completion instant
// of the op the caller waited on, modeling the host-side dependency chain.
func (e *Engine) ShardAdvanceArrival(s int, t time.Duration) {
	e.shards[s].ftl.Device().AdvanceArrival(t)
}

// Write serves one application write. Safe for concurrent use.
//
// A single-page operation's arrival instant is stamped on the shard's own
// plane (Partition.SyncArrival, not the device-wide ratchet): its recorded
// latency is the operation's service time plus any queueing behind
// operations already holding the shard — IO cannot start before the stamp
// even on an idle die of a multi-die shard — without charging it work from
// other shards' dies and without touching their die locks.
//
//geckolint:hotpath
func (e *Engine) Write(lpn flash.LPN) error {
	s, local, err := e.shardOf(lpn)
	if err != nil {
		return err
	}
	sh := e.shards[s]
	arrival := sh.ftl.Device().SyncArrival()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.ftl.Write(local); err != nil {
		return err
	}
	sh.observe(arrival, opWrite)
	return nil
}

// Read serves one application read. Safe for concurrent use; arrival
// semantics as for Write.
//
//geckolint:hotpath
func (e *Engine) Read(lpn flash.LPN) error {
	s, local, err := e.shardOf(lpn)
	if err != nil {
		return err
	}
	sh := e.shards[s]
	arrival := sh.ftl.Device().SyncArrival()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.ftl.Read(local); err != nil {
		return err
	}
	sh.observe(arrival, opRead)
	return nil
}

// Trim serves one host trim (discard) of a logical page. Safe for concurrent
// use; arrival semantics as for Write. See FTL.Trim for the durability
// contract (a trim is durable once synchronized, e.g. by Flush).
//
//geckolint:hotpath
func (e *Engine) Trim(lpn flash.LPN) error {
	s, local, err := e.shardOf(lpn)
	if err != nil {
		return err
	}
	sh := e.shards[s]
	arrival := sh.ftl.Device().SyncArrival()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.ftl.Trim(local); err != nil {
		return err
	}
	sh.observe(arrival, opTrim)
	return nil
}

// WriteBatch writes every logical page in lpns, fanning the requests out
// across shards in parallel and joining the results. Pages of the same shard
// are written in slice order; ordering across shards is unspecified, as on a
// real multi-channel controller. Cancelling ctx stops each shard's sub-batch
// between operations: pages already written stay written, the rest are
// skipped, and the joined error matches ctx.Err() under errors.Is. A nil ctx
// disables cancellation.
func (e *Engine) WriteBatch(ctx context.Context, lpns []flash.LPN) error {
	buckets, err := e.bucket(lpns)
	if err != nil {
		return err
	}
	return e.fanOut(ctx, buckets, (*FTL).Write, opWrite)
}

// ReadBatch reads every logical page in lpns, fanning the requests out
// across shards in parallel. Cancellation semantics as for WriteBatch.
func (e *Engine) ReadBatch(ctx context.Context, lpns []flash.LPN) error {
	buckets, err := e.bucket(lpns)
	if err != nil {
		return err
	}
	return e.fanOut(ctx, buckets, (*FTL).Read, opRead)
}

// TrimBatch trims every logical page in lpns, fanning the requests out
// across shards in parallel. Cancellation semantics as for WriteBatch.
func (e *Engine) TrimBatch(ctx context.Context, lpns []flash.LPN) error {
	buckets, err := e.bucket(lpns)
	if err != nil {
		return err
	}
	return e.fanOut(ctx, buckets, (*FTL).Trim, opTrim)
}

// Mapped reports whether a logical page currently maps to flash-resident
// data: false for never-written and trimmed pages. Like FTL.Mapped it issues
// no simulated IO; it serves tests, examples and audits.
func (e *Engine) Mapped(lpn flash.LPN) (bool, error) {
	s, local, err := e.shardOf(lpn)
	if err != nil {
		return false, err
	}
	sh := e.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ftl.Mapped(local)
}

// bucket groups a batch into per-shard slices of shard-local LPNs. Routing
// errors are reported up front, before any IO is issued.
func (e *Engine) bucket(lpns []flash.LPN) ([][]flash.LPN, error) {
	buckets := make([][]flash.LPN, len(e.shards))
	for _, lpn := range lpns {
		s, local, err := e.shardOf(lpn)
		if err != nil {
			return nil, err
		}
		buckets[s] = append(buckets[s], local)
	}
	return buckets, nil
}

// fanOut runs one goroutine per non-empty bucket, each holding its shard's
// lock while draining the bucket sequentially. A shard that fails stops
// early; the joined errors of all failed shards are returned. Each bucket
// re-checks ctx before every operation — a batch observed to be cancelled
// stops at an operation boundary on every shard instead of running to
// completion, and the cancelled shards report ctx.Err().
//
// The batch's arrival instant is taken once, before the fan-out, so every
// operation's recorded latency is measured against the same virtual "now":
// the n-th operation of a bucket is charged the queueing behind its n-1
// predecessors on the shard's dies, exactly as a host keeping a queue of
// depth len(batch) would observe. With one batch in flight at a time (how
// the sweeps drive the engine), each shard's dies are touched only by that
// shard and the recorded latencies are deterministic regardless of
// goroutine scheduling; overlapping batches from concurrent callers ratchet
// the shared arrival clock and so charge each other's queueing, as
// overlapping arrivals at a real device would.
func (e *Engine) fanOut(ctx context.Context, buckets [][]flash.LPN, op func(*FTL, flash.LPN) error, kind opKind) error {
	arrival := e.dev.SyncArrival()
	var wg sync.WaitGroup
	errs := make([]error, len(buckets))
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, bucket []flash.LPN) {
			defer wg.Done()
			sh := e.shards[i]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			for _, lpn := range bucket {
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						errs[i] = fmt.Errorf("shard %d: %w", i, err)
						return
					}
				}
				if err := op(sh.ftl, lpn); err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
					return
				}
				sh.observe(arrival, kind)
			}
		}(i, bucket)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Flush forces all dirty state of every shard to flash. On a power-failed
// engine it fails fast with flash.ErrPowerFailed rather than vacuously
// succeeding over the crash-emptied RAM state.
func (e *Engine) Flush() error {
	e.powerMu.Lock()
	failed := e.failed
	e.powerMu.Unlock()
	if failed {
		return flash.ErrPowerFailed
	}
	for i, sh := range e.shards {
		sh.mu.Lock()
		err := sh.ftl.Flush()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// EngineStats is the engine-wide instrumentation report: the shards' logical
// operation counters summed and their per-operation latency distributions
// merged. Latencies are simulated service times under the device's cost
// model — the time from an operation's batch arrival to its last IO
// completing, including queueing behind its die — so the report is
// deterministic and host-independent.
type EngineStats struct {
	// Ops is the shards' logical operation counters summed.
	Ops Stats
	// Reads, Writes and Trims are the service-time distributions of
	// successful single-page and batched operations since the last reset.
	Reads, Writes, Trims stats.Summary
	// GCStalledWrites is the service-time distribution of the subset of host
	// operations (writes and trims) that performed garbage-collection work
	// (migrations or erases).
	GCStalledWrites stats.Summary
	// MaxGCStall is the largest GC stall any single host operation absorbed:
	// the device time its GC migrations and erases consumed, excluding the
	// operation's own IO. Under GCIncremental this is the quantity bounded
	// by model.IncrementalGCStallBound.
	MaxGCStall time.Duration
}

// LatencyStats merges every shard's latency histograms (and sums the logical
// counters) into an engine-wide report. It may run concurrently with
// batches; like Stats, the snapshot is per-shard consistent.
func (e *Engine) LatencyStats() EngineStats {
	reads, writes, trims, stalled := stats.NewHistogram(), stats.NewHistogram(), stats.NewHistogram(), stats.NewHistogram()
	var out EngineStats
	for _, sh := range e.shards {
		sh.mu.Lock()
		reads.Merge(sh.readLat)
		writes.Merge(sh.writeLat)
		trims.Merge(sh.trimLat)
		stalled.Merge(sh.stallLat)
		if sh.maxStall > out.MaxGCStall {
			out.MaxGCStall = sh.maxStall
		}
		out.Ops.add(sh.ftl.Stats())
		sh.mu.Unlock()
	}
	out.Reads = reads.Summary()
	out.Writes = writes.Summary()
	out.Trims = trims.Summary()
	out.GCStalledWrites = stalled.Summary()
	return out
}

// ResetLatencyStats empties every shard's latency histograms, typically
// after a warm-up phase so that a measured window's distribution excludes
// cold-start behaviour. Logical operation counters are not reset.
func (e *Engine) ResetLatencyStats() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.readLat.Reset()
		sh.writeLat.Reset()
		sh.trimLat.Reset()
		sh.stallLat.Reset()
		sh.maxStall = 0
		sh.mu.Unlock()
	}
}

// Stats returns the shards' logical operation counters summed.
func (e *Engine) Stats() Stats {
	var total Stats
	for _, sh := range e.shards {
		sh.mu.Lock()
		total.add(sh.ftl.Stats())
		sh.mu.Unlock()
	}
	return total
}

// RAMBytes returns the integrated-RAM footprint summed over shards.
func (e *Engine) RAMBytes() int64 {
	var total int64
	for _, sh := range e.shards {
		sh.mu.Lock()
		total += sh.ftl.RAMBytes()
		sh.mu.Unlock()
	}
	return total
}

// CheckConsistency audits every shard's translation map against the flash
// contents (see FTL.CheckConsistency). The engine must be quiesced.
func (e *Engine) CheckConsistency() error {
	for i, sh := range e.shards {
		sh.mu.Lock()
		err := sh.ftl.CheckConsistency()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// add accumulates other into s.
func (s *Stats) add(other Stats) {
	s.LogicalWrites += other.LogicalWrites
	s.LogicalReads += other.LogicalReads
	s.LogicalTrims += other.LogicalTrims
	s.TrimmedPages += other.TrimmedPages
	s.GCOperations += other.GCOperations
	s.GCMigrations += other.GCMigrations
	s.UIPSkips += other.UIPSkips
	s.SyncOperations += other.SyncOperations
	s.Checkpoints += other.Checkpoints
	s.MetadataBlockErases += other.MetadataBlockErases
	s.ForcedSyncs += other.ForcedSyncs
	s.GCFallbacks += other.GCFallbacks
	s.HotWrites += other.HotWrites
	s.ColdWrites += other.ColdWrites
	s.ProgramRetries += other.ProgramRetries
	s.BadBlocks += other.BadBlocks
	s.ScrubOperations += other.ScrubOperations
}

// CheckConsistency verifies the FTL's translation invariants against the
// flash contents: every mapped logical page must point at a programmed
// physical page whose spare area records that logical page, and no two
// logical pages may share a physical page. The concurrency tests run it
// after quiescing a hammered engine; it issues spare-area reads accounted
// under flash.PurposeRecovery.
func (f *FTL) CheckConsistency() error {
	owners := make(map[flash.PPN]flash.LPN)
	for lpn := flash.LPN(0); int64(lpn) < f.logicalPages; lpn++ {
		ppn := f.table.FlashEntry(lpn)
		if e, ok := f.cache.Peek(lpn); ok {
			ppn = e.Physical
		}
		if ppn == flash.InvalidPPN {
			continue
		}
		if prev, dup := owners[ppn]; dup {
			return fmt.Errorf("ftl: logical pages %d and %d both map to physical page %d", prev, lpn, ppn)
		}
		owners[ppn] = lpn
		spare, written, err := f.dev.ReadSpare(ppn, flash.PurposeRecovery)
		if err != nil {
			return fmt.Errorf("ftl: auditing logical page %d: %w", lpn, err)
		}
		if !written {
			return fmt.Errorf("ftl: logical page %d maps to unprogrammed physical page %d", lpn, ppn)
		}
		if spare.Logical != lpn {
			return fmt.Errorf("ftl: physical page %d holds logical page %d, but the map says %d", ppn, spare.Logical, lpn)
		}
	}
	return nil
}
