package ftl

import (
	"fmt"
	"time"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
)

// The incremental garbage collector's scheduling constants.
const (
	// incrementalGCLead is how many blocks above the reserve the incremental
	// collector engages: starting slightly early gives the bounded per-write
	// steps a cushion of free blocks to amortize a victim's drain over, so
	// the pool (almost) never falls to the hard floor. The lead is kept
	// small because every block of headroom held free is a block of
	// over-provisioned slack the steady-state garbage collector cannot use,
	// which raises write-amplification.
	incrementalGCLead = 1
	// incrementalGCFloor is the free-block count at which the incremental
	// collector abandons bounded scheduling and falls back to the inline
	// loop: below it, the allocations a single write can need (a user page,
	// synchronization pages, fresh active blocks) risk exhausting the pool
	// mid-operation. A fallback is an unbounded stall; Stats.GCFallbacks
	// counts them so experiments can verify the budget held.
	incrementalGCFloor = 2
)

// gcState is the incremental scheduler's RAM state: the victim currently
// being drained, the snapshot of its invalid pages taken at selection, and
// the drain position. Like all RAM state it does not survive a power
// failure; an abandoned half-drained victim is safe because every migration
// decision is re-checked against the mapping cache and translation table
// (see migrateValidPage).
type gcState struct {
	// victim is the block being drained, InvalidBlock when idle.
	victim flash.BlockID
	group  Group
	// invalid is the page-validity snapshot of the victim at selection time.
	// Application writes interleaving with the drain can outdate it; the
	// per-page guards in migrateValidPage keep stale entries harmless.
	invalid *bitmap.Bitmap
	// offset is the next page offset to examine; written is the victim's
	// write pointer at selection.
	offset, written int
}

// active reports whether a victim drain is in progress.
func (g *gcState) active() bool { return g.victim != flash.InvalidBlock }

// crashGC drops the incremental collector's RAM state, as a power failure
// would.
func (f *FTL) crashGC() {
	f.gc = gcState{victim: flash.InvalidBlock}
	f.opGCTime, f.opGCSteps = 0, 0
}

// chargeGC accounts simulated device time spent on garbage-collection
// relocations and erases against the current write's stall metric. GC
// queries to the page-validity store are deliberately not charged here: they
// are accounted under the validity component, exactly as in the paper's
// write-amplification breakdown.
func (f *FTL) chargeGC(d time.Duration) { f.opGCTime += d }

// LastWriteGCStall returns the garbage-collection stall of the most recent
// Write: the simulated device time its GC migrations and erases consumed,
// and the number of bounded steps they comprised (zero steps under GCInline,
// where whole victims are reclaimed at once).
func (f *FTL) LastWriteGCStall() (time.Duration, int) { return f.opGCTime, f.opGCSteps }

// garbageCollect makes room before an application write, dispatching on the
// configured scheduling mode.
func (f *FTL) garbageCollect() error {
	if f.opts.GCMode == GCIncremental {
		return f.garbageCollectIncremental()
	}
	return f.garbageCollectIfNeeded()
}

// garbageCollectIncremental performs at most GCPagesPerWrite bounded
// garbage-collection steps: each step relocates one page out of the current
// victim, erases a drained victim or a fully-invalid metadata block, or
// selects a new victim. Work starts incrementalGCLead blocks above the
// reserve and a victim drain, once started, is carried to completion across
// writes, so the free pool hovers around the engagement threshold instead of
// oscillating against the reserve.
func (f *FTL) garbageCollectIncremental() error {
	if f.bm.FreeBlocks() <= incrementalGCFloor {
		// Safety valve: the bounded steps fell behind the write stream.
		// Abandon the drain in progress (its state may reference a victim the
		// inline loop will re-pick with a fresh validity query) and reclaim
		// inline until the pool is healthy again. This write's stall is
		// unbounded; GCFallbacks records that the budget was broken.
		f.gc = gcState{victim: flash.InvalidBlock}
		f.stats.GCFallbacks++
		return f.garbageCollectIfNeeded()
	}
	for steps := f.opts.GCPagesPerWrite; steps > 0; steps-- {
		if !f.gc.active() && f.bm.FreeBlocks() > f.opts.GCFreeBlockReserve+incrementalGCLead {
			return nil
		}
		did, err := f.gcStep()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
		f.opGCSteps++
	}
	return nil
}

// gcStep performs one bounded unit of garbage-collection work and reports
// whether there was any to do.
func (f *FTL) gcStep() (bool, error) {
	if !f.gc.active() {
		// Fully-invalid translation and metadata blocks are the cheapest
		// space there is under the non-greedy policies (Section 4.2): erase
		// one per step before migrating anything.
		if !f.opts.VictimPolicy.MigratesMetadata() {
			if did, err := f.eraseOneFullyInvalidMetadata(); did || err != nil {
				return did, err
			}
		}
		return f.pickIncrementalVictim()
	}

	// Drain: advance to the next page that needs IO. Pages the snapshot
	// marks invalid are skipped for free.
	for f.gc.offset < f.gc.written {
		offset := f.gc.offset
		f.gc.offset++
		if f.gc.group == GroupMeta {
			did, err := f.migrateMetaPage(f.gc.victim, offset)
			if err != nil {
				return true, err
			}
			if did {
				return true, nil
			}
			continue
		}
		if f.gc.invalid.Get(offset) {
			continue
		}
		ppn := flash.PPNOf(f.gc.victim, offset, f.cfg.PagesPerBlock)
		migrated, err := f.migrateValidPage(ppn, f.gc.group)
		if err != nil {
			return true, err
		}
		if migrated {
			f.stats.GCMigrations++
		} else {
			f.stats.UIPSkips++
		}
		// Even a skipped page cost a spare read, so it consumed this step.
		return true, nil
	}
	// Fully drained without issuing IO on this step: the erase is this
	// step's work. (A drain whose last page needed IO reaches here on the
	// following step, so no step ever charges more than one IO unit.)
	return true, f.finishVictim()
}

// pickIncrementalVictim selects the next victim and snapshots its invalid
// pages. Selecting counts as a step: the page-validity query behind the
// snapshot is itself IO.
func (f *FTL) pickIncrementalVictim() (bool, error) {
	victim, ok := f.bm.PickVictim(f.opts.VictimPolicy, f.table.ProtectedBlocks())
	if !ok {
		// Nothing eligible right now (all candidates active or protected);
		// try again on a later write. If the pool keeps shrinking the floor
		// fallback reports the real error.
		return false, nil
	}
	group, allocated := f.bm.GroupOf(victim)
	if !allocated {
		return false, fmt.Errorf("ftl: victim block %d is not allocated", victim)
	}
	f.stats.GCOperations++
	f.noteVictim(victim)
	f.gc = gcState{victim: victim, group: group, written: f.bm.WritePointer(victim)}
	if group != GroupMeta {
		invalid, err := f.validity.Query(victim)
		if err != nil {
			return true, err
		}
		f.gc.invalid = invalid
	}
	return true, nil
}

// finishVictim erases the drained victim and retires the drain state. A
// victim that acquired a protected previous translation-page version
// mid-drain (possible only for translation blocks under the greedy policy)
// is left allocated for a future pick after the Gecko buffer flushes.
func (f *FTL) finishVictim() error {
	victim := f.gc.victim
	f.gc = gcState{victim: flash.InvalidBlock}
	if f.table.ProtectedBlocks()[victim] {
		return nil
	}
	if err := f.bm.Erase(victim, flash.PurposeGCErase); err != nil {
		return err
	}
	f.chargeGC(f.cfg.Latency.Erase)
	return f.validity.RecordErase(victim)
}

// eraseOneFullyInvalidMetadata erases at most one fully-invalid translation
// or metadata block (the bounded-step counterpart of
// reclaimFullyInvalidMetadata) and reports whether it did.
func (f *FTL) eraseOneFullyInvalidMetadata() (bool, error) {
	protected := f.table.ProtectedBlocks()
	for _, g := range []Group{GroupTranslation, GroupMeta} {
		for _, block := range f.bm.FullyInvalidBlocks(g) {
			if protected[block] {
				continue
			}
			return true, f.eraseDeadMetadataBlock(block)
		}
	}
	return false, nil
}
