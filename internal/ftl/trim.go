package ftl

import (
	"fmt"

	"geckoftl/internal/flash"
	"geckoftl/internal/mapcache"
)

// Trim serves a host trim (discard) of a logical page: the page's contents
// are dropped, its cached mapping entry is unmapped (and the durable one at
// the next synchronization), and its physical before-image is reported
// invalid so that the garbage collector never migrates it — trims are the
// host's way of supplying invalid pages for free. Reading a trimmed page
// afterwards returns zeroes without IO, exactly like a never-written page.
//
// GeckoFTL trims lazily, mirroring its write path (Section 4.1): on a cache
// miss the flash-resident before-image is not looked up — the UIP flag
// records that an unidentified invalid page may exist, and the next
// synchronization (or the garbage collector, for free) identifies it. A trim
// therefore costs no flash IO at all under GeckoFTL. The comparison FTLs
// identify the before-image eagerly, paying a translation-page read on a
// cache miss, just as their writes do.
//
// Like a write, a trim is durable only once the mapping entry it dirties has
// been synchronized (Flush forces this): a trim followed immediately by a
// power failure may come back mapped after recovery, which matches the
// contract of a real device's non-flushed TRIM.
func (f *FTL) Trim(lpn flash.LPN) error {
	if lpn < 0 || int64(lpn) >= f.logicalPages {
		return fmt.Errorf("ftl: logical page %d out of range [0,%d): %w", lpn, f.logicalPages, flash.ErrOutOfRange)
	}
	if !f.dev.Powered() {
		return flash.ErrPowerFailed
	}
	f.stats.LogicalTrims++
	f.opGCTime, f.opGCSteps = 0, 0

	// Trims allocate no user page, but the synchronizations they can trigger
	// (dirty eviction, checkpoint, dirty bound) do allocate translation
	// pages; keep the free pool above the reserve exactly as Write does.
	if err := f.garbageCollect(); err != nil {
		return err
	}

	cached, isCached := f.cache.Peek(lpn)
	if isCached && cached.Physical == flash.InvalidPPN {
		// Already unmapped (trimmed or never written): nothing to drop. The
		// entry keeps its flags — a pending UIP identification from an
		// earlier trim must still run at its next synchronization.
		f.cache.Put(cached)
		return nil
	}

	entry := mapcache.Entry{Logical: lpn, Physical: flash.InvalidPPN, Dirty: true}
	switch {
	case isCached:
		// The before-image is known from the cache: report it invalid
		// immediately, as the write path does.
		if err := f.reportTrimmed(cached.Physical); err != nil {
			return err
		}
		entry.UIP = cached.UIP
		entry.Uncertain = cached.Uncertain
		entry.Trimmed = cached.Trimmed
		f.dropIdentifiedUIP(cached, &entry)
		if !cached.Dirty {
			f.dirtyCount++
		}
	case f.opts.Scheme == SchemeGecko:
		// Lazy invalid-page identification: defer looking up the flash
		// before-image. Trimmed attributes the eventual report to this trim.
		entry.UIP = true
		entry.Trimmed = true
		f.dirtyCount++
	default:
		// Eager identification, like the comparison FTLs' write-miss path.
		prev, err := f.table.ReadEntry(lpn, flash.PurposeTrim)
		if err != nil {
			return err
		}
		if err := f.reportTrimmed(prev); err != nil {
			return err
		}
		f.dirtyCount++
	}

	if err := f.putCacheEntry(entry); err != nil {
		return err
	}
	if err := f.maybeCheckpoint(); err != nil {
		return err
	}
	return f.enforceDirtyBound()
}

// reportTrimmed reports a page invalidated by a host trim: the regular
// invalid-page report plus the device's invalidation counter and the trim
// statistics. A trim of an unmapped page (InvalidPPN) is a no-op.
func (f *FTL) reportTrimmed(ppn flash.PPN) error {
	if ppn == flash.InvalidPPN {
		return nil
	}
	if err := f.reportInvalid(ppn); err != nil {
		return err
	}
	if err := f.dev.NoteTrim(ppn, flash.PurposeTrim); err != nil {
		return err
	}
	f.stats.TrimmedPages++
	return nil
}

// Mapped reports whether a logical page currently maps to flash-resident
// data: false for never-written and trimmed pages. It consults the mapping
// cache and the FTL's RAM mirror of the translation table and issues no
// simulated IO, so it exists for tests, examples and consistency audits
// rather than for the modeled data path.
func (f *FTL) Mapped(lpn flash.LPN) (bool, error) {
	if lpn < 0 || int64(lpn) >= f.logicalPages {
		return false, fmt.Errorf("ftl: logical page %d out of range [0,%d): %w", lpn, f.logicalPages, flash.ErrOutOfRange)
	}
	if e, ok := f.cache.Peek(lpn); ok {
		return e.Physical != flash.InvalidPPN, nil
	}
	return f.table.FlashEntry(lpn) != flash.InvalidPPN, nil
}
