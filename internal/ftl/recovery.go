package ftl

import (
	"fmt"
	"sort"
	"time"

	"geckoftl/internal/bitmap"
	"geckoftl/internal/flash"
	"geckoftl/internal/mapcache"
)

// RecoveryReport summarizes a recovery run: what was rebuilt and how much IO
// and simulated time it took. Recovery time follows the device latency model
// over the IOs issued between PowerFail acknowledgement and the moment normal
// operation resumes.
type RecoveryReport struct {
	// Duration is the simulated time the recovery IOs took.
	Duration time.Duration
	// SpareReads, PageReads and PageWrites are the IOs attributed to
	// recovery.
	SpareReads, PageReads, PageWrites int64
	// RecoveredMappingEntries is the number of cached mapping entries
	// recreated by the backwards scan.
	RecoveredMappingEntries int
	// RecoveredDirty is the number of recreated entries that proved to be
	// genuinely dirty (synchronized immediately for bounded-dirty FTLs,
	// verified lazily for GeckoFTL).
	RecoveredDirty int
	// UsedBattery reports that dirty entries were persisted by the battery
	// at power-failure time instead of being recovered.
	UsedBattery bool
	// SynchronizedBeforeResume reports that recovered dirty entries were
	// synchronized with the translation table before normal operation
	// resumed (LazyFTL / IB-FTL behaviour); GeckoFTL defers this.
	SynchronizedBeforeResume bool
}

// PowerFail simulates an abrupt power failure. All RAM-resident state (the
// LRU cache, GMD, BVC, block-manager bookkeeping, run directories, the
// RAM-resident PVB, chain heads) is lost; flash contents survive. FTLs with a
// battery (DFTL, µ-FTL) synchronize their dirty mapping entries with the
// translation table before the device loses power, as the paper assumes.
func (f *FTL) PowerFail() error {
	if f.opts.Battery {
		// The battery keeps the device alive just long enough to flush
		// dirty state; this IO happens before the failure, not during
		// recovery.
		if err := f.Flush(); err != nil {
			return err
		}
	}
	f.dev.PowerFail()

	// Integrated RAM is gone.
	f.cache.Clear()
	f.dirtyCount = 0
	f.crashGC()
	f.table.CrashRAM()
	f.bm.CrashRAM()
	f.heat.CrashRAM()
	if f.lg != nil {
		f.lg.CrashRAM()
	}
	if crasher, ok := f.validity.(interface{ CrashRAM() }); ok {
		crasher.CrashRAM()
	}
	return nil
}

// Recover restores the FTL after a power failure, implementing GeckoRec
// (Appendix C) for GeckoFTL and the corresponding recovery procedures of the
// comparison FTLs. It returns a report of the work done.
func (f *FTL) Recover() (*RecoveryReport, error) {
	if f.dev.Powered() {
		return nil, fmt.Errorf("ftl: Recover called without a preceding PowerFail")
	}
	f.dev.PowerOn()

	startCounters := f.dev.Counters()
	startTime := f.dev.SimulatedTime()
	report := &RecoveryReport{UsedBattery: f.opts.Battery}

	// Step 1: rebuild the block information directory (block types, write
	// pointers, first-write timestamps) with one spare-area read per block,
	// plus a spare read per written page of each group's newest block to
	// locate the write pointers the FTL needs to resume appending. The BVC
	// is set conservatively (every written page counted valid) so that the
	// synchronizations performed later in recovery cannot underflow it; the
	// accurate rebuild happens at the end.
	if err := f.recoverBlockManager(); err != nil {
		return nil, err
	}

	// Step 2: recover the GMD by scanning the spare areas of all translation
	// pages and keeping the newest version of each. The content sequences of
	// the recovered versions are kept: the backwards scan of step 6 uses
	// them to recognize user pages whose invalidation (by a synchronized
	// overwrite or trim) is already durable.
	tpContentSeq, err := f.recoverGMD()
	if err != nil {
		return nil, err
	}

	// Steps 3 & 4: recover the flash-resident page-validity structures.
	switch f.opts.Scheme {
	case SchemeGecko:
		if err := f.lg.RecoverDirectories(); err != nil {
			return nil, err
		}
		if err := f.recoverGeckoBuffer(); err != nil {
			return nil, err
		}
	case SchemeFlashPVB:
		// The flash-resident PVB persists across failures; only its small
		// RAM directory needs to be rebuilt, which the spare scan of step 1
		// already paid for. Nothing further to do.
	case SchemePVL:
		// IB-FTL must rebuild its RAM-resident chain heads by scanning the
		// whole log, whose size is proportional to device capacity.
		if err := f.rebuildPVLHeads(); err != nil {
			return nil, err
		}
	}

	// Step 6: recover dirty cached mapping entries with the bounded
	// backwards scan (Section 4.3), unless a battery already synchronized
	// them before power ran out.
	if !f.opts.Battery {
		recovered, err := f.recoverDirtyEntries(tpContentSeq)
		if err != nil {
			return nil, err
		}
		report.RecoveredMappingEntries = recovered

		if f.opts.Scheme == SchemeGecko {
			// Step 7 (GeckoFTL): defer synchronization; the dirty and UIP
			// flags of the recreated entries are assumed true and corrected
			// lazily after normal operation resumes (Appendix C.3).
			report.RecoveredDirty = f.dirtyCount
		} else {
			// LazyFTL and IB-FTL synchronize the recovered entries with the
			// translation table before resuming, which is the recovery-time
			// bottleneck the paper points out.
			report.SynchronizedBeforeResume = true
			dirty, err := f.synchronizeRecoveredEntries()
			if err != nil {
				return nil, err
			}
			report.RecoveredDirty = dirty
		}
	}

	// DFTL and LazyFTL rebuild the RAM-resident PVB by scanning the
	// translation table: every mapped physical page is valid, every other
	// written page is invalid. This runs after the recovered dirty entries
	// have been synchronized so that the table reflects the newest versions.
	if f.opts.Scheme == SchemeRAMPVB {
		if err := f.rebuildRAMPVB(); err != nil {
			return nil, err
		}
	}

	// Step 5 (last so that it reflects all of the above): rebuild the Blocks
	// Validity Counter from the page-validity store, the translation table
	// and the metadata structures' live-page sets.
	if err := f.rebuildBVC(); err != nil {
		return nil, err
	}

	delta := f.dev.Counters().Sub(startCounters)
	report.Duration = f.dev.SimulatedTime() - startTime
	report.SpareReads = delta.TotalOp(flash.OpSpareRead)
	report.PageReads = delta.TotalOp(flash.OpPageRead)
	report.PageWrites = delta.TotalOp(flash.OpPageWrite)
	return report, nil
}

// recoverBlockManager rebuilds block groups, write pointers, and timestamps
// (GeckoRec step 1). One spare read per block identifies its type and first
// write; the write pointer within partially written blocks is taken from the
// device's program state (the FTL would find it by probing for the first
// unreadable page, an O(log B) spare-read search we charge as part of the
// per-block scan).
func (f *FTL) recoverBlockManager() error {
	bm := f.bm
	bm.CrashRAM()
	for i := 0; i < f.cfg.Blocks; i++ {
		block := flash.BlockID(i)
		info := &bm.blocks[i]
		// The controller's bad-block table is device truth, survives power
		// failure, and is consulted before any spare read: retired blocks
		// hold no live data (they are only retired once drained) and never
		// re-enter the free pool.
		bad, err := f.dev.BadBlock(block)
		if err != nil {
			return err
		}
		if bad {
			info.retired = true
			info.allocated = false
			continue
		}
		first := flash.PPNOf(block, 0, f.cfg.PagesPerBlock)
		spare, written, err := f.dev.ReadSpare(first, flash.PurposeRecovery)
		if err != nil {
			return err
		}
		wp, err := f.dev.WritePointer(block)
		if err != nil {
			return err
		}
		if !written && wp == 0 {
			info.allocated = false
			bm.free = append(bm.free, block)
			continue
		}
		// A block whose first page reads as unprogrammed but whose write
		// pointer has advanced had its first program(s) consumed by failed
		// pulses: probe forward for the first readable spare and classify the
		// block from that instead (charged like the rest of the scan).
		for offset := 1; offset < wp && !written; offset++ {
			spare, written, err = f.dev.ReadSpare(flash.PPNOf(block, offset, f.cfg.PagesPerBlock), flash.PurposeRecovery)
			if err != nil {
				return err
			}
		}
		info.allocated = true
		info.writePointer = wp
		if !written {
			// Every programmed page of the block is bad. Nothing can map into
			// it, so its BVC entry is zero; garbage collection (or frontier
			// resumption, when partial) reclaims the block like any user block.
			info.group = GroupUser
			continue
		}
		info.firstWriteSeq = spare.WriteSeq
		// The block's true last-write sequence would need a spare read of its
		// newest page; the first-write sequence is a safe stand-in that only
		// makes recovered blocks look older to the cost-benefit policy.
		info.lastWriteSeq = spare.WriteSeq
		bm.NoteWriteSeq(spare.WriteSeq)
		switch spare.BlockType {
		case flash.BlockTranslation:
			info.group = GroupTranslation
		case flash.BlockGecko:
			info.group = GroupMeta
		default:
			info.group = GroupUser
		}
		// Conservative BVC until the accurate rebuild at the end of
		// recovery: counting every written page valid can only delay
		// garbage-collection, never corrupt it.
		info.valid = wp
	}
	// Re-base the RAM mirror of every block's erase count from the device's
	// wear state (free blocks included — the next wear-aware allocation
	// decision must not start from zeroed counters). The device stamps erase
	// counts into spare areas, so a real FTL recovers them with the same
	// per-block scan already charged above.
	for i := 0; i < f.cfg.Blocks; i++ {
		ec, err := f.dev.EraseCount(flash.BlockID(i))
		if err != nil {
			return err
		}
		bm.blocks[i].eraseCount = ec
	}
	// The free list was rebuilt above and the erase counts it is keyed by
	// were just re-based: restore the wear-aware ordering invariant.
	bm.restoreFreeOrder()
	// The most recently written, partially full block of each group resumes
	// as that group's active block. The user group can leave up to two
	// partial blocks behind under hot/cold separation — one per frontier —
	// and both must resume as frontiers: a partial block that is not active
	// would never fill and therefore never become victim-eligible, leaking
	// its free pages forever. Temperature assignment is arbitrary (the heat
	// state died with the RAM); the newest resumes as the cold frontier.
	for fr := range bm.active {
		bm.active[fr] = flash.InvalidBlock
	}
	for g := Group(0); g < numGroups; g++ {
		var partials []flash.BlockID
		for i := range bm.blocks {
			info := &bm.blocks[i]
			if !info.allocated || info.group != g || info.writePointer >= f.cfg.PagesPerBlock {
				continue
			}
			partials = append(partials, flash.BlockID(i))
		}
		sort.Slice(partials, func(i, j int) bool {
			a, b := &bm.blocks[partials[i]], &bm.blocks[partials[j]]
			if a.firstWriteSeq != b.firstWriteSeq {
				return a.firstWriteSeq > b.firstWriteSeq
			}
			return partials[i] < partials[j]
		})
		if len(partials) > 0 {
			bm.active[frontierFor(g, TempCold)] = partials[0]
		}
		if g == GroupUser && bm.hotCold && len(partials) > 1 {
			bm.active[frontierUserHot] = partials[1]
		}
	}
	return nil
}

// recoverGMD rebuilds the Global Mapping Directory (GeckoRec step 2) by
// scanning the spare areas of all pages in translation blocks and keeping the
// most recently written version of each translation page. It returns each
// recovered translation page's content sequence (the Aux stamp written by
// Synchronize and preserved across garbage-collection copies): the newest
// write sequence whose effect the durable mapping content is known to
// reflect. The dirty-entry scan uses it to date the durable mapping state —
// the page's own WriteSeq will not do, because a garbage-collection copy
// refreshes it without refreshing the content.
func (f *FTL) recoverGMD() (map[int]uint64, error) {
	f.table.CrashRAM()
	newest := make(map[int]uint64)
	contentSeq := make(map[int]uint64)
	for _, block := range f.bm.BlocksInGroup(GroupTranslation) {
		written := f.bm.WritePointer(block)
		for offset := 0; offset < written; offset++ {
			ppn := flash.PPNOf(block, offset, f.cfg.PagesPerBlock)
			spare, ok, err := f.dev.ReadSpare(ppn, flash.PurposeRecovery)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			f.bm.NoteWriteSeq(spare.WriteSeq)
			tp := int(spare.Tag)
			if tp < 0 || tp >= f.table.Pages() {
				continue
			}
			if seq, seen := newest[tp]; !seen || spare.WriteSeq > seq {
				newest[tp] = spare.WriteSeq
				contentSeq[tp] = spare.Aux
				f.table.SetGMDLocation(tp, ppn)
			}
		}
	}
	return contentSeq, nil
}

// recoverGeckoBuffer rebuilds the content of Logarithmic Gecko's buffer that
// was lost at power failure (Appendix C.2): the addresses of blocks erased
// and pages invalidated since the last time the buffer was flushed.
func (f *FTL) recoverGeckoBuffer() error {
	// C.2.1: blocks erased since the last buffer flush are the free blocks
	// and the blocks whose first page was written after the newest run was
	// created. The block scan of step 1 already identified them.
	newestRunSeq, err := f.lg.NewestRunWriteSeq()
	if err != nil {
		return err
	}
	for i := range f.bm.blocks {
		info := &f.bm.blocks[i]
		if !info.allocated || (newestRunSeq > 0 && info.firstWriteSeq > newestRunSeq) {
			if err := f.lg.RecordErase(flash.BlockID(i)); err != nil {
				return err
			}
		}
	}

	// C.2.2: pages invalidated since the last buffer flush are found by
	// comparing each translation page updated since then against its
	// preserved previous version. Every mapping that changed identifies a
	// candidate before-image; its spare area confirms whether it still holds
	// that logical page before it is re-reported as invalid.
	for _, tp := range f.table.UpdatedSinceProtection() {
		start, prev, ok := f.table.PreviousVersion(tp)
		if !ok {
			continue
		}
		// Read the current and previous versions of the translation page
		// (the 2V page reads of Appendix C.2.2). The previous version lives
		// on a protected block that the garbage-collector was not allowed to
		// erase while the buffer held unflushed entries.
		if loc := f.table.GMDLocation(tp); loc != flash.InvalidPPN {
			if err := f.dev.ReadPage(loc, flash.PurposeRecovery); err != nil {
				return err
			}
		}
		if prev.location != flash.InvalidPPN {
			if err := f.dev.ReadPage(prev.location, flash.PurposeRecovery); err != nil {
				return err
			}
		}
		for i, oldPPN := range prev.content {
			lpn := start + flash.LPN(i)
			if int64(lpn) >= f.logicalPages {
				break
			}
			curPPN := f.table.FlashEntry(lpn)
			if oldPPN == curPPN || oldPPN == flash.InvalidPPN {
				continue
			}
			spare, written, err := f.dev.ReadSpare(oldPPN, flash.PurposeRecovery)
			if err != nil {
				return err
			}
			if written && spare.Logical == lpn {
				if err := f.lg.Update(flash.Decompose(oldPPN, f.cfg.PagesPerBlock)); err != nil {
					return err
				}
			}
		}
	}
	f.table.ClearProtected()
	return nil
}

// rebuildRAMPVB reconstructs the RAM-resident PVB by scanning the
// flash-resident translation table: the physical page each mapping points to
// is valid; every other written user page is invalid. The scan costs one page
// read per translation page, which is the LazyFTL recovery bottleneck the
// paper identifies.
func (f *FTL) rebuildRAMPVB() error {
	type invalidMarker interface {
		Update(addr flash.Addr) error
	}
	store := f.validity.(invalidMarker)

	// Read every live translation page.
	valid := make(map[flash.PPN]bool, f.logicalPages)
	for tp := 0; tp < f.table.Pages(); tp++ {
		loc := f.table.GMDLocation(tp)
		if loc == flash.InvalidPPN {
			continue
		}
		if err := f.dev.ReadPage(loc, flash.PurposeRecovery); err != nil {
			return err
		}
	}
	for lpn := flash.LPN(0); int64(lpn) < f.logicalPages; lpn++ {
		if ppn := f.table.FlashEntry(lpn); ppn != flash.InvalidPPN {
			valid[ppn] = true
		}
	}
	// Every written page of a user block that is not referenced by the
	// translation table is invalid.
	for _, block := range f.bm.BlocksInGroup(GroupUser) {
		written := f.bm.WritePointer(block)
		for offset := 0; offset < written; offset++ {
			ppn := flash.PPNOf(block, offset, f.cfg.PagesPerBlock)
			if !valid[ppn] {
				if err := store.Update(flash.Decompose(ppn, f.cfg.PagesPerBlock)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// rebuildPVLHeads rebuilds IB-FTL's RAM-resident chain heads by scanning the
// entire page validity log, one page read per log page.
func (f *FTL) rebuildPVLHeads() error {
	// The log's RAM state (chain heads, erase timestamps) is not actually
	// dropped by the simulator at PowerFail because the pvl package keeps
	// them embedded with the flash image; the cost of the scan that a real
	// IB-FTL would need is charged here so that recovery-time comparisons
	// remain fair.
	for _, block := range f.bm.BlocksInGroup(GroupMeta) {
		written := f.bm.WritePointer(block)
		for offset := 0; offset < written; offset++ {
			ppn := flash.PPNOf(block, offset, f.cfg.PagesPerBlock)
			if err := f.dev.ReadPage(ppn, flash.PurposeRecovery); err != nil {
				return err
			}
		}
	}
	return nil
}

// livePageLister is implemented by the flash-resident page-validity
// structures; recovery uses it to rebuild the BVC entries of metadata blocks.
type livePageLister interface {
	LivePages() []flash.PPN
}

// rebuildBVC recreates the Blocks Validity Counter (GeckoRec step 5): for
// every block, the number of valid pages is the number of written pages
// minus the number of invalid ones according to the page-validity store.
// For GeckoFTL this is a scan of Logarithmic Gecko's runs; the flash reads
// involved are those of the GC queries issued per block below.
func (f *FTL) rebuildBVC() error {
	metaLive := make(map[flash.BlockID]int)
	if lister, ok := f.validity.(livePageLister); ok {
		for _, ppn := range lister.LivePages() {
			metaLive[flash.BlockOf(ppn, f.cfg.PagesPerBlock)]++
		}
	}
	// For GeckoFTL, reconstruct every block's validity bitmap with a single
	// scan of Logarithmic Gecko's pages (GeckoRec step 5) instead of one GC
	// query per block.
	var geckoScan map[flash.BlockID]*bitmap.Bitmap
	if f.lg != nil {
		scan, err := f.lg.ScanValidity()
		if err != nil {
			return err
		}
		geckoScan = scan
	}
	for i := range f.bm.blocks {
		info := &f.bm.blocks[i]
		if !info.allocated {
			continue
		}
		block := flash.BlockID(i)
		switch info.group {
		case GroupUser:
			var bmInvalid *bitmap.Bitmap
			if geckoScan != nil {
				bmInvalid = geckoScan[block]
				if bmInvalid == nil {
					bmInvalid = bitmap.New(f.cfg.PagesPerBlock)
				}
			} else {
				queried, err := f.validity.Query(block)
				if err != nil {
					return err
				}
				bmInvalid = queried
			}
			count := 0
			for offset := 0; offset < info.writePointer; offset++ {
				if !bmInvalid.Get(offset) {
					count++
				}
			}
			info.valid = count
		case GroupTranslation:
			// Valid translation pages are those the recovered GMD points to.
			count := 0
			for offset := 0; offset < info.writePointer; offset++ {
				ppn := flash.PPNOf(block, offset, f.cfg.PagesPerBlock)
				for tp := 0; tp < f.table.Pages(); tp++ {
					if f.table.GMDLocation(tp) == ppn {
						count++
						break
					}
				}
			}
			info.valid = count
		case GroupMeta:
			// Live metadata pages are known to their owning structure, which
			// rebuilt its directories above.
			info.valid = metaLive[block]
		}
	}
	f.reconcileRecoveredUIP(geckoScan)
	return nil
}

// reconcileRecoveredUIP clears the UIP flag of backwards-scan-recovered
// mapping entries whose flash-resident before-image is already recorded
// invalid. The scan recreates every entry with UIP = true (Appendix C.3,
// "assumed dirty and UIP"), but the before-image that flag will identify —
// the durable translation-table entry — may have been reported before the
// crash and persisted in a Logarithmic Gecko run, or re-derived by the
// buffer replay of Appendix C.2.2. The C.3.2 spare-area check at the entry's
// first synchronization cannot catch this case: the page keeps naming the
// logical page until its block is erased, so the stale flag would report the
// same invalidation a second time and underflow the rebuilt BVC. Recovery is
// the one moment the FTL holds the complete validity picture (the bitmaps
// rebuildBVC just scanned) in RAM, so the reconciliation costs no IO.
func (f *FTL) reconcileRecoveredUIP(geckoScan map[flash.BlockID]*bitmap.Bitmap) {
	if geckoScan == nil {
		return
	}
	var stale []flash.LPN
	f.cache.ForEach(func(e mapcache.Entry) bool {
		if !e.UIP || !e.Uncertain {
			return true
		}
		flashPPN := f.table.FlashEntry(e.Logical)
		if flashPPN == flash.InvalidPPN || flashPPN == e.Physical {
			// Nothing to identify, or the C.3.1 first-synchronization abort
			// already handles it.
			return true
		}
		block := flash.BlockOf(flashPPN, f.cfg.PagesPerBlock)
		if bm := geckoScan[block]; bm != nil && bm.Get(flash.OffsetOf(flashPPN, f.cfg.PagesPerBlock)) {
			stale = append(stale, e.Logical)
		}
		return true
	})
	for _, lpn := range stale {
		f.cache.Update(lpn, func(en *mapcache.Entry) { en.UIP = false; en.Trimmed = false })
	}
}

// recoverDirtyEntries performs the bounded backwards scan of Section 4.3: it
// walks user blocks from most recently written to least recently written,
// reading spare areas in reverse page order, and recreates a cached mapping
// entry for every new logical page encountered, until C entries exist or the
// 2C spare-read bound is reached. Recreated entries get dirty = true,
// UIP = true and the uncertainty marker of Appendix C.3.
//
// tpContentSeq dates the durable translation state: each translation page's
// content sequence as recovered by recoverGMD. Every synchronization of a
// translation page includes all of the page's dirty cached entries, so a
// candidate user page written no later than the content sequence, which the
// durable page does not map, is a stale before-image whose invalidation was
// already synchronized — by an overwrite (whose newer version the scan
// recovers separately) or by a trim, which leaves no newer user page at all.
// Such candidates are skipped: recreating a mapping entry for one would
// resurrect overwritten or trimmed data. (When the durable page still maps
// the candidate, the candidate is the current version; it is recovered as
// uncertain and Appendix C.3.1's first synchronization aborts it at no
// cost.)
func (f *FTL) recoverDirtyEntries(tpContentSeq map[int]uint64) (int, error) {
	capacity := f.cache.Capacity()
	maxSpareReads := 2 * capacity
	spareReads := 0
	recovered := 0
	seen := make(map[flash.LPN]bool, capacity)

	for _, block := range f.bm.userBlocksByRecency() {
		written := f.bm.WritePointer(block)
		for offset := written - 1; offset >= 0; offset-- {
			if recovered >= capacity || spareReads >= maxSpareReads {
				return recovered, nil
			}
			ppn := flash.PPNOf(block, offset, f.cfg.PagesPerBlock)
			spare, ok, err := f.dev.ReadSpare(ppn, flash.PurposeRecovery)
			if err != nil {
				return recovered, err
			}
			spareReads++
			if !ok {
				continue
			}
			f.bm.NoteWriteSeq(spare.WriteSeq)
			if spare.Logical == flash.InvalidLPN {
				continue
			}
			lpn := spare.Logical
			if seen[lpn] {
				continue
			}
			if seq, ok := tpContentSeq[f.table.pageOf(lpn)]; ok && seq >= spare.WriteSeq && f.table.FlashEntry(lpn) != ppn {
				// Durably invalidated (see above); a newer version of lpn, if
				// any, may still appear later in the scan, so lpn is not
				// marked seen.
				continue
			}
			seen[lpn] = true
			recovered++
			f.dirtyCount++
			f.cache.Put(mapcache.Entry{
				Logical:   lpn,
				Physical:  ppn,
				Dirty:     true,
				UIP:       true,
				Uncertain: true,
			})
		}
	}
	return recovered, nil
}

// synchronizeRecoveredEntries writes every recovered dirty mapping entry back
// to the translation table before normal operation resumes. LazyFTL and
// IB-FTL do this; it is what makes their recovery time grow with the cache
// size.
func (f *FTL) synchronizeRecoveredEntries() (int, error) {
	dirtyBefore := f.dirtyCount
	byTP := make(map[int]mapcache.Entry)
	f.cache.ForEach(func(e mapcache.Entry) bool {
		if e.Dirty {
			tp := f.cache.TranslationPageOf(e.Logical)
			if _, ok := byTP[tp]; !ok {
				byTP[tp] = e
			}
		}
		return true
	})
	tps := make([]int, 0, len(byTP))
	for tp := range byTP {
		tps = append(tps, tp)
	}
	sort.Ints(tps)
	for _, tp := range tps {
		if err := f.synchronize(byTP[tp]); err != nil {
			return 0, err
		}
	}
	return dirtyBefore - f.dirtyCount, nil
}
