package ftl

import (
	"context"
	"errors"
	"testing"

	"geckoftl/internal/flash"
	"geckoftl/internal/workload"
)

// TestTrimUnmapsAcrossFTLs exercises the trim path of all five FTLs: after a
// trim the page reads as unmapped, the trim is counted, and the end-state
// invariants (including the page-validity store's view of the dropped
// before-images) hold after a flush.
func TestTrimUnmapsAcrossFTLs(t *testing.T) {
	for name, build := range allFTLBuilders() {
		t.Run(name, func(t *testing.T) {
			f := testFTL(t, build, 96, 128)
			gen := workload.MustNewUniform(f.LogicalPages(), 51)
			runWorkload(t, f, gen, 3000)

			for lpn := flash.LPN(0); lpn < 40; lpn++ {
				if err := f.Trim(lpn); err != nil {
					t.Fatalf("trim %d: %v", lpn, err)
				}
			}
			if got := f.Stats().LogicalTrims; got != 40 {
				t.Errorf("LogicalTrims = %d, want 40", got)
			}
			for lpn := flash.LPN(0); lpn < 40; lpn++ {
				mapped, err := f.Mapped(lpn)
				if err != nil {
					t.Fatal(err)
				}
				if mapped {
					t.Fatalf("logical page %d still mapped after trim", lpn)
				}
				// Reading a trimmed page behaves like reading a never-written
				// page: it succeeds and returns zeroes.
				if err := f.Read(lpn); err != nil {
					t.Fatalf("read of trimmed page %d: %v", lpn, err)
				}
			}

			// Normal operation continues; trimmed pages can be rewritten.
			runWorkload(t, f, gen, 1000)
			checkConsistency(t, f, false)
		})
	}
}

// TestTrimCountsInvalidations verifies the eager identification paths credit
// TrimmedPages and the device's invalidation counter, and that GeckoFTL's
// lazy path catches up by the time everything is synchronized.
func TestTrimCountsInvalidations(t *testing.T) {
	for name, build := range allFTLBuilders() {
		t.Run(name, func(t *testing.T) {
			f := testFTL(t, build, 96, 128)
			// Write each target once so every trim has a before-image.
			for lpn := flash.LPN(0); lpn < 64; lpn++ {
				if err := f.Write(lpn); err != nil {
					t.Fatal(err)
				}
			}
			for lpn := flash.LPN(0); lpn < 64; lpn++ {
				if err := f.Trim(lpn); err != nil {
					t.Fatal(err)
				}
			}
			// Flush forces the pending synchronizations, which is where
			// GeckoFTL's lazy path identifies the before-images.
			if err := f.Flush(); err != nil {
				t.Fatal(err)
			}
			stats := f.Stats()
			if stats.TrimmedPages != 64 {
				t.Errorf("TrimmedPages = %d, want 64", stats.TrimmedPages)
			}
			counters := f.dev.Counters()
			if got := counters.TotalOp(flash.OpTrim); got != stats.TrimmedPages {
				t.Errorf("device OpTrim count %d != TrimmedPages %d", got, stats.TrimmedPages)
			}
		})
	}
}

// TestTrimOfUnmappedPage verifies trims of never-written and double-trimmed
// pages are accepted and invalidate nothing.
func TestTrimOfUnmappedPage(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 96, 128)
	if err := f.Trim(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().LogicalTrims; got != 3 {
		t.Errorf("LogicalTrims = %d, want 3", got)
	}
	if got := f.Stats().TrimmedPages; got != 1 {
		t.Errorf("TrimmedPages = %d, want 1 (only the written page had a before-image)", got)
	}
}

// TestTrimOutOfRange pins the typed error contract.
func TestTrimOutOfRange(t *testing.T) {
	f := testFTL(t, NewGeckoFTL, 64, 128)
	if err := f.Trim(flash.LPN(f.LogicalPages())); !errors.Is(err, flash.ErrOutOfRange) {
		t.Errorf("Trim out of range returned %v, want errors.Is(..., flash.ErrOutOfRange)", err)
	}
	if _, err := f.Mapped(-1); !errors.Is(err, flash.ErrOutOfRange) {
		t.Errorf("Mapped out of range returned %v, want errors.Is(..., flash.ErrOutOfRange)", err)
	}
	if err := f.Write(flash.LPN(f.LogicalPages())); !errors.Is(err, flash.ErrOutOfRange) {
		t.Errorf("Write out of range returned %v, want errors.Is(..., flash.ErrOutOfRange)", err)
	}
	if err := f.Read(-1); !errors.Is(err, flash.ErrOutOfRange) {
		t.Errorf("Read out of range returned %v, want errors.Is(..., flash.ErrOutOfRange)", err)
	}
}

// TestTrimSurvivesRecovery is the FTL-level trim-durability contract: a
// synchronized (flushed) trim stays absent across a power failure and
// recovery, even though the trimmed page's stale before-image is still
// physically present for the backwards scan to stumble over.
func TestTrimSurvivesRecovery(t *testing.T) {
	for _, name := range []string{"GeckoFTL", "LazyFTL", "IB-FTL"} {
		build := allFTLBuilders()[name]
		t.Run(name, func(t *testing.T) {
			f := testFTL(t, build, 96, 128)
			gen := workload.MustNewUniform(f.LogicalPages(), 52)
			runWorkload(t, f, gen, 3000)

			for lpn := flash.LPN(10); lpn < 42; lpn++ {
				if err := f.Trim(lpn); err != nil {
					t.Fatal(err)
				}
			}
			// Make the trims durable, then crash mid-stream shortly after.
			if err := f.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				op := gen.Next()
				if op.Page >= 10 && op.Page < 42 {
					continue // keep the trimmed range quiet until after recovery
				}
				if err := f.Write(op.Page); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.PowerFail(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Recover(); err != nil {
				t.Fatal(err)
			}

			for lpn := flash.LPN(10); lpn < 42; lpn++ {
				mapped, err := f.Mapped(lpn)
				if err != nil {
					t.Fatal(err)
				}
				if mapped {
					t.Fatalf("trimmed page %d resurrected by recovery", lpn)
				}
			}
			runWorkload(t, f, gen, 1000)
			checkConsistency(t, f, false)
		})
	}
}

// TestEngineTrimBatch drives trims through the sharded engine and checks
// routing, statistics and the trim latency histogram.
func TestEngineTrimBatch(t *testing.T) {
	dev := engineTestDevice(t, 256, 4)
	eng, err := NewEngine(dev, GeckoFTLOptions(256), 0)
	if err != nil {
		t.Fatal(err)
	}
	lp := eng.LogicalPages()
	var lpns []flash.LPN
	for i := int64(0); i < lp; i++ {
		lpns = append(lpns, flash.LPN(i))
	}
	if err := eng.WriteBatch(context.Background(), lpns); err != nil {
		t.Fatal(err)
	}
	trims := lpns[:len(lpns)/2]
	if err := eng.TrimBatch(context.Background(), trims); err != nil {
		t.Fatal(err)
	}
	for _, lpn := range trims {
		mapped, err := eng.Mapped(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if mapped {
			t.Fatalf("page %d still mapped after TrimBatch", lpn)
		}
	}
	for _, lpn := range lpns[len(lpns)/2:] {
		mapped, err := eng.Mapped(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if !mapped {
			t.Fatalf("untrimmed page %d reads as unmapped", lpn)
		}
	}
	if got := eng.Stats().LogicalTrims; got != int64(len(trims)) {
		t.Errorf("engine LogicalTrims = %d, want %d", got, len(trims))
	}
	es := eng.LatencyStats()
	if es.Trims.Count != int64(len(trims)) {
		t.Errorf("trim latency count = %d, want %d", es.Trims.Count, len(trims))
	}
	if err := eng.Trim(flash.LPN(eng.LogicalPages())); !errors.Is(err, flash.ErrOutOfRange) {
		t.Errorf("engine Trim out of range returned %v, want flash.ErrOutOfRange", err)
	}
	if err := eng.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
