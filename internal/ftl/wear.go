package ftl

import (
	"geckoftl/internal/flash"
)

// wearLeveler implements the Appendix D wear-leveling scheme. It keeps only a
// few global statistics in integrated RAM (the per-block erase counts and
// erase timestamps live in spare areas, stamped by the device on every
// program) and discovers wear-leveling victims through a gradual scan: for
// every application write it reads the spare area of one more block, so a
// full device scan completes every K writes at a cost three orders of
// magnitude below the writes themselves.
type wearLeveler struct {
	enabled   bool
	threshold int

	// cursor is the next block the gradual scan will probe.
	cursor flash.BlockID
	// Global statistics refreshed by the scan (Appendix D: min, max and
	// average erase counts, ~24 bytes of integrated RAM).
	minErase, maxErase int
	totalErase         int64
	scanned            int64
	scansCompleted     int64

	// candidate is the least-worn full block seen in the current scan; it
	// becomes the wear-leveling victim if the erase-count discrepancy
	// exceeds the threshold when the scan completes.
	candidate      flash.BlockID
	candidateErase int

	migrations int64
}

// newWearLeveler creates a wear-leveler. threshold is the erase-count
// discrepancy (max - min) above which static blocks are recycled; Appendix D
// argues single-digit discrepancies are acceptable, so the default is 8.
func newWearLeveler(enabled bool, threshold int) *wearLeveler {
	if threshold <= 0 {
		threshold = 8
	}
	return &wearLeveler{enabled: enabled, threshold: threshold, candidate: flash.InvalidBlock}
}

// WearStats summarizes wear-leveling activity and the device's erase-count
// spread.
type WearStats struct {
	// ScansCompleted counts full gradual scans of the device.
	ScansCompleted int64
	// Migrations counts wear-leveling victim reclaims (static blocks
	// recycled to even out wear).
	Migrations int64
	// MinErase, MaxErase and MeanErase are the statistics of the last
	// completed scan window.
	MinErase, MaxErase int
	MeanErase          float64
}

// RAMBytes is the integrated-RAM footprint of the wear-leveler: the handful
// of global counters of Appendix D.
func (w *wearLeveler) RAMBytes() int64 {
	if !w.enabled {
		return 0
	}
	return 40
}

// step advances the gradual scan by one block: one spare-area read. It
// returns a wear-leveling victim when a scan has just completed and the
// erase-count discrepancy exceeds the threshold; otherwise InvalidBlock.
func (f *FTL) wearStep() (flash.BlockID, error) {
	w := f.wear
	if !w.enabled {
		return flash.InvalidBlock, nil
	}
	block := w.cursor
	w.cursor = (w.cursor + 1) % flash.BlockID(f.cfg.Blocks)

	// One spare-area read per application write (Appendix D); the erase
	// count itself is tracked by the device per block, the spare read models
	// fetching the block's wear statistics.
	first := flash.PPNOf(block, 0, f.cfg.PagesPerBlock)
	if _, _, err := f.dev.ReadSpare(first, flash.PurposeWearLeveling); err != nil {
		return flash.InvalidBlock, err
	}
	eraseCount, err := f.dev.EraseCount(block)
	if err != nil {
		return flash.InvalidBlock, err
	}

	if w.scanned == 0 {
		w.minErase, w.maxErase, w.totalErase = eraseCount, eraseCount, 0
		w.candidate, w.candidateErase = flash.InvalidBlock, 0
	}
	w.scanned++
	w.totalErase += int64(eraseCount)
	if eraseCount < w.minErase {
		w.minErase = eraseCount
	}
	if eraseCount > w.maxErase {
		w.maxErase = eraseCount
	}
	// Only full, allocated, non-active user blocks can be recycled.
	info := &f.bm.blocks[block]
	if info.allocated && info.group == GroupUser && info.writePointer >= f.cfg.PagesPerBlock && !f.bm.isActive(block) {
		if w.candidate == flash.InvalidBlock || eraseCount < w.candidateErase {
			w.candidate = block
			w.candidateErase = eraseCount
		}
	}

	if w.scanned < int64(f.cfg.Blocks) {
		return flash.InvalidBlock, nil
	}
	// Scan complete: decide whether to recycle the least-worn static block.
	w.scansCompleted++
	w.scanned = 0
	victim := flash.InvalidBlock
	if w.candidate != flash.InvalidBlock && w.maxErase-w.candidateErase > w.threshold {
		victim = w.candidate
	}
	return victim, nil
}

// wearLevelIfNeeded runs one gradual-scan step and, when the scan identifies
// an exceptionally unworn static block, recycles it by migrating its live
// pages and erasing it so that it re-enters the free pool (and therefore the
// write path, where it will absorb wear).
func (f *FTL) wearLevelIfNeeded() error {
	victim, err := f.wearStep()
	if err != nil || victim == flash.InvalidBlock {
		return err
	}
	// The candidate was observed earlier in the scan window; re-validate it
	// at collection time. It may have been garbage-collected, reallocated to
	// another group, become the active block, become protected, or become
	// the incremental garbage collector's in-flight victim since — collecting
	// that one here would erase it under the drain's feet and the drain would
	// erase whatever block reuses the ID a second time.
	info := &f.bm.blocks[victim]
	if !info.allocated || info.group != GroupUser ||
		info.writePointer < f.cfg.PagesPerBlock || f.bm.isActive(victim) ||
		f.table.ProtectedBlocks()[victim] || victim == f.gc.victim {
		return nil
	}
	// Recycling uses the ordinary collection path, whose chargeGC calls feed
	// the per-write GC-stall metric. A wear recycle is this subsystem's own
	// (whole-block, per-K-writes) cost, not garbage-collection scheduling, so
	// its charges are excluded from the stall — otherwise one recycle would
	// break the incremental scheduler's documented hard bound. The recycle
	// still shows up in the write's overall recorded latency.
	gcTimeBefore := f.opGCTime
	if err := f.collectBlock(victim); err != nil {
		return err
	}
	f.opGCTime = gcTimeBefore
	f.wear.migrations++
	return nil
}

// WearStats returns the wear-leveler's statistics together with the device's
// current erase-count spread.
func (f *FTL) WearStats() WearStats {
	min, max, mean := f.dev.BlocksEndurance()
	return WearStats{
		ScansCompleted: f.wear.scansCompleted,
		Migrations:     f.wear.migrations,
		MinErase:       min,
		MaxErase:       max,
		MeanErase:      mean,
	}
}
