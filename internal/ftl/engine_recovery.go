package ftl

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ShardRecoveryReport is one shard's recovery outcome within an engine-wide
// recovery: the shard index plus its FTL-level report.
type ShardRecoveryReport struct {
	// Shard is the shard index (equal to the channel index when the engine
	// runs one shard per channel).
	Shard int
	RecoveryReport
}

// EngineRecoveryReport aggregates an engine-wide recovery. Recovery runs
// per-shard GeckoRec in parallel across channels; because recovery IO is
// dominated by spare-area reads of each shard's own dies, the wall-clock is
// the slowest shard's critical path while the serial time is what the same
// scan would cost on the paper's single serialized plane.
type EngineRecoveryReport struct {
	// Shards holds the per-shard breakdowns, indexed by shard.
	Shards []ShardRecoveryReport
	// WallClock is the slowest shard's recovery duration: the engine resumes
	// serving when its last shard finishes, and shards recover concurrently
	// on disjoint dies.
	WallClock time.Duration
	// SerialTime is the summed per-shard recovery duration: the cost of the
	// same recovery on a single serialized plane (a 1-shard engine has
	// WallClock == SerialTime).
	SerialTime time.Duration
	// SlowestShard is the index of the shard on the critical path.
	SlowestShard int
	// SpareReads, PageReads and PageWrites total the recovery IO of all
	// shards.
	SpareReads, PageReads, PageWrites int64
	// RecoveredMappingEntries totals the cached mapping entries recreated by
	// the shards' backwards scans.
	RecoveredMappingEntries int
	// UsedBattery reports that the shards synchronized dirty entries on
	// battery power at failure time instead of recovering them.
	UsedBattery bool
}

// Speedup returns SerialTime/WallClock: how much faster the parallel
// recovery finished than a single-plane scan of the same flash.
func (r *EngineRecoveryReport) Speedup() float64 {
	if r.WallClock <= 0 {
		return 1
	}
	return float64(r.SerialTime) / float64(r.WallClock)
}

// PowerFail simulates an abrupt, engine-wide power failure. For FTLs without
// a battery the shared device rail is cut first, without taking any shard
// lock, so batches in flight fail mid-operation exactly as on a real crash;
// battery FTLs (DFTL, µ-FTL) instead flush each shard's dirty state before
// the rail drops, as the paper assumes. Either way every shard then loses all
// RAM-resident state and every shard's power domain is marked failed, so a
// subsequent Recover rebuilds each shard from its own flash partition.
//
// PowerFail returns an error if the engine is already in the failed state,
// or the joined flush errors of battery shards whose flush failed — in the
// latter case the engine still ends power-failed (the flushes' dirty entries
// are lost, as on a real battery fault) and Recover remains available.
func (e *Engine) PowerFail() error {
	e.powerMu.Lock()
	defer e.powerMu.Unlock()
	if e.failed {
		return fmt.Errorf("ftl: engine PowerFail called while already power-failed")
	}
	if !e.opts.Battery {
		// Abrupt: in-flight shard operations start failing with
		// flash.ErrPowerFailed immediately, before we can take their locks.
		e.dev.PowerFail()
	}
	// Power is going down no matter what: even if a battery shard's flush
	// fails (its dirty entries are lost, as on a real battery fault), every
	// shard still crashes and the engine ends in the failed state, so
	// Recover stays reachable. The flush errors are reported to the caller.
	errs := make([]error, len(e.shards))
	for i, sh := range e.shards {
		sh.mu.Lock()
		if err := sh.ftl.PowerFail(); err != nil {
			errs[i] = fmt.Errorf("ftl: shard %d power fail: %w", i, err)
		}
		sh.mu.Unlock()
	}
	// Battery engines cut the rail only after every shard flushed.
	e.dev.PowerFail()
	e.failed = true
	return errors.Join(errs...)
}

// Recover restores the engine after an engine-wide PowerFail: the shared
// device rail is restored, then every shard runs its FTL recovery procedure
// (GeckoRec for GeckoFTL shards) concurrently, one goroutine per shard.
// Recovery is spare-area-read dominated and each shard scans only its own
// partition's dies, so recovery wall-clock scales with channel parallelism.
//
// Recover returns an error when no PowerFail preceded it (including a second
// Recover after a successful one).
func (e *Engine) Recover() (*EngineRecoveryReport, error) {
	e.powerMu.Lock()
	defer e.powerMu.Unlock()
	if !e.failed {
		return nil, fmt.Errorf("ftl: engine Recover called without a preceding PowerFail")
	}
	// Restore the shared rail; each shard's own power domain stays failed
	// until that shard's recovery turns it back on.
	e.dev.PowerOn()

	reports := make([]*RecoveryReport, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, sh := range e.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			report, err := sh.ftl.Recover()
			if err != nil {
				errs[i] = fmt.Errorf("ftl: shard %d recover: %w", i, err)
				return
			}
			reports[i] = report
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Roll every shard back to the crashed state (shards that recovered
		// lose their rebuilt RAM again, shards that failed mid-recovery drop
		// their partial state) and cut the rail, so a retry of Recover starts
		// from a clean engine-wide crash instead of tripping over the
		// recovered shards' Powered() preconditions.
		for _, sh := range e.shards {
			sh.mu.Lock()
			_ = sh.ftl.PowerFail() // best effort; the engine stays failed regardless
			sh.mu.Unlock()
		}
		e.dev.PowerFail()
		return nil, err
	}
	e.failed = false

	out := &EngineRecoveryReport{Shards: make([]ShardRecoveryReport, len(reports))}
	for i, r := range reports {
		out.Shards[i] = ShardRecoveryReport{Shard: i, RecoveryReport: *r}
		out.SerialTime += r.Duration
		if r.Duration > out.WallClock {
			out.WallClock = r.Duration
			out.SlowestShard = i
		}
		out.SpareReads += r.SpareReads
		out.PageReads += r.PageReads
		out.PageWrites += r.PageWrites
		out.RecoveredMappingEntries += r.RecoveredMappingEntries
		out.UsedBattery = out.UsedBattery || r.UsedBattery
	}
	return out, nil
}
