package ftl

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"geckoftl/internal/checkpoint"
	"geckoftl/internal/flash"
	"geckoftl/internal/gecko"
	"geckoftl/internal/mapcache"
)

// Checkpoint section kinds. A checkpoint file holds exactly one engine
// section followed by, for each shard in index order, one section of each
// per-shard kind in the order listed here. The shard index lives in the
// upper bits of the section ID.
const (
	sectionEngine uint32 = 0x01

	sectionShardBlocks uint32 = 0x10
	sectionShardGMD    uint32 = 0x11
	sectionShardCache  uint32 = 0x12
	sectionShardGecko  uint32 = 0x13
	sectionShardHeat   uint32 = 0x14
)

// shardKinds lists the per-shard section kinds in their required file order.
var shardKinds = [...]uint32{sectionShardBlocks, sectionShardGMD, sectionShardCache, sectionShardGecko, sectionShardHeat}

// shardSectionID composes a per-shard section ID from a kind and a shard
// index.
func shardSectionID(kind uint32, shard int) uint32 { return kind | uint32(shard)<<8 }

// Minimum encoded bytes per record of each repeated sequence; Reader.Count
// uses them to bound slice pre-allocation by the input size.
const (
	blockRecordBytes   = 30 // flags + group + writePointer + valid + firstWriteSeq + lastWriteSeq + eraseCount
	gmdRecordBytes     = 8  // translation-page location
	cacheRecordBytes   = 17 // lpn + ppn + flags
	runHeaderBytes     = 24 // id + createSeq + level + page count
	runPageRecordBytes = 16 // ppn + packed min/max keys
	heatRecordBytes    = 12 // float32 heat + last-touch clock
)

// ErrCheckpointUnsupported reports that this engine configuration cannot be
// checkpointed. Warm restart is a GeckoFTL feature: battery-backed FTLs
// flush at failure time and the comparison schemes keep validity state this
// format does not cover, so they always start cold.
var ErrCheckpointUnsupported = errors.New("ftl: checkpointing requires the GeckoFTL scheme without battery")

// shardCheckpoint is the decoded RAM state of one shard.
type shardCheckpoint struct {
	blocks  []blockInfo
	free    []flash.BlockID
	active  [numFrontiers]flash.BlockID
	lastSeq uint64

	gmd []flash.PPN

	// cacheLRUFirst holds the mapping-cache entries ordered least recently
	// used first, so re-inserting them in order reproduces the LRU order.
	cacheLRUFirst []mapcache.Entry

	runs []gecko.RunExport

	heatEnabled bool
	heatClock   int64
	heat        []float32
	heatLast    []int64
}

// engineCheckpoint is the decoded engine-wide state.
type engineCheckpoint struct {
	fingerprint    uint64
	shards         int
	globalWriteSeq uint64
	logicalPages   int64
	perShard       []*shardCheckpoint
}

// checkpointFingerprint hashes the configuration facets that determine the
// meaning of checkpointed state. A checkpoint taken under one configuration
// must never be imported under another: geometry or option skew changes
// what every index in the file refers to.
func (e *Engine) checkpointFingerprint() uint64 {
	cfg := e.dev.Config()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|%t|%t|%d|%g",
		cfg.Blocks, cfg.PagesPerBlock, cfg.PageSize, cfg.Channels, cfg.DiesPerChannel,
		len(e.shards), e.opts.Scheme, e.opts.CacheEntries,
		e.opts.HotColdSeparation, e.opts.WearAwareAllocation,
		e.opts.HeatHalfLife, e.opts.HeatThreshold)
	return h.Sum64()
}

// ExportCheckpoint snapshots the engine's complete RAM metadata as a
// checkpoint file. The caller should Flush first so the snapshot describes
// durable state; every shard lock is held for the duration, so the snapshot
// is a consistent cut even with concurrent callers. Only battery-less
// GeckoFTL engines support checkpointing (ErrCheckpointUnsupported
// otherwise), and a power-failed engine cannot be exported.
func (e *Engine) ExportCheckpoint() (*checkpoint.File, error) {
	e.powerMu.Lock()
	defer e.powerMu.Unlock()
	if e.failed {
		return nil, fmt.Errorf("ftl: checkpoint export on a power-failed engine: %w", flash.ErrPowerFailed)
	}
	if e.opts.Scheme != SchemeGecko || e.opts.Battery {
		return nil, ErrCheckpointUnsupported
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}

	file := &checkpoint.File{Version: checkpoint.Version}
	var w checkpoint.Writer
	w.U64(e.checkpointFingerprint())
	w.U32(uint32(len(e.shards)))
	w.U64(e.dev.GlobalWriteSeq())
	w.I64(e.logicalPages)
	file.Sections = append(file.Sections, checkpoint.Section{ID: sectionEngine, Payload: w.Bytes()})

	for i, sh := range e.shards {
		file.Sections = append(file.Sections, sh.ftl.exportShardSections(i)...)
	}
	return file, nil
}

// exportShardSections encodes one shard's RAM state into its per-shard
// sections. Callers hold the shard lock.
func (f *FTL) exportShardSections(shard int) []checkpoint.Section {
	sections := make([]checkpoint.Section, 0, len(shardKinds))

	var blocks checkpoint.Writer
	blocks.U32(uint32(len(f.bm.blocks)))
	for i := range f.bm.blocks {
		b := &f.bm.blocks[i]
		var flags uint8
		if b.allocated {
			flags |= 1
		}
		if b.retired {
			flags |= 2
		}
		blocks.U8(flags)
		blocks.U8(uint8(b.group))
		blocks.U32(uint32(b.writePointer))
		blocks.U32(uint32(b.valid))
		blocks.U64(b.firstWriteSeq)
		blocks.U64(b.lastWriteSeq)
		blocks.U32(uint32(b.eraseCount))
	}
	blocks.U32(uint32(len(f.bm.free)))
	for _, id := range f.bm.free {
		blocks.U32(uint32(id))
	}
	blocks.U8(uint8(len(f.bm.active)))
	for _, id := range f.bm.active {
		blocks.I64(int64(id))
	}
	blocks.U64(f.bm.lastSeq)
	sections = append(sections, checkpoint.Section{ID: shardSectionID(sectionShardBlocks, shard), Payload: blocks.Bytes()})

	var gmd checkpoint.Writer
	gmd.U32(uint32(f.table.Pages()))
	for tp := 0; tp < f.table.Pages(); tp++ {
		gmd.I64(int64(f.table.GMDLocation(tp)))
	}
	sections = append(sections, checkpoint.Section{ID: shardSectionID(sectionShardGMD, shard), Payload: gmd.Bytes()})

	var cache checkpoint.Writer
	entries := f.cache.Entries() // most recently used first
	cache.U32(uint32(len(entries)))
	for i := len(entries) - 1; i >= 0; i-- { // store LRU-first
		e := entries[i]
		cache.I64(int64(e.Logical))
		cache.I64(int64(e.Physical))
		var flags uint8
		if e.Dirty {
			flags |= 1
		}
		if e.UIP {
			flags |= 2
		}
		if e.Uncertain {
			flags |= 4
		}
		if e.Trimmed {
			flags |= 8
		}
		cache.U8(flags)
	}
	sections = append(sections, checkpoint.Section{ID: shardSectionID(sectionShardCache, shard), Payload: cache.Bytes()})

	var lg checkpoint.Writer
	runs := f.lg.ExportDirectories()
	lg.U32(uint32(len(runs)))
	for _, r := range runs {
		lg.U64(r.ID)
		lg.U64(r.CreateSeq)
		lg.U32(uint32(r.Level))
		lg.U32(uint32(len(r.Pages)))
		for _, p := range r.Pages {
			lg.I64(p.PPN)
			lg.U32(p.MinKey)
			lg.U32(p.MaxKey)
		}
	}
	sections = append(sections, checkpoint.Section{ID: shardSectionID(sectionShardGecko, shard), Payload: lg.Bytes()})

	var heat checkpoint.Writer
	heat.Bool(f.heat.enabled)
	if f.heat.enabled {
		heat.I64(f.heat.clock)
		heat.U32(uint32(len(f.heat.heat)))
		for i := range f.heat.heat {
			heat.U32(math.Float32bits(f.heat.heat[i]))
			heat.I64(f.heat.last[i])
		}
	}
	sections = append(sections, checkpoint.Section{ID: shardSectionID(sectionShardHeat, shard), Payload: heat.Bytes()})

	return sections
}

// decodeCheckpoint parses a checkpoint file's sections into engine state,
// enforcing the fixed section order. Structural damage (wrong counts, bad
// framing, short payloads) wraps checkpoint.ErrInvalid.
func decodeCheckpoint(file *checkpoint.File) (*engineCheckpoint, error) {
	if len(file.Sections) == 0 || file.Sections[0].ID != sectionEngine {
		return nil, fmt.Errorf("%w: first section is not the engine header", checkpoint.ErrInvalid)
	}
	r := checkpoint.NewReader(file.Sections[0].Payload)
	ec := &engineCheckpoint{
		fingerprint:    r.U64(),
		shards:         int(r.U32()),
		globalWriteSeq: r.U64(),
		logicalPages:   r.I64(),
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("engine section: %w", err)
	}
	if ec.shards < 1 || ec.shards > 1<<16 {
		return nil, fmt.Errorf("%w: implausible shard count %d", checkpoint.ErrInvalid, ec.shards)
	}
	if want := 1 + ec.shards*len(shardKinds); len(file.Sections) != want {
		return nil, fmt.Errorf("%w: %d sections for %d shards, want %d", checkpoint.ErrInvalid, len(file.Sections), ec.shards, want)
	}
	for shard := 0; shard < ec.shards; shard++ {
		sc := &shardCheckpoint{}
		for k, kind := range shardKinds {
			s := file.Sections[1+shard*len(shardKinds)+k]
			if s.ID != shardSectionID(kind, shard) {
				return nil, fmt.Errorf("%w: section %#x out of order (want kind %#x of shard %d)", checkpoint.ErrInvalid, s.ID, kind, shard)
			}
			if err := sc.decodeSection(kind, s.Payload); err != nil {
				return nil, fmt.Errorf("shard %d section %#x: %w", shard, kind, err)
			}
		}
		ec.perShard = append(ec.perShard, sc)
	}
	return ec, nil
}

// decodeSection parses one per-shard section payload.
func (sc *shardCheckpoint) decodeSection(kind uint32, payload []byte) error {
	r := checkpoint.NewReader(payload)
	switch kind {
	case sectionShardBlocks:
		n := r.Count(blockRecordBytes)
		sc.blocks = make([]blockInfo, n)
		for i := range sc.blocks {
			b := &sc.blocks[i]
			flags := r.U8()
			if flags&^uint8(3) != 0 {
				return fmt.Errorf("%w: unknown block flags %#x", checkpoint.ErrInvalid, flags)
			}
			b.allocated = flags&1 != 0
			b.retired = flags&2 != 0
			b.group = Group(r.U8())
			b.writePointer = int(r.U32())
			b.valid = int(r.U32())
			b.firstWriteSeq = r.U64()
			b.lastWriteSeq = r.U64()
			b.eraseCount = int(r.U32())
		}
		nFree := r.Count(4)
		sc.free = make([]flash.BlockID, nFree)
		for i := range sc.free {
			sc.free[i] = flash.BlockID(r.U32())
		}
		if got := int(r.U8()); got != numFrontiers {
			return fmt.Errorf("%w: %d write frontiers, want %d", checkpoint.ErrInvalid, got, numFrontiers)
		}
		for i := range sc.active {
			sc.active[i] = flash.BlockID(r.I64())
		}
		sc.lastSeq = r.U64()
	case sectionShardGMD:
		n := r.Count(gmdRecordBytes)
		sc.gmd = make([]flash.PPN, n)
		for i := range sc.gmd {
			sc.gmd[i] = flash.PPN(r.I64())
		}
	case sectionShardCache:
		n := r.Count(cacheRecordBytes)
		sc.cacheLRUFirst = make([]mapcache.Entry, n)
		for i := range sc.cacheLRUFirst {
			e := &sc.cacheLRUFirst[i]
			e.Logical = flash.LPN(r.I64())
			e.Physical = flash.PPN(r.I64())
			flags := r.U8()
			if flags&^uint8(15) != 0 {
				return fmt.Errorf("%w: unknown cache-entry flags %#x", checkpoint.ErrInvalid, flags)
			}
			e.Dirty = flags&1 != 0
			e.UIP = flags&2 != 0
			e.Uncertain = flags&4 != 0
			e.Trimmed = flags&8 != 0
		}
	case sectionShardGecko:
		n := r.Count(runHeaderBytes)
		sc.runs = make([]gecko.RunExport, n)
		for i := range sc.runs {
			run := &sc.runs[i]
			run.ID = r.U64()
			run.CreateSeq = r.U64()
			run.Level = int(r.U32())
			pages := r.Count(runPageRecordBytes)
			run.Pages = make([]gecko.RunPageExport, pages)
			for j := range run.Pages {
				run.Pages[j] = gecko.RunPageExport{PPN: r.I64(), MinKey: r.U32(), MaxKey: r.U32()}
			}
		}
	case sectionShardHeat:
		sc.heatEnabled = r.Bool()
		if sc.heatEnabled {
			sc.heatClock = r.I64()
			n := r.Count(heatRecordBytes)
			sc.heat = make([]float32, n)
			sc.heatLast = make([]int64, n)
			for i := range sc.heat {
				sc.heat[i] = math.Float32frombits(r.U32())
				sc.heatLast[i] = r.I64()
			}
		}
	default:
		return fmt.Errorf("%w: unknown section kind %#x", checkpoint.ErrInvalid, kind)
	}
	return r.Done()
}

// verifyEngineCheckpoint checks the engine-level facts of a decoded
// checkpoint against this engine and, crucially, against device truth: the
// global write sequence must match exactly, or the checkpoint describes a
// different moment of the flash than the one in front of us.
func (e *Engine) verifyEngineCheckpoint(ec *engineCheckpoint) error {
	if got, want := ec.fingerprint, e.checkpointFingerprint(); got != want {
		return fmt.Errorf("%w: configuration fingerprint %#x, this engine is %#x", checkpoint.ErrInvalid, got, want)
	}
	if ec.shards != len(e.shards) {
		return fmt.Errorf("%w: %d shards, this engine has %d", checkpoint.ErrInvalid, ec.shards, len(e.shards))
	}
	if ec.logicalPages != e.logicalPages {
		return fmt.Errorf("%w: %d logical pages, this engine has %d", checkpoint.ErrInvalid, ec.logicalPages, e.logicalPages)
	}
	if got, want := ec.globalWriteSeq, e.dev.GlobalWriteSeq(); got != want {
		return fmt.Errorf("%w: stale checkpoint (content sequence %d, device is at %d)", checkpoint.ErrInvalid, got, want)
	}
	return nil
}

// verifyShardCheckpoint checks one shard's decoded state against the
// shard's configuration and its partition's device truth (write pointers,
// erase counters, the bad-block table — all controller bookkeeping, no
// flash IO). The shard's partition must be powered; callers hold the shard
// lock. Nothing is mutated.
func (f *FTL) verifyShardCheckpoint(sc *shardCheckpoint) error {
	if len(sc.blocks) != f.cfg.Blocks {
		return fmt.Errorf("%w: %d blocks, shard has %d", checkpoint.ErrInvalid, len(sc.blocks), f.cfg.Blocks)
	}
	inFree := make([]bool, f.cfg.Blocks)
	for _, id := range sc.free {
		if id < 0 || int(id) >= f.cfg.Blocks {
			return fmt.Errorf("%w: free block %d out of range", checkpoint.ErrInvalid, id)
		}
		if inFree[id] {
			return fmt.Errorf("%w: free pool repeats block %d", checkpoint.ErrInvalid, id)
		}
		inFree[id] = true
	}
	for id := range sc.blocks {
		b := &sc.blocks[id]
		block := flash.BlockID(id)
		if int(b.group) >= int(numGroups) {
			return fmt.Errorf("%w: block %d in unknown group %d", checkpoint.ErrInvalid, id, b.group)
		}
		if b.writePointer < 0 || b.writePointer > f.cfg.PagesPerBlock {
			return fmt.Errorf("%w: block %d write pointer %d of %d pages", checkpoint.ErrInvalid, id, b.writePointer, f.cfg.PagesPerBlock)
		}
		if b.valid < 0 || b.valid > f.cfg.PagesPerBlock {
			return fmt.Errorf("%w: block %d validity count %d of %d pages", checkpoint.ErrInvalid, id, b.valid, f.cfg.PagesPerBlock)
		}
		if b.allocated && inFree[id] {
			return fmt.Errorf("%w: block %d both allocated and free", checkpoint.ErrInvalid, id)
		}
		if b.retired && inFree[id] {
			return fmt.Errorf("%w: block %d both retired and free", checkpoint.ErrInvalid, id)
		}
		bad, err := f.dev.BadBlock(block)
		if err != nil {
			return fmt.Errorf("ftl: checkpoint verification: %w", err)
		}
		if b.retired != bad {
			return fmt.Errorf("%w: block %d retirement disagrees with the device bad-block table", checkpoint.ErrInvalid, id)
		}
		erases, err := f.dev.EraseCount(block)
		if err != nil {
			return fmt.Errorf("ftl: checkpoint verification: %w", err)
		}
		if b.eraseCount != erases {
			return fmt.Errorf("%w: block %d erase count %d, device says %d", checkpoint.ErrInvalid, id, b.eraseCount, erases)
		}
		if !b.retired {
			wp, err := f.dev.WritePointer(block)
			if err != nil {
				return fmt.Errorf("ftl: checkpoint verification: %w", err)
			}
			if b.writePointer != wp {
				return fmt.Errorf("%w: block %d write pointer %d, device says %d", checkpoint.ErrInvalid, id, b.writePointer, wp)
			}
		}
	}
	for i, id := range sc.active {
		if id == flash.InvalidBlock {
			continue
		}
		if id < 0 || int(id) >= f.cfg.Blocks {
			return fmt.Errorf("%w: frontier %d block %d out of range", checkpoint.ErrInvalid, i, id)
		}
		if !sc.blocks[id].allocated {
			return fmt.Errorf("%w: frontier %d block %d is not allocated", checkpoint.ErrInvalid, i, id)
		}
	}

	if len(sc.gmd) != f.table.Pages() {
		return fmt.Errorf("%w: %d translation pages, shard has %d", checkpoint.ErrInvalid, len(sc.gmd), f.table.Pages())
	}
	shardPages := flash.PPN(int64(f.cfg.Blocks) * int64(f.cfg.PagesPerBlock))
	for tp, ppn := range sc.gmd {
		if ppn == flash.InvalidPPN {
			continue
		}
		if ppn < 0 || ppn >= shardPages {
			return fmt.Errorf("%w: translation page %d at %d out of range", checkpoint.ErrInvalid, tp, ppn)
		}
		block := flash.BlockID(int64(ppn) / int64(f.cfg.PagesPerBlock))
		offset := int(int64(ppn) % int64(f.cfg.PagesPerBlock))
		b := &sc.blocks[block]
		if b.group != GroupTranslation || !b.allocated {
			return fmt.Errorf("%w: translation page %d points into block %d of group %d", checkpoint.ErrInvalid, tp, block, b.group)
		}
		if offset >= b.writePointer {
			return fmt.Errorf("%w: translation page %d points past block %d's write pointer", checkpoint.ErrInvalid, tp, block)
		}
	}

	if len(sc.cacheLRUFirst) > f.cache.Capacity() {
		return fmt.Errorf("%w: %d cached entries over the %d-entry budget", checkpoint.ErrInvalid, len(sc.cacheLRUFirst), f.cache.Capacity())
	}
	for _, e := range sc.cacheLRUFirst {
		if e.Logical < 0 || int64(e.Logical) >= f.logicalPages {
			return fmt.Errorf("%w: cached mapping for logical page %d of %d", checkpoint.ErrInvalid, e.Logical, f.logicalPages)
		}
		if e.Physical != flash.InvalidPPN && (e.Physical < 0 || e.Physical >= shardPages) {
			return fmt.Errorf("%w: cached mapping %d -> %d out of range", checkpoint.ErrInvalid, e.Logical, e.Physical)
		}
	}

	if err := f.lg.ValidateDirectories(sc.runs); err != nil {
		return fmt.Errorf("%w: %w", checkpoint.ErrInvalid, err)
	}

	if sc.heatEnabled != f.heat.enabled {
		return fmt.Errorf("%w: heat classifier enabled=%t, shard has %t", checkpoint.ErrInvalid, sc.heatEnabled, f.heat.enabled)
	}
	if sc.heatEnabled && len(sc.heat) != len(f.heat.heat) {
		return fmt.Errorf("%w: heat state for %d pages, shard tracks %d", checkpoint.ErrInvalid, len(sc.heat), len(f.heat.heat))
	}
	return nil
}

// importShardCheckpoint rebuilds one crashed shard's RAM state from a
// decoded checkpoint instead of running GeckoRec: zero flash IO. The shard
// must be power-failed (RAM already dropped); on any error the shard is
// returned to the crashed state — partial imports never survive — and the
// caller falls back to ordinary recovery.
func (f *FTL) importShardCheckpoint(sc *shardCheckpoint) error {
	if f.dev.Powered() {
		return fmt.Errorf("ftl: checkpoint import without a preceding PowerFail")
	}
	f.dev.PowerOn()
	if err := f.verifyShardCheckpoint(sc); err != nil {
		f.recrash()
		return err
	}

	f.bm.blocks = sc.blocks
	f.bm.free = sc.free
	f.bm.active = sc.active
	f.bm.lastSeq = sc.lastSeq
	f.bm.restoreFreeOrder()

	for tp, ppn := range sc.gmd {
		f.table.SetGMDLocation(tp, ppn)
	}

	if err := f.lg.ImportDirectories(sc.runs); err != nil {
		f.recrash()
		return fmt.Errorf("%w: %w", checkpoint.ErrInvalid, err)
	}

	f.cache.Clear()
	f.dirtyCount = 0
	for _, e := range sc.cacheLRUFirst {
		f.cache.Put(e)
		if e.Dirty {
			f.dirtyCount++
		}
	}

	if f.heat.enabled {
		f.heat.clock = sc.heatClock
		copy(f.heat.heat, sc.heat)
		copy(f.heat.last, sc.heatLast)
	}
	return nil
}

// recrash returns the shard to the crashed state after a failed import:
// power off, all RAM state dropped, exactly as PowerFail leaves it (minus
// the battery flush, which checkpointing excludes by construction).
func (f *FTL) recrash() {
	f.dev.PowerFail()
	f.cache.Clear()
	f.dirtyCount = 0
	f.crashGC()
	f.table.CrashRAM()
	f.bm.CrashRAM()
	f.heat.CrashRAM()
	if f.lg != nil {
		f.lg.CrashRAM()
	}
	if crasher, ok := f.validity.(interface{ CrashRAM() }); ok {
		crasher.CrashRAM()
	}
}

// ValidateCheckpoint checks a decoded checkpoint against a live engine
// without mutating anything: configuration fingerprint, shard layout,
// staleness versus the device's global write sequence, and every shard's
// state against its partition's device truth. A nil return means
// RestoreCheckpoint would accept the file in the engine's current state.
func (e *Engine) ValidateCheckpoint(file *checkpoint.File) error {
	e.powerMu.Lock()
	defer e.powerMu.Unlock()
	if e.failed {
		return fmt.Errorf("ftl: checkpoint validation on a power-failed engine: %w", flash.ErrPowerFailed)
	}
	if e.opts.Scheme != SchemeGecko || e.opts.Battery {
		return ErrCheckpointUnsupported
	}
	ec, err := decodeCheckpoint(file)
	if err != nil {
		return err
	}
	if err := e.verifyEngineCheckpoint(ec); err != nil {
		return err
	}
	for i, sh := range e.shards {
		sh.mu.Lock()
		err := sh.ftl.verifyShardCheckpoint(ec.perShard[i])
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// RestoreCheckpoint performs a warm restart: it rebuilds every shard's RAM
// state from a checkpoint instead of running GeckoRec, at zero flash IO.
// The engine must be power-failed (as after PowerFail or a clean shutdown's
// simulated reboot). The checkpoint is validated — structure, configuration
// fingerprint, staleness against the device's global write sequence, and
// per-shard device truth — before any state is kept; on any failure every
// shard is returned to the crashed state and the error is reported so the
// caller can fall back to Engine.Recover. Partial state never survives.
func (e *Engine) RestoreCheckpoint(file *checkpoint.File) error {
	e.powerMu.Lock()
	defer e.powerMu.Unlock()
	if !e.failed {
		return fmt.Errorf("ftl: checkpoint restore without a preceding PowerFail")
	}
	if e.opts.Scheme != SchemeGecko || e.opts.Battery {
		return ErrCheckpointUnsupported
	}
	ec, err := decodeCheckpoint(file)
	if err != nil {
		return err
	}
	if err := e.verifyEngineCheckpoint(ec); err != nil {
		return err
	}
	e.dev.PowerOn()
	for i, sh := range e.shards {
		sh.mu.Lock()
		err := sh.ftl.importShardCheckpoint(ec.perShard[i])
		sh.mu.Unlock()
		if err != nil {
			// Roll every shard back to the crashed state: shards imported so
			// far drop their rebuilt RAM, untouched shards are already
			// crashed, and the rail is cut again so Engine.Recover starts
			// from a clean engine-wide crash.
			for _, sh2 := range e.shards {
				sh2.mu.Lock()
				sh2.ftl.recrash()
				sh2.mu.Unlock()
			}
			e.dev.PowerFail()
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	e.failed = false
	return nil
}
