// Package mapcache implements the LRU cache of logical-to-physical mapping
// entries that page-associative FTLs keep in integrated RAM.
//
// The cache is the component through which all of the paper's FTLs
// (GeckoFTL, DFTL, LazyFTL, µ-FTL, IB-FTL) serve application reads and
// writes: recently accessed mapping entries live here, entries for recently
// updated logical pages are marked dirty until a synchronization operation
// writes them back to the flash-resident translation table, and GeckoFTL
// additionally tracks its Unidentified-Invalid-Page (UIP) and uncertainty
// flags on each entry (Sections 4, 4.1 and Appendix C.3 of the paper).
//
// The paper notes that "the LRU cache is implemented as a tree to enable
// efficient range queries for mapping entries on a particular translation
// page". This implementation keeps an explicit secondary index from
// translation-page number to the set of cached logical pages it covers, which
// provides the same O(entries-on-page) synchronization scans without a
// balanced tree.
package mapcache
