package mapcache

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"geckoftl/internal/flash"
)

const testEntriesPerTP = 512

func newTestCache(capacity int) *Cache { return New(capacity, testEntriesPerTP) }

func TestNewPanicsOnBadArguments(t *testing.T) {
	for _, c := range []struct{ capacity, perTP int }{{0, 1}, {-1, 1}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.capacity, c.perTP)
				}
			}()
			New(c.capacity, c.perTP)
		}()
	}
}

func TestPutLookup(t *testing.T) {
	c := newTestCache(4)
	c.Put(Entry{Logical: 1, Physical: 100})
	c.Put(Entry{Logical: 2, Physical: 200, Dirty: true})

	e, ok := c.Lookup(1)
	if !ok || e.Physical != 100 || e.Dirty {
		t.Errorf("Lookup(1) = %+v, %v", e, ok)
	}
	e, ok = c.Lookup(2)
	if !ok || e.Physical != 200 || !e.Dirty {
		t.Errorf("Lookup(2) = %+v, %v", e, ok)
	}
	if _, ok := c.Lookup(3); ok {
		t.Error("Lookup(3) hit on missing entry")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits 1 miss", st)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestPutUpdatesExistingEntry(t *testing.T) {
	c := newTestCache(2)
	c.Put(Entry{Logical: 5, Physical: 50})
	ev := c.Put(Entry{Logical: 5, Physical: 51, Dirty: true})
	if ev.Valid {
		t.Error("updating an existing entry evicted something")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	e, _ := c.Peek(5)
	if e.Physical != 51 || !e.Dirty {
		t.Errorf("entry not updated: %+v", e)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newTestCache(3)
	c.Put(Entry{Logical: 1})
	c.Put(Entry{Logical: 2})
	c.Put(Entry{Logical: 3})
	// Touch 1 so that 2 becomes the LRU victim.
	c.Lookup(1)
	ev := c.Put(Entry{Logical: 4})
	if !ev.Valid || ev.Entry.Logical != 2 {
		t.Errorf("evicted %+v, want logical 2", ev)
	}
	if c.Contains(2) {
		t.Error("evicted entry still present")
	}
	for _, lpn := range []flash.LPN{1, 3, 4} {
		if !c.Contains(lpn) {
			t.Errorf("entry %d missing", lpn)
		}
	}
}

func TestDirtyEvictionIsReported(t *testing.T) {
	c := newTestCache(1)
	c.Put(Entry{Logical: 1, Dirty: true})
	ev := c.Put(Entry{Logical: 2})
	if !ev.Valid || !ev.Entry.Dirty || ev.Entry.Logical != 1 {
		t.Errorf("eviction = %+v, want dirty entry 1", ev)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := newTestCache(2)
	c.Put(Entry{Logical: 1})
	c.Put(Entry{Logical: 2})
	c.Peek(1) // must NOT promote 1
	ev := c.Put(Entry{Logical: 3})
	if !ev.Valid || ev.Entry.Logical != 1 {
		t.Errorf("evicted %+v, want 1 (Peek must not promote)", ev)
	}
}

func TestRemove(t *testing.T) {
	c := newTestCache(4)
	c.Put(Entry{Logical: 1})
	if !c.Remove(1) {
		t.Error("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Error("second Remove(1) = true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	if len(c.EntriesOnTranslationPage(0)) != 0 {
		t.Error("translation-page index not cleaned on Remove")
	}
}

func TestUpdateFlags(t *testing.T) {
	c := newTestCache(4)
	c.Put(Entry{Logical: 1, Physical: 10, Dirty: true, UIP: true})
	ok := c.Update(1, func(e *Entry) {
		e.Dirty = false
		e.UIP = false
	})
	if !ok {
		t.Fatal("Update reported missing entry")
	}
	e, _ := c.Peek(1)
	if e.Dirty || e.UIP {
		t.Errorf("flags not cleared: %+v", e)
	}
	if c.Update(99, func(*Entry) {}) {
		t.Error("Update on missing entry returned true")
	}
}

func TestTranslationPageIndex(t *testing.T) {
	c := newTestCache(100)
	// Entries 0..511 are on translation page 0, 512..1023 on page 1.
	c.Put(Entry{Logical: 5, Dirty: true})
	c.Put(Entry{Logical: 200, Dirty: false})
	c.Put(Entry{Logical: 511, Dirty: true})
	c.Put(Entry{Logical: 512, Dirty: true})

	if got := c.TranslationPageOf(511); got != 0 {
		t.Errorf("TranslationPageOf(511) = %d, want 0", got)
	}
	if got := c.TranslationPageOf(512); got != 1 {
		t.Errorf("TranslationPageOf(512) = %d, want 1", got)
	}

	page0 := c.EntriesOnTranslationPage(0)
	if len(page0) != 3 {
		t.Errorf("page 0 entries = %d, want 3", len(page0))
	}
	dirty0 := c.DirtyEntriesOnTranslationPage(0)
	if len(dirty0) != 2 {
		t.Errorf("page 0 dirty entries = %d, want 2", len(dirty0))
	}
	page1 := c.EntriesOnTranslationPage(1)
	if len(page1) != 1 || page1[0].Logical != 512 {
		t.Errorf("page 1 entries = %+v", page1)
	}
	if got := c.EntriesOnTranslationPage(7); got != nil {
		t.Errorf("empty page returned %v", got)
	}
}

func TestDirtyCount(t *testing.T) {
	c := newTestCache(10)
	for i := 0; i < 6; i++ {
		c.Put(Entry{Logical: flash.LPN(i), Dirty: i%2 == 0})
	}
	if got := c.DirtyCount(); got != 3 {
		t.Errorf("DirtyCount = %d, want 3", got)
	}
}

func TestForEachOrderAndEntries(t *testing.T) {
	c := newTestCache(10)
	for i := 0; i < 5; i++ {
		c.Put(Entry{Logical: flash.LPN(i)})
	}
	c.Lookup(0) // 0 becomes MRU
	got := c.Entries()
	if len(got) != 5 {
		t.Fatalf("Entries len = %d", len(got))
	}
	if got[0].Logical != 0 {
		t.Errorf("MRU entry = %d, want 0", got[0].Logical)
	}
	// Early stop.
	count := 0
	c.ForEach(func(Entry) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach visited %d, want 2", count)
	}
}

func TestLeastRecentlyUsed(t *testing.T) {
	c := newTestCache(5)
	if _, ok := c.LeastRecentlyUsed(); ok {
		t.Error("LRU of empty cache reported an entry")
	}
	c.Put(Entry{Logical: 1})
	c.Put(Entry{Logical: 2})
	lru, ok := c.LeastRecentlyUsed()
	if !ok || lru.Logical != 1 {
		t.Errorf("LRU = %+v, want 1", lru)
	}
	// A checkpoint symbol at the back must be skipped.
	c.Checkpoint()
	c.Put(Entry{Logical: 3})
	lru, ok = c.LeastRecentlyUsed()
	if !ok || lru.Logical != 1 {
		t.Errorf("LRU after checkpoint = %+v, want 1", lru)
	}
}

func TestCheckpointSynchronizesLingeringDirtyEntries(t *testing.T) {
	c := newTestCache(10)
	// Three dirty entries inserted early.
	c.Put(Entry{Logical: 1, Dirty: true})
	c.Put(Entry{Logical: 2, Dirty: true})
	c.Put(Entry{Logical: 3, Dirty: false})

	// First checkpoint: no previous symbol, so the scan covers everything.
	stale := c.Checkpoint()
	if len(stale) != 2 {
		t.Fatalf("first checkpoint returned %d dirty entries, want 2", len(stale))
	}
	// The FTL would now synchronize them; emulate by clearing the flags.
	for _, e := range stale {
		c.Update(e.Logical, func(en *Entry) { en.Dirty = false })
	}

	// New activity after the checkpoint.
	c.Put(Entry{Logical: 4, Dirty: true})
	c.Lookup(1)

	// Second checkpoint scans only entries older than the previous symbol:
	// entries 2 and 3 (entry 1 was touched, entry 4 is newer than the
	// symbol). None of those is dirty anymore.
	stale = c.Checkpoint()
	if len(stale) != 0 {
		t.Errorf("second checkpoint returned %v, want none", stale)
	}
	if c.Stats().Checkpoints != 2 {
		t.Errorf("checkpoint count = %d, want 2", c.Stats().Checkpoints)
	}
}

func TestCheckpointBoundsBackwardScan(t *testing.T) {
	// A dirty entry that keeps lingering at the LRU end without being
	// updated must be returned by the next checkpoint, so the recovery scan
	// never needs to look back more than 2C writes (Section 4.3).
	c := newTestCache(8)
	c.Put(Entry{Logical: 0, Dirty: true})
	c.Checkpoint()
	for i := 1; i < 5; i++ {
		c.Put(Entry{Logical: flash.LPN(i), Dirty: true})
	}
	stale := c.Checkpoint()
	found := false
	for _, e := range stale {
		if e.Logical == 0 {
			found = true
		}
	}
	if !found {
		t.Error("lingering dirty entry 0 not captured by checkpoint")
	}
}

func TestCheckpointDue(t *testing.T) {
	c := newTestCache(3)
	if c.CheckpointDue() {
		t.Error("fresh cache reports checkpoint due")
	}
	c.Put(Entry{Logical: 1})
	c.Put(Entry{Logical: 2})
	c.Put(Entry{Logical: 1}) // update counts too
	if !c.CheckpointDue() {
		t.Error("checkpoint not due after C operations")
	}
	c.Checkpoint()
	if c.CheckpointDue() {
		t.Error("checkpoint still due right after checkpointing")
	}
	if c.OpsSinceCheckpoint() != 0 {
		t.Errorf("OpsSinceCheckpoint = %d, want 0", c.OpsSinceCheckpoint())
	}
}

func TestCheckpointSymbolsDoNotConsumeCapacity(t *testing.T) {
	c := newTestCache(2)
	c.Put(Entry{Logical: 1})
	c.Checkpoint()
	c.Put(Entry{Logical: 2})
	// Capacity 2 with 2 real entries; inserting a third evicts a real entry,
	// not the checkpoint symbol (which would silently lose an entry slot).
	ev := c.Put(Entry{Logical: 3})
	if !ev.Valid {
		t.Fatal("expected an eviction")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestClear(t *testing.T) {
	c := newTestCache(4)
	c.Put(Entry{Logical: 1, Dirty: true})
	c.Checkpoint()
	c.Clear()
	if c.Len() != 0 || c.Contains(1) {
		t.Error("Clear did not drop entries")
	}
	if len(c.EntriesOnTranslationPage(0)) != 0 {
		t.Error("Clear did not drop the translation-page index")
	}
	// The cache must be fully usable after Clear.
	c.Put(Entry{Logical: 2})
	if !c.Contains(2) {
		t.Error("cache unusable after Clear")
	}
}

func TestRAMBytes(t *testing.T) {
	c := newTestCache(1 << 19)
	if got := c.RAMBytes(8); got != 8<<19 {
		t.Errorf("RAMBytes = %d, want %d", got, 8<<19)
	}
}

func TestUncertainFlagRoundTrip(t *testing.T) {
	c := newTestCache(4)
	c.Put(Entry{Logical: 9, Dirty: true, UIP: true, Uncertain: true})
	e, _ := c.Peek(9)
	if !e.Uncertain {
		t.Error("uncertain flag lost")
	}
	c.Update(9, func(en *Entry) { en.Uncertain = false })
	e, _ = c.Peek(9)
	if e.Uncertain {
		t.Error("uncertain flag not cleared")
	}
}

func TestPutNegativeLogicalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put with negative LPN did not panic")
		}
	}()
	newTestCache(1).Put(Entry{Logical: -3})
}

// Property: the cache never exceeds its capacity and always contains the
// most recently used entries of a random workload.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw)%32 + 1
		c := New(capacity, 64)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			lpn := flash.LPN(rng.Intn(100))
			switch rng.Intn(4) {
			case 0:
				c.Lookup(lpn)
			case 1:
				c.Remove(lpn)
			case 2:
				if c.CheckpointDue() {
					c.Checkpoint()
				}
			default:
				c.Put(Entry{Logical: lpn, Physical: flash.PPN(i), Dirty: rng.Intn(2) == 0})
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the translation-page index is always consistent with the cache
// contents.
func TestQuickTranslationIndexConsistency(t *testing.T) {
	f := func(seed int64) bool {
		c := New(16, 8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			lpn := flash.LPN(rng.Intn(64))
			if rng.Intn(3) == 0 {
				c.Remove(lpn)
			} else {
				c.Put(Entry{Logical: lpn, Dirty: rng.Intn(2) == 0})
			}
		}
		// Rebuild the expected index from Entries and compare.
		want := map[int][]flash.LPN{}
		for _, e := range c.Entries() {
			tp := c.TranslationPageOf(e.Logical)
			want[tp] = append(want[tp], e.Logical)
		}
		for tp, lpns := range want {
			got := c.EntriesOnTranslationPage(tp)
			if len(got) != len(lpns) {
				return false
			}
			gotSet := map[flash.LPN]bool{}
			for _, e := range got {
				gotSet[e.Logical] = true
			}
			for _, l := range lpns {
				if !gotSet[l] {
					return false
				}
			}
		}
		// No phantom pages in the index.
		total := 0
		for tp := 0; tp < 8; tp++ {
			total += len(c.EntriesOnTranslationPage(tp))
		}
		return total == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every dirty entry is either returned by one of two consecutive
// checkpoints or was updated in between, which is the invariant behind the
// 2C bound on the recovery backwards scan.
func TestQuickCheckpointCoverage(t *testing.T) {
	f := func(seed int64) bool {
		c := New(32, 64)
		rng := rand.New(rand.NewSource(seed))
		dirtySince := map[flash.LPN]bool{} // dirty entries never touched again
		for i := 0; i < 32; i++ {
			lpn := flash.LPN(rng.Intn(40))
			c.Put(Entry{Logical: lpn, Dirty: true})
			dirtySince[lpn] = true
		}
		first := c.Checkpoint()
		reported := map[flash.LPN]bool{}
		for _, e := range first {
			reported[e.Logical] = true
		}
		second := c.Checkpoint()
		for _, e := range second {
			reported[e.Logical] = true
		}
		for lpn, stillCached := range dirtySince {
			if !stillCached {
				continue
			}
			if c.Contains(lpn) && !reported[lpn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEntriesSortedHelper(t *testing.T) {
	// Documented behaviour: EntriesOnTranslationPage gives no ordering
	// guarantee; verify callers can sort deterministically.
	c := newTestCache(10)
	for _, l := range []flash.LPN{9, 3, 7} {
		c.Put(Entry{Logical: l})
	}
	got := c.EntriesOnTranslationPage(0)
	sort.Slice(got, func(i, j int) bool { return got[i].Logical < got[j].Logical })
	want := []flash.LPN{3, 7, 9}
	for i := range want {
		if got[i].Logical != want[i] {
			t.Fatalf("sorted entries = %+v", got)
		}
	}
}

func BenchmarkPutLookup(b *testing.B) {
	c := New(1<<16, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lpn := flash.LPN(i & (1<<17 - 1))
		c.Put(Entry{Logical: lpn, Physical: flash.PPN(i), Dirty: true})
		c.Lookup(lpn)
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	c := New(1<<12, 1024)
	for i := 0; i < 1<<12; i++ {
		c.Put(Entry{Logical: flash.LPN(i), Dirty: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Checkpoint()
	}
}
