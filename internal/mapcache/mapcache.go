package mapcache

import (
	"container/list"
	"fmt"
	"sort"

	"geckoftl/internal/flash"
)

// Entry is a cached mapping entry for one logical page.
type Entry struct {
	// Logical is the logical page number this entry maps.
	Logical flash.LPN
	// Physical is the flash page currently holding the logical page.
	Physical flash.PPN
	// Dirty is set when the cached physical address differs from (or may
	// differ from) the one recorded in the flash-resident translation table.
	Dirty bool
	// UIP (Unidentified Invalid Page) is set when some before-image of this
	// logical page has not yet been reported to the page-validity store
	// (Section 4.1).
	UIP bool
	// Uncertain is set on entries recreated during recovery whose Dirty/UIP
	// flags are assumed true but unverified (Appendix C.3). The first
	// synchronization operation involving the entry performs the extra
	// checks and clears the flag.
	Uncertain bool
	// Trimmed rides along with UIP when the pending before-image
	// identification was caused by a host trim rather than an overwrite, so
	// that the eventual report is attributed to the trim statistics. It is
	// cleared together with UIP.
	Trimmed bool
}

// element is what the LRU list stores: either a real mapping entry or a
// checkpoint symbol (Section 4.3).
type element struct {
	entry      Entry
	checkpoint bool
}

// EvictionStats counts cache-management events; the FTL uses them to decide
// when synchronization operations and checkpoints were triggered.
type EvictionStats struct {
	// Hits and Misses count Lookup outcomes.
	Hits, Misses int64
	// Evictions counts entries removed because the cache was full.
	Evictions int64
	// DirtyEvictions counts evictions of dirty entries, each of which forces
	// a synchronization operation.
	DirtyEvictions int64
	// Checkpoints counts checkpoint scans performed.
	Checkpoints int64
}

// Cache is an LRU cache of mapping entries with capacity C. It is not safe
// for concurrent use; the FTL serializes access.
type Cache struct {
	capacity int

	// order is the LRU list; front = most recently used.
	order *list.List
	// byLPN indexes list elements holding real entries.
	byLPN map[flash.LPN]*list.Element

	// byTP groups cached logical pages by translation page so that a
	// synchronization operation can find "all dirty mapping entries in the
	// LRU cache that belong to the same translation page as the evicted
	// entry" without scanning the whole cache.
	byTP         map[int]map[flash.LPN]struct{}
	entriesPerTP int

	// opsSinceCheckpoint counts inserts/updates since the last checkpoint;
	// GeckoFTL takes a checkpoint every C operations (Section 4.3).
	opsSinceCheckpoint int

	stats EvictionStats
}

// New creates a cache that holds at most capacity mapping entries.
// entriesPerTranslationPage is the number of mapping entries stored on one
// translation page; it determines which translation page a logical page
// belongs to. It panics if either argument is not positive.
func New(capacity, entriesPerTranslationPage int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("mapcache: capacity %d must be positive", capacity))
	}
	if entriesPerTranslationPage <= 0 {
		panic(fmt.Sprintf("mapcache: entries per translation page %d must be positive", entriesPerTranslationPage))
	}
	return &Cache{
		capacity:     capacity,
		order:        list.New(),
		byLPN:        make(map[flash.LPN]*list.Element),
		byTP:         make(map[int]map[flash.LPN]struct{}),
		entriesPerTP: entriesPerTranslationPage,
	}
}

// Capacity returns C, the maximum number of mapping entries.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached mapping entries (checkpoint symbols are
// not counted).
func (c *Cache) Len() int { return len(c.byLPN) }

// Stats returns a copy of the cache-management counters.
func (c *Cache) Stats() EvictionStats { return c.stats }

// OpsSinceCheckpoint returns the number of inserts or updates since the last
// checkpoint scan.
func (c *Cache) OpsSinceCheckpoint() int { return c.opsSinceCheckpoint }

// TranslationPageOf returns the index of the translation page that holds the
// mapping entry for the given logical page.
func (c *Cache) TranslationPageOf(lpn flash.LPN) int {
	return int(int64(lpn) / int64(c.entriesPerTP))
}

func (c *Cache) indexAdd(lpn flash.LPN) {
	tp := c.TranslationPageOf(lpn)
	set, ok := c.byTP[tp]
	if !ok {
		set = make(map[flash.LPN]struct{})
		c.byTP[tp] = set
	}
	set[lpn] = struct{}{}
}

func (c *Cache) indexRemove(lpn flash.LPN) {
	tp := c.TranslationPageOf(lpn)
	if set, ok := c.byTP[tp]; ok {
		delete(set, lpn)
		if len(set) == 0 {
			delete(c.byTP, tp)
		}
	}
}

// Lookup returns the entry for lpn and whether it is cached. A hit promotes
// the entry to most-recently-used.
func (c *Cache) Lookup(lpn flash.LPN) (Entry, bool) {
	el, ok := c.byLPN[lpn]
	if !ok {
		c.stats.Misses++
		return Entry{}, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	return el.Value.(*element).entry, true
}

// Peek returns the entry for lpn without affecting LRU order or hit/miss
// statistics. Recovery and invariant checks use it.
func (c *Cache) Peek(lpn flash.LPN) (Entry, bool) {
	el, ok := c.byLPN[lpn]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(*element).entry, true
}

// Contains reports whether lpn is cached, without touching LRU order.
func (c *Cache) Contains(lpn flash.LPN) bool {
	_, ok := c.byLPN[lpn]
	return ok
}

// Evicted describes an entry that had to leave the cache to make room.
type Evicted struct {
	Entry Entry
	// Valid is false when no eviction was necessary.
	Valid bool
}

// Put inserts or updates the entry and promotes it to most-recently-used.
// If the cache is full, the least-recently-used real entry is evicted and
// returned so that the FTL can run a synchronization operation when the
// victim is dirty. Checkpoint symbols are silently discarded when they reach
// the LRU end during eviction.
func (c *Cache) Put(e Entry) Evicted {
	if e.Logical < 0 {
		panic(fmt.Sprintf("mapcache: negative logical page %d", e.Logical))
	}
	c.opsSinceCheckpoint++
	if el, ok := c.byLPN[e.Logical]; ok {
		el.Value.(*element).entry = e
		c.order.MoveToFront(el)
		return Evicted{}
	}
	evicted := c.makeRoom()
	el := c.order.PushFront(&element{entry: e})
	c.byLPN[e.Logical] = el
	c.indexAdd(e.Logical)
	return evicted
}

// makeRoom evicts the least-recently-used real entry if the cache is full.
func (c *Cache) makeRoom() Evicted {
	if len(c.byLPN) < c.capacity {
		return Evicted{}
	}
	for el := c.order.Back(); el != nil; {
		prev := el.Prev()
		node := el.Value.(*element)
		if node.checkpoint {
			// A checkpoint symbol at the LRU end is stale; drop it.
			c.order.Remove(el)
			el = prev
			continue
		}
		c.order.Remove(el)
		delete(c.byLPN, node.entry.Logical)
		c.indexRemove(node.entry.Logical)
		c.stats.Evictions++
		if node.entry.Dirty {
			c.stats.DirtyEvictions++
		}
		return Evicted{Entry: node.entry, Valid: true}
	}
	return Evicted{}
}

// Remove deletes the entry for lpn, reporting whether it was present.
func (c *Cache) Remove(lpn flash.LPN) bool {
	el, ok := c.byLPN[lpn]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.byLPN, lpn)
	c.indexRemove(lpn)
	return true
}

// Update applies fn to the cached entry for lpn, if present, and reports
// whether it was. The entry is not promoted; Update models flag maintenance
// rather than an application access.
func (c *Cache) Update(lpn flash.LPN, fn func(*Entry)) bool {
	el, ok := c.byLPN[lpn]
	if !ok {
		return false
	}
	fn(&el.Value.(*element).entry)
	return true
}

// EntriesOnTranslationPage returns the cached entries whose logical pages
// belong to the given translation page, in ascending logical order. This is
// the range query used by synchronization operations; the pinned order
// means the entries a synchronization writes back — durable flash state —
// do not depend on map iteration order.
func (c *Cache) EntriesOnTranslationPage(tp int) []Entry {
	set, ok := c.byTP[tp]
	if !ok {
		return nil
	}
	out := make([]Entry, 0, len(set))
	for lpn := range set {
		if el, ok := c.byLPN[lpn]; ok {
			out = append(out, el.Value.(*element).entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Logical < out[j].Logical })
	return out
}

// DirtyEntriesOnTranslationPage returns only the dirty cached entries on the
// given translation page.
func (c *Cache) DirtyEntriesOnTranslationPage(tp int) []Entry {
	all := c.EntriesOnTranslationPage(tp)
	out := all[:0]
	for _, e := range all {
		if e.Dirty {
			out = append(out, e)
		}
	}
	return out
}

// DirtyCount returns the number of dirty entries in the cache. LazyFTL and
// IB-FTL bound this number during runtime; GeckoFTL does not.
func (c *Cache) DirtyCount() int {
	n := 0
	for _, el := range c.byLPN {
		if el.Value.(*element).entry.Dirty {
			n++
		}
	}
	return n
}

// ForEach calls fn on every cached entry in most-recently-used-first order.
// It stops early if fn returns false.
func (c *Cache) ForEach(fn func(Entry) bool) {
	for el := c.order.Front(); el != nil; el = el.Next() {
		node := el.Value.(*element)
		if node.checkpoint {
			continue
		}
		if !fn(node.entry) {
			return
		}
	}
}

// Entries returns all cached entries in most-recently-used-first order.
func (c *Cache) Entries() []Entry {
	out := make([]Entry, 0, len(c.byLPN))
	c.ForEach(func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// LeastRecentlyUsed returns the entry that would be evicted next, if any.
func (c *Cache) LeastRecentlyUsed() (Entry, bool) {
	for el := c.order.Back(); el != nil; el = el.Prev() {
		node := el.Value.(*element)
		if !node.checkpoint {
			return node.entry, true
		}
	}
	return Entry{}, false
}

// Checkpoint implements the runtime checkpoint of Section 4.3. It inserts a
// fresh checkpoint symbol at the most-recently-used end, then scans the LRU
// queue from the end backwards until it finds and removes the symbol inserted
// by the previous checkpoint (or exhausts the queue on the first checkpoint).
// Every dirty mapping entry encountered along the way is returned so that the
// FTL can synchronize it; the entries themselves are left in place (the FTL
// marks them clean through Update once synchronized).
//
// The operation counter used to schedule checkpoints is reset.
func (c *Cache) Checkpoint() []Entry {
	c.stats.Checkpoints++
	c.opsSinceCheckpoint = 0

	var stale []Entry
	for el := c.order.Back(); el != nil; {
		prev := el.Prev()
		node := el.Value.(*element)
		if node.checkpoint {
			c.order.Remove(el)
			break
		}
		if node.entry.Dirty {
			stale = append(stale, node.entry)
		}
		el = prev
	}
	c.order.PushFront(&element{checkpoint: true})
	return stale
}

// CheckpointDue reports whether C or more inserts/updates have happened since
// the last checkpoint.
func (c *Cache) CheckpointDue() bool { return c.opsSinceCheckpoint >= c.capacity }

// Clear drops every entry and checkpoint symbol. It models the loss of
// integrated RAM at power failure.
func (c *Cache) Clear() {
	c.order.Init()
	c.byLPN = make(map[flash.LPN]*list.Element)
	c.byTP = make(map[int]map[flash.LPN]struct{})
	c.opsSinceCheckpoint = 0
}

// RAMBytes returns the integrated-RAM footprint the paper's models charge for
// the cache: bytesPerEntry bytes for each of the C entries of capacity
// (the paper assumes 8 bytes per cached entry in Section 5).
func (c *Cache) RAMBytes(bytesPerEntry int) int64 {
	return int64(c.capacity) * int64(bytesPerEntry)
}
