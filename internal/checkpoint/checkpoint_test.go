package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// sample builds a small but structurally interesting checkpoint: several
// sections, one of them empty, IDs out of numeric order (order is positional,
// not sorted).
func sample() *File {
	return &File{
		Version: Version,
		Sections: []Section{
			{ID: 0x01, Payload: []byte{1, 2, 3, 4}},
			{ID: 0x0310, Payload: nil},
			{ID: 0x10, Payload: bytes.Repeat([]byte{0xAB}, 100)},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sample()
	data := Encode(f)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Version != f.Version {
		t.Fatalf("version %d, want %d", got.Version, f.Version)
	}
	if len(got.Sections) != len(f.Sections) {
		t.Fatalf("%d sections, want %d", len(got.Sections), len(f.Sections))
	}
	for i, s := range got.Sections {
		if s.ID != f.Sections[i].ID || !bytes.Equal(s.Payload, f.Sections[i].Payload) {
			t.Errorf("section %d: got id %#x payload %v", i, s.ID, s.Payload)
		}
	}
	// Encoding is canonical: re-encoding the decoded file reproduces the
	// exact input bytes.
	if !bytes.Equal(Encode(got), data) {
		t.Error("re-encode of decoded file differs from input")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := Encode(sample())
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:headerSize-1] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(magic):], Version+1)
			return b
		}},
		{"zero version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(magic):], 0)
			return b
		}},
		{"truncated framing", func(b []byte) []byte { return b[:headerSize+sectionOverhead-1] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"overclaimed length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize+4:], 1<<31)
			return b
		}},
		{"payload bit flip", func(b []byte) []byte { b[headerSize+8] ^= 0x01; return b }},
		{"checksum bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"id bit flip", func(b []byte) []byte { b[headerSize] ^= 0x01; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			f, err := Decode(data)
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("Decode error = %v, want ErrInvalid", err)
			}
			if f != nil {
				t.Fatal("Decode returned a partial file alongside an error")
			}
		})
	}
}

func TestBoundaries(t *testing.T) {
	f := sample()
	data := Encode(f)
	bounds, err := Boundaries(data)
	if err != nil {
		t.Fatalf("Boundaries: %v", err)
	}
	// 0, end of magic, end of header, then one per section.
	if want := 3 + len(f.Sections); len(bounds) != want {
		t.Fatalf("%d boundaries, want %d", len(bounds), want)
	}
	if bounds[0] != 0 || bounds[1] != len(magic) || bounds[2] != headerSize {
		t.Fatalf("prefix boundaries %v", bounds[:3])
	}
	if last := bounds[len(bounds)-1]; last != len(data) {
		t.Fatalf("final boundary %d, want %d", last, len(data))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("boundaries not strictly increasing: %v", bounds)
		}
	}
	// Cuts inside the header are rejected outright. A cut exactly at a
	// section boundary yields a structurally valid file with fewer
	// sections — the container cannot see missing trailing sections; the
	// consumer's section-count check rejects those — while a cut one byte
	// off a boundary breaks framing or a checksum and is rejected here.
	for i, cut := range bounds[:len(bounds)-1] {
		f, err := Decode(data[:cut])
		if cut < headerSize {
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("truncation at %d accepted (err %v)", cut, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("boundary cut at %d rejected: %v", cut, err)
			continue
		}
		if want := i - 2; len(f.Sections) != want {
			t.Errorf("boundary cut at %d decoded %d sections, want %d", cut, len(f.Sections), want)
		}
		if _, err := Decode(data[:cut+1]); !errors.Is(err, ErrInvalid) {
			t.Errorf("off-boundary cut at %d accepted (err %v)", cut+1, err)
		}
	}
	if _, err := Boundaries(data[:len(data)-1]); !errors.Is(err, ErrInvalid) {
		t.Errorf("Boundaries of a torn file: %v, want ErrInvalid", err)
	}
}

func TestWriteFileReadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	f := sample()
	n, err := WriteFile(path, f)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if want := int64(len(Encode(f))); n != want {
		t.Fatalf("WriteFile reported %d bytes, want %d", n, want)
	}
	got, size, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if size != n {
		t.Fatalf("ReadFile size %d, want %d", size, n)
	}
	if !bytes.Equal(Encode(got), Encode(f)) {
		t.Error("round-tripped file differs")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after WriteFile, want 1", len(entries))
	}
	// Atomic replace: a second write overwrites in place.
	if _, err := WriteFile(path, &File{Version: Version}); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _, err = ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile after overwrite: %v", err)
	}
	if len(got.Sections) != 0 {
		t.Errorf("overwritten file has %d sections, want 0", len(got.Sections))
	}
}

func TestReadFileMissing(t *testing.T) {
	_, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
	if errors.Is(err, ErrInvalid) {
		t.Fatal("a missing file must not classify as an invalid checkpoint")
	}
}

func TestReadFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}
