package checkpoint

import (
	"encoding/binary"
	"fmt"
)

// Writer builds a section payload. All integers are little-endian, matching
// the container framing. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement), so sentinel values
// like -1 round-trip exactly.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes a section payload written by Writer. It is overrun-safe:
// reading past the end sets a sticky failure and returns zero values, and
// Done reports whether the payload parsed cleanly and completely. Callers
// check Done once at the end instead of checking every read.
type Reader struct {
	data []byte
	off  int
	fail bool
}

// NewReader wraps a payload for reading.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// take returns the next n bytes, or fails.
func (r *Reader) take(n int) []byte {
	if r.fail || n > len(r.data)-r.off {
		r.fail = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool; any value other than 0 or 1 is a failure.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail = true
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Count reads a uint32 element count for a sequence whose elements encode
// to at least elemBytes each, and fails unless that many elements can still
// fit in the remaining payload. Pre-allocating `Count(n)` elements is
// therefore bounded by the input size even for hostile payloads.
func (r *Reader) Count(elemBytes int) int {
	n := r.U32()
	if elemBytes < 1 {
		elemBytes = 1
	}
	if r.fail || uint64(n) > uint64(len(r.data)-r.off)/uint64(elemBytes) {
		r.fail = true
		return 0
	}
	return int(n)
}

// Done returns nil when every read succeeded and the payload was consumed
// exactly; otherwise it returns an error wrapping ErrInvalid.
func (r *Reader) Done() error {
	if r.fail {
		return fmt.Errorf("%w: truncated or malformed section payload", ErrInvalid)
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes in section payload", ErrInvalid, len(r.data)-r.off)
	}
	return nil
}
