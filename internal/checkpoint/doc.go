// Package checkpoint implements the versioned, checksummed container format
// for durable FTL metadata snapshots.
//
// GeckoRec makes crash recovery cheap, but a clean shutdown should not pay
// for a crash it did not have: a checkpoint written at Close/Flush lets the
// next start skip the recovery scan entirely and reload its RAM state at
// host-read bandwidth. Because a checkpoint that loads wrong is strictly
// worse than no checkpoint at all, the format is built so that every
// malformation — truncation, bit flips, version skew, staleness — is
// detected and surfaces as ErrInvalid, letting the caller fall back to
// GeckoRec instead of loading partial state.
//
// On-disk layout (all integers little-endian):
//
//	offset 0:  magic "GFTLCKPT" (8 bytes)
//	offset 8:  format version (uint32)
//	offset 12: sections until end of file, each framed as
//	           id (uint32) | len (uint32) | payload (len bytes) | crc (uint32)
//
// The CRC is CRC-32C (Castagnoli) over the section's id, length, and
// payload bytes, so a flipped bit anywhere in a section — including its
// framing — fails that section's checksum, and a flipped length either
// misaligns the checksum or runs past the end of the file. The file must
// end exactly on a section boundary; trailing garbage is invalid.
//
// The package knows nothing about what the sections mean. Section payloads
// are produced and consumed by internal/ftl, which encodes per-shard FTL
// state (block manager, GMD, mapping cache, Logarithmic Gecko run
// directory, heat classifier) with the Writer/Reader helpers and validates
// the decoded state against device truth before importing any of it.
package checkpoint
