package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Version is the current on-disk format version. Decoders reject any other
// value: an unknown future version is indistinguishable from garbage to an
// old decoder, and the correct response to both is a cold start.
const Version = 1

// magic identifies a checkpoint file. Exactly 8 bytes.
const magic = "GFTLCKPT"

const (
	// headerSize is the fixed prefix before the first section: magic plus
	// the version word.
	headerSize = len(magic) + 4
	// sectionOverhead is the framing cost of one section: id, length and
	// checksum words. Also the minimum encoded size of a section, which
	// bounds how many sections a decoder may need to allocate for.
	sectionOverhead = 12
)

// ErrInvalid reports that a byte stream is not a loadable checkpoint: bad
// magic, version skew, truncation, checksum mismatch, or framing damage.
var ErrInvalid = errors.New("checkpoint: invalid checkpoint")

// castagnoli is the CRC-32C table used for section checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section is one length-prefixed, individually checksummed unit of a
// checkpoint. The container does not interpret IDs or payloads.
type Section struct {
	ID      uint32
	Payload []byte
}

// File is a decoded checkpoint: a format version plus its sections in file
// order. Section order is part of the format — producers write a fixed
// order and consumers are entitled to rely on it.
type File struct {
	Version  uint32
	Sections []Section
}

// Encode serializes a checkpoint into the on-disk byte format.
func Encode(f *File) []byte {
	size := headerSize
	for _, s := range f.Sections {
		size += sectionOverhead + len(s.Payload)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, f.Version)
	for _, s := range f.Sections {
		start := len(buf)
		buf = binary.LittleEndian.AppendUint32(buf, s.ID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Payload)))
		buf = append(buf, s.Payload...)
		sum := crc32.Checksum(buf[start:], castagnoli)
		buf = binary.LittleEndian.AppendUint32(buf, sum)
	}
	return buf
}

// Decode parses and validates the on-disk byte format. Payload slices alias
// the input — Decode allocates only the section table, and never more of it
// than the input length can justify, so hostile inputs cannot force
// unbounded allocation. Any malformation returns an error wrapping
// ErrInvalid and a nil File.
func Decode(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrInvalid, len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalid, data[:len(magic)])
	}
	version := binary.LittleEndian.Uint32(data[len(magic):headerSize])
	if version != Version {
		return nil, fmt.Errorf("%w: format version %d, this build reads version %d", ErrInvalid, version, Version)
	}
	body := data[headerSize:]
	f := &File{
		Version:  version,
		Sections: make([]Section, 0, len(body)/sectionOverhead),
	}
	for off := 0; off < len(body); {
		rest := body[off:]
		if len(rest) < sectionOverhead {
			return nil, fmt.Errorf("%w: truncated section framing at offset %d", ErrInvalid, headerSize+off)
		}
		id := binary.LittleEndian.Uint32(rest)
		n := binary.LittleEndian.Uint32(rest[4:])
		if uint64(n) > uint64(len(rest)-sectionOverhead) {
			return nil, fmt.Errorf("%w: section %#x claims %d payload bytes with %d remaining", ErrInvalid, id, n, len(rest)-sectionOverhead)
		}
		payload := rest[8 : 8+n : 8+n]
		sum := binary.LittleEndian.Uint32(rest[8+n:])
		if got := crc32.Checksum(rest[:8+n], castagnoli); got != sum {
			return nil, fmt.Errorf("%w: section %#x checksum mismatch (stored %#x, computed %#x)", ErrInvalid, id, sum, got)
		}
		f.Sections = append(f.Sections, Section{ID: id, Payload: payload})
		off += sectionOverhead + int(n)
	}
	return f, nil
}

// Boundaries returns the byte offsets at which a valid checkpoint can be
// cleanly cut: 0, the end of the magic, the end of the header, and the end
// of every section. The final entry is len(data). Corruption tests truncate
// at (and around) each of these to prove that every torn prefix is
// rejected. The input must itself be a valid checkpoint.
func Boundaries(data []byte) ([]int, error) {
	f, err := Decode(data)
	if err != nil {
		return nil, err
	}
	bounds := []int{0, len(magic), headerSize}
	off := headerSize
	for _, s := range f.Sections {
		off += sectionOverhead + len(s.Payload)
		bounds = append(bounds, off)
	}
	return bounds, nil
}

// WriteFile atomically replaces path with the encoded checkpoint: the bytes
// are written to a temporary file in the same directory, synced, and
// renamed over the destination. A crash mid-write therefore leaves the
// previous checkpoint (or no file) in place, never a torn one. It returns
// the encoded size in bytes.
func WriteFile(path string, f *File) (int64, error) {
	data := Encode(f)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("checkpoint: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("checkpoint: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("checkpoint: chmod %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("checkpoint: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	return int64(len(data)), nil
}

// ReadFile reads and decodes a checkpoint file. Read errors (including a
// missing file, which callers should treat as an ordinary cold start) come
// back as the underlying OS error; content errors wrap ErrInvalid.
func ReadFile(path string) (*File, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	f, err := Decode(data)
	if err != nil {
		return nil, 0, err
	}
	return f, int64(len(data)), nil
}
