package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint decoder. The
// invariants: Decode never panics, never allocates beyond what the input
// length justifies (the section table is capped at len/sectionOverhead
// entries and payloads alias the input), and either round-trips exactly —
// Encode(Decode(data)) == data, the format is canonical — or returns an
// error wrapping ErrInvalid with a nil File.
func FuzzCheckpointDecode(f *testing.F) {
	valid := Encode(sample())
	f.Add(valid)
	f.Add(Encode(&File{Version: Version}))
	f.Add(Encode(&File{Version: Version, Sections: []Section{{ID: 0x01, Payload: make([]byte, 64)}}}))
	// Hand-mutated seeds: each class of damage the decoder must reject.
	truncated := append([]byte(nil), valid...)
	f.Add(truncated[:len(truncated)-1])
	f.Add(truncated[:headerSize])
	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)
	futureVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(futureVersion[len(magic):], Version+1)
	f.Add(futureVersion)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	overclaim := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(overclaim[headerSize+4:], 0xFFFFFFFF)
	f.Add(overclaim)
	f.Add([]byte{})
	f.Add([]byte(magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("Decode error %v does not wrap ErrInvalid", err)
			}
			if decoded != nil {
				t.Fatal("Decode returned partial state alongside an error")
			}
			return
		}
		if decoded.Version != Version {
			t.Fatalf("accepted version %d", decoded.Version)
		}
		if !bytes.Equal(Encode(decoded), data) {
			t.Fatal("accepted input does not round-trip canonically")
		}
	})
}
