package checkpoint

import (
	"errors"
	"fmt"
	"os"
)

// ErrLocked is returned by Acquire when the path's lock file already exists:
// another live device owns the checkpoint path.
var ErrLocked = errors.New("checkpoint: path is locked")

// Lock is a held host-side lock on a checkpoint path. Two devices flushing
// checkpoints to the same file would silently clobber each other's warm
// restarts — the loser's metadata would describe a different device's flash —
// so the path is owned exclusively for a device's lifetime.
//
// The lock is a sibling file created with O_CREATE|O_EXCL, which is atomic on
// every platform the simulator runs on and needs no extra dependencies. A
// crashed process leaves the file behind; removing it is the operator's
// explicit acknowledgement that no device is live, exactly as with a stale
// pidfile.
type Lock struct {
	path string
}

// LockPath returns the lock file guarding a checkpoint path.
func LockPath(path string) string { return path + ".lock" }

// Acquire takes the exclusive lock for path, failing with ErrLocked when a
// live (or crashed) owner already holds it.
func Acquire(path string) (*Lock, error) {
	lp := LockPath(path)
	f, err := os.OpenFile(lp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w: %s exists (remove it if no other device is live)", ErrLocked, lp)
		}
		return nil, fmt.Errorf("checkpoint: acquiring lock %s: %w", lp, err)
	}
	// The content is diagnostic only; ownership is the file's existence.
	fmt.Fprintf(f, "pid %d\n", os.Getpid())
	if err := f.Close(); err != nil {
		os.Remove(lp)
		return nil, fmt.Errorf("checkpoint: acquiring lock %s: %w", lp, err)
	}
	return &Lock{path: lp}, nil
}

// Release removes the lock file. Safe on a nil receiver and idempotent, so
// every Open error path can release unconditionally.
func (l *Lock) Release() error {
	if l == nil || l.path == "" {
		return nil
	}
	path := l.path
	l.path = ""
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: releasing lock %s: %w", path, err)
	}
	return nil
}
