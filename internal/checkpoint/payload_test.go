package checkpoint

import (
	"errors"
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0x7F)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.I64(-1)
	w.I64(42)
	w.U32(3) // element count
	for i := 0; i < 3; i++ {
		w.U64(uint64(i))
	}

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0x7F {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -1 {
		t.Errorf("I64 = %d, want -1 (sentinel round trip)", got)
	}
	if got := r.I64(); got != 42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Count(8); got != 3 {
		t.Errorf("Count = %d", got)
	}
	for i := 0; i < 3; i++ {
		if got := r.U64(); got != uint64(i) {
			t.Errorf("element %d = %d", i, got)
		}
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderOverrunIsSticky(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32() // overruns
	if got := r.U8(); got != 0 {
		t.Errorf("read after overrun = %d, want 0", got)
	}
	if err := r.Done(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Done = %v, want ErrInvalid", err)
	}
}

func TestReaderRejectsBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	if r.Bool() {
		t.Error("bad bool decoded as true")
	}
	if err := r.Done(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Done = %v, want ErrInvalid", err)
	}
}

func TestReaderRejectsTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.U8()
	if err := r.Done(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Done = %v, want ErrInvalid", err)
	}
}

// TestCountBoundsAllocation pins the allocation bound: a count word claiming
// more elements than the remaining payload could possibly hold must fail
// instead of driving a huge make().
func TestCountBoundsAllocation(t *testing.T) {
	var w Writer
	w.U32(1 << 30) // claims a billion 8-byte elements in an empty payload
	r := NewReader(w.Bytes())
	if got := r.Count(8); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if err := r.Done(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Done = %v, want ErrInvalid", err)
	}
}
