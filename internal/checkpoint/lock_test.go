package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLockAcquireRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	l, err := Acquire(path)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := os.Stat(LockPath(path)); err != nil {
		t.Fatalf("lock file missing after Acquire: %v", err)
	}
	if _, err := Acquire(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Acquire = %v; want ErrLocked", err)
	}
	if err := l.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := os.Stat(LockPath(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lock file survived Release: %v", err)
	}
	// Released, the path can be taken again.
	l2, err := Acquire(path)
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestLockReleaseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	l, err := Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Release(); err != nil {
			t.Fatalf("Release %d: %v", i, err)
		}
	}
	var nilLock *Lock
	if err := nilLock.Release(); err != nil {
		t.Fatalf("nil Release: %v", err)
	}
}

func TestLockAcquireUncreatablePath(t *testing.T) {
	// The lock's parent directory does not exist: the failure is an ordinary
	// error, not ErrLocked.
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "ckpt.bin")
	if _, err := Acquire(path); err == nil || errors.Is(err, ErrLocked) {
		t.Fatalf("Acquire in a missing directory = %v; want a non-ErrLocked error", err)
	}
}
