package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// The closed-loop generators in this package answer "which page next?"; the
// open-loop machinery here answers "when does the next operation arrive?",
// independent of when earlier operations complete. That independence is what
// makes overload expressible: a closed-loop driver can never offer more load
// than the device absorbs, an open-loop one keeps arriving on schedule and
// exposes the saturation knee and the tail-latency collapse behind it.

// ArrivalProcess generates the inter-arrival gaps of an open-loop stream.
// Implementations are deterministic for a given seed.
type ArrivalProcess interface {
	// NextGap returns the virtual-time gap to the next arrival; always >= 0.
	NextGap() time.Duration
	// Name identifies the process in experiment output.
	Name() string
}

// Poisson is a Poisson arrival process: independent exponentially distributed
// inter-arrival gaps at a fixed mean rate, the memoryless baseline of open
// systems.
type Poisson struct {
	rng  *rand.Rand
	mean float64 // mean gap in nanoseconds
}

// NewPoisson creates a Poisson arrival process with the given rate in
// operations per second. It returns an error if rate is not positive.
func NewPoisson(rate float64, seed int64) (*Poisson, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %g must be positive", rate)
	}
	return &Poisson{rng: rand.New(rand.NewSource(seed)), mean: float64(time.Second) / rate}, nil
}

// NextGap returns an exponentially distributed gap with the configured mean.
func (p *Poisson) NextGap() time.Duration {
	return time.Duration(p.rng.ExpFloat64() * p.mean)
}

// Name implements ArrivalProcess.
func (p *Poisson) Name() string { return "poisson" }

// Bursty is a two-state modulated Poisson process (on/off MMPP): the stream
// alternates between a burst phase arriving at burst × rate and a lull phase
// arriving at rate ÷ burst, with exponentially distributed phase durations.
// The long-run mean rate sits between the two; the bursts are what stress a
// queue's admission control in ways a smooth Poisson stream cannot.
type Bursty struct {
	rng        *rand.Rand
	burstMean  float64 // mean gap during a burst, nanoseconds
	lullMean   float64 // mean gap during a lull, nanoseconds
	dwellMean  float64 // mean phase duration, nanoseconds
	inBurst    bool
	phaseLeft  float64 // nanoseconds remaining in the current phase
	burstRatio float64
}

// NewBursty creates a bursty arrival process: rate is the nominal rate in
// operations per second, burst > 1 is the burst-to-lull rate ratio, and dwell
// is the mean duration of each phase. It returns an error for a non-positive
// rate or dwell, or a burst ratio not greater than 1.
func NewBursty(rate, burst float64, dwell time.Duration, seed int64) (*Bursty, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %g must be positive", rate)
	}
	if burst <= 1 {
		return nil, fmt.Errorf("workload: burst ratio %g must be greater than 1", burst)
	}
	if dwell <= 0 {
		return nil, fmt.Errorf("workload: phase dwell %v must be positive", dwell)
	}
	mean := float64(time.Second) / rate
	b := &Bursty{
		rng:        rand.New(rand.NewSource(seed)),
		burstMean:  mean / burst,
		lullMean:   mean * burst,
		dwellMean:  float64(dwell),
		burstRatio: burst,
	}
	b.phaseLeft = b.rng.ExpFloat64() * b.dwellMean
	return b, nil
}

// NextGap returns the next inter-arrival gap, advancing through burst and
// lull phases as their exponentially distributed durations expire.
func (b *Bursty) NextGap() time.Duration {
	mean := b.lullMean
	if b.inBurst {
		mean = b.burstMean
	}
	gap := b.rng.ExpFloat64() * mean
	b.phaseLeft -= gap
	for b.phaseLeft <= 0 {
		b.inBurst = !b.inBurst
		b.phaseLeft += b.rng.ExpFloat64() * b.dwellMean
	}
	return time.Duration(gap)
}

// Name implements ArrivalProcess.
func (b *Bursty) Name() string { return fmt.Sprintf("bursty(%g)", b.burstRatio) }

// Arrival is one operation of an open-loop stream with its arrival instant.
type Arrival struct {
	// Op is the operation (page and kind) from the wrapped generator.
	Op Op
	// At is the operation's virtual arrival instant, measured from the
	// stream's origin; non-decreasing across the stream.
	At time.Duration
}

// OpenLoop pairs a page generator with an arrival process: a full open-loop
// workload, deterministic for given seeds.
type OpenLoop struct {
	gen  Generator
	proc ArrivalProcess
	now  time.Duration
}

// NewOpenLoop wraps gen's operations with proc's arrival instants. It returns
// an error if either is nil.
func NewOpenLoop(gen Generator, proc ArrivalProcess) (*OpenLoop, error) {
	if gen == nil || proc == nil {
		return nil, fmt.Errorf("workload: open-loop stream needs a generator and an arrival process")
	}
	return &OpenLoop{gen: gen, proc: proc}, nil
}

// Next returns the stream's next operation and advances the arrival clock.
func (o *OpenLoop) Next() Arrival {
	o.now += o.proc.NextGap()
	return Arrival{Op: o.gen.Next(), At: o.now}
}

// Name identifies the combined stream in experiment output.
func (o *OpenLoop) Name() string { return o.gen.Name() + "+" + o.proc.Name() }
