package workload

import "testing"

// TestSameSeedSameStream locks the determinism contract the detrand
// analyzer enforces structurally: constructing any generator twice with the
// same seed must yield byte-identical operation streams. Seed-replayability
// is what lets a failing sweep or fault schedule be reproduced from its
// logged seed alone.
func TestSameSeedSameStream(t *testing.T) {
	const (
		pages = 4096
		seed  = 42
		n     = 10_000
	)
	gens := map[string]func() (Generator, error){
		"uniform":    func() (Generator, error) { return NewUniform(pages, seed) },
		"sequential": func() (Generator, error) { return NewSequential(pages) },
		"zipfian":    func() (Generator, error) { return NewZipfian(pages, 1.2, seed) },
		"hotcold":    func() (Generator, error) { return NewHotCold(pages, 0.2, 0.8, seed) },
		"mixed": func() (Generator, error) {
			w, err := NewUniform(pages, seed)
			if err != nil {
				return nil, err
			}
			return NewMixed(w, pages, 0.3, seed)
		},
		"trimming": func() (Generator, error) {
			w, err := NewZipfian(pages, 1.2, seed)
			if err != nil {
				return nil, err
			}
			return NewTrimming(w, pages, 0.1, seed)
		},
	}
	for name, mk := range gens {
		t.Run(name, func(t *testing.T) {
			a, err := mk()
			if err != nil {
				t.Fatalf("first construction: %v", err)
			}
			b, err := mk()
			if err != nil {
				t.Fatalf("second construction: %v", err)
			}
			opsA := TakeBatch(a, n)
			opsB := TakeBatch(b, n)
			if len(opsA) != n || len(opsB) != n {
				t.Fatalf("short batches: %d and %d ops, want %d", len(opsA), len(opsB), n)
			}
			for i := range opsA {
				if opsA[i] != opsB[i] {
					t.Fatalf("op %d diverges: %+v vs %+v (same seed must replay the same stream)", i, opsA[i], opsB[i])
				}
			}
		})
	}
}

// TestDifferentSeedsDiverge is the sanity complement: distinct seeds must
// not produce the same stream (or the seed is being ignored).
func TestDifferentSeedsDiverge(t *testing.T) {
	const pages = 4096
	a, err := NewUniform(pages, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUniform(pages, 2)
	if err != nil {
		t.Fatal(err)
	}
	opsA := TakeBatch(a, 1000)
	opsB := TakeBatch(b, 1000)
	same := true
	for i := range opsA {
		if opsA[i] != opsB[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 1000-op streams; the seed is not reaching the generator")
	}
}
