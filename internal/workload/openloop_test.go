package workload

import (
	"testing"
	"time"
)

func TestPoissonValidation(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		if _, err := NewPoisson(rate, 1); err == nil {
			t.Errorf("NewPoisson(rate=%g) accepted a non-positive rate", rate)
		}
	}
}

func TestBurstyValidation(t *testing.T) {
	cases := []struct {
		name  string
		rate  float64
		burst float64
		dwell time.Duration
	}{
		{"zero rate", 0, 4, time.Second},
		{"burst ratio 1", 100, 1, time.Second},
		{"burst ratio below 1", 100, 0.5, time.Second},
		{"zero dwell", 100, 4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewBursty(tc.rate, tc.burst, tc.dwell, 1); err == nil {
				t.Error("NewBursty accepted an invalid config")
			}
		})
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate, n = 1000.0, 100000
	p, err := NewPoisson(rate, 42)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for i := 0; i < n; i++ {
		gap := p.NextGap()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		total += gap
	}
	// n arrivals over total virtual time: the empirical rate must sit near
	// the configured one (law of large numbers; the band is generous).
	empirical := float64(n) / total.Seconds()
	if empirical < 0.97*rate || empirical > 1.03*rate {
		t.Errorf("empirical rate %.0f ops/s; want within 3%% of %.0f", empirical, rate)
	}
}

func TestBurstyAlternatesPhases(t *testing.T) {
	const rate, burst = 1000.0, 8.0
	b, err := NewBursty(rate, burst, 10*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	// With a burst-to-lull ratio of 8, gaps drawn in bursts cluster well
	// below the nominal mean and lull gaps well above it; seeing both sides
	// over a long stream means the phases actually alternate.
	mean := time.Duration(float64(time.Second) / rate)
	var short, long int
	for i := 0; i < 50000; i++ {
		gap := b.NextGap()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		if gap < mean/4 {
			short++
		}
		if gap > 4*mean {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("no phase alternation: %d short gaps, %d long gaps", short, long)
	}
}

// TestOpenLoopDeterminism pins the open-loop contract the queue sweep depends
// on: the same seeds reproduce the identical arrival stream, and different
// seeds diverge.
func TestOpenLoopDeterminism(t *testing.T) {
	stream := func(procSeed, genSeed int64) []Arrival {
		gen, err := NewUniform(4096, genSeed)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := NewPoisson(500, procSeed)
		if err != nil {
			t.Fatal(err)
		}
		ol, err := NewOpenLoop(gen, proc)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Arrival, 2000)
		for i := range out {
			out[i] = ol.Next()
		}
		return out
	}
	a, b := stream(11, 22), stream(11, 22)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seeds diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := stream(12, 22)
	same := true
	for i := range a {
		if a[i].At != c[i].At {
			same = false
			break
		}
	}
	if same {
		t.Error("different arrival seeds produced an identical arrival stream")
	}
}

func TestOpenLoopArrivalsMonotone(t *testing.T) {
	gen, err := NewSequential(1024)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := NewBursty(2000, 4, 5*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	ol, err := NewOpenLoop(gen, proc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ol.Name(), "sequential+bursty(4)"; got != want {
		t.Errorf("Name() = %q; want %q", got, want)
	}
	var last time.Duration
	for i := 0; i < 10000; i++ {
		a := ol.Next()
		if a.At < last {
			t.Fatalf("arrival %d went backwards: %v after %v", i, a.At, last)
		}
		last = a.At
	}
}

func TestOpenLoopNilParts(t *testing.T) {
	gen, err := NewUniform(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOpenLoop(nil, &Poisson{}); err == nil {
		t.Error("NewOpenLoop accepted a nil generator")
	}
	if _, err := NewOpenLoop(gen, nil); err == nil {
		t.Error("NewOpenLoop accepted a nil arrival process")
	}
}
