package workload

import "geckoftl/internal/flash"

// TakeBatch draws the next n operations from a generator. Batches are the
// unit the sharded ftl.Engine dispatches across channels; the channel-sweep
// experiments and the concurrency tests build their request streams with it.
func TakeBatch(g Generator, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// SplitBatch partitions a batch into read, write and trim target pages,
// preserving order within each kind, ready to hand to the engine's
// ReadBatch/WriteBatch/TrimBatch.
func SplitBatch(ops []Op) (reads, writes, trims []flash.LPN) {
	for _, op := range ops {
		switch op.Kind {
		case OpRead:
			reads = append(reads, op.Page)
		case OpTrim:
			trims = append(trims, op.Page)
		default:
			writes = append(writes, op.Page)
		}
	}
	return reads, writes, trims
}
