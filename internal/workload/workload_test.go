package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"geckoftl/internal/flash"
)

func TestUniformStaysInRangeAndCoversSpace(t *testing.T) {
	const pages = 1000
	u := MustNewUniform(pages, 1)
	if u.Name() != "uniform" {
		t.Errorf("Name = %q", u.Name())
	}
	seen := make(map[flash.LPN]bool)
	for i := 0; i < 20000; i++ {
		op := u.Next()
		if op.Kind != OpWrite {
			t.Fatalf("uniform produced a %v", op.Kind)
		}
		if op.Page < 0 || op.Page >= pages {
			t.Fatalf("page %d out of range", op.Page)
		}
		seen[op.Page] = true
	}
	// With 20000 draws over 1000 pages, essentially every page is touched.
	if len(seen) < pages*9/10 {
		t.Errorf("uniform touched only %d of %d pages", len(seen), pages)
	}
}

func TestUniformDeterministicPerSeed(t *testing.T) {
	a, b := MustNewUniform(100, 42), MustNewUniform(100, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := MustNewUniform(100, 43)
	same := true
	a = MustNewUniform(100, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestConstructorErrorsOnBadParameters(t *testing.T) {
	cases := []struct {
		name string
		make func() error
	}{
		{"uniform zero pages", func() error { _, err := NewUniform(0, 1); return err }},
		{"sequential negative pages", func() error { _, err := NewSequential(-1); return err }},
		{"zipfian zero pages", func() error { _, err := NewZipfian(0, 1.2, 1); return err }},
		{"zipfian skew 1.0", func() error { _, err := NewZipfian(100, 1.0, 1); return err }},
		{"hotcold zero pages", func() error { _, err := NewHotCold(0, 0.2, 0.8, 1); return err }},
		{"hotcold zero fraction", func() error { _, err := NewHotCold(100, 0, 0.8, 1); return err }},
		{"hotcold probability 1.0", func() error { _, err := NewHotCold(100, 0.2, 1.0, 1); return err }},
		{"mixed zero pages", func() error { _, err := NewMixed(MustNewUniform(10, 1), 0, 0.5, 1); return err }},
		{"mixed read ratio 1.0", func() error { _, err := NewMixed(MustNewUniform(10, 1), 10, 1.0, 1); return err }},
		{"unknown name", func() error { _, err := ByName("bogus", 100, 1); return err }},
		{"byname zero pages", func() error { _, err := ByName("uniform", 0, 1); return err }},
	}
	for _, c := range cases {
		if err := c.make(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestMustConstructorsPanicOnBadParameters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewUniform(0) did not panic")
		}
	}()
	MustNewUniform(0, 1)
}

func TestByNameBuildsEveryWorkload(t *testing.T) {
	for name, want := range map[string]string{
		"":           "uniform",
		"uniform":    "uniform",
		"sequential": "sequential",
		"zipfian":    "zipfian",
		"hotcold":    "hot-cold",
	} {
		g, err := ByName(name, 1000, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", name, g.Name(), want)
		}
		for i := 0; i < 100; i++ {
			if op := g.Next(); op.Page < 0 || op.Page >= 1000 {
				t.Fatalf("ByName(%q) page %d out of range", name, op.Page)
			}
		}
	}
}

func TestSequentialWrapsAround(t *testing.T) {
	s := MustNewSequential(3)
	want := []flash.LPN{0, 1, 2, 0, 1}
	for i, w := range want {
		op := s.Next()
		if op.Page != w || op.Kind != OpWrite {
			t.Errorf("op %d = %+v, want write of %d", i, op, w)
		}
	}
	if s.Name() != "sequential" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestZipfianIsSkewedAndInRange(t *testing.T) {
	const pages = 10000
	z := MustNewZipfian(pages, 1.3, 7)
	counts := make(map[flash.LPN]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		op := z.Next()
		if op.Page < 0 || op.Page >= pages {
			t.Fatalf("page %d out of range", op.Page)
		}
		counts[op.Page]++
	}
	// Skew: the most popular page must receive far more than the uniform
	// share of draws.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := draws / pages
	if max < 20*uniformShare {
		t.Errorf("most popular page got %d draws, uniform share is %d; not skewed enough", max, uniformShare)
	}
	if z.Name() != "zipfian" {
		t.Errorf("Name = %q", z.Name())
	}
}

func TestHotColdSkew(t *testing.T) {
	const pages = 1000
	h := MustNewHotCold(pages, 0.2, 0.8, 3)
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		op := h.Next()
		if op.Page < 0 || op.Page >= pages {
			t.Fatalf("page %d out of range", op.Page)
		}
		if op.Page < pages/5 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.75 || frac > 0.9 {
		t.Errorf("hot fraction = %.3f, want about 0.8", frac)
	}
	if h.Name() != "hot-cold" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestMixedReadRatio(t *testing.T) {
	m := MustNewMixed(MustNewUniform(500, 1), 500, 0.3, 2)
	reads := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		op := m.Next()
		if op.Page < 0 || op.Page >= 500 {
			t.Fatalf("page %d out of range", op.Page)
		}
		if op.Kind == OpRead {
			reads++
		}
	}
	frac := float64(reads) / draws
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("read fraction = %.3f, want about 0.3", frac)
	}
	if !strings.Contains(m.Name(), "uniform") {
		t.Errorf("Name = %q, want to mention wrapped generator", m.Name())
	}
}

func TestTraceReplayAndCycle(t *testing.T) {
	tr, err := NewTrace("t", []Op{{OpWrite, 1}, {OpRead, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	got := []Op{tr.Next(), tr.Next(), tr.Next()}
	if got[0] != (Op{OpWrite, 1}) || got[1] != (Op{OpRead, 2}) || got[2] != (Op{OpWrite, 1}) {
		t.Errorf("trace replay = %+v", got)
	}
	if _, err := NewTrace("empty", nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestParseTrace(t *testing.T) {
	input := `# comment
W 10
R 20

w 30
`
	tr, err := ParseTrace("test", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	ops := []Op{tr.Next(), tr.Next(), tr.Next()}
	want := []Op{{OpWrite, 10}, {OpRead, 20}, {OpWrite, 30}}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
	if tr.Name() != "test" {
		t.Errorf("Name = %q", tr.Name())
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"X 10",
		"W",
		"W abc",
		"W -5",
		"W 1 2",
	}
	for _, c := range cases {
		if _, err := ParseTrace("bad", strings.NewReader(c)); err == nil {
			t.Errorf("ParseTrace accepted %q", c)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Error("OpKind strings wrong")
	}
}

// Property: every generator keeps its pages within the configured logical
// address space.
func TestQuickGeneratorsStayInRange(t *testing.T) {
	f := func(seed int64, pagesRaw uint16) bool {
		pages := int64(pagesRaw)%5000 + 10
		gens := []Generator{
			MustNewUniform(pages, seed),
			MustNewSequential(pages),
			MustNewZipfian(pages, 1.2, seed),
			MustNewHotCold(pages, 0.25, 0.75, seed),
			MustNewMixed(MustNewUniform(pages, seed), pages, 0.5, seed),
		}
		for _, g := range gens {
			for i := 0; i < 200; i++ {
				op := g.Next()
				if op.Page < 0 || op.Page >= flash.LPN(pages) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrimmingGenerator(t *testing.T) {
	inner := MustNewUniform(1024, 1)
	tr := MustNewTrimming(inner, 1024, 0.25, 2)
	trims, writes := 0, 0
	for i := 0; i < 10000; i++ {
		op := tr.Next()
		switch op.Kind {
		case OpTrim:
			trims++
		case OpWrite:
			writes++
		default:
			t.Fatalf("unexpected op kind %v", op.Kind)
		}
		if op.Page < 0 || op.Page >= 1024 {
			t.Fatalf("page %d out of range", op.Page)
		}
	}
	frac := float64(trims) / float64(trims+writes)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("trim fraction %.3f far from configured 0.25", frac)
	}
	if _, err := NewTrimming(inner, 1024, 1.0, 3); err == nil {
		t.Error("trim fraction 1.0 accepted")
	}
	if _, err := NewTrimming(inner, 0, 0.1, 3); err == nil {
		t.Error("zero logical pages accepted")
	}
}

func TestSplitBatchThreeWay(t *testing.T) {
	ops := []Op{
		{Kind: OpWrite, Page: 1},
		{Kind: OpRead, Page: 2},
		{Kind: OpTrim, Page: 3},
		{Kind: OpWrite, Page: 4},
		{Kind: OpTrim, Page: 5},
	}
	reads, writes, trims := SplitBatch(ops)
	if len(reads) != 1 || reads[0] != 2 {
		t.Errorf("reads = %v", reads)
	}
	if len(writes) != 2 || writes[0] != 1 || writes[1] != 4 {
		t.Errorf("writes = %v", writes)
	}
	if len(trims) != 2 || trims[0] != 3 || trims[1] != 5 {
		t.Errorf("trims = %v", trims)
	}
}
