package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"geckoftl/internal/flash"
)

// OpKind distinguishes reads from writes in a workload stream.
type OpKind int

const (
	// OpWrite is a logical page update.
	OpWrite OpKind = iota
	// OpRead is a logical page read.
	OpRead
	// OpTrim is a host trim (discard) of a logical page.
	OpTrim
)

// String returns "write", "read" or "trim".
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpTrim:
		return "trim"
	default:
		return "write"
	}
}

// Op is one logical operation of a workload.
type Op struct {
	Kind OpKind
	Page flash.LPN
}

// Generator produces a stream of logical operations.
type Generator interface {
	// Next returns the next operation in the stream.
	Next() Op
	// Name identifies the workload in experiment output.
	Name() string
}

// Uniform generates uniformly random page updates over the logical address
// space: the paper's adversarial workload.
type Uniform struct {
	pages flash.LPN
	rng   *rand.Rand
}

// NewUniform creates a uniform random update workload over logicalPages
// pages. It returns an error if logicalPages is not positive.
func NewUniform(logicalPages int64, seed int64) (*Uniform, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("workload: logical pages %d must be positive", logicalPages)
	}
	return &Uniform{pages: flash.LPN(logicalPages), rng: rand.New(rand.NewSource(seed))}, nil
}

// MustNewUniform is NewUniform that panics on invalid parameters. It is used
// by tests and examples where the configuration is a literal.
func MustNewUniform(logicalPages int64, seed int64) *Uniform {
	u, err := NewUniform(logicalPages, seed)
	if err != nil {
		panic(err)
	}
	return u
}

// Next returns a write to a uniformly random logical page.
func (u *Uniform) Next() Op {
	return Op{Kind: OpWrite, Page: flash.LPN(u.rng.Int63n(int64(u.pages)))}
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Sequential generates writes that sweep the logical address space in order,
// wrapping around at the end. Sequential updates are the friendliest possible
// pattern for block-associative schemes and the best case for Logarithmic
// Gecko's buffer.
type Sequential struct {
	pages flash.LPN
	next  flash.LPN
}

// NewSequential creates a sequential update workload. It returns an error if
// logicalPages is not positive.
func NewSequential(logicalPages int64) (*Sequential, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("workload: logical pages %d must be positive", logicalPages)
	}
	return &Sequential{pages: flash.LPN(logicalPages)}, nil
}

// MustNewSequential is NewSequential that panics on invalid parameters.
func MustNewSequential(logicalPages int64) *Sequential {
	s, err := NewSequential(logicalPages)
	if err != nil {
		panic(err)
	}
	return s
}

// Next returns a write to the next logical page in sequence.
func (s *Sequential) Next() Op {
	op := Op{Kind: OpWrite, Page: s.next}
	s.next = (s.next + 1) % s.pages
	return op
}

// Name implements Generator.
func (s *Sequential) Name() string { return "sequential" }

// Zipfian generates writes with a Zipf-distributed popularity over the
// logical address space, modeling skewed database workloads where a small
// set of pages absorbs most updates.
type Zipfian struct {
	pages flash.LPN
	rng   *rand.Rand
	zipf  *rand.Zipf
}

// NewZipfian creates a Zipfian workload with the given skew parameter
// (s > 1; values around 1.1-1.5 are typical). Page popularity ranks are
// scattered over the address space with a pseudo-random permutation so that
// hot pages are not clustered in one translation page. It returns an error
// for a non-positive page count or a skew outside (1, inf).
func NewZipfian(logicalPages int64, skew float64, seed int64) (*Zipfian, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("workload: logical pages %d must be positive", logicalPages)
	}
	if skew <= 1 {
		return nil, fmt.Errorf("workload: zipf skew %g must be > 1", skew)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipfian{
		pages: flash.LPN(logicalPages),
		rng:   rng,
		zipf:  rand.NewZipf(rng, skew, 1, uint64(logicalPages-1)),
	}, nil
}

// MustNewZipfian is NewZipfian that panics on invalid parameters.
func MustNewZipfian(logicalPages int64, skew float64, seed int64) *Zipfian {
	z, err := NewZipfian(logicalPages, skew, seed)
	if err != nil {
		panic(err)
	}
	return z
}

// scatter maps a popularity rank to a logical page with a multiplicative
// hash, spreading hot ranks across the address space (a full permutation
// would need 8 bytes per logical page).
func scatter(rank uint64, pages int64) flash.LPN {
	const multiplier = 0x9E3779B97F4A7C15
	return flash.LPN((rank * multiplier) % uint64(pages))
}

// Next returns a write to a Zipf-popular page.
func (z *Zipfian) Next() Op {
	rank := z.zipf.Uint64()
	return Op{Kind: OpWrite, Page: scatter(rank, int64(z.pages))}
}

// Name implements Generator.
func (z *Zipfian) Name() string { return "zipfian" }

// HotCold generates writes where a hot fraction of the address space receives
// a hot fraction of the updates (e.g. 20% of pages get 80% of writes).
type HotCold struct {
	pages          flash.LPN
	hotPages       flash.LPN
	hotProbability float64
	rng            *rand.Rand
}

// NewHotCold creates a hot/cold workload: hotFraction of the pages receive
// hotProbability of the writes. It returns an error for a non-positive page
// count or a fraction/probability outside (0,1).
func NewHotCold(logicalPages int64, hotFraction, hotProbability float64, seed int64) (*HotCold, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("workload: logical pages %d must be positive", logicalPages)
	}
	if hotFraction <= 0 || hotFraction >= 1 || hotProbability <= 0 || hotProbability >= 1 {
		return nil, fmt.Errorf("workload: hot fraction %g and probability %g must be in (0,1)", hotFraction, hotProbability)
	}
	return &HotCold{
		pages:          flash.LPN(logicalPages),
		hotPages:       flash.LPN(math.Max(1, float64(logicalPages)*hotFraction)),
		hotProbability: hotProbability,
		rng:            rand.New(rand.NewSource(seed)),
	}, nil
}

// MustNewHotCold is NewHotCold that panics on invalid parameters.
func MustNewHotCold(logicalPages int64, hotFraction, hotProbability float64, seed int64) *HotCold {
	h, err := NewHotCold(logicalPages, hotFraction, hotProbability, seed)
	if err != nil {
		panic(err)
	}
	return h
}

// Next returns a write, hot with the configured probability.
func (h *HotCold) Next() Op {
	if h.rng.Float64() < h.hotProbability {
		return Op{Kind: OpWrite, Page: flash.LPN(h.rng.Int63n(int64(h.hotPages)))}
	}
	coldPages := h.pages - h.hotPages
	if coldPages <= 0 {
		coldPages = 1
	}
	return Op{Kind: OpWrite, Page: h.hotPages + flash.LPN(h.rng.Int63n(int64(coldPages)))}
}

// Name implements Generator.
func (h *HotCold) Name() string { return "hot-cold" }

// Mixed wraps a write-pattern generator and interleaves reads at a given
// ratio, drawing read targets uniformly from the logical address space.
type Mixed struct {
	writes    Generator
	pages     flash.LPN
	readRatio float64
	rng       *rand.Rand
}

// NewMixed creates a mixed read/write workload. readRatio is the fraction of
// operations that are reads (0 <= readRatio < 1).
func NewMixed(writes Generator, logicalPages int64, readRatio float64, seed int64) (*Mixed, error) {
	if readRatio < 0 || readRatio >= 1 {
		return nil, fmt.Errorf("workload: read ratio %g must be in [0,1)", readRatio)
	}
	if logicalPages <= 0 {
		return nil, fmt.Errorf("workload: logical pages %d must be positive", logicalPages)
	}
	return &Mixed{writes: writes, pages: flash.LPN(logicalPages), readRatio: readRatio, rng: rand.New(rand.NewSource(seed))}, nil
}

// MustNewMixed is NewMixed that panics on invalid parameters.
func MustNewMixed(writes Generator, logicalPages int64, readRatio float64, seed int64) *Mixed {
	m, err := NewMixed(writes, logicalPages, readRatio, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Trimming wraps a write-pattern generator and interleaves host trims at a
// given fraction of the operation stream, drawing trim targets uniformly
// from the logical address space. It models a filesystem forwarding deletes
// as discards: every trimmed page is an invalid page the garbage collector
// gets for free, which is the knob the trim-sweep experiment turns.
type Trimming struct {
	inner        Generator
	pages        flash.LPN
	trimFraction float64
	rng          *rand.Rand
}

// NewTrimming creates a trimming workload: trimFraction of the operations
// are trims (0 <= trimFraction < 1), the rest come from the wrapped
// generator. It returns an error for a non-positive page count or a fraction
// outside [0,1).
func NewTrimming(inner Generator, logicalPages int64, trimFraction float64, seed int64) (*Trimming, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("workload: logical pages %d must be positive", logicalPages)
	}
	if trimFraction < 0 || trimFraction >= 1 {
		return nil, fmt.Errorf("workload: trim fraction %g must be in [0,1)", trimFraction)
	}
	return &Trimming{
		inner:        inner,
		pages:        flash.LPN(logicalPages),
		trimFraction: trimFraction,
		rng:          rand.New(rand.NewSource(seed)),
	}, nil
}

// MustNewTrimming is NewTrimming that panics on invalid parameters.
func MustNewTrimming(inner Generator, logicalPages int64, trimFraction float64, seed int64) *Trimming {
	tr, err := NewTrimming(inner, logicalPages, trimFraction, seed)
	if err != nil {
		panic(err)
	}
	return tr
}

// Next returns either a trim of a uniformly random page or the next
// operation of the wrapped generator.
func (tr *Trimming) Next() Op {
	if tr.trimFraction > 0 && tr.rng.Float64() < tr.trimFraction {
		return Op{Kind: OpTrim, Page: flash.LPN(tr.rng.Int63n(int64(tr.pages)))}
	}
	return tr.inner.Next()
}

// Name implements Generator.
func (tr *Trimming) Name() string {
	return fmt.Sprintf("trim(%s,f=%.0f%%)", tr.inner.Name(), tr.trimFraction*100)
}

// ByName constructs one of the named write workloads: "uniform" (or ""),
// "sequential", "zipfian" (skew 1.2) or "hotcold" (20% of pages take 80% of
// writes). The command-line tools and the sweep experiments route their
// workload flags through it so that a bad name is an error, not a panic.
func ByName(name string, logicalPages int64, seed int64) (Generator, error) {
	switch name {
	case "", "uniform":
		return NewUniform(logicalPages, seed)
	case "sequential":
		return NewSequential(logicalPages)
	case "zipfian":
		return NewZipfian(logicalPages, 1.2, seed)
	case "hotcold", "hot-cold":
		return NewHotCold(logicalPages, 0.2, 0.8, seed)
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (want uniform, sequential, zipfian or hotcold)", name)
	}
}

// Next returns either a read of a random page or the next write of the
// wrapped generator.
func (m *Mixed) Next() Op {
	if m.rng.Float64() < m.readRatio {
		return Op{Kind: OpRead, Page: flash.LPN(m.rng.Int63n(int64(m.pages)))}
	}
	op := m.writes.Next()
	op.Kind = OpWrite
	return op
}

// Name implements Generator.
func (m *Mixed) Name() string {
	return fmt.Sprintf("mixed(%s,r=%.0f%%)", m.writes.Name(), m.readRatio*100)
}

// Trace replays a recorded operation stream, cycling when it reaches the end.
type Trace struct {
	name string
	ops  []Op
	next int
}

// NewTrace creates a trace workload from an explicit operation list.
func NewTrace(name string, ops []Op) (*Trace, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("workload: trace %q is empty", name)
	}
	return &Trace{name: name, ops: append([]Op(nil), ops...)}, nil
}

// ParseTrace reads a trace in the textual format "R <page>" / "W <page>", one
// operation per line. Blank lines and lines starting with '#' are ignored.
func ParseTrace(name string, r io.Reader) (*Trace, error) {
	var ops []Op
	scanner := bufio.NewScanner(r)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: trace %q line %d: want \"R|W <page>\", got %q", name, line, text)
		}
		page, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || page < 0 {
			return nil, fmt.Errorf("workload: trace %q line %d: bad page %q", name, line, fields[1])
		}
		var kind OpKind
		switch strings.ToUpper(fields[0]) {
		case "R":
			kind = OpRead
		case "W":
			kind = OpWrite
		default:
			return nil, fmt.Errorf("workload: trace %q line %d: bad op %q", name, line, fields[0])
		}
		ops = append(ops, Op{Kind: kind, Page: flash.LPN(page)})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace %q: %w", name, err)
	}
	return NewTrace(name, ops)
}

// Len returns the number of operations in the trace.
func (t *Trace) Len() int { return len(t.ops) }

// Next returns the next traced operation, cycling at the end.
func (t *Trace) Next() Op {
	op := t.ops[t.next]
	t.next = (t.next + 1) % len(t.ops)
	return op
}

// Name implements Generator.
func (t *Trace) Name() string { return t.name }
