// Package workload generates the logical-page access streams that drive the
// FTL simulations.
//
// The paper's evaluation uses uniformly random page updates as its
// adversarial workload (it minimizes the amount of buffering Logarithmic
// Gecko can exploit). This package additionally provides sequential, Zipfian,
// hot/cold and mixed read/write generators, plus a trace replayer, so that
// the example applications and the ablation benchmarks can explore other
// regimes.
package workload
