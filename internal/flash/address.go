package flash

import "fmt"

// LPN is a logical page number: the address space exposed to the application.
type LPN int64

// InvalidLPN marks a spare area or mapping entry that holds no logical page.
const InvalidLPN LPN = -1

// PPN is a physical page number in the range [0, K*B).
type PPN int64

// InvalidPPN marks a mapping entry that points nowhere.
const InvalidPPN PPN = -1

// BlockID identifies a flash block in the range [0, K).
type BlockID int32

// InvalidBlock marks an unset block reference.
const InvalidBlock BlockID = -1

// Addr is a decomposed physical address: a block and a page offset within it.
type Addr struct {
	Block  BlockID
	Offset int
}

// String renders the address as "block:offset".
func (a Addr) String() string { return fmt.Sprintf("%d:%d", a.Block, a.Offset) }

// PPNOf composes a physical page number from a block and offset given the
// device geometry.
func PPNOf(block BlockID, offset, pagesPerBlock int) PPN {
	return PPN(int64(block)*int64(pagesPerBlock) + int64(offset))
}

// Decompose splits a physical page number into its block and page offset.
func Decompose(ppn PPN, pagesPerBlock int) Addr {
	return Addr{
		Block:  BlockID(int64(ppn) / int64(pagesPerBlock)),
		Offset: int(int64(ppn) % int64(pagesPerBlock)),
	}
}

// BlockOf returns the block that contains the given physical page.
func BlockOf(ppn PPN, pagesPerBlock int) BlockID {
	return BlockID(int64(ppn) / int64(pagesPerBlock))
}

// OffsetOf returns the page offset of ppn within its block.
func OffsetOf(ppn PPN, pagesPerBlock int) int {
	return int(int64(ppn) % int64(pagesPerBlock))
}
