package flash

import (
	"errors"
	"testing"
	"time"
)

func testConfig(blocks int) Config {
	cfg := ScaledConfig(blocks)
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(16)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero blocks", func(c *Config) { c.Blocks = 0 }},
		{"negative blocks", func(c *Config) { c.Blocks = -1 }},
		{"zero pages per block", func(c *Config) { c.PagesPerBlock = 0 }},
		{"zero page size", func(c *Config) { c.PageSize = 0 }},
		{"zero over-provision", func(c *Config) { c.OverProvision = 0 }},
		{"over-provision one", func(c *Config) { c.OverProvision = 1 }},
		{"negative latency", func(c *Config) { c.Latency.PageRead = 0 }},
		{"negative max erase", func(c *Config) { c.MaxEraseCount = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(16)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("invalid config accepted")
			}
			if _, err := NewDevice(cfg); err == nil {
				t.Errorf("NewDevice accepted invalid config")
			}
		})
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := testConfig(1024)
	if got, want := cfg.PhysicalPages(), 1024*DefaultPagesPerBlock; got != want {
		t.Errorf("PhysicalPages = %d, want %d", got, want)
	}
	wantLogical := int(cfg.OverProvision * float64(cfg.PhysicalPages()))
	if got, want := cfg.LogicalPages(), wantLogical; got != want {
		t.Errorf("LogicalPages = %d, want %d", got, want)
	}
	if got, want := cfg.PhysicalBytes(), int64(1024)*int64(DefaultPagesPerBlock)*int64(DefaultPageSize); got != want {
		t.Errorf("PhysicalBytes = %d, want %d", got, want)
	}
	if cfg.LogicalBytes() >= cfg.PhysicalBytes() {
		t.Error("logical capacity should be smaller than physical capacity")
	}
	if got, want := cfg.SpareSize(), DefaultPageSize/DefaultSpareDivisor; got != want {
		t.Errorf("SpareSize = %d, want %d", got, want)
	}
	if cfg.String() == "" {
		t.Error("String is empty")
	}
}

func TestDefaultConfigIsPaperGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Blocks != 1<<22 || cfg.PagesPerBlock != 1<<7 || cfg.PageSize != 1<<12 {
		t.Errorf("default geometry %v does not match the paper's Figure 2", cfg)
	}
	if cfg.PhysicalBytes() != 2<<40 {
		t.Errorf("default physical capacity = %d bytes, want 2 TiB", cfg.PhysicalBytes())
	}
	delta := cfg.Latency.WriteReadRatio()
	if delta != 10 {
		t.Errorf("write/read latency ratio = %v, want 10", delta)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := MustNewDevice(testConfig(8))
	cfg := d.Config()
	ppn := PPNOf(3, 0, cfg.PagesPerBlock)
	seq, err := d.WritePage(ppn, SpareArea{Logical: 42, BlockType: BlockUser}, PurposeUserWrite)
	if err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if seq == 0 {
		t.Error("write sequence should start at 1")
	}
	if err := d.ReadPage(ppn, PurposeUserRead); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	spare, ok, err := d.ReadSpare(ppn, PurposeRecovery)
	if err != nil || !ok {
		t.Fatalf("ReadSpare: ok=%v err=%v", ok, err)
	}
	if spare.Logical != 42 || spare.BlockType != BlockUser || spare.WriteSeq != seq {
		t.Errorf("spare = %+v, want logical 42, user type, seq %d", spare, seq)
	}
}

func TestReadUnwrittenPageFails(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	if err := d.ReadPage(0, PurposeUserRead); !errors.Is(err, ErrPageNotWritten) {
		t.Errorf("ReadPage of free page: err = %v, want ErrPageNotWritten", err)
	}
	_, ok, err := d.ReadSpare(0, PurposeRecovery)
	if err != nil {
		t.Errorf("ReadSpare of free page should not error: %v", err)
	}
	if ok {
		t.Error("ReadSpare of free page reported programmed")
	}
}

func TestRewriteWithoutEraseFails(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	if _, err := d.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(0, SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrPageNotFree) {
		t.Errorf("rewrite err = %v, want ErrPageNotFree", err)
	}
}

func TestStrictSequentialWrites(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	cfg := d.Config()
	// Skipping offset 0 must fail.
	if _, err := d.WritePage(PPNOf(1, 5, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrNonSequentialWrite) {
		t.Errorf("non-sequential write err = %v, want ErrNonSequentialWrite", err)
	}
	// In-order writes succeed.
	for off := 0; off < 3; off++ {
		if _, err := d.WritePage(PPNOf(1, off, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); err != nil {
			t.Fatalf("sequential write %d: %v", off, err)
		}
	}
	wp, err := d.WritePointer(1)
	if err != nil || wp != 3 {
		t.Errorf("WritePointer = %d, %v; want 3, nil", wp, err)
	}
}

func TestNonStrictAllowsGaps(t *testing.T) {
	cfg := testConfig(4)
	cfg.StrictSequentialWrites = false
	d := MustNewDevice(cfg)
	if _, err := d.WritePage(PPNOf(1, 5, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatalf("gapped write with strict mode off: %v", err)
	}
	// Writing below the advanced write pointer is still forbidden.
	if _, err := d.WritePage(PPNOf(1, 2, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrPageNotFree) {
		t.Errorf("write below pointer err = %v, want ErrPageNotFree", err)
	}
}

func TestEraseFreesPages(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	cfg := d.Config()
	for off := 0; off < cfg.PagesPerBlock; off++ {
		if _, err := d.WritePage(PPNOf(2, off, cfg.PagesPerBlock), SpareArea{Logical: LPN(off)}, PurposeUserWrite); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.EraseBlock(2, PurposeGCErase); err != nil {
		t.Fatalf("EraseBlock: %v", err)
	}
	wp, _ := d.WritePointer(2)
	if wp != 0 {
		t.Errorf("write pointer after erase = %d, want 0", wp)
	}
	if err := d.ReadPage(PPNOf(2, 0, cfg.PagesPerBlock), PurposeUserRead); !errors.Is(err, ErrPageNotWritten) {
		t.Errorf("read after erase err = %v, want ErrPageNotWritten", err)
	}
	ec, _ := d.EraseCount(2)
	if ec != 1 {
		t.Errorf("erase count = %d, want 1", ec)
	}
	if d.GlobalEraseSeq() != 1 {
		t.Errorf("global erase seq = %d, want 1", d.GlobalEraseSeq())
	}
	// The block is writable again.
	if _, err := d.WritePage(PPNOf(2, 0, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); err != nil {
		t.Errorf("write after erase: %v", err)
	}
}

func TestSpareCarriesEraseProvenance(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	cfg := d.Config()
	if err := d.EraseBlock(1, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(PPNOf(1, 0, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	spare, ok, err := d.ReadSpare(PPNOf(1, 0, cfg.PagesPerBlock), PurposeRecovery)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if spare.EraseCount != 1 {
		t.Errorf("spare erase count = %d, want 1", spare.EraseCount)
	}
	if spare.EraseSeq != 1 {
		t.Errorf("spare erase seq = %d, want 1", spare.EraseSeq)
	}
}

func TestWornOutBlock(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxEraseCount = 2
	d := MustNewDevice(cfg)
	if err := d.EraseBlock(0, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(0, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(0, PurposeGCErase); !errors.Is(err, ErrWornOut) {
		t.Errorf("third erase err = %v, want ErrWornOut", err)
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	cfg := d.Config()
	tooBig := PPN(int64(cfg.Blocks) * int64(cfg.PagesPerBlock))
	if _, err := d.WritePage(tooBig, SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write out of range err = %v", err)
	}
	if err := d.ReadPage(PPN(-1), PurposeUserRead); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read out of range err = %v", err)
	}
	if err := d.EraseBlock(BlockID(cfg.Blocks), PurposeGCErase); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("erase out of range err = %v", err)
	}
}

func TestPowerFailBlocksOperations(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	if _, err := d.WritePage(0, SpareArea{Logical: 7}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	d.PowerFail()
	if d.Powered() {
		t.Error("device reports powered after PowerFail")
	}
	if _, err := d.WritePage(1, SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrPowerFailed) {
		t.Errorf("write while off err = %v, want ErrPowerFailed", err)
	}
	if err := d.ReadPage(0, PurposeUserRead); !errors.Is(err, ErrPowerFailed) {
		t.Errorf("read while off err = %v, want ErrPowerFailed", err)
	}
	d.PowerOn()
	if !d.Powered() {
		t.Error("device reports unpowered after PowerOn")
	}
	// Flash contents must survive the power cycle.
	spare, ok, err := d.ReadSpare(0, PurposeRecovery)
	if err != nil || !ok || spare.Logical != 7 {
		t.Errorf("spare after power cycle = %+v ok=%v err=%v", spare, ok, err)
	}
}

func TestCountersAttributePurposes(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	if _, err := d.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(1, SpareArea{}, PurposeGCMigration); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, PurposeTranslation); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadSpare(0, PurposeRecovery); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(3, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	c := d.Counters()
	if got := c.Count(OpPageWrite, PurposeUserWrite); got != 1 {
		t.Errorf("user writes = %d, want 1", got)
	}
	if got := c.Count(OpPageWrite, PurposeGCMigration); got != 1 {
		t.Errorf("gc migration writes = %d, want 1", got)
	}
	if got := c.Count(OpPageRead, PurposeTranslation); got != 1 {
		t.Errorf("translation reads = %d, want 1", got)
	}
	if got := c.Count(OpSpareRead, PurposeRecovery); got != 1 {
		t.Errorf("recovery spare reads = %d, want 1", got)
	}
	if got := c.Count(OpErase, PurposeGCErase); got != 1 {
		t.Errorf("gc erases = %d, want 1", got)
	}
	if got := c.TotalOp(OpPageWrite); got != 2 {
		t.Errorf("total writes = %d, want 2", got)
	}
}

func TestCountersSubAndReset(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	if _, err := d.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	before := d.Counters()
	if _, err := d.WritePage(1, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	delta := d.Counters().Sub(before)
	if got := delta.TotalOp(OpPageWrite); got != 1 {
		t.Errorf("delta writes = %d, want 1", got)
	}
	d.ResetCounters()
	after := d.Counters()
	if got := after.TotalOp(OpPageWrite); got != 0 {
		t.Errorf("writes after reset = %d, want 0", got)
	}
}

func TestSimulatedTimeFollowsLatencyModel(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	lat := d.Config().Latency
	if _, err := d.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, PurposeUserRead); err != nil {
		t.Fatal(err)
	}
	want := lat.PageWrite + lat.PageRead
	if got := d.SimulatedTime(); got != want {
		t.Errorf("SimulatedTime = %v, want %v", got, want)
	}
}

func TestWriteAmplificationMetric(t *testing.T) {
	var c Counters
	// 10 logical writes cause 15 internal writes and 20 internal reads.
	for i := 0; i < 15; i++ {
		c.Record(OpPageWrite, PurposeUserWrite, time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		c.Record(OpPageRead, PurposeTranslation, 100*time.Microsecond)
	}
	got := c.WriteAmplification(10, 10)
	want := (15.0 + 20.0/10.0) / 10.0
	if got != want {
		t.Errorf("WriteAmplification = %v, want %v", got, want)
	}
	if c.WriteAmplification(0, 10) != 0 {
		t.Error("WriteAmplification with zero logical writes should be 0")
	}
	pv := c.PurposeWriteAmplification(PurposeTranslation, 10, 10)
	if pv != (0+20.0/10.0)/10.0 {
		t.Errorf("PurposeWriteAmplification = %v", pv)
	}
}

func TestBlocksEndurance(t *testing.T) {
	d := MustNewDevice(testConfig(4))
	for i := 0; i < 3; i++ {
		if err := d.EraseBlock(0, PurposeGCErase); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.EraseBlock(1, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	min, max, mean := d.BlocksEndurance()
	if min != 0 || max != 3 {
		t.Errorf("endurance min=%d max=%d, want 0 and 3", min, max)
	}
	if mean != 1.0 {
		t.Errorf("endurance mean = %v, want 1.0", mean)
	}
}

func TestPurposeAndOpStrings(t *testing.T) {
	for _, p := range Purposes() {
		if p.String() == "" {
			t.Errorf("purpose %d has empty name", int(p))
		}
	}
	if Purpose(99).String() == "" {
		t.Error("unknown purpose has empty name")
	}
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", int(op))
		}
	}
	var c Counters
	if c.String() != "no-io" {
		t.Errorf("empty counters String = %q", c.String())
	}
	c.Record(OpPageWrite, PurposeUserWrite, 0)
	if c.String() == "no-io" {
		t.Error("non-empty counters render as no-io")
	}
}
