package flash

import (
	"testing"
	"testing/quick"
)

func TestAddressComposition(t *testing.T) {
	const b = 128
	cases := []struct {
		block  BlockID
		offset int
		ppn    PPN
	}{
		{0, 0, 0},
		{0, 127, 127},
		{1, 0, 128},
		{3, 5, 389},
		{1000, 64, 128064},
	}
	for _, c := range cases {
		if got := PPNOf(c.block, c.offset, b); got != c.ppn {
			t.Errorf("PPNOf(%d,%d) = %d, want %d", c.block, c.offset, got, c.ppn)
		}
		addr := Decompose(c.ppn, b)
		if addr.Block != c.block || addr.Offset != c.offset {
			t.Errorf("Decompose(%d) = %v, want %d:%d", c.ppn, addr, c.block, c.offset)
		}
		if BlockOf(c.ppn, b) != c.block {
			t.Errorf("BlockOf(%d) = %d, want %d", c.ppn, BlockOf(c.ppn, b), c.block)
		}
		if OffsetOf(c.ppn, b) != c.offset {
			t.Errorf("OffsetOf(%d) = %d, want %d", c.ppn, OffsetOf(c.ppn, b), c.offset)
		}
	}
}

func TestAddrString(t *testing.T) {
	if got := (Addr{Block: 7, Offset: 3}).String(); got != "7:3" {
		t.Errorf("Addr.String = %q, want %q", got, "7:3")
	}
}

// Property: Decompose is the inverse of PPNOf for every valid geometry.
func TestQuickAddressRoundTrip(t *testing.T) {
	f := func(blockRaw uint32, offsetRaw uint16, bRaw uint8) bool {
		pagesPerBlock := int(bRaw)%512 + 1
		block := BlockID(blockRaw % (1 << 22))
		offset := int(offsetRaw) % pagesPerBlock
		ppn := PPNOf(block, offset, pagesPerBlock)
		addr := Decompose(ppn, pagesPerBlock)
		return addr.Block == block && addr.Offset == offset &&
			BlockOf(ppn, pagesPerBlock) == block && OffsetOf(ppn, pagesPerBlock) == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PPNs are dense and ordered: consecutive offsets map to
// consecutive PPNs and block boundaries advance by pagesPerBlock.
func TestQuickPPNDensity(t *testing.T) {
	f := func(blockRaw uint16, bRaw uint8) bool {
		pagesPerBlock := int(bRaw)%255 + 2
		block := BlockID(blockRaw)
		first := PPNOf(block, 0, pagesPerBlock)
		last := PPNOf(block, pagesPerBlock-1, pagesPerBlock)
		nextBlock := PPNOf(block+1, 0, pagesPerBlock)
		return int64(last)-int64(first) == int64(pagesPerBlock-1) && int64(nextBlock)-int64(last) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockTypeString(t *testing.T) {
	cases := map[BlockType]string{
		BlockFree:        "free",
		BlockUser:        "user",
		BlockTranslation: "translation",
		BlockGecko:       "gecko",
		BlockType(42):    "invalid",
	}
	for bt, want := range cases {
		if got := bt.String(); got != want {
			t.Errorf("BlockType(%d).String() = %q, want %q", bt, got, want)
		}
	}
}
