package flash

import (
	"bytes"
	"testing"
)

// FuzzSpareRoundTrip pins the spare-area wire format: any input the decoder
// accepts must re-encode to the identical bytes (no two encodings for one
// spare, no bytes the decoder ignores), and the decoded struct must survive
// an encode/decode cycle unchanged. The seed corpus in
// testdata/fuzz/FuzzSpareRoundTrip covers every block type, the extreme
// field values, and malformed lengths; CI replays it with a short -fuzztime
// smoke.
func FuzzSpareRoundTrip(f *testing.F) {
	seeds := []SpareArea{
		{},
		{Logical: 1, WriteSeq: 2, BlockType: BlockUser, EraseCount: 3, EraseSeq: 4, Tag: 5, Aux: 6},
		{Logical: InvalidLPN, BlockType: BlockGecko, Tag: ^uint64(0), Aux: 0x1234567890abcdef},
		{Logical: 1 << 40, WriteSeq: ^uint64(0), BlockType: BlockTranslation, EraseCount: ^uint32(0), EraseSeq: 77, Aux: 1},
	}
	for _, s := range seeds {
		buf, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add(make([]byte, SpareEncodedSize-1))
	f.Add(make([]byte, SpareEncodedSize+1))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s SpareArea
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected input; nothing round-trips
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary after successful decode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round-trip changed the bytes:\n in  %x\n out %x", data, out)
		}
		var again SpareArea
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode of canonical bytes: %v", err)
		}
		if again != s {
			t.Fatalf("decode(encode(s)) = %+v, want %+v", again, s)
		}
	})
}
