package flash

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func topoConfig(blocks, channels, dies int) Config {
	cfg := ScaledConfig(blocks)
	cfg.PagesPerBlock = 8
	cfg.PageSize = 512
	cfg.Channels = channels
	cfg.DiesPerChannel = dies
	return cfg
}

func TestDieLayoutContiguous(t *testing.T) {
	cfg := topoConfig(100, 4, 2) // 8 dies over 100 blocks
	if got := cfg.Dies(); got != 8 {
		t.Fatalf("Dies() = %d, want 8", got)
	}
	// Every block belongs to exactly one die, dies are contiguous and
	// DieBlockRange is consistent with DieOfBlock.
	prev := -1
	covered := 0
	for die := 0; die < cfg.Dies(); die++ {
		lo, hi := cfg.DieBlockRange(die)
		if int(lo) != covered {
			t.Fatalf("die %d range starts at %d, want %d", die, lo, covered)
		}
		for b := lo; b < hi; b++ {
			if got := cfg.DieOfBlock(b); got != die {
				t.Fatalf("DieOfBlock(%d) = %d, want %d", b, got, die)
			}
		}
		if die <= prev {
			t.Fatalf("die order violated at %d", die)
		}
		prev = die
		covered = int(hi)
	}
	if covered != cfg.Blocks {
		t.Fatalf("dies cover %d blocks, want %d", covered, cfg.Blocks)
	}
	// Channel ranges are the union of their dies' ranges.
	lo, hi := cfg.ChannelBlockRange(0)
	if lo != 0 || cfg.ChannelOfBlock(hi-1) != 0 || cfg.ChannelOfBlock(hi) != 1 {
		t.Fatalf("channel 0 range [%d,%d) inconsistent with ChannelOfBlock", lo, hi)
	}
}

func TestConfigValidateTopology(t *testing.T) {
	cfg := topoConfig(4, 8, 1)
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for more dies than blocks")
	}
	cfg = topoConfig(64, -1, 1)
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected error for negative channels")
	}
}

func TestParallelSimulatedTime(t *testing.T) {
	cfg := topoConfig(64, 4, 1)
	dev := MustNewDevice(cfg)
	// Write one page on one block of each die: serial time is 4 page
	// writes, parallel time is 1.
	for die := 0; die < cfg.Dies(); die++ {
		lo, _ := cfg.DieBlockRange(die)
		ppn := PPNOf(lo, 0, cfg.PagesPerBlock)
		if _, err := dev.WritePage(ppn, SpareArea{}, PurposeUserWrite); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := dev.SimulatedTime(), 4*cfg.Latency.PageWrite; got != want {
		t.Fatalf("SimulatedTime = %v, want %v", got, want)
	}
	if got, want := dev.ParallelSimulatedTime(), cfg.Latency.PageWrite; got != want {
		t.Fatalf("ParallelSimulatedTime = %v, want %v", got, want)
	}
	times := dev.DieTimes()
	if len(times) != 4 {
		t.Fatalf("DieTimes returned %d entries, want 4", len(times))
	}
	for die, d := range times {
		if d != cfg.Latency.PageWrite {
			t.Fatalf("die %d busy %v, want %v", die, d, cfg.Latency.PageWrite)
		}
	}
}

func TestDeviceConcurrentDies(t *testing.T) {
	cfg := topoConfig(64, 8, 1)
	dev := MustNewDevice(cfg)
	var wg sync.WaitGroup
	for die := 0; die < cfg.Dies(); die++ {
		wg.Add(1)
		go func(die int) {
			defer wg.Done()
			lo, hi := cfg.DieBlockRange(die)
			for b := lo; b < hi; b++ {
				for o := 0; o < cfg.PagesPerBlock; o++ {
					ppn := PPNOf(b, o, cfg.PagesPerBlock)
					if _, err := dev.WritePage(ppn, SpareArea{Logical: LPN(ppn)}, PurposeUserWrite); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for b := lo; b < hi; b++ {
				if err := dev.EraseBlock(b, PurposeGCErase); err != nil {
					t.Error(err)
					return
				}
			}
		}(die)
	}
	wg.Wait()
	c := dev.Counters()
	wantWrites := int64(cfg.Blocks * cfg.PagesPerBlock)
	if got := c.Count(OpPageWrite, PurposeUserWrite); got != wantWrites {
		t.Fatalf("counted %d writes, want %d", got, wantWrites)
	}
	if got := c.Count(OpErase, PurposeGCErase); got != int64(cfg.Blocks) {
		t.Fatalf("counted %d erases, want %d", got, cfg.Blocks)
	}
	if got := dev.GlobalWriteSeq(); got != uint64(wantWrites) {
		t.Fatalf("global write seq %d, want %d", got, wantWrites)
	}
	serial := dev.SimulatedTime()
	parallel := dev.ParallelSimulatedTime()
	if parallel <= 0 || serial < time.Duration(cfg.Dies())*parallel {
		t.Fatalf("serial %v should be dies x parallel %v on a balanced load", serial, parallel)
	}
}

func TestPartitionTranslation(t *testing.T) {
	cfg := topoConfig(64, 2, 1)
	dev := MustNewDevice(cfg)
	part, err := dev.Partition(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := part.Config().Blocks; got != 16 {
		t.Fatalf("partition has %d blocks, want 16", got)
	}
	// Page 0 of the partition is page 32*8 of the device.
	if _, err := part.WritePage(0, SpareArea{Logical: 7}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	spare, written, err := dev.ReadSpare(PPNOf(32, 0, cfg.PagesPerBlock), PurposeUserRead)
	if err != nil || !written || spare.Logical != 7 {
		t.Fatalf("device spare = %+v written=%v err=%v, want logical 7", spare, written, err)
	}
	// Partition-relative reads see the same page.
	if err := part.ReadPage(0, PurposeUserRead); err != nil {
		t.Fatal(err)
	}
	// Out-of-range partition accesses fail before touching neighbors.
	if err := part.ReadPage(PPN(16*cfg.PagesPerBlock), PurposeUserRead); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read error = %v, want ErrOutOfRange", err)
	}
	if err := part.EraseBlock(16, PurposeGCErase); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range erase error = %v, want ErrOutOfRange", err)
	}
	if _, err := dev.Partition(60, 8); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oversized partition error = %v, want ErrOutOfRange", err)
	}
	// Erase through the partition, then the device-side block is empty.
	if err := part.EraseBlock(0, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if wp, err := dev.WritePointer(32); err != nil || wp != 0 {
		t.Fatalf("device write pointer = %d err=%v, want 0", wp, err)
	}
	// Endurance is restricted to the partition's range.
	min, max, mean := part.BlocksEndurance()
	if min != 0 || max != 1 || mean != 1.0/16 {
		t.Fatalf("partition endurance = %d/%d/%f, want 0/1/%f", min, max, mean, 1.0/16)
	}
}

// TestPartitionPowerDomainsIndependent is the regression test for the
// shared-power-state bug: failing one partition must not fail its siblings or
// the parent device, and partitions must recover in either order without one
// partition's PowerOn resurrecting (or blocking) another.
func TestPartitionPowerDomainsIndependent(t *testing.T) {
	dev := MustNewDevice(topoConfig(64, 2, 1))
	a, err := dev.Partition(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.Partition(32, 32)
	if err != nil {
		t.Fatal(err)
	}

	a.PowerFail()
	if a.Powered() {
		t.Fatal("partition a reports powered after its PowerFail")
	}
	if !b.Powered() || !dev.Powered() {
		t.Fatal("failing partition a took down partition b or the device")
	}
	if _, err := a.WritePage(0, SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("write to failed partition err = %v, want ErrPowerFailed", err)
	}
	if _, err := b.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatalf("write to live partition failed: %v", err)
	}

	// Fail b too, then recover in the order b, a (the reverse of the fail
	// order); each PowerOn must restore only its own domain.
	b.PowerFail()
	b.PowerOn()
	if !b.Powered() {
		t.Fatal("partition b not powered after its PowerOn")
	}
	if a.Powered() {
		t.Fatal("partition b's PowerOn resurrected partition a")
	}
	a.PowerOn()
	if !a.Powered() {
		t.Fatal("partition a not powered after its PowerOn")
	}
	if _, err := a.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatalf("write after recovery failed: %v", err)
	}

	// The device-wide rail sits underneath every partition domain.
	dev.PowerFail()
	if a.Powered() || b.Powered() {
		t.Fatal("partitions report powered while the device rail is down")
	}
	if _, err := b.WritePage(1, SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("write during device-wide failure err = %v, want ErrPowerFailed", err)
	}
	a.PowerFail()
	dev.PowerOn()
	if !b.Powered() {
		t.Fatal("partition b not powered after the device rail returned")
	}
	if a.Powered() {
		t.Fatal("device PowerOn resurrected partition a's own failed domain")
	}
	a.PowerOn()
	if !a.Powered() {
		t.Fatal("partition a not powered after rail and domain both restored")
	}
}

// TestPartitionScopedAccounting verifies that a die-aligned partition's
// counters and simulated time cover exactly its own dies, so concurrent
// shards account their IO independently.
func TestPartitionScopedAccounting(t *testing.T) {
	cfg := topoConfig(64, 2, 1)
	dev := MustNewDevice(cfg)
	a, err := dev.Partition(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.Partition(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.WritePage(PPN(i), SpareArea{}, PurposeUserWrite); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WritePage(0, SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	ac := a.Counters()
	if got := ac.TotalOp(OpPageWrite); got != 3 {
		t.Errorf("partition a counted %d page writes, want 3", got)
	}
	bc := b.Counters()
	if got := bc.TotalOp(OpPageWrite); got != 1 {
		t.Errorf("partition b counted %d page writes, want 1", got)
	}
	if got, want := a.SimulatedTime(), 3*cfg.Latency.PageWrite; got != want {
		t.Errorf("partition a simulated time %v, want %v", got, want)
	}
	if got, want := a.SimulatedTime()+b.SimulatedTime(), dev.SimulatedTime(); got != want {
		t.Errorf("partition times sum to %v, device total %v", got, want)
	}
	a.ResetCounters()
	ac = a.Counters()
	if got := ac.TotalOp(OpPageWrite); got != 0 {
		t.Errorf("partition a counted %d page writes after reset, want 0", got)
	}
	bc = b.Counters()
	if got := bc.TotalOp(OpPageWrite); got != 1 {
		t.Errorf("partition a's reset clobbered partition b (count %d, want 1)", got)
	}
}
