package flash

import (
	"errors"
	"testing"
)

// TestDeviceErrorPaths pins the NAND-constraint error family: the misuses a
// correct FTL never commits, which the device must reject loudly (and
// without mutating state) so that FTL bugs surface as hard failures.
func TestDeviceErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		op   func(d *Device, cfg Config) error
		want error
	}{
		{
			name: "program after program",
			op: func(d *Device, cfg Config) error {
				if _, err := d.WritePage(PPNOf(0, 0, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); err != nil {
					t.Fatal(err)
				}
				_, err := d.WritePage(PPNOf(0, 0, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite)
				return err
			},
			want: ErrPageNotFree,
		},
		{
			name: "non-sequential write",
			op: func(d *Device, cfg Config) error {
				_, err := d.WritePage(PPNOf(0, 3, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite)
				return err
			},
			want: ErrNonSequentialWrite,
		},
		{
			name: "read unwritten page",
			op: func(d *Device, cfg Config) error {
				return d.ReadPage(PPNOf(0, 0, cfg.PagesPerBlock), PurposeUserRead)
			},
			want: ErrPageNotWritten,
		},
		{
			name: "read past write pointer",
			op: func(d *Device, cfg Config) error {
				if _, err := d.WritePage(PPNOf(0, 0, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite); err != nil {
					t.Fatal(err)
				}
				return d.ReadPage(PPNOf(0, 1, cfg.PagesPerBlock), PurposeUserRead)
			},
			want: ErrPageNotWritten,
		},
		{
			name: "write out of range",
			op: func(d *Device, cfg Config) error {
				_, err := d.WritePage(PPN(int64(cfg.Blocks)*int64(cfg.PagesPerBlock)), SpareArea{}, PurposeUserWrite)
				return err
			},
			want: ErrOutOfRange,
		},
		{
			name: "erase out of range",
			op: func(d *Device, cfg Config) error {
				return d.EraseBlock(BlockID(cfg.Blocks), PurposeGCErase)
			},
			want: ErrOutOfRange,
		},
		{
			name: "write while powered off",
			op: func(d *Device, cfg Config) error {
				d.PowerFail()
				_, err := d.WritePage(PPNOf(0, 0, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite)
				return err
			},
			want: ErrPowerFailed,
		},
		{
			name: "read while powered off",
			op: func(d *Device, cfg Config) error {
				d.PowerFail()
				return d.ReadPage(PPNOf(0, 0, cfg.PagesPerBlock), PurposeUserRead)
			},
			want: ErrPowerFailed,
		},
		{
			name: "spare read while powered off",
			op: func(d *Device, cfg Config) error {
				d.PowerFail()
				_, _, err := d.ReadSpare(PPNOf(0, 0, cfg.PagesPerBlock), PurposeRecovery)
				return err
			},
			want: ErrPowerFailed,
		},
		{
			name: "erase while powered off",
			op: func(d *Device, cfg Config) error {
				d.PowerFail()
				return d.EraseBlock(0, PurposeGCErase)
			},
			want: ErrPowerFailed,
		},
		{
			name: "trim note while powered off",
			op: func(d *Device, cfg Config) error {
				d.PowerFail()
				return d.NoteTrim(PPNOf(0, 0, cfg.PagesPerBlock), PurposeTrim)
			},
			want: ErrPowerFailed,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(4)
			d := MustNewDevice(cfg)
			if err := tc.op(d, cfg); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}
