// Package flash implements a discrete-event NAND flash device simulator.
//
// The simulator models the architectural parameters and idiosyncrasies that
// the GeckoFTL paper (Dayan, Bonnet, Idreos; SIGMOD 2016) relies on:
//
//   - the device consists of K blocks of B pages of P bytes each;
//   - the minimum read/write granularity is one page;
//   - a page cannot be rewritten before its block is erased;
//   - writes within a block must be sequential;
//   - every page has a spare area that can be written once per page
//     life-cycle and read independently (and much more cheaply) than the
//     page itself;
//   - page reads, page writes, spare-area reads and block erases have
//     asymmetric costs.
//
// The device does not store user payloads (the FTL algorithms under study
// never inspect payload bytes); it stores per-page state and spare-area
// metadata, and it accounts every internal IO by purpose so that the
// simulation harness can compute the write-amplification breakdowns reported
// in the paper's evaluation section.
//
// # Channel/die topology
//
// Real flash devices at the capacities GeckoFTL targets (hundreds of
// gigabytes to terabytes) are not a single serialized plane: they gang
// multiple channels, each with several dies, and independent dies execute
// page and erase operations in parallel. Config carries this topology as
// Channels x DiesPerChannel; blocks are assigned to dies in contiguous
// ranges (Config.DieOfBlock). The Device latches each die independently —
// operations on different dies proceed concurrently under separate locks,
// while operations on the same die serialize, exactly as a real die's
// ready/busy line would force them to. Per-die IO counters make two clocks
// available: SimulatedTime, the sum of all die-busy time (the single-plane
// serial cost used by the paper's write-amplification experiments), and
// ParallelSimulatedTime, the busiest die's time, which is the wall-clock a
// parallelism-aware host controller observes when it keeps every die fed.
//
// A Partition is a view of a contiguous block range of a Device, exposed
// through the same Plane interface the FTLs program against. The ftl.Engine
// gives each of its shards one partition aligned to a channel's die range, so
// that shards never contend on a die.
package flash
