package flash

import "fmt"

// FaultEvent is one entry of a scripted fault schedule: the AtCount'th
// attempt (1-based, device-wide) of the given operation kind fails. Scripted
// faults let tests place a failure at an exact point of a workload,
// independent of which block the operation happens to land on.
type FaultEvent struct {
	// Op is the operation kind the event targets: OpPageWrite (a failed
	// program), OpErase (a failed erase that retires the block) or OpPageRead
	// (an uncorrectable read, surfaced as ErrReadDecayed).
	Op Op
	// AtCount selects the AtCount'th attempt of Op since the plan was
	// installed, counting 1, 2, 3, ...
	AtCount uint64
}

// FaultPlan describes the faults a Device injects: per-operation
// probabilistic failure rates, a read-disturb decay limit, and scripted
// one-shot events keyed by operation count.
//
// Probabilistic decisions are a pure hash of (Seed, operation kind, block,
// page offset, the block's erase count) compared against the rate, so a plan
// is deterministic for a given sequence of operations regardless of goroutine
// interleaving, and the set of failing operations at a lower rate is a subset
// of the set at a higher rate (the hash does not depend on the rate). Both
// properties are what make randomized fault campaigns replayable and
// endurance trends monotone by construction.
type FaultPlan struct {
	// Seed scrambles the probabilistic fault decisions.
	Seed int64
	// ProgramFailRate is the probability that a page program fails with
	// ErrProgramFailed. The failed page is consumed (the write pointer moves
	// past it) and reads back as unprogrammed, as on real NAND.
	ProgramFailRate float64
	// EraseFailRate is the probability that a block erase fails with
	// ErrEraseFailed. A failed erase retires the block permanently: the
	// device records it in its bad-block table (BadBlock), and every later
	// program or erase of the block fails.
	EraseFailRate float64
	// ReadDisturbLimit is the number of full-page reads a block tolerates
	// between erases before its payload decays: reads beyond the limit
	// return ErrReadDecayed. Spare-area reads neither disturb nor decay (the
	// out-of-band area is re-read with stronger ECC), so recovery and GC
	// spare scans always succeed. Zero disables read-disturb decay.
	ReadDisturbLimit int
	// Schedule lists scripted one-shot faults on top of the probabilistic
	// rates.
	Schedule []FaultEvent
}

// Validate checks the plan's parameters.
func (p FaultPlan) Validate() error {
	switch {
	case p.ProgramFailRate < 0 || p.ProgramFailRate > 1:
		return fmt.Errorf("flash: program fail rate %g out of range [0,1]", p.ProgramFailRate)
	case p.EraseFailRate < 0 || p.EraseFailRate > 1:
		return fmt.Errorf("flash: erase fail rate %g out of range [0,1]", p.EraseFailRate)
	case p.ReadDisturbLimit < 0:
		return fmt.Errorf("flash: read disturb limit %d must be >= 0", p.ReadDisturbLimit)
	}
	for _, ev := range p.Schedule {
		if ev.Op != OpPageWrite && ev.Op != OpErase && ev.Op != OpPageRead {
			return fmt.Errorf("flash: scheduled fault on %v (want page-write, erase or page-read)", ev.Op)
		}
		if ev.AtCount == 0 {
			return fmt.Errorf("flash: scheduled fault at count 0 (counts are 1-based)")
		}
	}
	return nil
}

// scheduled reports whether the n'th attempt of op is scripted to fail.
func (p *FaultPlan) scheduled(op Op, n uint64) bool {
	for _, ev := range p.Schedule {
		if ev.Op == op && ev.AtCount == n {
			return true
		}
	}
	return false
}

// fails decides the n'th attempt of op against a page of the given block:
// scripted events first, then the probabilistic rate via the address hash.
func (p *FaultPlan) fails(op Op, n uint64, block BlockID, offset, eraseCount int) bool {
	if p.scheduled(op, n) {
		return true
	}
	var rate float64
	switch op {
	case OpPageWrite:
		rate = p.ProgramFailRate
	case OpErase:
		rate = p.EraseFailRate
	}
	if rate <= 0 {
		return false
	}
	return faultHazard(p.Seed, op, block, offset, eraseCount) < rate
}

// faultHazard maps (seed, op, block, offset, eraseCount) to a uniform value
// in [0,1) with a splitmix64-style finalizer. Pure function of its inputs:
// the same operation on the same physical page in the same erase cycle always
// draws the same hazard.
func faultHazard(seed int64, op Op, block BlockID, offset, eraseCount int) float64 {
	x := uint64(seed)
	for _, v := range [...]uint64{uint64(op), uint64(block), uint64(offset), uint64(eraseCount)} {
		x += v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11) / float64(uint64(1)<<53)
}
