package flash

import "errors"

// Errors returned by the device simulator. They fall into two families. The
// first models the NAND constraints the FTL must respect — an FTL that
// triggers one of these has a bug, so the test suite treats them as hard
// failures. The second (ErrProgramFailed, ErrEraseFailed, ErrReadDecayed, and
// ErrWornOut once a block's erase budget is spent) models the media itself
// failing: those arise only on worn devices or under an installed FaultPlan,
// and the FTL is expected to survive them by retrying, retiring the block, or
// scrubbing.
var (
	// ErrOutOfRange is returned for addresses outside the device geometry.
	ErrOutOfRange = errors.New("flash: address out of range")
	// ErrPageNotFree is returned when programming a page that has already
	// been programmed since its block was last erased.
	ErrPageNotFree = errors.New("flash: page already programmed since last erase")
	// ErrNonSequentialWrite is returned when a write skips ahead of the
	// block's write pointer while strict sequential writes are enabled.
	ErrNonSequentialWrite = errors.New("flash: non-sequential write within block")
	// ErrPageNotWritten is returned when reading a page (or spare area)
	// that has not been programmed since the last erase — including pages
	// whose program pulse failed, which hold nothing readable.
	ErrPageNotWritten = errors.New("flash: page not programmed")
	// ErrWornOut is returned when erasing a block beyond its maximum
	// erase count. The device retires the block on the attempt (BadBlock
	// reports it from then on); the block's last successful erase still
	// stands, so a free worn-out block remains writable for one final cycle.
	ErrWornOut = errors.New("flash: block worn out")
	// ErrProgramFailed is returned when a page program pulse fails (an
	// injected fault, or a program aimed at a retired block). The failed
	// page is consumed: the block's write pointer moves past it and the page
	// reads back as unprogrammed. The FTL retries on the next free page.
	ErrProgramFailed = errors.New("flash: page program failed")
	// ErrEraseFailed is returned when a block erase pulse fails (an injected
	// fault). The block is retired permanently — a grown bad block recorded
	// in the device's bad-block table (BadBlock) — and its contents are
	// untouched.
	ErrEraseFailed = errors.New("flash: block erase failed")
	// ErrReadDecayed is returned when a full-page read finds the payload
	// decayed by read disturb: the block absorbed more page reads since its
	// last erase than the fault plan's ReadDisturbLimit. Spare areas stay
	// readable; only the page payload is lost, so an FTL that scrubs
	// hot-read blocks in time never sees this error.
	ErrReadDecayed = errors.New("flash: page payload decayed (read disturb)")
	// ErrPowerFailed is returned for any operation issued while the
	// device is in the powered-off state.
	ErrPowerFailed = errors.New("flash: device is powered off")
)
