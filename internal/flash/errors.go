package flash

import "errors"

// Errors returned by the device simulator. They model the NAND constraints
// the FTL must respect; an FTL that triggers one of these has a bug, so the
// test suite treats them as hard failures.
var (
	// ErrOutOfRange is returned for addresses outside the device geometry.
	ErrOutOfRange = errors.New("flash: address out of range")
	// ErrPageNotFree is returned when programming a page that has already
	// been programmed since its block was last erased.
	ErrPageNotFree = errors.New("flash: page already programmed since last erase")
	// ErrNonSequentialWrite is returned when a write skips ahead of the
	// block's write pointer while strict sequential writes are enabled.
	ErrNonSequentialWrite = errors.New("flash: non-sequential write within block")
	// ErrPageNotWritten is returned when reading a page (or spare area)
	// that has not been programmed since the last erase.
	ErrPageNotWritten = errors.New("flash: page not programmed")
	// ErrWornOut is returned when erasing a block beyond its maximum
	// erase count.
	ErrWornOut = errors.New("flash: block worn out")
	// ErrPowerFailed is returned for any operation issued while the
	// device is in the powered-off state.
	ErrPowerFailed = errors.New("flash: device is powered off")
)
