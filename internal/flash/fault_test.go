package flash

import (
	"errors"
	"testing"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		ok   bool
	}{
		{"zero plan", FaultPlan{}, true},
		{"rates and limit", FaultPlan{Seed: 1, ProgramFailRate: 0.5, EraseFailRate: 1, ReadDisturbLimit: 100}, true},
		{"schedule", FaultPlan{Schedule: []FaultEvent{{Op: OpPageWrite, AtCount: 3}, {Op: OpErase, AtCount: 1}, {Op: OpPageRead, AtCount: 9}}}, true},
		{"negative program rate", FaultPlan{ProgramFailRate: -0.1}, false},
		{"program rate above one", FaultPlan{ProgramFailRate: 1.1}, false},
		{"negative erase rate", FaultPlan{EraseFailRate: -1}, false},
		{"negative disturb limit", FaultPlan{ReadDisturbLimit: -1}, false},
		{"schedule on spare read", FaultPlan{Schedule: []FaultEvent{{Op: OpSpareRead, AtCount: 1}}}, false},
		{"schedule at count zero", FaultPlan{Schedule: []FaultEvent{{Op: OpErase, AtCount: 0}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
			// SetFaultPlan must enforce the same contract.
			if err := MustNewDevice(testConfig(2)).SetFaultPlan(tc.plan); (err == nil) != tc.ok {
				t.Errorf("SetFaultPlan() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestScheduledProgramFaultConsumesPage(t *testing.T) {
	cfg := testConfig(4)
	d := MustNewDevice(cfg)
	ppb := cfg.PagesPerBlock
	if err := d.SetFaultPlan(FaultPlan{Schedule: []FaultEvent{{Op: OpPageWrite, AtCount: 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(PPNOf(0, 0, ppb), SpareArea{Logical: 7}, PurposeUserWrite); err != nil {
		t.Fatalf("first program: %v", err)
	}
	if _, err := d.WritePage(PPNOf(0, 1, ppb), SpareArea{Logical: 8}, PurposeUserWrite); !errors.Is(err, ErrProgramFailed) {
		t.Fatalf("second program err = %v, want ErrProgramFailed", err)
	}
	// The failed page is consumed: the write pointer moved past it.
	if wp, _ := d.WritePointer(0); wp != 2 {
		t.Errorf("write pointer = %d after failed program, want 2", wp)
	}
	// It holds nothing readable, and its spare reports unprogrammed (not an
	// error) so recovery scans skip it instead of trusting garbage.
	if err := d.ReadPage(PPNOf(0, 1, ppb), PurposeUserRead); !errors.Is(err, ErrPageNotWritten) {
		t.Errorf("read of failed page err = %v, want ErrPageNotWritten", err)
	}
	if _, ok, err := d.ReadSpare(PPNOf(0, 1, ppb), PurposeRecovery); err != nil || ok {
		t.Errorf("spare of failed page = (ok=%v, err=%v), want unprogrammed, nil", ok, err)
	}
	// The block is not bad — only the page is — and the next program lands.
	if bad, _ := d.BadBlock(0); bad {
		t.Error("block reported bad after a single failed program")
	}
	if _, err := d.WritePage(PPNOf(0, 2, ppb), SpareArea{Logical: 8}, PurposeUserWrite); err != nil {
		t.Fatalf("retry on next page: %v", err)
	}
	// An erase wipes the bad-page marks with the rest of the block.
	if err := d.EraseBlock(0, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(PPNOf(0, 1, ppb), SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrNonSequentialWrite) {
		t.Errorf("post-erase write pointer not reset: %v", err)
	}
	if _, err := d.WritePage(PPNOf(0, 0, ppb), SpareArea{Logical: 9}, PurposeUserWrite); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	if err := d.ReadPage(PPNOf(0, 0, ppb), PurposeUserRead); err != nil {
		t.Errorf("read after erase: %v", err)
	}
}

func TestScheduledEraseFaultRetiresBlock(t *testing.T) {
	cfg := testConfig(4)
	d := MustNewDevice(cfg)
	ppb := cfg.PagesPerBlock
	if err := d.SetFaultPlan(FaultPlan{Schedule: []FaultEvent{{Op: OpErase, AtCount: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(PPNOf(1, 0, ppb), SpareArea{Logical: 3}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(1, PurposeGCErase); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("erase err = %v, want ErrEraseFailed", err)
	}
	if bad, _ := d.BadBlock(1); !bad {
		t.Fatal("failed erase did not retire the block")
	}
	// Retirement is permanent: programs and erases keep failing, and no
	// erase happened — the contents and erase count are untouched.
	if _, err := d.WritePage(PPNOf(1, 1, ppb), SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrProgramFailed) {
		t.Errorf("program on retired block err = %v, want ErrProgramFailed", err)
	}
	if err := d.EraseBlock(1, PurposeGCErase); !errors.Is(err, ErrEraseFailed) {
		t.Errorf("second erase err = %v, want ErrEraseFailed", err)
	}
	if ec, _ := d.EraseCount(1); ec != 0 {
		t.Errorf("erase count = %d after failed erases, want 0", ec)
	}
	if wp, _ := d.WritePointer(1); wp != 1 {
		t.Errorf("write pointer = %d, want contents untouched at 1", wp)
	}
	// The bad-block table is device truth: it survives a power failure.
	d.PowerFail()
	d.PowerOn()
	if bad, _ := d.BadBlock(1); !bad {
		t.Error("bad-block table lost across power failure")
	}
	// Other blocks are unaffected (the schedule's one event is spent).
	if err := d.EraseBlock(2, PurposeGCErase); err != nil {
		t.Errorf("erase of healthy block: %v", err)
	}
}

func TestWornOutEraseRetires(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxEraseCount = 1
	d := MustNewDevice(cfg)
	ppb := cfg.PagesPerBlock
	if err := d.EraseBlock(0, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	// The last successful erase still stands: a free worn-out block remains
	// writable for one final cycle.
	if _, err := d.WritePage(PPNOf(0, 0, ppb), SpareArea{Logical: 1}, PurposeUserWrite); err != nil {
		t.Fatalf("program in final cycle: %v", err)
	}
	if bad, _ := d.BadBlock(0); bad {
		t.Fatal("block retired before any erase attempt past the budget")
	}
	if err := d.EraseBlock(0, PurposeGCErase); !errors.Is(err, ErrWornOut) {
		t.Fatalf("erase past budget err = %v, want ErrWornOut", err)
	}
	if bad, _ := d.BadBlock(0); !bad {
		t.Error("worn-out erase attempt did not retire the block")
	}
	if _, err := d.WritePage(PPNOf(0, 1, ppb), SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrProgramFailed) {
		t.Errorf("program on worn-out block err = %v, want ErrProgramFailed", err)
	}
}

func TestReadDisturbDecay(t *testing.T) {
	cfg := testConfig(4)
	d := MustNewDevice(cfg)
	ppb := cfg.PagesPerBlock
	if err := d.SetFaultPlan(FaultPlan{ReadDisturbLimit: 2}); err != nil {
		t.Fatal(err)
	}
	ppn := PPNOf(0, 0, ppb)
	if _, err := d.WritePage(ppn, SpareArea{Logical: 5}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := d.ReadPage(ppn, PurposeUserRead); err != nil {
			t.Fatalf("read %d within limit: %v", i+1, err)
		}
	}
	// Spare reads neither disturb nor decay.
	for i := 0; i < 8; i++ {
		if _, ok, err := d.ReadSpare(ppn, PurposeRecovery); err != nil || !ok {
			t.Fatalf("spare read %d = (ok=%v, err=%v)", i, ok, err)
		}
	}
	if rc, _ := d.ReadCount(0); rc != 2 {
		t.Errorf("read count = %d after 2 page reads and 8 spare reads, want 2", rc)
	}
	if err := d.ReadPage(ppn, PurposeUserRead); !errors.Is(err, ErrReadDecayed) {
		t.Fatalf("read past limit err = %v, want ErrReadDecayed", err)
	}
	// The spare stays readable even after the payload decayed: the FTL can
	// still identify what was lost.
	if _, ok, err := d.ReadSpare(ppn, PurposeRecovery); err != nil || !ok {
		t.Errorf("spare after decay = (ok=%v, err=%v)", ok, err)
	}
	// An erase resets the disturb counter and the block is fresh again.
	if err := d.EraseBlock(0, PurposeGCErase); err != nil {
		t.Fatal(err)
	}
	if rc, _ := d.ReadCount(0); rc != 0 {
		t.Errorf("read count = %d after erase, want 0", rc)
	}
	if _, err := d.WritePage(ppn, SpareArea{Logical: 5}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(ppn, PurposeUserRead); err != nil {
		t.Errorf("read after erase: %v", err)
	}
}

// faultRun drives a fixed workload — program every page of every block, then
// erase every block — under the given rates and returns which programs and
// erases failed.
func faultRun(t *testing.T, seed int64, programRate, eraseRate float64) (programs, erases map[int]bool) {
	t.Helper()
	cfg := testConfig(8)
	d := MustNewDevice(cfg)
	if err := d.SetFaultPlan(FaultPlan{Seed: seed, ProgramFailRate: programRate, EraseFailRate: eraseRate}); err != nil {
		t.Fatal(err)
	}
	programs, erases = make(map[int]bool), make(map[int]bool)
	for b := 0; b < cfg.Blocks; b++ {
		for o := 0; o < cfg.PagesPerBlock; o++ {
			_, err := d.WritePage(PPNOf(BlockID(b), o, cfg.PagesPerBlock), SpareArea{}, PurposeUserWrite)
			switch {
			case errors.Is(err, ErrProgramFailed):
				programs[b*cfg.PagesPerBlock+o] = true
			case err != nil:
				t.Fatalf("block %d page %d: %v", b, o, err)
			}
		}
	}
	for b := 0; b < cfg.Blocks; b++ {
		err := d.EraseBlock(BlockID(b), PurposeGCErase)
		switch {
		case errors.Is(err, ErrEraseFailed):
			erases[b] = true
		case err != nil:
			t.Fatalf("erase %d: %v", b, err)
		}
	}
	return programs, erases
}

func TestProbabilisticFaultsDeterministicAndNested(t *testing.T) {
	p1, e1 := faultRun(t, 42, 0.2, 0.2)
	p2, e2 := faultRun(t, 42, 0.2, 0.2)
	if len(p1) == 0 || len(e1) == 0 {
		t.Fatalf("no faults at 20%% rates (%d programs, %d erases failed)", len(p1), len(e1))
	}
	for k := range p1 {
		if !p2[k] {
			t.Fatalf("program fault set not deterministic: %d failed in run 1 only", k)
		}
	}
	if len(p1) != len(p2) || len(e1) != len(e2) {
		t.Fatalf("fault sets differ across identical runs: %d/%d programs, %d/%d erases", len(p1), len(p2), len(e1), len(e2))
	}

	// Nesting: the failures at a lower rate are a subset of those at a
	// higher rate under the same seed — this is what makes endurance
	// monotone in the fault rate by construction.
	pLow, eLow := faultRun(t, 42, 0.05, 0.05)
	if len(pLow) >= len(p1) {
		t.Errorf("%d program faults at 5%% rate vs %d at 20%%", len(pLow), len(p1))
	}
	for k := range pLow {
		if !p1[k] {
			t.Errorf("program fault %d at 5%% rate absent at 20%%", k)
		}
	}
	for k := range eLow {
		if !e1[k] {
			t.Errorf("erase fault on block %d at 5%% rate absent at 20%%", k)
		}
	}

	// A different seed draws a different pattern.
	p3, _ := faultRun(t, 43, 0.2, 0.2)
	same := len(p1) == len(p3)
	if same {
		for k := range p1 {
			if !p3[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical program fault sets")
	}
}

func TestScheduleCountsOnlyWhilePlanInstalled(t *testing.T) {
	cfg := testConfig(2)
	d := MustNewDevice(cfg)
	ppb := cfg.PagesPerBlock
	// Without a plan installed, operations do not advance the counts.
	if _, err := d.WritePage(PPNOf(0, 0, ppb), SpareArea{}, PurposeUserWrite); err != nil {
		t.Fatal(err)
	}
	if err := d.SetFaultPlan(FaultPlan{Schedule: []FaultEvent{{Op: OpPageWrite, AtCount: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(PPNOf(0, 1, ppb), SpareArea{}, PurposeUserWrite); !errors.Is(err, ErrProgramFailed) {
		t.Fatalf("first counted program err = %v, want ErrProgramFailed", err)
	}
	// A zero plan clears fault injection entirely.
	if err := d.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(PPNOf(0, 2, ppb), SpareArea{}, PurposeUserWrite); err != nil {
		t.Errorf("program after clearing the plan: %v", err)
	}
}
